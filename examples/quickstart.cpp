/// \file quickstart.cpp
/// The paper's running example (Figs. 1 and 5): the 95th-percentile fare
/// over a 15-minute sliding window of taxi rides, expedited by SPEAr with
/// a 1 MB budget and a (10%, 95%) accuracy specification.
///
///   cq = rides
///     .time(x -> x.time)
///     .slidingWindowOf(15, 5, MINUTES)
///     .percentile(x -> x.fare, 0.95)
///     .budget(1MB)
///     .error(10%, 95%)

#include <cstdio>
#include <memory>

#include "common/byte_size.h"
#include "core/spear_topology_builder.h"
#include "data/datasets.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"

using namespace spear;           // NOLINT
using namespace spear::literals; // NOLINT

int main() {
  // A two-hour synthetic taxi-ride stream: [time, route, fare].
  DebsGenerator::Config data;
  data.duration = Hours(2);
  data.tuples_per_second = 50.0;  // busier feed than the DEBS default
  auto rides = std::make_shared<VectorSpout>(DebsGenerator::Generate(data));
  std::printf("replaying %zu rides...\n", rides->size());

  // The CQ of Fig. 5.
  DecisionStatsCollector decisions;
  SpearTopologyBuilder cq;
  cq.Source(rides, /*watermark_interval=*/Minutes(5))
      .Time(DebsGenerator::kTimeField)
      .SlidingWindowOf(Minutes(15), Minutes(5))
      .Percentile(NumericField(DebsGenerator::kFareField), 0.95)
      .SetBudget(Budget::Bytes(1_MiB))
      .Error(0.10, 0.95)
      .CollectDecisions(&decisions);

  auto topology = cq.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 topology.status().ToString().c_str());
    return 1;
  }
  auto report = Executor(std::move(*topology)).Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-24s %-14s %-10s %s\n", "window (minutes)", "p95 fare",
              "approx?", "est. error");
  for (const Tuple& t : report->output) {
    const std::int64_t start = t.field(ResultTupleLayout::kStart).AsInt64();
    const std::int64_t end = t.field(ResultTupleLayout::kEnd).AsInt64();
    std::printf("[%4lld, %4lld)             $%-13.2f %-10s %.3f\n",
                static_cast<long long>(start / 60000),
                static_cast<long long>(end / 60000),
                t.field(ResultTupleLayout::kScalarValue).AsDouble(),
                t.field(ResultTupleLayout::kScalarApprox).AsInt64() ? "yes"
                                                                    : "no",
                t.field(ResultTupleLayout::kScalarError).AsDouble());
  }

  const DecisionStats stats = decisions.Total();
  std::printf("\nSPEAr expedited %llu of %llu windows; processed %llu of "
              "%llu tuples at watermark time.\n",
              static_cast<unsigned long long>(stats.windows_expedited),
              static_cast<unsigned long long>(stats.windows_total),
              static_cast<unsigned long long>(stats.tuples_processed),
              static_cast<unsigned long long>(stats.tuples_seen));
  return 0;
}
