/// \file taxi_routes.cpp
/// DEBS-style grouped CQ: average fare per route over 30-minute sliding
/// windows (the paper's DEBS workload). Runs the same CQ on the exact
/// engine and on SPEAr, then audits SPEAr's accuracy guarantee: every
/// distinct route must be present (requirement R2 of the model) and the
/// per-route relative error should respect the specification.

#include <cstdio>
#include <map>
#include <memory>

#include "core/spear_topology_builder.h"
#include "data/datasets.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"
#include "stats/error_metrics.h"

using namespace spear;  // NOLINT

namespace {

std::map<std::pair<std::int64_t, std::string>, double> RunGroupedCq(
    std::shared_ptr<VectorSpout> spout, ExecutionEngine engine) {
  spout->Rewind();  // a spout is exhausted after each run
  SpearTopologyBuilder cq;
  cq.Source(spout, Minutes(15))
      .SlidingWindowOf(Minutes(30), Minutes(15))
      .Mean(NumericField(DebsGenerator::kFareField))
      .GroupBy(KeyField(DebsGenerator::kRouteField))
      .SetBudget(Budget::Tuples(2000))
      .Error(0.10, 0.95)
      .Parallelism(4)
      .Engine(engine);
  auto topology = cq.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 topology.status().ToString().c_str());
    std::exit(1);
  }
  auto report = Executor(std::move(*topology)).Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  std::map<std::pair<std::int64_t, std::string>, double> out;
  for (const Tuple& t : report->output) {
    out[{t.field(ResultTupleLayout::kEnd).AsInt64(),
         t.field(ResultTupleLayout::kGroupKey).AsString()}] =
        t.field(ResultTupleLayout::kGroupValue).AsDouble();
  }
  return out;
}

}  // namespace

int main() {
  DebsGenerator::Config data;
  data.duration = Hours(2);
  auto tuples = DebsGenerator::Generate(data);
  std::printf("replaying %zu taxi rides over %d minutes...\n", tuples.size(),
              120);
  auto spout = std::make_shared<VectorSpout>(std::move(tuples));

  const auto exact = RunGroupedCq(spout, ExecutionEngine::kExact);
  const auto approx = RunGroupedCq(spout, ExecutionEngine::kSpear);

  std::printf("exact results: %zu (window,route) pairs\n", exact.size());
  std::printf("SPEAr results: %zu (window,route) pairs\n", approx.size());

  // Audit: R2 — identical group sets; accuracy within spec for most.
  std::size_t missing = 0, violations = 0;
  double worst = 0.0;
  for (const auto& [key, exact_value] : exact) {
    const auto it = approx.find(key);
    if (it == approx.end()) {
      ++missing;
      continue;
    }
    const double err = RelativeError(it->second, exact_value);
    worst = std::max(worst, err);
    if (err > 0.10) ++violations;
  }
  std::printf("missing groups: %zu (must be 0)\n", missing);
  std::printf("per-route errors > 10%%: %zu of %zu (worst %.1f%%)\n",
              violations, exact.size(), worst * 100.0);
  return missing == 0 ? 0 : 1;
}
