/// \file replay_trace.cpp
/// Runs a SPEAr CQ over a CSV trace file — the bridge from the synthetic
/// generators to the paper's real datasets for users who have them.
///
///   replay_trace <csv> <time_col> <value_col> [group_col]
///
/// Columns are 0-based; the time column must hold epoch milliseconds. All
/// other columns are loaded as strings except the value column (double).
/// The CQ is a 60 s / 20 s sliding mean (grouped when group_col is given)
/// with b=1000 and a (10 %, 95 %) spec, run on both the exact engine and
/// SPEAr, printing the comparison.
///
/// With no arguments, a small demo trace is synthesized and replayed so
/// the binary is runnable out of the box.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>

#include "core/spear_topology_builder.h"
#include "data/trace_loader.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"

using namespace spear;  // NOLINT

namespace {

std::string WriteDemoTrace() {
  const std::string path = "/tmp/spear_demo_trace.csv";
  std::ofstream out(path);
  out << "time,sensor,reading\n";
  for (int i = 0; i < 20000; ++i) {
    out << (i * 10) << ",s" << (i % 4) << "," << (20.0 + (i % 17) * 0.5)
        << "\n";
  }
  return path;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t time_col = 0, value_col = 2;
  std::size_t group_col = 1;
  bool grouped = true;

  if (argc >= 4) {
    path = argv[1];
    time_col = static_cast<std::size_t>(std::atoi(argv[2]));
    value_col = static_cast<std::size_t>(std::atoi(argv[3]));
    grouped = argc >= 5;
    if (grouped) group_col = static_cast<std::size_t>(std::atoi(argv[4]));
  } else {
    std::printf("no trace given; synthesizing a demo trace\n");
    path = WriteDemoTrace();
  }

  // Build a column spec: value column double, everything else strings,
  // time column int64. Column count probed from the header line.
  std::ifstream probe(path);
  std::string header;
  if (!std::getline(probe, header)) return Fail("cannot read " + path);
  const std::size_t columns =
      static_cast<std::size_t>(std::count(header.begin(), header.end(), ',')) +
      1;

  TraceSpec spec;
  for (std::size_t c = 0; c < columns; ++c) {
    TraceColumnType type = TraceColumnType::kString;
    if (c == time_col) type = TraceColumnType::kInt64;
    if (c == value_col) type = TraceColumnType::kDouble;
    spec.columns.emplace_back("col" + std::to_string(c), type);
  }
  spec.time_column = time_col;
  spec.skip_bad_rows = true;

  auto tuples = LoadTrace(path, spec);
  if (!tuples.ok()) return Fail("load failed: " + tuples.status().ToString());
  std::printf("loaded %zu rows from %s\n", tuples->size(), path.c_str());
  if (tuples->empty()) return Fail("empty trace");

  auto run = [&](ExecutionEngine engine) -> Result<RunReport> {
    SpearTopologyBuilder cq;
    cq.Source(std::make_shared<VectorSpout>(*tuples), Seconds(20))
        .SlidingWindowOf(Seconds(60), Seconds(20))
        .Mean(NumericField(value_col))
        .SetBudget(Budget::Tuples(1000))
        .Error(0.10, 0.95)
        .Engine(engine);
    if (grouped) cq.GroupBy(KeyField(group_col));
    SPEAR_ASSIGN_OR_RETURN(Topology topology, cq.Build());
    return Executor(std::move(topology)).Run();
  };

  auto exact = run(ExecutionEngine::kExact);
  if (!exact.ok()) return Fail("exact run: " + exact.status().ToString());
  auto spear = run(ExecutionEngine::kSpear);
  if (!spear.ok()) return Fail("SPEAr run: " + spear.status().ToString());

  const auto exact_summary = exact->metrics.StageWindowSummary(
      SpearTopologyBuilder::StatefulStageName());
  const auto spear_summary = spear->metrics.StageWindowSummary(
      SpearTopologyBuilder::StatefulStageName());
  std::printf("windows: exact=%llu results=%zu | SPEAr=%llu results=%zu\n",
              static_cast<unsigned long long>(exact_summary.count),
              exact->output.size(),
              static_cast<unsigned long long>(spear_summary.count),
              spear->output.size());
  std::printf("mean window processing: exact=%.3f ms, SPEAr=%.3f ms "
              "(%.1fx)\n",
              exact_summary.mean / 1e6, spear_summary.mean / 1e6,
              exact_summary.mean / std::max(spear_summary.mean, 1.0));
  return 0;
}
