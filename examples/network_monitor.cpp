/// \file network_monitor.cpp
/// DEC-style scalar CQ: the median TCP packet size over 45-second sliding
/// windows — the paper's hardest scalar case (holistic, cannot be
/// computed incrementally). Demonstrates the budget trade-off by running
/// the same stream at several budgets and reporting processing effort and
/// expedite decisions.

#include <cstdio>
#include <memory>

#include "core/spear_topology_builder.h"
#include "data/datasets.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"

using namespace spear;  // NOLINT

int main() {
  DecGenerator::Config data;
  data.duration = Minutes(10);
  auto packets = std::make_shared<VectorSpout>(DecGenerator::Generate(data));
  std::printf("monitoring %zu packets (10 minutes of traffic)...\n\n",
              packets->size());

  std::printf("%-10s %-12s %-12s %-14s %-12s\n", "budget", "windows",
              "expedited", "tuples eval'd", "worker busy");
  for (std::size_t budget : {50u, 150u, 500u, 5000u}) {
    packets->Rewind();  // fresh replay per budget setting
    DecisionStatsCollector decisions;
    SpearTopologyBuilder cq;
    cq.Source(packets, Seconds(15))
        .SlidingWindowOf(Seconds(45), Seconds(15))
        .Median(NumericField(DecGenerator::kSizeField))
        .SetBudget(Budget::Tuples(budget))
        .Error(0.10, 0.95)
        .CollectDecisions(&decisions);
    auto topology = cq.Build();
    if (!topology.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   topology.status().ToString().c_str());
      return 1;
    }
    auto report = Executor(std::move(*topology)).Run();
    if (!report.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::int64_t busy = 0;
    for (const auto* m : report->metrics.ForStage(
             SpearTopologyBuilder::StatefulStageName())) {
      busy += m->busy_ns();
    }
    const DecisionStats stats = decisions.Total();
    std::printf("%-10zu %-12llu %-12llu %-14llu %.2f ms\n", budget,
                static_cast<unsigned long long>(stats.windows_total),
                static_cast<unsigned long long>(stats.windows_expedited),
                static_cast<unsigned long long>(stats.tuples_processed),
                static_cast<double>(busy) / 1e6);
  }
  std::printf(
      "\nA budget below the quantile sample-size bound (~150 for 10%% rank\n"
      "error at 99%% confidence) forces exact processing of every window;\n"
      "a sufficient budget evaluates only the sample.\n");
  return 0;
}
