/// \file cluster_monitor.cpp
/// GCM-style grouped CQ with a *known* group count, plus the custom
/// approximate-operation API. Part 1 reproduces the paper's Query 1
/// (average CPU time per scheduling class) with SPEAr's tuple-arrival
/// stratified sampling. Part 2 defines a custom accuracy estimator — a
/// conservative range-based bound for the mean — and runs it through the
/// same machinery (Sec. 4: "SPEAr offers an API for defining custom
/// approximate stateful operations").

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "core/spear_topology_builder.h"
#include "data/datasets.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"

using namespace spear;  // NOLINT

namespace {

RunReport MustRun(SpearTopologyBuilder& cq) {
  auto topology = cq.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 topology.status().ToString().c_str());
    std::exit(1);
  }
  auto report = Executor(std::move(*topology)).Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*report);
}

}  // namespace

int main() {
  GcmGenerator::Config data;
  data.duration = Hours(2);
  auto events = std::make_shared<VectorSpout>(GcmGenerator::Generate(data));
  std::printf("processing %zu task events (2 hours)...\n\n", events->size());

  // ---- Part 1: grouped mean with a declared group count ------------------
  DecisionStatsCollector decisions;
  SpearTopologyBuilder grouped;
  grouped.Source(events, Minutes(15))
      .SlidingWindowOf(Minutes(30), Minutes(15))
      .Mean(NumericField(GcmGenerator::kCpuField))
      .GroupBy(KeyField(GcmGenerator::kClassField))
      .SetBudget(Budget::Tuples(4000))
      .Error(0.10, 0.95)
      .KnownGroups(8)
      .CollectDecisions(&decisions);
  const RunReport grouped_report = MustRun(grouped);

  std::printf("mean CPU time per scheduling class (last window):\n");
  std::int64_t last_end = 0;
  for (const Tuple& t : grouped_report.output) {
    last_end = std::max(last_end, t.field(ResultTupleLayout::kEnd).AsInt64());
  }
  for (const Tuple& t : grouped_report.output) {
    if (t.field(ResultTupleLayout::kEnd).AsInt64() != last_end) continue;
    std::printf("  class %-3s %8.1f ms\n",
                t.field(ResultTupleLayout::kGroupKey).AsString().c_str(),
                t.field(ResultTupleLayout::kGroupValue).AsDouble());
  }
  const DecisionStats stats = decisions.Total();
  std::printf("expedited %llu / %llu windows (known groups: samples built "
              "at tuple arrival, no scan)\n\n",
              static_cast<unsigned long long>(stats.windows_expedited),
              static_cast<unsigned long long>(stats.windows_total));

  // ---- Part 2: custom approximate stateful operation ----------------------
  // A user-defined estimator: accept the sample mean only when the
  // Hoeffding bound for range-bounded data meets the spec — stricter than
  // SPEAr's CLT interval, but distribution-free.
  CustomScalarEstimator hoeffding_mean =
      [](const std::vector<double>& sample, const RunningStats& window_stats,
         std::uint64_t window_size, const AccuracySpec& spec)
      -> Result<ScalarEstimate> {
    if (sample.empty()) return Status::Invalid("empty sample");
    double mean = 0.0;
    for (double v : sample) mean += v;
    mean /= static_cast<double>(sample.size());
    const double range = window_stats.max() - window_stats.min();
    const double delta = 1.0 - spec.confidence;
    const double half =
        range * std::sqrt(std::log(2.0 / delta) /
                          (2.0 * static_cast<double>(sample.size())));
    (void)window_size;
    ScalarEstimate est;
    est.estimate = mean;
    est.epsilon_hat = mean != 0.0 ? half / std::fabs(mean) : 1e9;
    est.accepted = est.epsilon_hat <= spec.epsilon;
    return est;
  };

  events->Rewind();  // replay the stream for the second CQ
  SpearTopologyBuilder custom;
  custom.Source(events, Minutes(15))
      .SlidingWindowOf(Minutes(30), Minutes(15))
      .Mean(NumericField(GcmGenerator::kCpuField))
      .SetBudget(Budget::Tuples(20000))
      .Error(0.25, 0.95)
      .CustomEstimator(hoeffding_mean);
  const RunReport custom_report = MustRun(custom);

  std::printf("custom Hoeffding-mean operation produced %zu windows:\n",
              custom_report.output.size());
  for (const Tuple& t : custom_report.output) {
    std::printf("  [%6lld s, %6lld s) mean=%8.1f approx=%s est_err=%.3f\n",
                static_cast<long long>(
                    t.field(ResultTupleLayout::kStart).AsInt64() / 1000),
                static_cast<long long>(
                    t.field(ResultTupleLayout::kEnd).AsInt64() / 1000),
                t.field(ResultTupleLayout::kScalarValue).AsDouble(),
                t.field(ResultTupleLayout::kScalarApprox).AsInt64() ? "yes"
                                                                    : "no",
                t.field(ResultTupleLayout::kScalarError).AsDouble());
  }
  return 0;
}
