/// \file chaos_demo.cpp
/// The quickstart CQ run under a seeded fault plan: the secondary storage
/// fails transiently, the spout occasionally emits a malformed tuple, and
/// S goes completely dark for one read in a thousand. The supervised
/// runtime retries what is transient, quarantines what is poison, and
/// degrades windows whose spilled state stayed unreachable — the run
/// finishes and reports exactly what happened instead of crashing.

#include <cstdio>
#include <memory>

#include "core/spear_topology_builder.h"
#include "data/datasets.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"
#include "storage/secondary_storage.h"

using namespace spear;  // NOLINT

int main() {
  // The quickstart stream: [time, route, fare] taxi rides.
  DebsGenerator::Config data;
  data.duration = Hours(1);
  data.tuples_per_second = 50.0;
  auto rides = std::make_shared<VectorSpout>(DebsGenerator::Generate(data));
  std::printf("replaying %zu rides under a fault plan...\n", rides->size());

  // The chaos: transient store failures, a rare read blackout, and the
  // occasional malformed ride. All deterministic under the plan seed.
  FaultPlan plan;
  plan.seed = 2024;
  FaultRule flaky_store;
  flaky_store.site = FaultSite::kStorageStore;
  flaky_store.every_nth = 13;
  plan.Add(flaky_store);
  FaultRule dark_read;
  dark_read.site = FaultSite::kStorageGet;
  dark_read.probability = 0.001;
  plan.Add(dark_read);
  FaultRule poison;
  poison.site = FaultSite::kSpoutMalformed;
  poison.every_nth = 20000;
  plan.Add(poison);
  if (Status s = plan.Validate(); !s.ok()) {
    std::fprintf(stderr, "bad plan: %s\n", s.ToString().c_str());
    return 1;
  }
  FaultInjector injector(plan);

  SecondaryStorage storage;
  storage.InjectFaults(&injector);

  // The quickstart CQ plus the robustness knobs: admission validation,
  // retry policies, spilling, and the injector itself.
  SpearTopologyBuilder cq;
  cq.Source(rides, /*watermark_interval=*/Minutes(5))
      .Time(DebsGenerator::kTimeField)
      .SlidingWindowOf(Minutes(15), Minutes(5))
      .Percentile(NumericField(DebsGenerator::kFareField), 0.95)
      .SetBudget(Budget::Tuples(2000))
      .Error(0.10, 0.95)
      .ValidateTuples(RequireNumericFields({DebsGenerator::kFareField}))
      .SpillOver(/*memory_capacity=*/10000, &storage)
      .StorageRetry(RetryPolicy::Default())
      .StageRetry(RetryPolicy::Default())
      .InjectFaults(&injector);

  auto topology = cq.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 topology.status().ToString().c_str());
    return 1;
  }
  auto report = Executor(std::move(*topology)).Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\nrun completed: %zu window results\n",
              report->output.size());
  std::printf("  faults injected:    %llu\n",
              static_cast<unsigned long long>(report->faults.injected));
  std::printf("  retries:            %llu\n",
              static_cast<unsigned long long>(report->faults.retries));
  std::printf("  recovered:          %llu\n",
              static_cast<unsigned long long>(report->faults.recovered));
  std::printf("  quarantined tuples: %llu\n",
              static_cast<unsigned long long>(report->faults.quarantined));
  std::printf("  degraded windows:   %llu\n",
              static_cast<unsigned long long>(
                  report->faults.degraded_windows));

  for (const DeadLetter& dl : report->dead_letters) {
    std::printf("  dead letter: stage '%s' task %d after %d attempt(s): %s\n",
                dl.stage.c_str(), dl.task, dl.attempts,
                dl.error.ToString().c_str());
  }
  int degraded = 0;
  for (const Tuple& t : report->output) {
    if (t.field(ResultTupleLayout::kScalarDegraded).AsInt64() == 1) {
      ++degraded;
      std::printf(
          "  degraded window [%lld, %lld): p95 ≈ $%.2f (eps-hat %.3f)\n",
          static_cast<long long>(
              t.field(ResultTupleLayout::kStart).AsInt64() / 60000),
          static_cast<long long>(
              t.field(ResultTupleLayout::kEnd).AsInt64() / 60000),
          t.field(ResultTupleLayout::kScalarValue).AsDouble(),
          t.field(ResultTupleLayout::kScalarError).AsDouble());
    }
  }
  if (degraded == 0) {
    std::printf("  (no window needed to degrade this run)\n");
  }
  return 0;
}
