/// \file recovery_demo.cpp
/// Crash recovery with accuracy accounting: the quickstart stream run
/// with worker crashes injected mid-stream. Checkpointing snapshots each
/// stateful worker's O(b) budget state at watermark boundaries; when a
/// worker dies it is restarted from its latest snapshot, the gap is
/// replayed from the log, and any tuples the bounded log could not hold
/// are charged to the recovered windows' error estimates instead of
/// silently dropped. The run completes, every window is answered exactly
/// once, and the report says how many restarts it took.
///
/// For contrast, the same plan is run once more with checkpointing off:
/// the first crash kills the run.

#include <cstdio>
#include <memory>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "core/spear_topology_builder.h"
#include "data/datasets.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"

using namespace spear;  // NOLINT

namespace {

/// The shared CQ: mean fare over tumbling 5-minute windows, two workers.
void ConfigureQuery(SpearTopologyBuilder& cq,
                    const std::shared_ptr<VectorSpout>& rides) {
  cq.Source(rides, /*watermark_interval=*/Minutes(1))
      .Time(DebsGenerator::kTimeField)
      .TumblingWindowOf(Minutes(5))
      .Mean(NumericField(DebsGenerator::kFareField))
      .SetBudget(Budget::Tuples(1000))
      .Error(0.10, 0.95)
      .Parallelism(2);
}

FaultInjector MakeCrashInjector() {
  FaultPlan plan;
  plan.seed = 2026;
  FaultRule crash;
  crash.site = FaultSite::kWorkerCrash;
  crash.every_nth = 40000;  // a few crashes across the stream
  crash.max_fires = 4;
  plan.Add(crash);
  return FaultInjector(plan);
}

}  // namespace

int main() {
  DebsGenerator::Config data;
  data.duration = Hours(1);
  data.tuples_per_second = 50.0;
  const std::vector<Tuple> ride_data = DebsGenerator::Generate(data);
  std::printf("replaying %zu rides with worker crashes injected...\n",
              ride_data.size());

  // --- with checkpointing: crashes are survivable -----------------------
  auto rides = std::make_shared<VectorSpout>(ride_data);
  FaultInjector injector = MakeCrashInjector();
  CheckpointConfig ckpt;
  ckpt.interval = Minutes(5);  // snapshot every 5 min of watermark progress

  SpearTopologyBuilder cq;
  ConfigureQuery(cq, rides);
  cq.InjectFaults(&injector).Checkpoint(ckpt);
  auto topology = cq.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 topology.status().ToString().c_str());
    return 1;
  }
  auto report = Executor(std::move(*topology)).Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("\nrun completed: %zu window results\n", report->output.size());
  std::printf("  crashes injected:  %llu\n",
              static_cast<unsigned long long>(
                  injector.fired(FaultSite::kWorkerCrash)));
  std::printf("  worker restarts:   %llu\n",
              static_cast<unsigned long long>(report->recoveries));
  std::printf("  snapshots taken:   %llu\n",
              static_cast<unsigned long long>(report->faults.snapshots));

  int recovered = 0;
  for (const Tuple& t : report->output) {
    if (t.field(ResultTupleLayout::kScalarRecovered).AsInt64() != 1) continue;
    ++recovered;
    std::printf(
        "  recovered window [%lld, %lld): mean ≈ $%.2f (eps-hat %.3f%s)\n",
        static_cast<long long>(
            t.field(ResultTupleLayout::kStart).AsInt64() / 60000),
        static_cast<long long>(
            t.field(ResultTupleLayout::kEnd).AsInt64() / 60000),
        t.field(ResultTupleLayout::kScalarValue).AsDouble(),
        t.field(ResultTupleLayout::kScalarError).AsDouble(),
        t.field(ResultTupleLayout::kScalarDegraded).AsInt64() == 1
            ? ", degraded"
            : "");
  }
  if (recovered == 0) {
    std::printf("  (no recovered window reached the output)\n");
  }

  // --- without checkpointing: the first crash is fatal ------------------
  auto fresh_rides = std::make_shared<VectorSpout>(ride_data);
  FaultInjector fatal_injector = MakeCrashInjector();
  SpearTopologyBuilder unprotected;
  ConfigureQuery(unprotected, fresh_rides);
  unprotected.InjectFaults(&fatal_injector);
  auto unprotected_topology = unprotected.Build();
  if (!unprotected_topology.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 unprotected_topology.status().ToString().c_str());
    return 1;
  }
  auto unprotected_report = Executor(std::move(*unprotected_topology)).Run();
  if (unprotected_report.ok()) {
    std::fprintf(stderr,
                 "unexpected: crash run without checkpointing succeeded\n");
    return 1;
  }
  std::printf("\nsame plan without checkpointing: %s\n",
              unprotected_report.status().ToString().c_str());
  return 0;
}
