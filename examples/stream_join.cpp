/// \file stream_join.cpp
/// Windowed two-stream equi-join on the runtime: taxi rides joined with
/// per-route surge-pricing events inside 10-minute tumbling windows. The
/// two sources are merged into one tagged stream (see
/// runtime/window_join_bolt.h) and joined by a WindowJoinBolt stage; a
/// downstream map stage computes the surged fare. Demonstrates that joins
/// compose with the same topology machinery the paper's CQs use (the
/// paper exposes joins through the custom stateful-operation API).

#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "runtime/common_bolts.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"
#include "runtime/window_join_bolt.h"

using namespace spear;  // NOLINT

int main() {
  // Left stream: rides [route, fare], ~20/minute over an hour.
  // Right stream: surge events [route, multiplier], one per route per
  // 10-minute window.
  Rng rng(99);
  std::vector<Tuple> rides;
  for (int i = 0; i < 1200; ++i) {
    const Timestamp t = i * Seconds(3);
    rides.emplace_back(
        t, std::vector<Value>{
               Value("r" + std::to_string(rng.NextBounded(10))),
               Value(5.0 + rng.NextDouble() * 20.0)});
  }
  std::vector<Tuple> surges;
  for (Timestamp w = 0; w < Hours(1); w += Minutes(10)) {
    for (int route = 0; route < 10; ++route) {
      surges.emplace_back(
          w + Minutes(1),
          std::vector<Value>{Value("r" + std::to_string(route)),
                             Value(1.0 + rng.NextDouble())});
    }
  }
  std::printf("joining %zu rides with %zu surge events...\n", rides.size(),
              surges.size());

  // Tagged union: field 0 becomes the side tag, shifting fields by one.
  auto merged = std::make_shared<VectorSpout>(MergeStreams(rides, surges));

  WindowJoinConfig join;
  join.window = WindowSpec::TumblingTime(Minutes(10));
  join.tag_field = 0;
  join.left_key = KeyField(1);   // ride route
  join.right_key = KeyField(1);  // surge route

  TopologyBuilder builder;
  builder.Source(merged, /*watermark_interval=*/Minutes(10));
  builder.Stage("join", 1, Partitioner::Shuffle(), [join](int) {
    return std::make_unique<WindowJoinBolt>(join);
  });
  // Joined layout: [start, end, key, route, fare, route, multiplier].
  builder.Stage("surge-fare", 2, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) {
      const double fare = t.field(4).AsDouble();
      const double multiplier = t.field(6).AsDouble();
      return Tuple(t.event_time(),
                   {t.field(0), t.field(1), t.field(2),
                    Value(fare * multiplier)});
    });
  });

  auto topology = builder.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 topology.status().ToString().c_str());
    return 1;
  }
  auto report = Executor(std::move(*topology)).Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("produced %zu surged fares\n", report->output.size());
  double total = 0.0;
  for (const Tuple& t : report->output) total += t.field(3).AsDouble();
  std::printf("first results:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, report->output.size());
       ++i) {
    const Tuple& t = report->output[i];
    std::printf("  window [%lld, %lld) route %-4s surged fare $%.2f\n",
                static_cast<long long>(t.field(0).AsInt64() / 60000),
                static_cast<long long>(t.field(1).AsInt64() / 60000),
                t.field(2).AsString().c_str(), t.field(3).AsDouble());
  }
  std::printf("total surged volume: $%.2f\n", total);
  return report->output.empty() ? 1 : 0;
}
