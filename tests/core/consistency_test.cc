#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/rng.h"
#include "core/spear_window_manager.h"
#include "ops/exact_operator.h"
#include "stats/error_metrics.h"
#include "stats/quantile.h"
#include "window/single_buffer_manager.h"

/// \file consistency_test.cc
/// The repo's central property suite: for every supported aggregate, in
/// scalar and grouped form, SPEAr's output must satisfy the model's
/// requirements against a ground-truth exact run over the same stream:
///   R1 — expedited results within the accuracy spec (rank error for
///        percentiles, relative error otherwise), allowing the
///        (1 - confidence) violation mass;
///   R2 — grouped results contain exactly the distinct groups;
///   exactness — non-expedited windows equal the exact engine's output.

namespace spear {
namespace {

constexpr double kEpsilon = 0.10;
constexpr double kConfidence = 0.95;

struct Case {
  AggregateSpec aggregate;
  bool grouped;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const Case& c) {
    return os << c.aggregate.ToString() << (c.grouped ? "/grouped" : "/scalar")
              << "/seed" << c.seed;
  }
};

class SpearConsistency : public ::testing::TestWithParam<Case> {};

/// Generates a stream with a few dense groups and positive, moderately
/// skewed values (so relative-error checks are meaningful for every
/// aggregate).
std::vector<Tuple> MakeStream(std::uint64_t seed, int tuples) {
  Rng rng(seed);
  std::vector<Tuple> out;
  out.reserve(static_cast<std::size_t>(tuples));
  for (int i = 0; i < tuples; ++i) {
    const std::int64_t group = static_cast<std::int64_t>(rng.NextBounded(5));
    // Group-dependent location plus mild noise keeps every aggregate's
    // value bounded away from zero.
    const double v = 50.0 * static_cast<double>(group + 1) *
                     std::exp(0.3 * rng.NextGaussian());
    out.emplace_back(
        i % 2000,
        std::vector<Value>{Value("g" + std::to_string(group)), Value(v)});
  }
  return out;
}

TEST_P(SpearConsistency, MeetsModelRequirements) {
  const Case c = GetParam();

  SpearOperatorConfig config;
  config.window = WindowSpec::TumblingTime(500);
  config.aggregate = c.aggregate;
  config.accuracy = AccuracySpec{kEpsilon, kConfidence};
  config.budget = Budget::Tuples(800);
  config.seed = c.seed;

  const KeyExtractor key = c.grouped ? KeyField(0) : KeyExtractor(nullptr);
  SpearWindowManager spear(config, NumericField(1), key);
  SingleBufferWindowManager exact_buffer(config.window);
  ExactWindowOperator exact_op(c.aggregate, NumericField(1), key);

  const auto stream = MakeStream(c.seed, 30000);
  for (const Tuple& t : stream) {
    spear.OnTuple(t.event_time(), t);
    exact_buffer.OnTuple(t.event_time(), t);
  }

  auto spear_results = spear.OnWatermark(2000);
  auto staged = exact_buffer.OnWatermark(2000);
  ASSERT_TRUE(spear_results.ok());
  ASSERT_TRUE(staged.ok());
  ASSERT_EQ(spear_results->size(), staged->size());
  ASSERT_GT(spear_results->size(), 2u);

  // For percentile accuracy we need each window's sorted values per group.
  std::size_t violations = 0, comparisons = 0;
  for (std::size_t w = 0; w < staged->size(); ++w) {
    const WindowResult& approx = (*spear_results)[w];
    auto exact_result = exact_op.Process((*staged)[w]);
    ASSERT_TRUE(exact_result.ok());
    ASSERT_EQ(approx.bounds, exact_result->bounds);

    if (!approx.approximate) {
      // Exact path: bitwise-comparable output.
      if (c.grouped) {
        ASSERT_EQ(approx.groups.size(), exact_result->groups.size());
        for (std::size_t g = 0; g < approx.groups.size(); ++g) {
          EXPECT_EQ(approx.groups[g].first, exact_result->groups[g].first);
          EXPECT_NEAR(approx.groups[g].second, exact_result->groups[g].second,
                      1e-9 * std::fabs(exact_result->groups[g].second));
        }
      } else {
        EXPECT_NEAR(approx.scalar, exact_result->scalar,
                    1e-9 * std::fabs(exact_result->scalar) + 1e-12);
      }
      continue;
    }

    // Expedited path: accuracy audit.
    if (c.grouped) {
      // R2: identical group sets.
      ASSERT_EQ(approx.groups.size(), exact_result->groups.size())
          << approx.bounds.ToString();
      for (std::size_t g = 0; g < approx.groups.size(); ++g) {
        ASSERT_EQ(approx.groups[g].first, exact_result->groups[g].first);
      }
    }

    auto check_value = [&](double approx_value, double exact_value,
                           const std::vector<double>& sorted_group) {
      ++comparisons;
      if (c.aggregate.IsHolistic()) {
        // Rank error for quantiles.
        const double rank = RankOf(sorted_group, approx_value);
        if (std::fabs(rank - c.aggregate.phi) > kEpsilon) ++violations;
      } else {
        if (RelativeError(approx_value, exact_value) > kEpsilon) {
          ++violations;
        }
      }
    };

    if (c.grouped) {
      std::map<std::string, std::vector<double>> partitions;
      for (const Tuple& t : (*staged)[w].tuples) {
        partitions[t.field(0).AsString()].push_back(t.field(1).AsNumeric());
      }
      for (auto& [group, values] : partitions) std::sort(values.begin(),
                                                         values.end());
      for (std::size_t g = 0; g < approx.groups.size(); ++g) {
        check_value(approx.groups[g].second, exact_result->groups[g].second,
                    partitions.at(approx.groups[g].first));
      }
    } else {
      std::vector<double> values;
      for (const Tuple& t : (*staged)[w].tuples) {
        values.push_back(t.field(1).AsNumeric());
      }
      std::sort(values.begin(), values.end());
      check_value(approx.scalar, exact_result->scalar, values);
    }
  }

  // R1: the violation mass must respect the confidence level (with slack
  // for the finite number of comparisons).
  if (comparisons > 0) {
    const double violation_rate =
        static_cast<double>(violations) / static_cast<double>(comparisons);
    EXPECT_LE(violation_rate, (1.0 - kConfidence) + 0.05)
        << violations << " of " << comparisons;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, SpearConsistency,
    ::testing::Values(
        Case{AggregateSpec::Count(), false, 1},
        Case{AggregateSpec::Sum(), false, 2},
        Case{AggregateSpec::Mean(), false, 3},
        Case{AggregateSpec::Variance(), false, 4},
        Case{AggregateSpec::StdDev(), false, 5},
        Case{AggregateSpec::Median(), false, 6},
        Case{AggregateSpec::Percentile(0.95), false, 7},
        Case{AggregateSpec::Count(), true, 8},
        Case{AggregateSpec::Sum(), true, 9},
        Case{AggregateSpec::Mean(), true, 10},
        Case{AggregateSpec::Variance(), true, 11},
        Case{AggregateSpec::StdDev(), true, 12},
        Case{AggregateSpec::Median(), true, 13},
        Case{AggregateSpec::Percentile(0.95), true, 14}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = AggregateKindName(info.param.aggregate.kind);
      if (info.param.aggregate.kind == AggregateKind::kPercentile) {
        name += info.param.aggregate.phi == 0.5 ? "50" : "95";
      }
      name += info.param.grouped ? "Grouped" : "Scalar";
      return name;
    });

/// Same stream, sampled-mean mode (incremental optimization off): the
/// generic Alg. 1/2 path must also meet the spec.
TEST(SpearConsistencyExtra, SampledMeanPathMeetsSpec) {
  SpearOperatorConfig config;
  config.window = WindowSpec::TumblingTime(500);
  config.aggregate = AggregateSpec::Mean();
  config.accuracy = AccuracySpec{kEpsilon, kConfidence};
  config.budget = Budget::Tuples(600);
  config.incremental_optimization = false;

  SpearWindowManager spear(config, NumericField(1));
  SingleBufferWindowManager exact_buffer(config.window);
  ExactWindowOperator exact_op(AggregateSpec::Mean(), NumericField(1));

  for (const Tuple& t : MakeStream(42, 30000)) {
    spear.OnTuple(t.event_time(), t);
    exact_buffer.OnTuple(t.event_time(), t);
  }
  auto approx = spear.OnWatermark(2000);
  auto staged = exact_buffer.OnWatermark(2000);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(staged.ok());
  ASSERT_EQ(approx->size(), staged->size());
  std::size_t violations = 0;
  for (std::size_t w = 0; w < staged->size(); ++w) {
    auto exact_result = exact_op.Process((*staged)[w]);
    ASSERT_TRUE(exact_result.ok());
    if (RelativeError((*approx)[w].scalar, exact_result->scalar) > kEpsilon) {
      ++violations;
    }
  }
  EXPECT_LE(violations, staged->size() / 10 + 1);
}

}  // namespace
}  // namespace spear
