#include "core/spear_window_manager.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ops/exact_operator.h"
#include "stats/error_metrics.h"
#include "window/single_buffer_manager.h"

namespace spear {
namespace {

Tuple ScalarTuple(Timestamp t, double v) { return Tuple(t, {Value(v)}); }
Tuple GroupTuple(Timestamp t, const std::string& k, double v) {
  return Tuple(t, {Value(k), Value(v)});
}

SpearOperatorConfig BaseConfig() {
  SpearOperatorConfig config;
  config.window = WindowSpec::TumblingTime(1000);
  config.accuracy = AccuracySpec{0.10, 0.95};
  config.budget = Budget::Tuples(200);
  return config;
}

TEST(SpearManagerTest, ModeDerivation) {
  {
    auto c = BaseConfig();
    c.aggregate = AggregateSpec::Mean();
    SpearWindowManager m(c, NumericField(0));
    EXPECT_EQ(m.mode(), SpearMode::kScalarIncremental);
  }
  {
    auto c = BaseConfig();
    c.aggregate = AggregateSpec::Mean();
    c.incremental_optimization = false;
    SpearWindowManager m(c, NumericField(0));
    EXPECT_EQ(m.mode(), SpearMode::kScalarSampled);
  }
  {
    auto c = BaseConfig();
    c.aggregate = AggregateSpec::Median();
    SpearWindowManager m(c, NumericField(0));
    EXPECT_EQ(m.mode(), SpearMode::kScalarQuantile);
  }
  {
    auto c = BaseConfig();
    SpearWindowManager m(c, NumericField(1), KeyField(0));
    EXPECT_EQ(m.mode(), SpearMode::kGroupedUnknown);
  }
  {
    auto c = BaseConfig();
    c.known_num_groups = 8;
    SpearWindowManager m(c, NumericField(1), KeyField(0));
    EXPECT_EQ(m.mode(), SpearMode::kGroupedKnown);
  }
}

TEST(SpearManagerTest, IncrementalScalarIsExact) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Mean();
  SpearWindowManager mgr(config, NumericField(0));
  double sum = 0.0;
  for (int i = 0; i < 500; ++i) {
    mgr.OnTuple(i, ScalarTuple(i, i * 0.5));
    sum += i * 0.5;
  }
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_FALSE((*results)[0].approximate);
  EXPECT_DOUBLE_EQ((*results)[0].scalar, sum / 500.0);
  EXPECT_EQ(mgr.decision_stats().windows_expedited, 1u);
  EXPECT_EQ(mgr.decision_stats().windows_exact, 0u);
}

TEST(SpearManagerTest, QuantileExpeditedWithAmpleBudget) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Median();
  config.budget = Budget::Tuples(500);  // >> 185 required
  SpearWindowManager mgr(config, NumericField(0));

  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextDouble() * 100.0;
    values.push_back(v);
    mgr.OnTuple(i % 1000, ScalarTuple(i % 1000, v));
  }
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_TRUE((*results)[0].approximate);
  EXPECT_EQ((*results)[0].tuples_processed, 500u);
  EXPECT_NEAR((*results)[0].scalar, 50.0, 8.0);
  EXPECT_EQ(mgr.decision_stats().windows_expedited, 1u);
}

TEST(SpearManagerTest, QuantileFallsBackOnTinyBudget) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Median();
  config.budget = Budget::Tuples(20);  // < 185 required
  SpearWindowManager mgr(config, NumericField(0));
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextDouble();
    values.push_back(v);
    mgr.OnTuple(i % 1000, ScalarTuple(i % 1000, v));
  }
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_FALSE((*results)[0].approximate);
  EXPECT_EQ((*results)[0].tuples_processed, 5000u);  // full window
  // Exact fallback must equal the true median.
  std::sort(values.begin(), values.end());
  EXPECT_NEAR((*results)[0].scalar,
              (values[2499] + values[2500]) / 2.0, 1e-9);
  EXPECT_EQ(mgr.decision_stats().windows_exact, 1u);
}

TEST(SpearManagerTest, SampledMeanRespectsAccuracySpec) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Mean();
  config.incremental_optimization = false;
  config.budget = Budget::Tuples(1000);
  SpearWindowManager mgr(config, NumericField(0));

  Rng rng(3);
  RunningStats truth;
  for (int i = 0; i < 47000; ++i) {
    const double v = 700.0 + 300.0 * rng.NextGaussian();
    truth.Update(v);
    mgr.OnTuple(i % 1000, ScalarTuple(i % 1000, v));
  }
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  const WindowResult& r = (*results)[0];
  EXPECT_TRUE(r.approximate);
  EXPECT_LE(r.estimated_error, 0.10);
  EXPECT_LE(RelativeError(r.scalar, truth.mean()), 0.10);
}

TEST(SpearManagerTest, SlidingWindowsEachDecideIndependently) {
  auto config = BaseConfig();
  config.window = WindowSpec::SlidingTime(300, 100);
  config.aggregate = AggregateSpec::Mean();
  SpearWindowManager mgr(config, NumericField(0));
  for (int t = 0; t < 1000; ++t) {
    mgr.OnTuple(t, ScalarTuple(t, 1.0));
  }
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  EXPECT_GT(results->size(), 5u);
  for (const auto& r : *results) EXPECT_DOUBLE_EQ(r.scalar, 1.0);
}

TEST(SpearManagerTest, GroupedUnknownExpeditesDenseGroups) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Mean();
  config.budget = Budget::Tuples(400);
  SpearWindowManager mgr(config, NumericField(1), KeyField(0));

  Rng rng(4);
  std::unordered_map<std::string, RunningStats> truth;
  for (int i = 0; i < 30000; ++i) {
    const std::string key = "g" + std::to_string(rng.NextBounded(4));
    const double v = 100.0 * (key[1] - '0' + 1) + rng.NextGaussian();
    truth[key].Update(v);
    mgr.OnTuple(i % 1000, GroupTuple(i % 1000, key, v));
  }
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  const WindowResult& r = (*results)[0];
  EXPECT_TRUE(r.approximate);
  ASSERT_EQ(r.groups.size(), truth.size());
  for (const auto& [key, value] : r.groups) {
    EXPECT_LE(RelativeError(value, truth.at(key).mean()), 0.10) << key;
  }
}

TEST(SpearManagerTest, GroupedUnknownFallsBackOnSparseGroups) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Mean();
  config.budget = Budget::Tuples(50);
  SpearWindowManager mgr(config, NumericField(1), KeyField(0));
  // 500 distinct groups >> budget of 50 group slots: tracker overflows.
  for (int i = 0; i < 500; ++i) {
    mgr.OnTuple(i, GroupTuple(i, "g" + std::to_string(i), 1.0));
  }
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_FALSE((*results)[0].approximate);
  EXPECT_EQ((*results)[0].groups.size(), 500u);  // exact: all groups
  EXPECT_EQ(mgr.decision_stats().windows_exact, 1u);
}

TEST(SpearManagerTest, GroupedKnownSamplesAtTupleArrival) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Mean();
  config.budget = Budget::Tuples(800);
  config.known_num_groups = 8;
  SpearWindowManager mgr(config, NumericField(1), KeyField(0));

  Rng rng(5);
  std::unordered_map<std::string, RunningStats> truth;
  for (int i = 0; i < 50000; ++i) {
    const std::string key = "c" + std::to_string(rng.NextBounded(8));
    const double v = 10.0 * (key[1] - '0' + 1) + 0.5 * rng.NextGaussian();
    truth[key].Update(v);
    mgr.OnTuple(i % 1000, GroupTuple(i % 1000, key, v));
  }
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  const WindowResult& r = (*results)[0];
  EXPECT_TRUE(r.approximate);
  ASSERT_EQ(r.groups.size(), 8u);
  // Expedited from per-group reservoirs: ~100 samples per group.
  EXPECT_LE(r.tuples_processed, 810u);
  for (const auto& [key, value] : r.groups) {
    EXPECT_LE(RelativeError(value, truth.at(key).mean()), 0.10) << key;
  }
}

TEST(SpearManagerTest, GroupedKnownFallsBackWhenMoreGroupsAppear) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Mean();
  config.budget = Budget::Tuples(100);
  config.known_num_groups = 2;  // wrong declaration
  SpearWindowManager mgr(config, NumericField(1), KeyField(0));
  for (int i = 0; i < 100; ++i) {
    mgr.OnTuple(i, GroupTuple(i, "g" + std::to_string(i % 5), 1.0));
  }
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE((*results)[0].approximate);
}

TEST(SpearManagerTest, CustomEstimatorDrivesDecision) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Mean();
  int calls = 0;
  config.custom_estimator =
      [&calls](const std::vector<double>& sample, const RunningStats&,
               std::uint64_t, const AccuracySpec&) -> Result<ScalarEstimate> {
    ++calls;
    ScalarEstimate est;
    est.estimate = sample.empty() ? 0.0 : sample.front();
    est.epsilon_hat = 0.05;
    est.accepted = true;
    return est;
  };
  SpearWindowManager mgr(config, NumericField(0));
  EXPECT_EQ(mgr.mode(), SpearMode::kScalarSampled);
  for (int i = 0; i < 100; ++i) mgr.OnTuple(i, ScalarTuple(i, 7.0));
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE((*results)[0].approximate);
  EXPECT_DOUBLE_EQ((*results)[0].scalar, 7.0);
  EXPECT_DOUBLE_EQ((*results)[0].estimated_error, 0.05);
}

TEST(SpearManagerTest, LateTuplesCounted) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Mean();
  SpearWindowManager mgr(config, NumericField(0));
  mgr.OnTuple(500, ScalarTuple(500, 1.0));
  (void)mgr.OnWatermark(1000);
  mgr.OnTuple(900, ScalarTuple(900, 1.0));
  EXPECT_EQ(mgr.decision_stats().late_tuples, 1u);
}

TEST(SpearManagerTest, SpillAndExactFallbackRoundTrip) {
  SecondaryStorage storage;
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Median();
  config.budget = Budget::Tuples(10);       // forces exact fallback
  config.buffer_memory_capacity = 100;      // forces spill
  SpearWindowManager mgr(config, NumericField(0), nullptr, &storage, "t");

  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    const double v = static_cast<double>(i);
    values.push_back(v);
    mgr.OnTuple(i, ScalarTuple(i, v));
  }
  EXPECT_GT(storage.TotalTuples(), 0u);
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_FALSE((*results)[0].approximate);
  EXPECT_DOUBLE_EQ((*results)[0].scalar, 249.5);
  EXPECT_EQ(storage.TotalTuples(), 0u);  // unspilled and erased
}

TEST(SpearManagerTest, SpillExpeditedPathNeverTouchesStorage) {
  SecondaryStorage storage;
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Median();
  config.budget = Budget::Tuples(400);
  config.buffer_memory_capacity = 100;
  SpearWindowManager mgr(config, NumericField(0), nullptr, &storage, "t");

  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    mgr.OnTuple(i % 1000, ScalarTuple(i % 1000, rng.NextDouble()));
  }
  const std::uint64_t gets_before = storage.get_calls();
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE((*results)[0].approximate);
  EXPECT_EQ(storage.get_calls(), gets_before);  // no S reads when expedited
  EXPECT_EQ(storage.TotalTuples(), 0u);         // expired run discarded
}

TEST(SpearManagerTest, BudgetMemoryStaysBounded) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Median();
  config.budget = Budget::Tuples(100);
  SpearWindowManager mgr(config, NumericField(0));
  for (int i = 0; i < 50000; ++i) {
    mgr.OnTuple(i % 1000, ScalarTuple(i % 1000, 1.0));
  }
  // One active window holding a 100-element sample + bookkeeping.
  EXPECT_LE(mgr.BudgetMemoryBytes(), 100 * sizeof(double) + 512);
  EXPECT_GT(mgr.BufferMemoryBytes(), 50000u);  // raw custody is separate
}

TEST(SpearManagerTest, DecisionStatsTallyAcrossWindows) {
  auto config = BaseConfig();
  config.window = WindowSpec::TumblingTime(100);
  config.aggregate = AggregateSpec::Median();
  config.budget = Budget::Tuples(250);
  SpearWindowManager mgr(config, NumericField(0));
  Rng rng(7);
  // Windows alternate between large (expedite) and tiny (sample==window,
  // exact-equivalent but still within epsilon -> expedited).
  for (int w = 0; w < 10; ++w) {
    const int n = (w % 2 == 0) ? 2000 : 50;
    for (int i = 0; i < n; ++i) {
      const Timestamp t = w * 100 + (i % 100);
      mgr.OnTuple(t, ScalarTuple(t, rng.NextDouble()));
    }
  }
  auto results = mgr.OnWatermark(10 * 100);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results->size(), 10u);
  const DecisionStats& stats = mgr.decision_stats();
  EXPECT_EQ(stats.windows_total, 10u);
  EXPECT_EQ(stats.windows_expedited + stats.windows_exact, 10u);
  EXPECT_EQ(stats.tuples_seen, 10250u);
  EXPECT_GT(stats.ExpediteRate(), 0.0);
}

TEST(SpearManagerTest, InvalidConfigAborts) {
  auto config = BaseConfig();
  config.accuracy.epsilon = 0.0;
  EXPECT_DEATH(SpearWindowManager(config, NumericField(0)), "Check failed");
}

TEST(SpearManagerTest, AdaptiveBudgetGrowsAfterFallbacks) {
  auto config = BaseConfig();
  config.window = WindowSpec::TumblingTime(100);
  config.aggregate = AggregateSpec::Median();
  config.budget = Budget::Tuples(40);  // below the ~96 the rank bound needs
  config.adaptive_budget = true;
  config.adaptive_options.max_budget = 4096;
  SpearWindowManager mgr(config, NumericField(0));

  Rng rng(11);
  // Several consecutive windows of 2000 noisy tuples: the first windows
  // fall back, the controller doubles the budget, and later windows
  // expedite.
  for (int w = 0; w < 8; ++w) {
    for (int i = 0; i < 2000; ++i) {
      const Timestamp t = w * 100 + (i % 100);
      mgr.OnTuple(t, ScalarTuple(t, rng.NextDouble()));
    }
    auto results = mgr.OnWatermark((w + 1) * 100);
    ASSERT_TRUE(results.ok());
  }
  const DecisionStats& stats = mgr.decision_stats();
  EXPECT_GT(stats.windows_exact, 0u) << "small initial budget must fall back";
  EXPECT_GT(stats.windows_expedited, 0u) << "grown budget must expedite";
  ASSERT_NE(mgr.budget_controller(), nullptr);
  EXPECT_GT(mgr.budget_controller()->grows(), 0u);
  EXPECT_GT(mgr.budget_elements(), 40u);
}

TEST(SpearManagerTest, LateTupleDemotesIncrementalToSampleEstimate) {
  auto config = BaseConfig();
  config.window = WindowSpec::SlidingTime(1000, 500);
  config.aggregate = AggregateSpec::Mean();
  config.budget = Budget::Tuples(500);
  SpearWindowManager mgr(config, NumericField(0));

  Rng rng(13);
  // Fill [0, 1500): windows [0,1000), [500,1500), ... are active.
  for (int t = 0; t < 1500; ++t) {
    mgr.OnTuple(t, ScalarTuple(t, 50.0 + rng.NextGaussian()));
  }
  // Watermark 1000 emits [-500,500) and [0,1000) — exact incremental,
  // no anomaly yet.
  auto first = mgr.OnWatermark(1000);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->size(), 2u);
  EXPECT_FALSE((*first)[0].approximate);
  EXPECT_FALSE((*first)[1].approximate);

  // A late tuple at 900 lands inside the still-active window [500,1500):
  // its incremental accumulator can no longer be trusted.
  mgr.OnTuple(900, ScalarTuple(900, 50.0));
  EXPECT_EQ(mgr.decision_stats().late_tuples, 1u);

  auto second = mgr.OnWatermark(1500);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->size(), 1u);
  // Anomalous window: produced from the sample with an accuracy estimate
  // (the data is tight enough for the CI to accept).
  EXPECT_TRUE((*second)[0].approximate);
  EXPECT_LE((*second)[0].estimated_error, 0.10);
  EXPECT_NEAR((*second)[0].scalar, 50.0, 2.0);
}

TEST(SpearManagerTest, ExplicitAnomalyFallsBackToExactWhenSampleTooSmall) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Mean();
  config.budget = Budget::Tuples(35);  // tiny: CI too wide on noisy data
  SpearWindowManager mgr(config, NumericField(0));
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    // cv ~ 3: a 35-element sample cannot certify 10%.
    mgr.OnTuple(i % 1000, ScalarTuple(i % 1000,
                                      1.0 + 3.0 * rng.NextGaussian()));
  }
  mgr.NotifyDeliveryAnomaly();
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_FALSE((*results)[0].approximate);  // rescanned exactly
  EXPECT_EQ(mgr.decision_stats().windows_exact, 1u);
}

TEST(SpearManagerTest, QuantileBoundConfigChangesDecision) {
  // b=120 sits between the normal-rank requirement (~96) and Hoeffding's
  // (~185) for eps=10% @ 95%: the configured bound decides.
  auto make = [](QuantileBound bound) {
    auto config = BaseConfig();
    config.aggregate = AggregateSpec::Median();
    config.budget = Budget::Tuples(120);
    config.quantile_bound = bound;
    return config;
  };
  Rng rng(23);
  std::vector<Tuple> stream;
  for (int i = 0; i < 20000; ++i) {
    stream.push_back(ScalarTuple(i % 1000, rng.NextDouble()));
  }

  SpearWindowManager normal(make(QuantileBound::kNormalRank),
                            NumericField(0));
  SpearWindowManager hoeffding(make(QuantileBound::kHoeffding),
                               NumericField(0));
  for (const Tuple& t : stream) {
    normal.OnTuple(t.event_time(), t);
    hoeffding.OnTuple(t.event_time(), t);
  }
  auto normal_results = normal.OnWatermark(1000);
  auto hoeffding_results = hoeffding.OnWatermark(1000);
  ASSERT_TRUE(normal_results.ok());
  ASSERT_TRUE(hoeffding_results.ok());
  EXPECT_TRUE((*normal_results)[0].approximate);
  EXPECT_FALSE((*hoeffding_results)[0].approximate);
}

TEST(SpearManagerTest, SlidingCountWindows) {
  auto config = BaseConfig();
  config.window = WindowSpec::SlidingCount(1000, 500);
  config.aggregate = AggregateSpec::Median();
  config.budget = Budget::Tuples(200);
  SpearWindowManager mgr(config, NumericField(0));
  Rng rng(29);
  // Coordinates are sequence numbers for count windows; the driver (bolt)
  // assigns them — emulate it here.
  std::int64_t seq = 0;
  std::vector<WindowResult> all;
  for (int i = 0; i < 5000; ++i) {
    mgr.OnTuple(seq, ScalarTuple(i, rng.NextDouble() * 10.0));
    ++seq;
    auto results = mgr.OnWatermark(seq);
    ASSERT_TRUE(results.ok());
    for (auto& r : *results) all.push_back(std::move(r));
  }
  // 5000 tuples, range 1000, slide 500 -> windows ending at 1000, 1500,
  // ..., 5000 (plus the partial lead-in window [-500, 500)).
  EXPECT_GE(all.size(), 9u);
  for (const WindowResult& r : all) {
    if (r.bounds.start < 0) continue;  // lead-in partial window
    EXPECT_EQ(r.window_size, 1000u);
    EXPECT_TRUE(r.approximate);
    EXPECT_NEAR(r.scalar, 5.0, 1.5);
  }
}

TEST(SpearManagerTest, FixedBudgetHasNoController) {
  auto config = BaseConfig();
  SpearWindowManager mgr(config, NumericField(0));
  EXPECT_EQ(mgr.budget_controller(), nullptr);
  EXPECT_EQ(mgr.budget_elements(), 200u);
}

TEST(SpearManagerTest, ProcessingNsPopulated) {
  auto config = BaseConfig();
  config.aggregate = AggregateSpec::Median();
  SpearWindowManager mgr(config, NumericField(0));
  for (int i = 0; i < 1000; ++i) mgr.OnTuple(i, ScalarTuple(i, 1.0));
  auto results = mgr.OnWatermark(1000);
  ASSERT_TRUE(results.ok());
  EXPECT_GT((*results)[0].processing_ns, 0);
}

}  // namespace
}  // namespace spear
