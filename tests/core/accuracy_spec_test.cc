#include "core/accuracy_spec.h"

#include <gtest/gtest.h>

#include "common/byte_size.h"

namespace spear {
namespace {

TEST(AccuracySpecTest, DefaultsValid) {
  AccuracySpec spec;
  EXPECT_TRUE(spec.Validate().ok());
  EXPECT_DOUBLE_EQ(spec.epsilon, 0.10);
  EXPECT_DOUBLE_EQ(spec.confidence, 0.95);
}

TEST(AccuracySpecTest, RejectsOutOfRange) {
  EXPECT_FALSE((AccuracySpec{0.0, 0.95}.Validate().ok()));
  EXPECT_FALSE((AccuracySpec{1.0, 0.95}.Validate().ok()));
  EXPECT_FALSE((AccuracySpec{0.1, 0.0}.Validate().ok()));
  EXPECT_FALSE((AccuracySpec{0.1, 1.0}.Validate().ok()));
  EXPECT_TRUE((AccuracySpec{0.01, 0.999}.Validate().ok()));
}

TEST(BudgetTest, TupleDenominated) {
  const Budget b = Budget::Tuples(150);
  EXPECT_FALSE(b.IsByteDenominated());
  EXPECT_EQ(b.ElementsFor(sizeof(double)), 150u);
  EXPECT_EQ(b.ElementsFor(1000), 150u);  // element size irrelevant
  EXPECT_TRUE(b.Validate().ok());
}

TEST(BudgetTest, ByteDenominatedReservesBookkeeping) {
  // The paper's example: 1 MB of f-byte fares holds 10^6/f - 2 values.
  const Budget b = Budget::Bytes(1 * kMiB);
  EXPECT_TRUE(b.IsByteDenominated());
  EXPECT_EQ(b.ElementsFor(8), kMiB / 8 - 2);
}

TEST(BudgetTest, TinyByteBudgetYieldsZeroElements) {
  EXPECT_EQ(Budget::Bytes(8).ElementsFor(8), 0u);
  EXPECT_EQ(Budget::Bytes(24).ElementsFor(8), 1u);
}

TEST(BudgetTest, ZeroBudgetInvalid) {
  EXPECT_FALSE(Budget::Tuples(0).Validate().ok());
}

}  // namespace
}  // namespace spear
