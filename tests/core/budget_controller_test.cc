#include "core/budget_controller.h"

#include <gtest/gtest.h>

#include <limits>

namespace spear {
namespace {

BudgetController::Options BaseOptions() {
  BudgetController::Options options;
  options.initial_budget = 1000;
  options.min_budget = 100;
  options.max_budget = 8000;
  options.grow_factor = 2.0;
  options.shrink_step = 100;
  options.shrink_headroom = 0.5;
  return options;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(BudgetControllerTest, OptionsValidated) {
  {
    auto o = BaseOptions();
    o.min_budget = 0;
    EXPECT_TRUE(BudgetController::Make(o).status().IsInvalid());
  }
  {
    auto o = BaseOptions();
    o.max_budget = 50;  // < min
    EXPECT_TRUE(BudgetController::Make(o).status().IsInvalid());
  }
  {
    auto o = BaseOptions();
    o.initial_budget = 9;
    EXPECT_TRUE(BudgetController::Make(o).status().IsInvalid());
  }
  {
    auto o = BaseOptions();
    o.grow_factor = 1.0;
    EXPECT_TRUE(BudgetController::Make(o).status().IsInvalid());
  }
  {
    auto o = BaseOptions();
    o.shrink_headroom = 1.5;
    EXPECT_TRUE(BudgetController::Make(o).status().IsInvalid());
  }
  EXPECT_TRUE(BudgetController::Make(BaseOptions()).ok());
}

TEST(BudgetControllerTest, FallbackGrowsMultiplicatively) {
  auto c = BudgetController::Make(BaseOptions());
  EXPECT_EQ(c->budget(), 1000u);
  c->OnWindowOutcome(false, kInf, 0.1);
  EXPECT_EQ(c->budget(), 2000u);
  c->OnWindowOutcome(false, kInf, 0.1);
  EXPECT_EQ(c->budget(), 4000u);
  EXPECT_EQ(c->grows(), 2u);
}

TEST(BudgetControllerTest, GrowthCappedAtMax) {
  auto c = BudgetController::Make(BaseOptions());
  for (int i = 0; i < 10; ++i) c->OnWindowOutcome(false, kInf, 0.1);
  EXPECT_EQ(c->budget(), 8000u);
}

TEST(BudgetControllerTest, ComfortableAcceptShrinksAdditively) {
  auto c = BudgetController::Make(BaseOptions());
  c->OnWindowOutcome(true, 0.01, 0.1);  // well below 0.5 * 0.1
  EXPECT_EQ(c->budget(), 900u);
  EXPECT_EQ(c->shrinks(), 1u);
}

TEST(BudgetControllerTest, BorderlineAcceptHoldsSteady) {
  auto c = BudgetController::Make(BaseOptions());
  c->OnWindowOutcome(true, 0.08, 0.1);  // above 0.5 * 0.1: keep
  EXPECT_EQ(c->budget(), 1000u);
  EXPECT_EQ(c->shrinks(), 0u);
}

TEST(BudgetControllerTest, ShrinkFloorsAtMin) {
  auto c = BudgetController::Make(BaseOptions());
  for (int i = 0; i < 50; ++i) c->OnWindowOutcome(true, 0.0, 0.1);
  EXPECT_EQ(c->budget(), 100u);
}

TEST(BudgetControllerTest, OscillationConvergesIntoBand) {
  // Alternating comfortable accepts and fallbacks must stay within
  // bounds and never get stuck at an extreme.
  auto c = BudgetController::Make(BaseOptions());
  for (int i = 0; i < 100; ++i) {
    c->OnWindowOutcome(i % 3 == 0, i % 3 == 0 ? 0.01 : kInf, 0.1);
    EXPECT_GE(c->budget(), 100u);
    EXPECT_LE(c->budget(), 8000u);
  }
}

}  // namespace
}  // namespace spear
