#include "core/estimators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/quantile.h"
#include "stats/reservoir_sampler.h"

namespace spear {
namespace {

constexpr AccuracySpec kTenPercent{0.10, 0.95};

/// Builds (sample, window_stats, window) from a generator callable.
struct ScalarFixture {
  std::vector<double> window;
  std::vector<double> sample;
  RunningStats stats;

  template <typename Gen>
  ScalarFixture(std::size_t n, std::size_t budget, Gen gen) {
    ReservoirSampler<double> sampler(budget, 42);
    for (std::size_t i = 0; i < n; ++i) {
      const double v = gen(i);
      window.push_back(v);
      stats.Update(v);
      sampler.Offer(v);
    }
    sample = sampler.sample();
  }
};

TEST(EstimateScalarTest, RejectsHolistic) {
  RunningStats stats;
  stats.Update(1.0);
  EXPECT_TRUE(EstimateScalar(AggregateSpec::Median(), {1.0}, stats, 1,
                             kTenPercent)
                  .status()
                  .IsFailedPrecondition());
}

TEST(EstimateScalarTest, ValidatesInput) {
  RunningStats stats;
  EXPECT_TRUE(EstimateScalar(AggregateSpec::Mean(), {}, stats, 0, kTenPercent)
                  .status()
                  .IsInvalid());
  EXPECT_TRUE(EstimateScalar(AggregateSpec::Mean(), {1.0, 2.0}, stats, 1,
                             kTenPercent)
                  .status()
                  .IsInvalid())
      << "window smaller than sample";
}

TEST(EstimateScalarTest, CountIsAlwaysExact) {
  ScalarFixture f(10000, 100, [](std::size_t i) { return double(i); });
  auto est = EstimateScalar(AggregateSpec::Count(), f.sample, f.stats, 10000,
                            kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->accepted);
  EXPECT_DOUBLE_EQ(est->estimate, 10000.0);
  EXPECT_DOUBLE_EQ(est->epsilon_hat, 0.0);
}

TEST(EstimateScalarTest, MeanAcceptsLowVarianceData) {
  Rng rng(1);
  ScalarFixture f(50000, 1000,
                  [&](std::size_t) { return 100.0 + rng.NextGaussian(); });
  auto est = EstimateScalar(AggregateSpec::Mean(), f.sample, f.stats, 50000,
                            kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->accepted);
  EXPECT_NEAR(est->estimate, 100.0, 1.0);
  EXPECT_LT(est->epsilon_hat, 0.01);
}

TEST(EstimateScalarTest, MeanRejectsTinyBudgetOnNoisyData) {
  Rng rng(2);
  // Relative noise is huge: cv ~ 10.
  ScalarFixture f(50000, 5,
                  [&](std::size_t) { return 1.0 + 10.0 * rng.NextGaussian(); });
  auto est = EstimateScalar(AggregateSpec::Mean(), f.sample, f.stats, 50000,
                            kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est->accepted);
  EXPECT_GT(est->epsilon_hat, 0.10);
}

TEST(EstimateScalarTest, FullSampleIsExact) {
  Rng rng(3);
  ScalarFixture f(500, 500, [&](std::size_t) { return rng.NextDouble(); });
  auto est = EstimateScalar(AggregateSpec::Mean(), f.sample, f.stats, 500,
                            kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->accepted);
  EXPECT_DOUBLE_EQ(est->epsilon_hat, 0.0);
  EXPECT_NEAR(est->estimate, f.stats.mean(), 1e-9);
}

TEST(EstimateScalarTest, SumScalesMeanByWindowSize) {
  Rng rng(4);
  ScalarFixture f(10000, 500,
                  [&](std::size_t) { return 5.0 + 0.1 * rng.NextGaussian(); });
  auto mean_est = EstimateScalar(AggregateSpec::Mean(), f.sample, f.stats,
                                 10000, kTenPercent);
  auto sum_est = EstimateScalar(AggregateSpec::Sum(), f.sample, f.stats,
                                10000, kTenPercent);
  ASSERT_TRUE(mean_est.ok());
  ASSERT_TRUE(sum_est.ok());
  EXPECT_NEAR(sum_est->estimate, mean_est->estimate * 10000, 1e-6);
  EXPECT_NEAR(sum_est->epsilon_hat, mean_est->epsilon_hat, 1e-12);
}

TEST(EstimateScalarTest, VarianceAndStdDevRelation) {
  Rng rng(5);
  ScalarFixture f(20000, 2000,
                  [&](std::size_t) { return 3.0 * rng.NextGaussian(); });
  auto var_est = EstimateScalar(AggregateSpec::Variance(), f.sample, f.stats,
                                20000, kTenPercent);
  auto sd_est = EstimateScalar(AggregateSpec::StdDev(), f.sample, f.stats,
                               20000, kTenPercent);
  ASSERT_TRUE(var_est.ok());
  ASSERT_TRUE(sd_est.ok());
  EXPECT_TRUE(var_est->accepted);
  EXPECT_NEAR(var_est->estimate, 9.0, 1.0);
  EXPECT_NEAR(sd_est->estimate, 3.0, 0.2);
  EXPECT_NEAR(sd_est->epsilon_hat, var_est->epsilon_hat / 2.0, 1e-12);
}

TEST(EstimateScalarTest, MinMaxNeverAcceptedOnPartialSample) {
  Rng rng(6);
  ScalarFixture f(1000, 100, [&](std::size_t) { return rng.NextDouble(); });
  for (auto spec : {AggregateSpec::Min(), AggregateSpec::Max()}) {
    auto est = EstimateScalar(spec, f.sample, f.stats, 1000, kTenPercent);
    ASSERT_TRUE(est.ok());
    EXPECT_FALSE(est->accepted) << spec.ToString();
    EXPECT_TRUE(std::isinf(est->epsilon_hat));
  }
}

TEST(EstimateScalarTest, ZeroMeanGivesInfiniteRelativeError) {
  Rng rng(7);
  std::vector<double> sample;
  RunningStats stats;
  // Symmetric around zero: mean ~ 0, relative error undefined.
  for (int i = 0; i < 1000; ++i) {
    const double v = (i % 2 == 0) ? 1.0 : -1.0;
    sample.push_back(v);
    stats.Update(v);
  }
  auto est = EstimateScalar(AggregateSpec::Mean(), sample, stats, 100000,
                            kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est->accepted);
}

// ---------------------------------------------------------------------------
// Quantile estimation
// ---------------------------------------------------------------------------

TEST(EstimateQuantileTest, AcceptsWhenBudgetSufficient) {
  // Hoeffding for eps=0.1 @95% needs 185; give 1000 of 47000.
  Rng rng(8);
  std::vector<double> sample;
  for (int i = 0; i < 1000; ++i) sample.push_back(rng.NextDouble() * 100.0);
  auto est = EstimateScalarQuantile(0.5, sample, 47000, kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->accepted);
  EXPECT_NEAR(est->estimate, 50.0, 10.0);
  EXPECT_LT(est->epsilon_hat, 0.10);
}

TEST(EstimateQuantileTest, RejectsWhenBudgetTooSmall) {
  Rng rng(9);
  std::vector<double> sample;
  for (int i = 0; i < 50; ++i) sample.push_back(rng.NextDouble());
  auto est = EstimateScalarQuantile(0.5, sample, 47000, kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est->accepted);
  EXPECT_GT(est->epsilon_hat, 0.10);
}

TEST(EstimateQuantileTest, FullWindowSampleIsExact) {
  std::vector<double> sample{3.0, 1.0, 2.0};
  auto est = EstimateScalarQuantile(0.5, sample, 3, kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->accepted);
  EXPECT_DOUBLE_EQ(est->epsilon_hat, 0.0);
  EXPECT_DOUBLE_EQ(est->estimate, 2.0);
}

TEST(EstimateQuantileTest, NormalRankBoundAcceptsSmallerSamples) {
  Rng rng(10);
  std::vector<double> sample;
  for (int i = 0; i < 120; ++i) sample.push_back(rng.NextDouble());
  // 120 < 185 (Hoeffding) but >= ~96 (normal rank) for eps=0.1 @ 95%.
  auto hoeffding = EstimateScalarQuantile(0.5, sample, 100000, kTenPercent,
                                          QuantileBound::kHoeffding);
  auto normal = EstimateScalarQuantile(0.5, sample, 100000, kTenPercent,
                                       QuantileBound::kNormalRank);
  EXPECT_FALSE(hoeffding->accepted);
  EXPECT_TRUE(normal->accepted);
}

TEST(AchievedQuantileErrorTest, ShrinksWithSampleSize) {
  double prev = 1.0;
  for (std::uint64_t n : {10u, 100u, 1000u, 10000u}) {
    auto e = AchievedQuantileError(n, 1'000'000, 0.5, 0.95,
                                   QuantileBound::kHoeffding);
    ASSERT_TRUE(e.ok());
    EXPECT_LT(*e, prev);
    prev = *e;
  }
}

/// Empirical guarantee: when the estimator accepts, the sample quantile's
/// *rank error* should be within epsilon for ~confidence of trials.
class QuantileGuaranteeSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileGuaranteeSweep, RankErrorWithinEpsilonMostOfTheTime) {
  const double phi = GetParam();
  constexpr double kEps = 0.05;
  const AccuracySpec spec{kEps, 0.95};
  constexpr int kTrials = 200;
  constexpr std::uint64_t kWindow = 20000;

  // Skewed population.
  Rng pop_rng(77);
  std::vector<double> population;
  for (std::uint64_t i = 0; i < kWindow; ++i) {
    population.push_back(std::exp(pop_rng.NextGaussian()));
  }
  std::vector<double> sorted = population;
  std::sort(sorted.begin(), sorted.end());

  int violations = 0, accepted = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    ReservoirSampler<double> sampler(1200,
                                     static_cast<std::uint64_t>(trial) + 1);
    for (double v : population) sampler.Offer(v);
    auto est = EstimateScalarQuantile(phi, sampler.sample(), kWindow, spec);
    ASSERT_TRUE(est.ok());
    if (!est->accepted) continue;
    ++accepted;
    const double rank = RankOf(sorted, est->estimate);
    if (std::fabs(rank - phi) > kEps) ++violations;
  }
  ASSERT_GT(accepted, kTrials / 2);  // budget should be big enough
  EXPECT_LE(violations, accepted / 10);  // ~95% guarantee with slack
}

INSTANTIATE_TEST_SUITE_P(Phis, QuantileGuaranteeSweep,
                         ::testing::Values(0.25, 0.5, 0.75, 0.95));

// ---------------------------------------------------------------------------
// Grouped estimation
// ---------------------------------------------------------------------------

GroupStatsTracker MakeTracker(
    const std::vector<std::tuple<std::string, std::size_t, double, double>>&
        groups,
    std::size_t max_groups = 0) {
  // (key, count, mean, spread): values mean +- spread alternating.
  GroupStatsTracker tracker(max_groups);
  for (const auto& [key, count, mean, spread] : groups) {
    for (std::size_t i = 0; i < count; ++i) {
      tracker.Update(key, mean + ((i % 2 == 0) ? spread : -spread));
    }
  }
  return tracker;
}

TEST(EstimateGroupedTest, OverflowForcesExact) {
  GroupStatsTracker tracker(1);
  tracker.Update("a", 1.0);
  tracker.Update("b", 1.0);  // overflow
  auto est = EstimateGrouped(AggregateSpec::Mean(), tracker, 100,
                             kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est->accepted);
  EXPECT_TRUE(std::isinf(est->epsilon_hat));
}

TEST(EstimateGroupedTest, MoreGroupsThanBudgetForcesExact) {
  GroupStatsTracker tracker;
  for (int i = 0; i < 50; ++i) tracker.Update("g" + std::to_string(i), 1.0);
  auto est = EstimateGrouped(AggregateSpec::Mean(), tracker, 10, kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est->accepted);
}

TEST(EstimateGroupedTest, EmptyTrackerForcesExact) {
  GroupStatsTracker tracker;
  auto est = EstimateGrouped(AggregateSpec::Mean(), tracker, 10, kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est->accepted);
}

TEST(EstimateGroupedTest, TightGroupsAccepted) {
  auto tracker = MakeTracker({{"a", 5000, 100.0, 1.0},
                              {"b", 3000, 50.0, 0.5},
                              {"c", 2000, 200.0, 2.0}});
  auto est = EstimateGrouped(AggregateSpec::Mean(), tracker, 500,
                             kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->accepted);
  EXPECT_LT(est->epsilon_hat, 0.10);
  EXPECT_EQ(est->allocations.size(), 3u);
  EXPECT_EQ(est->group_errors.size(), 3u);
}

TEST(EstimateGroupedTest, NoisyGroupsRejected) {
  // cv per group ~ 20 with a budget of 10 per group: hopeless.
  auto tracker = MakeTracker({{"a", 5000, 1.0, 20.0},
                              {"b", 5000, 1.0, 20.0}});
  auto est = EstimateGrouped(AggregateSpec::Mean(), tracker, 20, kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(est->accepted);
}

TEST(EstimateGroupedTest, CountAggregateAlwaysAcceptedWithinCapacity) {
  auto tracker = MakeTracker({{"a", 100, 1.0, 1.0}, {"b", 5, 1.0, 1.0}});
  auto est = EstimateGrouped(AggregateSpec::Count(), tracker, 50,
                             kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->accepted);
  EXPECT_DOUBLE_EQ(est->epsilon_hat, 0.0);
}

TEST(EstimateGroupedTest, L1VsLInfDecisionsDiffer) {
  // One mediocre group among many good ones: with ~40 samples per group
  // the bad group's error is ~0.5 (z*1.6/sqrt(40)/1), so L1 over 10
  // groups is ~0.05 (accept at 10%) while LInf is ~0.5 (reject).
  auto tracker = MakeTracker({{"good1", 4000, 100.0, 0.1},
                              {"good2", 4000, 100.0, 0.1},
                              {"good3", 4000, 100.0, 0.1},
                              {"good4", 4000, 100.0, 0.1},
                              {"good5", 4000, 100.0, 0.1},
                              {"good6", 4000, 100.0, 0.1},
                              {"good7", 4000, 100.0, 0.1},
                              {"good8", 4000, 100.0, 0.1},
                              {"good9", 4000, 100.0, 0.1},
                              {"bad", 4000, 1.0, 1.6}});
  auto l1 = EstimateGrouped(AggregateSpec::Mean(), tracker, 400, kTenPercent,
                            GroupErrorNorm::kL1);
  auto linf = EstimateGrouped(AggregateSpec::Mean(), tracker, 400,
                              kTenPercent, GroupErrorNorm::kLInf);
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(linf.ok());
  EXPECT_TRUE(l1->accepted);
  EXPECT_FALSE(linf->accepted);
}

TEST(EstimateGroupedWithAllocationsTest, KnownGroupReservoirSizes) {
  auto tracker = MakeTracker({{"a", 1000, 10.0, 0.1}, {"b", 500, 5.0, 0.1}});
  std::vector<GroupAllocation> allocs{{"a", 1000, 200}, {"b", 500, 200}};
  auto est = EstimateGroupedWithAllocations(AggregateSpec::Mean(), tracker,
                                            allocs, kTenPercent);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(est->accepted);
}

TEST(EstimateGroupedWithAllocationsTest, EmptyAllocationsInvalid) {
  GroupStatsTracker tracker;
  EXPECT_TRUE(EstimateGroupedWithAllocations(AggregateSpec::Mean(), tracker,
                                             {}, kTenPercent)
                  .status()
                  .IsInvalid());
}

TEST(EstimateGroupedTest, InlineAllocationMatchesCongressAllocate) {
  // EstimateGrouped computes basic-congress allocations straight off the
  // tracker (hot path); the result must be identical to the reference
  // CongressAllocate implementation.
  Rng rng(47);
  GroupStatsTracker tracker;
  std::unordered_map<std::string, std::uint64_t> frequencies;
  for (int g = 0; g < 200; ++g) {
    const std::string key = "g" + std::to_string(g);
    const std::uint64_t freq = 1 + rng.NextBounded(500);
    for (std::uint64_t i = 0; i < freq; ++i) tracker.Update(key, 1.0);
    frequencies[key] = freq;
  }
  for (std::uint64_t budget : {200u, 1000u, 5000u}) {
    auto est = EstimateGrouped(AggregateSpec::Mean(), tracker, budget,
                               kTenPercent);
    auto reference = CongressAllocate(frequencies, budget);
    ASSERT_TRUE(est.ok());
    ASSERT_TRUE(reference.ok());
    ASSERT_EQ(est->allocations.size(), reference->size());
    for (std::size_t i = 0; i < reference->size(); ++i) {
      EXPECT_EQ(est->allocations[i].key, (*reference)[i].key);
      EXPECT_EQ(est->allocations[i].frequency, (*reference)[i].frequency);
      EXPECT_EQ(est->allocations[i].sample_size, (*reference)[i].sample_size)
          << (*reference)[i].key << " @ budget " << budget;
    }
  }
}

TEST(EstimateGroupedTest, GroupedQuantileUsesRankBound) {
  auto tracker = MakeTracker({{"a", 10000, 10.0, 3.0},
                              {"b", 10000, 20.0, 5.0}});
  // 250 per group >= 185 (Hoeffding, eps=0.1): accept.
  auto big = EstimateGrouped(AggregateSpec::Percentile(0.9), tracker, 500,
                             kTenPercent);
  ASSERT_TRUE(big.ok());
  EXPECT_TRUE(big->accepted);
  // 10 per group: reject.
  auto small = EstimateGrouped(AggregateSpec::Percentile(0.9), tracker, 20,
                               kTenPercent);
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(small->accepted);
}

}  // namespace
}  // namespace spear
