#include "core/spear_config.h"

#include <gtest/gtest.h>

#include <thread>

namespace spear {
namespace {

TEST(SpearOperatorConfigTest, DefaultsValid) {
  SpearOperatorConfig config;
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_TRUE(config.incremental_optimization);
  EXPECT_FALSE(config.adaptive_budget);
  EXPECT_EQ(config.known_num_groups, 0u);
  EXPECT_EQ(config.quantile_bound, QuantileBound::kNormalRank);
}

TEST(SpearOperatorConfigTest, RejectsBadPieces) {
  {
    SpearOperatorConfig config;
    config.accuracy.epsilon = 0.0;
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    SpearOperatorConfig config;
    config.window = WindowSpec{WindowType::kTimeBased, 10, 20};  // slide>range
    EXPECT_FALSE(config.Validate().ok());
  }
  {
    SpearOperatorConfig config;
    config.aggregate = AggregateSpec::Percentile(1.5);
    EXPECT_FALSE(config.Validate().ok());
  }
}

TEST(DecisionStatsTest, ExpediteRateAndAccumulate) {
  DecisionStats a;
  EXPECT_DOUBLE_EQ(a.ExpediteRate(), 0.0);  // no windows: no rate
  a.windows_total = 10;
  a.windows_expedited = 7;
  a.windows_exact = 3;
  a.tuples_seen = 100;
  EXPECT_DOUBLE_EQ(a.ExpediteRate(), 0.7);

  DecisionStats b;
  b.windows_total = 10;
  b.windows_expedited = 1;
  b.late_tuples = 4;
  a.Accumulate(b);
  EXPECT_EQ(a.windows_total, 20u);
  EXPECT_EQ(a.windows_expedited, 8u);
  EXPECT_EQ(a.late_tuples, 4u);
  EXPECT_DOUBLE_EQ(a.ExpediteRate(), 0.4);
}

TEST(DecisionStatsCollectorTest, ThreadSafeAggregation) {
  DecisionStatsCollector collector;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&collector] {
      DecisionStats stats;
      stats.windows_total = 5;
      stats.windows_expedited = 3;
      collector.Add(stats);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(collector.PerWorker().size(), 8u);
  const DecisionStats total = collector.Total();
  EXPECT_EQ(total.windows_total, 40u);
  EXPECT_EQ(total.windows_expedited, 24u);
  collector.Reset();
  EXPECT_TRUE(collector.PerWorker().empty());
  EXPECT_EQ(collector.Total().windows_total, 0u);
}

}  // namespace
}  // namespace spear
