#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "core/spear_window_manager.h"
#include "storage/secondary_storage.h"
#include "tuple/field_extractor.h"

namespace spear {
namespace {

Tuple NumTuple(std::int64_t t, double v) {
  return Tuple(t, std::vector<Value>{Value(v)});
}

SpearOperatorConfig MeanConfig() {
  SpearOperatorConfig config;
  config.window = WindowSpec::TumblingTime(100);
  config.aggregate = AggregateSpec::Mean();
  config.budget = Budget::Tuples(32);
  config.accuracy = AccuracySpec{0.20, 0.95};
  return config;
}

// Snapshot mid-window, restore into a fresh manager, feed both the same
// remaining tuples: the recovered manager must produce the same value
// (incremental accumulators survive the round trip exactly) and flag the
// window as recovered.
TEST(SpearSnapshotTest, RoundTripContinuesExactlyForIncrementalMean) {
  const SpearOperatorConfig config = MeanConfig();
  SpearWindowManager primary(config, NumericField(0));
  for (int i = 0; i < 50; ++i) {
    primary.OnTuple(i, NumTuple(i, static_cast<double>((i * 37) % 101)));
  }
  Result<std::string> payload = primary.SnapshotState();
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();

  SpearWindowManager restored(config, NumericField(0));
  ASSERT_TRUE(restored.RestoreState(*payload).ok());

  for (int i = 50; i < 100; ++i) {
    const Tuple t = NumTuple(i, static_cast<double>((i * 37) % 101));
    primary.OnTuple(i, t);
    restored.OnTuple(i, t);
  }
  auto primary_results = primary.OnWatermark(200);
  auto restored_results = restored.OnWatermark(200);
  ASSERT_TRUE(primary_results.ok());
  ASSERT_TRUE(restored_results.ok());
  ASSERT_EQ(primary_results->size(), 1u);
  ASSERT_EQ(restored_results->size(), 1u);

  const WindowResult& clean = (*primary_results)[0];
  const WindowResult& recovered = (*restored_results)[0];
  EXPECT_FALSE(clean.recovered);
  EXPECT_TRUE(recovered.recovered);
  // No replay gap: full state, exact same mean.
  EXPECT_DOUBLE_EQ(recovered.scalar, clean.scalar);
  EXPECT_EQ(recovered.window_size, clean.window_size);
  EXPECT_EQ(restored.decision_stats().windows_recovered, 1u);
  EXPECT_EQ(primary.decision_stats().windows_recovered, 0u);
}

// Grouped state survives the round trip: the restored manager still knows
// every group and answers each one. A recovered grouped window cannot be
// exact (the raw buffer did not survive), so it is a flagged estimate from
// the restored stratified reservoirs — group *membership* is preserved
// bit for bit, group *values* are sample estimates in the data's range.
TEST(SpearSnapshotTest, RoundTripPreservesGroupedState) {
  SpearOperatorConfig config = MeanConfig();
  config.known_num_groups = 4;
  auto key = [](const Tuple& t) {
    return std::to_string(t.event_time() % 4);
  };

  SpearWindowManager primary(config, NumericField(0), key);
  for (int i = 0; i < 80; ++i) {
    primary.OnTuple(i, NumTuple(i, static_cast<double>(i % 13)));
  }
  Result<std::string> payload = primary.SnapshotState();
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();

  SpearWindowManager restored(config, NumericField(0), key);
  ASSERT_TRUE(restored.RestoreState(*payload).ok());
  for (int i = 80; i < 100; ++i) {
    const Tuple t = NumTuple(i, static_cast<double>(i % 13));
    primary.OnTuple(i, t);
    restored.OnTuple(i, t);
  }
  auto primary_results = primary.OnWatermark(200);
  auto restored_results = restored.OnWatermark(200);
  ASSERT_TRUE(primary_results.ok());
  ASSERT_TRUE(restored_results.ok()) << restored_results.status().ToString();
  ASSERT_EQ(restored_results->size(), 1u);
  const WindowResult& clean = (*primary_results)[0];
  const WindowResult& recovered = (*restored_results)[0];
  ASSERT_TRUE(recovered.is_grouped);
  ASSERT_EQ(recovered.groups.size(), clean.groups.size());
  for (std::size_t g = 0; g < clean.groups.size(); ++g) {
    EXPECT_EQ(recovered.groups[g].first, clean.groups[g].first);
    // Values 0..12: any estimate from restored per-group reservoirs lands
    // in-range; a lost or zeroed sampler would not.
    EXPECT_GE(recovered.groups[g].second, 0.0);
    EXPECT_LE(recovered.groups[g].second, 12.0);
  }
  EXPECT_TRUE(recovered.recovered);
  EXPECT_TRUE(recovered.approximate);
  EXPECT_FALSE(clean.recovered);
  EXPECT_EQ(restored.decision_stats().windows_recovered, 1u);
}

// The snapshot is O(b) in the budget, not O(|S_w|) in the window: feeding
// 50x more tuples must not grow the payload materially.
TEST(SpearSnapshotTest, SnapshotSizeIsBudgetBoundNotWindowBound) {
  SpearOperatorConfig config = MeanConfig();
  config.window = WindowSpec::TumblingTime(100000);
  config.aggregate = AggregateSpec::Median();  // holistic: keeps a sample

  SpearWindowManager small(config, NumericField(0));
  for (int i = 0; i < 200; ++i) small.OnTuple(i, NumTuple(i, i));
  SpearWindowManager large(config, NumericField(0));
  for (int i = 0; i < 10000; ++i) large.OnTuple(i, NumTuple(i, i));

  Result<std::string> small_payload = small.SnapshotState();
  Result<std::string> large_payload = large.SnapshotState();
  ASSERT_TRUE(small_payload.ok());
  ASSERT_TRUE(large_payload.ok());
  // Identical open-window structure and a full reservoir on both sides:
  // the serialized states are the same size despite the 50x window.
  EXPECT_EQ(large_payload->size(), small_payload->size());
}

// Replay-gap loss inflates ε̂_w AF-Stream style: the recovered window is
// flagged and its error estimate charges lost/(count+lost).
TEST(SpearSnapshotTest, NoteRecoveryLossInflatesErrorEstimate) {
  const SpearOperatorConfig config = MeanConfig();
  SpearWindowManager manager(config, NumericField(0));
  for (int i = 0; i < 60; ++i) {
    manager.OnTuple(i, NumTuple(i, static_cast<double>(i % 7)));
  }
  manager.NoteRecoveryLoss(40);
  auto results = manager.OnWatermark(200);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 1u);
  const WindowResult& result = (*results)[0];
  EXPECT_TRUE(result.recovered);
  EXPECT_TRUE(result.approximate);  // a lossy window can never be exact
  EXPECT_EQ(result.window_size, 100u);  // 60 seen + 40 lost
  // ε̂ includes the loss ratio 40/100; with ε = 0.20 the window cannot
  // meet the spec, so it is emitted degraded.
  EXPECT_GE(result.estimated_error, 0.40);
  EXPECT_TRUE(result.degraded);
  EXPECT_EQ(manager.decision_stats().windows_recovered, 1u);
}

// A loss reported while no window is open is charged to the next window
// (the tuples belonged to the stream, not to nothing).
TEST(SpearSnapshotTest, PendingLossChargesNextWindow) {
  const SpearOperatorConfig config = MeanConfig();
  SpearWindowManager manager(config, NumericField(0));
  manager.NoteRecoveryLoss(10);
  for (int i = 0; i < 90; ++i) {
    manager.OnTuple(i, NumTuple(i, 1.0));
  }
  auto results = manager.OnWatermark(200);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_TRUE((*results)[0].recovered);
  EXPECT_EQ((*results)[0].window_size, 100u);
}

// Small losses keep the accuracy guarantee: ε̂ + ρ <= ε still expedites,
// with the inflation visible in the reported estimate.
TEST(SpearSnapshotTest, SmallLossStillMeetsAccuracySpec) {
  SpearOperatorConfig config = MeanConfig();
  config.accuracy = AccuracySpec{0.50, 0.95};
  SpearWindowManager manager(config, NumericField(0));
  for (int i = 0; i < 99; ++i) {
    manager.OnTuple(i, NumTuple(i, static_cast<double>(i % 5) + 10.0));
  }
  manager.NoteRecoveryLoss(1);  // ρ = 0.01
  auto results = manager.OnWatermark(200);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  const WindowResult& result = (*results)[0];
  EXPECT_TRUE(result.recovered);
  EXPECT_FALSE(result.degraded);
  EXPECT_GE(result.estimated_error, 0.01);
  EXPECT_LE(result.estimated_error, 0.50);
}

TEST(SpearSnapshotTest, RestoreRejectsGarbageAndWrongMode) {
  const SpearOperatorConfig config = MeanConfig();
  SpearWindowManager manager(config, NumericField(0));
  EXPECT_FALSE(manager.RestoreState("").ok());
  EXPECT_FALSE(manager.RestoreState("not a snapshot payload").ok());

  // A scalar manager must refuse a grouped manager's payload.
  SpearOperatorConfig grouped_config = MeanConfig();
  SpearWindowManager grouped(grouped_config, NumericField(0),
                             [](const Tuple&) { return std::string("g"); });
  grouped.OnTuple(0, NumTuple(0, 1.0));
  Result<std::string> grouped_payload = grouped.SnapshotState();
  ASSERT_TRUE(grouped_payload.ok());
  EXPECT_FALSE(manager.RestoreState(*grouped_payload).ok());
}

// Restore re-adopts the spill manifest: pre-crash spilled runs are not
// duplicated when replayed tuples spill again under the same key.
TEST(SpearSnapshotTest, RestoreReadoptsSpillManifestWithoutDuplication) {
  SecondaryStorage storage;
  SpearOperatorConfig config = MeanConfig();
  config.aggregate = AggregateSpec::Median();  // holistic: buffer matters
  config.accuracy = AccuracySpec{0.0001, 0.95};  // wants the exact path
  config.buffer_memory_capacity = 16;

  SpearWindowManager primary(config, NumericField(0), nullptr, &storage,
                             "snap-test");
  for (int i = 0; i < 64; ++i) primary.OnTuple(i, NumTuple(i, i));
  const std::size_t spilled_before = storage.TotalTuples();
  ASSERT_GT(spilled_before, 0u);

  Result<std::string> payload = primary.SnapshotState();
  ASSERT_TRUE(payload.ok());
  SpearWindowManager restored(config, NumericField(0), nullptr, &storage,
                              "snap-test");
  ASSERT_TRUE(restored.RestoreState(*payload).ok());
  // Replay the same tuples: the ones that spill again must overwrite the
  // adopted manifest run, not append to it.
  for (int i = 0; i < 64; ++i) restored.OnTuple(i, NumTuple(i, i));
  EXPECT_EQ(storage.TotalTuples(), spilled_before);

  auto results = restored.OnWatermark(200);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 1u);
  // The recovered window cannot prove the exact fallback is complete, so
  // it is emitted as a flagged approximation.
  EXPECT_TRUE((*results)[0].recovered);
  EXPECT_TRUE((*results)[0].approximate);
}

}  // namespace
}  // namespace spear
