#include "stats/group_stats.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(GroupStatsTrackerTest, TracksFrequenciesAndMoments) {
  GroupStatsTracker tracker;
  tracker.Update("a", 1.0);
  tracker.Update("a", 3.0);
  tracker.Update("b", 10.0);
  EXPECT_EQ(tracker.num_groups(), 2u);
  EXPECT_EQ(tracker.total_count(), 3u);
  EXPECT_EQ(tracker.FrequencyOf("a"), 2u);
  EXPECT_EQ(tracker.FrequencyOf("b"), 1u);
  EXPECT_EQ(tracker.FrequencyOf("missing"), 0u);
  EXPECT_DOUBLE_EQ(tracker.groups().at("a").mean(), 2.0);
}

TEST(GroupStatsTrackerTest, UnlimitedByDefault) {
  GroupStatsTracker tracker;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(tracker.Update("g" + std::to_string(i), 1.0));
  }
  EXPECT_FALSE(tracker.overflowed());
  EXPECT_EQ(tracker.num_groups(), 10000u);
}

TEST(GroupStatsTrackerTest, OverflowOnCapacity) {
  GroupStatsTracker tracker(2);
  EXPECT_TRUE(tracker.Update("a", 1.0));
  EXPECT_TRUE(tracker.Update("b", 1.0));
  EXPECT_FALSE(tracker.Update("c", 1.0));  // third distinct group
  EXPECT_TRUE(tracker.overflowed());
  EXPECT_EQ(tracker.num_groups(), 2u);
}

TEST(GroupStatsTrackerTest, ExistingGroupsUpdateAfterOverflow) {
  GroupStatsTracker tracker(1);
  EXPECT_TRUE(tracker.Update("a", 1.0));
  EXPECT_FALSE(tracker.Update("b", 1.0));
  EXPECT_TRUE(tracker.Update("a", 5.0));  // existing group still tracked
  EXPECT_EQ(tracker.FrequencyOf("a"), 2u);
  EXPECT_TRUE(tracker.overflowed());  // overflow state is sticky
}

TEST(GroupStatsTrackerTest, ResetClearsEverything) {
  GroupStatsTracker tracker(1);
  tracker.Update("a", 1.0);
  tracker.Update("b", 1.0);  // overflows
  tracker.Reset();
  EXPECT_FALSE(tracker.overflowed());
  EXPECT_EQ(tracker.num_groups(), 0u);
  EXPECT_EQ(tracker.total_count(), 0u);
  EXPECT_TRUE(tracker.Update("b", 1.0));
}

TEST(GroupStatsTrackerTest, EstimatedBytesGrowWithGroups) {
  GroupStatsTracker tracker;
  tracker.Update("key-1", 1.0);
  const std::size_t one = tracker.EstimatedBytes();
  tracker.Update("key-2", 1.0);
  EXPECT_GT(tracker.EstimatedBytes(), one);
}

}  // namespace
}  // namespace spear
