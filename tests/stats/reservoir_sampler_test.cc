#include "stats/reservoir_sampler.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

namespace spear {
namespace {

TEST(ReservoirSamplerTest, KeepsEverythingBelowCapacity) {
  ReservoirSampler<int> s(10, 1);
  for (int i = 0; i < 7; ++i) s.Offer(i);
  EXPECT_EQ(s.sample().size(), 7u);
  EXPECT_EQ(s.seen(), 7u);
  EXPECT_FALSE(s.full());
  for (int i = 0; i < 7; ++i) EXPECT_EQ(s.sample()[i], i);
}

TEST(ReservoirSamplerTest, NeverExceedsCapacity) {
  ReservoirSampler<int> s(10, 2);
  for (int i = 0; i < 10000; ++i) s.Offer(i);
  EXPECT_EQ(s.sample().size(), 10u);
  EXPECT_EQ(s.seen(), 10000u);
  EXPECT_TRUE(s.full());
}

TEST(ReservoirSamplerTest, SampleElementsComeFromStream) {
  ReservoirSampler<int> s(32, 3);
  for (int i = 0; i < 5000; ++i) s.Offer(i);
  for (int v : s.sample()) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5000);
  }
}

TEST(ReservoirSamplerTest, ResetStartsFresh) {
  ReservoirSampler<int> s(5, 4);
  for (int i = 0; i < 100; ++i) s.Offer(i);
  s.Reset();
  EXPECT_EQ(s.seen(), 0u);
  EXPECT_TRUE(s.sample().empty());
  s.Offer(42);
  EXPECT_EQ(s.sample()[0], 42);
}

TEST(ReservoirSamplerTest, DeterministicForSeed) {
  ReservoirSampler<int> a(16, 77), b(16, 77);
  for (int i = 0; i < 2000; ++i) {
    a.Offer(i);
    b.Offer(i);
  }
  EXPECT_EQ(a.sample(), b.sample());
}

/// Uniformity: every stream position should land in the sample with
/// probability k/n. We run many independent reservoirs and check each
/// decile of the stream is represented near-uniformly in aggregate.
class ReservoirUniformity
    : public ::testing::TestWithParam<ReservoirAlgorithm> {};

TEST_P(ReservoirUniformity, AllStreamRegionsEquallyLikely) {
  constexpr int kTrials = 400;
  constexpr int kN = 2000;
  constexpr std::size_t kCap = 20;
  std::vector<int> decile_hits(10, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    ReservoirSampler<int> s(kCap, static_cast<std::uint64_t>(trial) + 1,
                            GetParam());
    for (int i = 0; i < kN; ++i) s.Offer(i);
    for (int v : s.sample()) ++decile_hits[static_cast<std::size_t>(
        v / (kN / 10))];
  }
  const double expected = kTrials * kCap / 10.0;  // 800 per decile
  for (int h : decile_hits) {
    EXPECT_NEAR(static_cast<double>(h), expected, expected * 0.12)
        << "biased region";
  }
}

TEST_P(ReservoirUniformity, MeanOfSampleTracksStreamMean) {
  // Stream of 0..N-1 has mean (N-1)/2; sample mean should be close on
  // average over trials.
  constexpr int kN = 5000;
  double total = 0.0;
  int count = 0;
  for (int trial = 0; trial < 200; ++trial) {
    ReservoirSampler<double> s(50, static_cast<std::uint64_t>(trial) + 123,
                               GetParam());
    for (int i = 0; i < kN; ++i) s.Offer(static_cast<double>(i));
    for (double v : s.sample()) {
      total += v;
      ++count;
    }
  }
  EXPECT_NEAR(total / count, (kN - 1) / 2.0, kN * 0.02);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ReservoirUniformity,
                         ::testing::Values(ReservoirAlgorithm::kAlgorithmR,
                                           ReservoirAlgorithm::kAlgorithmL));

TEST(ReservoirSamplerTest, AlgorithmsAgreeOnSampleSizeAlways) {
  for (std::size_t cap : {1u, 2u, 7u, 100u}) {
    ReservoirSampler<int> r(cap, 9, ReservoirAlgorithm::kAlgorithmR);
    ReservoirSampler<int> l(cap, 9, ReservoirAlgorithm::kAlgorithmL);
    for (int i = 0; i < 500; ++i) {
      r.Offer(i);
      l.Offer(i);
      EXPECT_EQ(r.sample().size(), l.sample().size());
    }
  }
}

TEST(ReservoirSamplerTest, CapacityOneStillUniformish) {
  int last_half = 0;
  constexpr int kTrials = 1000;
  for (int t = 0; t < kTrials; ++t) {
    ReservoirSampler<int> s(1, static_cast<std::uint64_t>(t) + 31);
    for (int i = 0; i < 100; ++i) s.Offer(i);
    if (s.sample()[0] >= 50) ++last_half;
  }
  EXPECT_NEAR(last_half, kTrials / 2, kTrials / 8);
}

}  // namespace
}  // namespace spear
