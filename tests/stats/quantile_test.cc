#include "stats/quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace spear {
namespace {

TEST(QuantileTest, EmptyInputIsInvalid) {
  EXPECT_TRUE(ExactQuantile({}, 0.5).status().IsInvalid());
  EXPECT_TRUE(SortedQuantile({}, 0.5).status().IsInvalid());
}

TEST(QuantileTest, PhiOutOfRangeIsInvalid) {
  EXPECT_TRUE(ExactQuantile({1.0}, -0.1).status().IsInvalid());
  EXPECT_TRUE(ExactQuantile({1.0}, 1.1).status().IsInvalid());
}

TEST(QuantileTest, SingleElement) {
  for (double phi : {0.0, 0.25, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(*ExactQuantile({42.0}, phi), 42.0);
  }
}

TEST(QuantileTest, MedianOddCount) {
  EXPECT_DOUBLE_EQ(*ExactMedian({3.0, 1.0, 2.0}), 2.0);
}

TEST(QuantileTest, MedianEvenCountInterpolates) {
  EXPECT_DOUBLE_EQ(*ExactMedian({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(*ExactQuantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(*ExactQuantile(v, 1.0), 9.0);
}

TEST(QuantileTest, KnownPercentile) {
  // 0..99: p95 at position 0.95*99 = 94.05 -> 94 + 0.05*(95-94) = 94.05.
  std::vector<double> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  EXPECT_NEAR(*ExactQuantile(v, 0.95), 94.05, 1e-9);
}

TEST(QuantileTest, UnsortedInputHandled) {
  std::vector<double> v{9.0, 2.0, 7.0, 4.0, 1.0, 8.0, 3.0, 6.0, 5.0};
  EXPECT_DOUBLE_EQ(*ExactQuantile(v, 0.5), 5.0);
}

TEST(QuantileTest, AgreesWithSortedQuantile) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 1001; ++i) v.push_back(rng.NextGaussian());
  std::vector<double> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(*ExactQuantile(v, phi), *SortedQuantile(sorted, phi))
        << "phi=" << phi;
  }
}

TEST(QuantileTest, InPlaceVariantMutatesButMatches) {
  std::vector<double> v{4.0, 2.0, 8.0, 6.0};
  std::vector<double> copy = v;
  const double q = *ExactQuantileInPlace(&v, 0.5);
  EXPECT_DOUBLE_EQ(q, *ExactQuantile(copy, 0.5));
}

TEST(QuantileTest, DuplicatesHandled) {
  std::vector<double> v(50, 3.0);
  v.insert(v.end(), 50, 7.0);
  EXPECT_DOUBLE_EQ(*ExactQuantile(v, 0.25), 3.0);
  EXPECT_DOUBLE_EQ(*ExactQuantile(v, 0.75), 7.0);
}

TEST(RankOfTest, BasicRanks) {
  std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(RankOf(sorted, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(RankOf(sorted, 3.0), 0.6);  // 3 elements <= 3.0
  EXPECT_DOUBLE_EQ(RankOf(sorted, 5.0), 1.0);
  EXPECT_DOUBLE_EQ(RankOf(sorted, 9.0), 1.0);
}

TEST(RankOfTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(RankOf({}, 1.0), 0.0);
}

/// Property: quantiles are monotone in phi.
class QuantileMonotoneSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantileMonotoneSweep, MonotoneInPhi) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> v;
  const int n = 10 + static_cast<int>(rng.NextBounded(500));
  for (int i = 0; i < n; ++i) v.push_back(rng.NextGaussian() * 10.0);
  double prev = *ExactQuantile(v, 0.0);
  for (double phi = 0.05; phi <= 1.0; phi += 0.05) {
    const double q = *ExactQuantile(v, phi);
    EXPECT_GE(q, prev) << "phi=" << phi;
    prev = q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileMonotoneSweep,
                         ::testing::Range(1, 16));

}  // namespace
}  // namespace spear
