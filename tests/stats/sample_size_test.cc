#include "stats/sample_size.h"

#include <gtest/gtest.h>

#include <cmath>

namespace spear {
namespace {

TEST(QuantileSampleSizeTest, HoeffdingKnownValue) {
  // n >= ln(2/0.05) / (2 * 0.1^2) = ln(40)/0.02 ~= 184.44 -> 185.
  auto n = RequiredQuantileSampleSize(0.5, 0.10, 0.95);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 185u);
}

TEST(QuantileSampleSizeTest, NormalRankKnownValue) {
  // z=1.96, phi(1-phi)=0.25, eps=0.1: n = 1.96^2*0.25/0.01 ~= 96.
  auto n = RequiredQuantileSampleSize(0.5, 0.10, 0.95,
                                      QuantileBound::kNormalRank);
  ASSERT_TRUE(n.ok());
  EXPECT_NEAR(static_cast<double>(*n), 96.0, 1.0);
}

TEST(QuantileSampleSizeTest, NormalRankTighterAtExtremePhi) {
  auto mid = RequiredQuantileSampleSize(0.5, 0.05, 0.95,
                                        QuantileBound::kNormalRank);
  auto tail = RequiredQuantileSampleSize(0.99, 0.05, 0.95,
                                         QuantileBound::kNormalRank);
  EXPECT_LT(*tail, *mid);
}

TEST(QuantileSampleSizeTest, SmallerEpsilonNeedsMoreSamples) {
  auto coarse = RequiredQuantileSampleSize(0.5, 0.2, 0.95);
  auto fine = RequiredQuantileSampleSize(0.5, 0.02, 0.95);
  EXPECT_GT(*fine, *coarse);
}

TEST(QuantileSampleSizeTest, HigherConfidenceNeedsMoreSamples) {
  auto low = RequiredQuantileSampleSize(0.5, 0.1, 0.90);
  auto high = RequiredQuantileSampleSize(0.5, 0.1, 0.999);
  EXPECT_GT(*high, *low);
}

TEST(QuantileSampleSizeTest, InvalidArgs) {
  EXPECT_TRUE(RequiredQuantileSampleSize(-0.1, 0.1, 0.95).status().IsInvalid());
  EXPECT_TRUE(RequiredQuantileSampleSize(0.5, 0.0, 0.95).status().IsInvalid());
  EXPECT_TRUE(RequiredQuantileSampleSize(0.5, 1.0, 0.95).status().IsInvalid());
  EXPECT_TRUE(RequiredQuantileSampleSize(0.5, 0.1, 0.0).status().IsInvalid());
}

TEST(FiniteSampleSizeTest, NeverExceedsPopulation) {
  auto n = RequiredQuantileSampleSizeFinite(0.5, 0.01, 0.99, 100);
  ASSERT_TRUE(n.ok());
  EXPECT_LE(*n, 100u);
}

TEST(FiniteSampleSizeTest, SmallerThanInfinitePopulationBound) {
  auto infinite = RequiredQuantileSampleSize(0.5, 0.1, 0.95);
  auto finite = RequiredQuantileSampleSizeFinite(0.5, 0.1, 0.95, 500);
  EXPECT_LT(*finite, *infinite);
}

TEST(FiniteSampleSizeTest, ApproachesInfiniteBoundForHugePopulation) {
  auto infinite = RequiredQuantileSampleSize(0.5, 0.1, 0.95);
  auto finite =
      RequiredQuantileSampleSizeFinite(0.5, 0.1, 0.95, 100'000'000);
  EXPECT_NEAR(static_cast<double>(*finite), static_cast<double>(*infinite),
              1.0);
}

TEST(FiniteSampleSizeTest, ZeroPopulationInvalid) {
  EXPECT_TRUE(
      RequiredQuantileSampleSizeFinite(0.5, 0.1, 0.95, 0).status().IsInvalid());
}

TEST(MeanSampleSizeTest, KnownCochranValue) {
  // n0 = (z*cv/eps)^2 = (1.959964*1.0/0.1)^2 ~= 384.1 -> with N=1e9,
  // essentially 385.
  auto n = RequiredMeanSampleSize(1.0, 0.1, 0.95, 1'000'000'000);
  ASSERT_TRUE(n.ok());
  EXPECT_NEAR(static_cast<double>(*n), 385.0, 1.0);
}

TEST(MeanSampleSizeTest, ZeroCvNeedsOneSample) {
  auto n = RequiredMeanSampleSize(0.0, 0.1, 0.95, 1000);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1u);
}

TEST(MeanSampleSizeTest, HighVarianceNeedsMore) {
  auto low = RequiredMeanSampleSize(0.5, 0.1, 0.95, 100000);
  auto high = RequiredMeanSampleSize(2.0, 0.1, 0.95, 100000);
  EXPECT_GT(*high, *low);
}

TEST(MeanSampleSizeTest, CappedByPopulation) {
  auto n = RequiredMeanSampleSize(10.0, 0.01, 0.99, 50);
  ASSERT_TRUE(n.ok());
  EXPECT_LE(*n, 50u);
}

/// Property sweep: the finite-population correction is monotone in N.
class FpcMonotoneSweep : public ::testing::TestWithParam<double> {};

TEST_P(FpcMonotoneSweep, RequiredSizeMonotoneInPopulation) {
  const double eps = GetParam();
  std::uint64_t prev = 0;
  for (std::uint64_t population : {100u, 1000u, 10000u, 100000u}) {
    auto n = RequiredQuantileSampleSizeFinite(0.5, eps, 0.95, population);
    ASSERT_TRUE(n.ok());
    EXPECT_GE(*n, prev);
    prev = *n;
  }
}

INSTANTIATE_TEST_SUITE_P(Epsilons, FpcMonotoneSweep,
                         ::testing::Values(0.02, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace spear
