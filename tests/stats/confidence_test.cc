#include "stats/confidence.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "stats/running_stats.h"

namespace spear {
namespace {

TEST(NormalDeviateTest, TabulatedValues) {
  // The paper quotes 1.96 for 95% and 2.58 for 99%.
  EXPECT_NEAR(*NormalDeviate(0.95), 1.959964, 1e-4);
  EXPECT_NEAR(*NormalDeviate(0.99), 2.575829, 1e-4);
  EXPECT_NEAR(*NormalDeviate(0.90), 1.644854, 1e-4);
  EXPECT_NEAR(*NormalDeviate(0.50), 0.674490, 1e-4);
}

TEST(NormalDeviateTest, InvalidConfidenceRejected) {
  EXPECT_TRUE(NormalDeviate(0.0).status().IsInvalid());
  EXPECT_TRUE(NormalDeviate(1.0).status().IsInvalid());
  EXPECT_TRUE(NormalDeviate(-0.5).status().IsInvalid());
  EXPECT_TRUE(NormalDeviate(1.5).status().IsInvalid());
}

TEST(InverseNormalCdfTest, SymmetryAndMedian) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.975), -InverseNormalCdf(0.025), 1e-9);
}

TEST(InverseNormalCdfTest, TailValues) {
  EXPECT_NEAR(InverseNormalCdf(0.001), -3.0902, 1e-3);
  EXPECT_NEAR(InverseNormalCdf(0.999), 3.0902, 1e-3);
}

TEST(MeanCiTest, DegenerateFullSample) {
  // n == N: finite population correction kills the width.
  auto ci = MeanConfidenceInterval(10.0, 5.0, 100, 100, 0.95);
  ASSERT_TRUE(ci.ok());
  EXPECT_DOUBLE_EQ(ci->low, 10.0);
  EXPECT_DOUBLE_EQ(ci->high, 10.0);
  EXPECT_DOUBLE_EQ(ci->RelativeHalfWidth(), 0.0);
}

TEST(MeanCiTest, WidthMatchesFormula) {
  const double s = 4.0;
  const std::uint64_t n = 100, population = 10000;
  auto ci = MeanConfidenceInterval(20.0, s, n, population, 0.95);
  ASSERT_TRUE(ci.ok());
  const double z = *NormalDeviate(0.95);
  const double expected =
      z * s / std::sqrt(100.0) * std::sqrt(1.0 - 100.0 / 10000.0);
  EXPECT_NEAR(ci->HalfWidth(), expected, 1e-12);
  EXPECT_NEAR(ci->RelativeHalfWidth(), expected / 20.0, 1e-12);
}

TEST(MeanCiTest, InvalidArguments) {
  EXPECT_TRUE(MeanConfidenceInterval(1, 1, 0, 10, 0.95).status().IsInvalid());
  EXPECT_TRUE(MeanConfidenceInterval(1, 1, 20, 10, 0.95).status().IsInvalid());
  EXPECT_TRUE(MeanConfidenceInterval(1, -1, 5, 10, 0.95).status().IsInvalid());
  EXPECT_TRUE(MeanConfidenceInterval(1, 1, 5, 10, 1.5).status().IsInvalid());
}

TEST(MeanCiTest, ZeroEstimateYieldsInfiniteRelativeWidth) {
  auto ci = MeanConfidenceInterval(0.0, 2.0, 10, 1000, 0.95);
  ASSERT_TRUE(ci.ok());
  EXPECT_TRUE(std::isinf(ci->RelativeHalfWidth()));
}

TEST(MeanCiTest, ZeroVarianceIsExact) {
  auto ci = MeanConfidenceInterval(0.0, 0.0, 10, 1000, 0.95);
  ASSERT_TRUE(ci.ok());
  EXPECT_DOUBLE_EQ(ci->RelativeHalfWidth(), 0.0);
}

TEST(SumCiTest, ScalesMeanByPopulation) {
  auto mean_ci = MeanConfidenceInterval(2.0, 1.0, 50, 5000, 0.95);
  auto sum_ci = SumConfidenceInterval(2.0, 1.0, 50, 5000, 0.95);
  ASSERT_TRUE(mean_ci.ok());
  ASSERT_TRUE(sum_ci.ok());
  EXPECT_NEAR(sum_ci->estimate, 2.0 * 5000, 1e-9);
  EXPECT_NEAR(sum_ci->HalfWidth(), mean_ci->HalfWidth() * 5000, 1e-6);
  // Relative width is invariant under scaling.
  EXPECT_NEAR(sum_ci->RelativeHalfWidth(), mean_ci->RelativeHalfWidth(),
              1e-12);
}

TEST(MeanCiTest, HigherConfidenceWidensInterval) {
  auto c90 = MeanConfidenceInterval(10, 3, 40, 4000, 0.90);
  auto c99 = MeanConfidenceInterval(10, 3, 40, 4000, 0.99);
  EXPECT_GT(c99->HalfWidth(), c90->HalfWidth());
}

TEST(MeanCiTest, LargerSampleNarrowsInterval) {
  auto small = MeanConfidenceInterval(10, 3, 40, 4000, 0.95);
  auto large = MeanConfidenceInterval(10, 3, 400, 4000, 0.95);
  EXPECT_LT(large->HalfWidth(), small->HalfWidth());
}

/// Empirical coverage: the 95% CI of a sample mean should contain the
/// true population mean in roughly 95% of trials.
class CiCoverageSweep : public ::testing::TestWithParam<double> {};

TEST_P(CiCoverageSweep, CoverageNearNominal) {
  const double confidence = GetParam();
  constexpr int kTrials = 600;
  constexpr std::uint64_t kPopulation = 20000;
  constexpr std::uint64_t kSample = 200;

  // Fixed skewed population.
  Rng pop_rng(1234);
  std::vector<double> population;
  double true_mean = 0.0;
  for (std::uint64_t i = 0; i < kPopulation; ++i) {
    const double x = std::exp(pop_rng.NextGaussian());
    population.push_back(x);
    true_mean += x;
  }
  true_mean /= static_cast<double>(kPopulation);

  int covered = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) + 555);
    RunningStats stats;
    for (std::uint64_t i = 0; i < kSample; ++i) {
      stats.Update(population[rng.NextBounded(kPopulation)]);
    }
    auto ci = MeanConfidenceInterval(stats.mean(), stats.SampleStdDev(),
                                     kSample, kPopulation, confidence);
    ASSERT_TRUE(ci.ok());
    if (true_mean >= ci->low && true_mean <= ci->high) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kTrials;
  // Normal approximation on skewed data: allow a few points of slack.
  EXPECT_GT(coverage, confidence - 0.05);
}

INSTANTIATE_TEST_SUITE_P(Levels, CiCoverageSweep,
                         ::testing::Values(0.90, 0.95, 0.99));

}  // namespace
}  // namespace spear
