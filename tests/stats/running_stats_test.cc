#include "stats/running_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace spear {
namespace {

TEST(RunningStatsTest, EmptyState) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.SampleVariance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Update(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 5.0);
  EXPECT_DOUBLE_EQ(s.SampleVariance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSmallSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Update(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.PopulationVariance(), 4.0);
  EXPECT_NEAR(s.SampleVariance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.PopulationStdDev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MatchesTwoPassComputation) {
  Rng rng(99);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextGaussian() * 3.0 + 10.0;
    xs.push_back(x);
    s.Update(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double m2 = 0.0, m4 = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.PopulationVariance(), m2 / xs.size(), 1e-6);
  EXPECT_NEAR(s.FourthCentralMoment(), m4 / xs.size(), 1e-3);
}

TEST(RunningStatsTest, GaussianKurtosisNearZero) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.Update(rng.NextGaussian());
  EXPECT_NEAR(s.ExcessKurtosis(), 0.0, 0.08);
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(42);
  RunningStats whole, left, right;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.NextDouble() * 100.0;
    whole.Update(x);
    (i % 2 == 0 ? left : right).Update(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.SampleVariance(), whole.SampleVariance(), 1e-6);
  EXPECT_NEAR(left.FourthCentralMoment(), whole.FourthCentralMoment(), 1e-2);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats a, b;
  a.Update(1.0);
  a.Update(3.0);
  const double mean_before = a.mean();
  a.Merge(b);  // empty rhs: no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);

  RunningStats c;
  c.Merge(a);  // empty lhs: copies
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Update(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStatsTest, ConstantSequenceHasZeroVariance) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.Update(7.5);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_NEAR(s.SampleVariance(), 0.0, 1e-12);
  EXPECT_NEAR(s.ExcessKurtosis(), 0.0, 1e-9);
}

/// Property sweep: merge associativity across random partitions.
class RunningStatsMergeSweep : public ::testing::TestWithParam<int> {};

TEST_P(RunningStatsMergeSweep, ArbitraryPartitioningMatchesWhole) {
  const int seed = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  const int parts = 1 + static_cast<int>(rng.NextBounded(7));
  std::vector<RunningStats> chunks(static_cast<std::size_t>(parts));
  RunningStats whole;
  for (int i = 0; i < 3000; ++i) {
    const double x = std::exp(rng.NextGaussian());  // skewed data
    whole.Update(x);
    chunks[rng.NextBounded(static_cast<std::uint64_t>(parts))].Update(x);
  }
  RunningStats merged;
  for (const auto& c : chunks) merged.Merge(c);
  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9 * std::fabs(whole.mean()));
  EXPECT_NEAR(merged.PopulationVariance(), whole.PopulationVariance(),
              1e-7 * whole.PopulationVariance());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunningStatsMergeSweep,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace spear
