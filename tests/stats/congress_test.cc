#include "stats/congress.h"

#include <gtest/gtest.h>

#include <numeric>

namespace spear {
namespace {

using Frequencies = std::unordered_map<std::string, std::uint64_t>;

TEST(CongressTest, InvalidArgs) {
  EXPECT_TRUE(CongressAllocate({}, 10).status().IsInvalid());
  EXPECT_TRUE(CongressAllocate({{"a", 5}}, 0).status().IsInvalid());
  EXPECT_TRUE(CongressAllocate({{"a", 0}}, 10).status().IsInvalid());
}

TEST(CongressTest, SingleGroupGetsEverythingUpToItsSize) {
  auto allocs = CongressAllocate({{"a", 50}}, 100);
  ASSERT_TRUE(allocs.ok());
  ASSERT_EQ(allocs->size(), 1u);
  EXPECT_EQ((*allocs)[0].sample_size, 50u);  // capped at frequency
}

TEST(CongressTest, OutputSortedByKey) {
  auto allocs = CongressAllocate({{"c", 10}, {"a", 10}, {"b", 10}}, 30);
  ASSERT_TRUE(allocs.ok());
  EXPECT_EQ((*allocs)[0].key, "a");
  EXPECT_EQ((*allocs)[1].key, "b");
  EXPECT_EQ((*allocs)[2].key, "c");
}

TEST(CongressTest, EqualGroupsSplitEqually) {
  auto allocs = CongressAllocate({{"a", 1000}, {"b", 1000}}, 200);
  ASSERT_TRUE(allocs.ok());
  EXPECT_EQ((*allocs)[0].sample_size, 100u);
  EXPECT_EQ((*allocs)[1].sample_size, 100u);
}

TEST(CongressTest, EveryGroupGetsAtLeastOne) {
  Frequencies f;
  for (int i = 0; i < 50; ++i) f["g" + std::to_string(i)] = 1 + i;
  auto allocs = CongressAllocate(f, 60);
  ASSERT_TRUE(allocs.ok());
  for (const auto& a : *allocs) EXPECT_GE(a.sample_size, 1u);
}

TEST(CongressTest, SampleNeverExceedsGroupSize) {
  auto allocs = CongressAllocate({{"tiny", 2}, {"big", 100000}}, 5000);
  ASSERT_TRUE(allocs.ok());
  for (const auto& a : *allocs) EXPECT_LE(a.sample_size, a.frequency);
}

TEST(CongressTest, SenateProtectsSmallGroups) {
  // Proportional share of "small" in a 10000:10 split with budget 100 is
  // ~0.1 elements; congress should give it much more (senate share).
  Frequencies f{{"big", 10000}, {"small", 10}};
  auto congress = CongressAllocate(f, 100);
  auto proportional = ProportionalAllocate(f, 100);
  ASSERT_TRUE(congress.ok());
  ASSERT_TRUE(proportional.ok());
  std::uint64_t congress_small = 0, proportional_small = 0;
  for (const auto& a : *congress) {
    if (a.key == "small") congress_small = a.sample_size;
  }
  for (const auto& a : *proportional) {
    if (a.key == "small") proportional_small = a.sample_size;
  }
  EXPECT_GT(congress_small, proportional_small);
  EXPECT_GE(congress_small, 10u);  // senate: full coverage of a tiny group
}

TEST(ProportionalTest, FollowsFrequencies) {
  auto allocs = ProportionalAllocate({{"a", 300}, {"b", 100}}, 100);
  ASSERT_TRUE(allocs.ok());
  std::uint64_t a_n = 0, b_n = 0;
  for (const auto& al : *allocs) (al.key == "a" ? a_n : b_n) = al.sample_size;
  EXPECT_NEAR(static_cast<double>(a_n) / static_cast<double>(b_n), 3.0, 0.5);
}

TEST(CongressTest, TotalAllocationNearBudget) {
  Frequencies f;
  for (int i = 0; i < 20; ++i) {
    f["g" + std::to_string(i)] = 100 * static_cast<std::uint64_t>(i + 1);
  }
  auto allocs = CongressAllocate(f, 1000);
  ASSERT_TRUE(allocs.ok());
  std::uint64_t total = 0;
  for (const auto& a : *allocs) total += a.sample_size;
  // Flooring and the >=1 guarantee allow small deviations only.
  EXPECT_GE(total, 900u);
  EXPECT_LE(total, 1100u);
}

/// Property sweep over group-count/skew combinations.
class CongressSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(CongressSweep, InvariantsHold) {
  const int groups = std::get<0>(GetParam());
  const std::uint64_t budget = std::get<1>(GetParam());
  Frequencies f;
  for (int i = 0; i < groups; ++i) {
    // Zipf-ish: group i has frequency ~ 10000 / (i+1).
    f["g" + std::to_string(i)] =
        std::max<std::uint64_t>(10000 / static_cast<std::uint64_t>(i + 1), 1);
  }
  auto allocs = CongressAllocate(f, budget);
  ASSERT_TRUE(allocs.ok());
  EXPECT_EQ(allocs->size(), f.size());
  for (const auto& a : *allocs) {
    EXPECT_GE(a.sample_size, 1u);
    EXPECT_LE(a.sample_size, a.frequency);
    EXPECT_EQ(a.frequency, f.at(a.key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CongressSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 20, 100),
                       ::testing::Values<std::uint64_t>(100, 1000, 10000)));

}  // namespace
}  // namespace spear
