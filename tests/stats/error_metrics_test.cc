#include "stats/error_metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace spear {
namespace {

TEST(RelativeErrorTest, Basic) {
  EXPECT_DOUBLE_EQ(RelativeError(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(9.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(10.0, 10.0), 0.0);
}

TEST(RelativeErrorTest, NegativeExact) {
  EXPECT_DOUBLE_EQ(RelativeError(-11.0, -10.0), 0.1);
}

TEST(RelativeErrorTest, ZeroExact) {
  EXPECT_DOUBLE_EQ(RelativeError(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(RelativeError(1.0, 0.0)));
}

TEST(AggregateGroupErrorsTest, EmptyInvalid) {
  EXPECT_TRUE(AggregateGroupErrors({}).status().IsInvalid());
}

TEST(AggregateGroupErrorsTest, L1IsMean) {
  EXPECT_DOUBLE_EQ(*AggregateGroupErrors({0.1, 0.2, 0.3}, GroupErrorNorm::kL1),
                   0.2);
}

TEST(AggregateGroupErrorsTest, L2IsRms) {
  EXPECT_NEAR(*AggregateGroupErrors({0.3, 0.4}, GroupErrorNorm::kL2),
              std::sqrt((0.09 + 0.16) / 2.0), 1e-12);
}

TEST(AggregateGroupErrorsTest, LInfIsMax) {
  EXPECT_DOUBLE_EQ(
      *AggregateGroupErrors({0.1, 0.5, 0.2}, GroupErrorNorm::kLInf), 0.5);
}

TEST(AggregateGroupErrorsTest, NormOrdering) {
  // For any error vector: L1 <= L2 <= LInf.
  const std::vector<double> errors{0.05, 0.1, 0.4, 0.02};
  const double l1 = *AggregateGroupErrors(errors, GroupErrorNorm::kL1);
  const double l2 = *AggregateGroupErrors(errors, GroupErrorNorm::kL2);
  const double linf = *AggregateGroupErrors(errors, GroupErrorNorm::kLInf);
  EXPECT_LE(l1, l2);
  EXPECT_LE(l2, linf);
}

TEST(AggregateGroupErrorsTest, SingleGroupAllNormsAgree) {
  for (auto norm : {GroupErrorNorm::kL1, GroupErrorNorm::kL2,
                    GroupErrorNorm::kLInf}) {
    EXPECT_DOUBLE_EQ(*AggregateGroupErrors({0.07}, norm), 0.07);
  }
}

}  // namespace
}  // namespace spear
