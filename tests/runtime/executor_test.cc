#include "runtime/executor.h"

#include <gtest/gtest.h>

#include <atomic>

#include "runtime/common_bolts.h"
#include "runtime/spouts.h"
#include "tuple/serde.h"

namespace spear {
namespace {

std::vector<Tuple> NumberStream(int n) {
  std::vector<Tuple> out;
  for (int i = 0; i < n; ++i) {
    out.emplace_back(i, std::vector<Value>{Value(static_cast<double>(i))});
  }
  return out;
}

TEST(ExecutorTest, SingleStagePassThrough) {
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(100)));
  builder.Stage("identity", 1, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) { return t; });
  });
  auto topology = builder.Build();
  ASSERT_TRUE(topology.ok());
  auto report = Executor(std::move(*topology)).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->output.size(), 100u);
}

TEST(ExecutorTest, FilterDropsTuples) {
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(100)));
  builder.Stage("evens", 1, Partitioner::Shuffle(), [](int) {
    return std::make_unique<FilterBolt>([](const Tuple& t) {
      return t.event_time() % 2 == 0;
    });
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->output.size(), 50u);
}

TEST(ExecutorTest, MultiStagePipeline) {
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(50)));
  builder.Stage("double", 2, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) {
      Tuple out = t;
      out.field(0) = Value(t.field(0).AsDouble() * 2.0);
      return out;
    });
  });
  builder.Stage("add-one", 2, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) {
      Tuple out = t;
      out.field(0) = Value(t.field(0).AsDouble() + 1.0);
      return out;
    });
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->output.size(), 50u);
  double total = 0.0;
  for (const Tuple& t : report->output) total += t.field(0).AsDouble();
  // sum(2i + 1) for i in 0..49 = 2*1225 + 50.
  EXPECT_DOUBLE_EQ(total, 2500.0);
}

TEST(ExecutorTest, ParallelismPartitionsWork) {
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(1000)));
  builder.Stage("work", 4, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) { return t; });
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->output.size(), 1000u);
  // Every worker should have processed ~250 tuples.
  for (const auto* m : report->metrics.ForStage("work")) {
    EXPECT_EQ(m->tuples_in(), 250u);
  }
}

TEST(ExecutorTest, FieldsGroupingKeepsKeysTogether) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < 400; ++i) {
    tuples.emplace_back(
        i, std::vector<Value>{Value("key" + std::to_string(i % 4))});
  }
  // Each worker tags output with its task id; a key must map to one task.
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(std::move(tuples)));
  builder.Stage("grouped", 4, Partitioner::Fields(KeyField(0)), [](int task) {
    return std::make_unique<MapBolt>([task](const Tuple& t) {
      Tuple out = t;
      out.AppendField(Value(static_cast<std::int64_t>(task)));
      return out;
    });
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok());
  std::unordered_map<std::string, std::int64_t> key_task;
  for (const Tuple& t : report->output) {
    const std::string key = t.field(0).AsString();
    const std::int64_t task = t.field(1).AsInt64();
    const auto [it, inserted] = key_task.emplace(key, task);
    if (!inserted) {
      EXPECT_EQ(it->second, task) << key;
    }
  }
}

TEST(ExecutorTest, WatermarksReachBolts) {
  struct WatermarkCounter : Bolt {
    std::atomic<int>* count;
    explicit WatermarkCounter(std::atomic<int>* c) : count(c) {}
    Status Execute(const Tuple&, Emitter*) override { return Status::OK(); }
    Status OnWatermark(Timestamp, Emitter*) override {
      ++*count;
      return Status::OK();
    }
  };
  std::atomic<int> watermarks{0};
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(1000)),
                 /*watermark_interval=*/100);
  builder.Stage("count", 1, Partitioner::Shuffle(), [&](int) {
    return std::make_unique<WatermarkCounter>(&watermarks);
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok());
  // ~10 periodic watermarks plus the final one.
  EXPECT_GE(watermarks.load(), 10);
}

TEST(ExecutorTest, FinishCalledOncePerWorker) {
  struct FinishCounter : Bolt {
    std::atomic<int>* count;
    explicit FinishCounter(std::atomic<int>* c) : count(c) {}
    Status Execute(const Tuple&, Emitter*) override { return Status::OK(); }
    Status Finish(Emitter*) override {
      ++*count;
      return Status::OK();
    }
  };
  std::atomic<int> finishes{0};
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(10)));
  builder.Stage("a", 3, Partitioner::Shuffle(), [&](int) {
    return std::make_unique<FinishCounter>(&finishes);
  });
  builder.Stage("b", 2, Partitioner::Shuffle(), [&](int) {
    return std::make_unique<FinishCounter>(&finishes);
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(finishes.load(), 5);
}

TEST(ExecutorTest, BoltErrorCancelsRun) {
  struct FailingBolt : Bolt {
    Status Execute(const Tuple& t, Emitter*) override {
      if (t.event_time() == 7) return Status::Internal("boom");
      return Status::OK();
    }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(100)));
  builder.Stage("fail", 1, Partitioner::Shuffle(), [](int) {
    return std::make_unique<FailingBolt>();
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInternal());
  EXPECT_EQ(report.status().message(), "boom");
}

TEST(ExecutorTest, EmptyStreamStillFlushes) {
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(std::vector<Tuple>{}));
  builder.Stage("s", 2, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) { return t; });
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->output.empty());
}

TEST(ExecutorTest, BackPressureWithTinyQueues) {
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(5000)));
  builder.QueueCapacity(2);  // maximal back-pressure
  builder.Stage("slowish", 2, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) { return t; });
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->output.size(), 5000u);
}

TEST(ExecutorTest, PrepareFailureCancelsRun) {
  struct BadPrepare : Bolt {
    Status Prepare(const BoltContext&) override {
      return Status::FailedPrecondition("no disk");
    }
    Status Execute(const Tuple&, Emitter*) override { return Status::OK(); }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(100)));
  builder.Stage("bad", 2, Partitioner::Shuffle(), [](int) {
    return std::make_unique<BadPrepare>();
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsFailedPrecondition());
}

TEST(ExecutorTest, FinishFailurePropagates) {
  struct BadFinish : Bolt {
    Status Execute(const Tuple&, Emitter*) override { return Status::OK(); }
    Status Finish(Emitter*) override { return Status::Internal("flush"); }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(10)));
  builder.Stage("bad", 1, Partitioner::Shuffle(), [](int) {
    return std::make_unique<BadFinish>();
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().message(), "flush");
}

TEST(ExecutorTest, NullBoltFromFactoryFails) {
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(10)));
  builder.Stage("null", 1, Partitioner::Shuffle(),
                [](int) -> std::unique_ptr<Bolt> { return nullptr; });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInternal());
}

TEST(ExecutorTest, WatermarkAlignmentAcrossParallelUpstream) {
  // A two-stage pipeline where stage one has 4 workers: the downstream
  // worker must see each aligned watermark exactly once (the minimum
  // across channels), never regressing.
  struct WatermarkRecorder : Bolt {
    std::vector<Timestamp>* seen;
    std::mutex* mutex;
    WatermarkRecorder(std::vector<Timestamp>* s, std::mutex* m)
        : seen(s), mutex(m) {}
    Status Execute(const Tuple&, Emitter*) override { return Status::OK(); }
    Status OnWatermark(Timestamp wm, Emitter*) override {
      std::lock_guard<std::mutex> lock(*mutex);
      seen->push_back(wm);
      return Status::OK();
    }
  };
  std::vector<Timestamp> seen;
  std::mutex mutex;
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(2000)),
                 /*watermark_interval=*/250);
  builder.Stage("fan", 4, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) { return t; });
  });
  builder.Stage("collect", 1, Partitioner::Shuffle(), [&](int) {
    return std::make_unique<WatermarkRecorder>(&seen, &mutex);
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok());
  ASSERT_GE(seen.size(), 7u);
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GT(seen[i], seen[i - 1]) << "watermarks must strictly advance";
  }
  EXPECT_EQ(seen.back(), kMaxTimestamp);  // final watermark aligned too
}

TEST(ExecutorTest, RepeatedRunsWithFreshSpoutsAreDeterministic) {
  auto run_once = [] {
    TopologyBuilder builder;
    builder.Source(std::make_shared<VectorSpout>(NumberStream(500)));
    builder.Stage("sum", 1, Partitioner::Shuffle(), [](int) {
      return std::make_unique<MapBolt>([](const Tuple& t) { return t; });
    });
    auto report = Executor(std::move(*builder.Build())).Run();
    EXPECT_TRUE(report.ok());
    double total = 0.0;
    for (const Tuple& t : report->output) total += t.field(0).AsDouble();
    return total;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(ExecutorTest, BatchSizeDoesNotChangeDeterministicOutput) {
  // On a fully deterministic (fields-partitioned) topology, batch sizes 1
  // and 64 must produce byte-identical output: per-channel order is
  // preserved and sink outputs merge in task order.
  auto run_with_batch = [](std::size_t batch_max) {
    std::vector<Tuple> tuples;
    for (int i = 0; i < 1000; ++i) {
      tuples.emplace_back(
          i, std::vector<Value>{Value("key" + std::to_string(i % 8)),
                                Value(static_cast<double>(i))});
    }
    TopologyBuilder builder;
    builder.Source(std::make_shared<VectorSpout>(std::move(tuples)),
                   /*watermark_interval=*/100);
    builder.BatchMaxTuples(batch_max);
    builder.Stage("grouped", 4, Partitioner::Fields(KeyField(0)),
                  [](int task) {
                    return std::make_unique<MapBolt>([task](const Tuple& t) {
                      Tuple out = t;
                      out.AppendField(Value(static_cast<std::int64_t>(task)));
                      return out;
                    });
                  });
    auto report = Executor(std::move(*builder.Build())).Run();
    EXPECT_TRUE(report.ok());
    return EncodeBatch(report->output);
  };
  const std::string bytes_unbatched = run_with_batch(1);
  const std::string bytes_batched = run_with_batch(64);
  EXPECT_FALSE(bytes_unbatched.empty());
  EXPECT_EQ(bytes_unbatched, bytes_batched);
}

TEST(ExecutorTest, BatchLargerThanQueueCapacityBackPressures) {
  // batch_max_tuples far above queue_capacity: PushAll must chunk batches
  // through the bound without losing tuples or deadlocking.
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(5000)));
  builder.QueueCapacity(2);
  builder.BatchMaxTuples(256);
  builder.Stage("a", 2, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) { return t; });
  });
  builder.Stage("b", 2, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) { return t; });
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->output.size(), 5000u);
}

TEST(ExecutorTest, UnbatchedChannelsStillWork) {
  // batch_max_tuples = 1 reproduces the historical per-tuple channel.
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(500)),
                 /*watermark_interval=*/50);
  builder.BatchMaxTuples(1);
  builder.Stage("fan", 3, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) { return t; });
  });
  builder.Stage("sink", 2, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) { return t; });
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->output.size(), 500u);
}

TEST(TopologyBuilderTest, ValidationErrors) {
  {
    TopologyBuilder b;
    EXPECT_TRUE(b.Build().status().IsInvalid());  // no source
  }
  {
    TopologyBuilder b;
    b.Source(std::make_shared<VectorSpout>(NumberStream(1)));
    EXPECT_TRUE(b.Build().status().IsInvalid());  // no stages
  }
  {
    TopologyBuilder b;
    b.Source(std::make_shared<VectorSpout>(NumberStream(1)));
    b.Stage("s", 0, Partitioner::Shuffle(),
            [](int) { return std::make_unique<MapBolt>(nullptr); });
    EXPECT_TRUE(b.Build().status().IsInvalid());  // parallelism 0
  }
  {
    TopologyBuilder b;
    b.Source(std::make_shared<VectorSpout>(NumberStream(1)));
    b.Stage("s", 1, Partitioner::Shuffle(), nullptr);
    EXPECT_TRUE(b.Build().status().IsInvalid());  // no factory
  }
  {
    TopologyBuilder b;
    b.Source(std::make_shared<VectorSpout>(NumberStream(1)));
    b.Stage("s", 1, Partitioner::Shuffle(),
            [](int) { return std::make_unique<MapBolt>(nullptr); });
    b.BatchMaxTuples(0);
    EXPECT_TRUE(b.Build().status().IsInvalid());  // batch bound 0
  }
}

}  // namespace
}  // namespace spear
