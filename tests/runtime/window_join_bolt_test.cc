#include "runtime/window_join_bolt.h"

#include <gtest/gtest.h>

#include <set>

namespace spear {
namespace {

class CollectingEmitter : public Emitter {
 public:
  void Emit(Tuple tuple) override { tuples.push_back(std::move(tuple)); }
  std::vector<Tuple> tuples;
};

/// Left: [key, amount]; Right: [key, label].
Tuple Left(Timestamp t, const std::string& key, double amount) {
  return Tuple(t, {Value(key), Value(amount)});
}
Tuple Right(Timestamp t, const std::string& key, const std::string& label) {
  return Tuple(t, {Value(key), Value(label)});
}

WindowJoinConfig Config() {
  WindowJoinConfig config;
  config.window = WindowSpec::TumblingTime(100);
  config.tag_field = 0;
  // MergeStreams prepends the tag, shifting original fields by one.
  config.left_key = KeyField(1);
  config.right_key = KeyField(1);
  return config;
}

TEST(MergeStreamsTest, TagsAndInterleavesByTime) {
  const auto merged = MergeStreams({Left(1, "a", 1.0), Left(5, "b", 2.0)},
                                   {Right(3, "a", "x")});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].field(0).AsInt64(), 0);
  EXPECT_EQ(merged[1].field(0).AsInt64(), 1);  // right tuple at t=3
  EXPECT_EQ(merged[2].field(0).AsInt64(), 0);
  EXPECT_EQ(merged[0].event_time(), 1);
  EXPECT_EQ(merged[1].event_time(), 3);
  EXPECT_EQ(merged[2].event_time(), 5);
}

TEST(WindowJoinTest, MatchesWithinWindow) {
  WindowJoinBolt bolt(Config());
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  for (Tuple& t : MergeStreams({Left(10, "a", 1.5), Left(20, "b", 2.5)},
                               {Right(30, "a", "ride"),
                                Right(40, "c", "ghost")})) {
    ASSERT_TRUE(bolt.Execute(t, &out).ok());
  }
  ASSERT_TRUE(bolt.OnWatermark(100, &out).ok());
  // Only key "a" matches.
  ASSERT_EQ(out.tuples.size(), 1u);
  const Tuple& joined = out.tuples[0];
  EXPECT_EQ(joined.field(0).AsInt64(), 0);    // window start
  EXPECT_EQ(joined.field(1).AsInt64(), 100);  // window end
  EXPECT_EQ(joined.field(2).AsString(), "a");
  EXPECT_EQ(joined.field(3).AsString(), "a");       // left key field
  EXPECT_DOUBLE_EQ(joined.field(4).AsDouble(), 1.5);  // left amount
  EXPECT_EQ(joined.field(5).AsString(), "a");       // right key field
  EXPECT_EQ(joined.field(6).AsString(), "ride");    // right label
}

TEST(WindowJoinTest, NoCrossWindowMatches) {
  WindowJoinBolt bolt(Config());
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  for (Tuple& t : MergeStreams({Left(10, "a", 1.0)},
                               {Right(150, "a", "late")})) {
    ASSERT_TRUE(bolt.Execute(t, &out).ok());
  }
  ASSERT_TRUE(bolt.OnWatermark(200, &out).ok());
  EXPECT_TRUE(out.tuples.empty());
}

TEST(WindowJoinTest, ManyToManyProducesCrossProduct) {
  WindowJoinBolt bolt(Config());
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  for (Tuple& t : MergeStreams(
           {Left(1, "k", 1.0), Left(2, "k", 2.0), Left(3, "k", 3.0)},
           {Right(4, "k", "x"), Right(5, "k", "y")})) {
    ASSERT_TRUE(bolt.Execute(t, &out).ok());
  }
  ASSERT_TRUE(bolt.OnWatermark(100, &out).ok());
  EXPECT_EQ(out.tuples.size(), 6u);  // 3 x 2
}

TEST(WindowJoinTest, SlidingWindowJoinsPerWindow) {
  WindowJoinConfig config = Config();
  config.window = WindowSpec::SlidingTime(100, 50);
  WindowJoinBolt bolt(std::move(config));
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  // Both tuples at t=60..70: participate in windows [0,100) and [50,150).
  for (Tuple& t : MergeStreams({Left(60, "a", 1.0)},
                               {Right(70, "a", "m")})) {
    ASSERT_TRUE(bolt.Execute(t, &out).ok());
  }
  ASSERT_TRUE(bolt.OnWatermark(200, &out).ok());
  ASSERT_EQ(out.tuples.size(), 2u);
  std::set<std::int64_t> starts;
  for (const Tuple& t : out.tuples) starts.insert(t.field(0).AsInt64());
  EXPECT_EQ(starts, (std::set<std::int64_t>{0, 50}));
}

TEST(WindowJoinTest, MetricsRecorded) {
  WorkerMetrics metrics("join", 0);
  BoltContext ctx;
  ctx.metrics = &metrics;
  WindowJoinBolt bolt(Config());
  ASSERT_TRUE(bolt.Prepare(ctx).ok());
  CollectingEmitter out;
  for (Tuple& t : MergeStreams({Left(1, "a", 1.0)}, {Right(2, "a", "x")})) {
    ASSERT_TRUE(bolt.Execute(t, &out).ok());
  }
  ASSERT_TRUE(bolt.OnWatermark(100, &out).ok());
  EXPECT_EQ(metrics.WindowSummary().count, 1u);
  EXPECT_EQ(metrics.tuples_out(), 1u);
}

}  // namespace
}  // namespace spear
