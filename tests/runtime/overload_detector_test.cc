#include "runtime/overload.h"

#include <gtest/gtest.h>

/// \file overload_detector_test.cc
/// Unit coverage of the overload-control primitives: policy validation and
/// the detector's additive-ramp / multiplicative-decay shed probability.

namespace spear {
namespace {

OverloadConfig SloConfig(DurationMs slo = 10) {
  OverloadConfig config;
  config.latency_slo = slo;
  return config;
}

TEST(ShedPolicyTest, DefaultsValidate) {
  EXPECT_TRUE(ShedPolicy{}.Validate().ok());
}

TEST(ShedPolicyTest, RejectsOutOfRangeKnobs) {
  ShedPolicy p;
  p.queue_high_watermark = 1.5;
  EXPECT_FALSE(p.Validate().ok());

  p = ShedPolicy{};
  p.shed_step = 0.0;
  EXPECT_FALSE(p.Validate().ok());

  p = ShedPolicy{};
  p.shed_decay = 1.0;  // would never decay
  EXPECT_FALSE(p.Validate().ok());

  p = ShedPolicy{};
  p.max_shed_probability = 1.0;  // would shed whole windows
  EXPECT_FALSE(p.Validate().ok());

  p = ShedPolicy{};
  p.watermark_lag_slo = -1;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(OverloadConfigTest, DisabledByDefault) {
  OverloadConfig config;
  EXPECT_FALSE(config.ShedEnabled());
  EXPECT_FALSE(config.WatchdogEnabled());
  EXPECT_TRUE(config.Validate().ok());
}

TEST(OverloadConfigTest, NegativeKnobsRejected) {
  OverloadConfig config;
  config.latency_slo = -5;
  EXPECT_FALSE(config.Validate().ok());

  config = OverloadConfig{};
  config.watchdog_idle = -1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(OverloadDetectorTest, StartsClean) {
  OverloadDetector detector("stateful", SloConfig());
  EXPECT_EQ(detector.shed_probability(), 0.0);
  EXPECT_FALSE(detector.tripped());
  EXPECT_EQ(detector.trips(), 0u);
}

TEST(OverloadDetectorTest, QueueOccupancyRampsShedProbability) {
  OverloadConfig config = SloConfig();
  config.shed.queue_high_watermark = 0.75;
  config.shed.shed_step = 0.15;
  OverloadDetector detector("stateful", config);

  detector.ObserveQueue(80, 100);  // 0.8 >= 0.75: tripped
  EXPECT_TRUE(detector.tripped());
  EXPECT_DOUBLE_EQ(detector.shed_probability(), 0.15);
  detector.ObserveQueue(100, 100);
  EXPECT_DOUBLE_EQ(detector.shed_probability(), 0.30);
  EXPECT_EQ(detector.trips(), 2u);
}

TEST(OverloadDetectorTest, ShedProbabilityIsCapped) {
  OverloadConfig config = SloConfig();
  config.shed.shed_step = 0.5;
  config.shed.max_shed_probability = 0.6;
  OverloadDetector detector("stateful", config);
  for (int k = 0; k < 10; ++k) detector.ObserveQueue(100, 100);
  EXPECT_DOUBLE_EQ(detector.shed_probability(), 0.6);
}

TEST(OverloadDetectorTest, HealthyObservationsDecayToZero) {
  OverloadConfig config = SloConfig();
  config.shed.shed_step = 0.4;
  config.shed.shed_decay = 0.5;
  OverloadDetector detector("stateful", config);
  detector.ObserveQueue(100, 100);
  ASSERT_GT(detector.shed_probability(), 0.0);
  // Each healthy observation halves p; below the floor it snaps to 0 so
  // the admission path goes back to a single comparison.
  for (int k = 0; k < 64; ++k) detector.ObserveQueue(0, 100);
  EXPECT_FALSE(detector.tripped());
  EXPECT_EQ(detector.shed_probability(), 0.0);
}

TEST(OverloadDetectorTest, WindowLatencyAgainstSloTrips) {
  OverloadDetector detector("stateful", SloConfig(/*slo=*/10));
  detector.ObserveWindowLatency(5'000'000);  // 5 ms < 10 ms: healthy
  EXPECT_FALSE(detector.tripped());
  EXPECT_EQ(detector.shed_probability(), 0.0);
  detector.ObserveWindowLatency(25'000'000);  // 25 ms > 10 ms: overloaded
  EXPECT_TRUE(detector.tripped());
  EXPECT_GT(detector.shed_probability(), 0.0);
}

TEST(OverloadDetectorTest, WatermarkLagDefaultsToFourTimesSlo) {
  OverloadDetector detector("stateful", SloConfig(/*slo=*/10));
  detector.ObserveWatermarkLag(39);  // < 4 x 10 ms: healthy
  EXPECT_FALSE(detector.tripped());
  detector.ObserveWatermarkLag(40);  // >= 4 x 10 ms: overloaded
  EXPECT_TRUE(detector.tripped());
}

TEST(OverloadDetectorTest, ExplicitLagSloOverridesDerivedOne) {
  OverloadConfig config = SloConfig(/*slo=*/10);
  config.shed.watermark_lag_slo = 500;
  OverloadDetector detector("stateful", config);
  detector.ObserveWatermarkLag(400);
  EXPECT_FALSE(detector.tripped());
  detector.ObserveWatermarkLag(500);
  EXPECT_TRUE(detector.tripped());
}

TEST(OverloadDetectorTest, ZeroHighWatermarkTripsOnEveryQueueObservation) {
  // The deterministic-test configuration: every ObserveQueue counts as
  // overloaded, even on an empty queue.
  OverloadConfig config = SloConfig();
  config.shed.queue_high_watermark = 0.0;
  OverloadDetector detector("stateful", config);
  detector.ObserveQueue(0, 100);
  EXPECT_TRUE(detector.tripped());
  EXPECT_GT(detector.shed_probability(), 0.0);
}

}  // namespace
}  // namespace spear
