#include "runtime/common_bolts.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

class CollectingEmitter : public Emitter {
 public:
  void Emit(Tuple tuple) override { tuples.push_back(std::move(tuple)); }
  std::vector<Tuple> tuples;
};

TEST(MapBoltTest, TransformsEveryTuple) {
  MapBolt bolt([](const Tuple& t) {
    Tuple out = t;
    out.field(0) = Value(t.field(0).AsDouble() * 2.0);
    return out;
  });
  CollectingEmitter out;
  ASSERT_TRUE(bolt.Execute(Tuple(1, {Value(3.0)}), &out).ok());
  ASSERT_TRUE(bolt.Execute(Tuple(2, {Value(5.0)}), &out).ok());
  ASSERT_EQ(out.tuples.size(), 2u);
  EXPECT_DOUBLE_EQ(out.tuples[0].field(0).AsDouble(), 6.0);
  EXPECT_DOUBLE_EQ(out.tuples[1].field(0).AsDouble(), 10.0);
}

TEST(FilterBoltTest, DropsNonMatching) {
  FilterBolt bolt([](const Tuple& t) { return t.field(0).AsDouble() > 1.0; });
  CollectingEmitter out;
  ASSERT_TRUE(bolt.Execute(Tuple(1, {Value(0.5)}), &out).ok());
  ASSERT_TRUE(bolt.Execute(Tuple(2, {Value(1.5)}), &out).ok());
  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_EQ(out.tuples[0].event_time(), 2);
}

TEST(TimeAssignBoltTest, AnnotatesEventTimeFromField) {
  TimeAssignBolt bolt(/*time_field=*/1);
  CollectingEmitter out;
  ASSERT_TRUE(
      bolt.Execute(Tuple(0, {Value("x"), Value(std::int64_t{777})}), &out)
          .ok());
  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_EQ(out.tuples[0].event_time(), 777);
  // Payload untouched.
  EXPECT_EQ(out.tuples[0].field(0).AsString(), "x");
}

TEST(DefaultBoltCallbacks, WatermarkAndFinishAreNoops) {
  MapBolt bolt([](const Tuple& t) { return t; });
  CollectingEmitter out;
  EXPECT_TRUE(bolt.OnWatermark(100, &out).ok());
  EXPECT_TRUE(bolt.Finish(&out).ok());
  EXPECT_TRUE(out.tuples.empty());
  EXPECT_TRUE(bolt.Prepare(BoltContext{}).ok());
}

}  // namespace
}  // namespace spear
