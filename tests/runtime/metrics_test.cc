#include "runtime/metrics.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(MetricSummaryTest, EmptySamples) {
  const MetricSummary s = MetricSummary::FromSamples({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(MetricSummaryTest, SingleSample) {
  const MetricSummary s = MetricSummary::FromSamples({42});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_EQ(s.min, 42);
  EXPECT_EQ(s.max, 42);
  EXPECT_EQ(s.p50, 42);
  EXPECT_EQ(s.p95, 42);
}

TEST(MetricSummaryTest, PercentilesOfRange) {
  std::vector<std::int64_t> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(i);
  const MetricSummary s = MetricSummary::FromSamples(std::move(samples));
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100);
  EXPECT_NEAR(static_cast<double>(s.p50), 50.0, 1.0);
  EXPECT_NEAR(static_cast<double>(s.p95), 95.0, 1.0);
  EXPECT_NEAR(static_cast<double>(s.p99), 99.0, 1.0);
}

TEST(MetricSummaryTest, UnsortedInputHandled) {
  const MetricSummary s = MetricSummary::FromSamples({5, 1, 9, 3});
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 9);
}

TEST(WorkerMetricsTest, CountersAccumulate) {
  WorkerMetrics m("stage", 3);
  m.AddTuplesIn(10);
  m.AddTuplesIn(5);
  m.AddTuplesOut(2);
  m.AddBusyNs(100);
  m.RecordWindowNs(1000);
  m.RecordWindowNs(3000);
  m.RecordMemoryBytes(64);
  EXPECT_EQ(m.stage(), "stage");
  EXPECT_EQ(m.task_id(), 3);
  EXPECT_EQ(m.tuples_in(), 15u);
  EXPECT_EQ(m.tuples_out(), 2u);
  EXPECT_EQ(m.busy_ns(), 100);
  EXPECT_DOUBLE_EQ(m.WindowSummary().mean, 2000.0);
  EXPECT_DOUBLE_EQ(m.MemorySummary().mean, 64.0);
}

TEST(MetricsRegistryTest, StagePooling) {
  MetricsRegistry registry;
  WorkerMetrics* a = registry.Register("stateful", 0);
  WorkerMetrics* b = registry.Register("stateful", 1);
  WorkerMetrics* other = registry.Register("sink", 0);
  a->RecordWindowNs(100);
  b->RecordWindowNs(300);
  other->RecordWindowNs(999999);

  const MetricSummary pooled = registry.StageWindowSummary("stateful");
  EXPECT_EQ(pooled.count, 2u);
  EXPECT_DOUBLE_EQ(pooled.mean, 200.0);
  EXPECT_EQ(registry.ForStage("stateful").size(), 2u);
  EXPECT_EQ(registry.ForStage("sink").size(), 1u);
  EXPECT_EQ(registry.ForStage("missing").size(), 0u);
}

TEST(MetricsRegistryTest, MeanMemoryPerWorker) {
  MetricsRegistry registry;
  WorkerMetrics* a = registry.Register("s", 0);
  WorkerMetrics* b = registry.Register("s", 1);
  a->RecordMemoryBytes(100);
  a->RecordMemoryBytes(200);
  b->RecordMemoryBytes(400);
  // Worker a averages 150, worker b averages 400 -> mean across = 275.
  EXPECT_DOUBLE_EQ(registry.StageMeanMemoryPerWorker("s"), 275.0);
  EXPECT_DOUBLE_EQ(registry.StageMeanMemoryPerWorker("none"), 0.0);
}

}  // namespace
}  // namespace spear
