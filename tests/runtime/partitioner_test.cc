#include "runtime/partitioner.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace spear {
namespace {

Tuple KT(const std::string& k) { return Tuple(0, {Value(k)}); }

TEST(PartitionerTest, ShuffleRoundRobins) {
  const Partitioner p = Partitioner::Shuffle();
  std::uint64_t rr = 0;
  std::vector<int> targets;
  for (int i = 0; i < 8; ++i) targets.push_back(p.TargetTask(KT("x"), 4, &rr));
  EXPECT_EQ(targets, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

TEST(PartitionerTest, GlobalAlwaysZero) {
  const Partitioner p = Partitioner::Global();
  std::uint64_t rr = 0;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(p.TargetTask(KT("x"), 7, &rr), 0);
}

TEST(PartitionerTest, FieldsIsDeterministicPerKey) {
  const Partitioner p = Partitioner::Fields(KeyField(0));
  std::uint64_t rr = 0;
  const int first = p.TargetTask(KT("route-42"), 8, &rr);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(p.TargetTask(KT("route-42"), 8, &rr), first);
  }
}

TEST(PartitionerTest, FieldsSpreadsKeys) {
  const Partitioner p = Partitioner::Fields(KeyField(0));
  std::uint64_t rr = 0;
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(p.TargetTask(KT("k" + std::to_string(i)), 8, &rr));
  }
  EXPECT_EQ(seen.size(), 8u);  // all tasks hit with 200 keys
}

TEST(PartitionerTest, SingleTaskShortCircuits) {
  std::uint64_t rr = 0;
  EXPECT_EQ(Partitioner::Shuffle().TargetTask(KT("x"), 1, &rr), 0);
  EXPECT_EQ(Partitioner::Fields(KeyField(0)).TargetTask(KT("x"), 1, &rr), 0);
  EXPECT_EQ(rr, 0u);  // round-robin state untouched
}

TEST(PartitionerTest, TargetsAlwaysInRange) {
  const Partitioner p = Partitioner::Fields(KeyField(0));
  std::uint64_t rr = 0;
  for (int parallelism : {2, 3, 5, 16}) {
    for (int i = 0; i < 100; ++i) {
      const int t = p.TargetTask(KT("key" + std::to_string(i)), parallelism,
                                 &rr);
      EXPECT_GE(t, 0);
      EXPECT_LT(t, parallelism);
    }
  }
}

}  // namespace
}  // namespace spear
