#include "runtime/metrics.h"

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/retry_policy.h"
#include "core/spear_window_manager.h"
#include "storage/secondary_storage.h"

/// The metrics-merge invariant: every counter a worker records reaches the
/// run-level totals. Accumulate() must cover every field of its struct —
/// a field added to FaultStats/OverloadStats but not to Accumulate() is
/// silently dropped from RunReport (exactly how spill_failures went
/// missing before this suite). The sizeof static_asserts force whoever
/// adds a field to extend both Accumulate() and these tests.

namespace spear {
namespace {

static_assert(sizeof(FaultStats) == 8 * sizeof(std::uint64_t),
              "FaultStats gained a field: update Accumulate() and "
              "metrics_merge_test.cc");
static_assert(sizeof(OverloadStats) ==
                  4 * sizeof(std::uint64_t) + sizeof(std::int64_t),
              "OverloadStats gained a field: update Accumulate() and "
              "metrics_merge_test.cc");

TEST(MetricsMergeTest, FaultStatsAccumulateCoversEveryField) {
  FaultStats a;
  FaultStats b;
  b.injected = 1;
  b.retries = 2;
  b.recovered = 3;
  b.quarantined = 5;
  b.degraded_windows = 7;
  b.worker_restarts = 11;
  b.snapshots = 13;
  b.spill_failures = 17;
  a.Accumulate(b);
  a.Accumulate(b);
  EXPECT_EQ(a.injected, 2u);
  EXPECT_EQ(a.retries, 4u);
  EXPECT_EQ(a.recovered, 6u);
  EXPECT_EQ(a.quarantined, 10u);
  EXPECT_EQ(a.degraded_windows, 14u);
  EXPECT_EQ(a.worker_restarts, 22u);
  EXPECT_EQ(a.snapshots, 26u);
  EXPECT_EQ(a.spill_failures, 34u);
}

TEST(MetricsMergeTest, OverloadStatsAccumulateCoversEveryField) {
  OverloadStats a;
  OverloadStats b;
  b.tuples_shed = 1;
  b.windows_shed_loss = 2;
  b.deadline_aborts = 3;
  b.watchdog_advances = 5;
  b.backpressure_wait_ns = 7;
  a.Accumulate(b);
  a.Accumulate(b);
  EXPECT_EQ(a.tuples_shed, 2u);
  EXPECT_EQ(a.windows_shed_loss, 4u);
  EXPECT_EQ(a.deadline_aborts, 6u);
  EXPECT_EQ(a.watchdog_advances, 10u);
  EXPECT_EQ(a.backpressure_wait_ns, 14);
}

TEST(MetricsMergeTest, EveryWorkerAdderReachesTheTotals) {
  MetricsRegistry registry;
  WorkerMetrics* w0 = registry.Register("stateful", 0);
  WorkerMetrics* w1 = registry.Register("stateful", 1);

  w0->AddRetries(1);
  w0->AddRecovered(2);
  w0->AddQuarantined(3);
  w0->AddDegradedWindows(4);
  w0->AddWorkerRestarts(5);
  w0->AddSnapshots(6);
  w0->AddSpillFailures(7);
  w1->AddSpillFailures(10);
  w0->AddTuplesShed(8);
  w0->AddWindowsShedLoss(9);
  w0->AddDeadlineAborts(10);
  w0->AddBackpressureNs(11);

  const FaultStats faults = registry.FaultTotals();
  EXPECT_EQ(faults.retries, 1u);
  EXPECT_EQ(faults.recovered, 2u);
  EXPECT_EQ(faults.quarantined, 3u);
  EXPECT_EQ(faults.degraded_windows, 4u);
  EXPECT_EQ(faults.worker_restarts, 5u);
  EXPECT_EQ(faults.snapshots, 6u);
  EXPECT_EQ(faults.spill_failures, 17u);  // summed across workers

  const OverloadStats overload = registry.OverloadTotals();
  EXPECT_EQ(overload.tuples_shed, 8u);
  EXPECT_EQ(overload.windows_shed_loss, 9u);
  EXPECT_EQ(overload.deadline_aborts, 10u);
  EXPECT_EQ(overload.backpressure_wait_ns, 11);
}

// The field that used to be dropped: a SpearWindowManager spill failure
// (S unavailable past its retries) must reach WorkerMetrics and thus
// FaultTotals, not just the manager's private counter.
TEST(MetricsMergeTest, ManagerSpillFailuresReachWorkerMetrics) {
  SecondaryStorage storage;
  FaultPlan plan;
  FaultRule rule;
  rule.site = FaultSite::kStorageStore;
  rule.probability = 1.0;  // every spill attempt fails
  plan.Add(rule);
  FaultInjector injector(plan);
  storage.InjectFaults(&injector);

  SpearOperatorConfig config;
  config.window = WindowSpec::TumblingTime(1000);
  config.aggregate = AggregateSpec::Mean();
  config.accuracy = AccuracySpec{0.10, 0.95};
  config.budget = Budget::Tuples(16);
  config.buffer_memory_capacity = 8;  // force spilling almost immediately
  config.storage_retry = RetryPolicy::None();

  SpearWindowManager manager(config, NumericField(0), nullptr, &storage,
                             "merge-test");
  WorkerMetrics worker("stateful", 0);
  manager.SetMetrics(&worker);

  for (int i = 0; i < 64; ++i) {
    manager.OnTuple(i, Tuple(i, {Value(i * 1.0)}));
  }

  EXPECT_GT(worker.faults().spill_failures, 0u);
  MetricsRegistry registry;
  WorkerMetrics* registered = registry.Register("stateful", 0);
  registered->AddSpillFailures(worker.faults().spill_failures);
  EXPECT_EQ(registry.FaultTotals().spill_failures,
            worker.faults().spill_failures);
}

}  // namespace
}  // namespace spear
