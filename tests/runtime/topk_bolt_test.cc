#include "runtime/topk_bolt.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "runtime/windowed_bolt.h"

namespace spear {
namespace {

class CollectingEmitter : public Emitter {
 public:
  void Emit(Tuple tuple) override { tuples.push_back(std::move(tuple)); }
  std::vector<Tuple> tuples;
};

Tuple KT(Timestamp t, const std::string& k) { return Tuple(t, {Value(k)}); }

TEST(TopKBoltTest, HeavyHitterAlwaysSurfaced) {
  TopKBolt bolt(WindowSpec::TumblingTime(1000), KeyField(0), 5);
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  Rng rng(1);
  int hot_count = 0;
  for (int i = 0; i < 5000; ++i) {
    std::string key;
    if (rng.NextDouble() < 0.4) {
      key = "hot";
      ++hot_count;
    } else {
      key = "cold" + std::to_string(rng.NextBounded(500));
    }
    ASSERT_TRUE(bolt.Execute(KT(i % 1000, key), &out).ok());
  }
  ASSERT_TRUE(bolt.OnWatermark(1000, &out).ok());
  ASSERT_EQ(out.tuples.size(), 5u);
  // TopK() sorts descending: the heavy hitter leads.
  EXPECT_EQ(out.tuples[0].field(ResultTupleLayout::kGroupKey).AsString(),
            "hot");
  // SpaceSaving never underestimates a monitored key.
  EXPECT_GE(out.tuples[0].field(ResultTupleLayout::kGroupValue).AsDouble(),
            static_cast<double>(hot_count));
}

TEST(TopKBoltTest, EmitsAtMostKItems) {
  TopKBolt bolt(WindowSpec::TumblingTime(100), KeyField(0), 3);
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        bolt.Execute(KT(i, "k" + std::to_string(i % 20)), &out).ok());
  }
  ASSERT_TRUE(bolt.OnWatermark(100, &out).ok());
  EXPECT_EQ(out.tuples.size(), 3u);
}

TEST(TopKBoltTest, PerWindowIsolation) {
  TopKBolt bolt(WindowSpec::TumblingTime(100), KeyField(0), 2);
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(bolt.Execute(KT(10, "a"), &out).ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(bolt.Execute(KT(110, "b"), &out).ok());
  ASSERT_TRUE(bolt.OnWatermark(200, &out).ok());
  ASSERT_EQ(out.tuples.size(), 2u);
  EXPECT_EQ(out.tuples[0].field(ResultTupleLayout::kGroupKey).AsString(), "a");
  EXPECT_EQ(out.tuples[0].field(ResultTupleLayout::kStart).AsInt64(), 0);
  EXPECT_EQ(out.tuples[1].field(ResultTupleLayout::kGroupKey).AsString(), "b");
  EXPECT_EQ(out.tuples[1].field(ResultTupleLayout::kStart).AsInt64(), 100);
}

TEST(TopKBoltTest, SlidingWindowsCountOverlaps) {
  TopKBolt bolt(WindowSpec::SlidingTime(200, 100), KeyField(0), 1);
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(bolt.Execute(KT(150, "x"), &out).ok());
  ASSERT_TRUE(bolt.OnWatermark(400, &out).ok());
  // 150 participates in [0,200) and [100,300): two windows emit "x".
  ASSERT_EQ(out.tuples.size(), 2u);
  for (const Tuple& t : out.tuples) {
    EXPECT_DOUBLE_EQ(t.field(ResultTupleLayout::kGroupValue).AsDouble(),
                     10.0);
  }
}

}  // namespace
}  // namespace spear
