#include "runtime/gk_quantile_bolt.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace spear {
namespace {

class CollectingEmitter : public Emitter {
 public:
  void Emit(Tuple tuple) override { tuples.push_back(std::move(tuple)); }
  std::vector<Tuple> tuples;
};

Tuple VT(Timestamp t, double v) { return Tuple(t, {Value(v)}); }

TEST(GkQuantileBoltTest, MedianWithinDeterministicRankError) {
  GkQuantileBolt bolt(WindowSpec::TumblingTime(1000), NumericField(0), 0.5,
                      0.05);
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble() * 1000.0;
    values.push_back(v);
    ASSERT_TRUE(bolt.Execute(VT(i % 1000, v), &out).ok());
  }
  ASSERT_TRUE(bolt.OnWatermark(1000, &out).ok());
  ASSERT_EQ(out.tuples.size(), 1u);
  const double estimate =
      out.tuples[0].field(ResultTupleLayout::kScalarValue).AsDouble();
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<double>(
                        std::upper_bound(values.begin(), values.end(),
                                         estimate) -
                        values.begin()) /
                    static_cast<double>(values.size());
  EXPECT_NEAR(rank, 0.5, 0.05 + 1e-3);
  EXPECT_EQ(out.tuples[0].field(ResultTupleLayout::kScalarApprox).AsInt64(),
            1);
}

TEST(GkQuantileBoltTest, SlidingWindowsEachGetASketch) {
  GkQuantileBolt bolt(WindowSpec::SlidingTime(300, 100), NumericField(0),
                      0.5, 0.1);
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  for (int t = 0; t < 1000; ++t) {
    ASSERT_TRUE(bolt.Execute(VT(t, 7.0), &out).ok());
  }
  ASSERT_TRUE(bolt.OnWatermark(1000, &out).ok());
  EXPECT_GT(out.tuples.size(), 5u);
  for (const Tuple& t : out.tuples) {
    EXPECT_DOUBLE_EQ(t.field(ResultTupleLayout::kScalarValue).AsDouble(),
                     7.0);
  }
}

TEST(GkQuantileBoltTest, CountWindows) {
  GkQuantileBolt bolt(WindowSpec::TumblingCount(100), NumericField(0), 0.5,
                      0.1);
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(bolt.Execute(VT(i, i % 100), &out).ok());
  }
  EXPECT_EQ(out.tuples.size(), 2u);  // two complete count-100 windows
}

TEST(GkQuantileBoltTest, MemoryBoundedBySummary) {
  WorkerMetrics metrics("gk", 0);
  BoltContext ctx;
  ctx.metrics = &metrics;
  GkQuantileBolt bolt(WindowSpec::TumblingTime(1000), NumericField(0), 0.5,
                      0.05);
  ASSERT_TRUE(bolt.Prepare(ctx).ok());
  CollectingEmitter out;
  Rng rng(2);
  for (int i = 0; i < 50000; ++i) {
    ASSERT_TRUE(bolt.Execute(VT(i % 1000, rng.NextDouble()), &out).ok());
  }
  ASSERT_TRUE(bolt.OnWatermark(1000, &out).ok());
  // Summary memory must be far below the 50K-value window.
  EXPECT_LT(metrics.MemorySummary().max,
            static_cast<std::int64_t>(50000 * sizeof(double) / 10));
}

}  // namespace
}  // namespace spear
