#include "runtime/windowed_bolt.h"

#include <gtest/gtest.h>

#include "runtime/countmin_bolt.h"

namespace spear {
namespace {

/// Captures emissions for direct bolt-level tests.
class CollectingEmitter : public Emitter {
 public:
  void Emit(Tuple tuple) override { tuples.push_back(std::move(tuple)); }
  std::vector<Tuple> tuples;
};

Tuple VT(Timestamp t, double v) { return Tuple(t, {Value(v)}); }
Tuple KT(Timestamp t, const std::string& k, double v) {
  return Tuple(t, {Value(k), Value(v)});
}

ExactWindowedBoltConfig MeanConfig(WindowSpec window) {
  ExactWindowedBoltConfig config;
  config.window = window;
  config.aggregate = AggregateSpec::Mean();
  config.value_extractor = NumericField(0);
  return config;
}

TEST(WindowResultToTuplesTest, ScalarLayout) {
  WindowResult r;
  r.bounds = WindowBounds{10, 20};
  r.scalar = 3.5;
  r.approximate = true;
  r.estimated_error = 0.07;
  const auto tuples = WindowResultToTuples(r);
  ASSERT_EQ(tuples.size(), 1u);
  const Tuple& t = tuples[0];
  EXPECT_EQ(t.event_time(), 20);
  EXPECT_EQ(t.field(ResultTupleLayout::kStart).AsInt64(), 10);
  EXPECT_EQ(t.field(ResultTupleLayout::kEnd).AsInt64(), 20);
  EXPECT_DOUBLE_EQ(t.field(ResultTupleLayout::kScalarValue).AsDouble(), 3.5);
  EXPECT_EQ(t.field(ResultTupleLayout::kScalarApprox).AsInt64(), 1);
  EXPECT_DOUBLE_EQ(t.field(ResultTupleLayout::kScalarError).AsDouble(), 0.07);
}

TEST(WindowResultToTuplesTest, GroupedLayout) {
  WindowResult r;
  r.bounds = WindowBounds{0, 10};
  r.is_grouped = true;
  r.groups = {{"a", 1.0}, {"b", 2.0}};
  const auto tuples = WindowResultToTuples(r);
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_EQ(tuples[0].field(ResultTupleLayout::kGroupKey).AsString(), "a");
  EXPECT_DOUBLE_EQ(tuples[1].field(ResultTupleLayout::kGroupValue).AsDouble(),
                   2.0);
  EXPECT_EQ(tuples[0].field(ResultTupleLayout::kGroupApprox).AsInt64(), 0);
}

TEST(ExactWindowedBoltTest, TimeWindowsEmitOnWatermark) {
  ExactWindowedBolt bolt(MeanConfig(WindowSpec::TumblingTime(10)));
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  ASSERT_TRUE(bolt.Execute(VT(1, 2.0), &out).ok());
  ASSERT_TRUE(bolt.Execute(VT(5, 4.0), &out).ok());
  EXPECT_TRUE(out.tuples.empty());
  ASSERT_TRUE(bolt.OnWatermark(10, &out).ok());
  ASSERT_EQ(out.tuples.size(), 1u);
  EXPECT_DOUBLE_EQ(
      out.tuples[0].field(ResultTupleLayout::kScalarValue).AsDouble(), 3.0);
}

TEST(ExactWindowedBoltTest, CountWindowsEmitByCardinality) {
  ExactWindowedBoltConfig config = MeanConfig(WindowSpec::TumblingCount(5));
  ExactWindowedBolt bolt(std::move(config));
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  for (int i = 0; i < 14; ++i) {
    ASSERT_TRUE(bolt.Execute(VT(i * 1000, i), &out).ok());
  }
  // 14 tuples -> two complete count-5 windows.
  ASSERT_EQ(out.tuples.size(), 2u);
  EXPECT_DOUBLE_EQ(
      out.tuples[0].field(ResultTupleLayout::kScalarValue).AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(
      out.tuples[1].field(ResultTupleLayout::kScalarValue).AsDouble(), 7.0);
}

TEST(ExactWindowedBoltTest, MultiBufferAgreesWithSingle) {
  ExactWindowedBoltConfig single_cfg =
      MeanConfig(WindowSpec::SlidingTime(20, 10));
  ExactWindowedBoltConfig multi_cfg =
      MeanConfig(WindowSpec::SlidingTime(20, 10));
  multi_cfg.use_multi_buffer = true;

  ExactWindowedBolt single(std::move(single_cfg));
  ExactWindowedBolt multi(std::move(multi_cfg));
  ASSERT_TRUE(single.Prepare(BoltContext{}).ok());
  ASSERT_TRUE(multi.Prepare(BoltContext{}).ok());
  CollectingEmitter s_out, m_out;
  for (int t = 0; t < 100; ++t) {
    ASSERT_TRUE(single.Execute(VT(t, t * 1.5), &s_out).ok());
    ASSERT_TRUE(multi.Execute(VT(t, t * 1.5), &m_out).ok());
  }
  ASSERT_TRUE(single.OnWatermark(90, &s_out).ok());
  ASSERT_TRUE(multi.OnWatermark(90, &m_out).ok());
  ASSERT_EQ(s_out.tuples.size(), m_out.tuples.size());
  for (std::size_t i = 0; i < s_out.tuples.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        s_out.tuples[i].field(ResultTupleLayout::kScalarValue).AsDouble(),
        m_out.tuples[i].field(ResultTupleLayout::kScalarValue).AsDouble());
  }
}

TEST(ExactWindowedBoltTest, MetricsRecorded) {
  WorkerMetrics metrics("stateful", 0);
  BoltContext ctx;
  ctx.metrics = &metrics;
  ExactWindowedBolt bolt(MeanConfig(WindowSpec::TumblingTime(10)));
  ASSERT_TRUE(bolt.Prepare(ctx).ok());
  CollectingEmitter out;
  for (int t = 0; t < 30; ++t) ASSERT_TRUE(bolt.Execute(VT(t, 1.0), &out).ok());
  ASSERT_TRUE(bolt.OnWatermark(30, &out).ok());
  EXPECT_EQ(metrics.WindowSummary().count, 3u);
  EXPECT_EQ(metrics.MemorySummary().count, 3u);
  EXPECT_GT(metrics.MemorySummary().mean, 0.0);
}

TEST(ExactWindowedBoltTest, MultiBufferRejectsSpill) {
  ExactWindowedBoltConfig config = MeanConfig(WindowSpec::TumblingTime(10));
  config.use_multi_buffer = true;
  config.memory_capacity = 10;
  ExactWindowedBolt bolt(std::move(config));
  EXPECT_TRUE(bolt.Prepare(BoltContext{}).IsInvalid());
}

TEST(IncrementalWindowedBoltTest, MatchesExactMean) {
  ExactWindowedBolt exact(MeanConfig(WindowSpec::TumblingTime(10)));
  IncrementalWindowedBolt inc(WindowSpec::TumblingTime(10),
                              AggregateSpec::Mean(), NumericField(0));
  ASSERT_TRUE(exact.Prepare(BoltContext{}).ok());
  ASSERT_TRUE(inc.Prepare(BoltContext{}).ok());
  CollectingEmitter e_out, i_out;
  for (int t = 0; t < 50; ++t) {
    ASSERT_TRUE(exact.Execute(VT(t, t * 0.25), &e_out).ok());
    ASSERT_TRUE(inc.Execute(VT(t, t * 0.25), &i_out).ok());
  }
  ASSERT_TRUE(exact.OnWatermark(50, &e_out).ok());
  ASSERT_TRUE(inc.OnWatermark(50, &i_out).ok());
  ASSERT_EQ(e_out.tuples.size(), i_out.tuples.size());
  for (std::size_t i = 0; i < e_out.tuples.size(); ++i) {
    EXPECT_NEAR(
        e_out.tuples[i].field(ResultTupleLayout::kScalarValue).AsDouble(),
        i_out.tuples[i].field(ResultTupleLayout::kScalarValue).AsDouble(),
        1e-9);
  }
}

TEST(IncrementalWindowedBoltTest, GroupedCountWindows) {
  IncrementalWindowedBolt bolt(WindowSpec::TumblingCount(4),
                               AggregateSpec::Sum(), NumericField(1),
                               KeyField(0));
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  ASSERT_TRUE(bolt.Execute(KT(0, "a", 1.0), &out).ok());
  ASSERT_TRUE(bolt.Execute(KT(1, "b", 2.0), &out).ok());
  ASSERT_TRUE(bolt.Execute(KT(2, "a", 3.0), &out).ok());
  ASSERT_TRUE(bolt.Execute(KT(3, "b", 4.0), &out).ok());
  // One complete window with groups a: 4.0, b: 6.0.
  ASSERT_EQ(out.tuples.size(), 2u);
  EXPECT_DOUBLE_EQ(out.tuples[0].field(ResultTupleLayout::kGroupValue).AsDouble(),
                   4.0);
  EXPECT_DOUBLE_EQ(out.tuples[1].field(ResultTupleLayout::kGroupValue).AsDouble(),
                   6.0);
}

TEST(CountMinBoltTest, GroupedMeanApproximation) {
  CountMinWindowedBolt bolt(WindowSpec::TumblingTime(100), NumericField(1),
                            KeyField(0), /*epsilon=*/0.01,
                            /*confidence=*/0.95);
  ASSERT_TRUE(bolt.Prepare(BoltContext{}).ok());
  CollectingEmitter out;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(
        bolt.Execute(KT(i % 100, "g" + std::to_string(i % 3), 10.0 * (i % 3)),
                     &out)
            .ok());
  }
  ASSERT_TRUE(bolt.OnWatermark(100, &out).ok());
  ASSERT_EQ(out.tuples.size(), 3u);
  for (const Tuple& t : out.tuples) {
    const std::string key = t.field(ResultTupleLayout::kGroupKey).AsString();
    const double mean = t.field(ResultTupleLayout::kGroupValue).AsDouble();
    const double expected = 10.0 * (key[1] - '0');
    EXPECT_NEAR(mean, expected, 1.0 + expected * 0.05) << key;
    EXPECT_EQ(t.field(ResultTupleLayout::kGroupApprox).AsInt64(), 1);
  }
}

}  // namespace
}  // namespace spear
