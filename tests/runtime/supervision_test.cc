#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>

#include "common/retry_policy.h"
#include "runtime/executor.h"
#include "runtime/fault_injection.h"
#include "runtime/common_bolts.h"
#include "runtime/spouts.h"

namespace spear {
namespace {

std::vector<Tuple> NumberStream(int n) {
  std::vector<Tuple> out;
  for (int i = 0; i < n; ++i) {
    out.emplace_back(i, std::vector<Value>{Value(static_cast<double>(i))});
  }
  return out;
}

RetryPolicy FastRetry(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff_ns = 10'000;  // 10 us — keep tests fast
  policy.max_backoff_ns = 100'000;
  return policy;
}

TEST(SupervisionTest, TransientFailureIsRetriedAndRecovers) {
  // Fails the first delivery of every 10th tuple; the retry succeeds.
  struct Flaky : Bolt {
    std::int64_t failing = -1;
    Status Execute(const Tuple& t, Emitter* out) override {
      if (t.event_time() % 10 == 0 && t.event_time() != failing) {
        failing = t.event_time();
        return Status::Unavailable("transient hiccup");
      }
      out->Emit(t);
      return Status::OK();
    }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(100)));
  builder.Stage("flaky", 1, Partitioner::Shuffle(),
                [](int) { return std::make_unique<Flaky>(); });
  builder.StageRetry(FastRetry(4));
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->output.size(), 100u);
  EXPECT_TRUE(report->dead_letters.empty());
  EXPECT_EQ(report->faults.retries, 10u);
  EXPECT_EQ(report->faults.recovered, 10u);
  EXPECT_EQ(report->faults.quarantined, 0u);
}

TEST(SupervisionTest, DataErrorQuarantinesTupleAndRunContinues) {
  struct Picky : Bolt {
    Status Execute(const Tuple& t, Emitter* out) override {
      if (t.event_time() == 7) return Status::Invalid("poison tuple");
      out->Emit(t);
      return Status::OK();
    }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(100)));
  builder.Stage("picky", 1, Partitioner::Shuffle(),
                [](int) { return std::make_unique<Picky>(); });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->output.size(), 99u);
  ASSERT_EQ(report->dead_letters.size(), 1u);
  const DeadLetter& dl = report->dead_letters[0];
  EXPECT_EQ(dl.stage, "picky");
  EXPECT_EQ(dl.task, 0);
  EXPECT_EQ(dl.attempts, 1);
  EXPECT_TRUE(dl.error.IsInvalid());
  EXPECT_EQ(dl.tuple.event_time(), 7);
  EXPECT_EQ(report->faults.quarantined, 1u);
}

TEST(SupervisionTest, ExecuteExceptionBecomesQuarantinedDataError) {
  struct Thrower : Bolt {
    Status Execute(const Tuple& t, Emitter* out) override {
      if (t.event_time() == 3) throw std::runtime_error("kaboom");
      out->Emit(t);
      return Status::OK();
    }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(10)));
  builder.Stage("throws", 1, Partitioner::Shuffle(),
                [](int) { return std::make_unique<Thrower>(); });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->output.size(), 9u);
  ASSERT_EQ(report->dead_letters.size(), 1u);
  EXPECT_TRUE(report->dead_letters[0].error.IsInvalid());
  EXPECT_NE(report->dead_letters[0].error.message().find("kaboom"),
            std::string::npos);
}

TEST(SupervisionTest, ExhaustedRetriesFailTheRun) {
  struct AlwaysDown : Bolt {
    Status Execute(const Tuple&, Emitter*) override {
      return Status::Unavailable("permanently down");
    }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(10)));
  builder.Stage("down", 1, Partitioner::Shuffle(),
                [](int) { return std::make_unique<AlwaysDown>(); });
  builder.StageRetry(FastRetry(3));
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsUnavailable());
}

TEST(SupervisionTest, TransientWithoutRetryPolicyStaysFatal) {
  // Pre-supervision behaviour is preserved when no retry is configured.
  struct Down : Bolt {
    Status Execute(const Tuple&, Emitter*) override {
      return Status::Unavailable("down");
    }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(10)));
  builder.Stage("down", 1, Partitioner::Shuffle(),
                [](int) { return std::make_unique<Down>(); });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsUnavailable());
}

TEST(SupervisionTest, WatermarkExceptionIsFatal) {
  struct BadWatermark : Bolt {
    Status Execute(const Tuple&, Emitter*) override { return Status::OK(); }
    Status OnWatermark(Timestamp, Emitter*) override {
      throw std::runtime_error("state torn");
    }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(1000)),
                 /*watermark_interval=*/100);
  builder.Stage("bad", 1, Partitioner::Shuffle(),
                [](int) { return std::make_unique<BadWatermark>(); });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInternal());
  EXPECT_NE(report.status().message().find("bolt watermark"),
            std::string::npos);
}

TEST(SupervisionTest, PrepareExceptionIsFatal) {
  struct BadPrepare : Bolt {
    Status Prepare(const BoltContext&) override {
      throw std::runtime_error("no config");
    }
    Status Execute(const Tuple&, Emitter*) override { return Status::OK(); }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(10)));
  builder.Stage("bad", 1, Partitioner::Shuffle(),
                [](int) { return std::make_unique<BadPrepare>(); });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInternal());
  EXPECT_NE(report.status().message().find("bolt prepare"),
            std::string::npos);
}

TEST(SupervisionTest, MidStreamErrorUnderBackPressureCancelsCleanly) {
  // A deep pipeline with tiny queues: when a downstream worker dies
  // mid-stream, upstream workers blocked on full queues and the source
  // must all unwind (queues are closed) instead of deadlocking.
  struct DiesAtFifty : Bolt {
    int seen = 0;
    Status Execute(const Tuple& t, Emitter* out) override {
      if (++seen == 50) return Status::Internal("mid-stream crash");
      out->Emit(t);
      return Status::OK();
    }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(50000)));
  builder.QueueCapacity(2);
  builder.Stage("pass", 2, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) { return t; });
  });
  builder.Stage("dies", 1, Partitioner::Shuffle(),
                [](int) { return std::make_unique<DiesAtFifty>(); });
  builder.Stage("sink", 1, Partitioner::Shuffle(), [](int) {
    return std::make_unique<MapBolt>([](const Tuple& t) { return t; });
  });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInternal());
  EXPECT_NE(report.status().message().find("mid-stream crash"),
            std::string::npos);
}

TEST(SupervisionTest, DistinctConcurrentErrorsAreSuppressedNotLost) {
  // Every worker fails Prepare with a task-specific message: one becomes
  // the returned error, the others must be reported as suppressed instead
  // of silently dropped.
  struct FailsWithTask : Bolt {
    int task;
    explicit FailsWithTask(int t) : task(t) {}
    Status Prepare(const BoltContext&) override {
      return Status::FailedPrecondition("worker " + std::to_string(task) +
                                        " broken");
    }
    Status Execute(const Tuple&, Emitter*) override { return Status::OK(); }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(10)));
  builder.Stage("bad", 3, Partitioner::Shuffle(),
                [](int task) { return std::make_unique<FailsWithTask>(task); });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsFailedPrecondition());
  EXPECT_NE(report.status().message().find("[+2 suppressed:"),
            std::string::npos)
      << report.status().message();
}

TEST(SupervisionTest, IdenticalConcurrentErrorsKeepExactMessage) {
  // Same failure on every worker: deduplication keeps the message pristine
  // (no suppressed suffix), so single-cause failures stay grep-able.
  struct SameFailure : Bolt {
    Status Prepare(const BoltContext&) override {
      return Status::FailedPrecondition("no disk");
    }
    Status Execute(const Tuple&, Emitter*) override { return Status::OK(); }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(10)));
  builder.Stage("bad", 4, Partitioner::Shuffle(),
                [](int) { return std::make_unique<SameFailure>(); });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().message(), "no disk");
}

TEST(SupervisionTest, QuarantinedTuplesMergeAcrossWorkers) {
  struct RejectsOdd : Bolt {
    Status Execute(const Tuple& t, Emitter* out) override {
      if (t.event_time() % 2 == 1) return Status::OutOfRange("odd");
      out->Emit(t);
      return Status::OK();
    }
  };
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(100)));
  builder.Stage("evens-only", 4, Partitioner::Shuffle(),
                [](int) { return std::make_unique<RejectsOdd>(); });
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->output.size(), 50u);
  EXPECT_EQ(report->dead_letters.size(), 50u);
  EXPECT_EQ(report->faults.quarantined, 50u);
  for (const DeadLetter& dl : report->dead_letters) {
    EXPECT_EQ(dl.tuple.event_time() % 2, 1);
  }
}

TEST(SupervisionTest, InjectingBoltWrapperRetriesToRecovery) {
  // End-to-end through the chaos wrapper: every 5th Execute is injected
  // Unavailable; the stage retry re-delivers (the injector tick advances,
  // so the retry is clean) and the stream completes losslessly.
  FaultPlan plan;
  FaultRule rule;
  rule.site = FaultSite::kBoltProcess;
  rule.every_nth = 5;
  plan.Add(rule);
  FaultInjector injector(plan);

  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(NumberStream(100)));
  builder.Stage("wrapped", 1, Partitioner::Shuffle(), [&](int) {
    return std::make_unique<FaultInjectingBolt>(
        std::make_unique<MapBolt>([](const Tuple& t) { return t; }),
        &injector);
  });
  builder.StageRetry(FastRetry(4));
  builder.InjectFaults(&injector);
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->output.size(), 100u);
  EXPECT_GT(report->faults.injected, 0u);
  EXPECT_EQ(report->faults.retries, report->faults.recovered);
  EXPECT_GT(report->faults.recovered, 0u);
}

TEST(SupervisionTest, InjectingSpoutPerturbationsAreLossless) {
  // Malformed: poison emitted, original still follows. Duplicate / late:
  // extra copies. The healthy payload count must never shrink.
  FaultPlan plan;
  FaultRule malformed;
  malformed.site = FaultSite::kSpoutMalformed;
  malformed.every_nth = 10;
  plan.Add(malformed);
  FaultRule dup;
  dup.site = FaultSite::kSpoutDuplicate;
  dup.every_nth = 25;
  plan.Add(dup);
  FaultInjector injector(plan);

  auto spout = std::make_shared<FaultInjectingSpout>(
      std::make_shared<VectorSpout>(NumberStream(100)), &injector);
  int healthy = 0;
  int poison = 0;
  Tuple t;
  while (spout->Next(&t)) {
    if (t.field(0).is_string()) {
      ++poison;
      EXPECT_EQ(t.field(0).AsString(), "__poison__");
    } else {
      ++healthy;
    }
  }
  EXPECT_EQ(poison, 10);
  EXPECT_EQ(healthy, 100 + 4);  // originals + 4 duplicates
}

}  // namespace
}  // namespace spear
