#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace spear {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallback) {
  Result<int> ok(7);
  Result<int> err(Status::Internal("x"));
  EXPECT_EQ(ok.ValueOr(-1), 7);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, ArrowAccess) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r(std::string("a"));
  *r += "b";
  EXPECT_EQ(*r, "ab");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SPEAR_ASSIGN_OR_RETURN(const int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
}

TEST(ResultTest, AssignOrReturnPropagatesInnerError) {
  EXPECT_TRUE(Quarter(7).status().IsInvalid());   // first Half fails
  EXPECT_TRUE(Quarter(6).status().IsInvalid());   // second Half fails
}

}  // namespace
}  // namespace spear
