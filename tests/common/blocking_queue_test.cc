#include "common/blocking_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace spear {
namespace {

TEST(BlockingQueueTest, PushPopSingleThread) {
  BlockingQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BlockingQueueTest, TryPushFailsWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
}

TEST(BlockingQueueTest, TryPopFailsWhenEmpty) {
  BlockingQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseUnblocksConsumer) {
  BlockingQueue<int> q(2);
  std::thread consumer([&] {
    EXPECT_FALSE(q.Pop().has_value());
  });
  q.Close();
  consumer.join();
}

TEST(BlockingQueueTest, CloseDrainsRemainingItems) {
  BlockingQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, PushFailsAfterClose) {
  BlockingQueue<int> q(2);
  q.Close();
  EXPECT_FALSE(q.Push(1));
  EXPECT_FALSE(q.TryPush(1));
}

TEST(BlockingQueueTest, BoundedPushBlocksUntilDrained) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);  // blocks until consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BlockingQueueTest, MpmcDeliversEverythingExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  BlockingQueue<int> q(16);
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++popped;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();

  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace spear
