#include "common/blocking_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace spear {
namespace {

TEST(BlockingQueueTest, PushPopSingleThread) {
  BlockingQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BlockingQueueTest, TryPushFailsWhenFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
}

TEST(BlockingQueueTest, TryPopFailsWhenEmpty) {
  BlockingQueue<int> q(2);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, CloseUnblocksConsumer) {
  BlockingQueue<int> q(2);
  std::thread consumer([&] {
    EXPECT_FALSE(q.Pop().has_value());
  });
  q.Close();
  consumer.join();
}

TEST(BlockingQueueTest, CloseDrainsRemainingItems) {
  BlockingQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, PushFailsAfterClose) {
  BlockingQueue<int> q(2);
  q.Close();
  EXPECT_FALSE(q.Push(1));
  EXPECT_FALSE(q.TryPush(1));
}

// Control elements get reserved headroom: a full data queue must not make
// a watermark wait behind the very tuples it would release.
TEST(BlockingQueueTest, PushControlBypassesCapacity) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_TRUE(q.PushControl(3));  // would deadlock if it waited for room
  EXPECT_EQ(q.size(), 3u);       // transient overshoot is allowed
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BlockingQueueTest, PushControlFailsAfterClose) {
  BlockingQueue<int> q(2);
  q.Close();
  EXPECT_FALSE(q.PushControl(1));
}

// Data producers keep blocking while control overshoot is outstanding —
// the headroom is reserved for control elements, not free capacity.
TEST(BlockingQueueTest, ControlOvershootStillBackpressuresData) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.PushControl(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.TryPush(3));  // still at capacity from the overshoot
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BlockingQueueTest, BlockedPushRecordsBackpressureWait) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::int64_t blocked_ns = 0;
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Pop();
  });
  EXPECT_TRUE(q.Push(2, &blocked_ns));
  consumer.join();
  EXPECT_GT(blocked_ns, 0);
}

TEST(BlockingQueueTest, UnblockedPushRecordsNoWait) {
  BlockingQueue<int> q(4);
  std::int64_t blocked_ns = 0;
  EXPECT_TRUE(q.Push(1, &blocked_ns));
  std::vector<int> batch{2, 3};
  EXPECT_TRUE(q.PushAll(std::move(batch), &blocked_ns));
  EXPECT_EQ(blocked_ns, 0);
}

TEST(BlockingQueueTest, BlockedPushAllRecordsBackpressureWait) {
  BlockingQueue<int> q(2);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.Push(2));
  std::int64_t blocked_ns = 0;
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    while (q.Pop().has_value()) {
    }
  });
  std::vector<int> batch{3, 4, 5};
  EXPECT_TRUE(q.PushAll(std::move(batch), &blocked_ns));
  q.Close();
  consumer.join();
  EXPECT_GT(blocked_ns, 0);
}

TEST(BlockingQueueTest, BoundedPushBlocksUntilDrained) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(2);  // blocks until consumer pops
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop().value(), 2);
}

TEST(BlockingQueueTest, PushAllPopAllRoundTrip) {
  BlockingQueue<int> q(8);
  EXPECT_TRUE(q.PushAll({1, 2, 3, 4, 5}));
  std::vector<int> out;
  EXPECT_EQ(q.PopAll(&out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.PopAll(&out, 100), 2u);  // appends, does not clear
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(BlockingQueueTest, PushAllLeavesSourceEmpty) {
  BlockingQueue<int> q(8);
  std::vector<int> batch{1, 2, 3};
  EXPECT_TRUE(q.PushAll(std::move(batch)));
  EXPECT_TRUE(batch.empty());  // storage handed to the queue; reserve to reuse
  EXPECT_EQ(q.size(), 3u);
}

TEST(BlockingQueueTest, PushAllEmptyBatchIsANoOp) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.PushAll({}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueueTest, TryPopAllEmptyReturnsZero) {
  BlockingQueue<int> q(4);
  std::vector<int> out;
  EXPECT_EQ(q.TryPopAll(&out, 16), 0u);
  q.Push(7);
  EXPECT_EQ(q.TryPopAll(&out, 16), 1u);
  EXPECT_EQ(out, (std::vector<int>{7}));
}

TEST(BlockingQueueTest, PushAllFailsAfterClose) {
  BlockingQueue<int> q(4);
  q.Close();
  EXPECT_FALSE(q.PushAll({1, 2}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueueTest, PopAllDrainsThenStopsAfterClose) {
  BlockingQueue<int> q(8);
  ASSERT_TRUE(q.PushAll({1, 2, 3, 4}));
  q.Close();
  std::vector<int> out;
  EXPECT_EQ(q.PopAll(&out, 3), 3u);  // drain-then-stop: items survive Close
  EXPECT_EQ(q.PopAll(&out, 3), 1u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(q.PopAll(&out, 3), 0u);  // drained and closed
}

TEST(BlockingQueueTest, PushAllBiggerThanCapacityBackPressures) {
  // A 10-element batch through a 2-slot queue must block for room and
  // arrive chunked, in order, with back-pressure intact throughout.
  BlockingQueue<int> q(2);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    std::vector<int> batch{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    EXPECT_TRUE(q.PushAll(std::move(batch)));
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // blocked: batch exceeds remaining capacity
  std::vector<int> received;
  while (received.size() < 10) {
    std::vector<int> chunk;
    const std::size_t n = q.PopAll(&chunk, 4);
    ASSERT_GT(n, 0u);
    EXPECT_LE(q.size(), 2u);  // capacity never exceeded mid-batch
    received.insert(received.end(), chunk.begin(), chunk.end());
  }
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(BlockingQueueTest, CloseUnblocksPendingPushAll) {
  BlockingQueue<int> q(1);
  ASSERT_TRUE(q.Push(42));
  std::thread producer([&] {
    EXPECT_FALSE(q.PushAll({1, 2, 3}));  // no room, then closed
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  producer.join();
  // Drain-then-stop still applies to what made it in before the close.
  EXPECT_EQ(q.Pop().value(), 42);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BlockingQueueTest, PopAllBlocksUntilBatchArrives) {
  BlockingQueue<int> q(16);
  std::vector<int> out;
  std::thread consumer([&] {
    EXPECT_EQ(q.PopAll(&out, 16), 5u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(q.PushAll({1, 2, 3, 4, 5}));
  consumer.join();
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(BlockingQueueTest, BatchedMpmcDeliversEverythingExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kBatches = 50;
  constexpr int kBatchSize = 20;
  BlockingQueue<int> q(16);  // smaller than one batch: forces chunking
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int b = 0; b < kBatches; ++b) {
        std::vector<int> batch;
        batch.reserve(kBatchSize);
        for (int i = 0; i < kBatchSize; ++i) {
          batch.push_back(p * kBatches * kBatchSize + b * kBatchSize + i);
        }
        ASSERT_TRUE(q.PushAll(std::move(batch)));
      }
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      std::vector<int> chunk;
      for (;;) {
        chunk.clear();
        const std::size_t n = q.PopAll(&chunk, 7);
        if (n == 0) break;
        for (int v : chunk) sum += v;
        popped += static_cast<int>(n);
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();

  const long n = kProducers * kBatches * kBatchSize;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(BlockingQueueTest, MpmcDeliversEverythingExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 1000;
  BlockingQueue<int> q(16);
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum += *v;
        ++popped;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();

  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace spear
