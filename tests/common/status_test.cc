#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace spear {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "ok");
}

TEST(StatusTest, InvalidCarriesMessage) {
  Status s = Status::Invalid("bad phi");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalid());
  EXPECT_EQ(s.message(), "bad phi");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad phi");
}

TEST(StatusTest, EveryFactoryMapsToItsCode) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
}

TEST(StatusTest, PredicatesAreExclusive) {
  Status s = Status::NotFound("k");
  EXPECT_FALSE(s.IsInvalid());
  EXPECT_FALSE(s.IsInternal());
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::Invalid("a"), Status::Invalid("a"));
  EXPECT_FALSE(Status::Invalid("a") == Status::Invalid("b"));
  EXPECT_FALSE(Status::Invalid("a") == Status::Internal("a"));
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::IOError("disk gone");
  EXPECT_EQ(os.str(), "io-error: disk gone");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kResourceExhausted),
            "resource-exhausted");
}

Status FailsAtTwo(int x) {
  if (x == 2) return Status::Invalid("two");
  return Status::OK();
}

Status Chain(int x) {
  SPEAR_RETURN_NOT_OK(FailsAtTwo(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(2).IsInvalid());
}

}  // namespace
}  // namespace spear
