#include "common/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/retry_policy.h"

namespace spear {
namespace {

FaultRule EveryNth(FaultSite site, std::uint64_t n) {
  FaultRule rule;
  rule.site = site;
  rule.every_nth = n;
  return rule;
}

TEST(FaultPlanTest, ValidateRejectsBadRules) {
  {
    FaultPlan plan;
    FaultRule rule;
    rule.site = FaultSite::kStorageStore;
    // No trigger at all: neither probability nor every_nth.
    plan.Add(rule);
    EXPECT_FALSE(plan.Validate().ok());
  }
  {
    FaultPlan plan;
    FaultRule rule;
    rule.site = FaultSite::kStorageStore;
    rule.probability = 1.5;
    plan.Add(rule);
    EXPECT_FALSE(plan.Validate().ok());
  }
  {
    FaultPlan plan;
    FaultRule rule = EveryNth(FaultSite::kStorageGet, 2);
    rule.extra_latency_ns = -1;
    plan.Add(rule);
    EXPECT_FALSE(plan.Validate().ok());
  }
  {
    FaultPlan plan;
    plan.Add(EveryNth(FaultSite::kBoltProcess, 3));
    EXPECT_TRUE(plan.Validate().ok());
  }
}

TEST(FaultInjectorTest, EmptyPlanNeverArmsOrFires) {
  FaultInjector injector{FaultPlan{}};
  for (std::uint8_t s = 0; s < kNumFaultSites; ++s) {
    const auto site = static_cast<FaultSite>(s);
    EXPECT_FALSE(injector.armed(site)) << FaultSiteName(site);
    EXPECT_FALSE(injector.Tick(site).fire);
  }
  EXPECT_EQ(injector.total_fired(), 0u);
}

TEST(FaultInjectorTest, EveryNthFiresOnExactMultiples) {
  FaultPlan plan;
  plan.Add(EveryNth(FaultSite::kStorageStore, 3));
  FaultInjector injector(plan);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(injector.Tick(FaultSite::kStorageStore).fire);
  }
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true,  false, false, true};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(injector.fired(FaultSite::kStorageStore), 3u);
  EXPECT_EQ(injector.ticks(FaultSite::kStorageStore), 9u);
  EXPECT_EQ(injector.total_fired(), 3u);
}

TEST(FaultInjectorTest, MaxFiresCapsTheRule) {
  FaultPlan plan;
  FaultRule rule = EveryNth(FaultSite::kBoltProcess, 1);  // every op
  rule.max_fires = 2;
  plan.Add(rule);
  FaultInjector injector(plan);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (injector.Tick(FaultSite::kBoltProcess).fire) ++fires;
  }
  EXPECT_EQ(fires, 2);
}

TEST(FaultInjectorTest, UnarmedSitesAreIndependent) {
  FaultPlan plan;
  plan.Add(EveryNth(FaultSite::kStorageStore, 1));
  FaultInjector injector(plan);
  EXPECT_TRUE(injector.armed(FaultSite::kStorageStore));
  EXPECT_FALSE(injector.armed(FaultSite::kStorageGet));
  EXPECT_FALSE(injector.Tick(FaultSite::kStorageGet).fire);
  EXPECT_TRUE(injector.Tick(FaultSite::kStorageStore).fire);
}

TEST(FaultInjectorTest, ProbabilityDecisionsAreSeedDeterministic) {
  FaultPlan plan;
  plan.seed = 42;
  FaultRule rule;
  rule.site = FaultSite::kStorageGet;
  rule.probability = 0.5;
  plan.Add(rule);

  auto run = [](const FaultPlan& p) {
    FaultInjector injector(p);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(injector.Tick(FaultSite::kStorageGet).fire);
    }
    return fires;
  };
  // Same seed: identical decision sequence (injection is a pure function
  // of (seed, site, op index), independent of thread interleaving).
  EXPECT_EQ(run(plan), run(plan));
  FaultPlan other = plan;
  other.seed = 43;
  EXPECT_NE(run(plan), run(other));
}

TEST(FaultInjectorTest, ProbabilityRoughlyMatchesRate) {
  FaultPlan plan;
  FaultRule rule;
  rule.site = FaultSite::kBoltProcess;
  rule.probability = 0.25;
  plan.Add(rule);
  FaultInjector injector(plan);
  int fires = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (injector.Tick(FaultSite::kBoltProcess).fire) ++fires;
  }
  EXPECT_GT(fires, n / 8);
  EXPECT_LT(fires, n / 2);
}

TEST(FaultInjectorTest, DecisionCarriesLatencyAndThrowAttributes) {
  FaultPlan plan;
  FaultRule rule = EveryNth(FaultSite::kBoltWatermark, 1);
  rule.extra_latency_ns = 12345;
  rule.throw_exception = true;
  plan.Add(rule);
  FaultInjector injector(plan);
  const FaultInjector::Decision d = injector.Tick(FaultSite::kBoltWatermark);
  EXPECT_TRUE(d.fire);
  EXPECT_EQ(d.extra_latency_ns, 12345);
  EXPECT_TRUE(d.throw_exception);
}

// ---------------------------------------------------------------------------
// Failure taxonomy + retry policy
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, ClassifyFailure) {
  EXPECT_EQ(ClassifyFailure(Status::Unavailable("s3 down")),
            FailureClass::kTransient);
  EXPECT_EQ(ClassifyFailure(Status::Invalid("bad tuple")),
            FailureClass::kData);
  EXPECT_EQ(ClassifyFailure(Status::OutOfRange("field 9")),
            FailureClass::kData);
  EXPECT_EQ(ClassifyFailure(Status::Internal("bug")), FailureClass::kFatal);
  EXPECT_EQ(ClassifyFailure(Status::NotFound("key")), FailureClass::kFatal);
  EXPECT_EQ(ClassifyFailure(Status::IOError("disk")), FailureClass::kFatal);
}

TEST(RetryPolicyTest, StatusUnavailableRoundTrips) {
  const Status s = Status::Unavailable("transient");
  EXPECT_TRUE(s.IsUnavailable());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.ToString(), "unavailable: transient");
}

TEST(RetryPolicyTest, ValidateBounds) {
  RetryPolicy p;
  p.max_attempts = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = RetryPolicy::Default();
  EXPECT_TRUE(p.Validate().ok());
  p.jitter = 1.0;
  EXPECT_FALSE(p.Validate().ok());
  p = RetryPolicy::Default();
  p.backoff_multiplier = 0.5;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(BackoffTest, ExponentialScheduleWithoutJitter) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ns = 1000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ns = 3000;
  policy.jitter = 0.0;
  policy.wall_clock_budget_ns = 0;  // unbudgeted

  Backoff backoff(policy, /*seed=*/1);
  std::int64_t delay = 0;
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 1000);
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 2000);
  ASSERT_TRUE(backoff.NextDelay(&delay));
  EXPECT_EQ(delay, 3000);  // capped at max_backoff_ns
  EXPECT_FALSE(backoff.NextDelay(&delay));  // 4 attempts total
  EXPECT_EQ(backoff.retries(), 3);
}

TEST(BackoffTest, JitterStaysWithinBandAndIsDeterministic) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ns = 10000;
  policy.backoff_multiplier = 1.0;
  policy.jitter = 0.2;
  policy.wall_clock_budget_ns = 0;

  auto delays = [&policy](std::uint64_t seed) {
    Backoff backoff(policy, seed);
    std::vector<std::int64_t> out;
    std::int64_t d = 0;
    while (backoff.NextDelay(&d)) out.push_back(d);
    return out;
  };
  const std::vector<std::int64_t> a = delays(7);
  EXPECT_EQ(a, delays(7));
  for (std::int64_t d : a) {
    EXPECT_GE(d, 8000);
    EXPECT_LE(d, 12000);
  }
}

TEST(RetryTransientTest, RecoversAfterTransientFailures) {
  RetryPolicy policy = RetryPolicy::Default();
  policy.initial_backoff_ns = 1000;  // keep the test fast
  int calls = 0;
  std::uint64_t retries = 0;
  std::uint64_t recovered = 0;
  const Status status = RetryTransient(
      policy, /*seed=*/3,
      [&] {
        ++calls;
        return calls < 3 ? Status::Unavailable("hiccup") : Status::OK();
      },
      &retries, &recovered);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
  EXPECT_EQ(recovered, 1u);
}

TEST(RetryTransientTest, DoesNotRetryDataOrFatalErrors) {
  RetryPolicy policy = RetryPolicy::Default();
  int calls = 0;
  std::uint64_t retries = 0;
  const Status status = RetryTransient(
      policy, /*seed=*/3,
      [&] {
        ++calls;
        return Status::Invalid("malformed");
      },
      &retries);
  EXPECT_TRUE(status.IsInvalid());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0u);
}

TEST(RetryTransientTest, ExhaustsAttemptBudget) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ns = 1000;
  policy.wall_clock_budget_ns = 0;
  int calls = 0;
  const Status status = RetryTransient(policy, /*seed=*/9, [&] {
    ++calls;
    return Status::Unavailable("still down");
  });
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(calls, 3);
}

TEST(RetryTransientTest, CancellationStopsRetrying) {
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_ns = 1000;
  policy.wall_clock_budget_ns = 0;
  std::atomic<bool> cancelled{false};
  int calls = 0;
  const Status status = RetryTransient(
      policy, /*seed=*/1,
      [&] {
        ++calls;
        if (calls == 2) cancelled.store(true);
        return Status::Unavailable("down");
      },
      nullptr, nullptr, &cancelled);
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace spear
