#include "common/byte_size.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

using namespace spear::literals;  // NOLINT

TEST(ByteSizeTest, Literals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(1_MiB, 1024u * 1024u);
  EXPECT_EQ(2_GiB, 2ull * 1024 * 1024 * 1024);
}

TEST(ByteSizeTest, FormatPlainBytes) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(512), "512 B");
}

TEST(ByteSizeTest, FormatScaled) {
  EXPECT_EQ(FormatBytes(1024), "1.0 KiB");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(1_MiB), "1.0 MiB");
  EXPECT_EQ(FormatBytes(3 * 1_GiB / 2), "1.5 GiB");
}

}  // namespace
}  // namespace spear
