#include "common/retry_policy.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace spear {
namespace {

TEST(RetryPolicyTest, ClassifiesFailures) {
  EXPECT_EQ(ClassifyFailure(Status::Unavailable("x")),
            FailureClass::kTransient);
  EXPECT_EQ(ClassifyFailure(Status::Invalid("x")), FailureClass::kData);
  EXPECT_EQ(ClassifyFailure(Status::OutOfRange("x")), FailureClass::kData);
  EXPECT_EQ(ClassifyFailure(Status::Internal("x")), FailureClass::kFatal);
  EXPECT_EQ(ClassifyFailure(Status::IOError("x")), FailureClass::kFatal);
}

TEST(BackoffTest, AttemptBudgetStopsTheSequence) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ns = 100;
  policy.jitter = 0.0;
  policy.wall_clock_budget_ns = 0;  // unbudgeted: attempts only

  Backoff backoff(policy, /*seed=*/1);
  std::int64_t delay = 0;
  EXPECT_TRUE(backoff.NextDelay(&delay));   // retry 1
  EXPECT_TRUE(backoff.NextDelay(&delay));   // retry 2
  EXPECT_FALSE(backoff.NextDelay(&delay));  // 3 attempts total: done
  EXPECT_EQ(backoff.retries(), 2);
}

TEST(BackoffTest, JitterIsDeterministicPerSeed) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ns = 1'000'000;
  policy.jitter = 0.4;
  policy.wall_clock_budget_ns = 0;

  auto delays = [&policy](std::uint64_t seed) {
    Backoff backoff(policy, seed);
    std::vector<std::int64_t> out;
    std::int64_t d = 0;
    while (backoff.NextDelay(&d)) out.push_back(d);
    return out;
  };

  const std::vector<std::int64_t> a = delays(42);
  const std::vector<std::int64_t> b = delays(42);
  const std::vector<std::int64_t> c = delays(43);
  ASSERT_EQ(a.size(), 7u);
  EXPECT_EQ(a, b);  // same seed, same schedule — bit for bit
  EXPECT_NE(a, c);  // a different worker gets a decorrelated schedule
}

TEST(BackoffTest, JitterStaysWithinTheConfiguredBand) {
  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_ns = 1'000'000;
  policy.backoff_multiplier = 1.0;  // constant nominal delay
  policy.max_backoff_ns = 1'000'000;
  policy.jitter = 0.25;
  policy.wall_clock_budget_ns = 0;

  Backoff backoff(policy, /*seed=*/7);
  std::int64_t d = 0;
  while (backoff.NextDelay(&d)) {
    EXPECT_GE(d, 750'000);
    EXPECT_LE(d, 1'250'000);
  }
}

TEST(BackoffTest, DelaysGrowExponentiallyUpToTheCap) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_ns = 1'000;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ns = 8'000;
  policy.jitter = 0.0;
  policy.wall_clock_budget_ns = 0;

  Backoff backoff(policy, /*seed=*/1);
  std::vector<std::int64_t> delays;
  std::int64_t d = 0;
  while (backoff.NextDelay(&d)) delays.push_back(d);
  ASSERT_EQ(delays.size(), 9u);
  EXPECT_EQ(delays[0], 1'000);
  EXPECT_EQ(delays[1], 2'000);
  EXPECT_EQ(delays[2], 4'000);
  for (std::size_t k = 3; k < delays.size(); ++k) {
    EXPECT_EQ(delays[k], 8'000);  // capped
  }
}

// The wall-clock budget can expire *mid-backoff*: after sleeping out a
// delay that crosses the deadline, the next NextDelay must refuse another
// attempt even though the attempt budget has plenty left.
TEST(BackoffTest, WallClockBudgetExpiresMidBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 1'000;                // effectively unlimited
  policy.initial_backoff_ns = 20'000'000;     // 20 ms per retry
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_ns = 20'000'000;
  policy.jitter = 0.0;
  policy.wall_clock_budget_ns = 50'000'000;   // 50 ms for the whole sequence

  Backoff backoff(policy, /*seed=*/1);
  const std::int64_t start = NowNs();
  std::int64_t delay = 0;
  int granted = 0;
  while (backoff.NextDelay(&delay)) {
    ++granted;
    BackoffSleep(delay);
    ASSERT_LT(granted, 100) << "wall clock budget never engaged";
  }
  const std::int64_t elapsed = NowNs() - start;
  // ~2-3 sleeps fit in 50 ms; far fewer than the 999 the attempt budget
  // would allow, and the sequence ends promptly after the deadline.
  EXPECT_GE(granted, 1);
  EXPECT_LE(granted, 5);
  EXPECT_LT(elapsed, 500'000'000);  // generous bound for slow CI machines
}

TEST(RetryTransientTest, RetriesUntilSuccessAndCounts) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ns = 1'000;
  policy.jitter = 0.0;

  int calls = 0;
  std::uint64_t retries = 0;
  std::uint64_t recovered = 0;
  Status status = RetryTransient(
      policy, /*seed=*/3,
      [&calls]() {
        ++calls;
        return calls < 3 ? Status::Unavailable("hiccup") : Status::OK();
      },
      &retries, &recovered);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
  EXPECT_EQ(recovered, 1u);
}

TEST(RetryTransientTest, DoesNotRetryNonTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ns = 1'000;

  int calls = 0;
  Status status = RetryTransient(policy, /*seed=*/3, [&calls]() {
    ++calls;
    return Status::Invalid("bad data");
  });
  EXPECT_TRUE(status.IsInvalid());
  EXPECT_EQ(calls, 1);
}

TEST(RetryPolicyTest, ValidateRejectsBadKnobs) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy{};
  policy.jitter = 1.0;
  EXPECT_FALSE(policy.Validate().ok());
  policy = RetryPolicy{};
  policy.backoff_multiplier = 0.5;
  EXPECT_FALSE(policy.Validate().ok());
  EXPECT_TRUE(RetryPolicy::Default().Validate().ok());
}

}  // namespace
}  // namespace spear
