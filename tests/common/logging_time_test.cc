#include <gtest/gtest.h>

#include <thread>

#include "common/logging.h"
#include "common/time.h"

namespace spear {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kOff);
  EXPECT_EQ(GetLogLevel(), LogLevel::kOff);
  SetLogLevel(before);
}

TEST(LoggingTest, SuppressedLevelsDoNotCrash) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  SPEAR_LOG(Debug) << "below the threshold " << 42;
  SPEAR_LOG(Error) << "also suppressed at kOff";
  SetLogLevel(before);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  SPEAR_CHECK(1 + 1 == 2);  // must not abort
}

TEST(LoggingTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(SPEAR_CHECK(false), "Check failed: false");
}

TEST(TimeTest, DurationHelpers) {
  EXPECT_EQ(Seconds(45), 45'000);
  EXPECT_EQ(Minutes(15), 900'000);
  EXPECT_EQ(Hours(2), 7'200'000);
  EXPECT_EQ(Minutes(60), Hours(1));
}

TEST(TimeTest, NowNsMonotone) {
  const std::int64_t a = NowNs();
  const std::int64_t b = NowNs();
  EXPECT_GE(b, a);
}

TEST(TimeTest, ScopedTimerAccumulates) {
  std::int64_t total = 0;
  {
    ScopedTimerNs timer(&total);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(total, 2'000'000);
  const std::int64_t first = total;
  {
    ScopedTimerNs timer(&total);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(total, first + 1'000'000);  // accumulates, not overwrites
}

TEST(TimeTest, TimestampSentinels) {
  EXPECT_LT(kMinTimestamp, 0);
  EXPECT_GT(kMaxTimestamp, 0);
  EXPECT_LT(kMinTimestamp, kMaxTimestamp);
}

}  // namespace
}  // namespace spear
