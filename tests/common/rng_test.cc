#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace spear {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(17);
  std::vector<int> hits(8, 0);
  for (int i = 0; i < 8000; ++i) ++hits[rng.NextBounded(8)];
  for (int h : hits) EXPECT_GT(h, 700);  // ~1000 each; loose bound
}

TEST(RngTest, NextBoundedOne) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.02);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const std::uint64_t first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.Next(), first);
  EXPECT_NE(sm.Next(), first);
}

}  // namespace
}  // namespace spear
