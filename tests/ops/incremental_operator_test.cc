#include "ops/incremental_operator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ops/exact_operator.h"
#include "window/single_buffer_manager.h"

namespace spear {
namespace {

Tuple T(Timestamp t, double v) { return Tuple(t, {Value(v)}); }
Tuple KT(Timestamp t, const std::string& k, double v) {
  return Tuple(t, {Value(k), Value(v)});
}

TEST(IncrementalOperatorTest, ScalarMeanPerWindow) {
  IncrementalOperator op(AggregateSpec::Mean(), WindowSpec::TumblingTime(10),
                         NumericField(0));
  op.OnTuple(1, T(1, 2.0));
  op.OnTuple(5, T(5, 4.0));
  op.OnTuple(12, T(12, 100.0));
  auto results = op.OnWatermark(10);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_DOUBLE_EQ((*results)[0].scalar, 3.0);
  EXPECT_EQ((*results)[0].window_size, 2u);
  EXPECT_EQ((*results)[0].tuples_processed, 0u);  // no watermark-time work
}

TEST(IncrementalOperatorTest, SlidingWindowsEachGetTheTuple) {
  IncrementalOperator op(AggregateSpec::Sum(), WindowSpec::SlidingTime(15, 5),
                         NumericField(0));
  op.OnTuple(61, T(61, 10.0));
  auto results = op.OnWatermark(100);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 3u);
  for (const auto& r : *results) EXPECT_DOUBLE_EQ(r.scalar, 10.0);
}

TEST(IncrementalOperatorTest, GroupedMean) {
  IncrementalOperator op(AggregateSpec::Mean(), WindowSpec::TumblingTime(10),
                         NumericField(1), KeyField(0));
  op.OnTuple(1, KT(1, "a", 2.0));
  op.OnTuple(2, KT(2, "a", 4.0));
  op.OnTuple(3, KT(3, "b", 9.0));
  auto results = op.OnWatermark(10);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  const auto& groups = (*results)[0].groups;
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].first, "a");
  EXPECT_DOUBLE_EQ(groups[0].second, 3.0);
  EXPECT_DOUBLE_EQ(groups[1].second, 9.0);
}

TEST(IncrementalOperatorTest, LateTuplesDropped) {
  IncrementalOperator op(AggregateSpec::Count(), WindowSpec::TumblingTime(10),
                         NumericField(0));
  (void)op.OnWatermark(10);
  op.OnTuple(5, T(5, 1.0));
  EXPECT_EQ(op.late_tuples(), 1u);
  EXPECT_EQ(op.active_windows(), 0u);
}

TEST(IncrementalOperatorTest, StateEvictedAfterEmission) {
  IncrementalOperator op(AggregateSpec::Mean(), WindowSpec::TumblingTime(10),
                         NumericField(0));
  op.OnTuple(5, T(5, 1.0));
  EXPECT_EQ(op.active_windows(), 1u);
  (void)op.OnWatermark(10);
  EXPECT_EQ(op.active_windows(), 0u);
}

TEST(IncrementalOperatorTest, MatchesExactOperatorOnRandomStream) {
  const WindowSpec window = WindowSpec::SlidingTime(20, 10);
  IncrementalOperator inc(AggregateSpec::Mean(), window, NumericField(0));
  SingleBufferWindowManager buffer(window);
  ExactWindowOperator exact(AggregateSpec::Mean(), NumericField(0));

  Rng rng(7);
  for (Timestamp t = 0; t < 500; ++t) {
    const double v = rng.NextDouble() * 50.0;
    inc.OnTuple(t, T(t, v));
    buffer.OnTuple(t, T(t, v));
  }
  auto inc_results = inc.OnWatermark(480);
  auto staged = buffer.OnWatermark(480);
  ASSERT_TRUE(inc_results.ok());
  ASSERT_TRUE(staged.ok());
  ASSERT_EQ(inc_results->size(), staged->size());
  for (std::size_t i = 0; i < staged->size(); ++i) {
    auto exact_result = exact.Process((*staged)[i]);
    ASSERT_TRUE(exact_result.ok());
    EXPECT_EQ((*inc_results)[i].bounds, exact_result->bounds);
    EXPECT_NEAR((*inc_results)[i].scalar, exact_result->scalar, 1e-9);
  }
}

TEST(IncrementalOperatorTest, HolisticRejectedAtConstruction) {
  EXPECT_DEATH(
      IncrementalOperator(AggregateSpec::Median(),
                          WindowSpec::TumblingTime(10), NumericField(0)),
      "IsIncremental");
}

}  // namespace
}  // namespace spear
