#include "ops/exact_operator.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

CompleteWindow MakeWindow(std::vector<std::pair<std::string, double>> rows) {
  CompleteWindow w;
  w.bounds = WindowBounds{0, 100};
  for (auto& [key, value] : rows) {
    w.tuples.emplace_back(
        1, std::vector<Value>{Value(key), Value(value)});
  }
  return w;
}

TEST(ExactOperatorTest, ScalarMean) {
  ExactWindowOperator op(AggregateSpec::Mean(), NumericField(1));
  auto result = op.Process(MakeWindow({{"a", 2.0}, {"b", 4.0}, {"c", 6.0}}));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->is_grouped);
  EXPECT_FALSE(result->approximate);
  EXPECT_DOUBLE_EQ(result->scalar, 4.0);
  EXPECT_EQ(result->window_size, 3u);
  EXPECT_EQ(result->tuples_processed, 3u);
}

TEST(ExactOperatorTest, ScalarMedian) {
  ExactWindowOperator op(AggregateSpec::Median(), NumericField(1));
  auto result =
      op.Process(MakeWindow({{"a", 9.0}, {"b", 1.0}, {"c", 5.0}}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->scalar, 5.0);
}

TEST(ExactOperatorTest, EmptyWindowInvalid) {
  ExactWindowOperator op(AggregateSpec::Mean(), NumericField(1));
  CompleteWindow w;
  w.bounds = WindowBounds{0, 10};
  EXPECT_TRUE(op.Process(w).status().IsInvalid());
}

TEST(ExactOperatorTest, GroupedMeanAllGroupsSorted) {
  ExactWindowOperator op(AggregateSpec::Mean(), NumericField(1), KeyField(0));
  auto result = op.Process(MakeWindow(
      {{"b", 10.0}, {"a", 2.0}, {"b", 20.0}, {"c", 7.0}, {"a", 4.0}}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->is_grouped);
  ASSERT_EQ(result->groups.size(), 3u);
  EXPECT_EQ(result->groups[0].first, "a");
  EXPECT_DOUBLE_EQ(result->groups[0].second, 3.0);
  EXPECT_EQ(result->groups[1].first, "b");
  EXPECT_DOUBLE_EQ(result->groups[1].second, 15.0);
  EXPECT_EQ(result->groups[2].first, "c");
  EXPECT_DOUBLE_EQ(result->groups[2].second, 7.0);
}

TEST(ExactOperatorTest, GroupedPercentile) {
  ExactWindowOperator op(AggregateSpec::Median(), NumericField(1),
                         KeyField(0));
  auto result = op.Process(
      MakeWindow({{"a", 1.0}, {"a", 2.0}, {"a", 3.0}, {"b", 10.0}}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->groups[0].second, 2.0);
  EXPECT_DOUBLE_EQ(result->groups[1].second, 10.0);
}

TEST(ExactOperatorTest, SingletonGroupsHandled) {
  ExactWindowOperator op(AggregateSpec::Variance(), NumericField(1),
                         KeyField(0));
  auto result = op.Process(MakeWindow({{"solo", 5.0}}));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->groups[0].second, 0.0);
}

TEST(ExactOperatorTest, ResultToStringMentionsBounds) {
  ExactWindowOperator op(AggregateSpec::Mean(), NumericField(1));
  auto result = op.Process(MakeWindow({{"a", 2.0}}));
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->ToString().find("[0, 100)"), std::string::npos);
}

}  // namespace
}  // namespace spear
