#include "ops/paned_incremental.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ops/incremental_operator.h"

namespace spear {
namespace {

Tuple T(Timestamp t, double v) { return Tuple(t, {Value(v)}); }
Tuple KT(Timestamp t, const std::string& k, double v) {
  return Tuple(t, {Value(k), Value(v)});
}

TEST(PanedIncrementalTest, RequiresDividingSlide) {
  EXPECT_DEATH(PanedIncrementalOperator(AggregateSpec::Mean(),
                                        WindowSpec::SlidingTime(10, 3),
                                        NumericField(0)),
               "range % ");
}

TEST(PanedIncrementalTest, RejectsHolistic) {
  EXPECT_DEATH(PanedIncrementalOperator(AggregateSpec::Median(),
                                        WindowSpec::SlidingTime(10, 5),
                                        NumericField(0)),
               "IsIncremental");
}

TEST(PanedIncrementalTest, ScalarMeanBasic) {
  PanedIncrementalOperator op(AggregateSpec::Mean(),
                              WindowSpec::SlidingTime(20, 10),
                              NumericField(0));
  op.OnTuple(5, T(5, 2.0));
  op.OnTuple(15, T(15, 4.0));
  auto results = op.OnWatermark(30);
  ASSERT_TRUE(results.ok());
  // Windows [-10,10): {2}, [0,20): {2,4}, [10,30): {4}.
  ASSERT_EQ(results->size(), 3u);
  EXPECT_DOUBLE_EQ((*results)[0].scalar, 2.0);
  EXPECT_DOUBLE_EQ((*results)[1].scalar, 3.0);
  EXPECT_DOUBLE_EQ((*results)[2].scalar, 4.0);
}

TEST(PanedIncrementalTest, PanesEvictedAfterUse) {
  PanedIncrementalOperator op(AggregateSpec::Sum(),
                              WindowSpec::SlidingTime(20, 10),
                              NumericField(0));
  for (int t = 0; t < 100; ++t) op.OnTuple(t, T(t, 1.0));
  EXPECT_EQ(op.active_panes(), 10u);
  (void)op.OnWatermark(100);
  // Only the panes still needed by incomplete windows remain.
  EXPECT_LE(op.active_panes(), 2u);
}

/// Property: pane-merged results must equal the per-window operator's for
/// every mergeable aggregate, scalar and grouped.
struct PanedCase {
  AggregateSpec aggregate;
  bool grouped;

  friend std::ostream& operator<<(std::ostream& os, const PanedCase& c) {
    return os << c.aggregate.ToString()
              << (c.grouped ? "/grouped" : "/scalar");
  }
};

class PanedEquivalence : public ::testing::TestWithParam<PanedCase> {};

TEST_P(PanedEquivalence, MatchesPerWindowIncremental) {
  const PanedCase c = GetParam();
  const WindowSpec window = WindowSpec::SlidingTime(300, 100);
  const KeyExtractor key = c.grouped ? KeyField(0) : KeyExtractor(nullptr);

  PanedIncrementalOperator paned(c.aggregate, window, NumericField(1), key);
  IncrementalOperator per_window(c.aggregate, window, NumericField(1), key);

  Rng rng(31);
  for (int i = 0; i < 20000; ++i) {
    const Timestamp t = static_cast<Timestamp>(rng.NextBounded(3000));
    const Tuple tuple =
        KT(t, "g" + std::to_string(rng.NextBounded(4)),
           10.0 + rng.NextGaussian());
    // Feed in timestamp-sorted batches would be typical; both operators
    // accept any order ahead of the watermark, so feed as generated.
    paned.OnTuple(t, tuple);
    per_window.OnTuple(t, tuple);
  }
  auto paned_results = paned.OnWatermark(3000);
  auto window_results = per_window.OnWatermark(3000);
  ASSERT_TRUE(paned_results.ok());
  ASSERT_TRUE(window_results.ok());
  ASSERT_EQ(paned_results->size(), window_results->size());
  ASSERT_GT(paned_results->size(), 5u);

  for (std::size_t w = 0; w < paned_results->size(); ++w) {
    const WindowResult& a = (*paned_results)[w];
    const WindowResult& b = (*window_results)[w];
    ASSERT_EQ(a.bounds, b.bounds);
    EXPECT_EQ(a.window_size, b.window_size);
    if (c.grouped) {
      ASSERT_EQ(a.groups.size(), b.groups.size());
      for (std::size_t g = 0; g < a.groups.size(); ++g) {
        EXPECT_EQ(a.groups[g].first, b.groups[g].first);
        EXPECT_NEAR(a.groups[g].second, b.groups[g].second,
                    1e-9 * std::fabs(b.groups[g].second) + 1e-9);
      }
    } else {
      EXPECT_NEAR(a.scalar, b.scalar, 1e-9 * std::fabs(b.scalar) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Aggregates, PanedEquivalence,
    ::testing::Values(PanedCase{AggregateSpec::Count(), false},
                      PanedCase{AggregateSpec::Sum(), false},
                      PanedCase{AggregateSpec::Mean(), false},
                      PanedCase{AggregateSpec::Variance(), false},
                      PanedCase{AggregateSpec::StdDev(), false},
                      PanedCase{AggregateSpec::Min(), false},
                      PanedCase{AggregateSpec::Max(), false},
                      PanedCase{AggregateSpec::Mean(), true},
                      PanedCase{AggregateSpec::Sum(), true},
                      PanedCase{AggregateSpec::Variance(), true}),
    [](const ::testing::TestParamInfo<PanedCase>& info) {
      std::string name = AggregateKindName(info.param.aggregate.kind);
      name += info.param.grouped ? "Grouped" : "Scalar";
      return name;
    });

TEST(PanedIncrementalTest, LateTuplesDropped) {
  PanedIncrementalOperator op(AggregateSpec::Mean(),
                              WindowSpec::SlidingTime(20, 10),
                              NumericField(0));
  op.OnTuple(5, T(5, 1.0));
  (void)op.OnWatermark(30);
  op.OnTuple(7, T(7, 1.0));
  EXPECT_EQ(op.late_tuples(), 1u);
}

}  // namespace
}  // namespace spear
