#include "ops/aggregate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace spear {
namespace {

TEST(AggregateSpecTest, HolisticClassification) {
  EXPECT_TRUE(AggregateSpec::Percentile(0.95).IsHolistic());
  EXPECT_TRUE(AggregateSpec::Median().IsHolistic());
  EXPECT_FALSE(AggregateSpec::Mean().IsHolistic());
  EXPECT_FALSE(AggregateSpec::Count().IsHolistic());
  EXPECT_TRUE(AggregateSpec::Sum().IsIncremental());
}

TEST(AggregateSpecTest, ToString) {
  EXPECT_EQ(AggregateSpec::Mean().ToString(), "mean");
  EXPECT_EQ(AggregateSpec::Percentile(0.95).ToString().substr(0, 11),
            "percentile(");
}

TEST(EvaluateExactTest, EmptyInvalid) {
  EXPECT_TRUE(EvaluateExact(AggregateSpec::Mean(), {}).status().IsInvalid());
}

TEST(EvaluateExactTest, AllKindsOnKnownData) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(*EvaluateExact(AggregateSpec::Count(), v), 8.0);
  EXPECT_DOUBLE_EQ(*EvaluateExact(AggregateSpec::Sum(), v), 40.0);
  EXPECT_DOUBLE_EQ(*EvaluateExact(AggregateSpec::Mean(), v), 5.0);
  EXPECT_NEAR(*EvaluateExact(AggregateSpec::Variance(), v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(*EvaluateExact(AggregateSpec::StdDev(), v),
              std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(*EvaluateExact(AggregateSpec::Min(), v), 2.0);
  EXPECT_DOUBLE_EQ(*EvaluateExact(AggregateSpec::Max(), v), 9.0);
  EXPECT_DOUBLE_EQ(*EvaluateExact(AggregateSpec::Median(), v), 4.5);
}

TEST(EvaluateExactTest, PercentileMatchesQuantile) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_NEAR(*EvaluateExact(AggregateSpec::Percentile(0.95), v), 94.05,
              1e-9);
}

TEST(EvaluateFromStatsTest, MatchesExactForNonHolistic) {
  const std::vector<double> v{1.5, 2.5, 3.5, 10.0};
  RunningStats stats;
  for (double x : v) stats.Update(x);
  for (auto spec : {AggregateSpec::Count(), AggregateSpec::Sum(),
                    AggregateSpec::Mean(), AggregateSpec::Variance(),
                    AggregateSpec::StdDev(), AggregateSpec::Min(),
                    AggregateSpec::Max()}) {
    EXPECT_DOUBLE_EQ(*EvaluateFromStats(spec, stats),
                     *EvaluateExact(spec, v))
        << spec.ToString();
  }
}

TEST(EvaluateFromStatsTest, HolisticRejected) {
  RunningStats stats;
  stats.Update(1.0);
  EXPECT_TRUE(EvaluateFromStats(AggregateSpec::Median(), stats)
                  .status()
                  .IsFailedPrecondition());
}

TEST(EvaluateFromStatsTest, EmptyStatsInvalid) {
  RunningStats stats;
  EXPECT_TRUE(
      EvaluateFromStats(AggregateSpec::Mean(), stats).status().IsInvalid());
}

TEST(AggregateKindNameTest, AllNamed) {
  EXPECT_STREQ(AggregateKindName(AggregateKind::kCount), "count");
  EXPECT_STREQ(AggregateKindName(AggregateKind::kPercentile), "percentile");
  EXPECT_STREQ(AggregateKindName(AggregateKind::kStdDev), "stddev");
}

}  // namespace
}  // namespace spear
