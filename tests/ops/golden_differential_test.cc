#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/spear_window_manager.h"
#include "ops/exact_operator.h"
#include "ops/incremental_operator.h"
#include "ops/paned_incremental.h"
#include "window/window_assigner.h"

/// Golden differential tests: every optimized execution path must agree
/// with the exact operator on identical input. Incremental accumulators
/// and pane-sharing are algebraic rewrites, so they must match to
/// floating-point accumulation tolerance on every window and every
/// aggregate; SPEAr's estimator path must match *bit-for-bit semantics*
/// (exact value, approximate=false is not required — the estimate from a
/// full sample is the exact statistic) whenever the budget covers the
/// whole window.

namespace spear {
namespace {

Tuple ScalarTuple(Timestamp t, double v) { return Tuple(t, {Value(v)}); }
Tuple GroupTuple(Timestamp t, const std::string& k, double v) {
  return Tuple(t, {Value(k), Value(v)});
}

struct Event {
  std::int64_t coord;
  double value;
  std::string key;
};

std::vector<Event> RandomStream(std::uint64_t seed, int n,
                                std::int64_t horizon, int num_keys = 4) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  for (int i = 0; i < n; ++i) {
    Event e;
    e.coord = static_cast<std::int64_t>(rng.NextDouble() * horizon);
    e.value = rng.NextDouble() * 200.0 - 50.0;
    e.key = "k" + std::to_string(static_cast<int>(rng.NextDouble() * num_keys));
    events.push_back(e);
  }
  // Deliver in coordinate order so no tuple is late for any operator.
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.coord < b.coord; });
  return events;
}

/// Exact per-window scalar reference via ExactWindowOperator.
std::map<std::int64_t, double> ExactScalarByWindow(
    const AggregateSpec& spec, const WindowSpec& window,
    const std::vector<Event>& events) {
  std::map<std::int64_t, std::vector<Tuple>> windows;
  for (const Event& e : events) {
    for (const WindowBounds& w : AssignWindows(window, e.coord)) {
      windows[w.start].push_back(ScalarTuple(e.coord, e.value));
    }
  }
  ExactWindowOperator exact(spec, NumericField(0));
  std::map<std::int64_t, double> out;
  for (auto& [start, tuples] : windows) {
    CompleteWindow cw;
    cw.bounds = WindowBounds{start, start + window.range};
    cw.tuples = std::move(tuples);
    auto result = exact.Process(cw);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    out[start] = result->scalar;
  }
  return out;
}

std::vector<AggregateSpec> IncrementalAggregates() {
  return {AggregateSpec::Count(), AggregateSpec::Sum(), AggregateSpec::Mean(),
          AggregateSpec::Variance(), AggregateSpec::StdDev(),
          AggregateSpec::Min(), AggregateSpec::Max()};
}

TEST(GoldenDifferentialTest, IncrementalMatchesExactOnTumblingWindows) {
  const WindowSpec window = WindowSpec::TumblingTime(500);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto events = RandomStream(seed, 2000, 5000);
    for (const AggregateSpec& spec : IncrementalAggregates()) {
      const auto golden = ExactScalarByWindow(spec, window, events);
      IncrementalOperator inc(spec, window, NumericField(0));
      for (const Event& e : events) {
        inc.OnTuple(e.coord, ScalarTuple(e.coord, e.value));
      }
      auto results = inc.OnWatermark(10'000);
      ASSERT_TRUE(results.ok());
      ASSERT_EQ(results->size(), golden.size())
          << "seed " << seed << " agg " << static_cast<int>(spec.kind);
      for (const WindowResult& r : *results) {
        const auto it = golden.find(r.bounds.start);
        ASSERT_NE(it, golden.end());
        EXPECT_NEAR(r.scalar, it->second,
                    1e-6 * std::max(1.0, std::abs(it->second)))
            << "seed " << seed << " window " << r.bounds.start << " agg "
            << static_cast<int>(spec.kind);
      }
    }
  }
}

TEST(GoldenDifferentialTest, PanedMatchesExactOnSlidingWindows) {
  const WindowSpec window = WindowSpec::SlidingTime(600, 200);
  for (std::uint64_t seed = 11; seed <= 15; ++seed) {
    const auto events = RandomStream(seed, 2000, 4000);
    for (const AggregateSpec& spec : IncrementalAggregates()) {
      const auto golden = ExactScalarByWindow(spec, window, events);
      PanedIncrementalOperator paned(spec, window, NumericField(0));
      for (const Event& e : events) {
        paned.OnTuple(e.coord, ScalarTuple(e.coord, e.value));
      }
      auto results = paned.OnWatermark(10'000);
      ASSERT_TRUE(results.ok());
      for (const WindowResult& r : *results) {
        const auto it = golden.find(r.bounds.start);
        if (it == golden.end()) continue;  // empty-window emission policy
        EXPECT_NEAR(r.scalar, it->second,
                    1e-6 * std::max(1.0, std::abs(it->second)))
            << "seed " << seed << " window " << r.bounds.start << " agg "
            << static_cast<int>(spec.kind);
      }
    }
  }
}

TEST(GoldenDifferentialTest, PanedMatchesIncrementalOnGroupedWindows) {
  const WindowSpec window = WindowSpec::SlidingTime(400, 100);
  for (std::uint64_t seed = 21; seed <= 23; ++seed) {
    const auto events = RandomStream(seed, 1500, 3000);
    IncrementalOperator inc(AggregateSpec::Sum(), window, NumericField(1),
                            KeyField(0));
    PanedIncrementalOperator paned(AggregateSpec::Sum(), window,
                                   NumericField(1), KeyField(0));
    for (const Event& e : events) {
      inc.OnTuple(e.coord, GroupTuple(e.coord, e.key, e.value));
      paned.OnTuple(e.coord, GroupTuple(e.coord, e.key, e.value));
    }
    auto a = inc.OnWatermark(10'000);
    auto b = paned.OnWatermark(10'000);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    std::map<std::int64_t, std::vector<std::pair<std::string, double>>> lhs;
    for (const WindowResult& r : *a) lhs[r.bounds.start] = r.groups;
    for (const WindowResult& r : *b) {
      const auto it = lhs.find(r.bounds.start);
      if (it == lhs.end()) {
        EXPECT_TRUE(r.groups.empty());
        continue;
      }
      ASSERT_EQ(r.groups.size(), it->second.size());
      for (std::size_t i = 0; i < r.groups.size(); ++i) {
        EXPECT_EQ(r.groups[i].first, it->second[i].first);
        EXPECT_NEAR(r.groups[i].second, it->second[i].second, 1e-6);
      }
    }
  }
}

// SPEAr's estimator path with budget b >= |S_w|: the "sample" is the
// whole window, so the estimate IS the exact statistic — the expedite
// decision may keep approximate=true, but the value must match exactly.
TEST(GoldenDifferentialTest, SpearEstimatorEqualsExactWhenBudgetCoversWindow) {
  const WindowSpec window = WindowSpec::TumblingTime(500);
  for (const AggregateSpec& spec :
       {AggregateSpec::Sum(), AggregateSpec::Mean(), AggregateSpec::Count(),
        AggregateSpec::Median()}) {
    for (std::uint64_t seed = 31; seed <= 33; ++seed) {
      const auto events = RandomStream(seed, 1200, 2500);
      const auto golden = ExactScalarByWindow(spec, window, events);

      SpearOperatorConfig config;
      config.window = window;
      config.aggregate = spec;
      config.accuracy = AccuracySpec{0.10, 0.95};
      config.budget = Budget::Tuples(5000);  // >> any window's size
      config.incremental_optimization = false;  // force the sampled path
      SpearWindowManager manager(config, NumericField(0));
      for (const Event& e : events) {
        manager.OnTuple(e.coord, ScalarTuple(e.coord, e.value));
      }
      auto results = manager.OnWatermark(10'000);
      ASSERT_TRUE(results.ok());
      ASSERT_EQ(results->size(), golden.size());
      for (const WindowResult& r : *results) {
        const auto it = golden.find(r.bounds.start);
        ASSERT_NE(it, golden.end());
        EXPECT_NEAR(r.scalar, it->second,
                    1e-9 * std::max(1.0, std::abs(it->second)))
            << "seed " << seed << " window " << r.bounds.start << " agg "
            << static_cast<int>(spec.kind);
      }
    }
  }
}

}  // namespace
}  // namespace spear
