#include "tuple/serde.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace spear {
namespace {

TEST(SerdeTest, RoundTripMixedFields) {
  const Tuple original(
      12345, {Value(std::int64_t{-7}), Value(3.14159), Value("route-42")});
  std::string encoded;
  EncodeTuple(original, &encoded);
  std::size_t offset = 0;
  auto decoded = DecodeTuple(encoded, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
  EXPECT_EQ(offset, encoded.size());
}

TEST(SerdeTest, RoundTripEmptyTuple) {
  const Tuple original(0, std::vector<Value>{});
  std::string encoded;
  EncodeTuple(original, &encoded);
  std::size_t offset = 0;
  auto decoded = DecodeTuple(encoded, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_fields(), 0u);
}

TEST(SerdeTest, RoundTripEmptyString) {
  const Tuple original(1, {Value(std::string())});
  std::string encoded;
  EncodeTuple(original, &encoded);
  std::size_t offset = 0;
  auto decoded = DecodeTuple(encoded, &offset);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, original);
}

TEST(SerdeTest, MultipleTuplesSequential) {
  std::string encoded;
  EncodeTuple(Tuple(1, {Value(std::int64_t{1})}), &encoded);
  EncodeTuple(Tuple(2, {Value(2.0)}), &encoded);
  std::size_t offset = 0;
  auto first = DecodeTuple(encoded, &offset);
  auto second = DecodeTuple(encoded, &offset);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->event_time(), 1);
  EXPECT_EQ(second->event_time(), 2);
  EXPECT_EQ(offset, encoded.size());
}

TEST(SerdeTest, TruncatedInputRejected) {
  std::string encoded;
  EncodeTuple(Tuple(1, {Value("hello")}), &encoded);
  for (std::size_t cut : {1u, 8u, 12u, 13u}) {
    ASSERT_LT(cut, encoded.size());
    const std::string partial = encoded.substr(0, encoded.size() - cut);
    std::size_t offset = 0;
    EXPECT_TRUE(DecodeTuple(partial, &offset).status().IsInvalid())
        << "cut=" << cut;
  }
}

TEST(SerdeTest, CorruptTypeTagRejected) {
  std::string encoded;
  EncodeTuple(Tuple(1, {Value(std::int64_t{9})}), &encoded);
  encoded[12] = 0x7F;  // the field's type tag (after i64 time + u32 count)
  std::size_t offset = 0;
  EXPECT_TRUE(DecodeTuple(encoded, &offset).status().IsInvalid());
}

TEST(SerdeTest, BatchRoundTrip) {
  Rng rng(1);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 100; ++i) {
    tuples.emplace_back(
        i, std::vector<Value>{Value(static_cast<std::int64_t>(i)),
                              Value(rng.NextDouble()),
                              Value("k" + std::to_string(i % 7))});
  }
  auto decoded = DecodeBatch(EncodeBatch(tuples));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), tuples.size());
  for (std::size_t i = 0; i < tuples.size(); ++i) {
    EXPECT_EQ((*decoded)[i], tuples[i]);
  }
}

TEST(SerdeTest, BatchTrailingBytesRejected) {
  std::string data = EncodeBatch({Tuple(1, {Value(1.0)})});
  data += "x";
  EXPECT_TRUE(DecodeBatch(data).status().IsInvalid());
}

TEST(SerdeTest, EmptyBatch) {
  auto decoded = DecodeBatch(EncodeBatch({}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

}  // namespace
}  // namespace spear
