#include "tuple/value.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(ValueTest, DefaultIsInt64Zero) {
  Value v;
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.AsInt64(), 0);
}

TEST(ValueTest, Int64RoundTrip) {
  Value v(std::int64_t{-42});
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.AsInt64(), -42);
  EXPECT_EQ(v.type(), ValueType::kInt64);
}

TEST(ValueTest, Int32Promotes) {
  Value v(std::int32_t{7});
  EXPECT_TRUE(v.is_int64());
  EXPECT_EQ(v.AsInt64(), 7);
}

TEST(ValueTest, DoubleRoundTrip) {
  Value v(3.25);
  EXPECT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.25);
}

TEST(ValueTest, StringRoundTrip) {
  Value v(std::string("route-17"));
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "route-17");
}

TEST(ValueTest, CStringConstructs) {
  Value v("abc");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "abc");
}

TEST(ValueTest, AsNumericCoercesInt) {
  EXPECT_DOUBLE_EQ(Value(std::int64_t{5}).AsNumeric(), 5.0);
  EXPECT_DOUBLE_EQ(Value(2.5).AsNumeric(), 2.5);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value(std::int64_t{1}), Value(std::int64_t{1}));
  EXPECT_NE(Value(std::int64_t{1}), Value(1.0));  // type-sensitive
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(std::int64_t{12}).ToString(), "12");
  EXPECT_EQ(Value("x").ToString(), "x");
  EXPECT_EQ(Value(1.5).ToString(), "1.5");
}

TEST(ValueTest, ByteSizeGrowsWithStrings) {
  EXPECT_EQ(Value(std::int64_t{1}).ByteSize(), sizeof(Value));
  EXPECT_GT(Value(std::string(100, 'x')).ByteSize(), 100u);
}

}  // namespace
}  // namespace spear
