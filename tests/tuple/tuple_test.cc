#include "tuple/tuple.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(TupleTest, DefaultEmpty) {
  Tuple t;
  EXPECT_EQ(t.event_time(), 0);
  EXPECT_EQ(t.num_fields(), 0u);
}

TEST(TupleTest, InitializerListConstruction) {
  Tuple t(1000, {Value(std::int64_t{1}), Value(2.5), Value("r")});
  EXPECT_EQ(t.event_time(), 1000);
  ASSERT_EQ(t.num_fields(), 3u);
  EXPECT_EQ(t.field(0).AsInt64(), 1);
  EXPECT_DOUBLE_EQ(t.field(1).AsDouble(), 2.5);
  EXPECT_EQ(t.field(2).AsString(), "r");
}

TEST(TupleTest, SetEventTime) {
  Tuple t;
  t.set_event_time(77);
  EXPECT_EQ(t.event_time(), 77);
}

TEST(TupleTest, MutableField) {
  Tuple t(0, {Value(std::int64_t{1})});
  t.field(0) = Value(std::int64_t{9});
  EXPECT_EQ(t.field(0).AsInt64(), 9);
}

TEST(TupleTest, AppendAndPopField) {
  Tuple t(0, {Value(std::int64_t{1})});
  t.AppendField(Value(std::int64_t{55}));
  EXPECT_EQ(t.num_fields(), 2u);
  const Value popped = t.PopField();
  EXPECT_EQ(popped.AsInt64(), 55);
  EXPECT_EQ(t.num_fields(), 1u);
}

TEST(TupleTest, Equality) {
  Tuple a(5, {Value(1.0)});
  Tuple b(5, {Value(1.0)});
  Tuple c(6, {Value(1.0)});
  Tuple d(5, {Value(2.0)});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(TupleTest, ByteSizeIncludesFields) {
  Tuple small(0, {Value(std::int64_t{1})});
  Tuple big(0, {Value(std::int64_t{1}), Value(std::string(200, 'y'))});
  EXPECT_GT(big.ByteSize(), small.ByteSize() + 200);
}

TEST(TupleTest, ToStringFormat) {
  Tuple t(3, {Value(std::int64_t{1}), Value("x")});
  EXPECT_EQ(t.ToString(), "{t=3, 1, x}");
}

}  // namespace
}  // namespace spear
