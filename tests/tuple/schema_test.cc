#include "tuple/schema.h"

#include <gtest/gtest.h>

#include "tuple/field_extractor.h"

namespace spear {
namespace {

TEST(SchemaTest, FieldLookup) {
  Schema s({"time", "route", "fare"});
  EXPECT_EQ(s.num_fields(), 3u);
  ASSERT_TRUE(s.FieldIndex("fare").ok());
  EXPECT_EQ(*s.FieldIndex("fare"), 2u);
  EXPECT_EQ(*s.FieldIndex("time"), 0u);
}

TEST(SchemaTest, MissingFieldIsNotFound) {
  Schema s({"a"});
  EXPECT_TRUE(s.FieldIndex("b").status().IsNotFound());
  EXPECT_FALSE(s.HasField("b"));
  EXPECT_TRUE(s.HasField("a"));
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(Schema({"a", "b"}), Schema({"a", "b"}));
  EXPECT_FALSE(Schema({"a"}) == Schema({"a", "b"}));
}

TEST(FieldExtractorTest, NumericFieldReadsDoublesAndInts) {
  Tuple t(0, {Value(std::int64_t{4}), Value(2.5)});
  EXPECT_DOUBLE_EQ(NumericField(0)(t), 4.0);
  EXPECT_DOUBLE_EQ(NumericField(1)(t), 2.5);
}

TEST(FieldExtractorTest, KeyFieldStringifiesNonStrings) {
  Tuple t(0, {Value("route-1"), Value(std::int64_t{9})});
  EXPECT_EQ(KeyField(0)(t), "route-1");
  EXPECT_EQ(KeyField(1)(t), "9");
}

TEST(FieldExtractorTest, IntKeyField) {
  Tuple t(0, {Value(std::int64_t{123})});
  EXPECT_EQ(IntKeyField(0)(t), 123);
}

}  // namespace
}  // namespace spear
