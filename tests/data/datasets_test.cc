#include "data/datasets.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "stats/running_stats.h"

namespace spear {
namespace {

TEST(WorkloadSpecTest, Table1Parameters) {
  const auto debs = WorkloadSpec::Debs();
  EXPECT_EQ(debs.window_range, Minutes(30));
  EXPECT_EQ(debs.window_slide, Minutes(15));
  EXPECT_EQ(debs.avg_window_size, 10'000u);

  const auto gcm = WorkloadSpec::Gcm();
  EXPECT_EQ(gcm.window_range, Minutes(60));
  EXPECT_EQ(gcm.avg_window_size, 320'000u);

  const auto dec = WorkloadSpec::Dec();
  EXPECT_EQ(dec.window_range, Seconds(45));
  EXPECT_EQ(dec.window_slide, Seconds(15));
  EXPECT_EQ(dec.avg_window_size, 47'000u);
}

TEST(GeneratorsTest, Deterministic) {
  DebsGenerator::Config config;
  config.duration = Minutes(10);
  const auto a = DebsGenerator::Generate(config);
  const auto b = DebsGenerator::Generate(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(a.size(), 100); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GeneratorsTest, DifferentSeedsDiffer) {
  DecGenerator::Config a_cfg, b_cfg;
  a_cfg.duration = b_cfg.duration = Minutes(1);
  b_cfg.seed = 777;
  const auto a = DecGenerator::Generate(a_cfg);
  const auto b = DecGenerator::Generate(b_cfg);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  // Some prefix tuple must differ (timestamps or sizes).
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < std::min(a.size(), b.size()) &&
                          i < 50;
       ++i) {
    differs = !(a[i] == b[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorsTest, TimestampsMonotoneNonDecreasing) {
  GcmGenerator::Config config;
  config.duration = Minutes(5);
  const auto tuples = GcmGenerator::Generate(config);
  for (std::size_t i = 1; i < tuples.size(); ++i) {
    EXPECT_GE(tuples[i].event_time(), tuples[i - 1].event_time());
  }
}

TEST(GeneratorsTest, EventTimeMatchesTimeField) {
  DecGenerator::Config config;
  config.duration = Minutes(1);
  for (const Tuple& t : DecGenerator::Generate(config)) {
    EXPECT_EQ(t.event_time(), t.field(DecGenerator::kTimeField).AsInt64());
  }
}

TEST(DebsGeneratorTest, WindowSizeNearTarget) {
  DebsGenerator::Config config;
  config.duration = Minutes(60);
  const auto tuples = DebsGenerator::Generate(config);
  // ~5.56/s * 1800s = ~10000 per 30-minute window.
  std::size_t in_first_window = 0;
  for (const Tuple& t : tuples) {
    if (t.event_time() < Minutes(30)) ++in_first_window;
  }
  EXPECT_NEAR(static_cast<double>(in_first_window), 10000.0, 800.0);
}

TEST(DebsGeneratorTest, SparsityMatchesPaper) {
  // ~5K distinct routes per ~10K-tuple window, most appearing <= 2 times.
  DebsGenerator::Config config;
  config.duration = Minutes(30);
  const auto tuples = DebsGenerator::Generate(config);
  std::unordered_map<std::string, int> freq;
  for (const Tuple& t : tuples) {
    ++freq[t.field(DebsGenerator::kRouteField).AsString()];
  }
  EXPECT_NEAR(static_cast<double>(freq.size()), 5000.0, 800.0);
  std::size_t rare = 0;
  for (const auto& [route, count] : freq) {
    if (count <= 2) ++rare;
  }
  EXPECT_GT(static_cast<double>(rare) / static_cast<double>(freq.size()), 0.7);
}

TEST(DebsGeneratorTest, FaresPositiveAndPlausible) {
  DebsGenerator::Config config;
  config.duration = Minutes(10);
  RunningStats fares;
  for (const Tuple& t : DebsGenerator::Generate(config)) {
    fares.Update(t.field(DebsGenerator::kFareField).AsDouble());
  }
  EXPECT_GT(fares.min(), 0.0);
  EXPECT_GT(fares.mean(), 4.0);
  EXPECT_LT(fares.mean(), 30.0);
}

TEST(GcmGeneratorTest, ExactlyConfiguredClassCount) {
  GcmGenerator::Config config;
  config.duration = Minutes(20);
  std::unordered_set<std::int64_t> classes;
  for (const Tuple& t : GcmGenerator::Generate(config)) {
    classes.insert(t.field(GcmGenerator::kClassField).AsInt64());
  }
  EXPECT_EQ(classes.size(), config.num_classes);
}

TEST(GcmGeneratorTest, ClassMixIsSkewed) {
  GcmGenerator::Config config;
  config.duration = Minutes(20);
  std::unordered_map<std::int64_t, std::size_t> freq;
  std::size_t total = 0;
  for (const Tuple& t : GcmGenerator::Generate(config)) {
    ++freq[t.field(GcmGenerator::kClassField).AsInt64()];
    ++total;
  }
  // Zipf: class 0 dominates; every class still appears many times (dense
  // groups are the property GCM findings rely on).
  EXPECT_GT(freq[0], total / 4);
  for (const auto& [cls, count] : freq) {
    EXPECT_GT(count, 50u) << "class " << cls;
  }
}

TEST(GcmGeneratorTest, WindowSizeNearTarget) {
  GcmGenerator::Config config;
  config.duration = Hours(1);
  const auto tuples = GcmGenerator::Generate(config);
  EXPECT_NEAR(static_cast<double>(tuples.size()), 320'000.0, 20'000.0);
}

TEST(DecGeneratorTest, BimodalPacketSizes) {
  DecGenerator::Config config;
  config.duration = Minutes(2);
  std::size_t small = 0, mtu = 0, total = 0;
  for (const Tuple& t : DecGenerator::Generate(config)) {
    const double size = t.field(DecGenerator::kSizeField).AsDouble();
    EXPECT_GE(size, 40.0);
    EXPECT_LE(size, 1520.0);
    if (size < 110.0) ++small;
    if (size >= 1400.0) ++mtu;
    ++total;
  }
  EXPECT_NEAR(static_cast<double>(small) / total, 0.40, 0.05);
  EXPECT_NEAR(static_cast<double>(mtu) / total, 0.40, 0.05);
}

TEST(DecGeneratorTest, WindowSizeNearTarget) {
  DecGenerator::Config config;
  config.duration = Seconds(45);
  const auto tuples = DecGenerator::Generate(config);
  EXPECT_NEAR(static_cast<double>(tuples.size()), 47'000.0, 3'000.0);
}

}  // namespace
}  // namespace spear
