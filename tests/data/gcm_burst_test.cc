#include <gtest/gtest.h>

#include "data/datasets.h"
#include "stats/running_stats.h"

/// \file gcm_burst_test.cc
/// Properties of the GCM generator's variance bursts, the mechanism
/// behind the Fig. 10 reproduction (see EXPERIMENTS.md).

namespace spear {
namespace {

GcmGenerator::Config BurstyConfig() {
  GcmGenerator::Config config;
  config.duration = Hours(3);
  return config;
}

TEST(GcmBurstTest, BurstsAreMeanNeutral) {
  // E[U] = high*p + low*(1-p) must be ~1 so bursts change variance, not
  // the window means the accuracy check is anchored to.
  const GcmGenerator::Config config = BurstyConfig();
  const double expected_multiplier =
      config.burst_high * config.burst_high_prob +
      config.burst_low * (1.0 - config.burst_high_prob);
  EXPECT_NEAR(expected_multiplier, 1.0, 0.02);
}

TEST(GcmBurstTest, BurstWindowsHaveHigherCv) {
  const auto tuples = GcmGenerator::Generate(BurstyConfig());
  const GcmGenerator::Config config = BurstyConfig();

  // Partition tuples of class 0 into burst-overlapping 15-minute slots
  // and quiet slots; the bursty slots must have a higher coefficient of
  // variation.
  RunningStats bursty, quiet;
  for (const Tuple& t : tuples) {
    if (t.field(GcmGenerator::kClassField).AsInt64() != 0) continue;
    const Timestamp ts = t.event_time();
    const Timestamp slot = ts / Minutes(15);
    const Timestamp slot_start = slot * Minutes(15);
    const bool overlaps_burst =
        (slot_start % config.burst_period) < config.burst_duration ||
        ((slot_start + Minutes(15) - 1) % config.burst_period) <
            config.burst_duration;
    const double v = t.field(GcmGenerator::kCpuField).AsDouble();
    (overlaps_burst ? bursty : quiet).Update(v);
  }
  ASSERT_GT(bursty.count(), 1000u);
  ASSERT_GT(quiet.count(), 10000u);
  const double bursty_cv = bursty.PopulationStdDev() / bursty.mean();
  const double quiet_cv = quiet.PopulationStdDev() / quiet.mean();
  EXPECT_GT(bursty_cv, quiet_cv * 1.1);
}

TEST(GcmBurstTest, DisablingBurstsRemovesThem) {
  GcmGenerator::Config config = BurstyConfig();
  config.duration = Hours(2);
  config.burst_period = 0;  // disabled
  RunningStats all;
  for (const Tuple& t : GcmGenerator::Generate(config)) {
    if (t.field(GcmGenerator::kClassField).AsInt64() != 0) continue;
    all.Update(t.field(GcmGenerator::kCpuField).AsDouble());
  }
  // Pure lognormal(sigma=0.6): cv ~ 0.66.
  EXPECT_NEAR(all.PopulationStdDev() / all.mean(), 0.66, 0.08);
}

}  // namespace
}  // namespace spear
