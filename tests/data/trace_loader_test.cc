#include "data/trace_loader.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace spear {
namespace {

TraceSpec RideSpec() {
  TraceSpec spec;
  spec.columns = {{"time", TraceColumnType::kInt64},
                  {"route", TraceColumnType::kString},
                  {"fare", TraceColumnType::kDouble}};
  spec.time_column = 0;
  return spec;
}

TEST(TraceSpecTest, Validation) {
  EXPECT_TRUE(RideSpec().Validate().ok());

  TraceSpec empty;
  EXPECT_TRUE(empty.Validate().IsInvalid());

  TraceSpec bad_time = RideSpec();
  bad_time.time_column = 9;
  EXPECT_TRUE(bad_time.Validate().IsInvalid());

  TraceSpec string_time = RideSpec();
  string_time.time_column = 1;  // route column is a string
  EXPECT_TRUE(string_time.Validate().IsInvalid());
}

TEST(TraceSpecTest, SchemaNames) {
  const Schema schema = RideSpec().ToSchema();
  ASSERT_EQ(schema.num_fields(), 3u);
  EXPECT_EQ(schema.field_name(1), "route");
}

TEST(ParseTraceLineTest, ParsesTypedCells) {
  auto tuple = ParseTraceLine("1700000000123,r42,12.5", RideSpec());
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->event_time(), 1700000000123);
  EXPECT_EQ(tuple->field(0).AsInt64(), 1700000000123);
  EXPECT_EQ(tuple->field(1).AsString(), "r42");
  EXPECT_DOUBLE_EQ(tuple->field(2).AsDouble(), 12.5);
}

TEST(ParseTraceLineTest, RejectsBadCells) {
  EXPECT_TRUE(ParseTraceLine("oops,r42,12.5", RideSpec()).status().IsInvalid());
  EXPECT_TRUE(ParseTraceLine("1,r42,abc", RideSpec()).status().IsInvalid());
  EXPECT_TRUE(ParseTraceLine("1,r42", RideSpec()).status().IsInvalid())
      << "missing column";
}

TEST(ParseTraceTest, HeaderSkippedAndRowsOrdered) {
  const std::string csv =
      "time,route,fare\n"
      "100,a,1.0\n"
      "200,b,2.0\n"
      "300,a,3.0\n";
  auto tuples = ParseTrace(csv, RideSpec());
  ASSERT_TRUE(tuples.ok());
  ASSERT_EQ(tuples->size(), 3u);
  EXPECT_EQ((*tuples)[0].event_time(), 100);
  EXPECT_EQ((*tuples)[2].field(1).AsString(), "a");
}

TEST(ParseTraceTest, NoHeaderMode) {
  TraceSpec spec = RideSpec();
  spec.has_header = false;
  auto tuples = ParseTrace("100,a,1.0\n", spec);
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples->size(), 1u);
}

TEST(ParseTraceTest, CrLfAndBlankLinesHandled) {
  const std::string csv = "time,route,fare\r\n100,a,1.0\r\n\r\n200,b,2.0\r\n";
  auto tuples = ParseTrace(csv, RideSpec());
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples->size(), 2u);
}

TEST(ParseTraceTest, BadRowFailsWithLineNumber) {
  auto tuples = ParseTrace("time,route,fare\n100,a,1.0\nbad,row\n",
                           RideSpec());
  ASSERT_FALSE(tuples.ok());
  EXPECT_NE(tuples.status().message().find("line 3"), std::string::npos);
}

TEST(ParseTraceTest, SkipBadRowsMode) {
  TraceSpec spec = RideSpec();
  spec.skip_bad_rows = true;
  auto tuples =
      ParseTrace("time,route,fare\n100,a,1.0\nbad,row\n200,b,2.0\n", spec);
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples->size(), 2u);
}

TEST(ParseTraceTest, CustomDelimiter) {
  TraceSpec spec = RideSpec();
  spec.delimiter = '\t';
  auto tuples = ParseTrace("time\troute\tfare\n100\ta\t1.0\n", spec);
  ASSERT_TRUE(tuples.ok());
  EXPECT_EQ(tuples->size(), 1u);
}

TEST(LoadTraceTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      LoadTrace("/nonexistent/trace.csv", RideSpec()).status().IsIOError());
}

TEST(LoadTraceTest, RoundTripThroughFile) {
  const auto path = std::filesystem::temp_directory_path() /
                    ("spear-trace-" + std::to_string(::getpid()) + ".csv");
  {
    std::ofstream out(path);
    out << "time,route,fare\n100,a,1.5\n200,b,2.5\n";
  }
  auto tuples = LoadTrace(path.string(), RideSpec());
  std::filesystem::remove(path);
  ASSERT_TRUE(tuples.ok());
  ASSERT_EQ(tuples->size(), 2u);
  EXPECT_DOUBLE_EQ((*tuples)[1].field(2).AsDouble(), 2.5);
}

}  // namespace
}  // namespace spear
