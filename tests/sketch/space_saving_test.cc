#include "sketch/space_saving.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace spear {
namespace {

TEST(SpaceSavingTest, MakeValidates) {
  EXPECT_TRUE(SpaceSaving::Make(0).status().IsInvalid());
  EXPECT_TRUE(SpaceSaving::Make(10).ok());
}

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  auto ss = SpaceSaving::Make(10);
  for (int i = 0; i < 5; ++i) {
    ss->Add("a");
  }
  ss->Add("b");
  EXPECT_EQ(ss->EstimateCount("a"), 5u);
  EXPECT_EQ(ss->EstimateCount("b"), 1u);
  EXPECT_EQ(ss->EstimateCount("c"), 0u);
  EXPECT_EQ(ss->total(), 6u);
  EXPECT_EQ(ss->monitored(), 2u);
}

TEST(SpaceSavingTest, NeverUnderestimatesMonitored) {
  auto ss = SpaceSaving::Make(8);
  Rng rng(2);
  std::unordered_map<std::string, std::uint64_t> truth;
  for (int i = 0; i < 20000; ++i) {
    // Zipf-ish mix over 50 keys.
    const std::string key =
        "k" + std::to_string(rng.NextBounded(rng.NextBounded(50) + 1));
    ss->Add(key);
    ++truth[key];
  }
  for (const auto& item : ss->TopK()) {
    EXPECT_GE(item.count, truth[item.key]) << item.key;
    EXPECT_LE(item.count - item.error, truth[item.key]) << item.key;
  }
}

TEST(SpaceSavingTest, HeavyHitterGuarantee) {
  // Any key with frequency > n/k must be monitored.
  constexpr std::size_t kCapacity = 10;
  auto ss = SpaceSaving::Make(kCapacity);
  Rng rng(5);
  // "hot" gets ~30% of 10000 appearances; noise spread over 1000 keys.
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextDouble() < 0.3) {
      ss->Add("hot");
    } else {
      ss->Add("noise" + std::to_string(rng.NextBounded(1000)));
    }
  }
  EXPECT_GT(ss->EstimateCount("hot"), 10000u / kCapacity);
  const auto top = ss->TopK();
  EXPECT_EQ(top.front().key, "hot");
}

TEST(SpaceSavingTest, CapacityBoundsMonitoredSet) {
  auto ss = SpaceSaving::Make(4);
  for (int i = 0; i < 100; ++i) {
    ss->Add("k" + std::to_string(i));
  }
  EXPECT_EQ(ss->monitored(), 4u);
  EXPECT_EQ(ss->total(), 100u);
}

TEST(SpaceSavingTest, TopKSortedDescending) {
  auto ss = SpaceSaving::Make(10);
  for (int i = 0; i < 9; ++i) ss->Add("big");
  for (int i = 0; i < 5; ++i) ss->Add("mid");
  ss->Add("small");
  const auto top = ss->TopK();
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key, "big");
  EXPECT_EQ(top[1].key, "mid");
  EXPECT_EQ(top[2].key, "small");
}

}  // namespace
}  // namespace spear
