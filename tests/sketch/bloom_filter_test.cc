#include "sketch/bloom_filter.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(BloomFilterTest, MakeValidates) {
  EXPECT_TRUE(BloomFilter::Make(0, 0.01).status().IsInvalid());
  EXPECT_TRUE(BloomFilter::Make(100, 0.0).status().IsInvalid());
  EXPECT_TRUE(BloomFilter::Make(100, 1.0).status().IsInvalid());
  EXPECT_TRUE(BloomFilter::Make(100, 0.01).ok());
}

TEST(BloomFilterTest, NoFalseNegatives) {
  auto bloom = BloomFilter::Make(10000, 0.01);
  for (int i = 0; i < 10000; ++i) {
    bloom->Add("key" + std::to_string(i));
  }
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(bloom->MayContain("key" + std::to_string(i))) << i;
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  constexpr double kTarget = 0.01;
  auto bloom = BloomFilter::Make(10000, kTarget);
  for (int i = 0; i < 10000; ++i) {
    bloom->Add("in" + std::to_string(i));
  }
  int false_positives = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    if (bloom->MayContain("out" + std::to_string(i))) ++false_positives;
  }
  const double rate = static_cast<double>(false_positives) / kProbes;
  EXPECT_LT(rate, kTarget * 3.0);
  EXPECT_NEAR(bloom->EstimatedFpRate(), kTarget, kTarget);
}

TEST(BloomFilterTest, EmptyContainsNothing) {
  auto bloom = BloomFilter::Make(100, 0.01);
  EXPECT_FALSE(bloom->MayContain("anything"));
  EXPECT_DOUBLE_EQ(bloom->EstimatedFpRate(), 0.0);
}

TEST(BloomFilterTest, GeometryScalesWithFpRate) {
  auto loose = BloomFilter::Make(1000, 0.1);
  auto tight = BloomFilter::Make(1000, 0.001);
  EXPECT_GT(tight->bit_count(), loose->bit_count());
  EXPECT_GT(tight->hash_count(), loose->hash_count());
}

TEST(BloomFilterTest, SeedsChangeBitPatterns) {
  auto a = BloomFilter::Make(100, 0.01, 1);
  auto b = BloomFilter::Make(100, 0.01, 2);
  a->Add("x");
  // With a different seed, "y" colliding on all k bits of "x" under both
  // filters is vanishingly unlikely; just sanity-check independence.
  b->Add("x");
  EXPECT_TRUE(a->MayContain("x"));
  EXPECT_TRUE(b->MayContain("x"));
}

}  // namespace
}  // namespace spear
