#include "sketch/count_min.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace spear {
namespace {

TEST(CountMinTest, MakeValidatesArgs) {
  EXPECT_TRUE(CountMinSketch::Make(0.0, 0.05).status().IsInvalid());
  EXPECT_TRUE(CountMinSketch::Make(1.0, 0.05).status().IsInvalid());
  EXPECT_TRUE(CountMinSketch::Make(0.1, 0.0).status().IsInvalid());
  EXPECT_TRUE(CountMinSketch::Make(0.1, 1.0).status().IsInvalid());
}

TEST(CountMinTest, GeometryFromEpsilonDelta) {
  auto sketch = CountMinSketch::Make(0.01, 0.05);
  ASSERT_TRUE(sketch.ok());
  EXPECT_EQ(sketch->width(), static_cast<std::size_t>(
                                 std::ceil(std::exp(1.0) / 0.01)));
  EXPECT_EQ(sketch->depth(),
            static_cast<std::size_t>(std::ceil(std::log(1.0 / 0.05))));
}

TEST(CountMinTest, NeverUnderestimates) {
  auto sketch = CountMinSketch::Make(0.01, 0.01);
  ASSERT_TRUE(sketch.ok());
  Rng rng(4);
  std::unordered_map<std::string, double> truth;
  for (int i = 0; i < 20000; ++i) {
    const std::string key = "k" + std::to_string(rng.NextBounded(500));
    sketch->Update(key, 1.0);
    truth[key] += 1.0;
  }
  for (const auto& [key, count] : truth) {
    EXPECT_GE(sketch->Estimate(key), count) << key;
  }
}

TEST(CountMinTest, ErrorWithinEpsilonOfL1Mass) {
  auto sketch = CountMinSketch::Make(0.005, 0.01);
  ASSERT_TRUE(sketch.ok());
  Rng rng(9);
  std::unordered_map<std::string, double> truth;
  for (int i = 0; i < 50000; ++i) {
    const std::string key = "k" + std::to_string(rng.NextBounded(2000));
    sketch->Update(key, 1.0);
    truth[key] += 1.0;
  }
  const double bound = 0.005 * sketch->total_mass();
  int violations = 0;
  for (const auto& [key, count] : truth) {
    if (sketch->Estimate(key) - count > bound) ++violations;
  }
  // delta = 1%: allow a small number of violations.
  EXPECT_LE(violations, static_cast<int>(truth.size() / 50));
}

TEST(CountMinTest, UnseenKeySmall) {
  auto sketch = CountMinSketch::Make(0.01, 0.01);
  ASSERT_TRUE(sketch.ok());
  for (int i = 0; i < 100; ++i) {
    sketch->Update("seen" + std::to_string(i), 1.0);
  }
  EXPECT_LE(sketch->Estimate("never-seen"), 0.01 * sketch->total_mass() * 4);
}

TEST(CountMinTest, WeightedUpdates) {
  CountMinSketch sketch(1000, 5, 1);
  sketch.Update("a", 2.5);
  sketch.Update("a", 2.5);
  EXPECT_GE(sketch.Estimate("a"), 5.0);
  EXPECT_DOUBLE_EQ(sketch.total_mass(), 5.0);
}

TEST(CountMinTest, ResetZeroes) {
  CountMinSketch sketch(100, 3, 1);
  sketch.Update("a", 10.0);
  sketch.Reset();
  EXPECT_DOUBLE_EQ(sketch.Estimate("a"), 0.0);
  EXPECT_DOUBLE_EQ(sketch.total_mass(), 0.0);
}

TEST(CountMinTest, MemoryBytesMatchesGeometry) {
  CountMinSketch sketch(100, 3, 1);
  EXPECT_EQ(sketch.MemoryBytes(), 300 * sizeof(double));
}

TEST(CountMinGroupedTest, MeanReconstruction) {
  auto agg = CountMinGroupedAggregator::Make(0.001, 0.01);
  ASSERT_TRUE(agg.ok());
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    agg->Update("hot", 10.0 + rng.NextGaussian());
  }
  for (int i = 0; i < 5000; ++i) {
    agg->Update("warm", 50.0 + rng.NextGaussian());
  }
  EXPECT_NEAR(agg->EstimateMean("hot"), 10.0, 1.5);
  EXPECT_NEAR(agg->EstimateMean("warm"), 50.0, 3.0);
}

TEST(CountMinGroupedTest, TracksDistinctKeysSorted) {
  auto agg = CountMinGroupedAggregator::Make(0.01, 0.05);
  ASSERT_TRUE(agg.ok());
  agg->Update("c", 1.0);
  agg->Update("a", 1.0);
  agg->Update("b", 1.0);
  agg->Update("a", 1.0);  // duplicate
  const auto keys = agg->Keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[2], "c");
}

TEST(CountMinGroupedTest, UnseenKeyMeanIsZero) {
  auto agg = CountMinGroupedAggregator::Make(0.01, 0.05);
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->EstimateMean("ghost"), 0.0);
}

TEST(CountMinGroupedTest, MemoryIncludesKeySet) {
  auto agg = CountMinGroupedAggregator::Make(0.01, 0.05);
  ASSERT_TRUE(agg.ok());
  const std::size_t before = agg->MemoryBytes();
  for (int i = 0; i < 1000; ++i) {
    agg->Update("group-with-a-long-name-" + std::to_string(i), 1.0);
  }
  EXPECT_GT(agg->MemoryBytes(), before + 1000 * 10);
}

TEST(CountMinGroupedTest, ResetClearsKeysAndCounts) {
  auto agg = CountMinGroupedAggregator::Make(0.01, 0.05);
  ASSERT_TRUE(agg.ok());
  agg->Update("a", 5.0);
  agg->Reset();
  EXPECT_TRUE(agg->Keys().empty());
  EXPECT_DOUBLE_EQ(agg->EstimateMean("a"), 0.0);
}

}  // namespace
}  // namespace spear
