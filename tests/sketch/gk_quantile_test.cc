#include "sketch/gk_quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "stats/quantile.h"

namespace spear {
namespace {

TEST(GkQuantileTest, MakeValidatesEpsilon) {
  EXPECT_TRUE(GkQuantileSketch::Make(0.0).status().IsInvalid());
  EXPECT_TRUE(GkQuantileSketch::Make(1.0).status().IsInvalid());
  EXPECT_TRUE(GkQuantileSketch::Make(0.01).ok());
}

TEST(GkQuantileTest, EmptyQuantileInvalid) {
  auto gk = GkQuantileSketch::Make(0.1);
  EXPECT_TRUE(gk->Quantile(0.5).status().IsInvalid());
}

TEST(GkQuantileTest, PhiValidated) {
  auto gk = GkQuantileSketch::Make(0.1);
  gk->Add(1.0);
  EXPECT_TRUE(gk->Quantile(-0.1).status().IsInvalid());
  EXPECT_TRUE(gk->Quantile(1.1).status().IsInvalid());
}

TEST(GkQuantileTest, SingleElement) {
  auto gk = GkQuantileSketch::Make(0.1);
  gk->Add(42.0);
  EXPECT_DOUBLE_EQ(*gk->Quantile(0.5), 42.0);
  EXPECT_EQ(gk->count(), 1u);
}

TEST(GkQuantileTest, ExactForSmallStreams) {
  auto gk = GkQuantileSketch::Make(0.05);
  for (int i = 1; i <= 10; ++i) gk->Add(i);
  // With 10 elements and eps=0.05 the allowed rank slack is 0.5 — the
  // answer must be within one position.
  const double median = *gk->Quantile(0.5);
  EXPECT_GE(median, 5.0);
  EXPECT_LE(median, 6.0);
}

/// Rank-error guarantee on large streams across epsilons and orders.
class GkRankErrorSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(GkRankErrorSweep, RankErrorWithinEpsilon) {
  const auto [epsilon, order] = GetParam();
  auto gk = GkQuantileSketch::Make(epsilon);
  constexpr int kN = 50000;
  Rng rng(static_cast<std::uint64_t>(order) + 7);

  std::vector<double> values;
  values.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    double v;
    switch (order) {
      case 0:  // ascending
        v = i;
        break;
      case 1:  // descending
        v = kN - i;
        break;
      default:  // random, heavy-tailed
        v = std::exp(rng.NextGaussian() * 2.0);
    }
    values.push_back(v);
    gk->Add(v);
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  for (double phi : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double estimate = *gk->Quantile(phi);
    const double rank = RankOf(sorted, estimate);
    EXPECT_NEAR(rank, phi, epsilon + 1.0 / kN)
        << "phi=" << phi << " order=" << order;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, GkRankErrorSweep,
    ::testing::Combine(::testing::Values(0.01, 0.05, 0.1),
                       ::testing::Values(0, 1, 2)));

TEST(GkQuantileTest, SummaryMuchSmallerThanStream) {
  auto gk = GkQuantileSketch::Make(0.01);
  for (int i = 0; i < 100000; ++i) gk->Add(std::sin(i * 0.01) * 1000.0);
  EXPECT_EQ(gk->count(), 100000u);
  // O((1/eps) log(eps n)) ~ a few hundred entries at eps=1%.
  EXPECT_LT(gk->summary_size(), 2000u);
  EXPECT_LT(gk->MemoryBytes(), 100000u * sizeof(double) / 10);
}

TEST(GkQuantileTest, SummarySizeShrinksWithLargerEpsilon) {
  auto tight = GkQuantileSketch::Make(0.01);
  auto loose = GkQuantileSketch::Make(0.1);
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextDouble();
    tight->Add(v);
    loose->Add(v);
  }
  EXPECT_LT(loose->summary_size(), tight->summary_size());
}

TEST(GkQuantileTest, ResetClears) {
  auto gk = GkQuantileSketch::Make(0.1);
  for (int i = 0; i < 100; ++i) gk->Add(i);
  gk->Reset();
  EXPECT_EQ(gk->count(), 0u);
  EXPECT_TRUE(gk->Quantile(0.5).status().IsInvalid());
}

}  // namespace
}  // namespace spear
