#include "sketch/hyperloglog.h"

#include <gtest/gtest.h>

#include <cmath>

namespace spear {
namespace {

TEST(HyperLogLogTest, PrecisionValidated) {
  EXPECT_TRUE(HyperLogLog::Make(3).status().IsInvalid());
  EXPECT_TRUE(HyperLogLog::Make(19).status().IsInvalid());
  EXPECT_TRUE(HyperLogLog::Make(12).ok());
}

TEST(HyperLogLogTest, EmptyEstimatesNearZero) {
  auto hll = HyperLogLog::Make(12);
  ASSERT_TRUE(hll.ok());
  EXPECT_LT(hll->Estimate(), 1.0);
}

TEST(HyperLogLogTest, SmallCardinalityViaLinearCounting) {
  auto hll = HyperLogLog::Make(12);
  ASSERT_TRUE(hll.ok());
  for (int i = 0; i < 100; ++i) hll->AddInt64(i);
  EXPECT_NEAR(hll->Estimate(), 100.0, 5.0);
}

TEST(HyperLogLogTest, DuplicatesDoNotInflate) {
  auto hll = HyperLogLog::Make(12);
  ASSERT_TRUE(hll.ok());
  for (int rep = 0; rep < 100; ++rep) {
    for (int i = 0; i < 50; ++i) hll->Add("key" + std::to_string(i));
  }
  EXPECT_NEAR(hll->Estimate(), 50.0, 4.0);
}

class HllAccuracySweep : public ::testing::TestWithParam<int> {};

TEST_P(HllAccuracySweep, WithinStandardErrorBudget) {
  const int n = GetParam();
  auto hll = HyperLogLog::Make(14);
  ASSERT_TRUE(hll.ok());
  for (int i = 0; i < n; ++i) hll->AddInt64(i * 2654435761LL);
  // Standard error ~= 1.04/sqrt(2^14) ~ 0.8%; allow 4 sigma.
  EXPECT_NEAR(hll->Estimate(), static_cast<double>(n),
              std::max(4.0 * 0.0082 * n, 10.0));
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracySweep,
                         ::testing::Values(1000, 10000, 100000, 500000));

TEST(HyperLogLogTest, MergeUnionsDistinctSets) {
  auto a = HyperLogLog::Make(13);
  auto b = HyperLogLog::Make(13);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (int i = 0; i < 5000; ++i) a->AddInt64(i);
  for (int i = 2500; i < 7500; ++i) b->AddInt64(i);
  ASSERT_TRUE(a->Merge(*b).ok());
  EXPECT_NEAR(a->Estimate(), 7500.0, 400.0);
}

TEST(HyperLogLogTest, MergePrecisionMismatchRejected) {
  auto a = HyperLogLog::Make(12);
  auto b = HyperLogLog::Make(13);
  EXPECT_TRUE(a->Merge(*b).IsInvalid());
}

TEST(HyperLogLogTest, ResetZeroes) {
  auto hll = HyperLogLog::Make(12);
  for (int i = 0; i < 1000; ++i) hll->AddInt64(i);
  hll->Reset();
  EXPECT_LT(hll->Estimate(), 1.0);
}

TEST(HyperLogLogTest, MemoryIsRegisterArray) {
  auto hll = HyperLogLog::Make(10);
  EXPECT_EQ(hll->MemoryBytes(), 1024u);
}

}  // namespace
}  // namespace spear
