#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/spear_topology_builder.h"
#include "data/datasets.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"
#include "common/rng.h"
#include "stats/error_metrics.h"

namespace spear {
namespace {

/// Decodes scalar result tuples into window-end -> (value, approx).
std::map<std::int64_t, std::pair<double, bool>> DecodeScalar(
    const std::vector<Tuple>& output) {
  std::map<std::int64_t, std::pair<double, bool>> out;
  for (const Tuple& t : output) {
    out[t.field(ResultTupleLayout::kEnd).AsInt64()] = {
        t.field(ResultTupleLayout::kScalarValue).AsDouble(),
        t.field(ResultTupleLayout::kScalarApprox).AsInt64() == 1};
  }
  return out;
}

/// Decodes grouped result tuples into (window end, key) -> value.
std::map<std::pair<std::int64_t, std::string>, double> DecodeGrouped(
    const std::vector<Tuple>& output) {
  std::map<std::pair<std::int64_t, std::string>, double> out;
  for (const Tuple& t : output) {
    out[{t.field(ResultTupleLayout::kEnd).AsInt64(),
         t.field(ResultTupleLayout::kGroupKey).AsString()}] =
        t.field(ResultTupleLayout::kGroupValue).AsDouble();
  }
  return out;
}

std::shared_ptr<VectorSpout> DecSpout(DurationMs duration = Minutes(3)) {
  DecGenerator::Config config;
  config.duration = duration;
  return std::make_shared<VectorSpout>(DecGenerator::Generate(config));
}

RunReport MustRun(SpearTopologyBuilder& builder) {
  auto topology = builder.Build();
  EXPECT_TRUE(topology.ok()) << topology.status().ToString();
  auto report = Executor(std::move(*topology)).Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(*report);
}

TEST(EndToEndTest, DecMedianSpearVsStormWithinAccuracy) {
  // The paper's DEC median CQ: 45s/15s sliding window, b=150, eps=10%.
  SpearTopologyBuilder storm;
  storm.Source(DecSpout(), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Median(NumericField(DecGenerator::kSizeField))
      .Engine(ExecutionEngine::kExact);
  const auto exact = DecodeScalar(MustRun(storm).output);

  SpearTopologyBuilder spear;
  spear.Source(DecSpout(), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Median(NumericField(DecGenerator::kSizeField))
      .SetBudget(Budget::Tuples(150))
      .Error(0.10, 0.95);
  const auto approx = DecodeScalar(MustRun(spear).output);

  ASSERT_FALSE(exact.empty());
  ASSERT_EQ(exact.size(), approx.size());
  int expedited = 0;
  for (const auto& [end, value_approx] : approx) {
    ASSERT_TRUE(exact.count(end)) << "window " << end;
    if (value_approx.second) ++expedited;
    // Median rank error <= 10%: on the bimodal DEC distribution the value
    // can sit on either mode; compare by rank tolerance via value bands.
    // Here we simply require the approximate median to be a plausible
    // packet size near the exact one's mode.
    const double exact_value = exact.at(end).first;
    const double diff = std::fabs(value_approx.first - exact_value);
    EXPECT_LT(diff, 700.0) << "window " << end;
  }
  EXPECT_GT(expedited, 0);
}

TEST(EndToEndTest, DecMeanAllEnginesAgree) {
  auto build = [&](ExecutionEngine engine) {
    SpearTopologyBuilder b;
    b.Source(DecSpout(), Seconds(15))
        .SlidingWindowOf(Seconds(45), Seconds(15))
        .Mean(NumericField(DecGenerator::kSizeField))
        .SetBudget(Budget::Tuples(1000))
        .Error(0.10, 0.95)
        .Engine(engine);
    return DecodeScalar(MustRun(b).output);
  };
  const auto exact = build(ExecutionEngine::kExact);
  const auto incremental = build(ExecutionEngine::kIncremental);
  const auto spear = build(ExecutionEngine::kSpear);

  ASSERT_FALSE(exact.empty());
  ASSERT_EQ(exact.size(), incremental.size());
  ASSERT_EQ(exact.size(), spear.size());
  for (const auto& [end, value_approx] : exact) {
    // Inc-Storm is exactly equal; SPEAr (incremental scalar path) too.
    EXPECT_NEAR(incremental.at(end).first, value_approx.first, 1e-6);
    EXPECT_NEAR(spear.at(end).first, value_approx.first, 1e-6);
  }
}

TEST(EndToEndTest, DecMeanSampledPathWithinEpsilon) {
  SpearTopologyBuilder storm;
  storm.Source(DecSpout(), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Mean(NumericField(DecGenerator::kSizeField))
      .Engine(ExecutionEngine::kExact);
  const auto exact = DecodeScalar(MustRun(storm).output);

  SpearTopologyBuilder spear;
  spear.Source(DecSpout(), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Mean(NumericField(DecGenerator::kSizeField))
      .SetBudget(Budget::Tuples(1000))
      .Error(0.10, 0.95)
      .DisableIncrementalOptimization();
  const auto approx = DecodeScalar(MustRun(spear).output);

  ASSERT_EQ(exact.size(), approx.size());
  std::size_t violations = 0;
  for (const auto& [end, value_approx] : approx) {
    if (RelativeError(value_approx.first, exact.at(end).first) > 0.10) {
      ++violations;
    }
  }
  // 95% of windows must be within 10%.
  EXPECT_LE(violations, std::max<std::size_t>(approx.size() / 10, 1));
}

TEST(EndToEndTest, GcmGroupedKnownGroups) {
  GcmGenerator::Config config;
  config.duration = Minutes(6);
  const auto tuples = GcmGenerator::Generate(config);

  SpearTopologyBuilder storm;
  storm.Source(std::make_shared<VectorSpout>(tuples), Minutes(1))
      .SlidingWindowOf(Minutes(2), Minutes(1))
      .Mean(NumericField(GcmGenerator::kCpuField))
      .GroupBy(KeyField(GcmGenerator::kClassField))
      .Engine(ExecutionEngine::kExact);
  const auto exact = DecodeGrouped(MustRun(storm).output);

  SpearTopologyBuilder spear;
  spear.Source(std::make_shared<VectorSpout>(tuples), Minutes(1))
      .SlidingWindowOf(Minutes(2), Minutes(1))
      .Mean(NumericField(GcmGenerator::kCpuField))
      .GroupBy(KeyField(GcmGenerator::kClassField))
      .SetBudget(Budget::Tuples(4000))
      .Error(0.10, 0.95)
      .KnownGroups(8);
  const auto approx = DecodeGrouped(MustRun(spear).output);

  ASSERT_FALSE(exact.empty());
  // R2: same groups in both results.
  ASSERT_EQ(exact.size(), approx.size());
  std::size_t violations = 0;
  for (const auto& [key, value] : approx) {
    ASSERT_TRUE(exact.count(key)) << key.second;
    if (RelativeError(value, exact.at(key)) > 0.10) ++violations;
  }
  EXPECT_LE(violations, std::max<std::size_t>(approx.size() / 10, 2));
}

TEST(EndToEndTest, DebsGroupedSparseRoutes) {
  DebsGenerator::Config config;
  config.duration = Minutes(90);
  const auto tuples = DebsGenerator::Generate(config);

  SpearTopologyBuilder storm;
  storm.Source(std::make_shared<VectorSpout>(tuples), Minutes(15))
      .SlidingWindowOf(Minutes(30), Minutes(15))
      .Mean(NumericField(DebsGenerator::kFareField))
      .GroupBy(KeyField(DebsGenerator::kRouteField))
      .Engine(ExecutionEngine::kExact);
  const auto exact = DecodeGrouped(MustRun(storm).output);

  SpearTopologyBuilder spear;
  spear.Source(std::make_shared<VectorSpout>(tuples), Minutes(15))
      .SlidingWindowOf(Minutes(30), Minutes(15))
      .Mean(NumericField(DebsGenerator::kFareField))
      .GroupBy(KeyField(DebsGenerator::kRouteField))
      .SetBudget(Budget::Tuples(8000))  // ~sparse: most groups fully sampled
      .Error(0.10, 0.95);
  const auto approx = DecodeGrouped(MustRun(spear).output);

  ASSERT_FALSE(exact.empty());
  ASSERT_EQ(exact.size(), approx.size()) << "every distinct route required";
}

TEST(EndToEndTest, CountBasedWindowsAcrossEngines) {
  auto build = [&](ExecutionEngine engine) {
    SpearTopologyBuilder b;
    b.Source(DecSpout(Minutes(1)))
        .TumblingCountWindowOf(2500)
        .Median(NumericField(DecGenerator::kSizeField))
        .SetBudget(Budget::Tuples(150))
        .Error(0.10, 0.95)
        .Engine(engine);
    return MustRun(b).output;
  };
  const auto exact = build(ExecutionEngine::kExact);
  const auto spear = build(ExecutionEngine::kSpear);
  ASSERT_FALSE(exact.empty());
  EXPECT_EQ(exact.size(), spear.size());
}

TEST(EndToEndTest, CountMinEngineProducesAllGroups) {
  GcmGenerator::Config config;
  config.duration = Minutes(3);
  auto spout =
      std::make_shared<VectorSpout>(GcmGenerator::Generate(config));
  SpearTopologyBuilder b;
  b.Source(spout, Minutes(1))
      .TumblingWindowOf(Minutes(1))
      .Mean(NumericField(GcmGenerator::kCpuField))
      .GroupBy(KeyField(GcmGenerator::kClassField))
      .Error(0.10, 0.95)
      .Engine(ExecutionEngine::kCountMin);
  const auto grouped = DecodeGrouped(MustRun(b).output);
  EXPECT_GE(grouped.size(), 8u);
}

TEST(EndToEndTest, ParallelStatefulStage) {
  SpearTopologyBuilder b;
  b.Source(DecSpout(Minutes(2)), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Median(NumericField(DecGenerator::kSizeField))
      .SetBudget(Budget::Tuples(150))
      .Error(0.10, 0.95)
      .Parallelism(4);
  const RunReport report = MustRun(b);
  EXPECT_FALSE(report.output.empty());
  EXPECT_EQ(report.metrics
                .ForStage(SpearTopologyBuilder::StatefulStageName())
                .size(),
            4u);
}

TEST(EndToEndTest, TimeStageAnnotatesEventTime) {
  // Tuples arrive with event_time 0 but carry the time in field 0; the
  // Time stage must recover windowing.
  DecGenerator::Config config;
  config.duration = Minutes(2);
  auto tuples = DecGenerator::Generate(config);
  for (Tuple& t : tuples) t.set_event_time(0);
  SpearTopologyBuilder b;
  b.Source(std::make_shared<VectorSpout>(std::move(tuples)), Seconds(15))
      .Time(DecGenerator::kTimeField)
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Mean(NumericField(DecGenerator::kSizeField))
      .SetBudget(Budget::Tuples(500))
      .Error(0.10, 0.95);
  const RunReport report = MustRun(b);
  EXPECT_GT(report.output.size(), 3u);
}

TEST(EndToEndTest, BuilderValidation) {
  SpearTopologyBuilder no_source;
  no_source.TumblingWindowOf(10).Mean(NumericField(0));
  EXPECT_TRUE(no_source.Build().status().IsInvalid());

  SpearTopologyBuilder no_window;
  no_window.Source(DecSpout(Seconds(1))).Mean(NumericField(0));
  EXPECT_TRUE(no_window.Build().status().IsInvalid());

  SpearTopologyBuilder no_agg;
  no_agg.Source(DecSpout(Seconds(1))).TumblingWindowOf(10);
  EXPECT_TRUE(no_agg.Build().status().IsInvalid());

  SpearTopologyBuilder holistic_inc;
  holistic_inc.Source(DecSpout(Seconds(1)))
      .TumblingWindowOf(10)
      .Median(NumericField(1))
      .Engine(ExecutionEngine::kIncremental);
  EXPECT_TRUE(holistic_inc.Build().status().IsInvalid());

  SpearTopologyBuilder scalar_countmin;
  scalar_countmin.Source(DecSpout(Seconds(1)))
      .TumblingWindowOf(10)
      .Mean(NumericField(1))
      .Engine(ExecutionEngine::kCountMin);
  EXPECT_TRUE(scalar_countmin.Build().status().IsInvalid());
}

TEST(EndToEndTest, OutOfOrderStreamWithLatenessAllowance) {
  // Swap adjacent tuples (bounded out-of-orderness < 2 s) and declare
  // that lateness to the source: windows must match the in-order run.
  DecGenerator::Config config;
  config.duration = Minutes(2);
  auto ordered = DecGenerator::Generate(config);
  std::vector<Tuple> jittered = ordered;
  for (std::size_t i = 0; i + 1 < jittered.size(); i += 2) {
    if (jittered[i + 1].event_time() - jittered[i].event_time() <
        Seconds(2)) {
      std::swap(jittered[i], jittered[i + 1]);
    }
  }

  auto run = [&](std::vector<Tuple> tuples) {
    SpearTopologyBuilder b;
    b.Source(std::make_shared<VectorSpout>(std::move(tuples)), Seconds(15),
             /*max_lateness=*/Seconds(2))
        .SlidingWindowOf(Seconds(45), Seconds(15))
        .Mean(NumericField(DecGenerator::kSizeField))
        .SetBudget(Budget::Tuples(1000))
        .Error(0.10, 0.95);
    return DecodeScalar(MustRun(b).output);
  };
  const auto in_order = run(ordered);
  const auto out_of_order = run(jittered);
  ASSERT_FALSE(in_order.empty());
  ASSERT_EQ(in_order.size(), out_of_order.size());
  for (const auto& [end, value_approx] : in_order) {
    ASSERT_TRUE(out_of_order.count(end));
    EXPECT_NEAR(out_of_order.at(end).first, value_approx.first, 1e-9)
        << "window " << end;
  }
}

TEST(EndToEndTest, GroupedPercentilePerRoute) {
  // The grouped variant of the paper's Fig. 1 CQ: p95 fare per route.
  DebsGenerator::Config config;
  config.duration = Minutes(90);
  config.active_routes = 40;  // dense routes so sampling has depth
  config.tuples_per_second = 30.0;
  const auto tuples = DebsGenerator::Generate(config);

  SpearTopologyBuilder storm;
  storm.Source(std::make_shared<VectorSpout>(tuples), Minutes(15))
      .SlidingWindowOf(Minutes(30), Minutes(15))
      .Percentile(NumericField(DebsGenerator::kFareField), 0.95)
      .GroupBy(KeyField(DebsGenerator::kRouteField))
      .Engine(ExecutionEngine::kExact);
  const auto exact = DecodeGrouped(MustRun(storm).output);

  SpearTopologyBuilder spear;
  spear.Source(std::make_shared<VectorSpout>(tuples), Minutes(15))
      .SlidingWindowOf(Minutes(30), Minutes(15))
      .Percentile(NumericField(DebsGenerator::kFareField), 0.95)
      .GroupBy(KeyField(DebsGenerator::kRouteField))
      .SetBudget(Budget::Tuples(20000))
      .Error(0.10, 0.95);
  const auto approx = DecodeGrouped(MustRun(spear).output);

  ASSERT_FALSE(exact.empty());
  ASSERT_EQ(exact.size(), approx.size());
  // Route-determined fares: the p95 per route is tight, so even sampled
  // estimates must land near the exact value.
  std::size_t far_off = 0;
  for (const auto& [key, value] : approx) {
    if (RelativeError(value, exact.at(key)) > 0.15) ++far_off;
  }
  EXPECT_LE(far_off, exact.size() / 10);
}

TEST(EndToEndTest, ByteDenominatedBudgetWorksEndToEnd) {
  SpearTopologyBuilder b;
  b.Source(DecSpout(Minutes(2)), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Median(NumericField(DecGenerator::kSizeField))
      .SetBudget(Budget::Bytes(8 * 1024))  // 1022 sample elements
      .Error(0.10, 0.95);
  const RunReport report = MustRun(b);
  EXPECT_GT(report.output.size(), 3u);
  // Every window expedited: 1022 elements clear the ~96-element bound.
  for (const Tuple& t : report.output) {
    EXPECT_EQ(t.field(ResultTupleLayout::kScalarApprox).AsInt64(), 1);
  }
}

TEST(EndToEndTest, KitchenSinkStress) {
  // Everything at once: grouped CQ, 8 parallel workers, spill-constrained
  // buffers, bounded out-of-orderness, adaptive budget. The run must
  // complete, produce every group, and keep results near the exact run.
  GcmGenerator::Config config;
  config.duration = Minutes(10);
  auto tuples = GcmGenerator::Generate(config);
  // Bounded shuffle: swap adjacent pairs.
  for (std::size_t i = 0; i + 1 < tuples.size(); i += 2) {
    std::swap(tuples[i], tuples[i + 1]);
  }

  SecondaryStorage storage;
  SpearTopologyBuilder storm;
  storm
      .Source(std::make_shared<VectorSpout>(tuples), Minutes(1),
              /*max_lateness=*/Seconds(5))
      .SlidingWindowOf(Minutes(2), Minutes(1))
      .Mean(NumericField(GcmGenerator::kCpuField))
      .GroupBy(KeyField(GcmGenerator::kClassField))
      .Parallelism(8)
      .Engine(ExecutionEngine::kExact);
  const auto exact = DecodeGrouped(MustRun(storm).output);

  SpearTopologyBuilder spear;
  spear
      .Source(std::make_shared<VectorSpout>(tuples), Minutes(1),
              /*max_lateness=*/Seconds(5))
      .SlidingWindowOf(Minutes(2), Minutes(1))
      .Mean(NumericField(GcmGenerator::kCpuField))
      .GroupBy(KeyField(GcmGenerator::kClassField))
      .SetBudget(Budget::Tuples(2000))
      .Error(0.10, 0.95)
      .KnownGroups(8)
      .AdaptiveBudget()
      .Parallelism(8)
      .SpillOver(/*memory_capacity=*/4000, &storage);
  const auto approx = DecodeGrouped(MustRun(spear).output);

  ASSERT_FALSE(exact.empty());
  ASSERT_EQ(exact.size(), approx.size());
  std::size_t violations = 0;
  for (const auto& [key, value] : approx) {
    ASSERT_TRUE(exact.count(key)) << key.second;
    if (RelativeError(value, exact.at(key)) > 0.10) ++violations;
  }
  EXPECT_LE(violations, exact.size() / 5);
  // Everything expired by end of stream: no leaked spill runs.
  EXPECT_EQ(storage.TotalTuples(), 0u);
}

TEST(EndToEndTest, SlidingCountWindowsAcrossEngines) {
  auto build = [&](ExecutionEngine engine) {
    SpearTopologyBuilder b;
    b.Source(DecSpout(Minutes(1)))
        .SlidingCountWindowOf(5000, 2500)
        .Median(NumericField(DecGenerator::kSizeField))
        .SetBudget(Budget::Tuples(150))
        .Error(0.10, 0.95)
        .Engine(engine);
    return MustRun(b).output;
  };
  const auto exact = build(ExecutionEngine::kExact);
  const auto spear = build(ExecutionEngine::kSpear);
  ASSERT_FALSE(exact.empty());
  EXPECT_EQ(exact.size(), spear.size());
}

TEST(EndToEndTest, GkEngineValidation) {
  SpearTopologyBuilder grouped_gk;
  grouped_gk.Source(DecSpout(Seconds(1)))
      .TumblingWindowOf(10)
      .Median(NumericField(1))
      .GroupBy(KeyField(0))
      .Engine(ExecutionEngine::kGkQuantile);
  EXPECT_TRUE(grouped_gk.Build().status().IsInvalid());

  SpearTopologyBuilder mean_gk;
  mean_gk.Source(DecSpout(Seconds(1)))
      .TumblingWindowOf(10)
      .Mean(NumericField(1))
      .Engine(ExecutionEngine::kGkQuantile);
  EXPECT_TRUE(mean_gk.Build().status().IsInvalid());
}

TEST(EndToEndTest, GkEngineMatchesRankSpec) {
  SpearTopologyBuilder b;
  b.Source(DecSpout(Minutes(2)), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Median(NumericField(DecGenerator::kSizeField))
      .Error(0.10, 0.95)
      .Engine(ExecutionEngine::kGkQuantile);
  const auto gk = DecodeScalar(MustRun(b).output);
  ASSERT_FALSE(gk.empty());
  for (const auto& [end, value_approx] : gk) {
    EXPECT_TRUE(value_approx.second);  // always approximate
    // DEC medians sit in the mid/MTU band; sanity-bound the values.
    EXPECT_GE(value_approx.first, 40.0);
    EXPECT_LE(value_approx.first, 1520.0);
  }
}

TEST(EndToEndTest, EngineNames) {
  EXPECT_STREQ(ExecutionEngineName(ExecutionEngine::kSpear), "SPEAr");
  EXPECT_STREQ(ExecutionEngineName(ExecutionEngine::kExact), "Storm");
  EXPECT_STREQ(ExecutionEngineName(ExecutionEngine::kIncremental),
               "Inc-Storm");
  EXPECT_STREQ(ExecutionEngineName(ExecutionEngine::kCountMin), "CountMin");
}

}  // namespace
}  // namespace spear
