#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "core/spear_topology_builder.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"
#include "runtime/windowed_bolt.h"

/// \file overload_chaos_test.cc
/// Combined overload + crash chaos: a seeded FaultPlan crashes the
/// stateful worker while accuracy-aware shedding is active. The restored
/// worker must resume shed accounting from its snapshot — shed counts are
/// part of the checkpointed budget state — and every emitted window's
/// ε̂_w claim (shed loss and replay loss folded in) must still hold
/// against an exact offline recompute of the full stream.
///
/// scripts/check_overload.sh sweeps SPEAR_OVERLOAD_SEED to move the crash
/// points across runs.

namespace spear {
namespace {

std::uint64_t OverloadSeed() {
  const char* env = std::getenv("SPEAR_OVERLOAD_SEED");
  if (env == nullptr) return 7;
  return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
}

std::vector<Tuple> ChaosStream(int n) {
  std::vector<Tuple> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double v = 50.0 + static_cast<double>((i * 37) % 101);
    out.emplace_back(i, std::vector<Value>{Value(v)});
  }
  return out;
}

std::map<std::int64_t, double> ExactWindowMeans(int n, std::int64_t range) {
  std::map<std::int64_t, std::pair<double, std::int64_t>> acc;
  for (int i = 0; i < n; ++i) {
    const double v = 50.0 + static_cast<double>((i * 37) % 101);
    auto& [sum, count] = acc[(i / range) * range];
    sum += v;
    ++count;
  }
  std::map<std::int64_t, double> means;
  for (const auto& [start, sc] : acc) {
    means[start] = sc.first / static_cast<double>(sc.second);
  }
  return means;
}

TEST(OverloadChaosTest, CrashWhileSheddingResumesAccountingAndHoldsClaims) {
  const int n = 20000;
  const std::int64_t range = 1000;
  const std::uint64_t seed = OverloadSeed();

  FaultPlan plan;
  plan.seed = seed;
  FaultRule crash;
  crash.site = FaultSite::kWorkerCrash;
  // Seed-dependent crash points, always past the first snapshot.
  crash.every_nth = 900 + seed % 211;
  crash.max_fires = 2;
  plan.Add(crash);
  ASSERT_TRUE(plan.Validate().ok());
  FaultInjector injector(plan);

  CheckpointConfig ckpt;
  ckpt.interval = 100;

  ShedPolicy always_shed;
  always_shed.queue_high_watermark = 0.0;  // tripped on every observation
  always_shed.shed_step = 0.1;
  always_shed.max_shed_probability = 0.1;

  SpearTopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(ChaosStream(n)),
                 /*watermark_interval=*/50)
      .TumblingWindowOf(range)
      .Mean(NumericField(0))
      .SetBudget(Budget::Tuples(256))
      .Error(0.25, 0.95)
      .Parallelism(1)
      .LatencySlo(50)
      .Shed(always_shed)
      .InjectFaults(&injector)
      .Checkpoint(ckpt);
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Every crash recovered, and shedding stayed active across the restore.
  const std::uint64_t crashes = injector.fired(FaultSite::kWorkerCrash);
  EXPECT_GE(crashes, 1u);
  EXPECT_EQ(report->recoveries, crashes);
  EXPECT_GT(report->faults.snapshots, 0u);
  EXPECT_GT(report->overload.tuples_shed, 0u);

  // Exactly-once window delivery despite crash + shed.
  std::map<std::int64_t, std::size_t> per_window;
  for (const Tuple& t : report->output) {
    ++per_window[t.field(ResultTupleLayout::kStart).AsInt64()];
  }
  ASSERT_EQ(per_window.size(), static_cast<std::size_t>(n / range));
  for (const auto& [start, copies] : per_window) {
    EXPECT_EQ(copies, 1u) << "window " << start;
  }

  // The load-bearing claim: with shed loss and any replay-gap loss folded
  // into ε̂_w, every window the engine does NOT flag as degraded verifies
  // against the exact offline recompute of the full stream. The 0.05
  // slack absorbs the estimator's confidence level.
  const auto exact = ExactWindowMeans(n, range);
  for (const Tuple& t : report->output) {
    const bool degraded =
        t.field(ResultTupleLayout::kScalarDegraded).AsInt64() == 1;
    if (degraded) continue;
    const std::int64_t start = t.field(ResultTupleLayout::kStart).AsInt64();
    const double est = t.field(ResultTupleLayout::kScalarValue).AsDouble();
    const double eps_hat =
        t.field(ResultTupleLayout::kScalarError).AsDouble();
    EXPECT_LE(eps_hat, 0.25 + 1e-9);
    const double truth = exact.at(start);
    EXPECT_LE(std::abs(est - truth) / std::abs(truth), eps_hat + 0.05)
        << "window " << start;
  }
}

// Snapshot round-trip of shed state in isolation from thread timing: the
// deterministic always-shed run with checkpointing enabled but no crash
// must account for every tuple exactly once, same as without snapshots.
TEST(OverloadChaosTest, CheckpointingDoesNotDoubleCountShedTuples) {
  const int n = 8000;
  DecisionStatsCollector collector;

  ShedPolicy always_shed;
  always_shed.queue_high_watermark = 0.0;
  always_shed.shed_step = 0.1;
  always_shed.max_shed_probability = 0.1;

  CheckpointConfig ckpt;
  ckpt.interval = 100;

  SpearTopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(ChaosStream(n)),
                 /*watermark_interval=*/50)
      .TumblingWindowOf(1000)
      .Mean(NumericField(0))
      .SetBudget(Budget::Tuples(256))
      .Error(0.25, 0.95)
      .Parallelism(1)
      .LatencySlo(50)
      .Shed(always_shed)
      .Checkpoint(ckpt)
      .CollectDecisions(&collector);
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->faults.snapshots, 0u);

  const DecisionStats total = collector.Total();
  EXPECT_EQ(total.tuples_seen + total.tuples_shed,
            static_cast<std::uint64_t>(n));
  EXPECT_GT(total.tuples_shed, 0u);
  EXPECT_EQ(report->overload.tuples_shed, total.tuples_shed);
}

}  // namespace
}  // namespace spear
