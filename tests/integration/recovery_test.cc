#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "core/spear_topology_builder.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"
#include "runtime/windowed_bolt.h"

/// \file recovery_test.cc
/// The PR's acceptance scenario: seeded crash-chaos. kWorkerCrash kills
/// stateful workers mid-run; with checkpointing enabled the run completes,
/// every window is answered exactly once, recovered windows either meet
/// ε or are flagged, and the recovery count matches the injected crashes.
/// With checkpointing disabled, the same plan fails the run — the
/// subsystem is load-bearing.
///
/// scripts/check_recovery.sh sweeps SPEAR_RECOVERY_SEED to vary the crash
/// points across runs.

namespace spear {
namespace {

std::uint64_t RecoverySeed() {
  const char* env = std::getenv("SPEAR_RECOVERY_SEED");
  if (env == nullptr) return 7;
  return static_cast<std::uint64_t>(std::strtoull(env, nullptr, 10));
}

std::vector<Tuple> RecoveryStream(int n) {
  std::vector<Tuple> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double v = static_cast<double>((i * 37) % 101);
    out.emplace_back(i, std::vector<Value>{Value(v)});
  }
  return out;
}

void ConfigureRecoveryQuery(SpearTopologyBuilder& builder, int n) {
  builder.Source(std::make_shared<VectorSpout>(RecoveryStream(n)),
                 /*watermark_interval=*/50)
      .TumblingWindowOf(100)
      .Mean(NumericField(0))
      .SetBudget(Budget::Tuples(32))
      .Error(0.20, 0.95)
      .Parallelism(2);
}

FaultPlan CrashPlan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  FaultRule crash;
  crash.site = FaultSite::kWorkerCrash;
  // Deterministic fire count at seed-dependent crash points, always well
  // past the first snapshot (first windows close around tuple ~150).
  crash.every_nth = 700 + seed % 211;
  crash.max_fires = 3;
  plan.Add(crash);
  return plan;
}

using WindowKey = std::pair<std::int64_t, std::int64_t>;

std::map<WindowKey, std::vector<double>> WindowValues(
    const std::vector<Tuple>& output) {
  std::map<WindowKey, std::vector<double>> by_window;
  for (const Tuple& t : output) {
    const WindowKey key{t.field(ResultTupleLayout::kStart).AsInt64(),
                        t.field(ResultTupleLayout::kEnd).AsInt64()};
    by_window[key].push_back(
        t.field(ResultTupleLayout::kScalarValue).AsDouble());
  }
  for (auto& [key, values] : by_window) std::sort(values.begin(), values.end());
  return by_window;
}

TEST(RecoveryTest, CrashChaosRunMatchesCleanRunWithExactlyOnceWindows) {
  const int n = 4000;
  const std::uint64_t seed = RecoverySeed();

  SpearTopologyBuilder clean;
  ConfigureRecoveryQuery(clean, n);
  auto clean_report = Executor(std::move(*clean.Build())).Run();
  ASSERT_TRUE(clean_report.ok()) << clean_report.status().ToString();
  ASSERT_FALSE(clean_report->output.empty());

  FaultPlan plan = CrashPlan(seed);
  ASSERT_TRUE(plan.Validate().ok());
  FaultInjector injector(plan);

  CheckpointConfig ckpt;
  ckpt.interval = 100;
  SpearTopologyBuilder chaos;
  ConfigureRecoveryQuery(chaos, n);
  chaos.InjectFaults(&injector).Checkpoint(ckpt);
  auto chaos_report = Executor(std::move(*chaos.Build())).Run();
  ASSERT_TRUE(chaos_report.ok()) << chaos_report.status().ToString();

  // Every injected crash was recovered, and ≥ 2 workers died mid-run.
  const std::uint64_t crashes = injector.fired(FaultSite::kWorkerCrash);
  EXPECT_GE(crashes, 2u);
  EXPECT_EQ(chaos_report->recoveries, crashes);
  EXPECT_EQ(chaos_report->faults.worker_restarts, crashes);
  EXPECT_GT(chaos_report->faults.snapshots, 0u);

  // Exactly-once window delivery: each window appears once per stateful
  // worker (parallelism 2, shuffle round-robin feeds both), crash or not.
  const auto clean_windows = WindowValues(clean_report->output);
  const auto chaos_windows = WindowValues(chaos_report->output);
  ASSERT_EQ(chaos_windows.size(), clean_windows.size());
  for (const auto& [key, clean_values] : clean_windows) {
    ASSERT_EQ(clean_values.size(), 2u)
        << "window [" << key.first << "," << key.second << ")";
    auto it = chaos_windows.find(key);
    ASSERT_NE(it, chaos_windows.end())
        << "window [" << key.first << "," << key.second << ") missing";
    ASSERT_EQ(it->second.size(), 2u)
        << "window [" << key.first << "," << key.second
        << ") not answered exactly once per worker";
    // Full replay (no log overflow) rebuilds the incremental accumulators
    // tuple for tuple: recovered means still equal the clean run.
    for (std::size_t w = 0; w < 2; ++w) {
      EXPECT_DOUBLE_EQ(it->second[w], clean_values[w])
          << "window [" << key.first << "," << key.second << ")";
    }
  }

  // Accuracy accounting: every window either meets ε or is flagged.
  std::uint64_t recovered_flags = 0;
  for (const Tuple& t : chaos_report->output) {
    const double eps_hat =
        t.field(ResultTupleLayout::kScalarError).AsDouble();
    const bool degraded =
        t.field(ResultTupleLayout::kScalarDegraded).AsInt64() == 1;
    if (!degraded) {
      EXPECT_LE(eps_hat, 0.20 + 1e-9);
    }
    recovered_flags += static_cast<std::uint64_t>(
        t.field(ResultTupleLayout::kScalarRecovered).AsInt64());
  }
  // Crashes land long after the first snapshot, so at least one restored
  // window reaches the output carrying its recovered flag.
  EXPECT_GE(recovered_flags, 1u);
}

// The load-bearing negative: the same crash plan without checkpointing
// must fail the run — recovery is doing real work above, not the fault
// being cosmetic.
TEST(RecoveryTest, SameCrashPlanWithoutCheckpointingFailsTheRun) {
  const int n = 4000;
  FaultPlan plan = CrashPlan(RecoverySeed());
  FaultInjector injector(plan);

  SpearTopologyBuilder builder;
  ConfigureRecoveryQuery(builder, n);
  builder.InjectFaults(&injector);  // no .Checkpoint(...)
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsInternal());
  EXPECT_NE(report.status().message().find("worker crash"),
            std::string::npos);
}

// A worker whose recovery budget is exhausted stops recovering and fails
// the run with a diagnosable error.
TEST(RecoveryTest, RecoveryBudgetExhaustionCancelsTheRun) {
  const int n = 4000;
  FaultPlan plan;
  plan.seed = 1;
  FaultRule crash;
  crash.site = FaultSite::kWorkerCrash;
  crash.every_nth = 200;  // crashes keep coming
  plan.Add(crash);
  FaultInjector injector(plan);

  CheckpointConfig ckpt;
  ckpt.interval = 100;
  ckpt.max_recoveries_per_worker = 2;
  SpearTopologyBuilder builder;
  ConfigureRecoveryQuery(builder, n);
  builder.InjectFaults(&injector).Checkpoint(ckpt);
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.status().message().find("recovery budget exhausted"),
            std::string::npos);
}

// A crushed replay log forces lossy recovery: the run still completes
// and the loss surfaces as flagged windows with inflated ε̂, not as
// silently wrong results. The snapshot interval is effectively infinite
// (one snapshot at the first watermark, never again), so wherever a
// crash lands — thread interleaving moves the exact tick a worker dies
// at — the gap back to the snapshot dwarfs the 4-tuple replay log and
// loss is guaranteed.
TEST(RecoveryTest, LossyRecoveryFlagsWindowsInsteadOfLyingAboutThem) {
  const int n = 4000;
  FaultPlan plan = CrashPlan(3);
  FaultInjector injector(plan);

  CheckpointConfig ckpt;
  ckpt.interval = 1'000'000'000;
  ckpt.max_replay_tuples = 4;  // nearly everything since the snapshot is lost
  SpearTopologyBuilder builder;
  ConfigureRecoveryQuery(builder, n);
  builder.InjectFaults(&injector).Checkpoint(ckpt);
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->recoveries, injector.fired(FaultSite::kWorkerCrash));

  std::uint64_t flagged = 0;
  for (const Tuple& t : report->output) {
    if (t.field(ResultTupleLayout::kScalarRecovered).AsInt64() == 1) {
      ++flagged;
      const bool degraded =
          t.field(ResultTupleLayout::kScalarDegraded).AsInt64() == 1;
      const double eps_hat =
          t.field(ResultTupleLayout::kScalarError).AsDouble();
      EXPECT_TRUE(degraded || eps_hat <= 0.20 + 1e-9);
    }
  }
  EXPECT_GE(flagged, 1u);
  EXPECT_GT(report->faults.degraded_windows, 0u);
}

// Checkpoint builder validation: count-based windows and non-replayable
// sources are rejected up front.
TEST(RecoveryTest, BuilderRejectsUncheckpointablePlans) {
  CheckpointConfig ckpt;
  SpearTopologyBuilder count_based;
  count_based.Source(std::make_shared<VectorSpout>(RecoveryStream(100)))
      .TumblingCountWindowOf(10)
      .Mean(NumericField(0))
      .Checkpoint(ckpt);
  EXPECT_FALSE(count_based.Build().ok());

  auto opaque = std::make_shared<GeneratorSpout>([](Tuple*) { return false; });
  SpearTopologyBuilder unreplayable;
  unreplayable.Source(opaque, 50)
      .TumblingWindowOf(100)
      .Mean(NumericField(0))
      .Checkpoint(ckpt);
  EXPECT_FALSE(unreplayable.Build().ok());
}

// Satellite: the dead-letter channel is bounded. A run with more poison
// tuples than the cap retains exactly `cap` of them, counts the overflow,
// and still quarantines (rather than fails) every one.
TEST(RecoveryTest, DeadLetterChannelIsBounded) {
  const int n = 2000;
  FaultPlan plan;
  plan.seed = 5;
  FaultRule poison;
  poison.site = FaultSite::kSpoutMalformed;
  poison.every_nth = 100;  // 20 poison tuples
  plan.Add(poison);
  FaultInjector injector(plan);

  SpearTopologyBuilder builder;
  ConfigureRecoveryQuery(builder, n);
  builder.ValidateTuples(RequireNumericFields({0}))
      .InjectFaults(&injector)
      .DeadLetterCap(4);
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const std::uint64_t poisoned = injector.fired(FaultSite::kSpoutMalformed);
  ASSERT_GT(poisoned, 4u);
  EXPECT_EQ(report->dead_letters.size(), 4u);
  EXPECT_EQ(report->dead_letters_dropped, poisoned - 4);
  EXPECT_EQ(report->faults.quarantined, poisoned);
}

// Supervision must be free when nothing crashes: a checkpointed run with
// no faults produces byte-identical per-window values to the plain run.
TEST(RecoveryTest, CheckpointingAloneDoesNotChangeResults) {
  const int n = 2000;
  SpearTopologyBuilder plain;
  ConfigureRecoveryQuery(plain, n);
  auto plain_report = Executor(std::move(*plain.Build())).Run();
  ASSERT_TRUE(plain_report.ok());

  CheckpointConfig ckpt;
  ckpt.interval = 100;
  SpearTopologyBuilder checkpointed;
  ConfigureRecoveryQuery(checkpointed, n);
  checkpointed.Checkpoint(ckpt);
  auto ckpt_report = Executor(std::move(*checkpointed.Build())).Run();
  ASSERT_TRUE(ckpt_report.ok());

  EXPECT_EQ(ckpt_report->recoveries, 0u);
  EXPECT_GT(ckpt_report->faults.snapshots, 0u);
  const auto plain_windows = WindowValues(plain_report->output);
  const auto ckpt_windows = WindowValues(ckpt_report->output);
  EXPECT_EQ(plain_windows, ckpt_windows);
}

// Snapshots can land in a file-backed store and drive recovery from disk.
TEST(RecoveryTest, FileBackedStoreSupportsRecovery) {
  const int n = 4000;
  const std::string dir = ::testing::TempDir() + "/recovery_file_store";
  FileCheckpointStore store(dir);

  FaultPlan plan = CrashPlan(9);
  FaultInjector injector(plan);
  CheckpointConfig ckpt;
  ckpt.interval = 100;
  ckpt.store = &store;

  SpearTopologyBuilder builder;
  ConfigureRecoveryQuery(builder, n);
  builder.InjectFaults(&injector).Checkpoint(ckpt);
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->recoveries, injector.fired(FaultSite::kWorkerCrash));
  EXPECT_GE(report->recoveries, 2u);
  // The stateful workers' snapshot files exist on disk.
  Result<CheckpointSnapshot> latest = store.Latest("stateful", 0);
  EXPECT_TRUE(latest.ok()) << latest.status().ToString();
}

}  // namespace
}  // namespace spear
