#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <utility>
#include <memory>
#include <string>
#include <vector>

#include "core/spear_topology_builder.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"
#include "runtime/windowed_bolt.h"
#include "storage/secondary_storage.h"

/// \file overload_test.cc
/// The overload-control acceptance scenarios:
///   - accuracy-aware shedding keeps exact tuple accounting and every
///     non-degraded window's claim verifies against an offline exact
///     recompute of the *full* (pre-shed) stream;
///   - under genuine 2x over-capacity ingest the subsystem keeps the run
///     flowing by shedding, while the same plan without it backpressures;
///   - the watermark watchdog converts an injected indefinite kSpoutStall
///     into a degraded emission instead of a hung DAG;
///   - a deadline-bounded exact fallback aborts cooperatively and emits
///     the window approximate + degraded, never losing it.

namespace spear {
namespace {

std::vector<Tuple> OverloadStream(int n) {
  std::vector<Tuple> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double v = 50.0 + static_cast<double>((i * 37) % 101);
    out.emplace_back(i, std::vector<Value>{Value(v)});
  }
  return out;
}

/// Offline exact per-window means of the full stream (what the engine
/// would answer with no shedding, no sampling, no loss).
std::map<std::int64_t, double> ExactWindowMeans(int n, std::int64_t range) {
  std::map<std::int64_t, std::pair<double, std::int64_t>> acc;
  for (int i = 0; i < n; ++i) {
    const double v = 50.0 + static_cast<double>((i * 37) % 101);
    auto& [sum, count] = acc[(i / range) * range];
    sum += v;
    ++count;
  }
  std::map<std::int64_t, double> means;
  for (const auto& [start, sc] : acc) {
    means[start] = sc.first / static_cast<double>(sc.second);
  }
  return means;
}

using WindowKey = std::pair<std::int64_t, std::int64_t>;

std::map<WindowKey, std::vector<double>> WindowValues(
    const std::vector<Tuple>& output) {
  std::map<WindowKey, std::vector<double>> by_window;
  for (const Tuple& t : output) {
    const WindowKey key{t.field(ResultTupleLayout::kStart).AsInt64(),
                        t.field(ResultTupleLayout::kEnd).AsInt64()};
    by_window[key].push_back(
        t.field(ResultTupleLayout::kScalarValue).AsDouble());
  }
  return by_window;
}

ShedPolicy AlwaysTrippedPolicy(double p) {
  // queue_high_watermark 0 trips on every queue observation, and
  // step == max pins the shed probability at `p` whenever tripped.
  ShedPolicy policy;
  policy.queue_high_watermark = 0.0;
  policy.shed_step = p;
  policy.max_shed_probability = p;
  return policy;
}

// Shedding with accounting: every admitted-or-shed tuple is counted
// exactly once, the shed loss surfaces in ε̂_w, and every window the
// engine does NOT flag as degraded really is within its widened bound of
// the exact answer over the full stream — sheds and all.
TEST(OverloadTest, ShedAccountingUpholdsAccuracyClaims) {
  const int n = 40000;
  const std::int64_t range = 1000;
  DecisionStatsCollector collector;

  SpearTopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(OverloadStream(n)),
                 /*watermark_interval=*/50)
      .TumblingWindowOf(range)
      .Mean(NumericField(0))
      .SetBudget(Budget::Tuples(256))
      .Error(0.25, 0.95)
      .Parallelism(1)
      .LatencySlo(50)
      .Shed(AlwaysTrippedPolicy(0.15))
      .CollectDecisions(&collector);
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Exact accounting: each input tuple was either ingested or shed.
  const DecisionStats total = collector.Total();
  EXPECT_EQ(total.tuples_seen + total.tuples_shed,
            static_cast<std::uint64_t>(n));
  EXPECT_GT(total.tuples_shed, 0u);
  EXPECT_EQ(report->overload.tuples_shed, total.tuples_shed);
  EXPECT_EQ(report->overload.windows_shed_loss, total.windows_shed);
  EXPECT_GT(report->overload.windows_shed_loss, 0u);

  // Accuracy claims against the offline exact recompute. The 0.05 slack
  // absorbs the sampling estimator's own confidence level (ε̂ holds with
  // probability α, not always).
  const auto exact = ExactWindowMeans(n, range);
  ASSERT_EQ(report->output.size(), exact.size());
  for (const Tuple& t : report->output) {
    const std::int64_t start = t.field(ResultTupleLayout::kStart).AsInt64();
    const double est = t.field(ResultTupleLayout::kScalarValue).AsDouble();
    const double eps_hat =
        t.field(ResultTupleLayout::kScalarError).AsDouble();
    const bool degraded =
        t.field(ResultTupleLayout::kScalarDegraded).AsInt64() == 1;
    if (degraded) continue;
    EXPECT_LE(eps_hat, 0.25 + 1e-9);
    const double truth = exact.at(start);
    EXPECT_LE(std::abs(est - truth) / std::abs(truth), eps_hat + 0.05)
        << "window " << start;
  }
}

void ConfigureOverCapacityQuery(SpearTopologyBuilder& builder, int n,
                                SecondaryStorage* storage) {
  builder.Source(std::make_shared<VectorSpout>(OverloadStream(n)),
                 /*watermark_interval=*/50)
      .TumblingWindowOf(500)
      .Mean(NumericField(0))
      .SetBudget(Budget::Tuples(128))
      .Error(0.25, 0.95)
      .Parallelism(1)
      .QueueCapacity(64)
      .SpillOver(48, storage);
}

// Genuine sustained over-capacity ingest: the stateful stage pays
// simulated storage latency per spill, the source does not. With overload
// control the run sheds its way back to capacity; without it the only
// relief valve is backpressure, which the blocked-push metric must show.
TEST(OverloadTest, OverCapacityIngestShedsWithControlAndBlocksWithout) {
  const int n = 10000;

  SecondaryStorage slow_on(StorageLatencyModel{100'000, 2'000});
  SpearTopologyBuilder on;
  ConfigureOverCapacityQuery(on, n, &slow_on);
  on.LatencySlo(1).Shed(ShedPolicy{/*queue_high_watermark=*/0.5,
                                   /*shed_step=*/0.3,
                                   /*shed_decay=*/0.9,
                                   /*max_shed_probability=*/0.9});
  auto on_report = Executor(std::move(*on.Build())).Run();
  ASSERT_TRUE(on_report.ok()) << on_report.status().ToString();
  EXPECT_GT(on_report->overload.tuples_shed, 0u);

  SecondaryStorage slow_off(StorageLatencyModel{100'000, 2'000});
  SpearTopologyBuilder off;
  ConfigureOverCapacityQuery(off, n, &slow_off);
  auto off_report = Executor(std::move(*off.Build())).Run();
  ASSERT_TRUE(off_report.ok()) << off_report.status().ToString();
  EXPECT_EQ(off_report->overload.tuples_shed, 0u);
  EXPECT_GT(off_report->overload.backpressure_wait_ns, 0);

  // Shedding drops tuples, never windows: both runs answer the same set.
  EXPECT_EQ(WindowValues(on_report->output).size(),
            WindowValues(off_report->output).size());
}

FaultPlan StallPlan(std::int64_t stall_bound_ns) {
  FaultPlan plan;
  plan.seed = 11;
  FaultRule stall;
  stall.site = FaultSite::kSpoutStall;
  stall.every_nth = 7000;
  stall.max_fires = 1;
  stall.extra_latency_ns = stall_bound_ns;  // 0 = stalled until cancelled
  plan.Add(stall);
  return plan;
}

// An indefinitely stalled source would hang the DAG forever; the
// watchdog declares it stalled after the idle timeout, closes the stream
// abnormally, and the open windows emit degraded instead of never.
TEST(OverloadTest, WatchdogClosesStalledSourceWithDegradedEmission) {
  const int n = 10000;

  SpearTopologyBuilder clean;
  clean.Source(std::make_shared<VectorSpout>(OverloadStream(n)),
               /*watermark_interval=*/50)
      .TumblingWindowOf(1000)
      .Mean(NumericField(0))
      .SetBudget(Budget::Tuples(64))
      .Error(0.20, 0.95);
  auto clean_report = Executor(std::move(*clean.Build())).Run();
  ASSERT_TRUE(clean_report.ok()) << clean_report.status().ToString();

  FaultPlan plan = StallPlan(/*stall_bound_ns=*/0);
  ASSERT_TRUE(plan.Validate().ok());
  FaultInjector injector(plan);
  SpearTopologyBuilder stalled;
  stalled.Source(std::make_shared<VectorSpout>(OverloadStream(n)),
                 /*watermark_interval=*/50)
      .TumblingWindowOf(1000)
      .Mean(NumericField(0))
      .SetBudget(Budget::Tuples(64))
      .Error(0.20, 0.95)
      .InjectFaults(&injector)
      .WatermarkWatchdog(100);
  auto report = Executor(std::move(*stalled.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(injector.fired(FaultSite::kSpoutStall), 1u);
  EXPECT_EQ(report->overload.watchdog_advances, 1u);

  // The truncated stream answers fewer windows than the clean run, and
  // the windows open at the stall are flagged, not silently wrong.
  const auto stalled_windows = WindowValues(report->output);
  const auto clean_windows = WindowValues(clean_report->output);
  EXPECT_LT(stalled_windows.size(), clean_windows.size());
  EXPECT_GE(stalled_windows.size(), 1u);
  std::uint64_t degraded = 0;
  for (const Tuple& t : report->output) {
    degraded += static_cast<std::uint64_t>(
        t.field(ResultTupleLayout::kScalarDegraded).AsInt64());
  }
  EXPECT_GE(degraded, 1u);
}

// The negative: a *bounded* stall is just latency. Without a watchdog the
// run rides it out and answers every window.
TEST(OverloadTest, BoundedStallWithoutWatchdogCompletesIntact) {
  const int n = 10000;
  FaultPlan plan = StallPlan(/*stall_bound_ns=*/300'000'000);
  FaultInjector injector(plan);

  SpearTopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(OverloadStream(n)),
                 /*watermark_interval=*/50)
      .TumblingWindowOf(1000)
      .Mean(NumericField(0))
      .SetBudget(Budget::Tuples(64))
      .Error(0.20, 0.95)
      .InjectFaults(&injector);
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(injector.fired(FaultSite::kSpoutStall), 1u);
  EXPECT_EQ(report->overload.watchdog_advances, 0u);
  EXPECT_EQ(WindowValues(report->output).size(),
            static_cast<std::size_t>(n / 1000));
}

// Deadline-bounded exact fallback: a tiny budget at a tight ε forces the
// exact path for every window (sampled mode — the incremental fast path
// would answer exactly without ever touching storage), and slow storage
// makes each fallback blow the deadline on its unspill. The abort is
// cooperative — the window is emitted from its budget state, approximate
// and degraded, never dropped.
TEST(OverloadTest, DeadlineAbortEmitsApproximateDegradedWindows) {
  const int n = 900;
  const std::int64_t range = 300;

  SecondaryStorage slow(StorageLatencyModel{2'000'000, 0});
  SpearTopologyBuilder bounded;
  bounded.Source(std::make_shared<VectorSpout>(OverloadStream(n)),
                 /*watermark_interval=*/50)
      .TumblingWindowOf(range)
      .Mean(NumericField(0))
      .DisableIncrementalOptimization()
      .SetBudget(Budget::Tuples(4))
      .Error(0.05, 0.95)
      .SpillOver(64, &slow)
      .ExactDeadline(1);
  auto report = Executor(std::move(*bounded.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->overload.deadline_aborts, 1u);

  const auto windows = WindowValues(report->output);
  EXPECT_EQ(windows.size(), static_cast<std::size_t>(n / range));
  std::uint64_t degraded_approx = 0;
  for (const Tuple& t : report->output) {
    const bool approx =
        t.field(ResultTupleLayout::kScalarApprox).AsInt64() == 1;
    const bool degraded =
        t.field(ResultTupleLayout::kScalarDegraded).AsInt64() == 1;
    if (approx && degraded) ++degraded_approx;
  }
  EXPECT_GE(degraded_approx, report->overload.deadline_aborts);

  // Without the deadline the same plan runs every fallback to completion:
  // exact answers, zero aborts. (The tolerance is summation order — the
  // unspilled run is appended behind the in-memory suffix.)
  SecondaryStorage slow_unbounded(StorageLatencyModel{2'000'000, 0});
  SpearTopologyBuilder unbounded;
  unbounded.Source(std::make_shared<VectorSpout>(OverloadStream(n)),
                   /*watermark_interval=*/50)
      .TumblingWindowOf(range)
      .Mean(NumericField(0))
      .DisableIncrementalOptimization()
      .SetBudget(Budget::Tuples(4))
      .Error(0.05, 0.95)
      .SpillOver(64, &slow_unbounded);
  auto exact_report = Executor(std::move(*unbounded.Build())).Run();
  ASSERT_TRUE(exact_report.ok()) << exact_report.status().ToString();
  EXPECT_EQ(exact_report->overload.deadline_aborts, 0u);

  const auto exact = ExactWindowMeans(n, range);
  for (const Tuple& t : exact_report->output) {
    EXPECT_EQ(t.field(ResultTupleLayout::kScalarApprox).AsInt64(), 0);
    const std::int64_t start = t.field(ResultTupleLayout::kStart).AsInt64();
    EXPECT_NEAR(t.field(ResultTupleLayout::kScalarValue).AsDouble(),
                exact.at(start), 1e-6);
  }
}

}  // namespace
}  // namespace spear
