#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/spear_topology_builder.h"
#include "core/spear_window_manager.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"
#include "storage/secondary_storage.h"
#include "tuple/serde.h"

namespace spear {
namespace {

/// A deterministic numeric stream: event_time = i ms, one double field.
std::vector<Tuple> ChaosStream(int n) {
  std::vector<Tuple> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double v = static_cast<double>((i * 37) % 101);
    out.emplace_back(i, std::vector<Value>{Value(v)});
  }
  return out;
}

RetryPolicy FastRetry(int max_attempts) {
  RetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.initial_backoff_ns = 10'000;  // 10 us — keep tests fast
  policy.max_backoff_ns = 100'000;
  return policy;
}

void ConfigureQuery(SpearTopologyBuilder& builder, int n,
                    SecondaryStorage* storage) {
  builder.Source(std::make_shared<VectorSpout>(ChaosStream(n)),
                 /*watermark_interval=*/50)
      .TumblingWindowOf(100)
      .Mean(NumericField(0))
      .SetBudget(Budget::Tuples(32))
      .Error(0.20, 0.95)
      .ValidateTuples(RequireNumericFields({0}))
      .SpillOver(/*memory_capacity=*/24, storage)
      .StorageRetry(FastRetry(4))
      .StageRetry(FastRetry(4))
      .Parallelism(1);
}

// The PR's acceptance scenario: a seeded chaos run — transient storage
// faults plus one poison tuple — must complete, quarantine the poison,
// recover every retried store, and produce byte-identical results to the
// fault-free run of the same query (injection only perturbs delivery,
// never the data the windows see).
TEST(ChaosTest, SeededChaosRunMatchesFaultFreeByteForByte) {
  const int n = 2000;

  SecondaryStorage clean_storage;
  SpearTopologyBuilder clean;
  ConfigureQuery(clean, n, &clean_storage);
  auto clean_report = Executor(std::move(*clean.Build())).Run();
  ASSERT_TRUE(clean_report.ok()) << clean_report.status().ToString();
  ASSERT_FALSE(clean_report->output.empty());

  FaultPlan plan;
  plan.seed = 7;
  FaultRule store_fault;
  store_fault.site = FaultSite::kStorageStore;
  store_fault.every_nth = 7;
  plan.Add(store_fault);
  FaultRule poison;
  poison.site = FaultSite::kSpoutMalformed;
  poison.every_nth = 997;
  poison.max_fires = 1;
  plan.Add(poison);
  ASSERT_TRUE(plan.Validate().ok());
  FaultInjector injector(plan);

  SecondaryStorage chaos_storage;
  chaos_storage.InjectFaults(&injector);
  SpearTopologyBuilder chaos;
  ConfigureQuery(chaos, n, &chaos_storage);
  chaos.InjectFaults(&injector);
  auto chaos_report = Executor(std::move(*chaos.Build())).Run();
  ASSERT_TRUE(chaos_report.ok()) << chaos_report.status().ToString();

  // The poison tuple is quarantined, not lost in the window results.
  ASSERT_EQ(chaos_report->dead_letters.size(), 1u);
  const DeadLetter& dl = chaos_report->dead_letters[0];
  EXPECT_EQ(dl.stage, "stateful");
  EXPECT_TRUE(dl.error.IsInvalid());
  ASSERT_EQ(dl.tuple.num_fields(), 1u);
  ASSERT_TRUE(dl.tuple.field(0).is_string());
  EXPECT_EQ(dl.tuple.field(0).AsString(), "__poison__");

  EXPECT_GT(chaos_report->faults.injected, 0u);
  EXPECT_GT(chaos_report->faults.retries, 0u);
  EXPECT_GT(chaos_report->faults.recovered, 0u);
  EXPECT_EQ(chaos_report->faults.quarantined, 1u);
  EXPECT_EQ(chaos_report->faults.degraded_windows, 0u);

  // Every retried store eventually succeeded, so both runs spilled the
  // same tuples and computed the same windows: byte-identical output.
  EXPECT_EQ(EncodeBatch(chaos_report->output),
            EncodeBatch(clean_report->output));
}

// When the exact fallback is blocked (spilled state unavailable after
// retries), the window degrades to the budget-state estimate instead of
// failing the run, and the result is flagged.
TEST(ChaosTest, UnavailableSpillStateDegradesToApproximate) {
  FaultPlan plan;
  FaultRule get_fault;
  get_fault.site = FaultSite::kStorageGet;
  get_fault.probability = 1.0;  // S is down for reads, permanently
  plan.Add(get_fault);
  FaultInjector injector(plan);

  SecondaryStorage storage;
  storage.InjectFaults(&injector);

  SpearTopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(ChaosStream(1000)),
                 /*watermark_interval=*/50)
      .TumblingWindowOf(100)
      .Median(NumericField(0))
      .SetBudget(Budget::Tuples(16))
      .Error(0.0001, 0.95)  // unmeetable: every window wants exact fallback
      .SpillOver(/*memory_capacity=*/16, &storage)
      .StorageRetry(FastRetry(2))
      .Parallelism(1);
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->output.empty());
  EXPECT_TRUE(report->dead_letters.empty());
  EXPECT_GT(report->faults.degraded_windows, 0u);

  for (const Tuple& t : report->output) {
    EXPECT_EQ(t.field(ResultTupleLayout::kScalarApprox).AsInt64(), 1);
    EXPECT_EQ(t.field(ResultTupleLayout::kScalarDegraded).AsInt64(), 1);
    // ε̂_w documents the (unmet) accuracy of the degraded estimate.
    const double value = t.field(ResultTupleLayout::kScalarValue).AsDouble();
    EXPECT_TRUE(std::isfinite(value));
  }
}

// The converse degradation: when the budget state is corrupted, the
// window falls back to exact execution from the raw buffer.
TEST(ChaosTest, CorruptedBudgetStateFallsBackToExact) {
  SpearOperatorConfig config;
  config.window = WindowSpec::TumblingTime(100);
  config.aggregate = AggregateSpec::Median();
  config.budget = Budget::Tuples(8);
  config.accuracy = AccuracySpec{0.90, 0.95};  // would normally expedite

  SpearWindowManager manager(config, NumericField(0));
  for (int i = 0; i < 100; ++i) {
    manager.OnTuple(i, Tuple(i, {Value(static_cast<double>(i))}));
  }
  manager.CorruptBudgetForTesting();
  auto results = manager.OnWatermark(200);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 1u);
  const WindowResult& result = (*results)[0];
  EXPECT_FALSE(result.approximate);
  EXPECT_FALSE(result.degraded);
  EXPECT_DOUBLE_EQ(result.scalar, 49.5);  // exact (interpolated) median of 0..99
  EXPECT_EQ(manager.decision_stats().windows_exact, 1u);
}

// Duplicate and late tuples from the spout stress the window path but
// must never wedge or fail the run.
TEST(ChaosTest, DuplicateAndLateTuplesDoNotFailTheRun) {
  FaultPlan plan;
  FaultRule dup;
  dup.site = FaultSite::kSpoutDuplicate;
  dup.every_nth = 50;
  plan.Add(dup);
  FaultRule late;
  late.site = FaultSite::kSpoutLate;
  late.every_nth = 75;
  late.lateness_ms = 200;
  plan.Add(late);
  FaultInjector injector(plan);

  SpearTopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(ChaosStream(1000)),
                 /*watermark_interval=*/50, /*max_lateness=*/250)
      .TumblingWindowOf(100)
      .Mean(NumericField(0))
      .SetBudget(Budget::Tuples(32))
      .Error(0.20, 0.95)
      .InjectFaults(&injector)
      .Parallelism(1);
  auto report = Executor(std::move(*builder.Build())).Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->output.empty());
  EXPECT_GT(report->faults.injected, 0u);
  EXPECT_EQ(injector.total_fired(),
            injector.fired(FaultSite::kSpoutDuplicate) +
                injector.fired(FaultSite::kSpoutLate));
}

}  // namespace
}  // namespace spear
