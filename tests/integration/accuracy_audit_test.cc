#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "core/spear_topology_builder.h"
#include "core/spear_window_manager.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"
#include "runtime/windowed_bolt.h"
#include "sketch/count_min.h"

/// \file accuracy_audit_test.cc
/// Statistical audit of the (ε, α) guarantee: over hundreds of seeded
/// runs, the fraction of *expedited* windows whose TRUE error (recomputed
/// offline from the raw stream) stays within ε must be at least α, up to
/// binomial sampling slack. The audit runs per aggregate (sum / mean /
/// quantile / count-min), and again under load shedding and under
/// crash-recovery loss — the paths that widen ε̂_w. A guard test breaks
/// the loss accounting on purpose (IgnoreLossAccountingForTesting) and
/// asserts the audit DETECTS it: a test suite that cannot fail proves
/// nothing.

namespace spear {
namespace {

constexpr double kEpsilon = 0.10;
constexpr double kAlpha = 0.95;
constexpr int kSeeds = 200;

/// Lower confidence bound for an empirical coverage estimate: α minus
/// three binomial standard errors. A correct implementation dips below
/// this with probability ~1e-3; a broken one (coverage << α) lands far
/// under it.
double CoverageBound(double alpha, std::uint64_t n) {
  EXPECT_GT(n, 0u);
  return alpha - 3.0 * std::sqrt(alpha * (1.0 - alpha) /
                                 static_cast<double>(std::max<std::uint64_t>(
                                     n, 1)));
}

struct AuditTally {
  std::uint64_t expedited = 0;
  std::uint64_t within_epsilon = 0;
  std::uint64_t windows = 0;

  double coverage() const {
    return expedited == 0
               ? 0.0
               : static_cast<double>(within_epsilon) /
                     static_cast<double>(expedited);
  }
};

Tuple ScalarTuple(Timestamp t, double v) { return Tuple(t, {Value(v)}); }

/// One window's worth of positive values (relative error is well-defined
/// and scale-free), uniform in [50, 150).
std::vector<double> WindowValues(std::uint64_t seed, int n) {
  Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (int i = 0; i < n; ++i) values.push_back(50.0 + rng.NextDouble() * 100.0);
  return values;
}

double TrueAggregate(const AggregateSpec& spec,
                     const std::vector<double>& values) {
  double sum = 0.0;
  for (double v : values) sum += v;
  switch (spec.kind) {
    case AggregateKind::kSum:
      return sum;
    case AggregateKind::kMean:
      return sum / static_cast<double>(values.size());
    case AggregateKind::kCount:
      return static_cast<double>(values.size());
    default:
      ADD_FAILURE() << "unsupported aggregate in TrueAggregate";
      return 0.0;
  }
}

SpearOperatorConfig AuditConfig(const AggregateSpec& spec,
                                std::size_t budget, std::uint64_t seed) {
  SpearOperatorConfig config;
  config.window = WindowSpec::TumblingTime(1000);
  config.aggregate = spec;
  config.accuracy = AccuracySpec{kEpsilon, kAlpha};
  config.budget = Budget::Tuples(budget);
  config.incremental_optimization = false;  // exercise the sampled path
  config.seed = seed;
  return config;
}

/// Audits one closed window: counts it, and if it was expedited (genuine
/// estimate, no degradation) scores the TRUE relative error against ε.
void ScoreScalarWindow(const WindowResult& result, double truth,
                       AuditTally* tally) {
  ++tally->windows;
  if (!result.approximate || result.degraded) return;
  ++tally->expedited;
  const double rel_err = std::abs(result.scalar - truth) / std::abs(truth);
  if (rel_err <= kEpsilon) ++tally->within_epsilon;
}

// ---- plain expedited path: sum / mean ------------------------------------

void RunScalarAudit(const AggregateSpec& spec, AuditTally* tally) {
  const int n = 2000;
  const std::size_t budget = 400;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const auto values = WindowValues(seed, n);
    SpearWindowManager manager(AuditConfig(spec, budget, seed),
                               NumericField(0));
    for (int i = 0; i < n; ++i) {
      manager.OnTuple(i % 1000, ScalarTuple(i % 1000, values[i]));
    }
    auto results = manager.OnWatermark(1000);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_EQ(results->size(), 1u);
    ScoreScalarWindow((*results)[0], TrueAggregate(spec, values), tally);
  }
}

TEST(AccuracyAuditTest, SumMeetsEpsilonAlphaOverSeededRuns) {
  AuditTally tally;
  RunScalarAudit(AggregateSpec::Sum(), &tally);
  ASSERT_GE(tally.expedited, static_cast<std::uint64_t>(kSeeds) / 2)
      << "audit has no power: too few expedited windows";
  EXPECT_GE(tally.coverage(), CoverageBound(kAlpha, tally.expedited))
      << tally.within_epsilon << "/" << tally.expedited << " within ε";
}

TEST(AccuracyAuditTest, MeanMeetsEpsilonAlphaOverSeededRuns) {
  AuditTally tally;
  RunScalarAudit(AggregateSpec::Mean(), &tally);
  ASSERT_GE(tally.expedited, static_cast<std::uint64_t>(kSeeds) / 2);
  EXPECT_GE(tally.coverage(), CoverageBound(kAlpha, tally.expedited))
      << tally.within_epsilon << "/" << tally.expedited << " within ε";
}

// ---- quantile: rank-error audit ------------------------------------------

TEST(AccuracyAuditTest, MedianMeetsRankEpsilonOverSeededRuns) {
  const int n = 2000;
  const std::size_t budget = 300;  // > the ~185 the rank bound needs
  AuditTally tally;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    auto values = WindowValues(seed * 31 + 7, n);
    SpearWindowManager manager(
        AuditConfig(AggregateSpec::Median(), budget, seed), NumericField(0));
    for (int i = 0; i < n; ++i) {
      manager.OnTuple(i % 1000, ScalarTuple(i % 1000, values[i]));
    }
    auto results = manager.OnWatermark(1000);
    ASSERT_TRUE(results.ok());
    ASSERT_EQ(results->size(), 1u);
    const WindowResult& r = (*results)[0];
    ++tally.windows;
    if (!r.approximate || r.degraded) continue;
    ++tally.expedited;
    // Quantile accuracy is rank error: the estimate's rank interval in
    // the true window must intersect [φ - ε, φ + ε].
    std::sort(values.begin(), values.end());
    const auto lo = std::lower_bound(values.begin(), values.end(), r.scalar);
    const auto hi = std::upper_bound(values.begin(), values.end(), r.scalar);
    const double rank_lo =
        static_cast<double>(lo - values.begin()) / values.size();
    const double rank_hi =
        static_cast<double>(hi - values.begin()) / values.size();
    if (rank_hi >= 0.5 - kEpsilon && rank_lo <= 0.5 + kEpsilon) {
      ++tally.within_epsilon;
    }
  }
  ASSERT_GE(tally.expedited, static_cast<std::uint64_t>(kSeeds) / 2);
  EXPECT_GE(tally.coverage(), CoverageBound(kAlpha, tally.expedited))
      << tally.within_epsilon << "/" << tally.expedited << " within rank ε";
}

// ---- count-min: additive (ε, δ) audit ------------------------------------

TEST(AccuracyAuditTest, CountMinMeetsAdditiveEpsilonDeltaOverSeededRuns) {
  const double cm_epsilon = 0.01;
  const double cm_delta = 0.05;
  std::uint64_t queries = 0;
  std::uint64_t within = 0;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    auto sketch = CountMinSketch::Make(cm_epsilon, cm_delta, seed);
    ASSERT_TRUE(sketch.ok());
    Rng rng(seed * 17 + 3);
    std::map<std::string, double> truth;
    double l1 = 0.0;
    for (int i = 0; i < 3000; ++i) {
      // Skewed key popularity, the regime count-min is built for.
      const int k = static_cast<int>(std::pow(rng.NextDouble(), 2.0) * 50);
      const std::string key = "k" + std::to_string(k);
      sketch->Update(key);
      truth[key] += 1.0;
      l1 += 1.0;
    }
    for (const auto& [key, count] : truth) {
      ++queries;
      const double est = sketch->Estimate(key);
      EXPECT_GE(est, count - 1e-9) << "count-min must never underestimate";
      if (est - count <= cm_epsilon * l1 + 1e-9) ++within;
    }
  }
  const double coverage = static_cast<double>(within) / queries;
  EXPECT_GE(coverage, CoverageBound(1.0 - cm_delta, queries))
      << within << "/" << queries << " within εL1";
}

// ---- under load shedding --------------------------------------------------

/// Sheds every `shed_every`-th tuple at admission (deterministic, value-
/// independent — the uniform-drop regime the ε̂_w shed inflation models).
void RunShedAudit(const AggregateSpec& spec, int shed_every,
                  bool break_accounting, AuditTally* tally) {
  const int n = 2000;
  const std::size_t budget = 600;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const auto values = WindowValues(seed * 13 + 1, n);
    SpearWindowManager manager(AuditConfig(spec, budget, seed),
                               NumericField(0));
    if (break_accounting) manager.IgnoreLossAccountingForTesting();
    for (int i = 0; i < n; ++i) {
      const std::int64_t coord = i % 1000;
      if (i % shed_every == 0) {
        manager.OnTupleShed(coord);
      } else {
        manager.OnTuple(coord, ScalarTuple(coord, values[i]));
      }
    }
    auto results = manager.OnWatermark(1000);
    ASSERT_TRUE(results.ok());
    ASSERT_EQ(results->size(), 1u);
    // Truth covers the WHOLE window, shed tuples included: the guarantee
    // the user sees is about the stream, not the surviving subset.
    ScoreScalarWindow((*results)[0], TrueAggregate(spec, values), tally);
  }
}

TEST(AccuracyAuditTest, SumUnderSheddingMeetsEpsilonAlpha) {
  AuditTally tally;
  RunShedAudit(AggregateSpec::Sum(), /*shed_every=*/25,
               /*break_accounting=*/false, &tally);
  ASSERT_GE(tally.expedited, static_cast<std::uint64_t>(kSeeds) / 2)
      << "shed inflation pushed every window to the exact path";
  EXPECT_GE(tally.coverage(), CoverageBound(kAlpha, tally.expedited))
      << tally.within_epsilon << "/" << tally.expedited << " within ε";
}

TEST(AccuracyAuditTest, MeanUnderSheddingMeetsEpsilonAlpha) {
  AuditTally tally;
  RunShedAudit(AggregateSpec::Mean(), /*shed_every=*/25,
               /*break_accounting=*/false, &tally);
  ASSERT_GE(tally.expedited, static_cast<std::uint64_t>(kSeeds) / 2);
  EXPECT_GE(tally.coverage(), CoverageBound(kAlpha, tally.expedited));
}

// The guard: with the loss accounting disabled, heavy shedding makes Sum
// estimates stand for the admitted subset only (~half the stream), so
// expedited windows overshoot ε wildly — and this audit MUST see it.
// If this test ever fails, the audit has lost its power to detect broken
// ε̂_w accounting.
TEST(AccuracyAuditTest, GuardBrokenLossAccountingIsDetected) {
  AuditTally tally;
  RunShedAudit(AggregateSpec::Sum(), /*shed_every=*/2,
               /*break_accounting=*/true, &tally);
  // Without inflation the windows still expedite (sampling ε̂ is small)...
  ASSERT_GE(tally.expedited, static_cast<std::uint64_t>(kSeeds) / 2)
      << "guard lost its power: broken accounting no longer expedites";
  // ...but the true error is ~50% (the unaccounted shed mass), so the
  // coverage the honest audits require collapses.
  EXPECT_LT(tally.coverage(), CoverageBound(kAlpha, tally.expedited))
      << "audit failed to detect broken loss accounting";
  EXPECT_LT(tally.coverage(), 0.5);
}

// ---- under crash-recovery loss -------------------------------------------

// Snapshot at 60%, crash, restore, replay most of the suffix; the
// unreplayable remainder is charged via NoteRecoveryLoss. Expedited
// windows out of this cycle must still meet ε against the FULL stream.
TEST(AccuracyAuditTest, MeanUnderRecoveryLossMeetsEpsilonAlpha) {
  const int n = 2000;
  const int snapshot_at = static_cast<int>(n * 0.6);
  const int lost = n / 25;  // 4% of the window never replays
  AuditTally tally;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const auto values = WindowValues(seed * 7 + 5, n);
    SpearWindowManager manager(
        AuditConfig(AggregateSpec::Mean(), 600, seed), NumericField(0));
    for (int i = 0; i < snapshot_at; ++i) {
      manager.OnTuple(i % 1000, ScalarTuple(i % 1000, values[i]));
    }
    auto snapshot = manager.SnapshotState();
    ASSERT_TRUE(snapshot.ok());
    // Consume the suffix, then crash: state past the snapshot is gone.
    for (int i = snapshot_at; i < n; ++i) {
      manager.OnTuple(i % 1000, ScalarTuple(i % 1000, values[i]));
    }
    SpearWindowManager restored(
        AuditConfig(AggregateSpec::Mean(), 600, seed), NumericField(0));
    ASSERT_TRUE(restored.RestoreState(*snapshot).ok());
    // Replay what the bounded log retained; charge the rest as loss.
    for (int i = snapshot_at; i < n - lost; ++i) {
      restored.OnTuple(i % 1000, ScalarTuple(i % 1000, values[i]));
    }
    restored.NoteRecoveryLoss(lost);
    auto results = restored.OnWatermark(1000);
    ASSERT_TRUE(results.ok());
    ASSERT_EQ(results->size(), 1u);
    EXPECT_TRUE((*results)[0].recovered);
    ScoreScalarWindow((*results)[0],
                      TrueAggregate(AggregateSpec::Mean(), values), &tally);
  }
  ASSERT_GE(tally.expedited, static_cast<std::uint64_t>(kSeeds) / 2)
      << "recovery-loss inflation pushed every window to the exact path";
  EXPECT_GE(tally.coverage(), CoverageBound(kAlpha, tally.expedited))
      << tally.within_epsilon << "/" << tally.expedited << " within ε";
}

// ---- executor-level crash chaos (end-to-end, fewer seeds) -----------------

TEST(AccuracyAuditTest, CrashChaosEndToEndMeetsEpsilonAlpha) {
  const int kChaosSeeds = 20;
  const int n = 3000;
  AuditTally tally;
  for (int seed = 1; seed <= kChaosSeeds; ++seed) {
    Rng rng(seed * 101 + 11);
    std::vector<Tuple> stream;
    std::map<std::int64_t, std::vector<double>> truth;  // window start -> S_w
    stream.reserve(n);
    for (int i = 0; i < n; ++i) {
      const double v = 50.0 + rng.NextDouble() * 100.0;
      stream.emplace_back(i, std::vector<Value>{Value(v)});
      truth[(i / 100) * 100].push_back(v);
    }

    FaultPlan plan;
    plan.seed = seed;
    FaultRule crash;
    crash.site = FaultSite::kWorkerCrash;
    crash.every_nth = 500 + seed * 37 % 211;
    crash.max_fires = 2;
    plan.Add(crash);
    FaultInjector injector(plan);
    CheckpointConfig ckpt;
    ckpt.enabled = true;
    ckpt.interval = 100;

    SpearTopologyBuilder builder;
    builder.Source(std::make_shared<VectorSpout>(stream),
                   /*watermark_interval=*/50)
        .TumblingWindowOf(100)
        .Mean(NumericField(0))
        .SetBudget(Budget::Tuples(48))
        .Error(kEpsilon, kAlpha)
        .DisableIncrementalOptimization()
        .InjectFaults(&injector)
        .Checkpoint(ckpt);
    auto topology = builder.Build();
    ASSERT_TRUE(topology.ok()) << topology.status().ToString();
    auto report = Executor(std::move(*topology)).Run();
    ASSERT_TRUE(report.ok()) << report.status().ToString();

    for (const Tuple& t : report->output) {
      const std::int64_t start =
          t.field(ResultTupleLayout::kStart).AsInt64();
      const auto it = truth.find(start);
      ASSERT_NE(it, truth.end()) << "window " << start;
      double sum = 0.0;
      for (double v : it->second) sum += v;
      const double exact_mean = sum / it->second.size();
      ++tally.windows;
      const bool approx =
          t.field(ResultTupleLayout::kScalarApprox).AsInt64() == 1;
      const bool degraded =
          t.field(ResultTupleLayout::kScalarDegraded).AsInt64() == 1;
      if (!approx || degraded) continue;
      ++tally.expedited;
      const double est = t.field(ResultTupleLayout::kScalarValue).AsDouble();
      if (std::abs(est - exact_mean) / exact_mean <= kEpsilon) {
        ++tally.within_epsilon;
      }
    }
  }
  ASSERT_GE(tally.expedited, 30u) << "chaos audit has no power";
  EXPECT_GE(tally.coverage(), CoverageBound(kAlpha, tally.expedited))
      << tally.within_epsilon << "/" << tally.expedited << " within ε";
}

}  // namespace
}  // namespace spear
