#include "storage/file_storage.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace spear {
namespace {

class FileStorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("spear-spill-" + std::to_string(::getpid()) + "-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

Tuple T(Timestamp t, double v) { return Tuple(t, {Value(v), Value("k")}); }

TEST_F(FileStorageTest, OpenCreatesDirectory) {
  auto storage = FileSecondaryStorage::Open(dir_.string());
  ASSERT_TRUE(storage.ok());
  EXPECT_TRUE(std::filesystem::exists(dir_));
}

TEST_F(FileStorageTest, StoreGetRoundTrip) {
  auto storage = FileSecondaryStorage::Open(dir_.string());
  ASSERT_TRUE(storage.ok());
  ASSERT_TRUE(storage->Store("w1", T(1, 1.5)).ok());
  ASSERT_TRUE(storage->Store("w1", T(2, 2.5)).ok());
  auto run = storage->Get("w1");
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->size(), 2u);
  EXPECT_EQ((*run)[0].event_time(), 1);
  EXPECT_DOUBLE_EQ((*run)[1].field(0).AsDouble(), 2.5);
}

TEST_F(FileStorageTest, MissingKeyNotFound) {
  auto storage = FileSecondaryStorage::Open(dir_.string());
  EXPECT_TRUE(storage->Get("missing").status().IsNotFound());
  EXPECT_EQ(storage->CountFor("missing"), 0u);
}

TEST_F(FileStorageTest, BatchAndCount) {
  auto storage = FileSecondaryStorage::Open(dir_.string());
  ASSERT_TRUE(storage->StoreBatch("a", {T(1, 1), T(2, 2), T(3, 3)}).ok());
  EXPECT_EQ(storage->CountFor("a"), 3u);
  auto run = storage->Get("a");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->size(), 3u);
}

TEST_F(FileStorageTest, EraseRemovesRunFile) {
  auto storage = FileSecondaryStorage::Open(dir_.string());
  ASSERT_TRUE(storage->Store("a", T(1, 1)).ok());
  ASSERT_TRUE(storage->Erase("a").ok());
  EXPECT_EQ(storage->CountFor("a"), 0u);
  EXPECT_TRUE(storage->Get("a").status().IsNotFound());
  // Idempotent.
  EXPECT_TRUE(storage->Erase("a").ok());
}

TEST_F(FileStorageTest, SlashKeysFlattened) {
  auto storage = FileSecondaryStorage::Open(dir_.string());
  ASSERT_TRUE(storage->Store("spear-bolt-0/17", T(1, 1)).ok());
  auto run = storage->Get("spear-bolt-0/17");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->size(), 1u);
}

TEST_F(FileStorageTest, DiskBytesGrow) {
  auto storage = FileSecondaryStorage::Open(dir_.string());
  auto before = storage->DiskBytes();
  ASSERT_TRUE(before.ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(storage->Store("a", T(i, i)).ok());
  auto after = storage->DiskBytes();
  ASSERT_TRUE(after.ok());
  EXPECT_GT(*after, *before);
}

TEST_F(FileStorageTest, ManyKeysIndependent) {
  auto storage = FileSecondaryStorage::Open(dir_.string());
  for (int k = 0; k < 20; ++k) {
    for (int i = 0; i <= k; ++i) {
      ASSERT_TRUE(storage->Store("key" + std::to_string(k), T(i, i)).ok());
    }
  }
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(storage->CountFor("key" + std::to_string(k)),
              static_cast<std::size_t>(k + 1));
  }
}

}  // namespace
}  // namespace spear
