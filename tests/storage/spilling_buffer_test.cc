#include "storage/spilling_buffer.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

Tuple T(Timestamp t) { return Tuple(t, {Value(static_cast<double>(t))}); }

TEST(SpillingBufferTest, UnlimitedNeverSpills) {
  SpillingBuffer buf(0, nullptr, "k");
  for (int i = 0; i < 1000; ++i) buf.Append(T(i));
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(buf.spilled_size(), 0u);
  EXPECT_FALSE(buf.HasSpilled());
}

TEST(SpillingBufferTest, SpillsBeyondCapacity) {
  SecondaryStorage storage;
  SpillingBuffer buf(10, &storage, "k");
  for (int i = 0; i < 25; ++i) buf.Append(T(i));
  EXPECT_EQ(buf.memory_size(), 10u);
  EXPECT_EQ(buf.spilled_size(), 15u);
  EXPECT_EQ(buf.size(), 25u);
  EXPECT_TRUE(buf.HasSpilled());
  EXPECT_EQ(storage.CountFor("k"), 15u);
}

TEST(SpillingBufferTest, MaterializeReturnsAllInOrder) {
  SecondaryStorage storage;
  SpillingBuffer buf(5, &storage, "k");
  for (int i = 0; i < 12; ++i) buf.Append(T(i));
  auto all = buf.Materialize();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ((*all)[i].event_time(), i);
}

TEST(SpillingBufferTest, MaterializeWithoutSpillAvoidsStorage) {
  SecondaryStorage storage;
  SpillingBuffer buf(100, &storage, "k");
  buf.Append(T(1));
  auto all = buf.Materialize();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(storage.get_calls(), 0u);
}

TEST(SpillingBufferTest, ClearErasesSpilledRun) {
  SecondaryStorage storage;
  SpillingBuffer buf(2, &storage, "k");
  for (int i = 0; i < 5; ++i) buf.Append(T(i));
  buf.Clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(storage.CountFor("k"), 0u);
}

TEST(SpillingBufferTest, MemoryBytesCoversResidentOnly) {
  SecondaryStorage storage;
  SpillingBuffer buf(3, &storage, "k");
  for (int i = 0; i < 10; ++i) buf.Append(T(i));
  const std::size_t bytes = buf.MemoryBytes();
  EXPECT_GT(bytes, 0u);
  EXPECT_LT(bytes, 10 * T(0).ByteSize());  // only 3 resident
}

}  // namespace
}  // namespace spear
