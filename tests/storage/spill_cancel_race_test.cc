#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "storage/secondary_storage.h"
#include "storage/spilling_buffer.h"

namespace spear {
namespace {

Tuple NumTuple(std::int64_t t, double v) {
  return Tuple(t, std::vector<Value>{Value(v)});
}

// Deterministic baseline: with storage permanently down, every
// past-budget append falls back to memory — nothing is lost and nothing
// is half-stored.
TEST(SpillCancelRaceTest, PermanentSpillFailureKeepsEverythingInMemory) {
  FaultPlan plan;
  FaultRule rule;
  rule.site = FaultSite::kStorageStore;
  rule.probability = 1.0;
  plan.Add(rule);
  FaultInjector injector(plan);

  SecondaryStorage storage;
  storage.InjectFaults(&injector);
  SpillingBuffer buffer(/*memory_capacity=*/8, &storage, "down-key");

  const int n = 100;
  for (int i = 0; i < n; ++i) buffer.Append(NumTuple(i, i));

  EXPECT_EQ(buffer.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(buffer.memory_size(), static_cast<std::size_t>(n));
  EXPECT_EQ(buffer.spilled_size(), 0u);
  EXPECT_EQ(buffer.spill_failures(), static_cast<std::size_t>(n - 8));
  EXPECT_EQ(storage.CountFor("down-key"), 0u);  // no partial stores
}

// The satellite scenario: spills fail intermittently while another thread
// flips the run-cancellation latency switch underneath the worker. The
// keep-in-memory fallback must account for every tuple exactly once —
// memory + spilled == appended, the storage run matches the spilled
// count, and Clear leaves nothing behind.
TEST(SpillCancelRaceTest, IntermittentFailureUnderConcurrentCancel) {
  FaultPlan plan;
  plan.seed = 11;
  FaultRule rule;
  rule.site = FaultSite::kStorageStore;
  rule.every_nth = 3;  // every third spill attempt fails
  plan.Add(rule);
  FaultInjector injector(plan);

  // Nonzero simulated latency widens the window the cancel switch races
  // against (the busy-wait checks the flag continuously).
  SecondaryStorage storage(StorageLatencyModel{2'000, 50});
  storage.InjectFaults(&injector);
  SpillingBuffer buffer(/*memory_capacity=*/16, &storage, "race-key");

  std::atomic<bool> done{false};
  std::thread canceller([&storage, &done]() {
    while (!done.load(std::memory_order_relaxed)) {
      storage.CancelSimulatedLatency();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      storage.ResetSimulatedLatency();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  const int n = 3000;
  double expected_sum = 0.0;
  for (int i = 0; i < n; ++i) {
    buffer.Append(NumTuple(i, i));
    expected_sum += i;
  }
  done.store(true);
  canceller.join();

  // Exactly-once accounting across the fallback boundary.
  EXPECT_EQ(buffer.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(buffer.memory_size() + buffer.spilled_size(),
            static_cast<std::size_t>(n));
  EXPECT_GT(buffer.spilled_size(), 0u);
  EXPECT_GT(buffer.spill_failures(), 0u);
  EXPECT_EQ(storage.CountFor("race-key"), buffer.spilled_size());

  // Materializing returns each appended tuple exactly once (a duplicate
  // or a loss shifts the checksum).
  storage.ResetSimulatedLatency();
  auto all = buffer.Materialize();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->size(), static_cast<std::size_t>(n));
  double sum = 0.0;
  for (const Tuple& t : *all) sum += t.field(0).AsDouble();
  EXPECT_DOUBLE_EQ(sum, expected_sum);

  // No leak: clearing the buffer erases its storage run too.
  buffer.Clear();
  EXPECT_EQ(storage.CountFor("race-key"), 0u);
  EXPECT_EQ(buffer.size(), 0u);
}

}  // namespace
}  // namespace spear
