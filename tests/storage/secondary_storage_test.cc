#include "storage/secondary_storage.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/time.h"

namespace spear {
namespace {

Tuple T(Timestamp t, double v) { return Tuple(t, {Value(v)}); }

TEST(SecondaryStorageTest, StoreAndGet) {
  SecondaryStorage s;
  s.Store("w1", T(1, 1.0));
  s.Store("w1", T(2, 2.0));
  auto run = s.Get("w1");
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->size(), 2u);
  EXPECT_EQ((*run)[0].event_time(), 1);
  EXPECT_EQ((*run)[1].event_time(), 2);
}

TEST(SecondaryStorageTest, GetMissingKeyIsNotFound) {
  SecondaryStorage s;
  EXPECT_TRUE(s.Get("nope").status().IsNotFound());
}

TEST(SecondaryStorageTest, KeysAreIndependent) {
  SecondaryStorage s;
  s.Store("a", T(1, 1.0));
  s.Store("b", T(2, 2.0));
  EXPECT_EQ(s.CountFor("a"), 1u);
  EXPECT_EQ(s.CountFor("b"), 1u);
  EXPECT_EQ(s.TotalTuples(), 2u);
}

TEST(SecondaryStorageTest, EraseRemovesRun) {
  SecondaryStorage s;
  s.Store("a", T(1, 1.0));
  s.Erase("a");
  EXPECT_EQ(s.CountFor("a"), 0u);
  EXPECT_TRUE(s.Get("a").status().IsNotFound());
}

TEST(SecondaryStorageTest, StoreBatchAppends) {
  SecondaryStorage s;
  s.Store("a", T(1, 1.0));
  s.StoreBatch("a", {T(2, 2.0), T(3, 3.0)});
  EXPECT_EQ(s.CountFor("a"), 3u);
}

TEST(SecondaryStorageTest, CallCounters) {
  SecondaryStorage s;
  s.Store("a", T(1, 1.0));
  s.StoreBatch("a", {T(2, 2.0)});
  (void)s.Get("a");
  (void)s.Get("missing");
  EXPECT_EQ(s.store_calls(), 2u);
  EXPECT_EQ(s.get_calls(), 2u);
}

TEST(SecondaryStorageTest, LatencyModelCostsTime) {
  SecondaryStorage slow(StorageLatencyModel{2'000'000, 0});  // 2 ms per call
  const std::int64_t start = NowNs();
  slow.Store("a", T(1, 1.0));
  const std::int64_t elapsed = NowNs() - start;
  EXPECT_GE(elapsed, 2'000'000);
}

TEST(SecondaryStorageTest, PerTupleLatencyScalesWithBatch) {
  SecondaryStorage slow(StorageLatencyModel{0, 10'000});  // 10 us per tuple
  std::vector<Tuple> batch;
  for (int i = 0; i < 100; ++i) batch.push_back(T(i, 0.0));
  const std::int64_t start = NowNs();
  slow.StoreBatch("a", std::move(batch));
  EXPECT_GE(NowNs() - start, 1'000'000);  // >= 1 ms for 100 tuples
}

TEST(SecondaryStorageTest, ConcurrentStoresAllLand) {
  SecondaryStorage s;
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&s, w] {
      for (int i = 0; i < 500; ++i) {
        s.Store("k" + std::to_string(w), T(i, 0.0));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(s.TotalTuples(), 2000u);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(s.CountFor("k" + std::to_string(w)), 500u);
  }
}

}  // namespace
}  // namespace spear
