#include "storage/secondary_storage.h"

#include <gtest/gtest.h>

#include <thread>

#include "common/time.h"

namespace spear {
namespace {

Tuple T(Timestamp t, double v) { return Tuple(t, {Value(v)}); }

TEST(SecondaryStorageTest, StoreAndGet) {
  SecondaryStorage s;
  s.Store("w1", T(1, 1.0));
  s.Store("w1", T(2, 2.0));
  auto run = s.Get("w1");
  ASSERT_TRUE(run.ok());
  ASSERT_EQ(run->size(), 2u);
  EXPECT_EQ((*run)[0].event_time(), 1);
  EXPECT_EQ((*run)[1].event_time(), 2);
}

TEST(SecondaryStorageTest, GetMissingKeyIsNotFound) {
  SecondaryStorage s;
  EXPECT_TRUE(s.Get("nope").status().IsNotFound());
}

TEST(SecondaryStorageTest, KeysAreIndependent) {
  SecondaryStorage s;
  s.Store("a", T(1, 1.0));
  s.Store("b", T(2, 2.0));
  EXPECT_EQ(s.CountFor("a"), 1u);
  EXPECT_EQ(s.CountFor("b"), 1u);
  EXPECT_EQ(s.TotalTuples(), 2u);
}

TEST(SecondaryStorageTest, EraseRemovesRun) {
  SecondaryStorage s;
  s.Store("a", T(1, 1.0));
  s.Erase("a");
  EXPECT_EQ(s.CountFor("a"), 0u);
  EXPECT_TRUE(s.Get("a").status().IsNotFound());
}

TEST(SecondaryStorageTest, StoreBatchAppends) {
  SecondaryStorage s;
  s.Store("a", T(1, 1.0));
  s.StoreBatch("a", {T(2, 2.0), T(3, 3.0)});
  EXPECT_EQ(s.CountFor("a"), 3u);
}

TEST(SecondaryStorageTest, CallCounters) {
  SecondaryStorage s;
  s.Store("a", T(1, 1.0));
  s.StoreBatch("a", {T(2, 2.0)});
  (void)s.Get("a");
  (void)s.Get("missing");
  EXPECT_EQ(s.store_calls(), 2u);
  EXPECT_EQ(s.get_calls(), 2u);
}

TEST(SecondaryStorageTest, LatencyModelCostsTime) {
  SecondaryStorage slow(StorageLatencyModel{2'000'000, 0});  // 2 ms per call
  const std::int64_t start = NowNs();
  slow.Store("a", T(1, 1.0));
  const std::int64_t elapsed = NowNs() - start;
  EXPECT_GE(elapsed, 2'000'000);
}

TEST(SecondaryStorageTest, PerTupleLatencyScalesWithBatch) {
  SecondaryStorage slow(StorageLatencyModel{0, 10'000});  // 10 us per tuple
  std::vector<Tuple> batch;
  for (int i = 0; i < 100; ++i) batch.push_back(T(i, 0.0));
  const std::int64_t start = NowNs();
  slow.StoreBatch("a", std::move(batch));
  EXPECT_GE(NowNs() - start, 1'000'000);  // >= 1 ms for 100 tuples
}

TEST(SecondaryStorageTest, InjectedStoreFaultFailsWithoutStoring) {
  FaultPlan plan;
  FaultRule rule;
  rule.site = FaultSite::kStorageStore;
  rule.every_nth = 2;
  plan.Add(rule);
  FaultInjector injector(plan);

  SecondaryStorage s;
  s.InjectFaults(&injector);
  EXPECT_TRUE(s.Store("a", T(1, 1.0)).ok());
  const Status second = s.Store("a", T(2, 2.0));
  EXPECT_TRUE(second.IsUnavailable());
  // The failed call stored nothing and doesn't count as performed work.
  EXPECT_EQ(s.CountFor("a"), 1u);
  EXPECT_EQ(s.store_calls(), 1u);
  // Batches fail atomically.
  EXPECT_TRUE(s.StoreBatch("a", {T(3, 3.0)}).ok());
  EXPECT_TRUE(s.StoreBatch("a", {T(4, 4.0), T(5, 5.0)}).IsUnavailable());
  EXPECT_EQ(s.CountFor("a"), 2u);
}

TEST(SecondaryStorageTest, InjectedGetFaultIsUnavailableNotNotFound) {
  FaultPlan plan;
  FaultRule rule;
  rule.site = FaultSite::kStorageGet;
  rule.every_nth = 1;
  rule.max_fires = 1;
  plan.Add(rule);
  FaultInjector injector(plan);

  SecondaryStorage s;
  s.Store("a", T(1, 1.0));
  s.InjectFaults(&injector);
  EXPECT_TRUE(s.Get("a").status().IsUnavailable());
  EXPECT_EQ(s.get_calls(), 0u);
  // The fault budget is spent: the retry sees the data.
  auto run = s.Get("a");
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->size(), 1u);
  EXPECT_EQ(s.get_calls(), 1u);
}

TEST(SecondaryStorageTest, CancellationCutsSimulatedLatencyShort) {
  // 200 ms of simulated per-call latency, cancelled up front: the call
  // must return almost immediately instead of spinning out the wait.
  SecondaryStorage slow(StorageLatencyModel{200'000'000, 0});
  slow.CancelSimulatedLatency();
  const std::int64_t start = NowNs();
  EXPECT_TRUE(slow.Store("a", T(1, 1.0)).ok());
  EXPECT_LT(NowNs() - start, 100'000'000);
  EXPECT_EQ(slow.CountFor("a"), 1u);

  // Re-arming restores the cost model.
  SecondaryStorage slow2(StorageLatencyModel{5'000'000, 0});  // 5 ms
  const std::int64_t start2 = NowNs();
  EXPECT_TRUE(slow2.Store("a", T(1, 1.0)).ok());
  EXPECT_GE(NowNs() - start2, 5'000'000);
}

TEST(SecondaryStorageTest, ConcurrentStoresAllLand) {
  SecondaryStorage s;
  std::vector<std::thread> threads;
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&s, w] {
      for (int i = 0; i < 500; ++i) {
        s.Store("k" + std::to_string(w), T(i, 0.0));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(s.TotalTuples(), 2000u);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(s.CountFor("k" + std::to_string(w)), 500u);
  }
}

}  // namespace
}  // namespace spear
