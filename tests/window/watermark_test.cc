#include "window/watermark.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(WatermarkGeneratorTest, FirstObservationEmits) {
  WatermarkGenerator gen(Seconds(10));
  EXPECT_TRUE(gen.Observe(1000));
  // Exclusive: everything < 1000 seen; 1000 itself may repeat (ties).
  EXPECT_EQ(gen.current(), 1000);
}

TEST(WatermarkGeneratorTest, EmitsEveryInterval) {
  WatermarkGenerator gen(100);
  EXPECT_TRUE(gen.Observe(0));  // first observation always emits
  EXPECT_EQ(gen.current(), 0);  // vacuous but sound: everything < 0 seen
  EXPECT_FALSE(gen.Observe(50));
  EXPECT_FALSE(gen.Observe(99));
  EXPECT_TRUE(gen.Observe(149));  // first observation past the interval
  EXPECT_EQ(gen.current(), 149);
  EXPECT_FALSE(gen.Observe(150));
}

TEST(WatermarkGeneratorTest, LatenessLagsWatermark) {
  WatermarkGenerator gen(10, /*max_lateness=*/50);
  EXPECT_TRUE(gen.Observe(1000));
  EXPECT_EQ(gen.current(), 950);  // 1000 - 50
}

TEST(WatermarkGeneratorTest, NonMonotoneInputKeepsMax) {
  WatermarkGenerator gen(10);
  EXPECT_TRUE(gen.Observe(100));
  EXPECT_FALSE(gen.Observe(50));  // out-of-order observation
  EXPECT_EQ(gen.current(), 100);
  EXPECT_TRUE(gen.Observe(120));
  EXPECT_EQ(gen.current(), 120);
}

TEST(WatermarkGeneratorTest, WatermarksMonotone) {
  WatermarkGenerator gen(25, 10);
  Timestamp last = kMinTimestamp;
  for (Timestamp t = 0; t < 1000; t += 7) {
    if (gen.Observe(t)) {
      EXPECT_GT(gen.current(), last);
      last = gen.current();
    }
  }
  EXPECT_GT(last, kMinTimestamp);
}

TEST(WatermarkGeneratorTest, FinalWatermarkIsMax) {
  EXPECT_EQ(WatermarkGenerator::FinalWatermark(), kMaxTimestamp);
}

}  // namespace
}  // namespace spear
