#include "window/window_spec.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(WindowSpecTest, TumblingTime) {
  const WindowSpec spec = WindowSpec::TumblingTime(Minutes(5));
  EXPECT_EQ(spec.type, WindowType::kTimeBased);
  EXPECT_EQ(spec.range, 300'000);
  EXPECT_EQ(spec.slide, 300'000);
  EXPECT_TRUE(spec.IsTumbling());
  EXPECT_TRUE(spec.IsValid());
  EXPECT_EQ(spec.WindowsPerCoordinate(), 1);
}

TEST(WindowSpecTest, SlidingTime) {
  const WindowSpec spec = WindowSpec::SlidingTime(Minutes(15), Minutes(5));
  EXPECT_FALSE(spec.IsTumbling());
  EXPECT_TRUE(spec.IsValid());
  EXPECT_EQ(spec.WindowsPerCoordinate(), 3);
}

TEST(WindowSpecTest, CountWindows) {
  const WindowSpec spec = WindowSpec::SlidingCount(100, 25);
  EXPECT_EQ(spec.type, WindowType::kCountBased);
  EXPECT_EQ(spec.WindowsPerCoordinate(), 4);
  EXPECT_TRUE(WindowSpec::TumblingCount(10).IsTumbling());
}

TEST(WindowSpecTest, InvalidSpecs) {
  EXPECT_FALSE((WindowSpec{WindowType::kTimeBased, 0, 0}.IsValid()));
  EXPECT_FALSE((WindowSpec{WindowType::kTimeBased, 10, 0}.IsValid()));
  EXPECT_FALSE((WindowSpec{WindowType::kTimeBased, 10, 20}.IsValid()))
      << "slide > range";
  EXPECT_FALSE((WindowSpec{WindowType::kCountBased, -5, 1}.IsValid()));
}

TEST(WindowSpecTest, NonDividingSlideRoundsUp) {
  const WindowSpec spec = WindowSpec::SlidingTime(10, 3);
  EXPECT_EQ(spec.WindowsPerCoordinate(), 4);  // ceil(10/3)
}

TEST(WindowSpecTest, ToStringMentionsShape) {
  EXPECT_EQ(WindowSpec::TumblingTime(100).ToString(),
            "time-tumbling(range=100)");
  EXPECT_EQ(WindowSpec::SlidingCount(10, 5).ToString(),
            "count-sliding(range=10, slide=5)");
}

TEST(WindowBoundsTest, ContainsHalfOpen) {
  const WindowBounds w{10, 20};
  EXPECT_FALSE(w.Contains(9));
  EXPECT_TRUE(w.Contains(10));
  EXPECT_TRUE(w.Contains(19));
  EXPECT_FALSE(w.Contains(20));
  EXPECT_EQ(w.length(), 10);
}

TEST(WindowBoundsTest, OrderingAndEquality) {
  EXPECT_EQ((WindowBounds{1, 2}), (WindowBounds{1, 2}));
  EXPECT_LT((WindowBounds{1, 5}), (WindowBounds{2, 3}));
  EXPECT_LT((WindowBounds{1, 3}), (WindowBounds{1, 5}));
}

TEST(WindowBoundsTest, ToString) {
  EXPECT_EQ((WindowBounds{5, 15}).ToString(), "[5, 15)");
}

}  // namespace
}  // namespace spear
