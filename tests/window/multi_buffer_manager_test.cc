#include "window/multi_buffer_manager.h"

#include <gtest/gtest.h>

#include "window/single_buffer_manager.h"

namespace spear {
namespace {

Tuple T(Timestamp t, double v = 0.0) { return Tuple(t, {Value(v)}); }

TEST(MultiBufferTest, TumblingBasic) {
  MultiBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  mgr.OnTuple(1, T(1));
  mgr.OnTuple(5, T(5));
  mgr.OnTuple(12, T(12));
  auto windows = mgr.OnWatermark(10);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 1u);
  EXPECT_EQ((*windows)[0].tuples.size(), 2u);
  EXPECT_EQ(mgr.BufferedTuples(), 1u);
}

TEST(MultiBufferTest, SlidingStoresOneCopyPerWindow) {
  MultiBufferWindowManager mgr(WindowSpec::SlidingTime(15, 5));
  mgr.OnTuple(61, T(61));
  // 3 participating windows -> 3 copies (the design's memory cost).
  EXPECT_EQ(mgr.BufferedTuples(), 3u);
  EXPECT_EQ(mgr.active_windows(), 3u);
}

TEST(MultiBufferTest, MemoryExceedsSingleBufferForSliding) {
  MultiBufferWindowManager multi(WindowSpec::SlidingTime(15, 5));
  for (int t = 0; t < 100; ++t) multi.OnTuple(t, T(t, 1.0));
  // Every tuple is tripled.
  EXPECT_EQ(multi.BufferedTuples(), 300u);
  EXPECT_GT(multi.MemoryBytes(), 0u);
}

TEST(MultiBufferTest, WatermarkPicksBuffersWithoutScan) {
  MultiBufferWindowManager mgr(WindowSpec::SlidingTime(15, 5));
  mgr.OnTuple(61, T(61));
  mgr.OnTuple(72, T(72));
  auto windows = mgr.OnWatermark(70);
  ASSERT_TRUE(windows.ok());
  // Complete: [50,65), [55,70).
  ASSERT_EQ(windows->size(), 2u);
  EXPECT_EQ((*windows)[0].bounds, (WindowBounds{50, 65}));
  EXPECT_EQ((*windows)[1].bounds, (WindowBounds{55, 70}));
}

TEST(MultiBufferTest, LateTuplesDropped) {
  MultiBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  (void)mgr.OnWatermark(10);
  mgr.OnTuple(3, T(3));
  EXPECT_EQ(mgr.late_tuples(), 1u);
  EXPECT_EQ(mgr.BufferedTuples(), 0u);
}

TEST(MultiBufferTest, AgreesWithSingleBufferOnWindowContents) {
  SingleBufferWindowManager single(WindowSpec::SlidingTime(20, 10));
  MultiBufferWindowManager multi(WindowSpec::SlidingTime(20, 10));
  for (int t = 0; t < 100; t += 3) {
    single.OnTuple(t, T(t, t));
    multi.OnTuple(t, T(t, t));
  }
  auto s = single.OnWatermark(90);
  auto m = multi.OnWatermark(90);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(s->size(), m->size());
  for (std::size_t i = 0; i < s->size(); ++i) {
    EXPECT_EQ((*s)[i].bounds, (*m)[i].bounds);
    EXPECT_EQ((*s)[i].tuples.size(), (*m)[i].tuples.size());
  }
}

TEST(MultiBufferTest, DuplicateWatermarkIgnored) {
  MultiBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  mgr.OnTuple(5, T(5));
  (void)mgr.OnWatermark(10);
  auto again = mgr.OnWatermark(10);
  EXPECT_TRUE(again->empty());
}

}  // namespace
}  // namespace spear
