#include "window/window_assigner.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(WindowAssignerTest, TumblingAssignsExactlyOne) {
  const WindowSpec spec = WindowSpec::TumblingTime(10);
  const auto windows = AssignWindows(spec, 25);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], (WindowBounds{20, 30}));
}

TEST(WindowAssignerTest, TumblingBoundary) {
  const WindowSpec spec = WindowSpec::TumblingTime(10);
  EXPECT_EQ(AssignWindows(spec, 20)[0], (WindowBounds{20, 30}));
  EXPECT_EQ(AssignWindows(spec, 19)[0], (WindowBounds{10, 20}));
}

TEST(WindowAssignerTest, SlidingAssignsAllOverlapping) {
  // Paper's Fig. 3 example: range 15, slide 5; ts=61 participates in
  // (50,65), (55,70), (60,75).
  const WindowSpec spec = WindowSpec::SlidingTime(15, 5);
  const auto windows = AssignWindows(spec, 61);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0], (WindowBounds{50, 65}));
  EXPECT_EQ(windows[1], (WindowBounds{55, 70}));
  EXPECT_EQ(windows[2], (WindowBounds{60, 75}));
}

TEST(WindowAssignerTest, SlidingAtSlideBoundary) {
  const WindowSpec spec = WindowSpec::SlidingTime(15, 5);
  const auto windows = AssignWindows(spec, 60);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0], (WindowBounds{50, 65}));
  EXPECT_EQ(windows[2], (WindowBounds{60, 75}));
}

TEST(WindowAssignerTest, NegativeCoordinates) {
  const WindowSpec spec = WindowSpec::TumblingTime(10);
  const auto windows = AssignWindows(spec, -3);
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0], (WindowBounds{-10, 0}));
  EXPECT_TRUE(windows[0].Contains(-3));
}

TEST(WindowAssignerTest, ZeroCoordinate) {
  const WindowSpec spec = WindowSpec::SlidingTime(10, 5);
  const auto windows = AssignWindows(spec, 0);
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0], (WindowBounds{-5, 5}));
  EXPECT_EQ(windows[1], (WindowBounds{0, 10}));
}

TEST(WindowAssignerTest, EveryAssignedWindowContainsCoord) {
  const WindowSpec spec = WindowSpec::SlidingTime(100, 33);
  for (std::int64_t coord : {-250L, -1L, 0L, 7L, 99L, 100L, 12345L}) {
    const auto windows = AssignWindows(spec, coord);
    EXPECT_FALSE(windows.empty());
    for (const auto& w : windows) {
      EXPECT_TRUE(w.Contains(coord))
          << w.ToString() << " should contain " << coord;
      EXPECT_EQ(w.start % spec.slide, 0);
    }
  }
}

TEST(WindowAssignerTest, FirstAndLastStartHelpers) {
  const WindowSpec spec = WindowSpec::SlidingTime(15, 5);
  EXPECT_EQ(LastWindowStartFor(spec, 61), 60);
  EXPECT_EQ(FirstWindowStartFor(spec, 61), 50);
  EXPECT_EQ(LastWindowStartFor(spec, -1), -5);
  EXPECT_EQ(FirstWindowStartFor(spec, -1), -15);
}

/// Property sweep: count of assigned windows == ceil(range/slide) away
/// from alignment effects, and all starts are distinct and consecutive.
class AssignerSweep
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t>> {
};

TEST_P(AssignerSweep, AssignmentInvariants) {
  const auto [range, slide] = GetParam();
  const WindowSpec spec = WindowSpec::SlidingTime(range, slide);
  for (std::int64_t coord = -2 * range; coord <= 2 * range;
       coord += range / 3 + 1) {
    const auto windows = AssignWindows(spec, coord);
    ASSERT_FALSE(windows.empty());
    EXPECT_LE(windows.size(),
              static_cast<std::size_t>(spec.WindowsPerCoordinate()));
    for (std::size_t i = 0; i < windows.size(); ++i) {
      EXPECT_TRUE(windows[i].Contains(coord));
      if (i > 0) {
        EXPECT_EQ(windows[i].start, windows[i - 1].start + slide);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AssignerSweep,
    ::testing::Values(std::make_tuple(10L, 10L), std::make_tuple(10L, 5L),
                      std::make_tuple(15L, 5L), std::make_tuple(100L, 33L),
                      std::make_tuple(7L, 2L), std::make_tuple(1L, 1L)));

}  // namespace
}  // namespace spear
