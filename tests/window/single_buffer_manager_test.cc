#include "window/single_buffer_manager.h"

#include <gtest/gtest.h>

namespace spear {
namespace {

Tuple T(Timestamp t, double v = 0.0) { return Tuple(t, {Value(v)}); }

TEST(SingleBufferTest, TumblingWindowCompletesAtWatermark) {
  SingleBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  mgr.OnTuple(1, T(1, 1.0));
  mgr.OnTuple(5, T(5, 2.0));
  mgr.OnTuple(12, T(12, 3.0));

  auto windows = mgr.OnWatermark(10);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 1u);
  EXPECT_EQ((*windows)[0].bounds, (WindowBounds{0, 10}));
  EXPECT_EQ((*windows)[0].tuples.size(), 2u);
}

TEST(SingleBufferTest, NothingBeforeWatermark) {
  SingleBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  mgr.OnTuple(1, T(1));
  auto windows = mgr.OnWatermark(9);
  ASSERT_TRUE(windows.ok());
  EXPECT_TRUE(windows->empty());
  EXPECT_EQ(mgr.BufferedTuples(), 1u);
}

TEST(SingleBufferTest, SlidingTuplesAppearInMultipleWindows) {
  SingleBufferWindowManager mgr(WindowSpec::SlidingTime(15, 5));
  mgr.OnTuple(61, T(61));
  auto windows = mgr.OnWatermark(80);
  ASSERT_TRUE(windows.ok());
  // 61 participates in [50,65), [55,70), [60,75) — all complete at 80.
  ASSERT_EQ(windows->size(), 3u);
  for (const auto& w : *windows) {
    EXPECT_EQ(w.tuples.size(), 1u);
    EXPECT_TRUE(w.bounds.Contains(61));
  }
}

TEST(SingleBufferTest, EvictionAfterProcessing) {
  SingleBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  mgr.OnTuple(1, T(1));
  mgr.OnTuple(15, T(15));
  (void)mgr.OnWatermark(10);
  EXPECT_EQ(mgr.evicted_tuples(), 1u);  // tuple 1 expired
  EXPECT_EQ(mgr.BufferedTuples(), 1u);  // tuple 15 retained
}

TEST(SingleBufferTest, SlidingEvictsOnlyFullyExpired) {
  SingleBufferWindowManager mgr(WindowSpec::SlidingTime(15, 5));
  mgr.OnTuple(61, T(61));
  (void)mgr.OnWatermark(70);  // [50,65) and [55,70) emitted; [60,75) pending
  EXPECT_EQ(mgr.BufferedTuples(), 1u);  // 61 still needed by [60,75)
  (void)mgr.OnWatermark(75);
  EXPECT_EQ(mgr.BufferedTuples(), 0u);
}

TEST(SingleBufferTest, LateTuplesDropped) {
  SingleBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  mgr.OnTuple(5, T(5));
  (void)mgr.OnWatermark(10);
  mgr.OnTuple(8, T(8));  // behind the watermark
  EXPECT_EQ(mgr.late_tuples(), 1u);
  EXPECT_EQ(mgr.BufferedTuples(), 0u);
}

TEST(SingleBufferTest, TupleAtWatermarkBoundaryAccepted) {
  SingleBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  mgr.OnTuple(5, T(5));
  (void)mgr.OnWatermark(10);
  mgr.OnTuple(10, T(10));  // exactly at the (exclusive) watermark: fine
  EXPECT_EQ(mgr.late_tuples(), 0u);
  auto windows = mgr.OnWatermark(20);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 1u);
  EXPECT_EQ((*windows)[0].bounds, (WindowBounds{10, 20}));
}

TEST(SingleBufferTest, OutOfOrderWithinWatermarkHandled) {
  SingleBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  mgr.OnTuple(8, T(8));
  mgr.OnTuple(3, T(3));  // out of order but ahead of watermark
  mgr.OnTuple(6, T(6));
  auto windows = mgr.OnWatermark(10);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 1u);
  EXPECT_EQ((*windows)[0].tuples.size(), 3u);
}

TEST(SingleBufferTest, DuplicateWatermarkIgnored) {
  SingleBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  mgr.OnTuple(5, T(5));
  auto first = mgr.OnWatermark(10);
  ASSERT_EQ(first->size(), 1u);
  auto second = mgr.OnWatermark(10);
  EXPECT_TRUE(second->empty());
  auto regression = mgr.OnWatermark(5);
  EXPECT_TRUE(regression->empty());
}

TEST(SingleBufferTest, EmptyWindowsNotEmitted) {
  SingleBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  mgr.OnTuple(5, T(5));
  mgr.OnTuple(95, T(95));
  auto windows = mgr.OnWatermark(100);
  ASSERT_TRUE(windows.ok());
  // Only [0,10) and [90,100) have data.
  ASSERT_EQ(windows->size(), 2u);
  EXPECT_EQ((*windows)[0].bounds, (WindowBounds{0, 10}));
  EXPECT_EQ((*windows)[1].bounds, (WindowBounds{90, 100}));
}

TEST(SingleBufferTest, FinalWatermarkFlushesEverything) {
  SingleBufferWindowManager mgr(WindowSpec::SlidingTime(15, 5));
  mgr.OnTuple(61, T(61));
  auto windows = mgr.OnWatermark(kMaxTimestamp);
  ASSERT_TRUE(windows.ok());
  EXPECT_EQ(windows->size(), 3u);
  EXPECT_EQ(mgr.BufferedTuples(), 0u);
}

TEST(SingleBufferTest, SpillBeyondMemoryCapacity) {
  SecondaryStorage storage;
  SingleBufferWindowManager mgr(WindowSpec::TumblingTime(100), 5, &storage,
                                "t");
  for (int i = 0; i < 20; ++i) mgr.OnTuple(i, T(i, i));
  EXPECT_TRUE(mgr.HasSpilled());
  EXPECT_EQ(mgr.BufferedTuples(), 20u);
  EXPECT_GT(storage.TotalTuples(), 0u);

  auto windows = mgr.OnWatermark(100);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 1u);
  EXPECT_EQ((*windows)[0].tuples.size(), 20u);
  EXPECT_FALSE(mgr.HasSpilled());
  EXPECT_EQ(storage.TotalTuples(), 0u);  // run erased after unspill
}

TEST(SingleBufferTest, SpilledTuplesSurviveRoundTripIntact) {
  SecondaryStorage storage;
  SingleBufferWindowManager mgr(WindowSpec::TumblingTime(100), 2, &storage,
                                "t");
  for (int i = 0; i < 6; ++i) mgr.OnTuple(i, T(i, i * 1.5));
  auto windows = mgr.OnWatermark(100);
  ASSERT_TRUE(windows.ok());
  double sum = 0.0;
  for (const Tuple& t : (*windows)[0].tuples) sum += t.field(0).AsDouble();
  EXPECT_DOUBLE_EQ(sum, 1.5 * (0 + 1 + 2 + 3 + 4 + 5));
}

TEST(SingleBufferTest, MemoryBytesTracksBuffer) {
  SingleBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  EXPECT_EQ(mgr.MemoryBytes(), 0u);
  mgr.OnTuple(1, T(1));
  const std::size_t one = mgr.MemoryBytes();
  EXPECT_GT(one, 0u);
  mgr.OnTuple(2, T(2));
  EXPECT_GT(mgr.MemoryBytes(), one);
}

TEST(SingleBufferTest, CountCoordinatesWork) {
  // Count windows: coordinates are sequence numbers.
  SingleBufferWindowManager mgr(WindowSpec::TumblingCount(5));
  for (int i = 0; i < 5; ++i) mgr.OnTuple(i, T(1000 + i));
  auto windows = mgr.OnWatermark(5);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 1u);
  EXPECT_EQ((*windows)[0].tuples.size(), 5u);
}

TEST(SingleBufferTest, GapFastForwardSkipsEmptyWindows) {
  SingleBufferWindowManager mgr(WindowSpec::TumblingTime(10));
  mgr.OnTuple(5, T(5));
  (void)mgr.OnWatermark(10);
  // Jump far ahead with no data in between.
  mgr.OnTuple(1'000'005, T(1'000'005));
  auto windows = mgr.OnWatermark(1'000'010);
  ASSERT_TRUE(windows.ok());
  ASSERT_EQ(windows->size(), 1u);
  EXPECT_EQ((*windows)[0].bounds, (WindowBounds{1'000'000, 1'000'010}));
}

}  // namespace
}  // namespace spear
