#include "checkpoint/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/wire.h"
#include "runtime/fault_injection.h"
#include "runtime/spouts.h"

namespace spear {
namespace {

CheckpointSnapshot SampleSnapshot(std::uint64_t sequence = 3) {
  CheckpointSnapshot snap;
  snap.stage = "stateful";
  snap.task = 1;
  snap.sequence = sequence;
  snap.watermark = 4200;
  snap.source_offset = 1234;
  snap.payload = "opaque operator state \x00\x01\x02 with binary bytes";
  return snap;
}

TEST(WireTest, RoundTripsAllTypes) {
  std::string buf;
  wire::AppendU8(&buf, 0x7F);
  wire::AppendU32(&buf, 0xDEADBEEF);
  wire::AppendU64(&buf, 0x0123456789ABCDEFull);
  wire::AppendI64(&buf, -42);
  wire::AppendF64(&buf, 3.5);
  wire::AppendString(&buf, "hello");

  wire::Reader reader(buf);
  Result<std::uint8_t> u8 = reader.ReadU8();
  Result<std::uint32_t> u32 = reader.ReadU32();
  Result<std::uint64_t> u64 = reader.ReadU64();
  Result<std::int64_t> i64 = reader.ReadI64();
  Result<double> f64 = reader.ReadF64();
  Result<std::string> str = reader.ReadString();
  ASSERT_TRUE(u8.ok());
  ASSERT_TRUE(u32.ok());
  ASSERT_TRUE(u64.ok());
  ASSERT_TRUE(i64.ok());
  ASSERT_TRUE(f64.ok());
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(*u8, 0x7F);
  EXPECT_EQ(*u32, 0xDEADBEEFu);
  EXPECT_EQ(*u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(*i64, -42);
  EXPECT_DOUBLE_EQ(*f64, 3.5);
  EXPECT_EQ(*str, "hello");
  EXPECT_TRUE(reader.exhausted());
}

TEST(WireTest, ReaderRejectsTruncation) {
  std::string buf;
  wire::AppendU64(&buf, 7);
  buf.resize(buf.size() - 1);
  wire::Reader reader(buf);
  EXPECT_TRUE(reader.ReadU64().status().IsOutOfRange());
}

TEST(Crc32Test, MatchesKnownVector) {
  // The canonical CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
}

TEST(SnapshotCodecTest, RoundTrips) {
  const CheckpointSnapshot snap = SampleSnapshot();
  const std::string bytes = EncodeSnapshot(snap);
  Result<CheckpointSnapshot> decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->version, snap.version);
  EXPECT_EQ(decoded->stage, snap.stage);
  EXPECT_EQ(decoded->task, snap.task);
  EXPECT_EQ(decoded->sequence, snap.sequence);
  EXPECT_EQ(decoded->watermark, snap.watermark);
  EXPECT_EQ(decoded->source_offset, snap.source_offset);
  EXPECT_EQ(decoded->payload, snap.payload);
}

TEST(SnapshotCodecTest, DetectsEveryCorruptedByte) {
  const std::string bytes = EncodeSnapshot(SampleSnapshot());
  // Flipping any single byte (envelope, payload, or the checksum itself)
  // must be caught — the decoder never returns silently wrong state.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    EXPECT_FALSE(DecodeSnapshot(corrupt).ok()) << "byte " << i;
  }
}

TEST(SnapshotCodecTest, RejectsTruncationAndTrailingGarbage) {
  const std::string bytes = EncodeSnapshot(SampleSnapshot());
  EXPECT_FALSE(DecodeSnapshot(bytes.substr(0, bytes.size() - 1)).ok());
  EXPECT_FALSE(DecodeSnapshot(bytes.substr(1)).ok());
  EXPECT_FALSE(DecodeSnapshot(bytes + "x").ok());
  EXPECT_FALSE(DecodeSnapshot("").ok());
}

TEST(InMemoryCheckpointStoreTest, LatestIsNotFoundBeforeAnyPut) {
  InMemoryCheckpointStore store;
  EXPECT_TRUE(store.Latest("stateful", 0).status().IsNotFound());
}

TEST(InMemoryCheckpointStoreTest, PutThenLatestRoundTrips) {
  InMemoryCheckpointStore store;
  ASSERT_TRUE(store.Put(SampleSnapshot(1)).ok());
  Result<CheckpointSnapshot> latest = store.Latest("stateful", 1);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->sequence, 1u);
  // Keys are per (stage, task): the neighbour worker has nothing.
  EXPECT_TRUE(store.Latest("stateful", 0).status().IsNotFound());
  EXPECT_EQ(store.puts(), 1u);
}

TEST(InMemoryCheckpointStoreTest, CorruptCurrentFallsBackToPrevious) {
  InMemoryCheckpointStore store;
  ASSERT_TRUE(store.Put(SampleSnapshot(1)).ok());
  ASSERT_TRUE(store.Put(SampleSnapshot(2)).ok());
  store.CorruptLatestForTesting("stateful", 1);
  Result<CheckpointSnapshot> latest = store.Latest("stateful", 1);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->sequence, 1u);  // the surviving previous generation
}

TEST(InMemoryCheckpointStoreTest, CorruptOnlyGenerationIsNotFound) {
  InMemoryCheckpointStore store;
  ASSERT_TRUE(store.Put(SampleSnapshot(1)).ok());
  store.CorruptLatestForTesting("stateful", 1);
  EXPECT_TRUE(store.Latest("stateful", 1).status().IsNotFound());
}

TEST(FileCheckpointStoreTest, RoundTripsAcrossStoreInstances) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "ckpt_roundtrip")
          .string();
  {
    FileCheckpointStore store(dir);
    ASSERT_TRUE(store.Put(SampleSnapshot(7)).ok());
  }
  // A fresh store over the same directory — i.e. a restarted process —
  // still finds the snapshot.
  FileCheckpointStore reopened(dir);
  Result<CheckpointSnapshot> latest = reopened.Latest("stateful", 1);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->sequence, 7u);
  EXPECT_EQ(latest->payload, SampleSnapshot().payload);
  std::filesystem::remove_all(dir);
}

TEST(FileCheckpointStoreTest, CorruptFileFallsBackToPreviousGeneration) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "ckpt_fallback")
          .string();
  FileCheckpointStore store(dir);
  ASSERT_TRUE(store.Put(SampleSnapshot(1)).ok());
  ASSERT_TRUE(store.Put(SampleSnapshot(2)).ok());

  // Trash the current generation on disk (torn write / bit rot).
  bool corrupted_one = false;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".ckpt") {
      std::ofstream f(entry.path(), std::ios::trunc | std::ios::binary);
      f << "garbage";
      corrupted_one = true;
    }
  }
  ASSERT_TRUE(corrupted_one);

  Result<CheckpointSnapshot> latest = store.Latest("stateful", 1);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->sequence, 1u);
  std::filesystem::remove_all(dir);
}

TEST(ReplayableSpoutTest, VectorSpoutReportsAndSeeksOffsets) {
  std::vector<Tuple> tuples;
  for (int i = 0; i < 10; ++i) {
    tuples.emplace_back(i, std::vector<Value>{Value(static_cast<double>(i))});
  }
  VectorSpout spout(tuples);
  ReplayableSpout* replay = spout.replayable();
  ASSERT_NE(replay, nullptr);
  EXPECT_EQ(replay->ReplayOffset(), 0u);

  Tuple t;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(spout.Next(&t));
  EXPECT_EQ(replay->ReplayOffset(), 4u);
  EXPECT_EQ(t.event_time(), 3);

  // Seek back and the stream replays identically.
  ASSERT_TRUE(replay->SeekTo(2).ok());
  ASSERT_TRUE(spout.Next(&t));
  EXPECT_EQ(t.event_time(), 2);

  EXPECT_TRUE(replay->SeekTo(11).IsOutOfRange());
  ASSERT_TRUE(replay->SeekTo(10).ok());  // end-of-stream position is valid
  EXPECT_FALSE(spout.Next(&t));
}

TEST(ReplayableSpoutTest, FaultInjectingSpoutForwardsToInner) {
  auto inner = std::make_shared<VectorSpout>(std::vector<Tuple>{
      Tuple(0, {Value(1.0)}), Tuple(1, {Value(2.0)})});
  FaultInjectingSpout wrapped(inner, nullptr);
  ASSERT_EQ(wrapped.replayable(), inner->replayable());

  GeneratorSpout opaque([](Tuple*) { return false; });
  EXPECT_EQ(opaque.replayable(), nullptr);
}

}  // namespace
}  // namespace spear
