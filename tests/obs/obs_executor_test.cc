#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "core/spear_topology_builder.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"

/// End-to-end observability: a CQ built with `.Metrics()` / `.Trace()`
/// fills RunReport::observability with a final scrape whose counters
/// reconcile with the run's output, and one TraceSpan per closed window
/// carrying the decision lineage. A CQ built without the knobs pays
/// nothing and reports nothing.

namespace spear {
namespace {

std::vector<Tuple> Stream(int n, DurationMs spread_ms) {
  std::vector<Tuple> tuples;
  tuples.reserve(n);
  for (int i = 0; i < n; ++i) {
    const Timestamp t = static_cast<Timestamp>(i) * spread_ms / n;
    tuples.emplace_back(t, std::vector<Value>{Value(t), Value(i * 0.5)});
  }
  return tuples;
}

SpearTopologyBuilder BaseQuery(int n) {
  SpearTopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(Stream(n, Seconds(3))),
                 Seconds(1))
      .TumblingWindowOf(Seconds(1))
      .Mean(NumericField(1))
      .SetBudget(Budget::Tuples(100))
      .Error(0.10, 0.95);
  return builder;
}

RunReport MustRun(SpearTopologyBuilder& builder) {
  auto topology = builder.Build();
  EXPECT_TRUE(topology.ok()) << topology.status().ToString();
  auto report = Executor(std::move(*topology)).Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return std::move(*report);
}

std::uint64_t CounterTotal(const obs::ObservabilityReport& report,
                           const std::string& name,
                           const std::string& stage = "") {
  std::uint64_t total = 0;
  for (const obs::MetricSample& s : report.metrics) {
    if (s.kind != obs::MetricSample::Kind::kCounter || s.name != name) continue;
    if (!stage.empty() && s.stage != stage) continue;
    total += static_cast<std::uint64_t>(s.value);
  }
  return total;
}

TEST(ObsExecutorTest, OffByDefaultReportsNothing) {
  auto builder = BaseQuery(300);
  const RunReport report = MustRun(builder);
  EXPECT_FALSE(report.observability.metrics_enabled);
  EXPECT_FALSE(report.observability.trace_enabled);
  EXPECT_TRUE(report.observability.metrics.empty());
  EXPECT_TRUE(report.observability.spans.empty());
}

TEST(ObsExecutorTest, FinalScrapeReconcilesWithTheRun) {
  const int n = 300;
  auto builder = BaseQuery(n);
  builder.Metrics().Trace();
  const RunReport report = MustRun(builder);

  EXPECT_TRUE(report.observability.metrics_enabled);
  EXPECT_TRUE(report.observability.trace_enabled);
  ASSERT_FALSE(report.observability.metrics.empty());

  // The source's emission counter covers the whole stream, and the
  // stateful stage admitted every tuple of it.
  EXPECT_EQ(CounterTotal(report.observability, "tuples_emitted", "source"),
            static_cast<std::uint64_t>(n));
  EXPECT_EQ(CounterTotal(report.observability, "tuples_seen", "stateful"),
            static_cast<std::uint64_t>(n));

  // One span per emitted window, each with the (ε, α) spec and a verdict
  // consistent with the result stream.
  ASSERT_EQ(report.observability.spans.size(), report.output.size());
  std::uint64_t arrivals = 0;
  for (const obs::TraceSpan& span : report.observability.spans) {
    EXPECT_EQ(span.stage, "stateful");
    EXPECT_DOUBLE_EQ(span.epsilon_spec, 0.10);
    EXPECT_DOUBLE_EQ(span.alpha_spec, 0.95);
    EXPECT_LT(span.window_start, span.window_end);
    EXPECT_GT(span.emitted_at_ns, 0);
    arrivals += span.arrivals;
  }
  EXPECT_EQ(arrivals, static_cast<std::uint64_t>(n));

  // Verdict counters agree with the span stream.
  std::uint64_t expedited_spans = 0;
  for (const obs::TraceSpan& span : report.observability.spans) {
    if (span.verdict == obs::TraceSpan::Verdict::kExpedited) ++expedited_spans;
  }
  EXPECT_EQ(CounterTotal(report.observability, "windows_expedited"),
            expedited_spans);

  // The rendered exporters carry the scraped series.
  const std::string prom = report.observability.PrometheusText();
  EXPECT_NE(prom.find("# TYPE spear_tuples_seen counter"), std::string::npos);
  EXPECT_NE(prom.find("stage=\"stateful\""), std::string::npos);
  const std::string spans_json = report.observability.SpansJsonLines();
  EXPECT_NE(spans_json.find("\"verdict\":"), std::string::npos);
}

TEST(ObsExecutorTest, PeriodicSamplerDeliversScrapesToTheSink) {
  std::mutex mu;
  std::vector<std::string> scrapes;
  obs::MetricsOptions options;
  options.scrape_period_ms = 1;
  options.sink = [&](const std::string& text) {
    std::lock_guard<std::mutex> lock(mu);
    scrapes.push_back(text);
  };
  auto builder = BaseQuery(300);
  builder.Metrics(options);
  const RunReport report = MustRun(builder);
  EXPECT_GE(report.observability.scrapes, 1u);
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(scrapes.empty());
  EXPECT_NE(scrapes.back().find("\"name\":"), std::string::npos);
}

TEST(ObsExecutorTest, TraceSamplingIsCountedNotSilent) {
  obs::TraceOptions options;
  options.sample_every = 2;
  auto builder = BaseQuery(300);
  builder.Trace(options);
  const RunReport report = MustRun(builder);
  EXPECT_TRUE(report.observability.trace_enabled);
  EXPECT_EQ(report.observability.spans.size() +
                report.observability.spans_sampled_out,
            report.output.size());
  EXPECT_GT(report.observability.spans_sampled_out, 0u);
}

}  // namespace
}  // namespace spear
