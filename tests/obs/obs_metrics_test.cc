#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/observability.h"
#include "obs/trace.h"

namespace spear::obs {
namespace {

TEST(ObsMetricsTest, CounterGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(ObsMetricsTest, HistogramBucketPlacement) {
  Histogram h(HistogramBuckets{{10, 100, 1000}});
  h.Observe(5);     // bucket 0 (<= 10)
  h.Observe(10);    // bucket 0 (inclusive upper bound)
  h.Observe(11);    // bucket 1
  h.Observe(1000);  // bucket 2
  h.Observe(5000);  // +Inf overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5 + 10 + 11 + 1000 + 5000);
}

TEST(ObsMetricsTest, CannedBucketsAreStrictlyIncreasing) {
  for (const HistogramBuckets& b :
       {HistogramBuckets::LatencyNs(), HistogramBuckets::Counts()}) {
    ASSERT_FALSE(b.bounds.empty());
    for (std::size_t i = 1; i < b.bounds.size(); ++i) {
      EXPECT_LT(b.bounds[i - 1], b.bounds[i]);
    }
  }
}

TEST(ObsMetricsTest, ShardInstrumentsAreIdempotent) {
  MetricsShard shard("stage", 3);
  Counter* c1 = shard.GetCounter("tuples");
  Counter* c2 = shard.GetCounter("tuples");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, shard.GetCounter("other"));
  Gauge* g1 = shard.GetGauge("depth");
  EXPECT_EQ(g1, shard.GetGauge("depth"));
  Histogram* h1 = shard.GetHistogram("lat", HistogramBuckets::LatencyNs());
  EXPECT_EQ(h1, shard.GetHistogram("lat", HistogramBuckets::LatencyNs()));
}

TEST(ObsMetricsTest, RegistryShardIsStableAndLabelled) {
  MetricsRegistry registry;
  MetricsShard* a0 = registry.GetShard("a", 0);
  MetricsShard* a1 = registry.GetShard("a", 1);
  EXPECT_NE(a0, a1);
  EXPECT_EQ(a0, registry.GetShard("a", 0));
  EXPECT_EQ(a0->stage(), "a");
  EXPECT_EQ(a1->task(), 1);
}

TEST(ObsMetricsTest, CollectMergesEveryShardSeries) {
  MetricsRegistry registry;
  registry.GetShard("a", 0)->GetCounter("tuples")->Add(10);
  registry.GetShard("a", 1)->GetCounter("tuples")->Add(7);
  registry.GetShard("b", 0)->GetCounter("tuples")->Add(5);
  registry.GetShard("b", 0)->GetGauge("depth")->Set(3.0);

  const std::vector<MetricSample> samples = registry.Collect();
  // One sample per (name, stage, task) series.
  ASSERT_EQ(samples.size(), 4u);
  std::uint64_t sum = 0;
  for (const MetricSample& s : samples) {
    if (s.name == "tuples") sum += static_cast<std::uint64_t>(s.value);
  }
  EXPECT_EQ(sum, 22u);
  EXPECT_EQ(registry.CounterTotal("tuples"), 22u);
  EXPECT_EQ(registry.CounterTotal("missing"), 0u);
}

// The scrape-side merge invariant: no shard's series is dropped or
// double-counted — CounterTotal equals the sum over collected samples,
// for every counter name present.
TEST(ObsMetricsTest, MergeInvariantHoldsAcrossShards) {
  MetricsRegistry registry;
  const char* names[] = {"x", "y", "z"};
  std::map<std::string, std::uint64_t> expected;
  for (int stage = 0; stage < 3; ++stage) {
    for (int task = 0; task < 4; ++task) {
      MetricsShard* shard =
          registry.GetShard("s" + std::to_string(stage), task);
      for (const char* name : names) {
        const std::uint64_t n = stage * 100 + task * 10 + (name[0] - 'x');
        shard->GetCounter(name)->Add(n);
        expected[name] += n;
      }
    }
  }
  std::map<std::string, std::uint64_t> collected;
  for (const MetricSample& s : registry.Collect()) {
    collected[s.name] += static_cast<std::uint64_t>(s.value);
  }
  for (const auto& [name, total] : expected) {
    EXPECT_EQ(collected[name], total) << name;
    EXPECT_EQ(registry.CounterTotal(name), total) << name;
  }
}

TEST(ObsMetricsTest, ConcurrentWritersAndScrapesRace) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      Counter* c = registry.GetShard("w", t)->GetCounter("ops");
      Histogram* h = registry.GetShard("w", t)->GetHistogram(
          "lat", HistogramBuckets::Counts());
      for (int i = 0; i < kIncrements; ++i) {
        c->Increment();
        h->Observe(i % 100);
      }
    });
  }
  // Scrape concurrently with the writers.
  for (int i = 0; i < 50; ++i) registry.Collect();
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(registry.CounterTotal("ops"),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
}

// ---- exporters -----------------------------------------------------------

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) out.push_back(line);
  return out;
}

TEST(ObsExportTest, PrometheusSchemaRoundTrip) {
  MetricsRegistry registry;
  registry.GetShard("stateful", 0)->GetCounter("tuples_seen")->Add(123);
  registry.GetShard("stateful", 1)->GetCounter("tuples_seen")->Add(7);
  registry.GetShard("stateful", 0)->GetGauge("queue_depth")->Set(5.0);
  Histogram* h = registry.GetShard("stateful", 0)->GetHistogram(
      "window_processing_ns", HistogramBuckets{{10, 100}});
  h->Observe(5);
  h->Observe(50);
  h->Observe(500);

  const std::string text = PrometheusText(registry.Collect());

  // Every name gets HELP/TYPE exactly once, with the spear_ prefix.
  EXPECT_NE(text.find("# TYPE spear_tuples_seen counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spear_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE spear_window_processing_ns histogram"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE spear_tuples_seen counter"),
            text.rfind("# TYPE spear_tuples_seen counter"));

  // Series carry {stage, task} labels.
  EXPECT_NE(text.find("spear_tuples_seen{stage=\"stateful\",task=\"0\"} 123"),
            std::string::npos);
  EXPECT_NE(text.find("spear_tuples_seen{stage=\"stateful\",task=\"1\"} 7"),
            std::string::npos);

  // Histogram buckets are cumulative and end in le="+Inf" == _count.
  std::map<std::string, std::uint64_t> buckets;
  std::uint64_t total = 0;
  for (const std::string& line : Lines(text)) {
    if (line.rfind("spear_window_processing_ns_bucket", 0) == 0) {
      const auto le = line.find("le=\"");
      const auto end = line.find('"', le + 4);
      buckets[line.substr(le + 4, end - le - 4)] =
          std::stoull(line.substr(line.rfind(' ') + 1));
    }
    if (line.rfind("spear_window_processing_ns_count", 0) == 0) {
      total = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets["10"], 1u);
  EXPECT_EQ(buckets["100"], 2u);  // cumulative
  EXPECT_EQ(buckets["+Inf"], 3u);
  EXPECT_EQ(total, 3u);
}

TEST(ObsExportTest, CountersAreMonotonicAcrossScrapes) {
  MetricsRegistry registry;
  Counter* c = registry.GetShard("s", 0)->GetCounter("events");
  c->Add(5);
  const auto first = registry.Collect();
  c->Add(3);
  const auto second = registry.Collect();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (first[i].kind != MetricSample::Kind::kCounter) continue;
    EXPECT_GE(second[i].value, first[i].value) << first[i].name;
  }
}

TEST(ObsExportTest, JsonLinesAreOneObjectPerSample) {
  MetricsRegistry registry;
  registry.GetShard("a", 0)->GetCounter("n")->Add(2);
  registry.GetShard("a", 0)->GetGauge("g")->Set(1.5);
  registry.GetShard("a", 0)
      ->GetHistogram("h", HistogramBuckets{{1}})
      ->Observe(9);
  const auto samples = registry.Collect();
  const auto lines = Lines(MetricsJsonLines(samples));
  ASSERT_EQ(lines.size(), samples.size());
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"name\":"), std::string::npos);
    EXPECT_NE(line.find("\"stage\":\"a\""), std::string::npos);
  }
}

TEST(ObsExportTest, JsonEscapeHandlesControlAndQuotes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
}

// ---- tracer --------------------------------------------------------------

TraceSpan SpanAt(std::int64_t start) {
  TraceSpan s;
  s.stage = "stateful";
  s.window_start = start;
  s.window_end = start + 100;
  return s;
}

TEST(ObsTraceTest, RecordsEverySpanByDefault) {
  WindowTracer tracer(TraceOptions{});
  for (int i = 0; i < 10; ++i) tracer.Record(SpanAt(i * 100));
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.sampled_out(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  const auto spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 10u);
  EXPECT_EQ(spans[3].window_start, 300);
}

TEST(ObsTraceTest, SamplingKeepsEveryNthAndCounts) {
  TraceOptions options;
  options.sample_every = 3;
  WindowTracer tracer(options);
  for (int i = 0; i < 9; ++i) tracer.Record(SpanAt(i));
  EXPECT_EQ(tracer.recorded(), 3u);  // spans 0, 3, 6
  EXPECT_EQ(tracer.sampled_out(), 6u);
}

TEST(ObsTraceTest, CapCountsDroppedSpans) {
  TraceOptions options;
  options.max_spans = 4;
  WindowTracer tracer(options);
  for (int i = 0; i < 10; ++i) tracer.Record(SpanAt(i));
  EXPECT_EQ(tracer.recorded(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
}

TEST(ObsTraceTest, SpansJsonLinesCarryTheDecisionLineage) {
  TraceSpan s = SpanAt(500);
  s.task = 2;
  s.verdict = TraceSpan::Verdict::kExpedited;
  s.approximate = true;
  s.arrivals = 1000;
  s.processed = 150;
  s.shed = 30;
  s.lost = 5;
  s.budget = 150;
  s.epsilon_spec = 0.10;
  s.epsilon_hat = 0.07;
  s.loss_inflation = 0.03;
  s.epsilon_sampling = 0.04;
  s.spilled = true;
  const std::string line = SpansJsonLines({s});
  EXPECT_NE(line.find("\"verdict\":\"expedited\""), std::string::npos);
  EXPECT_NE(line.find("\"arrivals\":1000"), std::string::npos);
  EXPECT_NE(line.find("\"shed\":30"), std::string::npos);
  EXPECT_NE(line.find("\"epsilon_hat\":"), std::string::npos);
  EXPECT_NE(line.find("\"spilled\":true"), std::string::npos);
  EXPECT_STREQ(VerdictName(TraceSpan::Verdict::kExact), "exact");
  EXPECT_STREQ(VerdictName(TraceSpan::Verdict::kDegraded), "degraded");
}

// ---- config + sampler ----------------------------------------------------

TEST(ObsConfigTest, ValidatesSamplerAndTraceKnobs) {
  ObsConfig ok;
  EXPECT_TRUE(ok.Validate().ok());

  ObsConfig needs_sink;
  needs_sink.metrics_enabled = true;
  needs_sink.metrics.scrape_period_ms = 10;
  EXPECT_FALSE(needs_sink.Validate().ok());
  needs_sink.metrics.sink = [](const std::string&) {};
  EXPECT_TRUE(needs_sink.Validate().ok());

  ObsConfig bad_trace;
  bad_trace.trace_enabled = true;
  bad_trace.trace.sample_every = 0;
  EXPECT_FALSE(bad_trace.Validate().ok());
}

TEST(ObsSamplerTest, PeriodicSamplerScrapesAndStops) {
  MetricsRegistry registry;
  registry.GetShard("s", 0)->GetCounter("n")->Add(9);

  std::mutex mu;
  std::vector<std::string> scrapes;
  MetricsOptions options;
  options.scrape_period_ms = 1;
  options.sink = [&](const std::string& text) {
    std::lock_guard<std::mutex> lock(mu);
    scrapes.push_back(text);
  };
  PeriodicSampler sampler(&registry, options);
  sampler.Start();
  sampler.Stop();  // performs one final scrape even if the period never hit
  EXPECT_GE(sampler.scrapes(), 1u);
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(scrapes.empty());
  EXPECT_NE(scrapes.back().find("\"name\":\"n\""), std::string::npos);
}

TEST(ObsSamplerTest, DisabledSamplerIsANoOp) {
  MetricsRegistry registry;
  PeriodicSampler sampler(&registry, MetricsOptions{});
  sampler.Start();
  sampler.Stop();
  EXPECT_EQ(sampler.scrapes(), 0u);
}

}  // namespace
}  // namespace spear::obs
