/// \file bench_fig8_performance.cc
/// Figure 8 reproduction: mean and 95-percentile window processing time on
/// all three datasets (four panels):
///   8a DEC mean   — Storm vs Inc-Storm vs SPEAr (paper: Inc-Storm and
///                   SPEAr ~3 orders below Storm; SPEAr ~11% behind
///                   Inc-Storm)
///   8b DEC median — Storm vs SPEAr (paper: ~1 order)
///   8c GCM        — grouped mean, known group count (paper: >1 order)
///   8d DEBS       — grouped mean, sparse routes, b=2000 = 20% of window
///                   (paper: 7.77x mean / 13x p95)

#include <memory>

#include "harness/harness.h"

namespace spear::bench {
namespace {

void PrintPanel(const std::string& name,
                const std::vector<std::pair<std::string, CqRunResult>>& rows) {
  PrintTitle(name, "");
  // "Busy total" includes tuple-arrival work, where SPEAr's sampling
  // overhead vs Inc-Storm (the paper's ~11%) is visible even when the
  // per-window times saturate the timer resolution.
  PrintRow({"System", "Mean", "95-%ile", "Windows", "Busy total"});
  for (const auto& [system, result] : rows) {
    PrintRow({system, FmtMs(result.window_ns.mean),
              FmtMs(static_cast<double>(result.window_ns.p95)),
              FmtCount(result.window_ns.count),
              FmtMs(static_cast<double>(result.stateful_busy_ns))});
  }
}

SpearTopologyBuilder DecMeanCq(ExecutionEngine engine) {
  SpearTopologyBuilder b;
  b.Source(std::make_shared<VectorSpout>(DecTuples()), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Mean(NumericField(DecGenerator::kSizeField))
      .SetBudget(Budget::Tuples(1000))
      .Error(0.10, 0.95)
      .Engine(engine);
  return b;
}

void Run() {
  // ---- 8a: DEC mean -------------------------------------------------------
  {
    auto storm = DecMeanCq(ExecutionEngine::kExact);
    auto inc = DecMeanCq(ExecutionEngine::kIncremental);
    auto spear = DecMeanCq(ExecutionEngine::kSpear);  // incremental fast path
    PrintPanel("Figure 8a: DEC (Mean), b=1000",
               {{"Storm", RunCq(storm)},
                {"Inc-Storm", RunCq(inc)},
                {"SPEAr", RunCq(spear)}});
  }

  // ---- 8b: DEC median -----------------------------------------------------
  {
    auto make = [](ExecutionEngine engine) {
      SpearTopologyBuilder b;
      b.Source(std::make_shared<VectorSpout>(DecTuples()), Seconds(15))
          .SlidingWindowOf(Seconds(45), Seconds(15))
          .Median(NumericField(DecGenerator::kSizeField))
          .SetBudget(Budget::Tuples(150))
          .Error(0.10, 0.95)
          .Engine(engine);
      return b;
    };
    auto storm = make(ExecutionEngine::kExact);
    auto spear = make(ExecutionEngine::kSpear);
    PrintPanel("Figure 8b: DEC (Median), b=150",
               {{"Storm", RunCq(storm)}, {"SPEAr", RunCq(spear)}});
  }

  // ---- 8c: GCM grouped mean, known group count ---------------------------
  {
    auto make = [](ExecutionEngine engine) {
      SpearTopologyBuilder b;
      b.Source(std::make_shared<VectorSpout>(GcmTuples()), Minutes(30))
          .SlidingWindowOf(Minutes(60), Minutes(30))
          .Mean(NumericField(GcmGenerator::kCpuField))
          .GroupBy(KeyField(GcmGenerator::kClassField))
          .SetBudget(Budget::Tuples(4000))
          .Error(0.10, 0.95)
          .KnownGroups(8)
          .Parallelism(4)
          .Engine(engine);
      return b;
    };
    auto storm = make(ExecutionEngine::kExact);
    auto spear = make(ExecutionEngine::kSpear);
    PrintPanel("Figure 8c: GCM (grouped mean, known groups), b=4000, 4 workers",
               {{"Storm", RunCq(storm)}, {"SPEAr", RunCq(spear)}});
  }

  // ---- 8d: DEBS grouped mean, sparse routes -------------------------------
  {
    auto make = [](ExecutionEngine engine) {
      SpearTopologyBuilder b;
      b.Source(std::make_shared<VectorSpout>(DebsTuples()), Minutes(15))
          .SlidingWindowOf(Minutes(30), Minutes(15))
          .Mean(NumericField(DebsGenerator::kFareField))
          .GroupBy(KeyField(DebsGenerator::kRouteField))
          // Paper: b=2000 per worker (~20% of the window), 4 workers —
          // each worker sees ~1.3K of the ~5K distinct routes, so the
          // budget holds every group's metadata.
          .SetBudget(Budget::Tuples(2000))
          .Error(0.10, 0.95)
          .Parallelism(4)
          .Engine(engine);
      return b;
    };
    auto storm = make(ExecutionEngine::kExact);
    auto spear = make(ExecutionEngine::kSpear);
    auto spear_result = RunCq(spear);
    PrintPanel("Figure 8d: DEBS (grouped mean, sparse routes), b=2000, 4 workers",
               {{"Storm", RunCq(storm)}, {"SPEAr", spear_result}});
    std::printf("SPEAr expedited %s of windows\n",
                FmtPct(spear_result.decisions.ExpediteRate()).c_str());
  }
}

}  // namespace
}  // namespace spear::bench

int main() {
  spear::bench::Run();
  return 0;
}
