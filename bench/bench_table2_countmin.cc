/// \file bench_table2_countmin.cc
/// Table 2 reproduction: window processing time (mean and 95-percentile)
/// of SPEAr vs Storm-with-CountMin on the grouped mean CQs of GCM and
/// DEBS. The sketch is sized for epsilon=10% / confidence=95%, equivalent
/// to SPEAr's accuracy spec, as in the paper. Paper shape: SPEAr at least
/// ~10x faster on both datasets; the sketch is slower than exact because
/// every tuple pays 2 x depth hash evaluations and the distinct-group set
/// must still be tracked to reconstruct results.

#include <memory>

#include "harness/harness.h"

namespace spear::bench {
namespace {

struct TableRow {
  std::string dataset;
  CqRunResult spear;
  CqRunResult countmin;
};

SpearTopologyBuilder GcmCq(ExecutionEngine engine) {
  SpearTopologyBuilder b;
  b.Source(std::make_shared<VectorSpout>(GcmTuples()), Minutes(30))
      .SlidingWindowOf(Minutes(60), Minutes(30))
      .Mean(NumericField(GcmGenerator::kCpuField))
      .GroupBy(KeyField(GcmGenerator::kClassField))
      .SetBudget(Budget::Tuples(4000))
      .Error(0.10, 0.95)
      .KnownGroups(8)
      .Parallelism(4)
      .Engine(engine);
  return b;
}

SpearTopologyBuilder DebsCq(ExecutionEngine engine) {
  SpearTopologyBuilder b;
  b.Source(std::make_shared<VectorSpout>(DebsTuples()), Minutes(15))
      .SlidingWindowOf(Minutes(30), Minutes(15))
      .Mean(NumericField(DebsGenerator::kFareField))
      .GroupBy(KeyField(DebsGenerator::kRouteField))
      .SetBudget(Budget::Tuples(2000))
      .Error(0.10, 0.95)
      .Parallelism(4)
      .Engine(engine);
  return b;
}

void Run() {
  PrintTitle("Table 2: Proc. time — SPEAr vs Storm/CountMin",
             "grouped mean CQs; CountMin sized for eps=10%, conf=95%; "
             "paper shape: SPEAr >= ~10x faster on both datasets");

  std::vector<TableRow> rows;
  {
    auto spear = GcmCq(ExecutionEngine::kSpear);
    auto countmin = GcmCq(ExecutionEngine::kCountMin);
    rows.push_back({"GCM", RunCq(spear), RunCq(countmin)});
  }
  {
    auto spear = DebsCq(ExecutionEngine::kSpear);
    auto countmin = DebsCq(ExecutionEngine::kCountMin);
    rows.push_back({"DEBS", RunCq(spear), RunCq(countmin)});
  }

  PrintRow({"Dataset", "SPEAr mean", "CountMin mean", "SPEAr p95",
            "CountMin p95"});
  for (const TableRow& row : rows) {
    PrintRow({row.dataset, FmtMs(row.spear.window_ns.mean),
              FmtMs(row.countmin.window_ns.mean),
              FmtMs(static_cast<double>(row.spear.window_ns.p95)),
              FmtMs(static_cast<double>(row.countmin.window_ns.p95))});
  }
}

}  // namespace
}  // namespace spear::bench

int main() {
  spear::bench::Run();
  return 0;
}
