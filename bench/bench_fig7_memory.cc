/// \file bench_fig7_memory.cc
/// Figure 7 reproduction: mean memory usage per worker on DEC, for the
/// mean CQ (b=1000) and the median CQ (b=150), Storm vs SPEAr, at
/// 1/2/4/6/8 workers. Paper shape: SPEAr constant (= budget) regardless
/// of parallelism; Storm proportional to the per-worker window size —
/// up to two orders of magnitude more for the median CQ.

#include <memory>

#include "harness/harness.h"

namespace spear::bench {
namespace {

CqRunResult RunCqOn(ExecutionEngine engine, bool median, int nodes) {
  SpearTopologyBuilder builder;
  builder
      .Source(std::make_shared<VectorSpout>(DecTuples()), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Error(0.10, 0.95)
      .Parallelism(nodes)
      .Engine(engine);
  if (median) {
    builder.Median(NumericField(DecGenerator::kSizeField))
        .SetBudget(Budget::Tuples(150));
  } else {
    // The mean runs SPEAr's generic sampled path so the budget is what
    // occupies memory (matching the paper's configuration).
    builder.Mean(NumericField(DecGenerator::kSizeField))
        .SetBudget(Budget::Tuples(1000))
        .DisableIncrementalOptimization();
  }
  return RunCq(builder);
}

void Run() {
  PrintTitle("Figure 7: Mean memory usage per worker on DEC",
             "mean CQ b=1000, median CQ b=150; paper shape: SPEAr constant "
             "at the budget, Storm up to 2 orders of magnitude higher");
  PrintRow({"Nodes", "Storm(mean)", "SPEAr(mean)", "Storm(median)",
            "SPEAr(median)"});
  for (int nodes : {1, 2, 4, 6, 8}) {
    const auto storm_mean = RunCqOn(ExecutionEngine::kExact, false, nodes);
    const auto spear_mean = RunCqOn(ExecutionEngine::kSpear, false, nodes);
    const auto storm_median = RunCqOn(ExecutionEngine::kExact, true, nodes);
    const auto spear_median = RunCqOn(ExecutionEngine::kSpear, true, nodes);
    PrintRow({FmtCount(static_cast<std::uint64_t>(nodes)),
              FmtBytes(storm_mean.mean_memory_per_worker),
              FmtBytes(spear_mean.mean_memory_per_worker),
              FmtBytes(storm_median.mean_memory_per_worker),
              FmtBytes(spear_median.mean_memory_per_worker)});
  }
}

}  // namespace
}  // namespace spear::bench

int main() {
  spear::bench::Run();
  return 0;
}
