/// \file bench_fig12_budget.cc
/// Figure 12 reproduction: DEC mean-CQ window processing time (mean and
/// 95-percentile) for Storm and SPEAr with budgets 250/500/1000, the
/// incremental optimization disabled (as in the paper, to expose the
/// overhead of a failing accuracy test). Paper shape: SPEAr-250 is
/// *slower* than Storm (pays the estimate, then processes the window
/// anyway); SPEAr-500 and SPEAr-1k are ~2 orders of magnitude faster.

#include <memory>

#include "harness/harness.h"

namespace spear::bench {
namespace {

// Same spec as the Fig. 11 bench (the paper's standard 10%).
constexpr double kEpsilon = 0.10;

CqRunResult RunDecMean(ExecutionEngine engine, std::size_t budget) {
  SpearTopologyBuilder builder;
  builder
      .Source(std::make_shared<VectorSpout>(DecTuples()), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Mean(NumericField(DecGenerator::kSizeField))
      .SetBudget(Budget::Tuples(budget))
      .Error(kEpsilon, 0.95)
      .DisableIncrementalOptimization()
      .Engine(engine);
  return RunCq(builder);
}

void Run() {
  PrintTitle("Figure 12: DEC processing time with varying budget",
             "mean CQ, incremental optimization off, eps=10%; paper shape: "
             "SPEAr-250 slower than Storm (failed test adds overhead), "
             "SPEAr-500/1k orders of magnitude faster");
  PrintRow({"System", "Mean", "95-%ile", "Expedited"});

  const CqRunResult storm = RunDecMean(ExecutionEngine::kExact, 1000);
  PrintRow({"Storm", FmtMs(storm.window_ns.mean),
            FmtMs(static_cast<double>(storm.window_ns.p95)), "-"});
  for (std::size_t budget : {250u, 500u, 1000u}) {
    const CqRunResult spear = RunDecMean(ExecutionEngine::kSpear, budget);
    PrintRow({"SPEAr-" + std::to_string(budget),
              FmtMs(spear.window_ns.mean),
              FmtMs(static_cast<double>(spear.window_ns.p95)),
              FmtPct(spear.decisions.ExpediteRate())});
  }
}

}  // namespace
}  // namespace spear::bench

int main() {
  spear::bench::Run();
  return 0;
}
