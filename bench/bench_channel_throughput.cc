#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/harness.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"

/// \file bench_channel_throughput.cc
/// Measures raw inter-stage channel throughput (tuples/sec) on a 2-stage
/// shuffle topology with near-free bolts, across worker counts 1-8 and
/// channel batch sizes 1/16/64/256. Batch size 1 reproduces the historical
/// per-tuple Push/Pop channel and is the baseline every other row is
/// normalized against, so the micro-batching win is measured, not asserted.
///
///   bench_channel_throughput [--tuples N] [--json FILE] [--metrics]
///
/// --json writes the full result grid as JSON (BENCH_channel.json keeps the
/// committed baseline for the perf trajectory across PRs). --metrics runs
/// the same grid with `.Metrics().Trace()` enabled, so the observability
/// overhead on the hot channel path can be compared against the committed
/// baseline (it must stay within run-to-run noise).

namespace spear::bench {
namespace {

/// Forwards every tuple downstream: all measured cost is the channel.
struct ForwardBolt : Bolt {
  Status Execute(const Tuple& tuple, Emitter* out) override {
    out->Emit(tuple);
    return Status::OK();
  }
};

/// Consumes tuples without emitting, so sink collection stays off the
/// measured path.
struct DrainBolt : Bolt {
  Status Execute(const Tuple&, Emitter*) override { return Status::OK(); }
};

struct Measurement {
  int workers = 0;
  std::size_t batch = 0;
  std::size_t tuples = 0;
  std::int64_t wall_ns = 0;
  double tuples_per_sec = 0.0;
};

Measurement RunOnce(const std::vector<Tuple>& tuples, int workers,
                    std::size_t batch, bool metrics) {
  TopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(tuples));
  builder.BatchMaxTuples(batch);
  if (metrics) builder.Metrics().Trace();
  builder.Stage("forward", workers, Partitioner::Shuffle(),
                [](int) { return std::make_unique<ForwardBolt>(); });
  builder.Stage("drain", workers, Partitioner::Shuffle(),
                [](int) { return std::make_unique<DrainBolt>(); });
  auto topology = builder.Build();
  if (!topology.ok()) {
    std::cerr << "topology: " << topology.status().ToString() << "\n";
    std::abort();
  }
  const std::int64_t start = NowNs();
  auto report = Executor(std::move(*topology)).Run();
  const std::int64_t wall = NowNs() - start;
  if (!report.ok()) {
    std::cerr << "run: " << report.status().ToString() << "\n";
    std::abort();
  }
  Measurement m;
  m.workers = workers;
  m.batch = batch;
  m.tuples = tuples.size();
  m.wall_ns = wall;
  m.tuples_per_sec = static_cast<double>(tuples.size()) /
                     (static_cast<double>(wall) * 1e-9);
  return m;
}

int Main(int argc, char** argv) {
  std::size_t num_tuples = 300'000;
  std::string json_path;
  bool metrics = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--tuples") == 0 && a + 1 < argc) {
      num_tuples = static_cast<std::size_t>(std::stoull(argv[++a]));
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else if (std::strcmp(argv[a], "--metrics") == 0) {
      metrics = true;
    } else {
      std::cerr << "usage: " << argv[0]
                << " [--tuples N] [--json FILE] [--metrics]\n";
      return 2;
    }
  }

  // Payload-free tuples: copying one is allocation-free, so the measured
  // cost is the channel machinery rather than tuple duplication.
  std::vector<Tuple> tuples;
  tuples.reserve(num_tuples);
  for (std::size_t i = 0; i < num_tuples; ++i) {
    tuples.emplace_back(static_cast<Timestamp>(i), std::vector<Value>{});
  }

  const int worker_counts[] = {1, 2, 4, 8};
  const std::size_t batch_sizes[] = {1, 16, 64, 256};

  PrintTitle("Channel throughput",
             "2-stage shuffle (source -> forward -> drain), " +
                 FmtCount(num_tuples) + " tuples; batch=1 is the historical "
                 "per-tuple channel baseline" +
                 (metrics ? "; observability ON (.Metrics().Trace())" : ""));
  PrintRow({"workers/stage", "batch", "wall", "tuples/sec", "vs batch=1"});

  // Warm-up (thread creation, allocator), then best-of-5 per config with
  // the sweeps interleaved: scheduler-noise windows on a shared box last
  // seconds, so consecutive reps of one config would all land in the same
  // window, while whole-grid sweeps decorrelate them.
  constexpr int kSweeps = 5;
  RunOnce(tuples, worker_counts[0], batch_sizes[0], metrics);
  std::vector<Measurement> results;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    std::size_t slot = 0;
    for (int workers : worker_counts) {
      for (std::size_t batch : batch_sizes) {
        const Measurement m = RunOnce(tuples, workers, batch, metrics);
        if (sweep == 0) {
          results.push_back(m);
        } else if (m.wall_ns < results[slot].wall_ns) {
          results[slot] = m;
        }
        ++slot;
      }
    }
  }

  double baseline = 0.0;
  for (const Measurement& m : results) {
    if (m.batch == 1) baseline = m.tuples_per_sec;
    char speedup[32];
    if (baseline > 0.0) {
      std::snprintf(speedup, sizeof(speedup), "%.2fx",
                    m.tuples_per_sec / baseline);
    } else {
      std::snprintf(speedup, sizeof(speedup), "-");
    }
    PrintRow({std::to_string(m.workers), std::to_string(m.batch),
              FmtMs(static_cast<double>(m.wall_ns)),
              FmtCount(static_cast<std::uint64_t>(m.tuples_per_sec)),
              speedup});
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"channel_throughput\",\n"
        << "  \"topology\": \"source -> forward -> drain (shuffle)\",\n"
        << "  \"observability\": " << (metrics ? "true" : "false") << ",\n"
        << "  \"tuples\": " << num_tuples << ",\n  \"results\": [\n";
    for (std::size_t k = 0; k < results.size(); ++k) {
      const Measurement& m = results[k];
      out << "    {\"workers_per_stage\": " << m.workers
          << ", \"batch_max_tuples\": " << m.batch
          << ", \"wall_ns\": " << m.wall_ns
          << ", \"tuples_per_sec\": " << static_cast<std::uint64_t>(
                 m.tuples_per_sec)
          << "}" << (k + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace spear::bench

int main(int argc, char** argv) { return spear::bench::Main(argc, argv); }
