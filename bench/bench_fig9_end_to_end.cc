/// \file bench_fig9_end_to_end.cc
/// Figure 9 reproduction: total (end-to-end) processing time of the DEC
/// median CQ with count-based windows of 2.5K/5K/10K/20K/47K tuples,
/// Storm vs SPEAr, single worker, b=150 (eps=10%, alpha=95%). With count
/// windows there is no watermark wait, so wall time reflects processing.
/// Paper shape: Storm roughly flat (same total data), SPEAr improves as
/// windows grow (constant sample per window represents more tuples),
/// comparable at 2.5K and >1 order of magnitude faster at 47K.

#include <memory>

#include "harness/harness.h"

namespace spear::bench {
namespace {

CqRunResult RunCountCq(ExecutionEngine engine, std::int64_t window_tuples) {
  SpearTopologyBuilder builder;
  builder
      .Source(std::make_shared<VectorSpout>(DecTuples()))
      .TumblingCountWindowOf(window_tuples)
      .Median(NumericField(DecGenerator::kSizeField))
      .SetBudget(Budget::Tuples(150))
      .Error(0.10, 0.95)
      .Engine(engine);
  return RunCq(builder);
}

void Run() {
  PrintTitle("Figure 9: End-to-end processing time, DEC median, "
             "count-based windows",
             "b=150, single worker; paper shape: comparable at 2.5K, SPEAr "
             ">1 order of magnitude faster at 47K");
  PrintRow({"Window(Kt)", "Storm total", "SPEAr total", "Speedup",
            "Storm/win", "SPEAr/win"});
  for (std::int64_t window : {2'500, 5'000, 10'000, 20'000, 47'000}) {
    const CqRunResult storm = RunCountCq(ExecutionEngine::kExact, window);
    const CqRunResult spear = RunCountCq(ExecutionEngine::kSpear, window);
    char label[32], speedup[32];
    std::snprintf(label, sizeof(label), "%.1fK", window / 1000.0);
    // Total processing time = the stateful worker's busy time (tuple
    // ingestion + window evaluation), excluding transport that is
    // identical across engines.
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  static_cast<double>(storm.stateful_busy_ns) /
                      static_cast<double>(spear.stateful_busy_ns));
    PrintRow({label, FmtMs(static_cast<double>(storm.stateful_busy_ns)),
              FmtMs(static_cast<double>(spear.stateful_busy_ns)), speedup,
              FmtMs(storm.window_ns.mean), FmtMs(spear.window_ns.mean)});
  }
}

}  // namespace
}  // namespace spear::bench

int main() {
  spear::bench::Run();
  return 0;
}
