/// \file bench_fig6_scalability.cc
/// Figure 6 reproduction: mean and 95-percentile window processing time of
/// the Median CQ on DEC, for Storm vs SPEAr, at 1/2/4/6/8 workers
/// ("nodes"). Paper shape: SPEAr flat and 1-2 orders of magnitude below
/// Storm at every parallelism; Storm's per-window time shrinks with nodes
/// as the stream divides.

#include <memory>

#include "harness/harness.h"

namespace spear::bench {
namespace {

CqRunResult RunMedianCq(ExecutionEngine engine, int nodes) {
  SpearTopologyBuilder builder;
  builder
      .Source(std::make_shared<VectorSpout>(DecTuples()), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Median(NumericField(DecGenerator::kSizeField))
      .SetBudget(Budget::Tuples(150))
      .Error(0.10, 0.95)
      .Parallelism(nodes)
      .Engine(engine);
  return RunCq(builder);
}

void Run() {
  PrintTitle("Figure 6: Processing time on Median CQ for DEC",
             "DEC 45s/15s sliding windows, b=150 tuples, eps=10%, alpha=95%; "
             "paper shape: SPEAr 1-2 orders of magnitude below Storm");
  PrintRow({"Nodes", "Storm mean", "Storm p95", "SPEAr mean", "SPEAr p95",
            "Speedup(mean)"});
  for (int nodes : {1, 2, 4, 6, 8}) {
    const CqRunResult storm = RunMedianCq(ExecutionEngine::kExact, nodes);
    const CqRunResult spear = RunMedianCq(ExecutionEngine::kSpear, nodes);
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.1fx",
                  storm.window_ns.mean / spear.window_ns.mean);
    PrintRow({FmtCount(static_cast<std::uint64_t>(nodes)),
              FmtMs(storm.window_ns.mean),
              FmtMs(static_cast<double>(storm.window_ns.p95)),
              FmtMs(spear.window_ns.mean),
              FmtMs(static_cast<double>(spear.window_ns.p95)), speedup});
  }
}

}  // namespace
}  // namespace spear::bench

int main() {
  spear::bench::Run();
  return 0;
}
