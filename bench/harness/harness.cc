#include "harness/harness.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/byte_size.h"
#include "common/time.h"
#include "runtime/windowed_bolt.h"

namespace spear::bench {

CqRunResult RunCq(SpearTopologyBuilder& builder) {
  DecisionStatsCollector decisions;
  builder.CollectDecisions(&decisions);
  auto topology = builder.Build();
  if (!topology.ok()) {
    std::fprintf(stderr, "CQ build failed: %s\n",
                 topology.status().ToString().c_str());
    std::abort();
  }
  const std::int64_t start = NowNs();
  auto report = Executor(std::move(*topology)).Run();
  const std::int64_t wall = NowNs() - start;
  if (!report.ok()) {
    std::fprintf(stderr, "CQ run failed: %s\n",
                 report.status().ToString().c_str());
    std::abort();
  }

  CqRunResult result;
  result.window_ns = report->metrics.StageWindowSummary(
      SpearTopologyBuilder::StatefulStageName());
  result.mean_memory_per_worker = report->metrics.StageMeanMemoryPerWorker(
      SpearTopologyBuilder::StatefulStageName());
  for (const WorkerMetrics* m : report->metrics.ForStage(
           SpearTopologyBuilder::StatefulStageName())) {
    result.stateful_busy_ns += m->busy_ns();
  }
  result.wall_ns = wall;
  result.output = std::move(report->output);
  result.decisions = decisions.Total();
  return result;
}

std::map<std::int64_t, double> DecodeScalarResults(
    const std::vector<Tuple>& output) {
  std::map<std::int64_t, double> out;
  for (const Tuple& t : output) {
    out[t.field(ResultTupleLayout::kEnd).AsInt64()] =
        t.field(ResultTupleLayout::kScalarValue).AsDouble();
  }
  return out;
}

std::map<std::pair<std::int64_t, std::string>, double> DecodeGroupedResults(
    const std::vector<Tuple>& output) {
  std::map<std::pair<std::int64_t, std::string>, double> out;
  for (const Tuple& t : output) {
    out[{t.field(ResultTupleLayout::kEnd).AsInt64(),
         t.field(ResultTupleLayout::kGroupKey).AsString()}] =
        t.field(ResultTupleLayout::kGroupValue).AsDouble();
  }
  return out;
}

namespace {

/// Generation is deterministic, so per-process memoization is safe and
/// keeps multi-configuration benches fast.
template <typename Generator>
const std::vector<Tuple>& Cached(DurationMs duration) {
  static std::mutex mutex;
  static std::unordered_map<DurationMs, std::vector<Tuple>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(duration);
  if (it == cache.end()) {
    typename Generator::Config config;
    config.duration = duration;
    it = cache.emplace(duration, Generator::Generate(config)).first;
  }
  return it->second;
}

}  // namespace

std::vector<Tuple> DecTuples(DurationMs duration) {
  return Cached<DecGenerator>(duration);
}
std::vector<Tuple> GcmTuples(DurationMs duration) {
  return Cached<GcmGenerator>(duration);
}
std::vector<Tuple> DebsTuples(DurationMs duration) {
  return Cached<DebsGenerator>(duration);
}

void PrintTitle(const std::string& title, const std::string& subtitle) {
  std::printf("\n=== %s ===\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
}

void PrintRow(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    std::printf("%-16s", cell.c_str());
  }
  std::printf("\n");
}

std::string FmtMs(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f ms", ns / 1e6);
  return buf;
}

std::string FmtBytes(double bytes) {
  return FormatBytes(static_cast<std::size_t>(bytes));
}

std::string FmtPct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string FmtCount(std::uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, n);
  return buf;
}

}  // namespace spear::bench
