#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/spear_topology_builder.h"
#include "data/datasets.h"
#include "runtime/executor.h"
#include "runtime/spouts.h"

/// \file harness.h
/// Shared machinery of the figure/table reproduction binaries: run a CQ
/// to completion, pool the stateful stage's per-window telemetry, and
/// print paper-shaped rows. Every binary in bench/ prints (i) the workload
/// parameters it used and (ii) the series the corresponding paper figure
/// plots, so EXPERIMENTS.md can be regenerated from bench output alone.

namespace spear::bench {

/// \brief One CQ run's pooled results.
struct CqRunResult {
  /// Per-window processing times pooled across the stateful stage.
  MetricSummary window_ns;
  /// Mean of each worker's average "memory used to produce results".
  double mean_memory_per_worker = 0.0;
  /// End-to-end wall time of Executor::Run.
  std::int64_t wall_ns = 0;
  /// Total busy time across the stateful stage's workers (tuple ingestion
  /// plus watermark processing) — the "total processing time" of Fig. 9.
  std::int64_t stateful_busy_ns = 0;
  /// Result tuples from the final stage.
  std::vector<Tuple> output;
  /// Aggregated SPEAr decisions (zero for non-SPEAr engines).
  DecisionStats decisions;
};

/// \brief Builds and runs a CQ, aborting the process on error (benches
/// have no meaningful recovery).
CqRunResult RunCq(SpearTopologyBuilder& builder);

/// \brief Decodes scalar result tuples as window-end -> value.
std::map<std::int64_t, double> DecodeScalarResults(
    const std::vector<Tuple>& output);

/// \brief Decodes grouped result tuples as (window end, key) -> value.
std::map<std::pair<std::int64_t, std::string>, double> DecodeGroupedResults(
    const std::vector<Tuple>& output);

// ---- dataset caching -------------------------------------------------------

/// Default bench-scale durations (full paper-scale traces are quoted in
/// Table 1 output but not materialized: 56 M tuples do not fit a harness
/// run).
std::vector<Tuple> DecTuples(DurationMs duration = Minutes(20));
std::vector<Tuple> GcmTuples(DurationMs duration = Hours(4));
std::vector<Tuple> DebsTuples(DurationMs duration = Hours(3));

// ---- printing --------------------------------------------------------------

void PrintTitle(const std::string& title, const std::string& subtitle);
void PrintRow(const std::vector<std::string>& cells);
std::string FmtMs(double ns);
std::string FmtBytes(double bytes);
std::string FmtPct(double fraction);
std::string FmtCount(std::uint64_t n);

}  // namespace spear::bench
