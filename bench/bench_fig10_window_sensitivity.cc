/// \file bench_fig10_window_sensitivity.cc
/// Figure 10 reproduction: GCM processing time with window sizes of
/// 900/1800/3600 s (slides 450/900/1800 s), SPEAr budget fixed at b=4000.
/// Paper shape: with the smallest windows only ~68% of windows expedite
/// and the gain is ~2x; at 1800 s ~88% expedite; at 3600 s all windows
/// expedite and the gain exceeds one order of magnitude. In this
/// reproduction the driver is GCM's CPU-usage bursts: a burst dominates a
/// 900 s window (within-window variance spikes, the estimator refuses),
/// but is diluted across a 3600 s window.

#include <memory>

#include "harness/harness.h"

namespace spear::bench {
namespace {

CqRunResult RunGcm(ExecutionEngine engine, DurationMs range) {
  SpearTopologyBuilder builder;
  builder
      .Source(std::make_shared<VectorSpout>(GcmTuples(Hours(6))), range / 2)
      .SlidingWindowOf(range, range / 2)
      .Mean(NumericField(GcmGenerator::kCpuField))
      .GroupBy(KeyField(GcmGenerator::kClassField))
      .SetBudget(Budget::Tuples(4000))
      .Error(0.10, 0.95)
      .KnownGroups(8)
      .Parallelism(4)
      .Engine(engine);
  return RunCq(builder);
}

void Run() {
  PrintTitle("Figure 10: GCM processing time with varying window sizes",
             "grouped mean, b=4000, 4 workers; paper shape: expedite rate "
             "grows with window size (~68% -> ~88% -> 100%), speedup "
             "2x -> >10x");
  PrintRow({"Window(s)", "Storm mean", "Storm p95", "SPEAr mean",
            "SPEAr p95", "Expedited"});
  for (DurationMs range : {Seconds(900), Seconds(1800), Seconds(3600)}) {
    const CqRunResult storm = RunGcm(ExecutionEngine::kExact, range);
    const CqRunResult spear = RunGcm(ExecutionEngine::kSpear, range);
    PrintRow({FmtCount(static_cast<std::uint64_t>(range / 1000)),
              FmtMs(storm.window_ns.mean),
              FmtMs(static_cast<double>(storm.window_ns.p95)),
              FmtMs(spear.window_ns.mean),
              FmtMs(static_cast<double>(spear.window_ns.p95)),
              FmtPct(spear.decisions.ExpediteRate())});
  }
}

}  // namespace
}  // namespace spear::bench

int main() {
  spear::bench::Run();
  return 0;
}
