/// \file bench_ablation_sampling.cc
/// Ablation B (google-benchmark micro-suite) for the design choices inside
/// SPEAr's budget machinery:
///   * reservoir Algorithm R vs Algorithm L offer cost (L's geometric
///     skips should win at large window/budget ratios);
///   * congress vs proportional-only stratified allocation (quality is
///     covered by tests; here we measure allocation cost);
///   * CountMin per-tuple update vs a reservoir offer + moment update —
///     the per-tuple overhead gap behind Table 2;
///   * the accuracy estimator's watermark-time cost (the "constant number
///     of operations" claim of Sec. 4.2).

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/estimators.h"
#include "sketch/count_min.h"
#include "sketch/gk_quantile.h"
#include "stats/congress.h"
#include "stats/reservoir_sampler.h"
#include "stats/running_stats.h"

namespace spear {
namespace {

void BM_ReservoirAlgorithmR(benchmark::State& state) {
  const auto budget = static_cast<std::size_t>(state.range(0));
  ReservoirSampler<double> sampler(budget, 1,
                                   ReservoirAlgorithm::kAlgorithmR);
  double x = 0.0;
  for (auto _ : state) {
    sampler.Offer(x);
    x += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReservoirAlgorithmR)->Arg(150)->Arg(1000)->Arg(4000);

void BM_ReservoirAlgorithmL(benchmark::State& state) {
  const auto budget = static_cast<std::size_t>(state.range(0));
  ReservoirSampler<double> sampler(budget, 1,
                                   ReservoirAlgorithm::kAlgorithmL);
  double x = 0.0;
  for (auto _ : state) {
    sampler.Offer(x);
    x += 1.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReservoirAlgorithmL)->Arg(150)->Arg(1000)->Arg(4000);

void BM_RunningStatsUpdate(benchmark::State& state) {
  RunningStats stats;
  double x = 0.0;
  for (auto _ : state) {
    stats.Update(x);
    x += 0.5;
  }
  benchmark::DoNotOptimize(stats.mean());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunningStatsUpdate);

void BM_CountMinUpdate(benchmark::State& state) {
  // Sized for eps=10% / conf=95%, the Table 2 configuration.
  auto sketch = CountMinSketch::Make(0.10, 0.05);
  Rng rng(3);
  std::vector<std::string> keys;
  for (int i = 0; i < 1024; ++i) keys.push_back("g" + std::to_string(i));
  std::size_t i = 0;
  for (auto _ : state) {
    sketch->Update(keys[i++ & 1023], 1.0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinUpdate);

void BM_CongressAllocate(benchmark::State& state) {
  const auto groups = static_cast<std::size_t>(state.range(0));
  std::unordered_map<std::string, std::uint64_t> freq;
  for (std::size_t g = 0; g < groups; ++g) {
    freq["g" + std::to_string(g)] = 1 + 10000 / (g + 1);
  }
  for (auto _ : state) {
    auto allocs = CongressAllocate(freq, 4000);
    benchmark::DoNotOptimize(allocs);
  }
}
BENCHMARK(BM_CongressAllocate)->Arg(8)->Arg(128)->Arg(2048);

void BM_ProportionalAllocate(benchmark::State& state) {
  const auto groups = static_cast<std::size_t>(state.range(0));
  std::unordered_map<std::string, std::uint64_t> freq;
  for (std::size_t g = 0; g < groups; ++g) {
    freq["g" + std::to_string(g)] = 1 + 10000 / (g + 1);
  }
  for (auto _ : state) {
    auto allocs = ProportionalAllocate(freq, 4000);
    benchmark::DoNotOptimize(allocs);
  }
}
BENCHMARK(BM_ProportionalAllocate)->Arg(8)->Arg(128)->Arg(2048);

void BM_GkQuantileAdd(benchmark::State& state) {
  // The deterministic bounded-memory alternative for holistic ops: one
  // ordered insert + periodic compress per tuple, vs the reservoir's O(1).
  auto gk = GkQuantileSketch::Make(0.01);
  Rng rng(7);
  for (auto _ : state) {
    gk->Add(rng.NextDouble());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GkQuantileAdd);

void BM_GkQuantileQuery(benchmark::State& state) {
  auto gk = GkQuantileSketch::Make(0.01);
  Rng rng(8);
  for (int i = 0; i < 100000; ++i) gk->Add(rng.NextDouble());
  for (auto _ : state) {
    auto q = gk->Quantile(0.95);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_GkQuantileQuery);

void BM_ScalarMeanEstimate(benchmark::State& state) {
  // Watermark-time estimation cost over a b=1000 sample.
  Rng rng(5);
  std::vector<double> sample;
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) {
    const double v = 10.0 + rng.NextGaussian();
    sample.push_back(v);
    stats.Update(v);
  }
  const AccuracySpec spec{0.10, 0.95};
  for (auto _ : state) {
    auto est = EstimateScalar(AggregateSpec::Mean(), sample, stats, 47000,
                              spec);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_ScalarMeanEstimate);

void BM_QuantileEstimate(benchmark::State& state) {
  Rng rng(6);
  std::vector<double> sample;
  for (int i = 0; i < 150; ++i) sample.push_back(rng.NextDouble());
  const AccuracySpec spec{0.10, 0.99};
  for (auto _ : state) {
    auto est = EstimateScalarQuantile(0.5, sample, 47000, spec);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_QuantileEstimate);

}  // namespace
}  // namespace spear

BENCHMARK_MAIN();
