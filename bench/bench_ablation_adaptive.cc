/// \file bench_ablation_adaptive.cc
/// Ablation C: online budget adaptation (the paper's future-work
/// extension, implemented in core/budget_controller.h). The DEC median CQ
/// starts with a deliberately undersized budget:
///   * fixed-small     — every window fails the test and pays exact cost;
///   * fixed-large     — works, but over-provisions memory for the whole
///                       run (the situation SPEAr wants to avoid);
///   * adaptive        — starts small, grows on fallbacks, settles just
///                       above the required sample size.

#include <memory>

#include "harness/harness.h"

namespace spear::bench {
namespace {

struct Variant {
  std::string name;
  std::size_t budget;
  bool adaptive;
};

void Run() {
  PrintTitle("Ablation C: online budget adaptation (DEC median)",
             "fixed-small pays exact cost each window; adaptive converges "
             "to the required sample size after a few fallbacks");
  PrintRow({"Variant", "Win mean", "Win p95", "Expedited", "Final b"});
  for (const Variant& v :
       {Variant{"fixed-small", 40, false}, Variant{"fixed-large", 4000, false},
        Variant{"adaptive(40)", 40, true}}) {
    SpearTopologyBuilder builder;
    builder
        .Source(std::make_shared<VectorSpout>(DecTuples()), Seconds(15))
        .SlidingWindowOf(Seconds(45), Seconds(15))
        .Median(NumericField(DecGenerator::kSizeField))
        .SetBudget(Budget::Tuples(v.budget))
        .Error(0.10, 0.95);
    if (v.adaptive) builder.AdaptiveBudget();
    const CqRunResult run = RunCq(builder);
    PrintRow({v.name, FmtMs(run.window_ns.mean),
              FmtMs(static_cast<double>(run.window_ns.p95)),
              FmtPct(run.decisions.ExpediteRate()),
              v.adaptive ? "adaptive" : FmtCount(v.budget)});
  }
}

}  // namespace
}  // namespace spear::bench

int main() {
  spear::bench::Run();
  return 0;
}
