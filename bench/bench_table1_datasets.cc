/// \file bench_table1_datasets.cc
/// Table 1 reproduction: dataset and query properties. The paper's totals
/// (56 M / 24 M / 4 M tuples) refer to the full traces; our generators are
/// rate-calibrated, so we synthesize a bench-scale slice, measure the
/// realized average window size, and extrapolate the full-trace total from
/// the measured rate and the original trace durations.

#include <cstdio>
#include <unordered_set>

#include "harness/harness.h"
#include "window/window_assigner.h"

namespace spear::bench {
namespace {

struct DatasetRow {
  WorkloadSpec spec;
  std::vector<Tuple> tuples;
  DurationMs slice_duration;
  /// Full-trace duration implied by the paper (total / rate).
  double full_trace_hours;
};

void PrintDataset(const DatasetRow& row) {
  // Average window size over complete windows in the slice.
  const WindowSpec window =
      WindowSpec::SlidingTime(row.spec.window_range, row.spec.window_slide);
  std::map<std::int64_t, std::uint64_t> window_counts;
  for (const Tuple& t : row.tuples) {
    for (const WindowBounds& w : AssignWindows(window, t.event_time())) {
      if (w.end <= row.slice_duration) ++window_counts[w.start];
    }
  }
  double avg_window = 0.0;
  for (const auto& [start, count] : window_counts) {
    avg_window += static_cast<double>(count);
  }
  if (!window_counts.empty()) {
    avg_window /= static_cast<double>(window_counts.size());
  }

  const double rate_per_s = static_cast<double>(row.tuples.size()) /
                            (static_cast<double>(row.slice_duration) / 1000.0);
  const double extrapolated_total =
      rate_per_s * row.full_trace_hours * 3600.0;

  char win[64], slide[64], avg[64], total[64];
  std::snprintf(win, sizeof(win), "%lld s",
                static_cast<long long>(row.spec.window_range / 1000));
  std::snprintf(slide, sizeof(slide), "%lld s",
                static_cast<long long>(row.spec.window_slide / 1000));
  std::snprintf(avg, sizeof(avg), "~%.0fK", avg_window / 1000.0);
  std::snprintf(total, sizeof(total), "~%.0fM (extrap.)",
                extrapolated_total / 1e6);
  PrintRow({row.spec.name, total, win, slide, avg});
}

void Run() {
  PrintTitle("Table 1: Datasets and Queries Used",
             "paper: DEBS 56M/30min/15min/~10K; GCM 24M/60min/30min/320K; "
             "DEC 4M/45s/15s/47K");
  PrintRow({"Dataset", "Total Tuples", "Win. Size", "Win. Slide",
            "Avg. Win. Size"});

  // Full-trace durations implied by the paper's totals and our calibrated
  // rates: DEBS 56M / 5.56/s ~ 2798h (the 2015 grand-challenge year of
  // data); GCM 24M / 88.9/s ~ 75h; DEC 4M / 1044/s ~ 1.06h.
  PrintDataset({WorkloadSpec::Debs(), DebsTuples(Hours(3)), Hours(3), 2798});
  PrintDataset({WorkloadSpec::Gcm(), GcmTuples(Hours(4)), Hours(4), 75});
  PrintDataset({WorkloadSpec::Dec(), DecTuples(Minutes(20)), Minutes(20),
                1.064});

  // Sanity: distinct group counts per dataset slice (drives the grouped
  // experiments' budget choices).
  std::unordered_set<std::string> debs_routes;
  for (const Tuple& t : DebsTuples(Hours(3))) {
    debs_routes.insert(t.field(DebsGenerator::kRouteField).AsString());
  }
  std::unordered_set<std::string> gcm_classes;
  for (const Tuple& t : GcmTuples(Hours(4))) {
    gcm_classes.insert(t.field(GcmGenerator::kClassField).ToString());
  }
  std::printf("\nDistinct groups in slice: DEBS routes=%zu, GCM classes=%zu\n",
              debs_routes.size(), gcm_classes.size());
}

}  // namespace
}  // namespace spear::bench

int main() {
  spear::bench::Run();
  return 0;
}
