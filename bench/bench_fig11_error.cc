/// \file bench_fig11_error.cc
/// Figure 11 reproduction: relative error per window on DEC (mean CQ,
/// incremental optimization disabled) at budgets 250/500/1000. The paper
/// plots the per-window error series; we print the series summary plus
/// the first windows of each series. Paper shape:
///   b=250  — most windows NOT accelerated (error 0 = exact), a few
///            accelerated windows above the 10% line;
///   b=500  — all windows accelerated, ~10% of them above the line;
///   b=1000 — all accelerated, almost none above the line.

#include <cmath>
#include <memory>

#include "harness/harness.h"
#include "stats/error_metrics.h"

namespace spear::bench {
namespace {

/// DEC's packet-size mixture has cv ~ 0.85, which puts budgets
/// 250/500/1000 at the reject / borderline / accept regimes the paper
/// demonstrates under the standard 10% specification.
constexpr double kEpsilon = 0.10;

void Run() {
  PrintTitle("Figure 11: Relative error per window on DEC",
             "mean CQ, incremental optimization off, eps=10%, conf=95%; "
             "error 0 = window processed exactly (not accelerated)");

  // Exact reference series.
  SpearTopologyBuilder storm;
  storm.Source(std::make_shared<VectorSpout>(DecTuples()), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Mean(NumericField(DecGenerator::kSizeField))
      .Engine(ExecutionEngine::kExact);
  const auto exact = DecodeScalarResults(RunCq(storm).output);

  for (std::size_t budget : {250u, 500u, 1000u}) {
    SpearTopologyBuilder spear;
    spear.Source(std::make_shared<VectorSpout>(DecTuples()), Seconds(15))
        .SlidingWindowOf(Seconds(45), Seconds(15))
        .Mean(NumericField(DecGenerator::kSizeField))
        .SetBudget(Budget::Tuples(budget))
        .Error(kEpsilon, 0.95)
        .DisableIncrementalOptimization();
    const CqRunResult run = RunCq(spear);

    std::size_t windows = 0, violations = 0;
    double max_err = 0.0, sum_err = 0.0;
    std::vector<double> series;
    for (const Tuple& t : run.output) {
      const std::int64_t end = t.field(ResultTupleLayout::kEnd).AsInt64();
      const bool approx =
          t.field(ResultTupleLayout::kScalarApprox).AsInt64() == 1;
      const double value =
          t.field(ResultTupleLayout::kScalarValue).AsDouble();
      // Error 0 when the window was processed exactly, as in the figure.
      const double err =
          approx ? RelativeError(value, exact.at(end)) : 0.0;
      series.push_back(err);
      ++windows;
      sum_err += err;
      max_err = std::max(max_err, err);
      if (err > kEpsilon) ++violations;
    }

    std::printf("\nbudget = %zu: windows=%zu accelerated=%s "
                "violations(err>%.0f%%)=%zu mean_err=%.2f%% max_err=%.2f%%\n",
                budget, windows,
                FmtPct(run.decisions.ExpediteRate()).c_str(), kEpsilon * 100,
                violations, 100.0 * sum_err / std::max<std::size_t>(windows, 1),
                100.0 * max_err);
    std::printf("first windows: ");
    for (std::size_t i = 0; i < std::min<std::size_t>(series.size(), 16); ++i) {
      std::printf("%.2f%% ", 100.0 * series[i]);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace spear::bench

int main() {
  spear::bench::Run();
  return 0;
}
