#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "harness/harness.h"
#include "storage/secondary_storage.h"

/// \file bench_overload.cc
/// Measures what overload control buys under sustained over-capacity
/// ingest. The stateful stage pays simulated secondary-storage latency per
/// spilled tuple, pinning its service rate well below the source's offered
/// rate (roughly 2x over capacity at the default knobs), and the same
/// query runs with the subsystem off (backpressure is the only relief
/// valve) and on (accuracy-aware shedding against a latency SLO). Reported
/// per configuration: wall time, p50/p99 per-window processing latency,
/// shed ratio, and time spent blocked on full queues.
///
///   bench_overload [--tuples N] [--json FILE]
///
/// --json writes the results as JSON (BENCH_overload.json keeps the
/// committed baseline for the trajectory across PRs).

namespace spear::bench {
namespace {

struct Measurement {
  std::string config;
  std::size_t tuples = 0;
  std::int64_t wall_ns = 0;
  MetricSummary window_ns;
  std::uint64_t tuples_shed = 0;
  double shed_ratio = 0.0;
  std::int64_t backpressure_ns = 0;
  std::uint64_t degraded_windows = 0;
};

std::vector<Tuple> Stream(std::size_t n) {
  std::vector<Tuple> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double v = 50.0 + static_cast<double>((i * 37) % 101);
    out.emplace_back(static_cast<Timestamp>(i), std::vector<Value>{Value(v)});
  }
  return out;
}

Measurement RunOnce(const std::vector<Tuple>& tuples, bool overload_control) {
  // The spill path charges 20 us per stored tuple once the in-memory
  // buffer (48 tuples) is full — the stage's service rate is storage-bound
  // while the vector-backed source produces at memory speed.
  SecondaryStorage storage(StorageLatencyModel{20'000, 0});
  SpearTopologyBuilder builder;
  builder.Source(std::make_shared<VectorSpout>(tuples),
                 /*watermark_interval=*/50)
      .TumblingWindowOf(500)
      .Mean(NumericField(0))
      .SetBudget(Budget::Tuples(128))
      .Error(0.25, 0.95)
      .Parallelism(1)
      .QueueCapacity(64)
      .SpillOver(48, &storage);
  if (overload_control) {
    ShedPolicy policy;
    policy.queue_high_watermark = 0.5;
    policy.shed_step = 0.3;
    policy.shed_decay = 0.9;
    policy.max_shed_probability = 0.9;
    builder.LatencySlo(1).Shed(policy);
  }
  auto topology = builder.Build();
  if (!topology.ok()) {
    std::cerr << "topology: " << topology.status().ToString() << "\n";
    std::abort();
  }
  const std::int64_t start = NowNs();
  auto report = Executor(std::move(*topology)).Run();
  const std::int64_t wall = NowNs() - start;
  if (!report.ok()) {
    std::cerr << "run: " << report.status().ToString() << "\n";
    std::abort();
  }
  Measurement m;
  m.config = overload_control ? "on" : "off";
  m.tuples = tuples.size();
  m.wall_ns = wall;
  m.window_ns = report->metrics.StageWindowSummary(
      SpearTopologyBuilder::StatefulStageName());
  m.tuples_shed = report->overload.tuples_shed;
  m.shed_ratio = static_cast<double>(m.tuples_shed) /
                 static_cast<double>(tuples.size());
  m.backpressure_ns = report->overload.backpressure_wait_ns;
  m.degraded_windows = report->faults.degraded_windows;
  return m;
}

int Main(int argc, char** argv) {
  std::size_t num_tuples = 40'000;
  std::string json_path;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--tuples") == 0 && a + 1 < argc) {
      num_tuples = static_cast<std::size_t>(std::stoull(argv[++a]));
    } else if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[++a];
    } else {
      std::cerr << "usage: " << argv[0] << " [--tuples N] [--json FILE]\n";
      return 2;
    }
  }

  const std::vector<Tuple> tuples = Stream(num_tuples);

  PrintTitle("Overload control under 2x over-capacity ingest",
             "storage-bound stateful stage (20 us/spilled tuple), " +
                 FmtCount(num_tuples) +
                 " tuples; off = backpressure only, on = shed vs 1 ms SLO");
  PrintRow({"overload control", "wall", "window p50", "window p99",
            "shed ratio", "blocked", "degraded windows"});

  // Warm-up, then best-of-3 per config, interleaved so scheduler-noise
  // windows do not land on a single configuration.
  constexpr int kSweeps = 3;
  RunOnce(tuples, false);
  Measurement results[2];
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    for (int cfg = 0; cfg < 2; ++cfg) {
      const Measurement m = RunOnce(tuples, cfg == 1);
      if (sweep == 0 || m.wall_ns < results[cfg].wall_ns) results[cfg] = m;
    }
  }

  for (const Measurement& m : results) {
    PrintRow({m.config, FmtMs(static_cast<double>(m.wall_ns)),
              FmtMs(static_cast<double>(m.window_ns.p50)),
              FmtMs(static_cast<double>(m.window_ns.p99)),
              FmtPct(m.shed_ratio),
              FmtMs(static_cast<double>(m.backpressure_ns)),
              FmtCount(m.degraded_windows)});
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"overload\",\n"
        << "  \"workload\": \"storage-bound stateful stage, 2x "
           "over-capacity source\",\n"
        << "  \"tuples\": " << num_tuples << ",\n  \"results\": [\n";
    for (int k = 0; k < 2; ++k) {
      const Measurement& m = results[k];
      out << "    {\"overload_control\": \"" << m.config << "\""
          << ", \"wall_ns\": " << m.wall_ns
          << ", \"window_p50_ns\": " << m.window_ns.p50
          << ", \"window_p99_ns\": " << m.window_ns.p99
          << ", \"tuples_shed\": " << m.tuples_shed
          << ", \"shed_ratio\": " << m.shed_ratio
          << ", \"backpressure_wait_ns\": " << m.backpressure_ns
          << ", \"degraded_windows\": " << m.degraded_windows << "}"
          << (k == 0 ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace spear::bench

int main(int argc, char** argv) { return spear::bench::Main(argc, argv); }
