/// \file bench_ablation_buffers.cc
/// Ablation A: the single-buffer (Storm) vs multiple-buffers (Flink)
/// window manager designs of the paper's Sec. 2 (Figs. 3-4). Expected
/// shape: for a sliding window with range/slide = 3, the multi-buffer
/// design holds ~3x the tuples (one copy per participating window) but
/// stages windows without a scan; the single-buffer design holds each
/// tuple once and pays a scan per staged window.

#include <memory>

#include "common/time.h"
#include "harness/harness.h"
#include "ops/incremental_operator.h"
#include "ops/paned_incremental.h"

namespace spear::bench {
namespace {

CqRunResult RunDec(ExecutionEngine engine) {
  SpearTopologyBuilder builder;
  builder
      .Source(std::make_shared<VectorSpout>(DecTuples()), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Mean(NumericField(DecGenerator::kSizeField))
      .Engine(engine);
  return RunCq(builder);
}

void Run() {
  PrintTitle("Ablation A: single-buffer vs multiple-buffers design",
             "DEC mean CQ, 45s/15s sliding (range/slide = 3)");
  PrintRow({"Design", "Win mean", "Win p95", "Busy total"});
  const CqRunResult single = RunDec(ExecutionEngine::kExact);
  const CqRunResult multi = RunDec(ExecutionEngine::kExactMulti);
  PrintRow({"single-buffer", FmtMs(single.window_ns.mean),
            FmtMs(static_cast<double>(single.window_ns.p95)),
            FmtMs(static_cast<double>(single.stateful_busy_ns))});
  PrintRow({"multi-buffer", FmtMs(multi.window_ns.mean),
            FmtMs(static_cast<double>(multi.window_ns.p95)),
            FmtMs(static_cast<double>(multi.stateful_busy_ns))});
  std::printf(
      "note: the multi-buffer design trades ~range/slide x the buffered\n"
      "tuples for scan-free window staging; memory figures per design are\n"
      "in Figure 7's bench (Storm column) and the window-manager tests.\n");

  // ---- incremental state sharing: per-window vs paned -------------------
  // Per-window accumulators update once per overlapping window (x3 here);
  // panes update exactly one slice per tuple and merge at watermark.
  PrintTitle("Ablation A2: per-window vs pane-shared incremental state",
             "DEC mean CQ ingest cost, 45s/15s sliding (overlap 3)");
  const auto tuples = DecTuples();
  const WindowSpec window = WindowSpec::SlidingTime(Seconds(45), Seconds(15));

  IncrementalOperator per_window(AggregateSpec::Mean(), window,
                                 NumericField(DecGenerator::kSizeField));
  PanedIncrementalOperator paned(AggregateSpec::Mean(), window,
                                 NumericField(DecGenerator::kSizeField));
  std::int64_t per_window_ns = 0, paned_ns = 0;
  {
    ScopedTimerNs timer(&per_window_ns);
    for (const Tuple& t : tuples) per_window.OnTuple(t.event_time(), t);
    (void)per_window.OnWatermark(kMaxTimestamp);
  }
  {
    ScopedTimerNs timer(&paned_ns);
    for (const Tuple& t : tuples) paned.OnTuple(t.event_time(), t);
    (void)paned.OnWatermark(kMaxTimestamp);
  }
  PrintRow({"State design", "Total (ingest+emit)", "ns/tuple"});
  char per_tuple[32];
  std::snprintf(per_tuple, sizeof(per_tuple), "%.1f",
                static_cast<double>(per_window_ns) /
                    static_cast<double>(tuples.size()));
  PrintRow({"per-window", FmtMs(static_cast<double>(per_window_ns)),
            per_tuple});
  std::snprintf(per_tuple, sizeof(per_tuple), "%.1f",
                static_cast<double>(paned_ns) /
                    static_cast<double>(tuples.size()));
  PrintRow({"paned", FmtMs(static_cast<double>(paned_ns)), per_tuple});
}

}  // namespace
}  // namespace spear::bench

int main() {
  spear::bench::Run();
  return 0;
}
