/// \file bench_ablation_holistic.cc
/// Ablation D: three ways to run a holistic operation (DEC median) —
///   * Storm       — exact: buffer + partial sort per window;
///   * SPEAr       — reservoir sample + budget test (probabilistic rank
///                   guarantee, O(1)/tuple, O(b) at watermark);
///   * GK summary  — Greenwald-Khanna per window (deterministic rank
///                   guarantee, O(log s)/tuple insert+compress, O(s) at
///                   watermark).
/// SPEAr shifts work away from the per-tuple path; GK shifts it into the
/// per-tuple path. The busy-total column exposes exactly that trade-off.

#include <memory>

#include "harness/harness.h"

namespace spear::bench {
namespace {

CqRunResult RunMedian(ExecutionEngine engine) {
  SpearTopologyBuilder builder;
  builder
      .Source(std::make_shared<VectorSpout>(DecTuples()), Seconds(15))
      .SlidingWindowOf(Seconds(45), Seconds(15))
      .Median(NumericField(DecGenerator::kSizeField))
      .SetBudget(Budget::Tuples(150))
      .Error(0.10, 0.95)
      .Engine(engine);
  return RunCq(builder);
}

void Run() {
  PrintTitle("Ablation D: holistic execution strategies (DEC median)",
             "eps=10% rank error for SPEAr (prob.) and GK (deterministic)");
  PrintRow({"System", "Win mean", "Win p95", "Busy total", "Mem/worker"});
  for (ExecutionEngine engine :
       {ExecutionEngine::kExact, ExecutionEngine::kSpear,
        ExecutionEngine::kGkQuantile}) {
    const CqRunResult run = RunMedian(engine);
    PrintRow({ExecutionEngineName(engine), FmtMs(run.window_ns.mean),
              FmtMs(static_cast<double>(run.window_ns.p95)),
              FmtMs(static_cast<double>(run.stateful_busy_ns)),
              FmtBytes(run.mean_memory_per_worker)});
  }
}

}  // namespace
}  // namespace spear::bench

int main() {
  spear::bench::Run();
  return 0;
}
