#!/usr/bin/env bash
# Runs the overload-control suite across a spread of seeds. Each seed
# moves the combined overload+crash chaos test's injected kWorkerCrash
# points (FaultPlan.every_nth depends on SPEAR_OVERLOAD_SEED), so the
# sweep exercises crashes landing at different points of an actively
# shedding run — shed accounting must survive every one of them.
# Usage: scripts/check_overload.sh [build-dir] [num-seeds]
set -euo pipefail

BUILD_DIR="${1:-build}"
NUM_SEEDS="${2:-10}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SUITE="$ROOT/$BUILD_DIR/tests/spear_overload_tests"

if [ ! -x "$SUITE" ]; then
  echo "building spear_overload_tests in $BUILD_DIR..."
  cmake --build "$ROOT/$BUILD_DIR" --target spear_overload_tests
fi

for ((seed = 1; seed <= NUM_SEEDS; ++seed)); do
  echo "=== overload suite, seed $seed ==="
  SPEAR_OVERLOAD_SEED="$seed" "$SUITE" \
    --gtest_filter='Overload*' --gtest_brief=1
done
echo "overload: $NUM_SEEDS seeds clean"
