#!/usr/bin/env bash
# Full local check: configure, build, run every test, the crash-chaos
# recovery sweep, the overload-control sweep, an ASan pass over the
# fault-injection suites, then every bench.
# Usage: scripts/check.sh [build-dir]
#
# SPEAR_CHECK_MATRIX=1 widens the sanitizer pass into the full matrix:
# plain + ASan + TSan + UBSan in sequence (the TSan pass covers the
# executor's supervision/recovery/overload machinery, where races would
# otherwise only lose intermittently; the UBSan pass covers the lock-free
# shed arithmetic), plus the 20x stress rerun of the timing-sensitive
# chaos tests (scripts/check_stress.sh) whose failures are intermittent
# by nature.
#
# SPEAR_COVERAGE=1 builds instrumented (--coverage) in <build-dir>-cov,
# runs the full suite there, and prints a gcovr line-coverage summary
# (skipped with a note when gcovr is not installed).
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -S "$ROOT" -B "$ROOT/$BUILD_DIR" -G Ninja
cmake --build "$ROOT/$BUILD_DIR"
ctest --test-dir "$ROOT/$BUILD_DIR" -j"$(nproc)" --output-on-failure

# Crash-chaos recovery suite across seeds (varies the crash points).
"$ROOT/scripts/check_recovery.sh" "$BUILD_DIR"

# Overload-control suite across seeds (varies the crash-while-shedding
# points of the combined chaos test).
"$ROOT/scripts/check_overload.sh" "$BUILD_DIR"

# Chaos paths (exception unwinding, cancellation, quarantine) under ASan.
"$ROOT/scripts/check_asan.sh" "$BUILD_DIR-asan"

if [ "${SPEAR_CHECK_MATRIX:-0}" = "1" ]; then
  "$ROOT/scripts/check_tsan.sh" "$BUILD_DIR-tsan"
  "$ROOT/scripts/check_ubsan.sh" "$BUILD_DIR-ubsan"
  # 20x rerun of the timing-sensitive chaos tests; reuses the TSan build
  # the matrix just produced for its sanitized sweep.
  "$ROOT/scripts/check_stress.sh" "$BUILD_DIR"
fi

if [ "${SPEAR_COVERAGE:-0}" = "1" ]; then
  if command -v gcovr > /dev/null 2>&1; then
    cmake -S "$ROOT" -B "$ROOT/$BUILD_DIR-cov" \
      -DSPEAR_COVERAGE=ON -DSPEAR_BUILD_BENCHMARKS=OFF \
      -DSPEAR_BUILD_EXAMPLES=OFF
    cmake --build "$ROOT/$BUILD_DIR-cov" -j"$(nproc)"
    ctest --test-dir "$ROOT/$BUILD_DIR-cov" -j"$(nproc)" --output-on-failure
    echo "=== line coverage (gcovr) ==="
    gcovr --root "$ROOT" --filter "$ROOT/src/" \
      --object-directory "$ROOT/$BUILD_DIR-cov" \
      --print-summary --sort-percentage | tail -40
  else
    echo "SPEAR_COVERAGE=1 set but gcovr not installed; skipping summary"
  fi
fi

for bench in "$ROOT/$BUILD_DIR"/bench/bench_*; do
  [ -x "$bench" ] || continue
  echo "=== $(basename "$bench") ==="
  "$bench"
done
