#!/usr/bin/env bash
# Full local check: configure, build, run every test, an ASan pass over
# the fault-injection suites, then every bench.
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -S "$ROOT" -B "$ROOT/$BUILD_DIR" -G Ninja
cmake --build "$ROOT/$BUILD_DIR"
ctest --test-dir "$ROOT/$BUILD_DIR" -j"$(nproc)" --output-on-failure

# Chaos paths (exception unwinding, cancellation, quarantine) under ASan.
"$ROOT/scripts/check_asan.sh" "$BUILD_DIR-asan"

for bench in "$ROOT/$BUILD_DIR"/bench/bench_*; do
  [ -x "$bench" ] || continue
  echo "=== $(basename "$bench") ==="
  "$bench"
done
