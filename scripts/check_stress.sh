#!/usr/bin/env bash
# Reruns the timing-sensitive chaos suites (ctest label `stress`:
# recovery + overload/watchdog) many times, because their failure mode is
# intermittent — a single green run proves nothing about a race that
# loses 5% of the time. Runs the plain build first, then the same sweep
# under TSan (pass `--no-tsan` to skip it; the TSan build is slow).
# Usage: scripts/check_stress.sh [build-dir] [repeats] [--no-tsan]
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR=build
REPEATS=20
RUN_TSAN=1
pos=0
for arg in "$@"; do
  if [ "$arg" = "--no-tsan" ]; then
    RUN_TSAN=0
    continue
  fi
  pos=$((pos + 1))
  case $pos in
    1) BUILD_DIR="$arg" ;;
    2) REPEATS="$arg" ;;
    *) echo "usage: $0 [build-dir] [repeats] [--no-tsan]" >&2; exit 2 ;;
  esac
done

# The flake-prone tests: watchdog/deadline timing, crash-while-shedding
# chaos, and lossy-recovery accounting. Kept as an explicit gtest filter
# so one flaky *case* is rerun 20x, not just its whole suite once.
STRESS_FILTER='*Watchdog*:*Chaos*:*Deadline*:*LossyRecovery*:*Shed*'

run_sweep() {
  local build="$1" tag="$2" fails=0
  cmake --build "$ROOT/$build" -j"$(nproc)" --target \
    spear_recovery_tests spear_overload_tests
  for ((i = 1; i <= REPEATS; ++i)); do
    for suite in spear_recovery_tests spear_overload_tests; do
      if ! "$ROOT/$build/tests/$suite" \
          --gtest_filter="$STRESS_FILTER" --gtest_brief=1 \
          > /tmp/spear_stress_last.log 2>&1; then
        fails=$((fails + 1))
        echo "[$tag] FAIL rep $i $suite:"
        tail -30 /tmp/spear_stress_last.log
      fi
    done
  done
  if [ "$fails" -ne 0 ]; then
    echo "[$tag] stress: $fails failing rep(s) out of $REPEATS"
    return 1
  fi
  echo "[$tag] stress: $REPEATS reps clean"
}

if [ ! -d "$ROOT/$BUILD_DIR" ]; then
  cmake -S "$ROOT" -B "$ROOT/$BUILD_DIR"
fi
run_sweep "$BUILD_DIR" plain

if [ "$RUN_TSAN" = "1" ]; then
  cmake -S "$ROOT" -B "$ROOT/$BUILD_DIR-tsan" \
    -DSPEAR_SANITIZE=thread \
    -DSPEAR_BUILD_BENCHMARKS=OFF \
    -DSPEAR_BUILD_EXAMPLES=OFF
  export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
  run_sweep "$BUILD_DIR-tsan" tsan
fi
