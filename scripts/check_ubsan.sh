#!/usr/bin/env bash
# Builds the overload-control and runtime suites under
# UndefinedBehaviorSanitizer and runs them. The shedding/watchdog paths
# lean on lock-free arithmetic (CAS loops over doubles, clock deltas,
# occupancy ratios) — exactly where signed overflow or bad float-to-int
# conversions would hide in a plain build.
# Usage: scripts/check_ubsan.sh [build-dir]   (default: build-ubsan)
set -euo pipefail

BUILD_DIR="${1:-build-ubsan}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -S "$ROOT" -B "$ROOT/$BUILD_DIR" \
  -DSPEAR_SANITIZE=undefined \
  -DSPEAR_BUILD_BENCHMARKS=OFF \
  -DSPEAR_BUILD_EXAMPLES=OFF
cmake --build "$ROOT/$BUILD_DIR" -j"$(nproc)" \
  --target spear_common_tests spear_overload_tests spear_runtime_tests

# -fno-sanitize-recover=all already aborts on the first report; print
# stacks so a failure is diagnosable from CI logs alone.
export UBSAN_OPTIONS="print_stacktrace=1 ${UBSAN_OPTIONS:-}"
"$ROOT/$BUILD_DIR/tests/spear_common_tests"
"$ROOT/$BUILD_DIR/tests/spear_overload_tests"
"$ROOT/$BUILD_DIR/tests/spear_runtime_tests"
echo "UBSan: common + overload + runtime suites clean"
