#!/usr/bin/env bash
# Runs the crash-chaos recovery suite across a spread of seeds. Each seed
# moves the injected kWorkerCrash points (FaultPlan.every_nth depends on
# SPEAR_RECOVERY_SEED), so the sweep exercises crashes landing at
# different distances from the last snapshot — right after one, deep into
# a replay log, across window boundaries.
# Usage: scripts/check_recovery.sh [build-dir] [num-seeds]
set -euo pipefail

BUILD_DIR="${1:-build}"
NUM_SEEDS="${2:-10}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
SUITE="$ROOT/$BUILD_DIR/tests/spear_recovery_tests"

if [ ! -x "$SUITE" ]; then
  echo "building spear_recovery_tests in $BUILD_DIR..."
  cmake --build "$ROOT/$BUILD_DIR" --target spear_recovery_tests
fi

for ((seed = 1; seed <= NUM_SEEDS; ++seed)); do
  echo "=== recovery suite, seed $seed ==="
  SPEAR_RECOVERY_SEED="$seed" "$SUITE" \
    --gtest_filter='RecoveryTest.*' --gtest_brief=1
done
echo "recovery: $NUM_SEEDS seeds clean"
