#!/usr/bin/env bash
# Builds the fault-injection / supervision suites under AddressSanitizer
# and runs them. Chaos runs exercise exception unwinding, mid-stream
# cancellation and tuple quarantine — exactly the paths where lifetime
# bugs (use-after-free of queued tuples, double-free on unwind) hide.
# Usage: scripts/check_asan.sh [build-dir]   (default: build-asan)
set -euo pipefail

BUILD_DIR="${1:-build-asan}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -S "$ROOT" -B "$ROOT/$BUILD_DIR" \
  -DSPEAR_SANITIZE=address \
  -DSPEAR_BUILD_BENCHMARKS=OFF \
  -DSPEAR_BUILD_EXAMPLES=OFF
cmake --build "$ROOT/$BUILD_DIR" -j"$(nproc)" \
  --target spear_common_tests spear_substrate_tests spear_runtime_tests \
  spear_recovery_tests spear_overload_tests

export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
"$ROOT/$BUILD_DIR/tests/spear_common_tests" --gtest_filter='Fault*:Retry*:Backoff*'
"$ROOT/$BUILD_DIR/tests/spear_substrate_tests" --gtest_filter='SecondaryStorage*'
"$ROOT/$BUILD_DIR/tests/spear_runtime_tests" \
  --gtest_filter='Supervision*:Chaos*:Executor*'
"$ROOT/$BUILD_DIR/tests/spear_recovery_tests"
"$ROOT/$BUILD_DIR/tests/spear_overload_tests"
echo "ASan: fault-injection + supervision + recovery + overload suites clean"
