#!/usr/bin/env bash
# Builds the runtime and common test suites under ThreadSanitizer and runs
# them, catching data races in the channel/executor machinery that a plain
# build would only lose intermittently.
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -euo pipefail

BUILD_DIR="${1:-build-tsan}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

cmake -S "$ROOT" -B "$ROOT/$BUILD_DIR" \
  -DSPEAR_SANITIZE=thread \
  -DSPEAR_BUILD_BENCHMARKS=OFF \
  -DSPEAR_BUILD_EXAMPLES=OFF
cmake --build "$ROOT/$BUILD_DIR" -j"$(nproc)" \
  --target spear_common_tests spear_runtime_tests spear_recovery_tests \
  spear_overload_tests

# halt_on_error makes the suite fail on the first race instead of
# reporting and continuing with an exit code gtest would swallow.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
"$ROOT/$BUILD_DIR/tests/spear_common_tests"
"$ROOT/$BUILD_DIR/tests/spear_runtime_tests"
"$ROOT/$BUILD_DIR/tests/spear_recovery_tests"
"$ROOT/$BUILD_DIR/tests/spear_overload_tests"
echo "TSan: common + runtime + recovery + overload suites clean"
