#!/usr/bin/env bash
# Fast dev loop: build and run only the tests labeled `quick` (the
# deterministic unit suites — common/stats/substrate/core/obs). Finishes
# in seconds; run scripts/check.sh before pushing.
# Usage: scripts/check_quick.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

if [ ! -d "$ROOT/$BUILD_DIR" ]; then
  cmake -S "$ROOT" -B "$ROOT/$BUILD_DIR"
fi
cmake --build "$ROOT/$BUILD_DIR" -j"$(nproc)" --target \
  spear_common_tests spear_stats_tests spear_substrate_tests \
  spear_core_tests spear_obs_tests
ctest --test-dir "$ROOT/$BUILD_DIR" -L quick -j"$(nproc)" --output-on-failure
echo "quick suites clean"
