#pragma once

#include <vector>

#include "common/result.h"

/// \file error_metrics.h
/// Aggregation of per-group error estimates into a single window error
/// (Def. 3.1 of the congressional-samples paper [59], referenced by
/// SPEAr's Sec. 4.2). SPEAr defaults to L1.

namespace spear {

enum class GroupErrorNorm { kL1, kL2, kLInf };

/// \brief Combines per-group relative errors e_g into one value:
/// L1 = mean, L2 = root-mean-square, LInf = max. Invalid on empty input.
Result<double> AggregateGroupErrors(const std::vector<double>& group_errors,
                                    GroupErrorNorm norm = GroupErrorNorm::kL1);

/// \brief Relative error |approx - exact| / |exact|; when exact == 0,
/// returns 0 if approx == 0 and +inf otherwise. The repo-wide definition
/// used by estimators, tests, and the Fig. 11 bench.
double RelativeError(double approx, double exact);

}  // namespace spear
