#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "stats/running_stats.h"

/// \file group_stats.h
/// Per-group frequency + moment tracking for grouped stateful operations.
/// This is what SPEAr stores in the budget b while a window is active
/// (Sec. 4.1, Grouped): each group's frequency and the variance of the
/// aggregated value — the inputs to congress allocation and to per-group
/// accuracy estimation. Memory is bounded by a configurable group capacity;
/// exceeding it makes SPEAr revert to exact processing.

namespace spear {

/// \brief Bounded map: group key -> running statistics of the aggregation
/// value within the current window.
class GroupStatsTracker {
 public:
  /// \param max_groups capacity ceiling derived from the budget b via
  ///        floor(b / (r + 4 + f)) in the paper's notation; 0 = unlimited.
  explicit GroupStatsTracker(std::size_t max_groups = 0)
      : max_groups_(max_groups) {}

  /// Records one observation for `key`. Returns false — leaving the
  /// tracker in the overflowed state — when a *new* group would exceed
  /// capacity; existing groups always update.
  bool Update(const std::string& key, double value) {
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      if (overflowed_ ||
          (max_groups_ != 0 && groups_.size() >= max_groups_)) {
        overflowed_ = true;
        return false;
      }
      it = groups_.emplace(key, RunningStats()).first;
    }
    it->second.Update(value);
    ++total_count_;
    return true;
  }

  /// True when the group cardinality exceeded the budget capacity at some
  /// point in this window; SPEAr must then process exactly.
  bool overflowed() const { return overflowed_; }

  std::size_t num_groups() const { return groups_.size(); }
  std::uint64_t total_count() const { return total_count_; }
  std::size_t max_groups() const { return max_groups_; }

  /// Records `n` window tuples shed at admission before their group key
  /// was extracted. They belong to the window's population but to no
  /// tracked group: per-group frequencies become lower bounds with
  /// inclusion probability total_count/effective_total, and the window
  /// manager folds shed/effective_total into ε̂_w.
  void NoteShed(std::uint64_t n) { shed_ += n; }

  /// Tuples shed upstream of this tracker.
  std::uint64_t shed() const { return shed_; }

  /// Window population the tracked groups stand for: observed + shed.
  std::uint64_t effective_total() const { return total_count_ + shed_; }

  const std::unordered_map<std::string, RunningStats>& groups() const {
    return groups_;
  }

  /// Frequency of one group (0 when absent).
  std::uint64_t FrequencyOf(const std::string& key) const {
    const auto it = groups_.find(key);
    return it == groups_.end() ? 0 : it->second.count();
  }

  void Reset() {
    groups_.clear();
    total_count_ = 0;
    shed_ = 0;
    overflowed_ = false;
  }

  /// Checkpoint restore: installs a group's accumulated stats wholesale
  /// (same capacity discipline as Update — a new group beyond capacity
  /// marks overflow and is dropped).
  bool RestoreGroup(const std::string& key, const RunningStats& stats) {
    auto it = groups_.find(key);
    if (it == groups_.end()) {
      if (overflowed_ ||
          (max_groups_ != 0 && groups_.size() >= max_groups_)) {
        overflowed_ = true;
        return false;
      }
      it = groups_.emplace(key, RunningStats()).first;
    }
    it->second = stats;
    total_count_ += stats.count();
    return true;
  }

  /// Checkpoint restore: the snapshotted tracker had overflowed.
  void MarkOverflowed() { overflowed_ = true; }

  /// Estimated bytes consumed, for budget accounting: per group the paper
  /// charges r (key) + 4 (frequency) + f (variance accumulator) bytes.
  std::size_t EstimatedBytes() const {
    std::size_t total = 0;
    for (const auto& [key, stats] : groups_) {
      total += key.size() + 4 + sizeof(double);
      (void)stats;
    }
    return total;
  }

 private:
  const std::size_t max_groups_;
  std::unordered_map<std::string, RunningStats> groups_;
  std::uint64_t total_count_ = 0;
  std::uint64_t shed_ = 0;
  bool overflowed_ = false;
};

}  // namespace spear
