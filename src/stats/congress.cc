#include "stats/congress.h"

#include <algorithm>
#include <cmath>

namespace spear {

namespace {

Status ValidateAllocateArgs(
    const std::unordered_map<std::string, std::uint64_t>& frequencies,
    std::uint64_t budget) {
  if (budget == 0) return Status::Invalid("budget must be > 0");
  if (frequencies.empty()) return Status::Invalid("no groups to allocate");
  for (const auto& [key, freq] : frequencies) {
    if (freq == 0) {
      return Status::Invalid("group '" + key + "' has zero frequency");
    }
  }
  return Status::OK();
}

std::vector<GroupAllocation> AllocateByWeight(
    const std::unordered_map<std::string, std::uint64_t>& frequencies,
    const std::unordered_map<std::string, double>& weights,
    double total_weight, std::uint64_t budget) {
  std::vector<GroupAllocation> out;
  out.reserve(frequencies.size());
  for (const auto& [key, freq] : frequencies) {
    const double share = weights.at(key) / total_weight;
    auto n = static_cast<std::uint64_t>(
        std::floor(share * static_cast<double>(budget)));
    n = std::min<std::uint64_t>(std::max<std::uint64_t>(n, 1), freq);
    out.push_back(GroupAllocation{key, freq, n});
  }
  // Deterministic output order (unordered_map iteration order is not).
  std::sort(out.begin(), out.end(),
            [](const GroupAllocation& a, const GroupAllocation& b) {
              return a.key < b.key;
            });
  return out;
}

}  // namespace

Result<std::vector<GroupAllocation>> CongressAllocate(
    const std::unordered_map<std::string, std::uint64_t>& frequencies,
    std::uint64_t budget) {
  SPEAR_RETURN_NOT_OK(ValidateAllocateArgs(frequencies, budget));

  std::uint64_t total = 0;
  for (const auto& [key, freq] : frequencies) total += freq;

  const double g = static_cast<double>(frequencies.size());
  std::unordered_map<std::string, double> weights;
  weights.reserve(frequencies.size());
  double total_weight = 0.0;
  for (const auto& [key, freq] : frequencies) {
    const double house = static_cast<double>(freq) / static_cast<double>(total);
    const double senate = 1.0 / g;
    const double w = std::max(house, senate);
    weights.emplace(key, w);
    total_weight += w;
  }
  return AllocateByWeight(frequencies, weights, total_weight, budget);
}

Result<std::vector<GroupAllocation>> ProportionalAllocate(
    const std::unordered_map<std::string, std::uint64_t>& frequencies,
    std::uint64_t budget) {
  SPEAR_RETURN_NOT_OK(ValidateAllocateArgs(frequencies, budget));

  std::uint64_t total = 0;
  for (const auto& [key, freq] : frequencies) total += freq;

  std::unordered_map<std::string, double> weights;
  weights.reserve(frequencies.size());
  for (const auto& [key, freq] : frequencies) {
    weights.emplace(key, static_cast<double>(freq));
  }
  return AllocateByWeight(frequencies, weights, static_cast<double>(total),
                          budget);
}

}  // namespace spear
