#include "stats/error_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace spear {

Result<double> AggregateGroupErrors(const std::vector<double>& group_errors,
                                    GroupErrorNorm norm) {
  if (group_errors.empty()) {
    return Status::Invalid("no group errors to aggregate");
  }
  switch (norm) {
    case GroupErrorNorm::kL1: {
      double sum = 0.0;
      for (double e : group_errors) sum += e;
      return sum / static_cast<double>(group_errors.size());
    }
    case GroupErrorNorm::kL2: {
      double sum_sq = 0.0;
      for (double e : group_errors) sum_sq += e * e;
      return std::sqrt(sum_sq / static_cast<double>(group_errors.size()));
    }
    case GroupErrorNorm::kLInf:
      return *std::max_element(group_errors.begin(), group_errors.end());
  }
  return Status::Internal("unknown norm");
}

double RelativeError(double approx, double exact) {
  if (exact == 0.0) {
    return approx == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return std::fabs(approx - exact) / std::fabs(exact);
}

}  // namespace spear
