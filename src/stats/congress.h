#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

/// \file congress.h
/// Basic congressional sampling allocation (Acharya, Gibbons et al.,
/// "Congressional samples for approximate answering of group-by queries",
/// SIGMOD 2000 — the paper's [59]). Given per-group frequencies and a
/// total sample budget, congress blends:
///   * the House: allocation proportional to group size (good for overall
///     aggregates), and
///   * the Senate: equal allocation per group (good for small groups),
/// by taking the per-group max of the two and renormalising to the budget.

namespace spear {

/// \brief One group's share of the stratified sample.
struct GroupAllocation {
  std::string key;
  std::uint64_t frequency = 0;   ///< group size N_g in the window
  std::uint64_t sample_size = 0; ///< allocated n_g (<= frequency)
};

/// \brief Computes basic-congress sample sizes.
///
/// \param frequencies per-group window frequencies (all > 0)
/// \param budget      total sample budget in elements (> 0)
/// \returns one allocation per group; sum of sample_size <= budget (up to
///          rounding) and every group receives at least 1 element whenever
///          budget >= number of groups.
Result<std::vector<GroupAllocation>> CongressAllocate(
    const std::unordered_map<std::string, std::uint64_t>& frequencies,
    std::uint64_t budget);

/// \brief Proportional-only (House) allocation, used as an ablation
/// baseline: starves small groups, which basic congress fixes.
Result<std::vector<GroupAllocation>> ProportionalAllocate(
    const std::unordered_map<std::string, std::uint64_t>& frequencies,
    std::uint64_t budget);

}  // namespace spear
