#include "stats/quantile.h"

#include <algorithm>
#include <cmath>

namespace spear {

namespace {

Status ValidateQuantileArgs(std::size_t n, double phi) {
  if (n == 0) return Status::Invalid("quantile of empty input");
  if (!(phi >= 0.0 && phi <= 1.0)) {
    return Status::Invalid("phi must be in [0, 1]");
  }
  return Status::OK();
}

}  // namespace

Result<double> ExactQuantileInPlace(std::vector<double>* values, double phi) {
  SPEAR_RETURN_NOT_OK(ValidateQuantileArgs(values->size(), phi));
  const std::size_t n = values->size();
  const double pos = phi * static_cast<double>(n - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  std::nth_element(values->begin(),
                   values->begin() + static_cast<std::ptrdiff_t>(lo),
                   values->end());
  const double v_lo = (*values)[lo];
  const double frac = pos - static_cast<double>(lo);
  if (frac == 0.0 || lo + 1 >= n) return v_lo;
  // The (lo+1)-th order statistic is the minimum of the suffix after
  // nth_element partitioned around lo.
  const double v_hi = *std::min_element(
      values->begin() + static_cast<std::ptrdiff_t>(lo) + 1, values->end());
  return v_lo + frac * (v_hi - v_lo);
}

Result<double> ExactQuantile(std::vector<double> values, double phi) {
  return ExactQuantileInPlace(&values, phi);
}

Result<double> SortedQuantile(const std::vector<double>& sorted, double phi) {
  SPEAR_RETURN_NOT_OK(ValidateQuantileArgs(sorted.size(), phi));
  const std::size_t n = sorted.size();
  const double pos = phi * static_cast<double>(n - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (frac == 0.0 || lo + 1 >= n) return sorted[lo];
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

double RankOf(const std::vector<double>& sorted, double value) {
  if (sorted.empty()) return 0.0;
  const auto it = std::upper_bound(sorted.begin(), sorted.end(), value);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

}  // namespace spear
