#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"

/// \file reservoir_sampler.h
/// Simple-random-sample maintenance inside a fixed budget, the `put/replace`
/// pair of the paper's Alg. 1. Two strategies:
///   * Algorithm R (Vitter): one RNG draw per tuple past the budget.
///   * Algorithm L (Li, 1994): geometric skips — near-zero cost per tuple
///     once the sample is much smaller than the window.
/// Both yield a uniform simple random sample of everything Offered so far.

namespace spear {

enum class ReservoirAlgorithm { kAlgorithmR, kAlgorithmL };

/// \brief Fixed-capacity uniform reservoir sample of a stream of T.
template <typename T>
class ReservoirSampler {
 public:
  /// \param capacity the sample budget (elements, > 0)
  /// \param seed RNG seed (experiments pass explicit seeds)
  /// \param algorithm replacement strategy; kAlgorithmL is the default and
  ///        the fast path.
  explicit ReservoirSampler(std::size_t capacity, std::uint64_t seed = 0x5EA4,
                            ReservoirAlgorithm algorithm =
                                ReservoirAlgorithm::kAlgorithmL)
      : capacity_(capacity), rng_(seed), algorithm_(algorithm) {
    SPEAR_CHECK(capacity_ > 0);
    sample_.reserve(capacity_);
    if (algorithm_ == ReservoirAlgorithm::kAlgorithmL) InitW();
  }

  /// Offers one element; keeps it with the reservoir-sampling probability.
  void Offer(const T& item) {
    ++seen_;
    if (sample_.size() < capacity_) {
      sample_.push_back(item);
      return;
    }
    if (algorithm_ == ReservoirAlgorithm::kAlgorithmR) {
      const std::uint64_t j = rng_.NextBounded(seen_);
      if (j < capacity_) sample_[j] = item;
      return;
    }
    // Algorithm L: replace only when `seen_` crosses the precomputed skip.
    if (seen_ >= next_replace_) {
      sample_[rng_.NextBounded(capacity_)] = item;
      AdvanceW();
    }
  }

  /// Number of elements offered so far (the window size N).
  std::uint64_t seen() const { return seen_; }

  /// Records `n` population elements excluded from sampling upstream
  /// (load shedding): they belong to the stream this sample summarizes
  /// but never reached Offer(). The sample stays uniform over the
  /// *offered* subset; with population() as the denominator, a sampled
  /// element's inclusion probability drops from |sample|/seen to
  /// |sample|/population, so estimators that scale by population() stay
  /// centered under uniform shedding while the shed mass fraction
  /// skipped/population is folded into ε̂_w by the window manager.
  void NoteSkipped(std::uint64_t n) { skipped_ += n; }

  /// Elements shed upstream of this reservoir.
  std::uint64_t skipped() const { return skipped_; }

  /// Size of the population the sample stands for: offered + shed.
  std::uint64_t population() const { return seen_ + skipped_; }

  /// Current sample contents (size = min(seen, capacity)).
  const std::vector<T>& sample() const { return sample_; }

  std::size_t capacity() const { return capacity_; }

  bool full() const { return sample_.size() == capacity_; }

  /// Clears the sample for the next window.
  void Reset() {
    sample_.clear();
    seen_ = 0;
    skipped_ = 0;
    if (algorithm_ == ReservoirAlgorithm::kAlgorithmL) InitW();
  }

  /// Replaces the reservoir with a checkpointed (sample, seen) pair. The
  /// RNG is re-seeded rather than restored bit-exactly: the restored
  /// reservoir is still a uniform sample of the `seen` elements it
  /// summarizes and future Offers keep the correct inclusion probability
  /// capacity/seen, but post-restore replacement *choices* are a fresh
  /// random draw (statistically faithful recovery, not bit-identical).
  Status Restore(std::vector<T> sample, std::uint64_t seen,
                 std::uint64_t skipped = 0) {
    if (sample.size() > capacity_) {
      return Status::Invalid("reservoir restore: sample exceeds capacity");
    }
    if (seen < sample.size()) {
      return Status::Invalid("reservoir restore: seen < sample size");
    }
    if (seen > sample.size() && sample.size() < capacity_) {
      return Status::Invalid(
          "reservoir restore: partial sample of a larger stream");
    }
    sample_ = std::move(sample);
    sample_.reserve(capacity_);
    seen_ = seen;
    skipped_ = skipped;
    if (algorithm_ == ReservoirAlgorithm::kAlgorithmL) {
      // Re-derive the skip state as if `seen_` elements had streamed by.
      w_ = std::exp(std::log(rng_.NextDouble()) /
                    static_cast<double>(capacity_));
      next_replace_ = std::max<std::uint64_t>(seen_, capacity_);
      AdvanceSkip();
    }
    return Status::OK();
  }

 private:
  void InitW() {
    w_ = std::exp(std::log(rng_.NextDouble()) / static_cast<double>(capacity_));
    next_replace_ = capacity_;
    AdvanceSkip();
  }

  void AdvanceW() {
    w_ *= std::exp(std::log(rng_.NextDouble()) / static_cast<double>(capacity_));
    AdvanceSkip();
  }

  void AdvanceSkip() {
    double skip =
        std::floor(std::log(rng_.NextDouble()) / std::log(1.0 - w_));
    if (!(skip >= 0.0)) skip = 0.0;  // guards NaN/-inf from degenerate draws
    next_replace_ += static_cast<std::uint64_t>(skip) + 1;
  }

  const std::size_t capacity_;
  Rng rng_;
  const ReservoirAlgorithm algorithm_;
  std::vector<T> sample_;
  std::uint64_t seen_ = 0;
  std::uint64_t skipped_ = 0;
  // Algorithm L state.
  double w_ = 0.0;
  std::uint64_t next_replace_ = 0;
};

}  // namespace spear
