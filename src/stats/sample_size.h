#pragma once

#include <cstdint>

#include "common/result.h"

/// \file sample_size.h
/// Required-sample-size bounds for quantile approximation, the budget test
/// the paper borrows from Manku et al. [48] ("Approximate medians and other
/// quantiles in one pass and with limited memory", SIGMOD '98): SPEAr
/// compares the allocated budget b against the sample size an approximate
/// quantile needs to meet a rank-error epsilon at confidence alpha, and
/// expedites the window only when b is large enough.

namespace spear {

/// Which bound drives the quantile budget test.
enum class QuantileBound {
  /// Distribution-free Hoeffding bound: n >= ln(2/delta) / (2 eps^2).
  kHoeffding,
  /// Normal-approximation rank bound: n >= z^2 phi(1-phi) / eps^2 —
  /// tighter, especially for extreme phi.
  kNormalRank,
};

/// \brief Minimum sample size for a phi-quantile estimate whose *rank*
/// error is at most `epsilon` with probability `confidence`.
///
/// \param phi        target quantile in [0, 1]
/// \param epsilon    maximum rank error in (0, 1)
/// \param confidence two-sided confidence level in (0, 1)
/// \param bound      which inequality to apply
Result<std::uint64_t> RequiredQuantileSampleSize(
    double phi, double epsilon, double confidence,
    QuantileBound bound = QuantileBound::kHoeffding);

/// \brief Finite-population version: sampling n out of N without
/// replacement needs fewer elements. Applies the standard correction
///     n_adj = n0 / (1 + (n0 - 1) / N).
Result<std::uint64_t> RequiredQuantileSampleSizeFinite(
    double phi, double epsilon, double confidence, std::uint64_t population,
    QuantileBound bound = QuantileBound::kHoeffding);

/// \brief Minimum sample size so a *mean* estimate's relative CI half-width
/// is <= epsilon, given a coefficient of variation cv = s / |mean| and
/// population N (Cochran's formula with finite-population correction).
/// Used by benches to pick interesting budgets.
Result<std::uint64_t> RequiredMeanSampleSize(double cv, double epsilon,
                                             double confidence,
                                             std::uint64_t population);

}  // namespace spear
