#include "stats/running_stats.h"

#include <cmath>

namespace spear {

double RunningStats::SampleStdDev() const { return std::sqrt(SampleVariance()); }

double RunningStats::PopulationStdDev() const {
  return std::sqrt(PopulationVariance());
}

double RunningStats::ExcessKurtosis() const {
  if (count_ < 2 || m2_ == 0.0) return 0.0;
  const double n = static_cast<double>(count_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

}  // namespace spear
