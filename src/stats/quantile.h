#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"

/// \file quantile.h
/// Exact and sample-based quantile computation. Exact quantiles are the
/// holistic operation SPEAr targets (Fig. 1's `.percentile(…, 0.95)`); the
/// sample-based estimator is what the expedited path emits.

namespace spear {

/// \brief Exact phi-quantile of `values` by partial sort (nth_element).
///
/// Uses the "lower" empirical quantile definition: element at index
/// floor(phi * (n-1)) of the sorted sequence, linearly interpolated.
/// O(n) average time; mutates its by-value copy, not the caller's data.
/// Returns Invalid for empty input or phi outside [0, 1].
Result<double> ExactQuantile(std::vector<double> values, double phi);

/// \brief In-place exact quantile: mutates `values` (partial sort). The
/// zero-copy variant used by operators that own their buffer.
Result<double> ExactQuantileInPlace(std::vector<double>* values, double phi);

/// \brief Exact median (phi = 0.5).
inline Result<double> ExactMedian(std::vector<double> values) {
  return ExactQuantile(std::move(values), 0.5);
}

/// \brief phi-quantile of an *already sorted* sequence, interpolated.
Result<double> SortedQuantile(const std::vector<double>& sorted, double phi);

/// \brief Rank of `value` within `sorted` (fraction of elements <= value).
/// Used by tests/benches to measure quantile *rank error*, the metric of
/// Manku et al. [48].
double RankOf(const std::vector<double>& sorted, double value);

}  // namespace spear
