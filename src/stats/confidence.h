#pragma once

#include <cstdint>

#include "common/result.h"

/// \file confidence.h
/// Normal-approximation confidence intervals with finite-population
/// correction (Cochran, *Sampling Techniques*), the machinery of the
/// paper's Sec. 4.2:
///
///     y_low  = y - z * s/sqrt(n) * sqrt(1 - n/N)
///     y_high = y + z * s/sqrt(n) * sqrt(1 - n/N)
///
/// SPEAr treats the half-width as a relative distance to the estimate and
/// accepts the approximate result when that relative distance is within
/// the user's error bound.

namespace spear {

/// \brief z-value (standard normal deviate) for a two-sided confidence
/// level `confidence` in (0, 1), e.g. 0.95 -> 1.959964.
/// Computed with Acklam's inverse-normal-CDF approximation (|rel err| <
/// 1.15e-9), so any confidence level works, not just tabulated ones.
Result<double> NormalDeviate(double confidence);

/// \brief Inverse standard normal CDF Phi^-1(p) for p in (0, 1).
double InverseNormalCdf(double p);

/// \brief A two-sided confidence interval around an estimate.
struct ConfidenceInterval {
  double estimate = 0.0;
  double low = 0.0;
  double high = 0.0;

  double HalfWidth() const { return (high - low) / 2.0; }

  /// Half-width relative to |estimate|; +inf when the estimate is 0 and
  /// the interval is not degenerate (forces the conservative fallback).
  double RelativeHalfWidth() const;
};

/// \brief CI for a sample mean.
///
/// \param sample_mean    mean of the n sampled values
/// \param sample_stddev  sample standard deviation (divide by n-1)
/// \param n              sample size (> 0)
/// \param population     window size N (>= n); enables the finite-population
///                       correction sqrt(1 - n/N)
/// \param confidence     two-sided level in (0, 1)
Result<ConfidenceInterval> MeanConfidenceInterval(double sample_mean,
                                                  double sample_stddev,
                                                  std::uint64_t n,
                                                  std::uint64_t population,
                                                  double confidence);

/// \brief CI for a population *sum* estimated as N * sample_mean (scales
/// the mean CI by N). Used by scalar SUM/COUNT estimators.
Result<ConfidenceInterval> SumConfidenceInterval(double sample_mean,
                                                 double sample_stddev,
                                                 std::uint64_t n,
                                                 std::uint64_t population,
                                                 double confidence);

}  // namespace spear
