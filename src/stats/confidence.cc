#include "stats/confidence.h"

#include <cmath>
#include <limits>

namespace spear {

double InverseNormalCdf(double p) {
  // Peter Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  static constexpr double p_low = 0.02425;
  static constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

Result<double> NormalDeviate(double confidence) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::Invalid("confidence must be in (0, 1)");
  }
  return InverseNormalCdf(0.5 + confidence / 2.0);
}

double ConfidenceInterval::RelativeHalfWidth() const {
  const double half = HalfWidth();
  if (half == 0.0) return 0.0;
  if (estimate == 0.0) return std::numeric_limits<double>::infinity();
  return half / std::fabs(estimate);
}

Result<ConfidenceInterval> MeanConfidenceInterval(double sample_mean,
                                                  double sample_stddev,
                                                  std::uint64_t n,
                                                  std::uint64_t population,
                                                  double confidence) {
  if (n == 0) return Status::Invalid("sample size must be > 0");
  if (population < n) {
    return Status::Invalid("population smaller than sample");
  }
  if (sample_stddev < 0.0) return Status::Invalid("negative stddev");
  SPEAR_ASSIGN_OR_RETURN(const double z, NormalDeviate(confidence));

  const double fpc =
      population > 0
          ? std::sqrt(1.0 - static_cast<double>(n) /
                                static_cast<double>(population))
          : 0.0;
  const double half =
      z * sample_stddev / std::sqrt(static_cast<double>(n)) * fpc;
  return ConfidenceInterval{sample_mean, sample_mean - half,
                            sample_mean + half};
}

Result<ConfidenceInterval> SumConfidenceInterval(double sample_mean,
                                                 double sample_stddev,
                                                 std::uint64_t n,
                                                 std::uint64_t population,
                                                 double confidence) {
  SPEAR_ASSIGN_OR_RETURN(
      ConfidenceInterval mean_ci,
      MeanConfidenceInterval(sample_mean, sample_stddev, n, population,
                             confidence));
  const double scale = static_cast<double>(population);
  return ConfidenceInterval{mean_ci.estimate * scale, mean_ci.low * scale,
                            mean_ci.high * scale};
}

}  // namespace spear
