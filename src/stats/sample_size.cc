#include "stats/sample_size.h"

#include <cmath>

#include "stats/confidence.h"

namespace spear {

namespace {

Status ValidateCommon(double epsilon, double confidence) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return Status::Invalid("epsilon must be in (0, 1)");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    return Status::Invalid("confidence must be in (0, 1)");
  }
  return Status::OK();
}

}  // namespace

Result<std::uint64_t> RequiredQuantileSampleSize(double phi, double epsilon,
                                                 double confidence,
                                                 QuantileBound bound) {
  SPEAR_RETURN_NOT_OK(ValidateCommon(epsilon, confidence));
  if (!(phi >= 0.0 && phi <= 1.0)) {
    return Status::Invalid("phi must be in [0, 1]");
  }
  double n = 0.0;
  switch (bound) {
    case QuantileBound::kHoeffding: {
      const double delta = 1.0 - confidence;
      n = std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
      break;
    }
    case QuantileBound::kNormalRank: {
      SPEAR_ASSIGN_OR_RETURN(const double z, NormalDeviate(confidence));
      // Guard degenerate phi: variance phi(1-phi) is 0 at the extremes but
      // a 0-size sample is useless; floor the variance at a single rank.
      const double var = std::max(phi * (1.0 - phi), 1e-6);
      n = z * z * var / (epsilon * epsilon);
      break;
    }
  }
  return static_cast<std::uint64_t>(std::ceil(n));
}

Result<std::uint64_t> RequiredQuantileSampleSizeFinite(
    double phi, double epsilon, double confidence, std::uint64_t population,
    QuantileBound bound) {
  SPEAR_ASSIGN_OR_RETURN(
      const std::uint64_t n0,
      RequiredQuantileSampleSize(phi, epsilon, confidence, bound));
  if (population == 0) return Status::Invalid("population must be > 0");
  const double n0d = static_cast<double>(n0);
  const double adj =
      n0d / (1.0 + (n0d - 1.0) / static_cast<double>(population));
  auto n_adj = static_cast<std::uint64_t>(std::ceil(adj));
  return n_adj < population ? n_adj : population;
}

Result<std::uint64_t> RequiredMeanSampleSize(double cv, double epsilon,
                                             double confidence,
                                             std::uint64_t population) {
  SPEAR_RETURN_NOT_OK(ValidateCommon(epsilon, confidence));
  if (cv < 0.0) return Status::Invalid("cv must be >= 0");
  if (population == 0) return Status::Invalid("population must be > 0");
  SPEAR_ASSIGN_OR_RETURN(const double z, NormalDeviate(confidence));
  const double n0 = (z * cv / epsilon) * (z * cv / epsilon);
  const double adj = n0 / (1.0 + (n0 - 1.0) / static_cast<double>(population));
  double n = std::ceil(adj);
  if (n < 1.0) n = 1.0;
  auto out = static_cast<std::uint64_t>(n);
  return out < population ? out : population;
}

}  // namespace spear
