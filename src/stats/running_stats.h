#pragma once

#include <cstdint>
#include <limits>

/// \file running_stats.h
/// Constant-space single-pass moments (Welford / Chan et al. / Pébay).
/// SPEAr maintains one of these per window (scalar ops) or per group
/// (grouped ops): count, mean, variance, skewness/kurtosis inputs, min,
/// max — everything the accuracy estimator (Sec. 4.2 of the paper) needs,
/// updated in O(1) per tuple.

namespace spear {

/// \brief Mergeable running count/mean/central-moments/min/max.
class RunningStats {
 public:
  /// Incorporates one observation. O(1), no allocation.
  void Update(double x) {
    const double n1 = static_cast<double>(count_);
    ++count_;
    const double n = static_cast<double>(count_);
    const double delta = x - mean_;
    const double delta_n = delta / n;
    const double delta_n2 = delta_n * delta_n;
    const double term1 = delta * delta_n * n1;
    mean_ += delta_n;
    m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
           4.0 * delta_n * m3_;
    m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
    m2_ += term1;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Merges another accumulator (Pébay's pairwise update). Enables
  /// partition-parallel statistics in the runtime.
  void Merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    const double delta = other.mean_ - mean_;
    const double delta2 = delta * delta;
    const double delta3 = delta2 * delta;
    const double delta4 = delta2 * delta2;

    const double new_m2 = m2_ + other.m2_ + delta2 * n1 * n2 / n;
    const double new_m3 = m3_ + other.m3_ +
                          delta3 * n1 * n2 * (n1 - n2) / (n * n) +
                          3.0 * delta * (n1 * other.m2_ - n2 * m2_) / n;
    const double new_m4 =
        m4_ + other.m4_ +
        delta4 * n1 * n2 * (n1 * n1 - n1 * n2 + n2 * n2) / (n * n * n) +
        6.0 * delta2 * (n1 * n1 * other.m2_ + n2 * n2 * m2_) / (n * n) +
        4.0 * delta * (n1 * other.m3_ - n2 * m3_) / n;

    mean_ += delta * n2 / n;
    m2_ = new_m2;
    m3_ = new_m3;
    m4_ = new_m4;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  void Reset() { *this = RunningStats(); }

  /// \brief POD image of the accumulator, the unit of checkpointing: a
  /// RunningStats is fully determined by these eight numbers.
  struct State {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double m3 = 0.0;
    double m4 = 0.0;
    double sum = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  State state() const {
    return State{count_, mean_, m2_, m3_, m4_, sum_, min_, max_};
  }

  static RunningStats FromState(const State& s) {
    RunningStats r;
    r.count_ = s.count;
    r.mean_ = s.mean;
    r.m2_ = s.m2;
    r.m3_ = s.m3;
    r.m4_ = s.m4;
    r.sum_ = s.sum;
    r.min_ = s.min;
    r.max_ = s.max;
    return r;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Population variance (divide by n). 0 for fewer than 1 observation.
  double PopulationVariance() const {
    return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
  }

  /// Sample variance (divide by n-1). 0 for fewer than 2 observations.
  double SampleVariance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }

  double SampleStdDev() const;
  double PopulationStdDev() const;

  /// Fourth central moment (mu_4 estimate, divide by n).
  double FourthCentralMoment() const {
    return count_ > 0 ? m4_ / static_cast<double>(count_) : 0.0;
  }

  /// Excess kurtosis (0 for a normal distribution); 0 when undefined.
  double ExcessKurtosis() const;

  double min() const {
    return count_ > 0 ? min_ : 0.0;
  }
  double max() const {
    return count_ > 0 ? max_ : 0.0;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace spear
