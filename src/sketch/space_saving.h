#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

/// \file space_saving.h
/// SpaceSaving / frequent-items (Metwally et al., "Efficient computation
/// of frequent and top-k elements in data streams", ICDT 2005 — the
/// paper's [28]). Maintains k counters; any item with true frequency
/// > n/k is guaranteed to be tracked, and each estimate over-counts by at
/// most the minimum counter. Another representative of the sketch family
/// the paper positions SPEAr against.

namespace spear {

/// \brief Top-k frequency estimator with k counters.
class SpaceSaving {
 public:
  /// \param capacity number of monitored items (k > 0).
  static Result<SpaceSaving> Make(std::size_t capacity);

  /// Records one occurrence of `key`.
  void Add(std::string_view key);

  struct ItemEstimate {
    std::string key;
    std::uint64_t count = 0;  ///< upper bound on the true frequency
    std::uint64_t error = 0;  ///< max over-count (min counter at takeover)
  };

  /// Estimated frequency of `key` (0 when unmonitored).
  std::uint64_t EstimateCount(std::string_view key) const;

  /// Monitored items sorted by estimated count, descending.
  std::vector<ItemEstimate> TopK() const;

  std::uint64_t total() const { return total_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t monitored() const { return counters_.size(); }

 private:
  explicit SpaceSaving(std::size_t capacity) : capacity_(capacity) {}

  struct Counter {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  std::size_t capacity_;
  std::unordered_map<std::string, Counter> counters_;
  std::uint64_t total_ = 0;
};

}  // namespace spear
