#include "sketch/hyperloglog.h"

#include <bit>

namespace spear {

Result<HyperLogLog> HyperLogLog::Make(int precision, std::uint64_t seed) {
  if (precision < 4 || precision > 18) {
    return Status::Invalid("precision must be in [4, 18]");
  }
  return HyperLogLog(precision, seed);
}

void HyperLogLog::AddHash(std::uint64_t h) {
  const std::size_t index =
      static_cast<std::size_t>(h >> (64 - precision_));
  const std::uint64_t rest = h << precision_;
  // Rank = position of the leftmost 1-bit in the remaining bits, 1-based;
  // all-zero remainder gets the maximum rank.
  const int rank =
      rest == 0 ? (64 - precision_ + 1) : (std::countl_zero(rest) + 1);
  if (registers_[index] < rank) {
    registers_[index] = static_cast<std::uint8_t>(rank);
  }
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() == 16) {
    alpha = 0.673;
  } else if (registers_.size() == 32) {
    alpha = 0.697;
  } else if (registers_.size() == 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double harmonic = 0.0;
  std::size_t zeros = 0;
  for (std::uint8_t r : registers_) {
    harmonic += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double estimate = alpha * m * m / harmonic;
  // Small-range correction: linear counting while registers are sparse.
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    return Status::Invalid("precision mismatch in HLL merge");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) {
      registers_[i] = other.registers_[i];
    }
  }
  return Status::OK();
}

}  // namespace spear
