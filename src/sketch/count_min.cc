#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sketch/hash.h"

namespace spear {

Result<CountMinSketch> CountMinSketch::Make(double epsilon, double delta,
                                            std::uint64_t seed) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return Status::Invalid("epsilon must be in (0, 1)");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::Invalid("delta must be in (0, 1)");
  }
  const auto width = static_cast<std::size_t>(
      std::ceil(std::exp(1.0) / epsilon));
  const auto depth =
      static_cast<std::size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(std::max<std::size_t>(width, 1),
                        std::max<std::size_t>(depth, 1), seed);
}

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed)
    : width_(width), depth_(depth), seed_(seed),
      counters_(width * depth, 0.0) {}

std::size_t CountMinSketch::RowIndex(std::size_t row,
                                     std::string_view key) const {
  const std::uint64_t h = HashString(key, seed_ + row * 0x9E3779B97F4A7C15ULL);
  return row * width_ + static_cast<std::size_t>(h % width_);
}

void CountMinSketch::Update(std::string_view key, double amount) {
  for (std::size_t row = 0; row < depth_; ++row) {
    counters_[RowIndex(row, key)] += amount;
  }
  total_ += amount;
}

double CountMinSketch::Estimate(std::string_view key) const {
  double est = std::numeric_limits<double>::infinity();
  for (std::size_t row = 0; row < depth_; ++row) {
    est = std::min(est, counters_[RowIndex(row, key)]);
  }
  return est;
}

void CountMinSketch::Reset() {
  std::fill(counters_.begin(), counters_.end(), 0.0);
  total_ = 0.0;
}

Result<CountMinGroupedAggregator> CountMinGroupedAggregator::Make(
    double epsilon, double delta, std::uint64_t seed) {
  SPEAR_ASSIGN_OR_RETURN(CountMinSketch sums,
                         CountMinSketch::Make(epsilon, delta, seed));
  SPEAR_ASSIGN_OR_RETURN(CountMinSketch counts,
                         CountMinSketch::Make(epsilon, delta, seed + 17));
  return CountMinGroupedAggregator(std::move(sums), std::move(counts));
}

void CountMinGroupedAggregator::Update(std::string_view key, double value) {
  sums_.Update(key, value);
  counts_.Update(key, 1.0);
  // Track the distinct-group set (required to enumerate the result; this
  // is the storage overhead the paper calls out for sketches).
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) keys_.insert(it, std::string(key));
}

double CountMinGroupedAggregator::EstimateMean(std::string_view key) const {
  const double count = counts_.Estimate(key);
  if (count <= 0.0) return 0.0;
  return sums_.Estimate(key) / count;
}

std::vector<std::string> CountMinGroupedAggregator::Keys() const {
  return keys_;
}

std::size_t CountMinGroupedAggregator::MemoryBytes() const {
  std::size_t bytes = sums_.MemoryBytes() + counts_.MemoryBytes();
  for (const auto& k : keys_) bytes += k.size() + sizeof(std::string);
  return bytes;
}

void CountMinGroupedAggregator::Reset() {
  sums_.Reset();
  counts_.Reset();
  keys_.clear();
}

}  // namespace spear
