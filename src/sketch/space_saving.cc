#include "sketch/space_saving.h"

#include <algorithm>
#include <limits>

namespace spear {

Result<SpaceSaving> SpaceSaving::Make(std::size_t capacity) {
  if (capacity == 0) return Status::Invalid("capacity must be > 0");
  return SpaceSaving(capacity);
}

void SpaceSaving::Add(std::string_view key) {
  ++total_;
  const auto it = counters_.find(std::string(key));
  if (it != counters_.end()) {
    ++it->second.count;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(std::string(key), Counter{1, 0});
    return;
  }
  // Evict the minimum counter; the newcomer inherits its count as the
  // over-count bound (the SpaceSaving takeover rule).
  auto min_it = counters_.begin();
  for (auto c = counters_.begin(); c != counters_.end(); ++c) {
    if (c->second.count < min_it->second.count) min_it = c;
  }
  const std::uint64_t min_count = min_it->second.count;
  counters_.erase(min_it);
  counters_.emplace(std::string(key), Counter{min_count + 1, min_count});
}

std::uint64_t SpaceSaving::EstimateCount(std::string_view key) const {
  const auto it = counters_.find(std::string(key));
  return it == counters_.end() ? 0 : it->second.count;
}

std::vector<SpaceSaving::ItemEstimate> SpaceSaving::TopK() const {
  std::vector<ItemEstimate> out;
  out.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    out.push_back(ItemEstimate{key, counter.count, counter.error});
  }
  std::sort(out.begin(), out.end(),
            [](const ItemEstimate& a, const ItemEstimate& b) {
              return a.count != b.count ? a.count > b.count : a.key < b.key;
            });
  return out;
}

}  // namespace spear
