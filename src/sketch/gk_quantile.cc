#include "sketch/gk_quantile.h"

#include <algorithm>
#include <cmath>

// GCC 12 falsely reports free-nonheap-object through inlined vector
// reallocation on this translation unit (PR104475 family).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif

namespace spear {

Result<GkQuantileSketch> GkQuantileSketch::Make(double epsilon) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return Status::Invalid("epsilon must be in (0, 1)");
  }
  return GkQuantileSketch(epsilon);
}

void GkQuantileSketch::Add(double value) {
  ++count_;
  const double two_eps_n = 2.0 * epsilon_ * static_cast<double>(count_);

  // Position of the first entry with a larger value.
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), value,
      [](double v, const Entry& e) { return v < e.value; });

  Entry entry;
  entry.value = value;
  entry.g = 1;
  // New extrema are exact; interior insertions inherit the local
  // uncertainty budget floor(2 eps n) - 1.
  if (it == entries_.begin() || it == entries_.end()) {
    entry.delta = 0;
  } else {
    const double budget = std::floor(two_eps_n) - 1.0;
    entry.delta = budget > 0.0 ? static_cast<std::uint64_t>(budget) : 0;
  }
  entries_.insert(it, entry);

  // Compress periodically (every ~1/(2 eps) inserts keeps the summary at
  // its asymptotic size without quadratic overhead).
  const auto period =
      static_cast<std::uint64_t>(std::ceil(1.0 / (2.0 * epsilon_)));
  if (count_ % std::max<std::uint64_t>(period, 1) == 0) Compress();
}

void GkQuantileSketch::Compress() {
  if (entries_.size() < 3) return;
  const double two_eps_n = 2.0 * epsilon_ * static_cast<double>(count_);
  // Merge an entry into its successor when the combined rank band fits
  // the error budget. Forward scan with a carry of absorbed gaps; the
  // extrema stay untouched.
  std::vector<Entry> merged;
  merged.reserve(entries_.size());
  merged.push_back(entries_.front());
  std::uint64_t carry = 0;
  for (std::size_t i = 1; i + 1 < entries_.size(); ++i) {
    const Entry& current = entries_[i];
    const Entry& next = entries_[i + 1];
    if (static_cast<double>(carry + current.g + next.g + next.delta) <=
        two_eps_n) {
      carry += current.g;  // absorb into the successor (deferred)
    } else {
      Entry kept = current;
      kept.g += carry;
      carry = 0;
      merged.push_back(kept);
    }
  }
  Entry last = entries_.back();
  last.g += carry;
  merged.push_back(last);
  entries_ = std::move(merged);
}

Result<double> GkQuantileSketch::Quantile(double phi) const {
  if (entries_.empty()) return Status::Invalid("quantile of empty sketch");
  if (!(phi >= 0.0 && phi <= 1.0)) {
    return Status::Invalid("phi must be in [0, 1]");
  }
  const double rank = phi * static_cast<double>(count_ - 1) + 1.0;
  const double allowed = epsilon_ * static_cast<double>(count_);

  std::uint64_t r_min = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    r_min += entries_[i].g;
    const std::uint64_t r_max = r_min + entries_[i].delta;
    // First entry whose rank band covers the target within the budget.
    if (static_cast<double>(r_max) >= rank - allowed &&
        static_cast<double>(r_min) <= rank + allowed) {
      return entries_[i].value;
    }
  }
  return entries_.back().value;
}

}  // namespace spear
