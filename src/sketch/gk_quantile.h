#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

/// \file gk_quantile.h
/// Greenwald-Khanna streaming quantile summary ("Space-efficient online
/// computation of quantile summaries", SIGMOD 2001) — the classic
/// bounded-memory alternative to SPEAr's reservoir for holistic
/// operations, in the spirit of the paper's [48]. Guarantees rank error
/// <= epsilon * n deterministically with O((1/eps) log(eps n)) entries.
/// Included as an ablation baseline: deterministic error, but a per-tuple
/// insert/compress cost that SPEAr's reservoir avoids.

namespace spear {

/// \brief epsilon-approximate quantile summary over a stream of doubles.
class GkQuantileSketch {
 public:
  /// \param epsilon rank-error bound in (0, 1).
  static Result<GkQuantileSketch> Make(double epsilon);

  /// Inserts one observation. Amortized O(log size) per tuple.
  void Add(double value);

  /// phi-quantile with rank error <= epsilon * count(). Invalid when empty
  /// or phi outside [0, 1].
  Result<double> Quantile(double phi) const;

  std::uint64_t count() const { return count_; }
  std::size_t summary_size() const { return entries_.size(); }
  std::size_t MemoryBytes() const {
    return entries_.capacity() * sizeof(Entry);
  }

  void Reset() {
    entries_.clear();
    count_ = 0;
  }

 private:
  struct Entry {
    double value;
    std::uint64_t g;      ///< rank gap to the previous entry
    std::uint64_t delta;  ///< rank uncertainty of this entry
  };

  explicit GkQuantileSketch(double epsilon) : epsilon_(epsilon) {}

  void Compress();

  double epsilon_;
  std::vector<Entry> entries_;  // sorted by value
  std::uint64_t count_ = 0;
};

}  // namespace spear
