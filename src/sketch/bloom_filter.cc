#include "sketch/bloom_filter.h"

namespace spear {

Result<BloomFilter> BloomFilter::Make(std::size_t expected_items,
                                      double fp_rate, std::uint64_t seed) {
  if (expected_items == 0) return Status::Invalid("expected_items must be > 0");
  if (!(fp_rate > 0.0 && fp_rate < 1.0)) {
    return Status::Invalid("fp_rate must be in (0, 1)");
  }
  const double ln2 = std::log(2.0);
  const double bits_per_item = -std::log(fp_rate) / (ln2 * ln2);
  const auto bit_count = static_cast<std::size_t>(
      std::ceil(bits_per_item * static_cast<double>(expected_items)));
  const int hash_count =
      std::max(1, static_cast<int>(std::round(bits_per_item * ln2)));
  return BloomFilter(std::max<std::size_t>(bit_count, 64), hash_count, seed);
}

void BloomFilter::Add(std::string_view key) {
  for (int i = 0; i < hash_count_; ++i) {
    const std::size_t bit = BitIndex(key, i);
    bits_[bit >> 6] |= (std::uint64_t{1} << (bit & 63));
  }
  ++inserted_;
}

bool BloomFilter::MayContain(std::string_view key) const {
  for (int i = 0; i < hash_count_; ++i) {
    const std::size_t bit = BitIndex(key, i);
    if ((bits_[bit >> 6] & (std::uint64_t{1} << (bit & 63))) == 0) {
      return false;
    }
  }
  return true;
}

double BloomFilter::EstimatedFpRate() const {
  const double k = hash_count_;
  const double n = static_cast<double>(inserted_);
  const double m = static_cast<double>(bit_count_);
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace spear
