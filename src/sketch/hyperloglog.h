#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sketch/hash.h"

/// \file hyperloglog.h
/// HyperLogLog cardinality estimator (the paper's [33]), provided as a
/// second representative sketch for the related-work comparison and used
/// by the data generators' self-checks to validate group cardinalities.

namespace spear {

/// \brief HLL with 2^precision registers and the standard bias-corrected
/// estimator (including small-range linear counting).
class HyperLogLog {
 public:
  /// \param precision register-index bits, in [4, 18]
  static Result<HyperLogLog> Make(int precision = 12,
                                  std::uint64_t seed = 0x411);

  void Add(std::string_view key) { AddHash(HashString(key, seed_)); }
  void AddInt64(std::int64_t v) { AddHash(HashInt64(v, seed_)); }

  /// Estimated number of distinct elements added.
  double Estimate() const;

  /// Merges another sketch with identical precision (register-wise max).
  Status Merge(const HyperLogLog& other);

  std::size_t MemoryBytes() const { return registers_.size(); }
  int precision() const { return precision_; }

  void Reset() { std::fill(registers_.begin(), registers_.end(), 0); }

 private:
  HyperLogLog(int precision, std::uint64_t seed)
      : precision_(precision),
        seed_(seed),
        registers_(static_cast<std::size_t>(1) << precision, 0) {}

  void AddHash(std::uint64_t h);

  int precision_;
  std::uint64_t seed_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace spear
