#pragma once

#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "sketch/hash.h"

/// \file bloom_filter.h
/// Standard Bloom filter (membership inclusion, the paper's [32] family):
/// no false negatives, tunable false-positive rate. Rounds out the sketch
/// library's coverage of the techniques Sec. 3 contrasts SPEAr with.

namespace spear {

/// \brief Bloom filter sized for an expected insert count and target
/// false-positive probability.
class BloomFilter {
 public:
  /// \param expected_items planned number of distinct inserts (> 0)
  /// \param fp_rate        target false-positive probability in (0, 1)
  static Result<BloomFilter> Make(std::size_t expected_items, double fp_rate,
                                  std::uint64_t seed = 0xB100);

  void Add(std::string_view key);

  /// True iff `key` may have been added (definitely-absent when false).
  bool MayContain(std::string_view key) const;

  std::size_t bit_count() const { return bit_count_; }
  int hash_count() const { return hash_count_; }
  std::size_t MemoryBytes() const { return bits_.size() * sizeof(std::uint64_t); }
  std::uint64_t inserted() const { return inserted_; }

  /// Predicted false-positive rate at the current load.
  double EstimatedFpRate() const;

 private:
  BloomFilter(std::size_t bit_count, int hash_count, std::uint64_t seed)
      : bit_count_(bit_count),
        hash_count_(hash_count),
        seed_(seed),
        bits_((bit_count + 63) / 64, 0) {}

  std::size_t BitIndex(std::string_view key, int i) const {
    // Kirsch-Mitzenmacher double hashing.
    const std::uint64_t h1 = HashString(key, seed_);
    const std::uint64_t h2 = HashString(key, seed_ ^ 0x9E3779B97F4A7C15ULL);
    return static_cast<std::size_t>(
        (h1 + static_cast<std::uint64_t>(i) * h2) % bit_count_);
  }

  std::size_t bit_count_;
  int hash_count_;
  std::uint64_t seed_;
  std::vector<std::uint64_t> bits_;
  std::uint64_t inserted_ = 0;
};

}  // namespace spear
