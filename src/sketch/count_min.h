#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"

/// \file count_min.h
/// CountMin sketch (Cormode & Muthukrishnan, the paper's [29]) — the
/// state-of-the-art sketching baseline SPEAr is compared against in
/// Table 2. Guarantees: estimate <= true + eps * total with probability
/// >= 1 - delta, using width = ceil(e / eps), depth = ceil(ln(1 / delta)).
///
/// As the paper notes, reconstructing a grouped result from a CountMin
/// still requires tracking the distinct groups separately; see
/// CountMinGroupedAggregator below, which mirrors how the paper's
/// comparison CQ used StreamLib.

namespace spear {

/// \brief CountMin over double-valued increments (counts or sums).
class CountMinSketch {
 public:
  /// \param epsilon additive error fraction of the L1 mass, in (0, 1)
  /// \param delta   failure probability, in (0, 1)
  /// \param seed    hash seed
  static Result<CountMinSketch> Make(double epsilon, double delta,
                                     std::uint64_t seed = 0xC0);

  /// Direct geometry constructor (width x depth counters).
  CountMinSketch(std::size_t width, std::size_t depth, std::uint64_t seed);

  /// Adds `amount` to `key`'s cell in every row. O(depth) hashes.
  void Update(std::string_view key, double amount = 1.0);

  /// Point query: min over rows — never underestimates.
  double Estimate(std::string_view key) const;

  std::size_t width() const { return width_; }
  std::size_t depth() const { return depth_; }
  double total_mass() const { return total_; }

  /// Bytes of counter storage.
  std::size_t MemoryBytes() const {
    return counters_.size() * sizeof(double);
  }

  void Reset();

 private:
  std::size_t RowIndex(std::size_t row, std::string_view key) const;

  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;
  std::vector<double> counters_;  // row-major depth x width
  double total_ = 0.0;
};

/// \brief Grouped mean via two CountMin sketches (sum + count) plus the
/// distinct-group set needed to enumerate results — the Table 2 baseline.
class CountMinGroupedAggregator {
 public:
  static Result<CountMinGroupedAggregator> Make(double epsilon, double delta,
                                                std::uint64_t seed = 0xC1);

  /// Records one observation for `key`.
  void Update(std::string_view key, double value);

  /// Estimated mean of `key` (estimated sum / estimated count).
  double EstimateMean(std::string_view key) const;

  /// All distinct keys seen this window (sorted).
  std::vector<std::string> Keys() const;

  std::size_t MemoryBytes() const;

  void Reset();

 private:
  CountMinGroupedAggregator(CountMinSketch sums, CountMinSketch counts)
      : sums_(std::move(sums)), counts_(std::move(counts)) {}

  CountMinSketch sums_;
  CountMinSketch counts_;
  std::vector<std::string> keys_;  // kept sorted & deduplicated
};

}  // namespace spear
