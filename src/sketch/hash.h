#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

/// \file hash.h
/// 64-bit mixing hashes for sketches. Deliberately *not* trivial hashes:
/// part of the CountMin story in the paper (Sec. 3, Table 2) is that each
/// tuple pays for `depth` independent hash evaluations, so the per-tuple
/// cost here must be representative of a real sketch implementation.

namespace spear {

/// \brief XXH64-style avalanche finisher.
inline std::uint64_t MixHash64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// \brief FNV-1a over bytes, then avalanche-mixed.
inline std::uint64_t HashBytes(const void* data, std::size_t len,
                               std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ULL ^ seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return MixHash64(h);
}

inline std::uint64_t HashString(std::string_view s, std::uint64_t seed) {
  return HashBytes(s.data(), s.size(), seed);
}

inline std::uint64_t HashInt64(std::int64_t v, std::uint64_t seed) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return MixHash64(bits ^ (seed * 0x9E3779B97F4A7C15ULL));
}

}  // namespace spear
