#include "checkpoint/checkpoint.h"

#include <array>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <utility>

#include "checkpoint/wire.h"
#include "common/logging.h"

namespace spear {

namespace {

/// "SPCK" little-endian: snapshot files are self-identifying.
constexpr std::uint32_t kSnapshotMagic = 0x4B435053;
constexpr std::uint32_t kSnapshotVersion = 1;

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32(const std::string& data) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeSnapshot(const CheckpointSnapshot& snapshot) {
  std::string out;
  out.reserve(snapshot.payload.size() + snapshot.stage.size() + 64);
  wire::AppendU32(&out, kSnapshotMagic);
  wire::AppendU32(&out, kSnapshotVersion);
  wire::AppendString(&out, snapshot.stage);
  wire::AppendU32(&out, static_cast<std::uint32_t>(snapshot.task));
  wire::AppendU64(&out, snapshot.sequence);
  wire::AppendI64(&out, snapshot.watermark);
  wire::AppendU64(&out, snapshot.source_offset);
  wire::AppendString(&out, snapshot.payload);
  wire::AppendU32(&out, Crc32(out));
  return out;
}

Result<CheckpointSnapshot> DecodeSnapshot(const std::string& bytes) {
  if (bytes.size() < 4) {
    return Status::Invalid("checkpoint: snapshot shorter than its checksum");
  }
  // Validate the trailer before trusting any field.
  const std::string body = bytes.substr(0, bytes.size() - 4);
  const std::string trailer_bytes = bytes.substr(bytes.size() - 4);
  wire::Reader trailer(trailer_bytes);
  SPEAR_ASSIGN_OR_RETURN(const std::uint32_t stored_crc, trailer.ReadU32());
  if (stored_crc != Crc32(body)) {
    return Status::Invalid("checkpoint: checksum mismatch (corrupt snapshot)");
  }

  wire::Reader reader(body);
  SPEAR_ASSIGN_OR_RETURN(const std::uint32_t magic, reader.ReadU32());
  if (magic != kSnapshotMagic) {
    return Status::Invalid("checkpoint: bad magic (not a snapshot)");
  }
  CheckpointSnapshot snapshot;
  SPEAR_ASSIGN_OR_RETURN(snapshot.version, reader.ReadU32());
  if (snapshot.version != kSnapshotVersion) {
    return Status::Invalid("checkpoint: unsupported snapshot version " +
                           std::to_string(snapshot.version));
  }
  SPEAR_ASSIGN_OR_RETURN(snapshot.stage, reader.ReadString());
  SPEAR_ASSIGN_OR_RETURN(const std::uint32_t task, reader.ReadU32());
  snapshot.task = static_cast<int>(task);
  SPEAR_ASSIGN_OR_RETURN(snapshot.sequence, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(snapshot.watermark, reader.ReadI64());
  SPEAR_ASSIGN_OR_RETURN(snapshot.source_offset, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(snapshot.payload, reader.ReadString());
  if (!reader.exhausted()) {
    return Status::Invalid("checkpoint: trailing bytes after snapshot");
  }
  return snapshot;
}

// ---------------------------------------------------------------------------
// InMemoryCheckpointStore
// ---------------------------------------------------------------------------

Status InMemoryCheckpointStore::Put(const CheckpointSnapshot& snapshot) {
  std::string encoded = EncodeSnapshot(snapshot);
  std::lock_guard<std::mutex> lock(mutex_);
  Generations& gen = snapshots_[{snapshot.stage, snapshot.task}];
  gen.previous = std::move(gen.current);
  gen.current = std::move(encoded);
  ++puts_;
  return Status::OK();
}

Result<CheckpointSnapshot> InMemoryCheckpointStore::Latest(
    const std::string& stage, int task) {
  std::string current, previous;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = snapshots_.find({stage, task});
    if (it == snapshots_.end()) {
      return Status::NotFound("checkpoint: no snapshot for worker '" + stage +
                              "/" + std::to_string(task) + "'");
    }
    current = it->second.current;
    previous = it->second.previous;
  }
  if (Result<CheckpointSnapshot> snap = DecodeSnapshot(current); snap.ok()) {
    return snap;
  }
  if (!previous.empty()) {
    if (Result<CheckpointSnapshot> snap = DecodeSnapshot(previous);
        snap.ok()) {
      return snap;
    }
  }
  return Status::NotFound("checkpoint: no valid snapshot for worker '" +
                          stage + "/" + std::to_string(task) + "'");
}

std::uint64_t InMemoryCheckpointStore::puts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return puts_;
}

void InMemoryCheckpointStore::CorruptLatestForTesting(const std::string& stage,
                                                      int task) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = snapshots_.find({stage, task});
  if (it == snapshots_.end() || it->second.current.empty()) return;
  // Flip a byte in the middle (the payload region), not the trailer, so
  // the corruption models bit rot rather than a truncated write.
  std::string& bytes = it->second.current;
  bytes[bytes.size() / 2] = static_cast<char>(~bytes[bytes.size() / 2]);
}

// ---------------------------------------------------------------------------
// FileCheckpointStore
// ---------------------------------------------------------------------------

namespace {

namespace fs = std::filesystem;

/// Stage names become file names; keep them path-safe.
std::string SanitizeForFilename(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) c = '_';
  }
  return out;
}

Result<std::string> ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("checkpoint: cannot open " + path.string());
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IOError("checkpoint: read failed for " + path.string());
  }
  return bytes;
}

}  // namespace

FileCheckpointStore::FileCheckpointStore(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
  SPEAR_CHECK(!ec);
}

std::string FileCheckpointStore::PathFor(const std::string& stage,
                                         int task) const {
  return (fs::path(directory_) /
          (SanitizeForFilename(stage) + "-" + std::to_string(task) + ".ckpt"))
      .string();
}

Status FileCheckpointStore::Put(const CheckpointSnapshot& snapshot) {
  const std::string encoded = EncodeSnapshot(snapshot);
  const fs::path path(PathFor(snapshot.stage, snapshot.task));
  const fs::path prev = path.string() + ".prev";
  const fs::path tmp = path.string() + ".tmp";

  std::lock_guard<std::mutex> lock(mutex_);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError("checkpoint: cannot create " + tmp.string());
    }
    out.write(encoded.data(),
              static_cast<std::streamsize>(encoded.size()));
    out.flush();
    if (!out) {
      return Status::IOError("checkpoint: write failed for " + tmp.string());
    }
  }
  std::error_code ec;
  // Demote the previous generation, then atomically publish the new one;
  // an interrupted Put leaves either the old current or the old prev
  // intact, never a half-written current.
  if (fs::exists(path, ec)) {
    fs::rename(path, prev, ec);
    if (ec) {
      return Status::IOError("checkpoint: rotate failed for " +
                             path.string() + ": " + ec.message());
    }
  }
  fs::rename(tmp, path, ec);
  if (ec) {
    return Status::IOError("checkpoint: publish failed for " + path.string() +
                           ": " + ec.message());
  }
  return Status::OK();
}

Result<CheckpointSnapshot> FileCheckpointStore::Latest(
    const std::string& stage, int task) {
  const fs::path path(PathFor(stage, task));
  const fs::path prev = path.string() + ".prev";

  std::lock_guard<std::mutex> lock(mutex_);
  for (const fs::path& candidate : {path, prev}) {
    Result<std::string> bytes = ReadFileBytes(candidate);
    if (!bytes.ok()) continue;
    Result<CheckpointSnapshot> snap = DecodeSnapshot(*bytes);
    if (snap.ok()) return snap;
  }
  return Status::NotFound("checkpoint: no valid snapshot file for worker '" +
                          stage + "/" + std::to_string(task) + "'");
}

}  // namespace spear
