#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/time.h"

/// \file checkpoint.h
/// Versioned, checksummed worker snapshots and the stores that hold them.
///
/// A CheckpointSnapshot is the unit of fault tolerance: one stateful
/// worker's O(b) budget state (opaque payload, see checkpointable.h) plus
/// the bookkeeping recovery needs — the watermark the state is consistent
/// with, the source replay offset at snapshot time, and a monotonically
/// increasing sequence number. Snapshots are byte-encoded with a CRC32
/// trailer; a store never returns a snapshot whose checksum (or envelope)
/// does not validate, falling back to the previous generation instead.
/// Keeping exactly two generations per worker is enough: a snapshot only
/// becomes the fallback after its successor was durably written.

namespace spear {

/// \brief One worker's recovery point.
struct CheckpointSnapshot {
  /// Format version of the envelope (payload versioning is the owner's).
  std::uint32_t version = 1;
  std::string stage;
  int task = 0;
  /// Per-worker snapshot counter, monotonically increasing.
  std::uint64_t sequence = 0;
  /// The state is consistent with every window emitted up to here.
  Timestamp watermark = 0;
  /// Source replay offset at snapshot time (0 when the spout is not
  /// replayable).
  std::uint64_t source_offset = 0;
  /// Opaque operator state (Checkpointable::SnapshotState).
  std::string payload;
};

/// \brief CRC-32 (IEEE 802.3, reflected) over `data`.
std::uint32_t Crc32(const std::string& data);

/// Byte-encodes the snapshot: magic, envelope fields, payload, CRC32
/// trailer over everything preceding it.
std::string EncodeSnapshot(const CheckpointSnapshot& snapshot);

/// Decodes and validates (magic, version, checksum, exact length).
Result<CheckpointSnapshot> DecodeSnapshot(const std::string& bytes);

/// \brief Durable home of worker snapshots. Thread-safe: concurrent
/// workers Put/Latest their own (stage, task) keys during a run.
class CheckpointStore {
 public:
  virtual ~CheckpointStore() = default;

  /// Stores `snapshot` as the newest generation for (stage, task),
  /// demoting the previous one to the fallback generation.
  virtual Status Put(const CheckpointSnapshot& snapshot) = 0;

  /// Returns the latest snapshot for (stage, task) that validates;
  /// falls back to the previous generation if the newest is corrupt.
  /// kNotFound when the worker has no valid snapshot.
  virtual Result<CheckpointSnapshot> Latest(const std::string& stage,
                                            int task) = 0;
};

/// \brief In-process store. Snapshots are kept *encoded* so every
/// Put/Latest round-trips the wire format and its checksum — the
/// in-memory store exercises exactly the code paths the file store does.
class InMemoryCheckpointStore : public CheckpointStore {
 public:
  Status Put(const CheckpointSnapshot& snapshot) override;
  Result<CheckpointSnapshot> Latest(const std::string& stage,
                                    int task) override;

  /// Number of Put calls observed (testing/telemetry).
  std::uint64_t puts() const;

  /// Flips one payload byte of the newest generation for (stage, task) —
  /// lets tests prove Latest falls back to the previous generation.
  void CorruptLatestForTesting(const std::string& stage, int task);

 private:
  struct Generations {
    std::string current;
    std::string previous;
  };

  mutable std::mutex mutex_;
  std::map<std::pair<std::string, int>, Generations> snapshots_;
  std::uint64_t puts_ = 0;
};

/// \brief File-backed store: one `<stage>-<task>.ckpt` per worker in
/// `directory` (plus a `.ckpt.prev` fallback), written atomically via
/// rename so a crash mid-write can never destroy the last good snapshot.
class FileCheckpointStore : public CheckpointStore {
 public:
  /// Creates `directory` if missing (SPEAR_CHECKed).
  explicit FileCheckpointStore(std::string directory);

  Status Put(const CheckpointSnapshot& snapshot) override;
  Result<CheckpointSnapshot> Latest(const std::string& stage,
                                    int task) override;

  const std::string& directory() const { return directory_; }

 private:
  std::string PathFor(const std::string& stage, int task) const;

  const std::string directory_;
  std::mutex mutex_;
};

/// \brief Checkpointing policy of a topology (Topology::checkpoint).
struct CheckpointConfig {
  /// Master switch; when false the executor runs exactly as before (no
  /// replay logging, no snapshots, no recovery — a crash fails the run).
  bool enabled = false;
  /// Snapshot a stateful worker when its local watermark has advanced at
  /// least this much event time (ms) since its last snapshot. Snapshots
  /// happen only at watermark boundaries, right after window emission, so
  /// the serialized state is O(b).
  DurationMs interval = 1;
  /// Recovery attempts per worker before its failure cancels the run.
  int max_recoveries_per_worker = 8;
  /// Bound on the per-worker replay log. Tuples consumed since the last
  /// snapshot beyond this bound are lost on recovery; the loss is folded
  /// into ε̂_w (NoteRecoveryLoss) instead of silently ignored.
  std::size_t max_replay_tuples = 8192;
  /// Where snapshots live. Not owned; null means the executor creates a
  /// run-private InMemoryCheckpointStore (sufficient for in-process
  /// worker restarts).
  CheckpointStore* store = nullptr;
};

}  // namespace spear
