#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"

/// \file wire.h
/// Little-endian binary encoding helpers shared by the checkpoint
/// subsystem: the snapshot envelope (checkpoint.h) and the operator state
/// payloads serialized by the stateful bolts (SpearWindowManager). Same
/// byte conventions as tuple/serde.h, but free of any tuple dependency so
/// state payloads stay opaque byte strings to the store.

namespace spear {
namespace wire {

inline void AppendU8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void AppendU32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void AppendU64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

inline void AppendI64(std::string* out, std::int64_t v) {
  AppendU64(out, static_cast<std::uint64_t>(v));
}

inline void AppendF64(std::string* out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

inline void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<std::uint32_t>(s.size()));
  out->append(s);
}

/// \brief Bounds-checked sequential reader over an encoded byte string.
/// Every accessor returns kOutOfRange instead of reading past the end, so
/// a truncated or corrupted payload fails decoding instead of crashing.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}
  // The reader aliases the caller's buffer; a temporary would dangle.
  explicit Reader(std::string&&) = delete;

  Result<std::uint8_t> ReadU8() {
    SPEAR_ASSIGN_OR_RETURN(const char* p, Take(1));
    return static_cast<std::uint8_t>(*p);
  }

  Result<std::uint32_t> ReadU32() {
    SPEAR_ASSIGN_OR_RETURN(const char* p, Take(4));
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    return v;
  }

  Result<std::uint64_t> ReadU64() {
    SPEAR_ASSIGN_OR_RETURN(const char* p, Take(8));
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
           << (8 * i);
    }
    return v;
  }

  Result<std::int64_t> ReadI64() {
    SPEAR_ASSIGN_OR_RETURN(std::uint64_t v, ReadU64());
    return static_cast<std::int64_t>(v);
  }

  Result<double> ReadF64() {
    SPEAR_ASSIGN_OR_RETURN(std::uint64_t bits, ReadU64());
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Result<std::string> ReadString() {
    SPEAR_ASSIGN_OR_RETURN(std::uint32_t n, ReadU32());
    SPEAR_ASSIGN_OR_RETURN(const char* p, Take(n));
    return std::string(p, n);
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  Result<const char*> Take(std::size_t n) {
    if (data_.size() - pos_ < n) {
      return Status::OutOfRange("wire: truncated payload (need " +
                                std::to_string(n) + " bytes at offset " +
                                std::to_string(pos_) + " of " +
                                std::to_string(data_.size()) + ")");
    }
    const char* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  const std::string& data_;
  std::size_t pos_ = 0;
};

}  // namespace wire
}  // namespace spear
