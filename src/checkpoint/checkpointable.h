#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

/// \file checkpointable.h
/// The two interfaces a topology component implements to participate in
/// checkpoint/recovery (AF-Stream's approximate fault tolerance, adapted
/// to SPEAr):
///
///  - Checkpointable: a stateful bolt that can serialize its *budget*
///    state — O(b) samples/sketches/running moments, never the O(|S_w|)
///    raw window buffer — and restore from it after a crash. Whatever the
///    snapshot does not cover is re-fed from the executor's replay log;
///    anything beyond the log's bound is reported via NoteRecoveryLoss and
///    folded into the window's error estimate ε̂_w.
///
///  - ReplayableSpout: a source that exposes a replay offset so snapshots
///    can record how far the stream had been consumed.
///
/// Both are discovered through virtual hooks on Bolt/Spout
/// (checkpointable() / replayable()) rather than RTTI, so decorator
/// wrappers (fault injection) can forward to the component they wrap.

namespace spear {

/// \brief Snapshot/restore hooks of a stateful worker.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Serializes the worker's budget state into an opaque byte string.
  /// Must be O(b) in the accuracy budget, not O(|S_w|) in the window: the
  /// raw tuple buffer is deliberately NOT part of the snapshot (it is
  /// rebuilt from the replay log, or given up with a bounded error).
  virtual Result<std::string> SnapshotState() = 0;

  /// Replaces the worker's state with a previously serialized snapshot.
  /// Called on a freshly prepared instance during recovery.
  virtual Status RestoreState(const std::string& payload) = 0;

  /// Reports that `lost_tuples` consumed tuples could not be replayed
  /// after a restore (they fell off the bounded replay log). The
  /// implementation must degrade its accuracy accounting accordingly —
  /// SpearWindowManager inflates ε̂_w of every affected window by the
  /// loss ratio and flags the windows as recovered/anomalous.
  virtual void NoteRecoveryLoss(std::uint64_t lost_tuples) = 0;
};

/// \brief A spout whose consumption position can be read and restored.
class ReplayableSpout {
 public:
  virtual ~ReplayableSpout() = default;

  /// Tuples handed out so far; recorded in snapshot headers so an external
  /// driver can re-seek a re-created source.
  virtual std::uint64_t ReplayOffset() const = 0;

  /// Repositions the stream so the next tuple produced is `offset`.
  virtual Status SeekTo(std::uint64_t offset) = 0;
};

}  // namespace spear
