#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

/// \file obs/observability.h
/// Topology-level observability configuration and the end-of-run report.
/// Off by default: a topology without `.Metrics()` / `.Trace()` pays a
/// null-pointer check at wiring time and nothing else.

namespace spear::obs {

/// Knobs for `.Metrics(...)`.
struct MetricsOptions {
  /// Period of the background sampler thread; 0 disables it (metrics are
  /// still collected into RunReport::observability at end of run).
  DurationMs scrape_period_ms = 0;
  /// Receives one JSON-lines scrape per sampler period. Called from the
  /// sampler thread; must be thread-safe. Required for the sampler to
  /// start (a period without a sink is a validation error).
  std::function<void(const std::string&)> sink;
};

/// Topology observability config (Topology::obs). Both layers default
/// off; `.Metrics()`/`.Trace()` flip them on.
struct ObsConfig {
  bool metrics_enabled = false;
  bool trace_enabled = false;
  MetricsOptions metrics;
  TraceOptions trace;

  Status Validate() const;
};

/// \brief Final scrape, embedded in RunReport::observability.
struct ObservabilityReport {
  bool metrics_enabled = false;
  bool trace_enabled = false;
  std::vector<MetricSample> metrics;
  std::vector<TraceSpan> spans;
  /// Spans skipped by the `sample_every` knob (still counted per worker).
  std::uint64_t spans_sampled_out = 0;
  /// Spans dropped at the per-worker `max_spans` cap.
  std::uint64_t spans_dropped = 0;
  /// Scrapes performed by the periodic sampler thread.
  std::uint64_t scrapes = 0;

  std::string PrometheusText() const { return obs::PrometheusText(metrics); }
  std::string MetricsJsonLines() const {
    return obs::MetricsJsonLines(metrics);
  }
  std::string SpansJsonLines() const { return obs::SpansJsonLines(spans); }
};

/// \brief Background scrape thread: renders the registry as JSON lines
/// into `options.sink` every `options.scrape_period_ms`. Start/Stop are
/// idempotent; the thread holds no lock while rendering or invoking the
/// sink.
class PeriodicSampler {
 public:
  PeriodicSampler(const MetricsRegistry* registry, MetricsOptions options)
      : registry_(registry), options_(std::move(options)) {}
  ~PeriodicSampler() { Stop(); }

  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  /// No-op unless the config names both a period and a sink.
  void Start();
  /// Performs one final scrape before joining (so short runs still
  /// observe at least one sample through the sink).
  void Stop();

  std::uint64_t scrapes() const {
    return scrapes_.load(std::memory_order_relaxed);
  }

 private:
  void ScrapeOnce();

  const MetricsRegistry* registry_;
  MetricsOptions options_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::atomic<std::uint64_t> scrapes_{0};
};

}  // namespace spear::obs
