#include "obs/trace.h"

namespace spear::obs {

const char* VerdictName(TraceSpan::Verdict verdict) {
  switch (verdict) {
    case TraceSpan::Verdict::kExpedited:
      return "expedited";
    case TraceSpan::Verdict::kExact:
      return "exact";
    case TraceSpan::Verdict::kDegraded:
      return "degraded";
  }
  return "unknown";
}

void WindowTracer::Record(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  ++seen_;
  const std::size_t every = options_.sample_every == 0 ? 1 : options_.sample_every;
  if ((seen_ - 1) % every != 0) {
    ++sampled_out_;
    return;
  }
  if (spans_.size() >= options_.max_spans) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> WindowTracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::uint64_t WindowTracer::recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::uint64_t WindowTracer::sampled_out() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sampled_out_;
}

std::uint64_t WindowTracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace spear::obs
