#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/time.h"

/// \file obs/trace.h
/// Per-window decision lineage. Every window a SPEAr operator closes can
/// emit one TraceSpan recording what the runtime decided (expedite /
/// exact / degraded) and *why*: the arrival and budget numbers, the ε̂_w
/// decomposition (sampling term + shed/recovery-loss inflation), and the
/// spill/deadline events that shaped the verdict. Spans are recorded into
/// per-worker WindowTracer shards (single producer each, sampled and
/// bounded) and merged on scrape.

namespace spear::obs {

/// \brief One window's decision record.
struct TraceSpan {
  enum class Verdict { kExpedited, kExact, kDegraded };

  std::string stage;
  int task = 0;
  /// Window coordinate [start, end) — event-time ms, or tuple sequence
  /// numbers for count-based windows.
  std::int64_t window_start = 0;
  std::int64_t window_end = 0;

  Verdict verdict = Verdict::kExact;
  bool approximate = false;  ///< result came from the budget estimate

  // ---- arrival / budget occupancy ---------------------------------------
  std::uint64_t arrivals = 0;   ///< tuples admitted into the window
  std::uint64_t processed = 0;  ///< tuples in budget state (sample size)
  std::uint64_t shed = 0;       ///< tuples shed by overload control
  std::uint64_t lost = 0;       ///< tuples lost to recovery/delivery gaps
  std::uint64_t budget = 0;     ///< configured per-window tuple budget

  // ---- ε̂_w decomposition (paper Sec. 4 + PRs 2-4 widening terms) --------
  double epsilon_spec = 0.0;      ///< configured ε
  double alpha_spec = 0.0;        ///< configured α
  double epsilon_sampling = 0.0;  ///< estimator term (CLT / quantile bound)
  double loss_inflation = 0.0;    ///< (lost+shed) / (count+lost+shed)
  double epsilon_hat = 0.0;       ///< reported total = sampling + inflation

  // ---- events ------------------------------------------------------------
  bool recovered = false;       ///< window survived a worker restart
  bool truncated = false;       ///< stream truncated under this window
  bool spilled = false;         ///< window state hit secondary storage
  bool deadline_abort = false;  ///< exact fallback aborted at the deadline

  std::int64_t processing_ns = 0;  ///< time spent deciding+emitting
  std::int64_t emitted_at_ns = 0;  ///< common/time.h NowNs() at emission
};

const char* VerdictName(TraceSpan::Verdict verdict);

/// Sampling/bounding knobs for tracing.
struct TraceOptions {
  /// Record every Nth span (1 = all). Spans skipped by sampling are
  /// counted, not silently dropped.
  std::size_t sample_every = 1;
  /// Cap on retained spans per worker; beyond it spans are counted as
  /// dropped.
  std::size_t max_spans = 8192;
};

/// \brief One worker's span buffer. Record() is called from that worker
/// only; Snapshot() may race with it and takes the same (uncontended in
/// steady state) mutex. Window closes are rare relative to tuples, so a
/// mutex here is off the tuple hot path entirely.
class WindowTracer {
 public:
  explicit WindowTracer(TraceOptions options) : options_(options) {}

  void Record(TraceSpan span);

  std::vector<TraceSpan> Snapshot() const;
  std::uint64_t recorded() const;
  std::uint64_t sampled_out() const;
  std::uint64_t dropped() const;

 private:
  TraceOptions options_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::uint64_t seen_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace spear::obs
