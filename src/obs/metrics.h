#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// \file obs/metrics.h
/// Lock-free runtime metrics: counters, gauges, and fixed-bucket
/// histograms, organized into per-worker *shards* so the hot path never
/// contends on a shared line. Instrument registration (rare: wiring time
/// or Prepare) takes the shard mutex; updates are single relaxed atomic
/// RMWs on instrument memory owned by one worker; a scrape walks every
/// shard under the registration mutex and reads the atomics, merging
/// per-(name, stage, task) series for export.
///
/// This is the *observable* layer (Prometheus/JSON export, periodic
/// sampling, TraceSpans). The pre-existing `spear::MetricsRegistry` in
/// runtime/metrics.h stays the end-of-run summary substrate; the two are
/// reconciled by the metrics-merge invariant test.

namespace spear::obs {

/// Monotonic event count. Single-writer hot path, any-thread scrape.
class Counter {
 public:
  void Add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, shed probability).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Upper bucket bounds for a Histogram (exclusive of the implicit +Inf
/// overflow bucket). Must be strictly increasing.
struct HistogramBuckets {
  std::vector<std::int64_t> bounds;

  /// Nanosecond latency buckets: 1us .. 10s, roughly 1-2-5 per decade.
  static HistogramBuckets LatencyNs();
  /// Generic small-count buckets: 1 .. 1e6, powers of ten with 1-2-5.
  static HistogramBuckets Counts();
};

/// Fixed-bucket histogram. Observe() is a bucket scan (bounds are small)
/// plus three relaxed fetch_adds; no allocation, no locks.
class Histogram {
 public:
  explicit Histogram(HistogramBuckets buckets);

  void Observe(std::int64_t v);

  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is +Inf.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<std::int64_t> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

/// One exported time-series sample (scrape output).
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  std::string stage;
  int task = 0;
  Kind kind = Kind::kCounter;
  /// Counter/gauge value (counters are integral but exported as double).
  double value = 0.0;
  /// Histogram payload (empty for counters/gauges). bucket_counts has one
  /// more entry than bucket_bounds (the +Inf overflow bucket) and is
  /// non-cumulative; exporters cumulate per format.
  std::vector<std::int64_t> bucket_bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t hist_count = 0;
  double hist_sum = 0.0;
};

/// \brief One worker's instrument set, labelled (stage, task).
///
/// Instrument creation is mutex-guarded and idempotent per name (same
/// name returns the same instrument); the returned pointers stay valid
/// for the shard's lifetime, so workers resolve them once at Prepare and
/// update lock-free afterwards.
class MetricsShard {
 public:
  MetricsShard(std::string stage, int task)
      : stage_(std::move(stage)), task_(task) {}

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const HistogramBuckets& buckets);

  const std::string& stage() const { return stage_; }
  int task() const { return task_; }

  /// Snapshot every instrument into samples (scrape path).
  void Collect(std::vector<MetricSample>* out) const;

 private:
  template <typename T>
  struct Named {
    std::string name;
    std::unique_ptr<T> instrument;
  };

  std::string stage_;
  int task_ = 0;
  mutable std::mutex mu_;  // guards the instrument lists, not their values
  std::deque<Named<Counter>> counters_;
  std::deque<Named<Gauge>> gauges_;
  std::deque<Named<Histogram>> histograms_;
};

/// \brief Owns every shard of a run; scrape-side merge point.
class MetricsRegistry {
 public:
  /// Creates (or returns the existing) shard for (stage, task). Stable
  /// pointer for the registry's lifetime.
  MetricsShard* GetShard(const std::string& stage, int task);

  /// Scrapes every shard: one sample per (name, stage, task) series.
  std::vector<MetricSample> Collect() const;

  /// Sum of a counter series across all shards (tests, quick checks).
  std::uint64_t CounterTotal(const std::string& name) const;

 private:
  mutable std::mutex mu_;
  std::deque<MetricsShard> shards_;
};

}  // namespace spear::obs
