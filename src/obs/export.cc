#include "obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <set>
#include <sstream>

namespace spear::obs {
namespace {

std::string FormatDouble(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

std::string Labels(const MetricSample& s, const std::string& extra = "") {
  std::ostringstream os;
  os << "{stage=\"" << s.stage << "\",task=\"" << s.task << "\"";
  if (!extra.empty()) os << "," << extra;
  os << "}";
  return os.str();
}

const char* KindName(MetricSample::Kind kind) {
  switch (kind) {
    case MetricSample::Kind::kCounter:
      return "counter";
    case MetricSample::Kind::kGauge:
      return "gauge";
    case MetricSample::Kind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string PrometheusText(const std::vector<MetricSample>& samples) {
  std::ostringstream os;
  std::set<std::string> typed;
  for (const MetricSample& s : samples) {
    const std::string full = "spear_" + s.name;
    if (typed.insert(full).second) {
      os << "# HELP " << full << " " << s.name << "\n";
      os << "# TYPE " << full << " " << KindName(s.kind) << "\n";
    }
    if (s.kind == MetricSample::Kind::kHistogram) {
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < s.bucket_bounds.size(); ++i) {
        cumulative += i < s.bucket_counts.size() ? s.bucket_counts[i] : 0;
        os << full << "_bucket"
           << Labels(s, "le=\"" + std::to_string(s.bucket_bounds[i]) + "\"")
           << " " << cumulative << "\n";
      }
      cumulative += s.bucket_counts.empty() ? 0 : s.bucket_counts.back();
      os << full << "_bucket" << Labels(s, "le=\"+Inf\"") << " " << cumulative
         << "\n";
      os << full << "_sum" << Labels(s) << " " << FormatDouble(s.hist_sum)
         << "\n";
      os << full << "_count" << Labels(s) << " " << s.hist_count << "\n";
    } else {
      os << full << Labels(s) << " " << FormatDouble(s.value) << "\n";
    }
  }
  return os.str();
}

std::string MetricsJsonLines(const std::vector<MetricSample>& samples) {
  std::ostringstream os;
  for (const MetricSample& s : samples) {
    os << "{\"name\":\"" << JsonEscape(s.name) << "\",\"stage\":\""
       << JsonEscape(s.stage) << "\",\"task\":" << s.task << ",\"kind\":\""
       << KindName(s.kind) << "\"";
    if (s.kind == MetricSample::Kind::kHistogram) {
      os << ",\"count\":" << s.hist_count
         << ",\"sum\":" << FormatDouble(s.hist_sum) << ",\"buckets\":[";
      for (std::size_t i = 0; i < s.bucket_bounds.size(); ++i) {
        if (i > 0) os << ",";
        os << "{\"le\":" << s.bucket_bounds[i] << ",\"n\":"
           << (i < s.bucket_counts.size() ? s.bucket_counts[i] : 0) << "}";
      }
      if (!s.bucket_bounds.empty()) os << ",";
      os << "{\"le\":null,\"n\":"
         << (s.bucket_counts.empty() ? 0 : s.bucket_counts.back()) << "}]";
    } else {
      os << ",\"value\":" << FormatDouble(s.value);
    }
    os << "}\n";
  }
  return os.str();
}

std::string SpansJsonLines(const std::vector<TraceSpan>& spans) {
  std::ostringstream os;
  for (const TraceSpan& sp : spans) {
    os << "{\"stage\":\"" << JsonEscape(sp.stage) << "\",\"task\":" << sp.task
       << ",\"window_start\":" << sp.window_start
       << ",\"window_end\":" << sp.window_end << ",\"verdict\":\""
       << VerdictName(sp.verdict) << "\""
       << ",\"approximate\":" << (sp.approximate ? "true" : "false")
       << ",\"arrivals\":" << sp.arrivals << ",\"processed\":" << sp.processed
       << ",\"shed\":" << sp.shed << ",\"lost\":" << sp.lost
       << ",\"budget\":" << sp.budget
       << ",\"epsilon_spec\":" << FormatDouble(sp.epsilon_spec)
       << ",\"alpha_spec\":" << FormatDouble(sp.alpha_spec)
       << ",\"epsilon_sampling\":" << FormatDouble(sp.epsilon_sampling)
       << ",\"loss_inflation\":" << FormatDouble(sp.loss_inflation)
       << ",\"epsilon_hat\":" << FormatDouble(sp.epsilon_hat)
       << ",\"recovered\":" << (sp.recovered ? "true" : "false")
       << ",\"truncated\":" << (sp.truncated ? "true" : "false")
       << ",\"spilled\":" << (sp.spilled ? "true" : "false")
       << ",\"deadline_abort\":" << (sp.deadline_abort ? "true" : "false")
       << ",\"processing_ns\":" << sp.processing_ns
       << ",\"emitted_at_ns\":" << sp.emitted_at_ns << "}\n";
  }
  return os.str();
}

}  // namespace spear::obs
