#include "obs/metrics.h"

namespace spear::obs {

HistogramBuckets HistogramBuckets::LatencyNs() {
  return HistogramBuckets{{1'000,
                           2'000,
                           5'000,
                           10'000,
                           20'000,
                           50'000,
                           100'000,
                           200'000,
                           500'000,
                           1'000'000,
                           5'000'000,
                           10'000'000,
                           50'000'000,
                           100'000'000,
                           1'000'000'000,
                           10'000'000'000}};
}

HistogramBuckets HistogramBuckets::Counts() {
  return HistogramBuckets{
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1'000, 10'000, 100'000, 1'000'000}};
}

Histogram::Histogram(HistogramBuckets buckets)
    : bounds_(std::move(buckets.bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(std::int64_t v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter* MetricsShard::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& n : counters_) {
    if (n.name == name) return n.instrument.get();
  }
  counters_.push_back(Named<Counter>{name, std::make_unique<Counter>()});
  return counters_.back().instrument.get();
}

Gauge* MetricsShard::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& n : gauges_) {
    if (n.name == name) return n.instrument.get();
  }
  gauges_.push_back(Named<Gauge>{name, std::make_unique<Gauge>()});
  return gauges_.back().instrument.get();
}

Histogram* MetricsShard::GetHistogram(const std::string& name,
                                      const HistogramBuckets& buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& n : histograms_) {
    if (n.name == name) return n.instrument.get();
  }
  histograms_.push_back(
      Named<Histogram>{name, std::make_unique<Histogram>(buckets)});
  return histograms_.back().instrument.get();
}

void MetricsShard::Collect(std::vector<MetricSample>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& n : counters_) {
    MetricSample s;
    s.name = n.name;
    s.stage = stage_;
    s.task = task_;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<double>(n.instrument->value());
    out->push_back(std::move(s));
  }
  for (const auto& n : gauges_) {
    MetricSample s;
    s.name = n.name;
    s.stage = stage_;
    s.task = task_;
    s.kind = MetricSample::Kind::kGauge;
    s.value = n.instrument->value();
    out->push_back(std::move(s));
  }
  for (const auto& n : histograms_) {
    MetricSample s;
    s.name = n.name;
    s.stage = stage_;
    s.task = task_;
    s.kind = MetricSample::Kind::kHistogram;
    s.bucket_bounds = n.instrument->bounds();
    s.bucket_counts = n.instrument->bucket_counts();
    s.hist_count = n.instrument->count();
    s.hist_sum = static_cast<double>(n.instrument->sum());
    out->push_back(std::move(s));
  }
}

MetricsShard* MetricsRegistry::GetShard(const std::string& stage, int task) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& shard : shards_) {
    if (shard.stage() == stage && shard.task() == task) return &shard;
  }
  shards_.emplace_back(stage, task);
  return &shards_.back();
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  std::vector<MetricSample> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& shard : shards_) shard.Collect(&out);
  return out;
}

std::uint64_t MetricsRegistry::CounterTotal(const std::string& name) const {
  std::uint64_t total = 0;
  for (const MetricSample& s : Collect()) {
    if (s.kind == MetricSample::Kind::kCounter && s.name == name) {
      total += static_cast<std::uint64_t>(s.value);
    }
  }
  return total;
}

}  // namespace spear::obs
