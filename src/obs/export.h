#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

/// \file obs/export.h
/// Scrape renderers. Two formats:
///
/// * Prometheus text exposition (v0.0.4): every metric name is prefixed
///   `spear_`, labelled {stage, task}; histograms render cumulative
///   `_bucket{le=...}` series plus `_sum`/`_count` per convention.
/// * JSON lines: one self-contained JSON object per line, for both
///   metric samples and trace spans — greppable, appendable, and easy to
///   round-trip in tests.

namespace spear::obs {

/// Renders samples in Prometheus text exposition format.
std::string PrometheusText(const std::vector<MetricSample>& samples);

/// Renders samples as JSON lines (one object per sample).
std::string MetricsJsonLines(const std::vector<MetricSample>& samples);

/// Renders spans as JSON lines (one object per span).
std::string SpansJsonLines(const std::vector<TraceSpan>& spans);

/// Escapes a string for embedding in a JSON string literal (no quotes).
std::string JsonEscape(const std::string& s);

}  // namespace spear::obs
