#include "obs/observability.h"

#include <chrono>

namespace spear::obs {

Status ObsConfig::Validate() const {
  if (metrics.scrape_period_ms < 0) {
    return Status::Invalid("obs scrape period must be >= 0");
  }
  if (metrics.scrape_period_ms > 0 && !metrics.sink) {
    return Status::Invalid("obs scrape period requires a sink");
  }
  if (trace_enabled && trace.sample_every == 0) {
    return Status::Invalid("obs trace sample_every must be >= 1");
  }
  if (trace_enabled && trace.max_spans == 0) {
    return Status::Invalid("obs trace max_spans must be >= 1");
  }
  return Status::OK();
}

void PeriodicSampler::Start() {
  if (registry_ == nullptr || options_.scrape_period_ms <= 0 || !options_.sink) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_ = false;
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      const auto period =
          std::chrono::milliseconds(options_.scrape_period_ms);
      if (cv_.wait_for(lock, period, [this] { return stop_; })) break;
      lock.unlock();
      ScrapeOnce();
      lock.lock();
    }
  });
}

void PeriodicSampler::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
    running_ = false;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  // Final scrape so even sub-period runs deliver one sample to the sink.
  ScrapeOnce();
}

void PeriodicSampler::ScrapeOnce() {
  if (registry_ == nullptr || !options_.sink) return;
  options_.sink(MetricsJsonLines(registry_->Collect()));
  scrapes_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace spear::obs
