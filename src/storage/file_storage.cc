#include "storage/file_storage.h"

#include <fstream>
#include <sstream>

#include "tuple/serde.h"

namespace spear {

namespace fs = std::filesystem;

Result<FileSecondaryStorage> FileSecondaryStorage::Open(
    const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return Status::IOError("cannot create spill directory '" + directory +
                           "': " + ec.message());
  }
  return FileSecondaryStorage(directory);
}

fs::path FileSecondaryStorage::PathFor(const std::string& key) const {
  // Keys may contain '/'; flatten them so every run is a single file.
  std::string name;
  name.reserve(key.size());
  for (char c : key) name += (c == '/' || c == '\\') ? '_' : c;
  return fs::path(directory_) / (name + ".run");
}

Status FileSecondaryStorage::Store(const std::string& key,
                                   const Tuple& tuple) {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::ofstream out(PathFor(key), std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("cannot open run file for '" + key + "'");
  std::string encoded;
  EncodeTuple(tuple, &encoded);
  out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  if (!out) return Status::IOError("short write to run '" + key + "'");
  ++counts_[key];
  return Status::OK();
}

Status FileSecondaryStorage::StoreBatch(const std::string& key,
                                        const std::vector<Tuple>& tuples) {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::ofstream out(PathFor(key), std::ios::binary | std::ios::app);
  if (!out) return Status::IOError("cannot open run file for '" + key + "'");
  std::string encoded;
  for (const Tuple& t : tuples) EncodeTuple(t, &encoded);
  out.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  if (!out) return Status::IOError("short write to run '" + key + "'");
  counts_[key] += tuples.size();
  return Status::OK();
}

Result<std::vector<Tuple>> FileSecondaryStorage::Get(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  const auto it = counts_.find(key);
  if (it == counts_.end() || it->second == 0) {
    return Status::NotFound("no spilled run under key '" + key + "'");
  }
  std::ifstream in(PathFor(key), std::ios::binary);
  if (!in) return Status::IOError("cannot read run '" + key + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();

  std::vector<Tuple> out;
  out.reserve(it->second);
  std::size_t offset = 0;
  while (offset < data.size()) {
    SPEAR_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(data, &offset));
    out.push_back(std::move(t));
  }
  if (out.size() != it->second) {
    return Status::Internal("run '" + key + "' holds " +
                            std::to_string(out.size()) + " tuples, expected " +
                            std::to_string(it->second));
  }
  return out;
}

Status FileSecondaryStorage::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::error_code ec;
  fs::remove(PathFor(key), ec);
  counts_.erase(key);
  if (ec) return Status::IOError("cannot erase run '" + key + "'");
  return Status::OK();
}

std::size_t FileSecondaryStorage::CountFor(const std::string& key) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

Result<std::uintmax_t> FileSecondaryStorage::DiskBytes() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (entry.is_regular_file()) total += entry.file_size(ec);
  }
  if (ec) return Status::IOError("cannot stat spill directory");
  return total;
}

}  // namespace spear
