#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/secondary_storage.h"
#include "tuple/tuple.h"

/// \file spilling_buffer.h
/// A worker's in-memory tuple buffer bounded by its memory budget; tuples
/// beyond the budget spill to SecondaryStorage (Sec. 2: "If at any point
/// prior to receipt of a watermark, all of a worker's memory budget b is
/// used, then the worker spills consequent tuples to S").

namespace spear {

/// \brief Budget-bounded buffer over (memory, S).
class SpillingBuffer {
 public:
  /// \param memory_capacity max tuples held in memory (0 = unlimited)
  /// \param storage         spill target; may be null iff memory_capacity
  ///                        is 0 (unlimited)
  /// \param spill_key       key identifying this buffer's runs in S
  SpillingBuffer(std::size_t memory_capacity, SecondaryStorage* storage,
                 std::string spill_key)
      : memory_capacity_(memory_capacity),
        storage_(storage),
        spill_key_(std::move(spill_key)) {}

  /// Appends one tuple, spilling when past the budget. A failed spill
  /// (storage transiently unavailable) degrades gracefully: the tuple is
  /// kept in memory past the budget instead of being lost.
  void Append(Tuple tuple) {
    if (memory_capacity_ == 0 || memory_.size() < memory_capacity_) {
      memory_.push_back(std::move(tuple));
      return;
    }
    SPEAR_CHECK(storage_ != nullptr);
    Tuple payload = std::move(tuple);
    const Status stored = storage_->Store(spill_key_, payload);
    if (!stored.ok()) {
      ++spill_failures_;
      memory_.push_back(std::move(payload));
      return;
    }
    ++spilled_;
  }

  /// All buffered tuples, memory-resident first then the spilled run
  /// (fetched from S, paying its latency).
  Result<std::vector<Tuple>> Materialize() const {
    std::vector<Tuple> out = memory_;
    if (spilled_ > 0) {
      SPEAR_ASSIGN_OR_RETURN(std::vector<Tuple> rest,
                             storage_->Get(spill_key_));
      out.insert(out.end(), std::make_move_iterator(rest.begin()),
                 std::make_move_iterator(rest.end()));
    }
    return out;
  }

  /// In-memory portion only, zero cost (used for scans that tolerate
  /// processing memory and spill separately).
  const std::vector<Tuple>& memory_resident() const { return memory_; }

  std::size_t size() const { return memory_.size() + spilled_; }
  std::size_t memory_size() const { return memory_.size(); }
  std::size_t spilled_size() const { return spilled_; }
  bool HasSpilled() const { return spilled_ > 0; }
  /// Spill attempts kept in memory because storage was unavailable.
  std::size_t spill_failures() const { return spill_failures_; }

  /// Approximate resident memory in bytes (Fig. 7 accounting).
  std::size_t MemoryBytes() const {
    std::size_t total = 0;
    for (const auto& t : memory_) total += t.ByteSize();
    return total;
  }

  void Clear() {
    memory_.clear();
    if (spilled_ > 0) storage_->Erase(spill_key_);
    spilled_ = 0;
  }

 private:
  const std::size_t memory_capacity_;
  SecondaryStorage* storage_;
  const std::string spill_key_;
  std::vector<Tuple> memory_;
  std::size_t spilled_ = 0;
  std::size_t spill_failures_ = 0;
};

}  // namespace spear
