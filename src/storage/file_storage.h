#pragma once

#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "tuple/tuple.h"

/// \file file_storage.h
/// A durable implementation of the secondary-storage interface: spilled
/// runs are serialized (tuple/serde.h) into one file per key under a
/// spill directory. Used when the simulated in-memory S (latency model)
/// is not enough — e.g. when spilled state must survive the process, or
/// genuinely exceed RAM.

namespace spear {

/// \brief File-per-key spill store with the same store/get/erase contract
/// as SecondaryStorage. Thread-safe.
class FileSecondaryStorage {
 public:
  /// \param directory spill root; created if absent.
  static Result<FileSecondaryStorage> Open(const std::string& directory);

  /// Appends one tuple to `key`'s run file.
  Status Store(const std::string& key, const Tuple& tuple);

  /// Appends a batch to `key`'s run file.
  Status StoreBatch(const std::string& key, const std::vector<Tuple>& tuples);

  /// Reads back every tuple stored under `key`. NotFound when absent.
  Result<std::vector<Tuple>> Get(const std::string& key) const;

  /// Deletes `key`'s run file (idempotent).
  Status Erase(const std::string& key);

  /// Number of tuples under `key` (0 when absent). O(1): counts are
  /// tracked in memory.
  std::size_t CountFor(const std::string& key) const;

  /// Total bytes on disk across all runs.
  Result<std::uintmax_t> DiskBytes() const;

  const std::string& directory() const { return directory_; }

 private:
  explicit FileSecondaryStorage(std::string directory)
      : directory_(std::move(directory)),
        mutex_(std::make_unique<std::mutex>()) {}

  std::filesystem::path PathFor(const std::string& key) const;

  std::string directory_;
  // unique_ptr keeps the type movable (Result<T> requires it).
  mutable std::unique_ptr<std::mutex> mutex_;
  std::unordered_map<std::string, std::size_t> counts_;
};

}  // namespace spear
