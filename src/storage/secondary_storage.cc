#include "storage/secondary_storage.h"

#include <chrono>

#include "common/time.h"

namespace spear {

void SecondaryStorage::SimulateLatency(std::size_t tuple_count) const {
  const std::int64_t target =
      latency_.per_call_ns +
      latency_.per_tuple_ns * static_cast<std::int64_t>(tuple_count);
  if (target <= 0) return;
  const std::int64_t start = NowNs();
  // Busy-wait: the cost must land on the calling worker's critical path,
  // exactly as a synchronous remote fetch would.
  while (NowNs() - start < target) {
  }
}

void SecondaryStorage::Store(const std::string& key, Tuple tuple) {
  SimulateLatency(1);
  std::lock_guard<std::mutex> lock(mutex_);
  ++store_calls_;
  runs_[key].push_back(std::move(tuple));
}

void SecondaryStorage::StoreBatch(const std::string& key,
                                  std::vector<Tuple> tuples) {
  SimulateLatency(tuples.size());
  std::lock_guard<std::mutex> lock(mutex_);
  ++store_calls_;
  auto& run = runs_[key];
  run.insert(run.end(), std::make_move_iterator(tuples.begin()),
             std::make_move_iterator(tuples.end()));
}

Result<std::vector<Tuple>> SecondaryStorage::Get(const std::string& key) const {
  std::size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++get_calls_;
    const auto it = runs_.find(key);
    if (it == runs_.end()) {
      return Status::NotFound("no spilled run under key '" + key + "'");
    }
    count = it->second.size();
  }
  SimulateLatency(count);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(key);
  if (it == runs_.end()) {
    return Status::NotFound("run under key '" + key + "' erased concurrently");
  }
  return it->second;
}

void SecondaryStorage::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  runs_.erase(key);
}

std::size_t SecondaryStorage::CountFor(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(key);
  return it == runs_.end() ? 0 : it->second.size();
}

std::size_t SecondaryStorage::TotalTuples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, run] : runs_) total += run.size();
  return total;
}

}  // namespace spear
