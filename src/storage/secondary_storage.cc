#include "storage/secondary_storage.h"

#include <chrono>

#include "common/time.h"

namespace spear {

void SecondaryStorage::SimulateLatency(std::size_t tuple_count,
                                       std::int64_t extra_ns) const {
  const std::int64_t target =
      latency_.per_call_ns +
      latency_.per_tuple_ns * static_cast<std::int64_t>(tuple_count) +
      extra_ns;
  if (target <= 0) return;
  const std::int64_t start = NowNs();
  // Busy-wait: the cost must land on the calling worker's critical path,
  // exactly as a synchronous remote fetch would. Cancellation-aware: a
  // cancelled run abandons the simulated wait instead of serving it out.
  while (NowNs() - start < target) {
    if (latency_cancelled_.load(std::memory_order_relaxed)) return;
  }
}

Status SecondaryStorage::Store(const std::string& key, Tuple tuple) {
  std::int64_t extra_ns = 0;
  if (injector_ != nullptr) {
    const FaultInjector::Decision d =
        injector_->Tick(FaultSite::kStorageStore);
    extra_ns = d.extra_latency_ns;
    if (d.fire) {
      // A failed remote call still costs its round trip.
      SimulateLatency(0, extra_ns);
      return Status::Unavailable("injected fault: store('" + key + "')");
    }
  }
  SimulateLatency(1, extra_ns);
  std::lock_guard<std::mutex> lock(mutex_);
  ++store_calls_;
  runs_[key].push_back(std::move(tuple));
  return Status::OK();
}

Status SecondaryStorage::StoreBatch(const std::string& key,
                                    std::vector<Tuple> tuples) {
  std::int64_t extra_ns = 0;
  if (injector_ != nullptr) {
    const FaultInjector::Decision d =
        injector_->Tick(FaultSite::kStorageStore);
    extra_ns = d.extra_latency_ns;
    if (d.fire) {
      SimulateLatency(0, extra_ns);
      return Status::Unavailable("injected fault: store-batch('" + key +
                                 "')");
    }
  }
  SimulateLatency(tuples.size(), extra_ns);
  std::lock_guard<std::mutex> lock(mutex_);
  ++store_calls_;
  auto& run = runs_[key];
  run.insert(run.end(), std::make_move_iterator(tuples.begin()),
             std::make_move_iterator(tuples.end()));
  return Status::OK();
}

Result<std::vector<Tuple>> SecondaryStorage::Get(const std::string& key) const {
  std::int64_t extra_ns = 0;
  if (injector_ != nullptr) {
    const FaultInjector::Decision d = injector_->Tick(FaultSite::kStorageGet);
    extra_ns = d.extra_latency_ns;
    if (d.fire) {
      SimulateLatency(0, extra_ns);
      return Status::Unavailable("injected fault: get('" + key + "')");
    }
  }
  std::size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++get_calls_;
    const auto it = runs_.find(key);
    if (it == runs_.end()) {
      return Status::NotFound("no spilled run under key '" + key + "'");
    }
    count = it->second.size();
  }
  SimulateLatency(count, extra_ns);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(key);
  if (it == runs_.end()) {
    return Status::NotFound("run under key '" + key + "' erased concurrently");
  }
  return it->second;
}

void SecondaryStorage::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  runs_.erase(key);
}

std::size_t SecondaryStorage::CountFor(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = runs_.find(key);
  return it == runs_.end() ? 0 : it->second.size();
}

std::size_t SecondaryStorage::TotalTuples() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, run] : runs_) total += run.size();
  return total;
}

}  // namespace spear
