#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/fault.h"
#include "common/result.h"
#include "tuple/tuple.h"

/// \file secondary_storage.h
/// The paper's globally accessible secondary storage S (e.g. S3), offering
/// store(tau) and get(tau_w). The real thing is orders of magnitude slower
/// than a worker's memory; we simulate that cost asymmetry with a
/// configurable latency model so that spill-heavy configurations are
/// measurably slower, as in the paper's experiments. A FaultInjector can
/// additionally make calls fail transiently (Status::Unavailable) or
/// inject extra latency, for chaos testing the supervised runtime.

namespace spear {

/// \brief Cost model for simulated S accesses. Latencies are *busy-wait*
/// simulated so they consume worker time exactly like a slow fetch would.
struct StorageLatencyModel {
  /// Fixed cost per store/get call (models request round-trip).
  std::int64_t per_call_ns = 0;
  /// Incremental cost per tuple transferred.
  std::int64_t per_tuple_ns = 0;

  /// No simulated delay — pure functional behaviour (default for tests).
  static StorageLatencyModel None() { return {}; }

  /// A deliberately coarse "remote object store" setting used by benches.
  static StorageLatencyModel RemoteObjectStore() {
    return StorageLatencyModel{200'000, 50};
  }
};

/// \brief Thread-safe keyed spill store: (stream, partition) keys map to
/// append-only tuple runs.
class SecondaryStorage {
 public:
  explicit SecondaryStorage(
      StorageLatencyModel latency = StorageLatencyModel::None())
      : latency_(latency) {}

  /// Appends one tuple under `key` (the paper's store(tau)).
  /// Unavailable when a fault is injected (the tuple is NOT stored).
  Status Store(const std::string& key, Tuple tuple);

  /// Appends a batch under `key`. Unavailable when a fault is injected
  /// (the whole batch is NOT stored — the call fails atomically).
  Status StoreBatch(const std::string& key, std::vector<Tuple> tuples);

  /// Retrieves every tuple stored under `key` (the paper's get(tau_w)).
  /// NotFound when nothing was ever spilled under the key; Unavailable
  /// when a fault is injected.
  Result<std::vector<Tuple>> Get(const std::string& key) const;

  /// Drops the run under `key` (after a window is fully processed).
  void Erase(const std::string& key);

  /// Number of tuples currently held under `key` (0 when absent).
  std::size_t CountFor(const std::string& key) const;

  /// Total tuples across all keys.
  std::size_t TotalTuples() const;

  /// Attaches a fault injector (sites kStorageStore / kStorageGet); null
  /// detaches. Call before the storage is shared across threads.
  void InjectFaults(FaultInjector* injector) { injector_ = injector; }

  /// Makes every in-flight and future simulated-latency busy-wait return
  /// immediately. Called when a run is cancelled, so workers unwinding
  /// through storage calls don't spin out the full simulated latency.
  void CancelSimulatedLatency() {
    latency_cancelled_.store(true, std::memory_order_relaxed);
  }

  /// Re-arms the latency simulation (start of a new run).
  void ResetSimulatedLatency() {
    latency_cancelled_.store(false, std::memory_order_relaxed);
  }

  /// Cumulative number of *successful* store / get calls, for overhead
  /// accounting (injected failures don't count: no work was performed).
  std::uint64_t store_calls() const { return store_calls_; }
  std::uint64_t get_calls() const { return get_calls_; }

 private:
  void SimulateLatency(std::size_t tuple_count,
                       std::int64_t extra_ns = 0) const;

  const StorageLatencyModel latency_;
  FaultInjector* injector_ = nullptr;
  std::atomic<bool> latency_cancelled_{false};
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::vector<Tuple>> runs_;
  mutable std::uint64_t store_calls_ = 0;
  mutable std::uint64_t get_calls_ = 0;
};

}  // namespace spear
