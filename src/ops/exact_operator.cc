#include "ops/exact_operator.h"

#include <algorithm>
#include <map>

namespace spear {

Result<WindowResult> ExactWindowOperator::Process(
    const CompleteWindow& window) const {
  if (window.tuples.empty()) {
    return Status::Invalid("exact operator on empty window " +
                           window.bounds.ToString());
  }
  WindowResult result;
  result.bounds = window.bounds;
  result.window_size = window.tuples.size();
  result.tuples_processed = window.tuples.size();
  result.approximate = false;

  if (!is_grouped()) {
    std::vector<double> values;
    values.reserve(window.tuples.size());
    for (const Tuple& t : window.tuples) values.push_back(value_extractor_(t));
    SPEAR_ASSIGN_OR_RETURN(result.scalar,
                           EvaluateExact(spec_, std::move(values)));
    return result;
  }

  // Grouped: partition the window by key, evaluate each group.
  std::map<std::string, std::vector<double>> partitions;
  for (const Tuple& t : window.tuples) {
    partitions[key_extractor_(t)].push_back(value_extractor_(t));
  }
  result.is_grouped = true;
  result.groups.reserve(partitions.size());
  for (auto& [key, values] : partitions) {
    SPEAR_ASSIGN_OR_RETURN(const double v,
                           EvaluateExact(spec_, std::move(values)));
    result.groups.emplace_back(key, v);
  }
  return result;
}

}  // namespace spear
