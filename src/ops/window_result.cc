#include "ops/window_result.h"

#include <cstdio>

namespace spear {

std::string WindowResult::ToString() const {
  std::string out = bounds.ToString();
  out += approximate ? " ~ " : " = ";
  if (is_grouped) {
    out += "{";
    bool first = true;
    for (const auto& [key, value] : groups) {
      if (!first) out += ", ";
      first = false;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s: %g", key.c_str(), value);
      out += buf;
    }
    out += "}";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", scalar);
    out += buf;
  }
  if (approximate) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), " (est. err %.3f, n=%llu/%llu)",
                  estimated_error,
                  static_cast<unsigned long long>(tuples_processed),
                  static_cast<unsigned long long>(window_size));
    out += buf;
  }
  if (degraded) out += " [degraded]";
  if (recovered) out += " [recovered]";
  return out;
}

}  // namespace spear
