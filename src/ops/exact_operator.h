#pragma once

#include <optional>

#include "common/result.h"
#include "ops/aggregate.h"
#include "ops/window_result.h"
#include "tuple/field_extractor.h"
#include "window/window_manager.h"

/// \file exact_operator.h
/// The exact ("Storm") execution of a stateful operation: at watermark
/// arrival, process every tuple of the staged window. This is the baseline
/// all SPEAr comparisons run against, and also SPEAr's own fallback path.

namespace spear {

/// \brief Evaluates an aggregate exactly over a complete window.
///
/// Scalar when `key_extractor` is empty; grouped otherwise (one result per
/// distinct group, all groups included, keys sorted).
class ExactWindowOperator {
 public:
  ExactWindowOperator(AggregateSpec spec, ValueExtractor value_extractor,
                      KeyExtractor key_extractor = nullptr)
      : spec_(spec),
        value_extractor_(std::move(value_extractor)),
        key_extractor_(std::move(key_extractor)) {}

  /// Processes all of S_w. O(|S_w|) (holistic: O(|S_w|) average via
  /// partial sort, per group).
  Result<WindowResult> Process(const CompleteWindow& window) const;

  bool is_grouped() const { return static_cast<bool>(key_extractor_); }
  const AggregateSpec& spec() const { return spec_; }

 private:
  const AggregateSpec spec_;
  const ValueExtractor value_extractor_;
  const KeyExtractor key_extractor_;
};

}  // namespace spear
