#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "stats/running_stats.h"

/// \file aggregate.h
/// The mean-like stateful operations SPEAr supports out of the box
/// (Sec. 4: count, sum, average, quantile, variance, stddev), plus
/// min/max. Operations split into:
///  * algebraic/distributive ("non-holistic"): computable from constant
///    per-window state (RunningStats) — eligible for incremental execution;
///  * holistic (percentile/median): need the full multiset — the case
///    SPEAr's sampling path targets.

namespace spear {

enum class AggregateKind : std::uint8_t {
  kCount,
  kSum,
  kMean,
  kVariance,
  kStdDev,
  kMin,
  kMax,
  kPercentile,
};

/// \brief Which aggregate to run, plus its parameter (phi for percentile).
struct AggregateSpec {
  AggregateKind kind = AggregateKind::kMean;
  /// Quantile in [0, 1]; used only by kPercentile.
  double phi = 0.5;

  static AggregateSpec Count() { return {AggregateKind::kCount, 0.0}; }
  static AggregateSpec Sum() { return {AggregateKind::kSum, 0.0}; }
  static AggregateSpec Mean() { return {AggregateKind::kMean, 0.0}; }
  static AggregateSpec Variance() { return {AggregateKind::kVariance, 0.0}; }
  static AggregateSpec StdDev() { return {AggregateKind::kStdDev, 0.0}; }
  static AggregateSpec Min() { return {AggregateKind::kMin, 0.0}; }
  static AggregateSpec Max() { return {AggregateKind::kMax, 0.0}; }
  static AggregateSpec Percentile(double phi) {
    return {AggregateKind::kPercentile, phi};
  }
  static AggregateSpec Median() { return Percentile(0.5); }

  /// Holistic operations need the whole window multiset.
  bool IsHolistic() const { return kind == AggregateKind::kPercentile; }

  /// Non-holistic operations evaluate from RunningStats in O(1).
  bool IsIncremental() const { return !IsHolistic(); }

  std::string ToString() const;
};

/// \brief Exact value of the aggregate over `values`. O(n) (holistic uses
/// nth_element). Invalid on empty input.
Result<double> EvaluateExact(const AggregateSpec& spec,
                             std::vector<double> values);

/// \brief Value of a non-holistic aggregate from its running state.
/// FailedPrecondition for holistic specs; Invalid for an empty state.
Result<double> EvaluateFromStats(const AggregateSpec& spec,
                                 const RunningStats& stats);

const char* AggregateKindName(AggregateKind kind);

}  // namespace spear
