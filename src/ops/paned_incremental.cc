#include "ops/paned_incremental.h"

#include <algorithm>

#include "common/time.h"
#include "window/window_assigner.h"

namespace spear {

PanedIncrementalOperator::PanedIncrementalOperator(
    AggregateSpec spec, WindowSpec window_spec,
    ValueExtractor value_extractor, KeyExtractor key_extractor)
    : spec_(spec),
      window_spec_(window_spec),
      value_extractor_(std::move(value_extractor)),
      key_extractor_(std::move(key_extractor)),
      panes_per_window_(window_spec.range / window_spec.slide),
      last_watermark_(kMinTimestamp) {
  SPEAR_CHECK(spec_.IsIncremental());
  SPEAR_CHECK(window_spec_.IsValid());
  SPEAR_CHECK(window_spec_.range % window_spec_.slide == 0);
}

std::int64_t PanedIncrementalOperator::PaneStart(std::int64_t coord) const {
  return LastWindowStartFor(window_spec_, coord);  // slide-aligned floor
}

void PanedIncrementalOperator::OnTuple(std::int64_t coord,
                                       const Tuple& tuple) {
  if (coord < last_watermark_) {
    ++late_tuples_;
    return;
  }
  if (!saw_any_tuple_) {
    next_window_start_ = FirstWindowStartFor(window_spec_, coord);
    saw_any_tuple_ = true;
  } else {
    next_window_start_ = std::min(
        next_window_start_, FirstWindowStartFor(window_spec_, coord));
  }
  const std::int64_t pane = PaneStart(coord);
  const double value = value_extractor_(tuple);
  if (is_grouped()) {
    grouped_panes_[pane][key_extractor_(tuple)].Update(value);
  } else {
    scalar_panes_[pane].Update(value);
  }
}

Result<std::vector<WindowResult>> PanedIncrementalOperator::OnWatermark(
    std::int64_t watermark) {
  std::vector<WindowResult> out;
  watermark = ClampWatermark(window_spec_, watermark);
  if (watermark <= last_watermark_) return out;
  last_watermark_ = watermark;
  if (!saw_any_tuple_) return out;

  // First pane a window starting at or after next_window_start_ could
  // use (window [s, s+range) covers panes s .. s+range-slide, all >= s).
  auto next_relevant_pane = [&]() -> std::int64_t {
    if (is_grouped()) {
      const auto it = grouped_panes_.lower_bound(next_window_start_);
      return it == grouped_panes_.end() ? kMaxTimestamp : it->first;
    }
    const auto it = scalar_panes_.lower_bound(next_window_start_);
    return it == scalar_panes_.end() ? kMaxTimestamp : it->first;
  };

  // Skip empty stretches wholesale: jump to the earliest window that can
  // still cover a live pane (a window with no panes emits nothing, and —
  // future tuples being >= the watermark — never will).
  const std::int64_t first_incomplete =
      FirstIncompleteWindowStart(window_spec_, watermark);
  auto advance_past_gap = [&]() -> bool {  // false: no window left to emit
    const std::int64_t pane = next_relevant_pane();
    if (pane == kMaxTimestamp) {
      next_window_start_ = std::max(next_window_start_, first_incomplete);
      return false;
    }
    const std::int64_t earliest_covering =
        pane - window_spec_.range + window_spec_.slide;
    next_window_start_ = std::max(
        next_window_start_, std::min(earliest_covering, first_incomplete));
    return true;
  };

  if (!advance_past_gap()) return out;
  while (next_window_start_ + window_spec_.range <= watermark) {
    const WindowBounds bounds{next_window_start_,
                              next_window_start_ + window_spec_.range};
    WindowResult result;
    result.bounds = bounds;
    result.tuples_processed = 0;

    if (is_grouped()) {
      std::map<std::string, RunningStats> merged;
      for (std::int64_t pane = bounds.start; pane < bounds.end;
           pane += window_spec_.slide) {
        const auto it = grouped_panes_.find(pane);
        if (it == grouped_panes_.end()) continue;
        for (const auto& [key, stats] : it->second) {
          merged[key].Merge(stats);
        }
      }
      if (!merged.empty()) {
        result.is_grouped = true;
        for (const auto& [key, stats] : merged) {
          result.window_size += stats.count();
          SPEAR_ASSIGN_OR_RETURN(const double v,
                                 EvaluateFromStats(spec_, stats));
          result.groups.emplace_back(key, v);
        }
        out.push_back(std::move(result));
      }
    } else {
      RunningStats merged;
      for (std::int64_t pane = bounds.start; pane < bounds.end;
           pane += window_spec_.slide) {
        const auto it = scalar_panes_.find(pane);
        if (it != scalar_panes_.end()) merged.Merge(it->second);
      }
      if (merged.count() > 0) {
        result.window_size = merged.count();
        SPEAR_ASSIGN_OR_RETURN(result.scalar,
                               EvaluateFromStats(spec_, merged));
        out.push_back(std::move(result));
      }
    }
    next_window_start_ += window_spec_.slide;
    if (!advance_past_gap()) break;
  }

  // Evict panes below the next window's start: no future window covers
  // them.
  while (!scalar_panes_.empty() &&
         scalar_panes_.begin()->first < next_window_start_) {
    scalar_panes_.erase(scalar_panes_.begin());
  }
  while (!grouped_panes_.empty() &&
         grouped_panes_.begin()->first < next_window_start_) {
    grouped_panes_.erase(grouped_panes_.begin());
  }
  return out;
}

}  // namespace spear
