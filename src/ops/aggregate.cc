#include "ops/aggregate.h"

#include <algorithm>

#include "stats/quantile.h"

namespace spear {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return "count";
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kMean:
      return "mean";
    case AggregateKind::kVariance:
      return "variance";
    case AggregateKind::kStdDev:
      return "stddev";
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kPercentile:
      return "percentile";
  }
  return "?";
}

std::string AggregateSpec::ToString() const {
  std::string out = AggregateKindName(kind);
  if (kind == AggregateKind::kPercentile) {
    out += "(" + std::to_string(phi) + ")";
  }
  return out;
}

Result<double> EvaluateExact(const AggregateSpec& spec,
                             std::vector<double> values) {
  if (values.empty()) return Status::Invalid("aggregate of empty window");
  if (spec.kind == AggregateKind::kPercentile) {
    return ExactQuantileInPlace(&values, spec.phi);
  }
  RunningStats stats;
  for (double v : values) stats.Update(v);
  return EvaluateFromStats(spec, stats);
}

Result<double> EvaluateFromStats(const AggregateSpec& spec,
                                 const RunningStats& stats) {
  if (spec.IsHolistic()) {
    return Status::FailedPrecondition(
        "holistic aggregate cannot evaluate from running stats");
  }
  if (stats.count() == 0) return Status::Invalid("aggregate of empty window");
  switch (spec.kind) {
    case AggregateKind::kCount:
      return static_cast<double>(stats.count());
    case AggregateKind::kSum:
      return stats.sum();
    case AggregateKind::kMean:
      return stats.mean();
    case AggregateKind::kVariance:
      return stats.SampleVariance();
    case AggregateKind::kStdDev:
      return stats.SampleStdDev();
    case AggregateKind::kMin:
      return stats.min();
    case AggregateKind::kMax:
      return stats.max();
    case AggregateKind::kPercentile:
      break;  // handled above
  }
  return Status::Internal("unknown aggregate kind");
}

}  // namespace spear
