#pragma once

#include <string>
#include <utility>
#include <vector>

#include "window/window_spec.h"

/// \file window_result.h
/// The R_w produced for each complete window: either a scalar value or one
/// value per distinct group. SPEAr marks expedited results as approximate
/// and attaches the estimated error, so downstream consumers (and our
/// benches) can audit the accuracy guarantee.

namespace spear {

/// \brief Result of one stateful operation over one window.
struct WindowResult {
  WindowBounds bounds;
  /// Number of tuples in S_w (the full window, not the sample).
  std::uint64_t window_size = 0;

  bool is_grouped = false;
  double scalar = 0.0;
  /// Grouped results, sorted by key (deterministic output).
  std::vector<std::pair<std::string, double>> groups;

  /// True when produced from a sample (SPEAr's expedited path).
  bool approximate = false;
  /// True when the decision demanded the exact fallback but its spilled
  /// state stayed unavailable after retries, so the window was emitted
  /// from the sample *without* meeting the accuracy spec. `approximate`
  /// is also true and `estimated_error` carries the (unmet) estimate.
  bool degraded = false;
  /// True when the window lived through a worker crash/restore cycle.
  /// If tuples were lost from the budget state in recovery (they fell off
  /// the bounded replay log), `estimated_error` already includes the
  /// AF-Stream-style loss inflation and `window_size` counts the lost
  /// tuples.
  bool recovered = false;
  /// The estimator's error bound for this window (only meaningful when
  /// `approximate` is true).
  double estimated_error = 0.0;
  /// Tuples actually processed to produce this result (= sample size on
  /// the expedited path, = window_size on the exact path).
  std::uint64_t tuples_processed = 0;

  /// Wall-clock nanoseconds spent producing this window's result at
  /// watermark arrival (staging + decision + computation). The per-window
  /// "window processing time" metric of the paper's evaluation.
  std::int64_t processing_ns = 0;

  std::string ToString() const;
};

}  // namespace spear
