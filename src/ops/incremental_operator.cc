#include "ops/incremental_operator.h"

#include "common/time.h"

namespace spear {

IncrementalOperator::IncrementalOperator(AggregateSpec spec,
                                         WindowSpec window_spec,
                                         ValueExtractor value_extractor,
                                         KeyExtractor key_extractor)
    : spec_(spec),
      window_spec_(window_spec),
      value_extractor_(std::move(value_extractor)),
      key_extractor_(std::move(key_extractor)),
      last_watermark_(kMinTimestamp) {
  SPEAR_CHECK(spec_.IsIncremental());
  SPEAR_CHECK(window_spec_.IsValid());
}

void IncrementalOperator::OnTuple(std::int64_t coord, const Tuple& tuple) {
  if (coord < last_watermark_) {
    ++late_tuples_;
    return;
  }
  const double value = value_extractor_(tuple);
  for (const WindowBounds& w : AssignWindows(window_spec_, coord)) {
    if (is_grouped()) {
      grouped_state_[w.start][key_extractor_(tuple)].Update(value);
    } else {
      scalar_state_[w.start].Update(value);
    }
  }
}

Result<std::vector<WindowResult>> IncrementalOperator::OnWatermark(
    std::int64_t watermark) {
  std::vector<WindowResult> out;
  if (watermark <= last_watermark_) return out;
  last_watermark_ = watermark;

  if (!is_grouped()) {
    auto it = scalar_state_.begin();
    while (it != scalar_state_.end() &&
           it->first + window_spec_.range <= watermark) {
      WindowResult result;
      result.bounds = WindowBounds{it->first, it->first + window_spec_.range};
      result.window_size = it->second.count();
      result.tuples_processed = 0;  // incremental: no work at watermark
      SPEAR_ASSIGN_OR_RETURN(result.scalar,
                             EvaluateFromStats(spec_, it->second));
      out.push_back(std::move(result));
      it = scalar_state_.erase(it);
    }
    return out;
  }

  auto it = grouped_state_.begin();
  while (it != grouped_state_.end() &&
         it->first + window_spec_.range <= watermark) {
    WindowResult result;
    result.bounds = WindowBounds{it->first, it->first + window_spec_.range};
    result.is_grouped = true;
    result.tuples_processed = 0;
    for (const auto& [key, stats] : it->second) {
      result.window_size += stats.count();
      SPEAR_ASSIGN_OR_RETURN(const double v, EvaluateFromStats(spec_, stats));
      result.groups.emplace_back(key, v);
    }
    out.push_back(std::move(result));
    it = grouped_state_.erase(it);
  }
  return out;
}

}  // namespace spear
