#pragma once

#include <map>
#include <string>

#include "common/result.h"
#include "ops/aggregate.h"
#include "ops/window_result.h"
#include "stats/running_stats.h"
#include "tuple/field_extractor.h"
#include "window/window_assigner.h"

/// \file incremental_operator.h
/// Incremental ("Inc-Storm") execution for non-holistic aggregates: a
/// constant-size accumulator per active window is updated at tuple arrival,
/// and watermark arrival just finalizes it — no buffer, no scan. This is
/// the optimal method for e.g. the scalar mean (Fig. 8a), and the
/// technique SPEAr itself adopts for non-holistic scalar operations.

namespace spear {

/// \brief Per-window incremental accumulation of a non-holistic aggregate.
///
/// Scalar when constructed without a key extractor, grouped otherwise.
class IncrementalOperator {
 public:
  /// \pre spec.IsIncremental()
  IncrementalOperator(AggregateSpec spec, WindowSpec window_spec,
                      ValueExtractor value_extractor,
                      KeyExtractor key_extractor = nullptr);

  /// Updates the accumulator of every window containing `coord`. O(1) per
  /// participating window.
  void OnTuple(std::int64_t coord, const Tuple& tuple);

  /// Finalizes and discards every window ending on or before `watermark`.
  Result<std::vector<WindowResult>> OnWatermark(std::int64_t watermark);

  /// Active (incomplete) windows currently tracked.
  std::size_t active_windows() const { return scalar_state_.size() + grouped_state_.size(); }

  bool is_grouped() const { return static_cast<bool>(key_extractor_); }

 private:
  const AggregateSpec spec_;
  const WindowSpec window_spec_;
  const ValueExtractor value_extractor_;
  const KeyExtractor key_extractor_;

  /// window start -> accumulator (scalar CQs).
  std::map<std::int64_t, RunningStats> scalar_state_;
  /// window start -> group key -> accumulator (grouped CQs).
  std::map<std::int64_t, std::map<std::string, RunningStats>> grouped_state_;
  std::int64_t last_watermark_;
  std::uint64_t late_tuples_ = 0;

 public:
  std::uint64_t late_tuples() const { return late_tuples_; }
};

}  // namespace spear
