#pragma once

#include <map>
#include <string>

#include "common/result.h"
#include "ops/aggregate.h"
#include "ops/window_result.h"
#include "tuple/field_extractor.h"
#include "window/window_spec.h"

/// \file paned_incremental.h
/// Pane-based (sliced) incremental aggregation — the aggregate-sharing
/// family of the paper's related work (Arasu & Widom [37], Cutty [38],
/// panes): a sliding window whose slide divides its range is the union of
/// range/slide *panes* (tumbling slices of length slide). Each tuple
/// updates exactly ONE pane accumulator instead of one accumulator per
/// overlapping window, and watermark arrival merges range/slide pane
/// accumulators per emitted window. For mergeable (algebraic) aggregates
/// this cuts tuple-arrival work by the overlap factor at a small
/// watermark-time merge cost.

namespace spear {

/// \brief Pane-sharing variant of IncrementalOperator (non-holistic
/// aggregates, slide must divide range).
class PanedIncrementalOperator {
 public:
  /// \pre spec.IsIncremental() and window.range % window.slide == 0
  PanedIncrementalOperator(AggregateSpec spec, WindowSpec window_spec,
                           ValueExtractor value_extractor,
                           KeyExtractor key_extractor = nullptr);

  /// Updates exactly one pane. O(1) per tuple, independent of overlap.
  void OnTuple(std::int64_t coord, const Tuple& tuple);

  /// Merges panes into every complete window's result, then evicts panes
  /// no future window needs.
  Result<std::vector<WindowResult>> OnWatermark(std::int64_t watermark);

  std::size_t active_panes() const {
    return scalar_panes_.size() + grouped_panes_.size();
  }

  /// Accumulators merged per emitted window (= range / slide).
  std::int64_t panes_per_window() const { return panes_per_window_; }

  bool is_grouped() const { return static_cast<bool>(key_extractor_); }
  std::uint64_t late_tuples() const { return late_tuples_; }

 private:
  std::int64_t PaneStart(std::int64_t coord) const;

  const AggregateSpec spec_;
  const WindowSpec window_spec_;
  const ValueExtractor value_extractor_;
  const KeyExtractor key_extractor_;
  const std::int64_t panes_per_window_;

  /// pane start -> accumulator (scalar CQs).
  std::map<std::int64_t, RunningStats> scalar_panes_;
  /// pane start -> group key -> accumulator (grouped CQs).
  std::map<std::int64_t, std::map<std::string, RunningStats>> grouped_panes_;
  std::int64_t last_watermark_;
  std::int64_t next_window_start_ = 0;
  bool saw_any_tuple_ = false;
  std::uint64_t late_tuples_ = 0;
};

}  // namespace spear
