#pragma once

#include <cstdint>
#include <string>

#include "common/logging.h"
#include "common/time.h"

/// \file window_spec.h
/// Window definitions (Sec. 2 of the paper): time- or count-based range and
/// slide. Tumbling windows are sliding windows whose slide equals the
/// range. Window *coordinates* abstract over the two domains — event-time
/// milliseconds for time-based windows, per-partition sequence numbers for
/// count-based ones — so one assigner and one manager serve both.

namespace spear {

enum class WindowType : std::uint8_t { kTimeBased, kCountBased };

/// \brief Range/slide description of a windowing function W.
struct WindowSpec {
  WindowType type = WindowType::kTimeBased;
  /// Window length: milliseconds (time-based) or tuples (count-based).
  std::int64_t range = 0;
  /// Slide between consecutive window starts, same unit as `range`.
  std::int64_t slide = 0;

  static WindowSpec TumblingTime(DurationMs range) {
    return WindowSpec{WindowType::kTimeBased, range, range};
  }
  static WindowSpec SlidingTime(DurationMs range, DurationMs slide) {
    return WindowSpec{WindowType::kTimeBased, range, slide};
  }
  static WindowSpec TumblingCount(std::int64_t count) {
    return WindowSpec{WindowType::kCountBased, count, count};
  }
  static WindowSpec SlidingCount(std::int64_t range, std::int64_t slide) {
    return WindowSpec{WindowType::kCountBased, range, slide};
  }

  bool IsTumbling() const { return slide == range; }
  bool IsValid() const { return range > 0 && slide > 0 && slide <= range; }

  /// Number of windows a single coordinate belongs to: ceil(range/slide).
  std::int64_t WindowsPerCoordinate() const {
    return (range + slide - 1) / slide;
  }

  std::string ToString() const;
};

/// \brief Half-open interval [start, end) in window coordinates.
struct WindowBounds {
  std::int64_t start = 0;
  std::int64_t end = 0;

  bool Contains(std::int64_t coord) const {
    return coord >= start && coord < end;
  }
  std::int64_t length() const { return end - start; }

  bool operator==(const WindowBounds& other) const {
    return start == other.start && end == other.end;
  }
  bool operator<(const WindowBounds& other) const {
    return start != other.start ? start < other.start : end < other.end;
  }

  std::string ToString() const;
};

}  // namespace spear
