#include "window/window_spec.h"

namespace spear {

std::string WindowSpec::ToString() const {
  std::string out = type == WindowType::kTimeBased ? "time" : "count";
  out += IsTumbling() ? "-tumbling(" : "-sliding(";
  out += "range=" + std::to_string(range);
  if (!IsTumbling()) out += ", slide=" + std::to_string(slide);
  out += ")";
  return out;
}

std::string WindowBounds::ToString() const {
  return "[" + std::to_string(start) + ", " + std::to_string(end) + ")";
}

}  // namespace spear
