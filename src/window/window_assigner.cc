#include "window/window_assigner.h"

#include <algorithm>

namespace spear {

namespace {

/// Largest multiple of `slide` that is <= coord (floor division that is
/// correct for negative coordinates too).
std::int64_t FloorToSlide(std::int64_t coord, std::int64_t slide) {
  std::int64_t q = coord / slide;
  if (coord % slide != 0 && coord < 0) --q;
  return q * slide;
}

}  // namespace

std::int64_t LastWindowStartFor(const WindowSpec& spec, std::int64_t coord) {
  SPEAR_DCHECK(spec.IsValid());
  return FloorToSlide(coord, spec.slide);
}

std::int64_t FirstWindowStartFor(const WindowSpec& spec, std::int64_t coord) {
  // Earliest start s with s + range > coord, i.e. s > coord - range;
  // starts step by slide from the latest one.
  const std::int64_t last = LastWindowStartFor(spec, coord);
  std::int64_t first = last;
  while (first - spec.slide + spec.range > coord) {
    first -= spec.slide;
  }
  return first;
}

std::int64_t FirstIncompleteWindowStart(const WindowSpec& spec,
                                        std::int64_t watermark) {
  // Latest aligned start, then walk back while the previous window is
  // still incomplete (end > watermark).
  std::int64_t s = LastWindowStartFor(spec, watermark) + spec.slide;
  while (s - spec.slide + spec.range > watermark) {
    s -= spec.slide;
  }
  return s;
}

std::int64_t ClampWatermark(const WindowSpec& spec, std::int64_t watermark) {
  const std::int64_t limit = kMaxTimestamp - spec.range - 2 * spec.slide;
  return watermark > limit ? limit : watermark;
}

std::vector<WindowBounds> AssignWindows(const WindowSpec& spec,
                                        std::int64_t coord) {
  SPEAR_DCHECK(spec.IsValid());
  std::vector<WindowBounds> out;
  out.reserve(static_cast<std::size_t>(spec.WindowsPerCoordinate()));
  const std::int64_t last = LastWindowStartFor(spec, coord);
  // Walk starts downward while the window still contains `coord`.
  for (std::int64_t s = last; s + spec.range > coord; s -= spec.slide) {
    out.push_back(WindowBounds{s, s + spec.range});
  }
  // Ascending start order.
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace spear
