#pragma once

#include <cstdint>

#include "common/time.h"

/// \file watermark.h
/// Watermark generation. The paper's watermarks are control tuples
/// carrying a timestamp T_W whose receipt guarantees all tuples with
/// t <= T_W have been observed (Sec. 2). This repo uses the equivalent
/// *exclusive* convention throughout: a watermark W promises every
/// subsequent tuple has coordinate >= W (i.e. W = T_W + 1). Window
/// managers therefore treat a window [s, e) as complete when e <= W, and
/// a tuple as late when its coordinate is < W.

namespace spear {

/// \brief Periodic watermark generator with bounded out-of-orderness.
///
/// Emits a watermark every `interval` of observed event time, lagging the
/// maximum observed timestamp by `max_lateness` (Flink's
/// BoundedOutOfOrdernessWatermarks).
class WatermarkGenerator {
 public:
  explicit WatermarkGenerator(DurationMs interval, DurationMs max_lateness = 0)
      : interval_(interval), max_lateness_(max_lateness) {}

  /// Observes a tuple timestamp; returns true when a new watermark should
  /// be emitted (fetch it with current()).
  bool Observe(Timestamp t) {
    if (t > max_seen_) max_seen_ = t;
    // Exclusive watermark: everything below `candidate` has been seen,
    // assuming out-of-orderness bounded by max_lateness. The bound must
    // not include max_seen_ itself: further tuples may carry the same
    // timestamp (multiple events in one millisecond).
    const Timestamp candidate = max_seen_ - max_lateness_;
    if (candidate >= next_emit_) {
      current_ = candidate;
      next_emit_ = candidate + interval_;
      return true;
    }
    return false;
  }

  /// Latest watermark value (kMinTimestamp before the first emission).
  Timestamp current() const { return current_; }

  /// Final watermark for end-of-stream: releases every buffered window.
  static Timestamp FinalWatermark() { return kMaxTimestamp; }

 private:
  const DurationMs interval_;
  const DurationMs max_lateness_;
  Timestamp max_seen_ = kMinTimestamp;
  Timestamp next_emit_ = kMinTimestamp + 1;
  Timestamp current_ = kMinTimestamp;
};

}  // namespace spear
