#pragma once

#include <map>

#include "window/window_assigner.h"
#include "window/window_manager.h"

/// \file multi_buffer_manager.h
/// Flink's buffering design (paper Sec. 2, Fig. 3 right): a copy of each
/// tuple is stored in a dedicated buffer for every window it participates
/// in. Watermark arrival just picks the completed buffers — no scan — at
/// the cost of ceil(range/slide) copies per tuple. Included as the
/// comparison point for the Ablation A bench.

namespace spear {

/// \brief Per-window buffers keyed by window start.
class MultiBufferWindowManager : public WindowManager {
 public:
  explicit MultiBufferWindowManager(WindowSpec spec) : spec_(spec) {
    SPEAR_CHECK(spec_.IsValid());
  }

  void OnTuple(std::int64_t coord, Tuple tuple) override {
    if (coord < last_watermark_) {
      ++late_tuples_;
      return;
    }
    const auto windows = AssignWindows(spec_, coord);
    for (const WindowBounds& w : windows) {
      buffers_[w.start].push_back(tuple);  // one copy per window
      ++buffered_;
    }
  }

  Result<std::vector<CompleteWindow>> OnWatermark(
      std::int64_t watermark) override {
    std::vector<CompleteWindow> out;
    if (watermark <= last_watermark_) return out;
    last_watermark_ = watermark;
    auto it = buffers_.begin();
    while (it != buffers_.end() && it->first + spec_.range <= watermark) {
      CompleteWindow window;
      window.bounds = WindowBounds{it->first, it->first + spec_.range};
      window.tuples = std::move(it->second);
      buffered_ -= window.tuples.size();
      it = buffers_.erase(it);
      out.push_back(std::move(window));
    }
    return out;
  }

  std::size_t BufferedTuples() const override { return buffered_; }

  std::size_t MemoryBytes() const override {
    std::size_t total = 0;
    for (const auto& [start, tuples] : buffers_) {
      for (const auto& t : tuples) total += t.ByteSize();
    }
    return total;
  }

  std::uint64_t late_tuples() const override { return late_tuples_; }

  std::size_t active_windows() const { return buffers_.size(); }

 private:
  const WindowSpec spec_;
  std::map<std::int64_t, std::vector<Tuple>> buffers_;
  std::size_t buffered_ = 0;
  std::int64_t last_watermark_ = kMinTimestamp;
  std::uint64_t late_tuples_ = 0;
};

}  // namespace spear
