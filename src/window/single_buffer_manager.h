#pragma once

#include <deque>
#include <string>

#include "storage/secondary_storage.h"
#include "window/window_manager.h"

/// \file single_buffer_manager.h
/// Storm's buffering design (paper Sec. 2, Fig. 3 left): every tuple is
/// stored exactly once in an arrival-ordered buffer. At watermark arrival
/// the worker scans the buffer to (i) collect each complete window's tuples
/// and (ii) evict tuples that no future window can need. Memory per tuple
/// is minimal; the cost is the per-watermark scan.

namespace spear {

/// \brief Single arrival-ordered buffer with optional spill to S.
class SingleBufferWindowManager : public WindowManager {
 public:
  /// \param spec            window definition
  /// \param memory_capacity max tuples resident in memory before spilling
  ///                        (0 = unlimited, no storage needed)
  /// \param storage         spill target (may be null when capacity is 0)
  /// \param spill_key       S key prefix for this worker's runs
  SingleBufferWindowManager(WindowSpec spec, std::size_t memory_capacity = 0,
                            SecondaryStorage* storage = nullptr,
                            std::string spill_key = "single-buffer");

  void OnTuple(std::int64_t coord, Tuple tuple) override;

  Result<std::vector<CompleteWindow>> OnWatermark(
      std::int64_t watermark) override;

  std::size_t BufferedTuples() const override {
    return buffer_.size() + spilled_;
  }

  std::size_t MemoryBytes() const override;

  std::uint64_t late_tuples() const override { return late_tuples_; }

  /// Number of tuples evicted so far (test/bench observability).
  std::uint64_t evicted_tuples() const { return evicted_tuples_; }

  /// Whether any tuple of the current buffer lives in S.
  bool HasSpilled() const { return spilled_ > 0; }

  /// Spill attempts kept in memory because storage was unavailable.
  std::uint64_t spill_failures() const { return spill_failures_; }

  const WindowSpec& spec() const { return spec_; }

 private:
  struct Entry {
    std::int64_t coord;
    Tuple tuple;
  };

  /// Fetches the spilled run back into memory (paying S latency) so a
  /// watermark can process it; called at watermark arrival only.
  Status UnspillForProcessing();

  const WindowSpec spec_;
  const std::size_t memory_capacity_;
  SecondaryStorage* storage_;
  const std::string spill_key_;

  std::deque<Entry> buffer_;
  std::size_t spilled_ = 0;
  std::uint64_t spill_seq_ = 0;
  std::uint64_t spill_failures_ = 0;

  /// End of the last window already emitted; windows are emitted in
  /// ascending order and never twice.
  std::int64_t next_window_start_;
  bool saw_any_tuple_ = false;
  std::int64_t last_watermark_;

  std::uint64_t late_tuples_ = 0;
  std::uint64_t evicted_tuples_ = 0;
};

}  // namespace spear
