#pragma once

#include <vector>

#include "window/window_spec.h"

/// \file window_assigner.h
/// Maps a tuple coordinate to the window(s) it participates in. Windows are
/// aligned so starts are integral multiples of the slide (the convention in
/// Storm/Flink); negative coordinates are supported.

namespace spear {

/// \brief All windows [s, s+range) with s = k*slide containing `coord`.
/// Returned in ascending start order; size <= ceil(range/slide).
std::vector<WindowBounds> AssignWindows(const WindowSpec& spec,
                                        std::int64_t coord);

/// \brief Start of the earliest window containing `coord`.
std::int64_t FirstWindowStartFor(const WindowSpec& spec, std::int64_t coord);

/// \brief Start of the window-aligned slot containing `coord` (the latest
/// window start <= coord).
std::int64_t LastWindowStartFor(const WindowSpec& spec, std::int64_t coord);

/// \brief Start of the earliest window NOT complete at `watermark`, i.e.
/// the smallest aligned s with s + range > watermark. Callers must clamp
/// `watermark` below kMaxTimestamp - range - slide (see ClampWatermark).
std::int64_t FirstIncompleteWindowStart(const WindowSpec& spec,
                                        std::int64_t watermark);

/// \brief Clamps a watermark so window-start arithmetic cannot overflow
/// (the end-of-stream watermark is kMaxTimestamp). The clamped value still
/// completes every window that can ever hold data.
std::int64_t ClampWatermark(const WindowSpec& spec, std::int64_t watermark);

}  // namespace spear
