#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "tuple/tuple.h"
#include "window/window_spec.h"

/// \file window_manager.h
/// Common interface of the two buffering designs from the paper's Sec. 2
/// (Figs. 3-4): the *single buffer* design (Storm — one arrival-ordered
/// buffer, scan + evict at watermark) and the *multiple buffers* design
/// (Flink — a tuple copy per participating window). SPEAr extends the
/// single-buffer design (core/spear_window_manager.h).
///
/// Managers are single-threaded: each runtime worker owns one.

namespace spear {

/// \brief A window staged for processing at watermark arrival.
struct CompleteWindow {
  WindowBounds bounds;
  /// The tuples of S_w (materialized, including any spilled portion).
  std::vector<Tuple> tuples;
};

/// \brief Interface shared by buffering designs.
class WindowManager {
 public:
  virtual ~WindowManager() = default;

  /// Tuple arrival. `coord` is the tuple's window coordinate: its event
  /// time (time-based) or its per-partition sequence number (count-based).
  virtual void OnTuple(std::int64_t coord, Tuple tuple) = 0;

  /// Watermark arrival: stages every not-yet-emitted window whose end is
  /// <= `watermark` and evicts expired tuples. Windows are returned in
  /// ascending start order.
  virtual Result<std::vector<CompleteWindow>> OnWatermark(
      std::int64_t watermark) = 0;

  /// Tuples currently buffered (memory + spill).
  virtual std::size_t BufferedTuples() const = 0;

  /// Approximate resident memory in bytes (Fig. 7 accounting).
  virtual std::size_t MemoryBytes() const = 0;

  /// Tuples dropped because they arrived behind the watermark.
  virtual std::uint64_t late_tuples() const = 0;
};

}  // namespace spear
