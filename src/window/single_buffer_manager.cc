#include "window/single_buffer_manager.h"

#include <algorithm>

#include "window/window_assigner.h"

namespace spear {

SingleBufferWindowManager::SingleBufferWindowManager(
    WindowSpec spec, std::size_t memory_capacity, SecondaryStorage* storage,
    std::string spill_key)
    : spec_(spec),
      memory_capacity_(memory_capacity),
      storage_(storage),
      spill_key_(std::move(spill_key)),
      next_window_start_(0),
      last_watermark_(kMinTimestamp) {
  SPEAR_CHECK(spec_.IsValid());
  SPEAR_CHECK(memory_capacity_ == 0 || storage_ != nullptr);
}

void SingleBufferWindowManager::OnTuple(std::int64_t coord, Tuple tuple) {
  if (coord < last_watermark_) {
    ++late_tuples_;
    return;
  }
  if (!saw_any_tuple_) {
    next_window_start_ = FirstWindowStartFor(spec_, coord);
    saw_any_tuple_ = true;
  } else {
    // Out-of-order tuples ahead of the watermark may open earlier windows;
    // coords behind emitted windows were filtered above (see header).
    next_window_start_ =
        std::min(next_window_start_, FirstWindowStartFor(spec_, coord));
  }
  if (memory_capacity_ != 0 && buffer_.size() >= memory_capacity_) {
    // Budget exhausted: spill the tuple payload to S. The 8-byte coordinate
    // stays in memory as metadata so the spilled run can be re-associated.
    // When the spill itself fails (storage transiently unavailable), keep
    // the tuple in memory past the budget rather than lose data.
    Tuple payload = std::move(tuple);
    payload.set_event_time(coord);
    const Status stored = storage_->Store(
        spill_key_ + "/" + std::to_string(spill_seq_), payload);
    if (!stored.ok()) {
      ++spill_failures_;
      buffer_.push_back(Entry{coord, std::move(payload)});
      return;
    }
    ++spilled_;
    return;
  }
  buffer_.push_back(Entry{coord, std::move(tuple)});
}

Status SingleBufferWindowManager::UnspillForProcessing() {
  if (spilled_ == 0) return Status::OK();
  SPEAR_ASSIGN_OR_RETURN(
      std::vector<Tuple> run,
      storage_->Get(spill_key_ + "/" + std::to_string(spill_seq_)));
  for (auto& t : run) {
    const std::int64_t coord = t.event_time();
    buffer_.push_back(Entry{coord, std::move(t)});
  }
  storage_->Erase(spill_key_ + "/" + std::to_string(spill_seq_));
  ++spill_seq_;
  spilled_ = 0;
  return Status::OK();
}

Result<std::vector<CompleteWindow>> SingleBufferWindowManager::OnWatermark(
    std::int64_t watermark) {
  std::vector<CompleteWindow> out;
  // Clamp (the end-of-stream watermark is kMaxTimestamp) so the window
  // arithmetic below cannot overflow.
  watermark = ClampWatermark(spec_, watermark);
  if (watermark <= last_watermark_) return out;
  last_watermark_ = watermark;
  if (!saw_any_tuple_) return out;
  // Nothing can complete: O(1) exit (count-based callers invoke this per
  // tuple, so the scan below must not run on every call).
  if (next_window_start_ + spec_.range > watermark) return out;

  SPEAR_RETURN_NOT_OK(UnspillForProcessing());

  // A complete window that holds no buffered tuple can never gain one
  // (future tuples are >= the watermark), so complete-but-empty stretches
  // are skipped wholesale instead of iterated slide by slide.
  const std::int64_t first_incomplete =
      FirstIncompleteWindowStart(spec_, watermark);
  auto skip_empty_stretch = [&] {
    std::int64_t min_relevant = kMaxTimestamp;
    for (const Entry& e : buffer_) {
      if (e.coord >= next_window_start_ && e.coord < min_relevant) {
        min_relevant = e.coord;
      }
    }
    const std::int64_t target =
        min_relevant == kMaxTimestamp
            ? first_incomplete
            : std::min(FirstWindowStartFor(spec_, min_relevant),
                       first_incomplete);
    next_window_start_ = std::max(next_window_start_, target);
  };

  skip_empty_stretch();
  // Stage every complete window, scanning the single buffer per window
  // (the design's documented cost).
  while (next_window_start_ + spec_.range <= watermark) {
    const WindowBounds bounds{next_window_start_,
                              next_window_start_ + spec_.range};
    CompleteWindow window;
    window.bounds = bounds;
    for (const Entry& e : buffer_) {
      if (bounds.Contains(e.coord)) window.tuples.push_back(e.tuple);
    }
    next_window_start_ += spec_.slide;
    if (window.tuples.empty()) {
      skip_empty_stretch();  // jump the gap instead of walking it
    } else {
      out.push_back(std::move(window));
    }
  }

  // Evict: anything below the next window's start can never be needed.
  const std::size_t before = buffer_.size();
  buffer_.erase(std::remove_if(buffer_.begin(), buffer_.end(),
                               [&](const Entry& e) {
                                 return e.coord < next_window_start_;
                               }),
                buffer_.end());
  evicted_tuples_ += before - buffer_.size();
  return out;
}

std::size_t SingleBufferWindowManager::MemoryBytes() const {
  std::size_t total = 0;
  for (const Entry& e : buffer_) total += e.tuple.ByteSize();
  return total;
}

}  // namespace spear
