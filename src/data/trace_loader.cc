#include "data/trace_loader.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace spear {

Status TraceSpec::Validate() const {
  if (columns.empty()) return Status::Invalid("trace spec has no columns");
  if (time_column >= columns.size()) {
    return Status::Invalid("time column out of range");
  }
  if (columns[time_column].second != TraceColumnType::kInt64) {
    return Status::Invalid("time column must be int64 (epoch millis)");
  }
  return Status::OK();
}

Schema TraceSpec::ToSchema() const {
  std::vector<std::string> names;
  names.reserve(columns.size());
  for (const auto& [name, type] : columns) names.push_back(name);
  return Schema(std::move(names));
}

namespace {

Result<Value> ParseCell(const std::string& cell, TraceColumnType type) {
  switch (type) {
    case TraceColumnType::kInt64: {
      std::int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(cell.data(), cell.data() + cell.size(), v);
      if (ec != std::errc() || ptr != cell.data() + cell.size()) {
        return Status::Invalid("bad int64 cell '" + cell + "'");
      }
      return Value(v);
    }
    case TraceColumnType::kDouble: {
      // std::from_chars<double> is missing on some libstdc++ configs;
      // strtod via stringstream keeps it portable.
      try {
        std::size_t pos = 0;
        const double v = std::stod(cell, &pos);
        if (pos != cell.size()) {
          return Status::Invalid("bad double cell '" + cell + "'");
        }
        return Value(v);
      } catch (const std::exception&) {
        return Status::Invalid("bad double cell '" + cell + "'");
      }
    }
    case TraceColumnType::kString:
      return Value(cell);
  }
  return Status::Internal("unknown column type");
}

}  // namespace

Result<Tuple> ParseTraceLine(const std::string& line, const TraceSpec& spec) {
  std::vector<Value> fields;
  fields.reserve(spec.columns.size());

  std::size_t start = 0;
  std::size_t column = 0;
  Timestamp event_time = 0;
  while (column < spec.columns.size()) {
    const std::size_t end = line.find(spec.delimiter, start);
    const std::string cell =
        end == std::string::npos ? line.substr(start)
                                 : line.substr(start, end - start);
    SPEAR_ASSIGN_OR_RETURN(Value v,
                           ParseCell(cell, spec.columns[column].second));
    if (column == spec.time_column) event_time = v.AsInt64();
    fields.push_back(std::move(v));
    ++column;
    if (end == std::string::npos) break;
    start = end + 1;
  }
  if (column != spec.columns.size()) {
    return Status::Invalid("row has " + std::to_string(column) +
                           " cells, expected " +
                           std::to_string(spec.columns.size()));
  }
  return Tuple(event_time, std::move(fields));
}

Result<std::vector<Tuple>> ParseTrace(const std::string& content,
                                      const TraceSpec& spec) {
  SPEAR_RETURN_NOT_OK(spec.Validate());
  std::vector<Tuple> out;
  std::istringstream in(content);
  std::string line;
  bool first = true;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (first && spec.has_header) {
      first = false;
      continue;
    }
    first = false;
    if (line.empty()) continue;
    Result<Tuple> tuple = ParseTraceLine(line, spec);
    if (!tuple.ok()) {
      if (spec.skip_bad_rows) continue;
      return Status::Invalid("line " + std::to_string(line_no) + ": " +
                             tuple.status().message());
    }
    out.push_back(std::move(*tuple));
  }
  return out;
}

Result<std::vector<Tuple>> LoadTrace(const std::string& path,
                                     const TraceSpec& spec) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open trace '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseTrace(buffer.str(), spec);
}

}  // namespace spear
