#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

/// \file datasets.h
/// Synthetic stand-ins for the paper's three real datasets (Table 1).
/// Real traces are not redistributable; each generator reproduces the
/// *statistical properties the paper's findings hinge on* (documented per
/// generator), with deterministic seeds. Rates are calibrated so the
/// default window definitions yield the paper's average window sizes:
///
///   DEBS  30 min / 15 min sliding  ->  ~10 K tuples per window
///   GCM   60 min / 30 min sliding  ->  ~320 K tuples per window
///   DEC   45 sec / 15 sec sliding  ->  ~47 K tuples per window

namespace spear {

/// \brief Table 1 row: the workload a dataset's CQ runs.
struct WorkloadSpec {
  std::string name;
  DurationMs window_range = 0;
  DurationMs window_slide = 0;
  std::uint64_t avg_window_size = 0;

  static WorkloadSpec Debs() {
    return {"DEBS", Minutes(30), Minutes(15), 10'000};
  }
  static WorkloadSpec Gcm() {
    return {"GCM", Minutes(60), Minutes(30), 320'000};
  }
  static WorkloadSpec Dec() {
    return {"DEC", Seconds(45), Seconds(15), 47'000};
  }
};

// ---------------------------------------------------------------------------
// DEBS 2015 taxi rides
// ---------------------------------------------------------------------------

/// \brief Synthetic DEBS'15 taxi stream: [time, route, fare].
///
/// Preserved property: *route sparsity*. Per 30-minute window (~10 K
/// tuples) roughly 5 K distinct routes appear, most once or twice — the
/// reason SPEAr's DEBS budget must be a large fraction (20 %) of the
/// window. Routes rotate across epochs to model churn.
class DebsGenerator {
 public:
  struct Config {
    std::uint64_t seed = 2015;
    /// Stream duration to synthesize.
    DurationMs duration = Hours(2);
    /// Mean tuples per second (default matches ~10 K per 30 min window).
    double tuples_per_second = 5.56;
    /// Active route pool per epoch (10 K draws from ~7 K routes yield
    /// ~5.3 K distinct).
    std::size_t active_routes = 7000;
    /// Route pool rotation period.
    DurationMs route_epoch = Minutes(30);
  };

  static Schema schema() { return Schema({"time", "route", "fare"}); }
  static constexpr std::size_t kTimeField = 0;
  static constexpr std::size_t kRouteField = 1;
  static constexpr std::size_t kFareField = 2;

  /// Materializes the stream (ordered by time).
  static std::vector<Tuple> Generate(const Config& config);
};

// ---------------------------------------------------------------------------
// Google Cluster Monitoring task events
// ---------------------------------------------------------------------------

/// \brief Synthetic GCM task-event stream: [time, scheduling_class, cpu_time].
///
/// Preserved properties:
///  * *few dense groups with a known count* — a handful of scheduling
///    classes, Zipf-skewed, each appearing many times per window, which
///    lets SPEAr sample at tuple arrival (Sec. 4.1);
///  * *bursty non-stationarity* — short CPU-usage bursts (stragglers /
///    preempted tasks) inflate within-window variance. A burst is a large
///    fraction of a short window but is diluted in a long one, which is
///    what makes small-window configurations fail SPEAr's accuracy test
///    more often (the Fig. 10 sensitivity gradient).
class GcmGenerator {
 public:
  struct Config {
    std::uint64_t seed = 2011;
    DurationMs duration = Hours(4);
    /// ~320 K per 60 min window.
    double tuples_per_second = 88.9;
    std::size_t num_classes = 8;
    /// Zipf exponent of the class mix.
    double skew = 0.9;
    /// Lognormal sigma of per-class CPU time (cv ~ 0.66).
    double value_sigma = 0.6;
    /// One burst of `burst_duration` every `burst_period` (0 disables).
    DurationMs burst_period = Hours(1);
    DurationMs burst_duration = Minutes(3);
    /// During a burst each value is multiplied by `burst_high` with
    /// probability `burst_high_prob`, else by `burst_low`; defaults keep
    /// the burst mean-neutral (E[U] ~ 1) while E[U^2] ~ 6.
    double burst_high = 6.5;
    double burst_low = 0.1;
    double burst_high_prob = 0.1406;
  };

  static Schema schema() {
    return Schema({"time", "scheduling_class", "cpu_time"});
  }
  static constexpr std::size_t kTimeField = 0;
  static constexpr std::size_t kClassField = 1;
  static constexpr std::size_t kCpuField = 2;

  static std::vector<Tuple> Generate(const Config& config);
};

// ---------------------------------------------------------------------------
// DEC network monitoring
// ---------------------------------------------------------------------------

/// \brief Synthetic DEC packet trace: [time, packet_size].
///
/// Preserved property: a *skewed bimodal* TCP packet-size distribution
/// (ACK-sized vs MTU-sized modes plus a mid-range tail), so mean/median
/// estimation from small samples is non-trivial and the Fig. 11 budget
/// sweep produces the paper's accept/reject behaviour.
class DecGenerator {
 public:
  struct Config {
    std::uint64_t seed = 1995;
    DurationMs duration = Minutes(20);
    /// ~47 K per 45 s window.
    double tuples_per_second = 1044.0;
    /// Mixture weights: small packets, full-MTU packets (remainder is the
    /// mid-range component).
    double small_fraction = 0.40;
    double mtu_fraction = 0.40;
  };

  static Schema schema() { return Schema({"time", "packet_size"}); }
  static constexpr std::size_t kTimeField = 0;
  static constexpr std::size_t kSizeField = 1;

  static std::vector<Tuple> Generate(const Config& config);
};

}  // namespace spear
