#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "tuple/schema.h"
#include "tuple/tuple.h"

/// \file trace_loader.h
/// CSV trace ingestion, so the synthetic generators can be swapped for the
/// paper's real traces (DEBS'15 taxi, Google cluster-monitoring, DEC) when
/// a user has them. Column types are declared up front; the event time is
/// taken from a designated int64 column (epoch milliseconds).

namespace spear {

/// Column type of a CSV trace.
enum class TraceColumnType { kInt64, kDouble, kString };

/// \brief Declarative description of a CSV trace file.
struct TraceSpec {
  /// One entry per CSV column, in order.
  std::vector<std::pair<std::string, TraceColumnType>> columns;
  /// Index of the column providing the event time (must be kInt64).
  std::size_t time_column = 0;
  /// Field delimiter.
  char delimiter = ',';
  /// Skip the first line (header).
  bool has_header = true;
  /// Silently drop rows that fail to parse instead of failing the load.
  bool skip_bad_rows = false;

  Status Validate() const;

  /// Schema of the produced tuples (column names, in order).
  Schema ToSchema() const;
};

/// \brief Parses one CSV line into a tuple. Exposed for tests and for
/// streaming loaders.
Result<Tuple> ParseTraceLine(const std::string& line, const TraceSpec& spec);

/// \brief Loads a whole CSV file. Rows keep file order; event times come
/// from the designated column.
Result<std::vector<Tuple>> LoadTrace(const std::string& path,
                                     const TraceSpec& spec);

/// \brief Parses CSV content from a string (same semantics as LoadTrace).
Result<std::vector<Tuple>> ParseTrace(const std::string& content,
                                      const TraceSpec& spec);

}  // namespace spear
