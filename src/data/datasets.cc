#include "data/datasets.h"

#include <algorithm>
#include <cmath>

namespace spear {

namespace {

/// Poisson-process arrival times: exponential inter-arrival with the given
/// mean rate. Returns event times in milliseconds, strictly increasing.
std::vector<Timestamp> ArrivalTimes(Rng* rng, DurationMs duration,
                                    double tuples_per_second) {
  std::vector<Timestamp> out;
  out.reserve(static_cast<std::size_t>(
      static_cast<double>(duration) / 1000.0 * tuples_per_second * 1.1));
  const double mean_gap_ms = 1000.0 / tuples_per_second;
  double t = 0.0;
  while (true) {
    t += -mean_gap_ms * std::log(1.0 - rng->NextDouble());
    if (t >= static_cast<double>(duration)) break;
    const auto ms = static_cast<Timestamp>(t);
    // Strictly speaking ties are fine; keep them (multiple events per ms).
    out.push_back(ms);
  }
  return out;
}

/// Zipf sampler over {0, .., n-1} with exponent s (inverse-CDF over
/// precomputed cumulative weights).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t Sample(Rng* rng) const {
    const double u = rng->NextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace

std::vector<Tuple> DebsGenerator::Generate(const Config& config) {
  Rng rng(config.seed);
  const std::vector<Timestamp> times =
      ArrivalTimes(&rng, config.duration, config.tuples_per_second);

  std::vector<Tuple> out;
  out.reserve(times.size());
  for (const Timestamp t : times) {
    // Route pool rotates per epoch: route ids are epoch-prefixed so
    // consecutive windows see overlapping-but-changing route sets.
    const std::int64_t epoch = t / config.route_epoch;
    const std::uint64_t route_index = rng.NextBounded(config.active_routes);
    // Two adjacent epochs share half their pool (sliding windows straddle
    // epoch boundaries smoothly).
    const std::int64_t pool_shift = epoch * static_cast<std::int64_t>(
        config.active_routes / 2);
    const std::int64_t route_id =
        pool_shift + static_cast<std::int64_t>(route_index);
    std::string route = "r" + std::to_string(route_id);

    // Fares are route-determined (a route fixes the trip distance), with
    // small per-ride variation (traffic, tip): the between-route spread is
    // lognormal around ~$10 while within-route variation stays ~5%. This
    // within-group tightness is what lets SPEAr meet a 10% spec on routes
    // sampled with one or two rides (Sec. 5.2's DEBS discussion).
    SplitMix64 route_hash(static_cast<std::uint64_t>(route_id) * 0x9E37u);
    const double route_z =
        2.0 * (static_cast<double>(route_hash.Next() >> 11) * 0x1.0p-53) -
        1.0;
    const double base_fare = std::exp(2.1 + 0.55 * 1.7 * route_z);
    const double fare = base_fare * (1.0 + 0.05 * rng.NextGaussian());

    out.emplace_back(
        t, std::vector<Value>{Value(static_cast<std::int64_t>(t)),
                              Value(std::move(route)), Value(fare)});
  }
  return out;
}

std::vector<Tuple> GcmGenerator::Generate(const Config& config) {
  Rng rng(config.seed);
  const std::vector<Timestamp> times =
      ArrivalTimes(&rng, config.duration, config.tuples_per_second);
  const ZipfSampler class_mix(config.num_classes, config.skew);

  // Per-class CPU-time scale: classes differ systematically (higher
  // scheduling classes run longer tasks), with lognormal spread.
  std::vector<double> class_scale(config.num_classes);
  for (std::size_t c = 0; c < config.num_classes; ++c) {
    class_scale[c] = 20.0 * static_cast<double>(c + 1);
  }

  std::vector<Tuple> out;
  out.reserve(times.size());
  for (const Timestamp t : times) {
    const std::size_t cls = class_mix.Sample(&rng);
    double cpu =
        class_scale[cls] * std::exp(config.value_sigma * rng.NextGaussian());
    // Mean-neutral variance bursts on a fixed schedule (see header).
    if (config.burst_period > 0 &&
        t % config.burst_period < config.burst_duration) {
      cpu *= rng.NextDouble() < config.burst_high_prob ? config.burst_high
                                                       : config.burst_low;
    }
    out.emplace_back(
        t, std::vector<Value>{Value(static_cast<std::int64_t>(t)),
                              Value(static_cast<std::int64_t>(cls)),
                              Value(cpu)});
  }
  return out;
}

std::vector<Tuple> DecGenerator::Generate(const Config& config) {
  Rng rng(config.seed);
  const std::vector<Timestamp> times =
      ArrivalTimes(&rng, config.duration, config.tuples_per_second);

  std::vector<Tuple> out;
  out.reserve(times.size());
  for (const Timestamp t : times) {
    const double u = rng.NextDouble();
    double size;
    if (u < config.small_fraction) {
      // ACK/control packets: tight around 64 bytes.
      size = 40.0 + rng.NextBounded(60);
    } else if (u < config.small_fraction + config.mtu_fraction) {
      // Full-MTU data packets.
      size = 1400.0 + rng.NextBounded(120);
    } else {
      // Mid-range tail.
      size = 100.0 + rng.NextBounded(1300);
    }
    out.emplace_back(
        t, std::vector<Value>{Value(static_cast<std::int64_t>(t)),
                              Value(size)});
  }
  return out;
}

}  // namespace spear
