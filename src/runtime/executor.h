#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/blocking_queue.h"
#include "common/result.h"
#include "obs/observability.h"
#include "runtime/metrics.h"
#include "runtime/topology.h"

/// \file executor.h
/// Multi-threaded topology execution: one source thread drains the spout,
/// one worker thread per (stage, task) runs a bolt instance. Inter-stage
/// channels are bounded blocking queues (back-pressure), watermarks are
/// broadcast and aligned per worker as the minimum across input channels,
/// and end-of-stream is a flush marker that propagates once every input
/// channel has flushed. Tuples on one channel stay in order (the paper's
/// experiments enable Storm's in-order delivery).
///
/// Channels are micro-batched (Topology::batch_max_tuples): emitters buffer
/// tuples per target and move them as one batch per lock acquisition, and
/// workers drain popped batches locally. Control elements force a flush, so
/// ordering, watermark, and back-pressure semantics match batch size 1.
///
/// Workers are *supervised* (see common/retry_policy.h for the failure
/// taxonomy): bolt exceptions become Statuses, transient Execute failures
/// are retried under the stage's RetryPolicy, data errors quarantine the
/// offending tuple to the run's dead-letter channel, and only fatal or
/// retry-exhausted errors cancel the run.
///
/// With Topology::checkpoint enabled, workers are additionally
/// *recoverable*: checkpointable bolts snapshot their O(b) state at
/// watermark boundaries, every consumed tuple since the last snapshot is
/// kept in a bounded replay log, and a crashed worker (kWorkerCrash
/// injection, an escaped exception, or a retry-exhausted failure) is
/// rebuilt in place — fresh bolt, state restored from the latest valid
/// snapshot, log replayed, window results deduplicated by
/// (window, group) key so downstream sees each result at most once.
/// Tuples that fell off the bounded log are charged to the recovered
/// windows' error estimates (Checkpointable::NoteRecoveryLoss).

namespace spear {

/// \brief A tuple that failed non-transiently and was removed from the
/// stream instead of cancelling the run.
struct DeadLetter {
  std::string stage;
  int task = 0;
  /// Execute attempts spent on the tuple (1 = failed on first delivery).
  int attempts = 1;
  Status error;
  Tuple tuple;
};

/// \brief Everything a finished run reports back.
struct RunReport {
  /// Tuples emitted by the final stage, in collection order.
  std::vector<Tuple> output;
  /// Per-worker telemetry.
  MetricsRegistry metrics;
  /// Quarantined tuples, merged across workers in stage/task order.
  /// Capped at Topology::max_dead_letters entries; the overflow is
  /// counted in dead_letters_dropped.
  std::vector<DeadLetter> dead_letters;
  /// Aggregated fault counters (injection, retries, degradation).
  FaultStats faults;
  /// Errors recorded after the first one on a failed run (deduplicated);
  /// empty on success. The returned Status carries the first error.
  /// Capped at Topology::max_dead_letters entries.
  std::vector<Status> suppressed_errors;
  /// Worker crash/restore cycles completed (== faults.worker_restarts).
  std::uint64_t recoveries = 0;
  /// Quarantined tuples not retained in dead_letters because the cap was
  /// reached (they still count in faults.quarantined).
  std::uint64_t dead_letters_dropped = 0;
  /// Aggregated overload-control counters (shedding, deadline aborts,
  /// watchdog interventions, back-pressure stall time).
  OverloadStats overload;
  /// Final observability scrape: exported metric samples and per-window
  /// trace spans. Empty (enabled flags false) unless the topology was
  /// built with `.Metrics()` / `.Trace()`.
  obs::ObservabilityReport observability;
};

/// \brief Runs one topology to completion. Single-use.
class Executor {
 public:
  explicit Executor(Topology topology) : topology_(std::move(topology)) {}

  /// Blocking: returns after the stream is exhausted and every worker has
  /// flushed, or after the first worker error (which cancels the run).
  Result<RunReport> Run();

  // Implementation details, public only for internal linkage reasons.
  struct Element;
  class StageEmitter;

 private:
  Topology topology_;
};

}  // namespace spear
