#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/blocking_queue.h"
#include "common/result.h"
#include "runtime/metrics.h"
#include "runtime/topology.h"

/// \file executor.h
/// Multi-threaded topology execution: one source thread drains the spout,
/// one worker thread per (stage, task) runs a bolt instance. Inter-stage
/// channels are bounded blocking queues (back-pressure), watermarks are
/// broadcast and aligned per worker as the minimum across input channels,
/// and end-of-stream is a flush marker that propagates once every input
/// channel has flushed. Tuples on one channel stay in order (the paper's
/// experiments enable Storm's in-order delivery).
///
/// Channels are micro-batched (Topology::batch_max_tuples): emitters buffer
/// tuples per target and move them as one batch per lock acquisition, and
/// workers drain popped batches locally. Control elements force a flush, so
/// ordering, watermark, and back-pressure semantics match batch size 1.

namespace spear {

/// \brief Everything a finished run reports back.
struct RunReport {
  /// Tuples emitted by the final stage, in collection order.
  std::vector<Tuple> output;
  /// Per-worker telemetry.
  MetricsRegistry metrics;
};

/// \brief Runs one topology to completion. Single-use.
class Executor {
 public:
  explicit Executor(Topology topology) : topology_(std::move(topology)) {}

  /// Blocking: returns after the stream is exhausted and every worker has
  /// flushed, or after the first worker error (which cancels the run).
  Result<RunReport> Run();

  // Implementation details, public only for internal linkage reasons.
  struct Element;
  class StageEmitter;

 private:
  Topology topology_;
};

}  // namespace spear
