#pragma once

#include <functional>
#include <optional>
#include <utility>

#include "runtime/operator.h"

/// \file common_bolts.h
/// Stateless building blocks: map, filter, and a catch-all lambda bolt —
/// the `time(x -> x.time)`-style stages of the paper's example CQs.

namespace spear {

/// \brief Applies a transformation to every tuple (1 -> 1).
class MapBolt : public Bolt {
 public:
  using MapFn = std::function<Tuple(const Tuple&)>;

  explicit MapBolt(MapFn fn) : fn_(std::move(fn)) {}

  Status Execute(const Tuple& tuple, Emitter* out) override {
    out->Emit(fn_(tuple));
    return Status::OK();
  }

 private:
  MapFn fn_;
};

/// \brief Drops tuples failing a predicate (1 -> 0/1).
class FilterBolt : public Bolt {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  explicit FilterBolt(Predicate predicate)
      : predicate_(std::move(predicate)) {}

  Status Execute(const Tuple& tuple, Emitter* out) override {
    if (predicate_(tuple)) out->Emit(tuple);
    return Status::OK();
  }

 private:
  Predicate predicate_;
};

/// \brief Annotates each tuple's event time from one of its fields — the
/// `time(x -> x.time)` operation of Fig. 1.
class TimeAssignBolt : public Bolt {
 public:
  /// \param time_field index of the int64 field holding the timestamp.
  explicit TimeAssignBolt(std::size_t time_field) : time_field_(time_field) {}

  Status Execute(const Tuple& tuple, Emitter* out) override {
    Tuple annotated = tuple;
    annotated.set_event_time(annotated.field(time_field_).AsInt64());
    out->Emit(std::move(annotated));
    return Status::OK();
  }

 private:
  const std::size_t time_field_;
};

}  // namespace spear
