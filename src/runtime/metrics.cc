#include "runtime/metrics.h"

#include <algorithm>

namespace spear {

namespace {

std::int64_t PercentileOfSorted(const std::vector<std::int64_t>& sorted,
                                double p) {
  if (sorted.empty()) return 0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  return sorted[static_cast<std::size_t>(pos + 0.5)];
}

}  // namespace

MetricSummary MetricSummary::FromSamples(std::vector<std::int64_t> samples) {
  MetricSummary out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  out.count = samples.size();
  double sum = 0.0;
  for (std::int64_t s : samples) sum += static_cast<double>(s);
  out.mean = sum / static_cast<double>(samples.size());
  out.min = samples.front();
  out.max = samples.back();
  out.p50 = PercentileOfSorted(samples, 0.50);
  out.p95 = PercentileOfSorted(samples, 0.95);
  out.p99 = PercentileOfSorted(samples, 0.99);
  return out;
}

MetricSummary MetricsRegistry::StageWindowSummary(
    const std::string& stage) const {
  std::vector<std::int64_t> pooled;
  for (const auto& w : workers_) {
    if (w->stage() != stage) continue;
    pooled.insert(pooled.end(), w->window_ns().begin(), w->window_ns().end());
  }
  return MetricSummary::FromSamples(std::move(pooled));
}

double MetricsRegistry::StageMeanMemoryPerWorker(
    const std::string& stage) const {
  double sum = 0.0;
  int workers = 0;
  for (const auto& w : workers_) {
    if (w->stage() != stage) continue;
    const MetricSummary s = w->MemorySummary();
    if (s.count == 0) continue;
    sum += s.mean;
    ++workers;
  }
  return workers == 0 ? 0.0 : sum / workers;
}

}  // namespace spear
