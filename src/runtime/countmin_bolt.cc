#include "runtime/countmin_bolt.h"

#include "common/time.h"

namespace spear {

CountMinWindowedBolt::CountMinWindowedBolt(WindowSpec window,
                                           ValueExtractor value_extractor,
                                           KeyExtractor key_extractor,
                                           double epsilon, double confidence)
    : window_(window),
      value_extractor_(std::move(value_extractor)),
      key_extractor_(std::move(key_extractor)),
      epsilon_(epsilon),
      delta_(1.0 - confidence) {
  SPEAR_CHECK(window_.IsValid());
  SPEAR_CHECK(static_cast<bool>(key_extractor_));
}

Status CountMinWindowedBolt::Prepare(const BoltContext& ctx) {
  metrics_ = ctx.metrics;
  manager_ = std::make_unique<SingleBufferWindowManager>(window_);
  return Status::OK();
}

Status CountMinWindowedBolt::Execute(const Tuple& tuple, Emitter* out) {
  std::int64_t coord;
  if (window_.type == WindowType::kCountBased) {
    coord = sequence_++;
  } else {
    coord = tuple.event_time();
  }
  manager_->OnTuple(coord, tuple);
  if (window_.type == WindowType::kCountBased) {
    return ProcessWatermark(sequence_, out);
  }
  return Status::OK();
}

Status CountMinWindowedBolt::OnWatermark(Timestamp watermark, Emitter* out) {
  if (window_.type == WindowType::kCountBased) return Status::OK();
  return ProcessWatermark(watermark, out);
}

Status CountMinWindowedBolt::ProcessWatermark(std::int64_t watermark,
                                              Emitter* out) {
  std::int64_t staging_ns = 0;
  Result<std::vector<CompleteWindow>> staged = [&] {
    ScopedTimerNs timer(&staging_ns);
    return manager_->OnWatermark(watermark);
  }();
  if (!staged.ok()) return staged.status();
  if (staged->empty()) return Status::OK();

  const std::int64_t staging_share =
      staging_ns / static_cast<std::int64_t>(staged->size());
  for (const CompleteWindow& window : *staged) {
    std::int64_t process_ns = 0;
    WindowResult result;
    {
      ScopedTimerNs timer(&process_ns);
      SPEAR_ASSIGN_OR_RETURN(
          CountMinGroupedAggregator agg,
          CountMinGroupedAggregator::Make(epsilon_, delta_));
      // One pass through the window: every tuple pays 2*depth hashes.
      for (const Tuple& t : window.tuples) {
        agg.Update(key_extractor_(t), value_extractor_(t));
      }
      result.bounds = window.bounds;
      result.window_size = window.tuples.size();
      result.tuples_processed = window.tuples.size();
      result.is_grouped = true;
      result.approximate = true;
      result.estimated_error = epsilon_;
      for (const std::string& key : agg.Keys()) {
        result.groups.emplace_back(key, agg.EstimateMean(key));
      }
      if (metrics_ != nullptr) {
        metrics_->RecordMemoryBytes(agg.MemoryBytes());
      }
    }
    result.processing_ns = process_ns + staging_share;
    if (metrics_ != nullptr) metrics_->RecordWindowNs(result.processing_ns);
    for (Tuple& t : WindowResultToTuples(result)) out->Emit(std::move(t));
  }
  return Status::OK();
}

}  // namespace spear
