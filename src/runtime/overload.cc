#include "runtime/overload.h"

#include <algorithm>
#include <utility>

namespace spear {

namespace {
/// Shed probabilities below this decay straight to zero — keeps the
/// admission path from drawing random numbers forever after recovery.
constexpr double kShedFloor = 1e-3;
}  // namespace

Status ShedPolicy::Validate() const {
  if (queue_high_watermark < 0.0 || queue_high_watermark > 1.0) {
    return Status::Invalid("shed queue_high_watermark must be in [0, 1]");
  }
  if (shed_step <= 0.0 || shed_step > 1.0) {
    return Status::Invalid("shed_step must be in (0, 1]");
  }
  if (shed_decay < 0.0 || shed_decay >= 1.0) {
    return Status::Invalid("shed_decay must be in [0, 1)");
  }
  if (max_shed_probability <= 0.0 || max_shed_probability >= 1.0) {
    return Status::Invalid("max_shed_probability must be in (0, 1)");
  }
  if (watermark_lag_slo < 0) {
    return Status::Invalid("watermark_lag_slo must be >= 0");
  }
  return Status::OK();
}

Status OverloadConfig::Validate() const {
  if (latency_slo < 0) {
    return Status::Invalid("latency SLO must be >= 0 (0 = disabled)");
  }
  if (watchdog_idle < 0) {
    return Status::Invalid("watchdog idle timeout must be >= 0 (0 = off)");
  }
  if (ShedEnabled()) return shed.Validate();
  return Status::OK();
}

OverloadDetector::OverloadDetector(std::string stage, OverloadConfig config)
    : stage_(std::move(stage)),
      config_(std::move(config)),
      lag_slo_(config_.shed.watermark_lag_slo > 0
                   ? config_.shed.watermark_lag_slo
                   : 4 * config_.latency_slo) {}

void OverloadDetector::ObserveQueue(std::size_t size, std::size_t capacity) {
  if (capacity == 0) return;
  const double occupancy =
      static_cast<double>(size) / static_cast<double>(capacity);
  RecordSignal(occupancy >= config_.shed.queue_high_watermark);
}

void OverloadDetector::ObserveWindowLatency(std::int64_t ns) {
  RecordSignal(ns > config_.latency_slo * 1'000'000);
}

void OverloadDetector::ObserveWatermarkLag(DurationMs lag) {
  if (lag_slo_ <= 0) return;
  RecordSignal(lag >= lag_slo_);
}

void OverloadDetector::RecordSignal(bool overloaded) {
  tripped_.store(overloaded, std::memory_order_relaxed);
  if (overloaded) trips_.fetch_add(1, std::memory_order_relaxed);
  double current = shed_probability_.load(std::memory_order_relaxed);
  for (;;) {
    double next;
    if (overloaded) {
      next = std::min(config_.shed.max_shed_probability,
                      current + config_.shed.shed_step);
    } else {
      next = current * config_.shed.shed_decay;
      if (next < kShedFloor) next = 0.0;
    }
    if (next == current) return;
    if (shed_probability_.compare_exchange_weak(current, next,
                                                std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace spear
