#include "runtime/window_join_bolt.h"

#include <algorithm>
#include <unordered_map>

#include "common/time.h"

namespace spear {

WindowJoinBolt::WindowJoinBolt(WindowJoinConfig config)
    : config_(std::move(config)) {
  SPEAR_CHECK(config_.window.IsValid());
  SPEAR_CHECK(static_cast<bool>(config_.left_key));
  SPEAR_CHECK(static_cast<bool>(config_.right_key));
}

Status WindowJoinBolt::Prepare(const BoltContext& ctx) {
  metrics_ = ctx.metrics;
  manager_ = std::make_unique<SingleBufferWindowManager>(config_.window);
  return Status::OK();
}

Status WindowJoinBolt::Execute(const Tuple& tuple, Emitter* out) {
  std::int64_t coord;
  if (config_.window.type == WindowType::kCountBased) {
    coord = sequence_++;
  } else {
    coord = tuple.event_time();
  }
  manager_->OnTuple(coord, tuple);
  if (config_.window.type == WindowType::kCountBased) {
    return ProcessWatermark(sequence_, out);
  }
  return Status::OK();
}

Status WindowJoinBolt::OnWatermark(Timestamp watermark, Emitter* out) {
  if (config_.window.type == WindowType::kCountBased) return Status::OK();
  return ProcessWatermark(watermark, out);
}

Status WindowJoinBolt::ProcessWatermark(std::int64_t watermark,
                                        Emitter* out) {
  SPEAR_ASSIGN_OR_RETURN(std::vector<CompleteWindow> staged,
                         manager_->OnWatermark(watermark));
  for (const CompleteWindow& window : staged) {
    std::int64_t join_ns = 0;
    std::uint64_t emitted = 0;
    {
      ScopedTimerNs timer(&join_ns);
      // Build on the left side, probe with the right.
      std::unordered_map<std::string, std::vector<const Tuple*>> build;
      for (const Tuple& t : window.tuples) {
        if (t.field(config_.tag_field).AsInt64() == 0) {
          build[config_.left_key(t)].push_back(&t);
        }
      }
      for (const Tuple& t : window.tuples) {
        if (t.field(config_.tag_field).AsInt64() != 0) {
          const std::string key = config_.right_key(t);
          const auto it = build.find(key);
          if (it == build.end()) continue;
          for (const Tuple* left : it->second) {
            std::vector<Value> fields;
            fields.reserve(2 + left->num_fields() + t.num_fields());
            fields.emplace_back(window.bounds.start);
            fields.emplace_back(window.bounds.end);
            fields.emplace_back(key);
            for (std::size_t i = 0; i < left->num_fields(); ++i) {
              if (i == config_.tag_field) continue;
              fields.push_back(left->field(i));
            }
            for (std::size_t i = 0; i < t.num_fields(); ++i) {
              if (i == config_.tag_field) continue;
              fields.push_back(t.field(i));
            }
            out->Emit(Tuple(window.bounds.end, std::move(fields)));
            ++emitted;
          }
        }
      }
    }
    if (metrics_ != nullptr) {
      metrics_->RecordWindowNs(join_ns);
      metrics_->AddTuplesOut(emitted);
    }
  }
  return Status::OK();
}

std::vector<Tuple> MergeStreams(const std::vector<Tuple>& left,
                                const std::vector<Tuple>& right) {
  auto tag = [](const Tuple& t, std::int64_t side) {
    std::vector<Value> fields;
    fields.reserve(t.num_fields() + 1);
    fields.emplace_back(side);
    for (std::size_t i = 0; i < t.num_fields(); ++i) {
      fields.push_back(t.field(i));
    }
    return Tuple(t.event_time(), std::move(fields));
  };
  std::vector<Tuple> merged;
  merged.reserve(left.size() + right.size());
  std::size_t l = 0, r = 0;
  while (l < left.size() || r < right.size()) {
    const bool take_left =
        r >= right.size() ||
        (l < left.size() && left[l].event_time() <= right[r].event_time());
    if (take_left) {
      merged.push_back(tag(left[l++], 0));
    } else {
      merged.push_back(tag(right[r++], 1));
    }
  }
  return merged;
}

}  // namespace spear
