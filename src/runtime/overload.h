#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "common/time.h"

/// \file overload.h
/// Overload control for sustained over-capacity ingest. SPEAr's promise is
/// graceful degradation — emit an approximate answer with a known error
/// bound instead of paying the full cost — and this subsystem extends that
/// trade to load: when a stateful stage cannot keep up with its latency
/// SLO, tuples are shed at admission *with accounting*, so the shed ratio
/// widens the reported ε̂_w (exactly like recovery loss) instead of
/// silently corrupting results. The design follows StreamApprox's
/// sampling-under-load and AF-Stream's bounded-error degradation.
///
/// Three signals feed one detector per stateful stage:
///   - queue occupancy of the stage's input channels (the executor
///     observes it per popped batch),
///   - watermark lag between the source and the stage's aligned watermark,
///   - per-window processing time against the latency SLO.
/// Any tripped signal ratchets the shed probability up additively; every
/// healthy observation decays it multiplicatively, so shedding is
/// self-clearing once the backlog drains. With no SLO configured the
/// detector is never built and the admission path costs one null check.

namespace spear {

/// \brief How aggressively to shed once the detector trips.
struct ShedPolicy {
  /// Input-queue occupancy fraction at or above which the queue signal
  /// trips. 0 trips on every observation (useful for deterministic tests).
  double queue_high_watermark = 0.75;
  /// Additive shed-probability increase per tripped observation.
  double shed_step = 0.15;
  /// Multiplicative shed-probability decay per healthy observation.
  double shed_decay = 0.5;
  /// Upper bound on the shed probability. Shedding more than this keeps a
  /// sliver of every window flowing so ε̂_w stays estimable.
  double max_shed_probability = 0.95;
  /// Watermark lag at or above which the lag signal trips.
  /// 0 derives the bound as 4 × the latency SLO.
  DurationMs watermark_lag_slo = 0;

  Status Validate() const;
};

/// \brief Per-topology overload-control configuration. Defaults disable
/// every mechanism: detectors and the watchdog are only built when their
/// knobs are set, keeping the unconfigured hot path unchanged.
struct OverloadConfig {
  /// Per-window processing-time SLO. 0 disables detection + shedding.
  DurationMs latency_slo = 0;
  /// Shed aggressiveness (used only when latency_slo > 0).
  ShedPolicy shed;
  /// Idle-source timeout for the watermark watchdog. 0 disables it.
  DurationMs watchdog_idle = 0;

  bool ShedEnabled() const { return latency_slo > 0; }
  bool WatchdogEnabled() const { return watchdog_idle > 0; }

  Status Validate() const;
};

/// \brief Per-stage overload detector. Thread-safe: the executor's workers
/// report queue occupancy and watermark lag, the stage's bolts report
/// window latency, and every admission path reads shed_probability() — all
/// lock-free.
class OverloadDetector {
 public:
  OverloadDetector(std::string stage, OverloadConfig config);

  /// Reports the stage's input-queue occupancy after a pop.
  void ObserveQueue(std::size_t size, std::size_t capacity);
  /// Reports one window's processing time.
  void ObserveWindowLatency(std::int64_t ns);
  /// Reports the stage's watermark lag behind the source.
  void ObserveWatermarkLag(DurationMs lag);

  /// Probability with which the stage should shed an arriving tuple.
  double shed_probability() const {
    return shed_probability_.load(std::memory_order_relaxed);
  }
  /// True while the most recent observation was overloaded.
  bool tripped() const { return tripped_.load(std::memory_order_relaxed); }
  /// Total overloaded observations.
  std::uint64_t trips() const {
    return trips_.load(std::memory_order_relaxed);
  }

  const std::string& stage() const { return stage_; }
  const OverloadConfig& config() const { return config_; }

 private:
  /// Folds one overloaded/healthy observation into the shed probability.
  void RecordSignal(bool overloaded);

  const std::string stage_;
  const OverloadConfig config_;
  const DurationMs lag_slo_;
  std::atomic<double> shed_probability_{0.0};
  std::atomic<bool> tripped_{false};
  std::atomic<std::uint64_t> trips_{0};
};

}  // namespace spear
