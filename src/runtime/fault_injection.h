#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/fault.h"
#include "common/time.h"
#include "runtime/operator.h"

/// \file fault_injection.h
/// Chaos-testing wrappers wiring a FaultInjector into a topology's
/// operators:
///
///  * FaultInjectingBolt — fails Execute/OnWatermark (Status::Unavailable
///    or a thrown exception, per rule) *before* delegating to the wrapped
///    bolt, so a retried call is indistinguishable from a first delivery
///    and retries stay idempotent.
///  * FaultInjectingSpout — perturbs the emitted stream: replaces a tuple
///    with a malformed one (the original follows right after, so no data
///    is lost), re-emits a duplicate, or re-emits a stale copy behind the
///    watermark (late tuple).
///
/// Storage faults are injected inside SecondaryStorage itself (see
/// storage/secondary_storage.h).

namespace spear {

/// \brief Decorates a bolt with injection sites kBoltProcess /
/// kBoltWatermark.
class FaultInjectingBolt : public Bolt {
 public:
  FaultInjectingBolt(std::unique_ptr<Bolt> inner, FaultInjector* injector)
      : inner_(std::move(inner)), injector_(injector) {}

  Status Prepare(const BoltContext& ctx) override {
    return inner_->Prepare(ctx);
  }

  Status Execute(const Tuple& tuple, Emitter* out) override {
    if (injector_ != nullptr && injector_->armed(FaultSite::kBoltProcess)) {
      const FaultInjector::Decision d =
          injector_->Tick(FaultSite::kBoltProcess);
      if (d.fire) {
        if (d.throw_exception) {
          throw std::runtime_error("injected fault: bolt execute");
        }
        return Status::Unavailable("injected fault: bolt execute");
      }
    }
    return inner_->Execute(tuple, out);
  }

  Status OnWatermark(Timestamp watermark, Emitter* out) override {
    if (injector_ != nullptr && injector_->armed(FaultSite::kBoltWatermark)) {
      const FaultInjector::Decision d =
          injector_->Tick(FaultSite::kBoltWatermark);
      if (d.fire) {
        if (d.throw_exception) {
          throw std::runtime_error("injected fault: bolt watermark");
        }
        return Status::Unavailable("injected fault: bolt watermark");
      }
    }
    return inner_->OnWatermark(watermark, out);
  }

  Status Finish(Emitter* out) override { return inner_->Finish(out); }

  Status OnDeliveryAnomaly(Emitter* out) override {
    return inner_->OnDeliveryAnomaly(out);
  }

  /// Recovery snapshots/restores the wrapped bolt's state; injection
  /// keeps applying at this wrapper's Execute/OnWatermark.
  Checkpointable* checkpointable() override {
    return inner_->checkpointable();
  }

 private:
  std::unique_ptr<Bolt> inner_;
  FaultInjector* injector_;
};

/// \brief Decorates a spout with injection sites kSpoutMalformed /
/// kSpoutDuplicate / kSpoutLate.
class FaultInjectingSpout : public Spout {
 public:
  /// Turns a healthy tuple into a poison one. The default replaces every
  /// field with the single string "__poison__" (numeric extractors cannot
  /// read it), keeping the original event time.
  using MalformFn = Tuple (*)(const Tuple&);

  FaultInjectingSpout(std::shared_ptr<Spout> inner, FaultInjector* injector,
                      MalformFn malform = &DefaultMalform)
      : inner_(std::move(inner)), injector_(injector), malform_(malform) {}

  static Tuple DefaultMalform(const Tuple& original) {
    Tuple poison(original.event_time(),
                 std::vector<Value>{Value(std::string("__poison__"))});
    return poison;
  }

  bool Next(Tuple* out) override {
    if (!pending_.empty()) {
      *out = std::move(pending_.front());
      pending_.pop_front();
      return true;
    }
    Tuple tuple;
    if (!inner_->Next(&tuple)) return false;
    if (injector_ != nullptr) {
      if (injector_->armed(FaultSite::kSpoutStall)) {
        const FaultInjector::Decision d =
            injector_->Tick(FaultSite::kSpoutStall);
        // Stall *before* the tuple leaves: the executor's source thread
        // blocks in NextBatch, watermarks stop, and downstream windows
        // starve — exactly the failure the watermark watchdog targets.
        if (d.fire) Stall(d.extra_latency_ns);
      }
      if (injector_->armed(FaultSite::kSpoutDuplicate) &&
          injector_->Tick(FaultSite::kSpoutDuplicate).fire) {
        pending_.push_back(tuple);
      }
      if (injector_->armed(FaultSite::kSpoutLate)) {
        const FaultInjector::Decision d =
            injector_->Tick(FaultSite::kSpoutLate);
        if (d.fire) {
          Tuple late = tuple;
          late.set_event_time(late.event_time() - d.lateness_ms);
          pending_.push_back(std::move(late));
        }
      }
      if (injector_->armed(FaultSite::kSpoutMalformed) &&
          injector_->Tick(FaultSite::kSpoutMalformed).fire) {
        // Emit the poison now; the healthy original follows next pull.
        pending_.push_front(std::move(tuple));
        *out = malform_(pending_.front());
        return true;
      }
    }
    *out = std::move(tuple);
    return true;
  }

  /// Replay offsets count the *inner* stream (injected duplicates and
  /// poison copies are derived, not consumed positions).
  ReplayableSpout* replayable() override { return inner_->replayable(); }

  /// Unsticks an active (and any future) kSpoutStall. Called by the
  /// topology's cancel hooks when the watchdog or an error path gives up
  /// on this spout; safe from any thread, idempotent.
  void CancelStall() {
    stall_cancelled_.store(true, std::memory_order_release);
  }

 private:
  /// Sleeps in short slices until cancelled or (when `bound_ns` > 0) the
  /// bound elapses. A zero bound stalls indefinitely — only CancelStall
  /// releases it.
  void Stall(std::int64_t bound_ns) {
    const std::int64_t start = NowNs();
    while (!stall_cancelled_.load(std::memory_order_acquire)) {
      if (bound_ns > 0 && NowNs() - start >= bound_ns) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  std::shared_ptr<Spout> inner_;
  FaultInjector* injector_;
  MalformFn malform_;
  std::deque<Tuple> pending_;
  std::atomic<bool> stall_cancelled_{false};
};

}  // namespace spear
