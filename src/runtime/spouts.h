#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "checkpoint/checkpointable.h"
#include "runtime/operator.h"

/// \file spouts.h
/// Common sources. The paper's CQs read "data sequentially from a
/// memory-mapped file"; VectorSpout is the in-memory equivalent, and
/// GeneratorSpout adapts any pull callback (used by the dataset
/// generators in src/data).

namespace spear {

/// \brief Replays a pre-materialized tuple vector in order. Replayable:
/// the cursor doubles as the checkpoint offset.
class VectorSpout : public Spout, public ReplayableSpout {
 public:
  explicit VectorSpout(std::vector<Tuple> tuples)
      : tuples_(std::move(tuples)) {}

  bool Next(Tuple* out) override {
    if (cursor_ >= tuples_.size()) return false;
    *out = tuples_[cursor_++];
    return true;
  }

  bool NextBatch(std::vector<Tuple>* out, std::size_t max) override {
    const std::size_t take = std::min(max, tuples_.size() - cursor_);
    out->insert(out->end(), tuples_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                tuples_.begin() + static_cast<std::ptrdiff_t>(cursor_ + take));
    cursor_ += take;
    return cursor_ < tuples_.size() || take == max;
  }

  std::size_t size() const { return tuples_.size(); }

  /// Restarts replay from the beginning. A spout is exhausted after one
  /// Executor run; rewind it (or build a fresh one) before reusing it in
  /// another topology.
  void Rewind() { cursor_ = 0; }

  ReplayableSpout* replayable() override { return this; }

  std::uint64_t ReplayOffset() const override { return cursor_; }

  Status SeekTo(std::uint64_t offset) override {
    if (offset > tuples_.size()) {
      return Status::OutOfRange("vector spout: seek past end of stream");
    }
    cursor_ = static_cast<std::size_t>(offset);
    return Status::OK();
  }

 private:
  std::vector<Tuple> tuples_;
  std::size_t cursor_ = 0;
};

/// \brief Adapts a pull function `bool(Tuple*)` as a spout.
class GeneratorSpout : public Spout {
 public:
  using PullFn = std::function<bool(Tuple*)>;

  explicit GeneratorSpout(PullFn fn) : fn_(std::move(fn)) {}

  bool Next(Tuple* out) override { return fn_(out); }

 private:
  PullFn fn_;
};

}  // namespace spear
