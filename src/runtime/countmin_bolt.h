#pragma once

#include <memory>

#include "runtime/operator.h"
#include "runtime/windowed_bolt.h"
#include "sketch/count_min.h"
#include "window/single_buffer_manager.h"

/// \file countmin_bolt.h
/// The Table 2 baseline: a Storm-style windowed bolt that produces a
/// grouped mean with a CountMin sketch instead of exact aggregation. The
/// window is buffered as usual (single-buffer design); at watermark
/// arrival every tuple is pushed through the sketch's hash rows and the
/// result is reconstructed from the tracked distinct-group set — the
/// per-tuple hashing cost is exactly the overhead the paper attributes to
/// sketching.

namespace spear {

/// \brief Grouped-mean windowed stage backed by CountMin.
class CountMinWindowedBolt : public Bolt {
 public:
  /// \param epsilon,confidence sketch accuracy: additive error epsilon of
  ///        the window's L1 mass with probability `confidence` (the paper
  ///        sizes the sketch "to achieve a confidence of 95% and an error
  ///        of up to 10%", equivalent to SPEAr's spec)
  CountMinWindowedBolt(WindowSpec window, ValueExtractor value_extractor,
                       KeyExtractor key_extractor, double epsilon,
                       double confidence);

  Status Prepare(const BoltContext& ctx) override;
  Status Execute(const Tuple& tuple, Emitter* out) override;
  Status OnWatermark(Timestamp watermark, Emitter* out) override;

 private:
  Status ProcessWatermark(std::int64_t watermark, Emitter* out);

  const WindowSpec window_;
  const ValueExtractor value_extractor_;
  const KeyExtractor key_extractor_;
  const double epsilon_;
  const double delta_;
  std::unique_ptr<SingleBufferWindowManager> manager_;
  WorkerMetrics* metrics_ = nullptr;
  std::int64_t sequence_ = 0;
};

}  // namespace spear
