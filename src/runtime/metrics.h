#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

/// \file metrics.h
/// Runtime telemetry, modeled on Storm's metrics API (which the paper uses
/// to measure per-window processing time). Each worker thread owns a
/// WorkerMetrics it writes without synchronization; the registry snapshots
/// them after execution.

namespace spear {

/// \brief Percentile/mean summary of a sample of int64 measurements.
struct MetricSummary {
  std::uint64_t count = 0;
  double mean = 0.0;
  std::int64_t min = 0;
  std::int64_t p50 = 0;
  std::int64_t p95 = 0;
  std::int64_t p99 = 0;
  std::int64_t max = 0;

  static MetricSummary FromSamples(std::vector<std::int64_t> samples);
};

/// \brief Fault-handling counters of one run (or one worker), aggregated
/// into RunReport::faults by the executor.
struct FaultStats {
  /// Faults fired by the run's FaultInjector (0 without one).
  std::uint64_t injected = 0;
  /// Retry attempts performed (storage-level + tuple-level).
  std::uint64_t retries = 0;
  /// Operations that succeeded on a retry after a transient failure.
  std::uint64_t recovered = 0;
  /// Tuples quarantined to the dead-letter channel.
  std::uint64_t quarantined = 0;
  /// Windows emitted with degraded accuracy (SpearBolt's AF-Stream trade).
  std::uint64_t degraded_windows = 0;
  /// Workers restarted from a checkpoint after a crash (supervisor loop).
  std::uint64_t worker_restarts = 0;
  /// Checkpoint snapshots taken at watermark boundaries.
  std::uint64_t snapshots = 0;
  /// Spill attempts that exhausted their storage retries (the window is
  /// later emitted degraded or exact-from-partial-state).
  std::uint64_t spill_failures = 0;

  void Accumulate(const FaultStats& other) {
    injected += other.injected;
    retries += other.retries;
    recovered += other.recovered;
    quarantined += other.quarantined;
    degraded_windows += other.degraded_windows;
    worker_restarts += other.worker_restarts;
    snapshots += other.snapshots;
    spill_failures += other.spill_failures;
  }
};

/// \brief Overload-control counters of one run (or one worker),
/// aggregated into RunReport::overload by the executor.
struct OverloadStats {
  /// Tuples dropped at stage admission by accuracy-aware load shedding.
  std::uint64_t tuples_shed = 0;
  /// Windows emitted whose ε̂_w includes shed-loss inflation.
  std::uint64_t windows_shed_loss = 0;
  /// Exact fallbacks aborted at their deadline (window emitted degraded).
  std::uint64_t deadline_aborts = 0;
  /// Watermark-watchdog interventions (stalled source closed/advanced).
  std::uint64_t watchdog_advances = 0;
  /// Time producers spent blocked on full inter-stage queues.
  std::int64_t backpressure_wait_ns = 0;

  void Accumulate(const OverloadStats& other) {
    tuples_shed += other.tuples_shed;
    windows_shed_loss += other.windows_shed_loss;
    deadline_aborts += other.deadline_aborts;
    watchdog_advances += other.watchdog_advances;
    backpressure_wait_ns += other.backpressure_wait_ns;
  }
};

/// \brief One worker thread's counters. Written by exactly one thread.
class WorkerMetrics {
 public:
  WorkerMetrics(std::string stage, int task_id)
      : stage_(std::move(stage)), task_id_(task_id) {}

  void RecordWindowNs(std::int64_t ns) { window_ns_.push_back(ns); }
  void RecordMemoryBytes(std::size_t bytes) {
    memory_bytes_.push_back(static_cast<std::int64_t>(bytes));
  }
  void AddTuplesIn(std::uint64_t n) { tuples_in_ += n; }
  void AddTuplesOut(std::uint64_t n) { tuples_out_ += n; }
  void AddBusyNs(std::int64_t ns) { busy_ns_ += ns; }
  void AddRetries(std::uint64_t n) { faults_.retries += n; }
  void AddRecovered(std::uint64_t n) { faults_.recovered += n; }
  void AddQuarantined(std::uint64_t n) { faults_.quarantined += n; }
  void AddDegradedWindows(std::uint64_t n) { faults_.degraded_windows += n; }
  void AddWorkerRestarts(std::uint64_t n) { faults_.worker_restarts += n; }
  void AddSnapshots(std::uint64_t n) { faults_.snapshots += n; }
  void AddSpillFailures(std::uint64_t n) { faults_.spill_failures += n; }
  void AddTuplesShed(std::uint64_t n) { overload_.tuples_shed += n; }
  void AddWindowsShedLoss(std::uint64_t n) { overload_.windows_shed_loss += n; }
  void AddDeadlineAborts(std::uint64_t n) { overload_.deadline_aborts += n; }
  void AddBackpressureNs(std::int64_t ns) {
    overload_.backpressure_wait_ns += ns;
  }

  const std::string& stage() const { return stage_; }
  int task_id() const { return task_id_; }
  std::uint64_t tuples_in() const { return tuples_in_; }
  std::uint64_t tuples_out() const { return tuples_out_; }
  std::int64_t busy_ns() const { return busy_ns_; }
  const FaultStats& faults() const { return faults_; }
  const OverloadStats& overload() const { return overload_; }
  const std::vector<std::int64_t>& window_ns() const { return window_ns_; }
  const std::vector<std::int64_t>& memory_bytes() const {
    return memory_bytes_;
  }

  MetricSummary WindowSummary() const {
    return MetricSummary::FromSamples(window_ns_);
  }
  MetricSummary MemorySummary() const {
    return MetricSummary::FromSamples(memory_bytes_);
  }

 private:
  const std::string stage_;
  const int task_id_;
  std::uint64_t tuples_in_ = 0;
  std::uint64_t tuples_out_ = 0;
  std::int64_t busy_ns_ = 0;
  FaultStats faults_;
  OverloadStats overload_;
  std::vector<std::int64_t> window_ns_;
  std::vector<std::int64_t> memory_bytes_;
};

/// \brief Owns every worker's metrics for one topology run.
class MetricsRegistry {
 public:
  /// Creates (and owns) metrics for one worker. Called at wiring time,
  /// before threads start — no synchronization needed afterwards.
  WorkerMetrics* Register(const std::string& stage, int task_id) {
    workers_.push_back(std::make_unique<WorkerMetrics>(stage, task_id));
    return workers_.back().get();
  }

  /// All workers of a stage.
  std::vector<const WorkerMetrics*> ForStage(const std::string& stage) const {
    std::vector<const WorkerMetrics*> out;
    for (const auto& w : workers_) {
      if (w->stage() == stage) out.push_back(w.get());
    }
    return out;
  }

  /// Pooled per-window processing times across a stage's workers.
  MetricSummary StageWindowSummary(const std::string& stage) const;

  /// Mean of per-worker *average* memory samples across a stage — the
  /// "mean memory usage per worker" of Fig. 7.
  double StageMeanMemoryPerWorker(const std::string& stage) const;

  /// Fault counters summed across every worker (injected stays 0 here;
  /// the executor fills it from the topology's FaultInjector).
  FaultStats FaultTotals() const {
    FaultStats total;
    for (const auto& w : workers_) total.Accumulate(w->faults());
    return total;
  }

  /// Overload-control counters summed across every worker
  /// (watchdog_advances stays 0 here; the executor adds its own).
  OverloadStats OverloadTotals() const {
    OverloadStats total;
    for (const auto& w : workers_) total.Accumulate(w->overload());
    return total;
  }

  const std::vector<std::unique_ptr<WorkerMetrics>>& workers() const {
    return workers_;
  }

 private:
  std::vector<std::unique_ptr<WorkerMetrics>> workers_;
};

}  // namespace spear
