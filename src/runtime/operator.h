#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/time.h"
#include "runtime/metrics.h"
#include "tuple/tuple.h"

/// \file operator.h
/// The operator interfaces of the runtime: Spout (source) and Bolt
/// (processing stage), Storm's vocabulary. Bolts receive data tuples and
/// watermarks; the executor handles channel-wise watermark alignment and
/// end-of-stream flushes.

namespace spear {

class Checkpointable;    // checkpoint/checkpointable.h
class ReplayableSpout;   // checkpoint/checkpointable.h
class OverloadDetector;  // runtime/overload.h

namespace obs {
class MetricsShard;  // obs/metrics.h
class WindowTracer;  // obs/trace.h
}  // namespace obs

/// \brief Downstream emission handle given to bolts.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(Tuple tuple) = 0;
};

/// \brief Per-worker runtime context handed to a bolt at preparation.
struct BoltContext {
  int task_id = 0;
  int parallelism = 1;
  WorkerMetrics* metrics = nullptr;
  /// This stage's overload detector, or null when no latency SLO is
  /// configured. Admission-shedding bolts read shed_probability() per
  /// tuple and report window latencies back.
  OverloadDetector* overload = nullptr;
  /// This worker's observability shard, or null unless the topology was
  /// built with `.Metrics()`. Bolts resolve instruments once at Prepare
  /// and update them lock-free afterwards.
  obs::MetricsShard* obs = nullptr;
  /// This worker's window-trace sink, or null unless built with
  /// `.Trace()`. SPEAr bolts record one TraceSpan per closed window.
  obs::WindowTracer* tracer = nullptr;
};

/// \brief A processing stage instance. One Bolt object per worker thread;
/// all callbacks run on that worker's thread.
class Bolt {
 public:
  virtual ~Bolt() = default;

  /// Called once before any tuple, on the worker thread.
  virtual Status Prepare(const BoltContext& ctx) {
    (void)ctx;
    return Status::OK();
  }

  /// Data tuple arrival.
  virtual Status Execute(const Tuple& tuple, Emitter* out) = 0;

  /// Watermark arrival (already aligned as the minimum across input
  /// channels; exclusive semantics — see window/watermark.h). The executor
  /// forwards the watermark downstream after this returns.
  virtual Status OnWatermark(Timestamp watermark, Emitter* out) {
    (void)watermark;
    (void)out;
    return Status::OK();
  }

  /// End of stream, after the final watermark. Flush any residual state.
  virtual Status Finish(Emitter* out) {
    (void)out;
    return Status::OK();
  }

  /// Delivery-anomaly notification: the runtime has closed the stream
  /// abnormally (e.g. the watermark watchdog gave up on a stalled spout)
  /// and an unknown suffix of the input may never arrive. Windows still
  /// open must not be passed off as accurate — SPEAr bolts flag them for
  /// degraded emission. Default: ignore (stateless bolts lose nothing).
  virtual Status OnDeliveryAnomaly(Emitter* out) {
    (void)out;
    return Status::OK();
  }

  /// Snapshot/restore hooks, when this bolt participates in
  /// checkpoint/recovery (null for stateless bolts — the default).
  /// Decorator bolts forward to the bolt they wrap; the executor uses
  /// this instead of RTTI.
  virtual Checkpointable* checkpointable() { return nullptr; }
};

/// \brief A data source. Pull-based: the executor's source thread drains it.
class Spout {
 public:
  virtual ~Spout() = default;

  /// Produces the next tuple; false at end of stream.
  virtual bool Next(Tuple* out) = 0;

  /// Appends up to `max` tuples to `*out`; returns false once the stream
  /// is exhausted (tuples already appended remain valid). The default
  /// loops Next(); sources with random-access backing can override it to
  /// fill the batch without per-tuple virtual dispatch.
  virtual bool NextBatch(std::vector<Tuple>* out, std::size_t max) {
    Tuple tuple;
    for (std::size_t k = 0; k < max; ++k) {
      if (!Next(&tuple)) return false;
      out->push_back(std::move(tuple));
      tuple = Tuple();
    }
    return true;
  }

  /// Replay-offset hooks, when this spout can report/seek its consumption
  /// position (null otherwise — the default). Decorator spouts forward.
  virtual ReplayableSpout* replayable() { return nullptr; }
};

/// \brief Per-worker bolt factory: stage parallelism P creates P bolts.
using BoltFactory = std::function<std::unique_ptr<Bolt>(int task_id)>;

}  // namespace spear
