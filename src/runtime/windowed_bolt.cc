#include "runtime/windowed_bolt.h"

#include "common/time.h"

namespace spear {

std::vector<Tuple> WindowResultToTuples(const WindowResult& result) {
  std::vector<Tuple> out;
  const Value start(result.bounds.start);
  const Value end(result.bounds.end);
  const Value approx(static_cast<std::int64_t>(result.approximate ? 1 : 0));
  const Value err(result.estimated_error);
  const Value degraded(static_cast<std::int64_t>(result.degraded ? 1 : 0));
  const Value recovered(static_cast<std::int64_t>(result.recovered ? 1 : 0));
  if (!result.is_grouped) {
    out.emplace_back(result.bounds.end,
                     std::vector<Value>{start, end, Value(result.scalar),
                                        approx, err, degraded, recovered});
    return out;
  }
  out.reserve(result.groups.size());
  for (const auto& [key, value] : result.groups) {
    out.emplace_back(result.bounds.end,
                     std::vector<Value>{start, end, Value(key), Value(value),
                                        approx, err, degraded, recovered});
  }
  return out;
}

// ---------------------------------------------------------------------------
// ExactWindowedBolt
// ---------------------------------------------------------------------------

ExactWindowedBolt::ExactWindowedBolt(ExactWindowedBoltConfig config)
    : config_(std::move(config)),
      operator_(config_.aggregate, config_.value_extractor,
                config_.key_extractor) {
  SPEAR_CHECK(config_.window.IsValid());
}

Status ExactWindowedBolt::Prepare(const BoltContext& ctx) {
  metrics_ = ctx.metrics;
  if (config_.use_multi_buffer) {
    if (config_.memory_capacity != 0) {
      return Status::Invalid(
          "multi-buffer manager does not support spilling");
    }
    manager_ = std::make_unique<MultiBufferWindowManager>(config_.window);
  } else {
    manager_ = std::make_unique<SingleBufferWindowManager>(
        config_.window, config_.memory_capacity, config_.storage,
        "exact-bolt-" + std::to_string(ctx.task_id));
  }
  return Status::OK();
}

Status ExactWindowedBolt::Execute(const Tuple& tuple, Emitter* out) {
  std::int64_t coord;
  if (config_.window.type == WindowType::kCountBased) {
    coord = sequence_++;
  } else {
    coord = tuple.event_time();
  }
  manager_->OnTuple(coord, tuple);
  if (config_.window.type == WindowType::kCountBased) {
    // All coordinates below `sequence_` have been observed: that is the
    // exclusive watermark for count windows.
    return ProcessWatermark(sequence_, out);
  }
  return Status::OK();
}

Status ExactWindowedBolt::OnWatermark(Timestamp watermark, Emitter* out) {
  if (config_.window.type == WindowType::kCountBased) {
    // Count windows complete by cardinality; event-time watermarks only
    // matter at end of stream, where the final watermark flushes the
    // (possibly incomplete) tail — which count semantics discard.
    return Status::OK();
  }
  return ProcessWatermark(watermark, out);
}

Status ExactWindowedBolt::ProcessWatermark(std::int64_t watermark,
                                           Emitter* out) {
  std::int64_t staging_ns = 0;
  Result<std::vector<CompleteWindow>> staged = [&] {
    ScopedTimerNs timer(&staging_ns);
    return manager_->OnWatermark(watermark);
  }();
  if (!staged.ok()) return staged.status();
  if (staged->empty()) return Status::OK();

  const std::int64_t staging_share =
      staging_ns / static_cast<std::int64_t>(staged->size());
  for (const CompleteWindow& window : *staged) {
    std::int64_t process_ns = 0;
    Result<WindowResult> result = [&] {
      ScopedTimerNs timer(&process_ns);
      return operator_.Process(window);
    }();
    if (!result.ok()) return result.status();
    result->processing_ns = process_ns + staging_share;

    if (metrics_ != nullptr) {
      metrics_->RecordWindowNs(result->processing_ns);
      if (config_.record_memory) {
        // Memory used to produce this result: the staged window itself.
        std::size_t bytes = 0;
        for (const Tuple& t : window.tuples) bytes += t.ByteSize();
        metrics_->RecordMemoryBytes(bytes);
      }
    }
    for (Tuple& t : WindowResultToTuples(*result)) out->Emit(std::move(t));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// IncrementalWindowedBolt
// ---------------------------------------------------------------------------

IncrementalWindowedBolt::IncrementalWindowedBolt(WindowSpec window,
                                                 AggregateSpec aggregate,
                                                 ValueExtractor value_extractor,
                                                 KeyExtractor key_extractor)
    : window_(window),
      operator_(aggregate, window, std::move(value_extractor),
                std::move(key_extractor)) {}

Status IncrementalWindowedBolt::Prepare(const BoltContext& ctx) {
  metrics_ = ctx.metrics;
  return Status::OK();
}

Status IncrementalWindowedBolt::Execute(const Tuple& tuple, Emitter* out) {
  std::int64_t coord;
  if (window_.type == WindowType::kCountBased) {
    coord = sequence_++;
  } else {
    coord = tuple.event_time();
  }
  operator_.OnTuple(coord, tuple);
  if (window_.type == WindowType::kCountBased) {
    return ProcessWatermark(sequence_, out);
  }
  return Status::OK();
}

Status IncrementalWindowedBolt::OnWatermark(Timestamp watermark,
                                            Emitter* out) {
  if (window_.type == WindowType::kCountBased) return Status::OK();
  return ProcessWatermark(watermark, out);
}

Status IncrementalWindowedBolt::ProcessWatermark(std::int64_t watermark,
                                                 Emitter* out) {
  std::int64_t total_ns = 0;
  Result<std::vector<WindowResult>> results = [&] {
    ScopedTimerNs timer(&total_ns);
    return operator_.OnWatermark(watermark);
  }();
  if (!results.ok()) return results.status();
  if (results->empty()) return Status::OK();

  const std::int64_t share =
      total_ns / static_cast<std::int64_t>(results->size());
  for (WindowResult& result : *results) {
    result.processing_ns = share;
    if (metrics_ != nullptr) {
      metrics_->RecordWindowNs(result.processing_ns);
      // Incremental state: one accumulator per active window.
      metrics_->RecordMemoryBytes(sizeof(RunningStats) *
                                  std::max<std::size_t>(
                                      operator_.active_windows(), 1));
    }
    for (Tuple& t : WindowResultToTuples(result)) out->Emit(std::move(t));
  }
  return Status::OK();
}

}  // namespace spear
