#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "common/fault.h"
#include "common/result.h"
#include "common/retry_policy.h"
#include "common/time.h"
#include "obs/observability.h"
#include "runtime/operator.h"
#include "runtime/overload.h"
#include "runtime/partitioner.h"

/// \file topology.h
/// CQ -> distributed execution plan (paper Sec. 2): a topologically-sorted
/// chain of stages, each with its own parallelism and input partitioning.
/// Built with TopologyBuilder, executed by Executor.

namespace spear {

class SecondaryStorage;

/// \brief One processing stage of the DAG.
struct StageSpec {
  std::string name;
  int parallelism = 1;
  /// How the *upstream* stage routes tuples to this stage.
  Partitioner input_partitioner = Partitioner::Shuffle();
  BoltFactory bolt_factory;
  /// Retry policy for transient Execute failures (supervision). Default:
  /// no retries — a transient failure is treated like any other error.
  RetryPolicy retry = RetryPolicy::None();
};

/// \brief Source configuration: the spout plus its watermarking policy.
struct SourceSpec {
  std::shared_ptr<Spout> spout;
  /// Emit a watermark every this much observed event time. <= 0 disables
  /// source watermarks (only the final end-of-stream watermark fires);
  /// count-based CQs typically disable them.
  DurationMs watermark_interval = 0;
  /// Bounded out-of-orderness allowance.
  DurationMs max_lateness = 0;
};

/// \brief An executable plan. Immutable once built.
struct Topology {
  SourceSpec source;
  std::vector<StageSpec> stages;
  /// Capacity of each inter-stage queue (back-pressure bound).
  std::size_t queue_capacity = 1024;
  /// Micro-batch bound for every inter-stage channel: each emitting worker
  /// buffers up to this many tuples per target before handing them to the
  /// queue as one batch (one lock acquisition + one notify). 1 disables
  /// batching. Buffers are flushed unconditionally before any watermark or
  /// flush broadcast and before a worker blocks on an empty input queue,
  /// so per-channel ordering, watermark alignment, and end-of-stream
  /// semantics are identical at any batch size.
  std::size_t batch_max_tuples = 64;
  /// Chaos testing: the plan's injector, consulted by instrumented sites
  /// (storage, FaultInjectingBolt/Spout wrappers). Not owned; null in
  /// production. The executor reads its fire counters into the RunReport.
  FaultInjector* fault_injector = nullptr;
  /// Secondary storages used by this topology's bolts (not owned). Lets
  /// the executor re-arm their simulated latency at run start and cancel
  /// it when the run is cancelled, so failing workers don't spin out
  /// simulated waits.
  std::vector<SecondaryStorage*> storages;
  /// Checkpoint/recovery policy (disabled by default). When enabled the
  /// executor snapshots every checkpointable worker at watermark
  /// boundaries and restarts crashed workers from their latest snapshot.
  CheckpointConfig checkpoint;
  /// Cap on RunReport::dead_letters and suppressed_errors entries kept in
  /// memory; tuples quarantined past the cap are counted in
  /// RunReport::dead_letters_dropped instead of retained.
  std::size_t max_dead_letters = 1024;
  /// Overload control: latency SLO + shed policy + watermark watchdog
  /// (all disabled by default; see runtime/overload.h).
  OverloadConfig overload;
  /// Invoked (each at most once, any thread) when the executor abandons a
  /// run or the watchdog closes a stalled source — unsticks operators
  /// blocked outside the executor's control (e.g. a stalled spout).
  std::vector<std::function<void()>> cancel_hooks;
  /// Observability: exported metrics + per-window trace spans (both off
  /// by default; see obs/observability.h and the `.Metrics()`/`.Trace()`
  /// builder knobs).
  obs::ObsConfig obs;
};

/// \brief Fluent builder mirroring the structure of the paper's Fig. 2
/// DAG: source -> stateless stage(s) -> windowed stateful stage -> sink.
class TopologyBuilder {
 public:
  /// Sets the data source. `watermark_interval <= 0` disables periodic
  /// watermarks (the final watermark still fires at end of stream).
  TopologyBuilder& Source(std::shared_ptr<Spout> spout,
                          DurationMs watermark_interval = 0,
                          DurationMs max_lateness = 0) {
    topology_.source = SourceSpec{std::move(spout), watermark_interval,
                                  max_lateness};
    return *this;
  }

  /// Appends a stage fed by the previous one (or the source).
  TopologyBuilder& Stage(std::string name, int parallelism,
                         Partitioner input_partitioner, BoltFactory factory) {
    topology_.stages.push_back(StageSpec{std::move(name), parallelism,
                                         std::move(input_partitioner),
                                         std::move(factory)});
    return *this;
  }

  /// Sets the retry policy of the most recently added stage.
  TopologyBuilder& StageRetry(RetryPolicy retry) {
    if (!topology_.stages.empty()) topology_.stages.back().retry = retry;
    return *this;
  }

  /// Attaches a fault injector to the plan (see Topology::fault_injector).
  TopologyBuilder& InjectFaults(FaultInjector* injector) {
    topology_.fault_injector = injector;
    return *this;
  }

  /// Registers a storage used by this topology's bolts (see
  /// Topology::storages). Idempotent per pointer.
  TopologyBuilder& RegisterStorage(SecondaryStorage* storage) {
    if (storage != nullptr) {
      for (SecondaryStorage* s : topology_.storages) {
        if (s == storage) return *this;
      }
      topology_.storages.push_back(storage);
    }
    return *this;
  }

  TopologyBuilder& QueueCapacity(std::size_t capacity) {
    topology_.queue_capacity = capacity;
    return *this;
  }

  /// Per-channel micro-batch bound (1 = unbatched; see Topology).
  TopologyBuilder& BatchMaxTuples(std::size_t batch_max) {
    topology_.batch_max_tuples = batch_max;
    return *this;
  }

  /// Enables checkpoint/restore with the given policy (see
  /// Topology::checkpoint). `config.enabled` is forced true.
  TopologyBuilder& Checkpoint(CheckpointConfig config) {
    config.enabled = true;
    topology_.checkpoint = std::move(config);
    return *this;
  }

  /// Caps retained dead-letter/suppressed-error entries (see
  /// Topology::max_dead_letters).
  TopologyBuilder& DeadLetterCap(std::size_t cap) {
    topology_.max_dead_letters = cap;
    return *this;
  }

  /// Arms overload control with a per-window latency SLO (ms). Each
  /// stage gets an OverloadDetector; bolts that honor BoltContext::overload
  /// shed admissions while the detector is tripped.
  TopologyBuilder& LatencySlo(DurationMs slo_ms) {
    topology_.overload.latency_slo = slo_ms;
    return *this;
  }

  /// Replaces the shed policy (thresholds/ramp; see ShedPolicy). Only
  /// effective together with LatencySlo.
  TopologyBuilder& Shed(ShedPolicy policy) {
    topology_.overload.shed = policy;
    return *this;
  }

  /// Arms the watermark watchdog: a source that makes no progress for
  /// `idle_ms` while the stage-0 queues sit empty is declared stalled and
  /// the stream is closed abnormally (bolts get OnDeliveryAnomaly, then
  /// the final watermark).
  TopologyBuilder& WatermarkWatchdog(DurationMs idle_ms) {
    topology_.overload.watchdog_idle = idle_ms;
    return *this;
  }

  /// Enables the exported-metrics layer (obs::MetricsRegistry shards per
  /// worker, queue/backpressure gauges, checkpoint counters, and the
  /// final scrape in RunReport::observability). `options` may add a
  /// periodic sampler thread (scrape_period_ms + sink).
  TopologyBuilder& Metrics(obs::MetricsOptions options = {}) {
    topology_.obs.metrics_enabled = true;
    topology_.obs.metrics = std::move(options);
    return *this;
  }

  /// Enables per-window TraceSpan recording (decision lineage; see
  /// obs/trace.h). `options` controls sampling and the per-worker cap.
  TopologyBuilder& Trace(obs::TraceOptions options = {}) {
    topology_.obs.trace_enabled = true;
    topology_.obs.trace = options;
    return *this;
  }

  /// Registers a cancel hook (see Topology::cancel_hooks).
  TopologyBuilder& AddCancelHook(std::function<void()> hook) {
    if (hook) topology_.cancel_hooks.push_back(std::move(hook));
    return *this;
  }

  /// Validates and returns the plan.
  Result<Topology> Build() {
    if (!topology_.source.spout) return Status::Invalid("topology has no source");
    if (topology_.stages.empty()) return Status::Invalid("topology has no stages");
    for (const StageSpec& s : topology_.stages) {
      if (s.parallelism < 1) {
        return Status::Invalid("stage '" + s.name + "' parallelism must be >= 1");
      }
      if (!s.bolt_factory) {
        return Status::Invalid("stage '" + s.name + "' has no bolt factory");
      }
      if (Status rs = s.retry.Validate(); !rs.ok()) {
        return Status::Invalid("stage '" + s.name + "': " + rs.message());
      }
    }
    if (topology_.queue_capacity == 0) {
      return Status::Invalid("queue capacity must be > 0");
    }
    if (topology_.batch_max_tuples == 0) {
      return Status::Invalid("batch_max_tuples must be > 0");
    }
    if (Status os = topology_.overload.Validate(); !os.ok()) return os;
    if (Status os = topology_.obs.Validate(); !os.ok()) return os;
    if (topology_.checkpoint.enabled) {
      if (topology_.checkpoint.interval < 1) {
        return Status::Invalid("checkpoint interval must be >= 1 ms");
      }
      if (topology_.source.spout &&
          topology_.source.spout->replayable() == nullptr) {
        return Status::Invalid(
            "checkpointing requires a replayable source spout");
      }
    }
    return topology_;
  }

 private:
  Topology topology_;
};

}  // namespace spear
