#pragma once

#include <map>
#include <memory>

#include "runtime/operator.h"
#include "runtime/windowed_bolt.h"
#include "sketch/gk_quantile.h"
#include "window/window_assigner.h"

/// \file gk_quantile_bolt.h
/// Holistic-aggregate baseline from the incremental-processing related
/// work (cf. the paper's Sec. 6 discussion of [37]/[60]): one
/// Greenwald-Khanna summary per active window, updated at tuple arrival,
/// queried at watermark arrival. Deterministic rank error <= epsilon and
/// bounded memory, but a per-tuple ordered-insert cost that SPEAr's
/// reservoir path avoids — the trade-off the ablation bench quantifies.

namespace spear {

/// \brief Windowed phi-quantile via per-window GK summaries.
class GkQuantileBolt : public Bolt {
 public:
  /// \param epsilon deterministic rank-error bound of each result.
  GkQuantileBolt(WindowSpec window, ValueExtractor value_extractor,
                 double phi, double epsilon);

  Status Prepare(const BoltContext& ctx) override;
  Status Execute(const Tuple& tuple, Emitter* out) override;
  Status OnWatermark(Timestamp watermark, Emitter* out) override;

 private:
  Status ProcessWatermark(std::int64_t watermark, Emitter* out);

  const WindowSpec window_;
  const ValueExtractor value_extractor_;
  const double phi_;
  const double epsilon_;

  /// window start -> summary.
  std::map<std::int64_t, GkQuantileSketch> sketches_;
  std::int64_t last_watermark_;
  WorkerMetrics* metrics_ = nullptr;
  std::int64_t sequence_ = 0;
};

}  // namespace spear
