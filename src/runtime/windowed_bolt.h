#pragma once

#include <memory>

#include "ops/exact_operator.h"
#include "ops/incremental_operator.h"
#include "runtime/operator.h"
#include "window/multi_buffer_manager.h"
#include "window/single_buffer_manager.h"

/// \file windowed_bolt.h
/// Stateful windowed stages for the runtime:
///  * ExactWindowedBolt — the "Storm" baseline: buffer everything
///    (single- or multi-buffer design), process whole windows at
///    watermark arrival.
///  * IncrementalWindowedBolt — the "Inc-Storm" baseline: constant-state
///    accumulators updated at tuple arrival (non-holistic aggregates only).
///
/// Both emit one result tuple per window (scalar) or per (window, group):
///   scalar : [start, end, value, approx(0/1), est_err, degraded(0/1),
///             recovered(0/1)] @ event_time=end
///   grouped: [start, end, key, value, approx(0/1), est_err, degraded(0/1),
///             recovered(0/1)]
/// and record per-window processing time and memory through the worker's
/// metrics (the paper's measurement methodology).

namespace spear {

/// \brief Encodes a WindowResult as output tuples (see file comment).
std::vector<Tuple> WindowResultToTuples(const WindowResult& result);

/// \brief Field positions of the encoded result tuples.
struct ResultTupleLayout {
  static constexpr std::size_t kStart = 0;
  static constexpr std::size_t kEnd = 1;
  /// Scalar: value at 2, approx at 3, err at 4, degraded at 5,
  /// recovered at 6.
  static constexpr std::size_t kScalarValue = 2;
  static constexpr std::size_t kScalarApprox = 3;
  static constexpr std::size_t kScalarError = 4;
  static constexpr std::size_t kScalarDegraded = 5;
  static constexpr std::size_t kScalarRecovered = 6;
  /// Grouped: key at 2, value at 3, approx at 4, err at 5, degraded at 6,
  /// recovered at 7.
  static constexpr std::size_t kGroupKey = 2;
  static constexpr std::size_t kGroupValue = 3;
  static constexpr std::size_t kGroupApprox = 4;
  static constexpr std::size_t kGroupError = 5;
  static constexpr std::size_t kGroupDegraded = 6;
  static constexpr std::size_t kGroupRecovered = 7;
};

/// \brief Configuration shared by the exact windowed bolt variants.
struct ExactWindowedBoltConfig {
  WindowSpec window;
  AggregateSpec aggregate;
  ValueExtractor value_extractor;
  KeyExtractor key_extractor;  ///< null => scalar operation

  /// Use the multiple-buffers (Flink) design instead of single-buffer.
  bool use_multi_buffer = false;

  /// Tuples held in memory before spilling to S (0 = unlimited).
  std::size_t memory_capacity = 0;
  SecondaryStorage* storage = nullptr;

  /// Sample the staged window's memory footprint per window (Fig. 7).
  bool record_memory = true;
};

/// \brief Exact ("Storm") windowed stateful stage.
class ExactWindowedBolt : public Bolt {
 public:
  explicit ExactWindowedBolt(ExactWindowedBoltConfig config);

  Status Prepare(const BoltContext& ctx) override;
  Status Execute(const Tuple& tuple, Emitter* out) override;
  Status OnWatermark(Timestamp watermark, Emitter* out) override;

  const WindowManager& window_manager() const { return *manager_; }

 private:
  Status ProcessWatermark(std::int64_t watermark, Emitter* out);

  const ExactWindowedBoltConfig config_;
  ExactWindowOperator operator_;
  std::unique_ptr<WindowManager> manager_;
  WorkerMetrics* metrics_ = nullptr;
  std::int64_t sequence_ = 0;  ///< count-based coordinate assignment
};

/// \brief Incremental ("Inc-Storm") windowed stateful stage. Non-holistic
/// aggregates only (checked at construction).
class IncrementalWindowedBolt : public Bolt {
 public:
  IncrementalWindowedBolt(WindowSpec window, AggregateSpec aggregate,
                          ValueExtractor value_extractor,
                          KeyExtractor key_extractor = nullptr);

  Status Prepare(const BoltContext& ctx) override;
  Status Execute(const Tuple& tuple, Emitter* out) override;
  Status OnWatermark(Timestamp watermark, Emitter* out) override;

 private:
  Status ProcessWatermark(std::int64_t watermark, Emitter* out);

  const WindowSpec window_;
  IncrementalOperator operator_;
  WorkerMetrics* metrics_ = nullptr;
  std::int64_t sequence_ = 0;
};

}  // namespace spear
