#include "runtime/topk_bolt.h"

#include "common/time.h"

namespace spear {

TopKBolt::TopKBolt(WindowSpec window, KeyExtractor key, std::size_t k)
    : window_(window),
      key_(std::move(key)),
      k_(k),
      last_watermark_(kMinTimestamp) {
  SPEAR_CHECK(window_.IsValid());
  SPEAR_CHECK(static_cast<bool>(key_));
  SPEAR_CHECK(k_ > 0);
}

Status TopKBolt::Prepare(const BoltContext& ctx) {
  metrics_ = ctx.metrics;
  return Status::OK();
}

Status TopKBolt::Execute(const Tuple& tuple, Emitter* out) {
  std::int64_t coord;
  if (window_.type == WindowType::kCountBased) {
    coord = sequence_++;
  } else {
    coord = tuple.event_time();
  }
  if (coord >= last_watermark_) {
    const std::string key = key_(tuple);
    for (const WindowBounds& w : AssignWindows(window_, coord)) {
      auto it = trackers_.find(w.start);
      if (it == trackers_.end()) {
        auto tracker = SpaceSaving::Make(k_);
        if (!tracker.ok()) return tracker.status();
        it = trackers_.emplace(w.start, std::move(*tracker)).first;
      }
      it->second.Add(key);
    }
  }
  if (window_.type == WindowType::kCountBased) {
    return ProcessWatermark(sequence_, out);
  }
  return Status::OK();
}

Status TopKBolt::OnWatermark(Timestamp watermark, Emitter* out) {
  if (window_.type == WindowType::kCountBased) return Status::OK();
  return ProcessWatermark(watermark, out);
}

Status TopKBolt::ProcessWatermark(std::int64_t watermark, Emitter* out) {
  watermark = ClampWatermark(window_, watermark);
  if (watermark <= last_watermark_) return Status::OK();
  last_watermark_ = watermark;
  while (!trackers_.empty() &&
         trackers_.begin()->first + window_.range <= watermark) {
    auto it = trackers_.begin();
    std::int64_t ns = 0;
    {
      ScopedTimerNs timer(&ns);
      const WindowBounds bounds{it->first, it->first + window_.range};
      for (const SpaceSaving::ItemEstimate& item : it->second.TopK()) {
        out->Emit(Tuple(
            bounds.end,
            {Value(bounds.start), Value(bounds.end), Value(item.key),
             Value(static_cast<double>(item.count)),
             Value(std::int64_t{1}),
             Value(static_cast<double>(item.error))}));
      }
    }
    if (metrics_ != nullptr) metrics_->RecordWindowNs(ns);
    trackers_.erase(it);
  }
  return Status::OK();
}

}  // namespace spear
