#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sketch/hash.h"
#include "tuple/field_extractor.h"
#include "tuple/tuple.h"

/// \file partitioner.h
/// Tuple routing between stages ("the propagation of tuples between
/// execution stages materializes using partitioning techniques",
/// paper Sec. 2): shuffle (round-robin), fields (hash of a key — Storm's
/// fields grouping), and global (everything to task 0).

namespace spear {

enum class PartitionKind : std::uint8_t { kShuffle, kFields, kGlobal };

/// \brief Routing policy from one stage to the next.
class Partitioner {
 public:
  static Partitioner Shuffle() { return Partitioner(PartitionKind::kShuffle); }
  static Partitioner Global() { return Partitioner(PartitionKind::kGlobal); }
  /// Fields grouping on the given key extractor: equal keys always land on
  /// the same downstream task (required for grouped stateful operations).
  static Partitioner Fields(KeyExtractor key) {
    Partitioner p(PartitionKind::kFields);
    p.key_ = std::move(key);
    return p;
  }

  PartitionKind kind() const { return kind_; }

  /// Target task in [0, parallelism) for this tuple. `rr_state` is the
  /// caller-owned round-robin cursor (per emitting worker, so shuffle
  /// needs no synchronization).
  int TargetTask(const Tuple& tuple, int parallelism,
                 std::uint64_t* rr_state) const {
    if (parallelism <= 1) return 0;
    switch (kind_) {
      case PartitionKind::kShuffle:
        return static_cast<int>((*rr_state)++ %
                                static_cast<std::uint64_t>(parallelism));
      case PartitionKind::kFields:
        return static_cast<int>(HashString(key_(tuple), /*seed=*/71) %
                                static_cast<std::uint64_t>(parallelism));
      case PartitionKind::kGlobal:
        return 0;
    }
    return 0;
  }

 private:
  explicit Partitioner(PartitionKind kind) : kind_(kind) {}

  PartitionKind kind_;
  KeyExtractor key_;
};

}  // namespace spear
