#include "runtime/executor.h"

#include <algorithm>
#include <thread>

#include "common/logging.h"
#include "common/time.h"
#include "window/watermark.h"

namespace spear {

/// One item on an inter-stage channel.
struct Executor::Element {
  enum class Kind : std::uint8_t { kTuple, kWatermark, kFlush };

  Kind kind = Kind::kTuple;
  int from_channel = 0;
  Timestamp watermark = kMinTimestamp;
  Tuple tuple;

  static Element MakeTuple(Tuple t, int from) {
    Element e;
    e.kind = Kind::kTuple;
    e.from_channel = from;
    e.tuple = std::move(t);
    return e;
  }
  static Element MakeWatermark(Timestamp wm, int from) {
    Element e;
    e.kind = Kind::kWatermark;
    e.from_channel = from;
    e.watermark = wm;
    return e;
  }
  static Element MakeFlush(int from) {
    Element e;
    e.kind = Kind::kFlush;
    e.from_channel = from;
    return e;
  }
};

namespace {

using ElementQueue = BlockingQueue<Executor::Element>;

}  // namespace

/// Routes a worker's emissions to the next stage (or the output sink).
class Executor::StageEmitter : public Emitter {
 public:
  StageEmitter(int my_task, const Partitioner* next_partitioner,
               std::vector<ElementQueue*> next_queues,
               WorkerMetrics* metrics, std::vector<Tuple>* output,
               std::mutex* output_mutex)
      : my_task_(my_task),
        next_partitioner_(next_partitioner),
        next_queues_(std::move(next_queues)),
        metrics_(metrics),
        output_(output),
        output_mutex_(output_mutex) {}

  void Emit(Tuple tuple) override {
    if (metrics_ != nullptr) metrics_->AddTuplesOut(1);
    if (next_queues_.empty()) {
      std::lock_guard<std::mutex> lock(*output_mutex_);
      output_->push_back(std::move(tuple));
      return;
    }
    const int target = next_partitioner_->TargetTask(
        tuple, static_cast<int>(next_queues_.size()), &rr_state_);
    next_queues_[static_cast<std::size_t>(target)]->Push(
        Element::MakeTuple(std::move(tuple), my_task_));
  }

  void Broadcast(Element element) {
    for (ElementQueue* q : next_queues_) {
      Element copy = element;
      q->Push(std::move(copy));
    }
  }

  bool HasDownstream() const { return !next_queues_.empty(); }

 private:
  const int my_task_;
  const Partitioner* next_partitioner_;
  std::vector<ElementQueue*> next_queues_;
  WorkerMetrics* metrics_;
  std::vector<Tuple>* output_;
  std::mutex* output_mutex_;
  std::uint64_t rr_state_ = 0;
};

Result<RunReport> Executor::Run() {
  const std::size_t num_stages = topology_.stages.size();

  RunReport report;

  // --- Wiring (single-threaded setup) ------------------------------------
  // queues[i][t]: input queue of stage i, task t.
  std::vector<std::vector<std::unique_ptr<ElementQueue>>> queues(num_stages);
  for (std::size_t i = 0; i < num_stages; ++i) {
    const int p = topology_.stages[i].parallelism;
    for (int t = 0; t < p; ++t) {
      queues[i].push_back(
          std::make_unique<ElementQueue>(topology_.queue_capacity));
    }
  }

  std::mutex output_mutex;
  std::mutex error_mutex;
  Status first_error = Status::OK();
  std::atomic<bool> failed{false};

  auto record_error = [&](const Status& status) {
    bool expected = false;
    if (failed.compare_exchange_strong(expected, true)) {
      std::lock_guard<std::mutex> lock(error_mutex);
      first_error = status;
    }
    // Unblock everyone: closing the queues makes pending Push/Pop return.
    for (auto& stage_queues : queues) {
      for (auto& q : stage_queues) q->Close();
    }
  };

  auto queues_of_stage = [&](std::size_t i) {
    std::vector<ElementQueue*> out;
    for (auto& q : queues[i]) out.push_back(q.get());
    return out;
  };

  // --- Worker threads -----------------------------------------------------
  std::vector<std::thread> threads;
  threads.reserve(1 + num_stages * 8);

  for (std::size_t i = 0; i < num_stages; ++i) {
    const StageSpec& stage = topology_.stages[i];
    const Partitioner* next_partitioner =
        i + 1 < num_stages ? &topology_.stages[i + 1].input_partitioner
                           : nullptr;

    for (int task = 0; task < stage.parallelism; ++task) {
      WorkerMetrics* metrics = report.metrics.Register(stage.name, task);
      ElementQueue* in_queue = queues[i][static_cast<std::size_t>(task)].get();
      std::vector<ElementQueue*> next_queues =
          i + 1 < num_stages ? queues_of_stage(i + 1)
                             : std::vector<ElementQueue*>{};

      threads.emplace_back([&, i, task, metrics, in_queue,
                            next_partitioner,
                            next_queues = std::move(next_queues)]() mutable {
        const StageSpec& my_stage = topology_.stages[i];
        StageEmitter emitter(task, next_partitioner, std::move(next_queues),
                             metrics, &report.output, &output_mutex);

        std::unique_ptr<Bolt> bolt = my_stage.bolt_factory(task);
        if (bolt == nullptr) {
          record_error(Status::Internal("stage '" + my_stage.name +
                                        "' factory returned null bolt"));
          return;
        }
        BoltContext ctx;
        ctx.task_id = task;
        ctx.parallelism = my_stage.parallelism;
        ctx.metrics = metrics;
        if (Status s = bolt->Prepare(ctx); !s.ok()) {
          record_error(s);
          return;
        }

        const int channels = i == 0 ? 1 : topology_.stages[i - 1].parallelism;
        std::vector<Timestamp> channel_wm(
            static_cast<std::size_t>(channels), kMinTimestamp);
        std::vector<bool> channel_flushed(
            static_cast<std::size_t>(channels), false);
        int flushed_count = 0;
        Timestamp local_wm = kMinTimestamp;

        while (!failed.load(std::memory_order_relaxed)) {
          std::optional<Element> element = in_queue->Pop();
          if (!element.has_value()) break;  // closed (cancelled run)

          switch (element->kind) {
            case Element::Kind::kTuple: {
              metrics->AddTuplesIn(1);
              std::int64_t busy = 0;
              Status s;
              {
                ScopedTimerNs timer(&busy);
                s = bolt->Execute(element->tuple, &emitter);
              }
              metrics->AddBusyNs(busy);
              if (!s.ok()) {
                record_error(s);
                return;
              }
              break;
            }
            case Element::Kind::kWatermark: {
              auto& ch = channel_wm[static_cast<std::size_t>(
                  element->from_channel)];
              ch = std::max(ch, element->watermark);
              const Timestamp aligned =
                  *std::min_element(channel_wm.begin(), channel_wm.end());
              if (aligned > local_wm) {
                local_wm = aligned;
                std::int64_t busy = 0;
                Status s;
                {
                  ScopedTimerNs timer(&busy);
                  s = bolt->OnWatermark(local_wm, &emitter);
                }
                metrics->AddBusyNs(busy);
                if (!s.ok()) {
                  record_error(s);
                  return;
                }
                if (emitter.HasDownstream()) {
                  emitter.Broadcast(Element::MakeWatermark(local_wm, task));
                }
              }
              break;
            }
            case Element::Kind::kFlush: {
              auto flushed_flag = channel_flushed.begin() +
                                  element->from_channel;
              if (!*flushed_flag) {
                *flushed_flag = true;
                ++flushed_count;
              }
              if (flushed_count == channels) {
                if (Status s = bolt->Finish(&emitter); !s.ok()) {
                  record_error(s);
                  return;
                }
                if (emitter.HasDownstream()) {
                  emitter.Broadcast(Element::MakeFlush(task));
                }
                return;  // worker done
              }
              break;
            }
          }
        }
      });
    }
  }

  // --- Source thread ------------------------------------------------------
  threads.emplace_back([&]() {
    StageEmitter emitter(0, &topology_.stages[0].input_partitioner,
                         queues_of_stage(0), nullptr, &report.output,
                         &output_mutex);
    // With interval <= 0 the generator is never consulted: only the final
    // end-of-stream watermark fires.
    WatermarkGenerator generator(
        std::max<DurationMs>(topology_.source.watermark_interval, 1),
        topology_.source.max_lateness);

    Tuple tuple;
    while (!failed.load(std::memory_order_relaxed) &&
           topology_.source.spout->Next(&tuple)) {
      const Timestamp t = tuple.event_time();
      emitter.Emit(std::move(tuple));
      if (topology_.source.watermark_interval > 0 && generator.Observe(t)) {
        emitter.Broadcast(Element::MakeWatermark(generator.current(), 0));
      }
      tuple = Tuple();
    }
    // Final watermark releases every buffered window, then flush.
    emitter.Broadcast(
        Element::MakeWatermark(WatermarkGenerator::FinalWatermark(), 0));
    emitter.Broadcast(Element::MakeFlush(0));
  });

  for (std::thread& t : threads) t.join();

  if (failed.load()) {
    std::lock_guard<std::mutex> lock(error_mutex);
    return first_error;
  }
  return report;
}

}  // namespace spear
