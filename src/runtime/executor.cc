#include "runtime/executor.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <exception>
#include <iterator>
#include <string>
#include <thread>
#include <unordered_set>
#include <utility>

#include "checkpoint/checkpoint.h"
#include "checkpoint/checkpointable.h"
#include "common/logging.h"
#include "common/retry_policy.h"
#include "common/time.h"
#include "runtime/overload.h"
#include "storage/secondary_storage.h"
#include "window/watermark.h"

namespace spear {

/// One item on an inter-stage channel.
struct Executor::Element {
  enum class Kind : std::uint8_t { kTuple, kWatermark, kFlush, kAnomaly };

  Kind kind = Kind::kTuple;
  int from_channel = 0;
  Timestamp watermark = kMinTimestamp;
  Tuple tuple;

  static Element MakeTuple(Tuple t, int from) {
    Element e;
    e.kind = Kind::kTuple;
    e.from_channel = from;
    e.tuple = std::move(t);
    return e;
  }
  static Element MakeWatermark(Timestamp wm, int from) {
    Element e;
    e.kind = Kind::kWatermark;
    e.from_channel = from;
    e.watermark = wm;
    return e;
  }
  static Element MakeFlush(int from) {
    Element e;
    e.kind = Kind::kFlush;
    e.from_channel = from;
    return e;
  }
  /// Delivery anomaly: the stream was closed abnormally upstream (e.g. a
  /// stalled source given up on by the watermark watchdog); an unknown
  /// suffix of the input may never arrive.
  static Element MakeAnomaly(int from) {
    Element e;
    e.kind = Kind::kAnomaly;
    e.from_channel = from;
    return e;
  }
};

namespace {

using ElementQueue = BlockingQueue<Executor::Element>;

/// Converts whatever a bolt callback throws into a Status of `code`.
/// Bolts are supposed to be exception-free (the Status idiom), but a
/// supervised runtime must not let one escaping exception tear the
/// process down via std::terminate on the worker thread.
template <typename Fn>
Status GuardedBoltCall(StatusCode code, const char* what, Fn&& fn) {
  try {
    return fn();
  } catch (const std::exception& ex) {
    return Status(code, std::string(what) + " threw: " + ex.what());
  } catch (...) {
    return Status(code, std::string(what) + " threw a non-std exception");
  }
}

/// Window-result deduplication around a crash/restore cycle.
///
/// Wraps a checkpointable worker's emitter and keys every emitted window
/// result by (window start, window end[, group key]) — the leading fields
/// of the WindowResultToTuples layout. Keys are recorded always; emissions
/// are *suppressed* only while armed, i.e. during recovery catch-up, when
/// the restored manager re-closes windows that were already delivered
/// before the crash. The seen set is cleared after every successful
/// snapshot: windows emitted before a snapshot are no longer part of any
/// restorable state, so they can never re-emit.
class WindowDedupEmitter : public Emitter {
 public:
  explicit WindowDedupEmitter(Emitter* inner) : inner_(inner) {}

  void Emit(Tuple tuple) override {
    std::string key;
    if (ResultKey(tuple, &key)) {
      const bool fresh = seen_.insert(std::move(key)).second;
      if (!fresh && armed_) return;  // already delivered before the crash
    }
    inner_->Emit(std::move(tuple));
  }

  void Arm() { armed_ = true; }
  void Disarm() { armed_ = false; }
  void ClearSeen() { seen_.clear(); }

 private:
  static bool ResultKey(const Tuple& tuple, std::string* key) {
    if (tuple.num_fields() < 2 || !tuple.field(0).is_int64() ||
        !tuple.field(1).is_int64()) {
      return false;
    }
    *key = std::to_string(tuple.field(0).AsInt64()) + "|" +
           std::to_string(tuple.field(1).AsInt64());
    if (tuple.num_fields() > 2 && tuple.field(2).is_string()) {
      // Grouped layout: one result tuple per (window, group).
      *key += "|" + tuple.field(2).AsString();
    }
    return true;
  }

  Emitter* inner_;
  bool armed_ = false;
  std::unordered_set<std::string> seen_;
};

}  // namespace

/// Routes a worker's emissions to the next stage (or the output sink).
///
/// Tuple emissions are micro-batched per target queue: up to
/// `batch_max_tuples` tuples accumulate in a per-target buffer and move
/// downstream under one lock acquisition (BlockingQueue::PushAll). Buffers
/// flush unconditionally before any Broadcast (watermark/flush) and before
/// the owning worker blocks on an empty input queue, so tuples are never
/// reordered across a control element on their channel and never held back
/// while the pipeline idles. Per-channel FIFO order is preserved exactly:
/// batching only changes how many queue operations carry it.
class Executor::StageEmitter : public Emitter {
 public:
  StageEmitter(int my_task, const Partitioner* next_partitioner,
               std::vector<ElementQueue*> next_queues, std::size_t batch_max,
               WorkerMetrics* metrics, std::vector<Tuple>* local_output,
               obs::Counter* obs_backpressure_ns = nullptr)
      : my_task_(my_task),
        next_partitioner_(next_partitioner),
        next_queues_(std::move(next_queues)),
        batch_max_(std::max<std::size_t>(batch_max, 1)),
        metrics_(metrics),
        local_output_(local_output),
        obs_backpressure_ns_(obs_backpressure_ns) {
    buffers_.resize(next_queues_.size());
    for (auto& buffer : buffers_) buffer.reserve(batch_max_);
  }

  void Emit(Tuple tuple) override {
    if (metrics_ != nullptr) metrics_->AddTuplesOut(1);
    if (next_queues_.empty()) {
      // Sink stage: collect into the worker's private vector (merged once
      // after join) instead of contending on a shared output lock.
      local_output_->push_back(std::move(tuple));
      return;
    }
    const auto target = static_cast<std::size_t>(next_partitioner_->TargetTask(
        tuple, static_cast<int>(next_queues_.size()), &rr_state_));
    std::vector<Element>& buffer = buffers_[target];
    // Build the element in place (a temporary would cost an extra move of
    // the whole Element on this per-tuple path).
    Element& element = buffer.emplace_back();
    element.from_channel = my_task_;
    element.tuple = std::move(tuple);
    if (buffer.size() >= batch_max_) Flush(target);
  }

  /// Pushes every buffered tuple downstream immediately.
  void FlushAll() {
    for (std::size_t t = 0; t < buffers_.size(); ++t) Flush(t);
  }

  /// Sends a control element to every downstream queue, after flushing all
  /// buffered tuples so nothing is reordered across it. Control elements
  /// use the queue's reserved headroom (PushControl): a watermark or flush
  /// must never sit blocked behind a saturated data queue, or back-pressure
  /// would delay the very window closings that drain it.
  void Broadcast(Element element) {
    FlushAll();
    const std::size_t n = next_queues_.size();
    if (n == 0) return;
    for (std::size_t q = 0; q + 1 < n; ++q) {
      next_queues_[q]->PushControl(element);  // copy for all but the last...
    }
    next_queues_[n - 1]->PushControl(std::move(element));  // ...which moves
  }

  bool HasDownstream() const { return !next_queues_.empty(); }

 private:
  void Flush(std::size_t target) {
    std::vector<Element>& buffer = buffers_[target];
    if (buffer.empty()) return;
    std::int64_t blocked_ns = 0;
    next_queues_[target]->PushAll(std::move(buffer), &blocked_ns);
    if (blocked_ns > 0 && metrics_ != nullptr) {
      metrics_->AddBackpressureNs(blocked_ns);
    }
    if (blocked_ns > 0 && obs_backpressure_ns_ != nullptr) {
      obs_backpressure_ns_->Add(static_cast<std::uint64_t>(blocked_ns));
    }
    // The vector's storage was handed to the queue as a whole batch node;
    // start a fresh allocation for the next batch.
    buffer.reserve(batch_max_);
  }

  const int my_task_;
  const Partitioner* next_partitioner_;
  std::vector<ElementQueue*> next_queues_;
  const std::size_t batch_max_;
  WorkerMetrics* metrics_;
  std::vector<Tuple>* local_output_;
  obs::Counter* obs_backpressure_ns_;
  std::vector<std::vector<Element>> buffers_;
  std::uint64_t rr_state_ = 0;
};

Result<RunReport> Executor::Run() {
  const std::size_t num_stages = topology_.stages.size();
  const std::size_t batch_max =
      std::max<std::size_t>(topology_.batch_max_tuples, 1);

  RunReport report;

  // Re-arm the storages' simulated latency (a previous cancelled run may
  // have tripped their stop flag).
  for (SecondaryStorage* s : topology_.storages) s->ResetSimulatedLatency();

  // Checkpoint/recovery wiring. A run-private in-memory store is enough
  // for in-process worker restarts; an external store (file-backed) only
  // matters when the caller wants snapshots to outlive the process.
  const CheckpointConfig& ckpt = topology_.checkpoint;
  std::unique_ptr<InMemoryCheckpointStore> private_store;
  CheckpointStore* ckpt_store = ckpt.store;
  if (ckpt.enabled && ckpt_store == nullptr) {
    private_store = std::make_unique<InMemoryCheckpointStore>();
    ckpt_store = private_store.get();
  }
  // Source replay offset at the last completed NextBatch, recorded into
  // snapshot headers (advisory: in-process recovery replays from the
  // per-worker log; the offset lets an external driver re-seek a
  // re-created source after a full-process restart).
  std::atomic<std::uint64_t> source_offset{0};

  // --- Overload-control wiring -------------------------------------------
  // One detector per stage when a latency SLO is armed; bolts honoring
  // BoltContext::overload (SpearBolt) shed admissions while it is tripped.
  std::vector<std::unique_ptr<OverloadDetector>> detectors(num_stages);
  if (topology_.overload.ShedEnabled()) {
    for (std::size_t i = 0; i < num_stages; ++i) {
      detectors[i] = std::make_unique<OverloadDetector>(
          topology_.stages[i].name, topology_.overload);
    }
  }
  // --- Observability wiring ----------------------------------------------
  // Null unless `.Metrics()` / `.Trace()` were requested: an unobserved
  // topology pays pointer checks at wiring time and nothing on the hot
  // path. Shards/tracers are created here (single-threaded) so workers
  // never contend on registration.
  const obs::ObsConfig& obs_cfg = topology_.obs;
  std::unique_ptr<obs::MetricsRegistry> obs_registry;
  if (obs_cfg.metrics_enabled) {
    obs_registry = std::make_unique<obs::MetricsRegistry>();
  }
  std::vector<std::unique_ptr<obs::WindowTracer>> tracers;
  obs::PeriodicSampler sampler(obs_registry.get(), obs_cfg.metrics);

  // The source's emitter is not a registered worker (the registry's size
  // is observable by callers); its back-pressure counters are folded into
  // report.overload after the join.
  WorkerMetrics source_metrics("source", 0);
  // Source-side signals read by workers (watermark lag) and the watchdog
  // (stall detection).
  std::atomic<Timestamp> source_wm{kMinTimestamp};
  std::atomic<std::uint64_t> source_progress{0};
  // Whoever CASes this false->true owns the stream close (final watermark
  // + flush): the source thread at end-of-stream, or the watchdog when it
  // declares the source stalled. Exactly one of them broadcasts.
  std::atomic<bool> source_closed{false};
  std::atomic<std::uint64_t> watchdog_advances{0};
  std::atomic<bool> watchdog_stop{false};

  // Dead-letter retention cap, shared across workers (admission counter);
  // the overflow is counted, not retained.
  const std::size_t max_dead_letters = topology_.max_dead_letters;
  std::atomic<std::uint64_t> dead_letters_admitted{0};
  std::atomic<std::uint64_t> dropped_dead_letters{0};

  // --- Wiring (single-threaded setup) ------------------------------------
  // queues[i][t]: input queue of stage i, task t.
  std::vector<std::vector<std::unique_ptr<ElementQueue>>> queues(num_stages);
  for (std::size_t i = 0; i < num_stages; ++i) {
    const int p = topology_.stages[i].parallelism;
    for (int t = 0; t < p; ++t) {
      queues[i].push_back(
          std::make_unique<ElementQueue>(topology_.queue_capacity));
    }
  }

  // One private output vector per sink-stage worker, merged after join in
  // task order (no cross-worker ordering is promised, with or without the
  // merge — per-worker order is what stays deterministic). Dead letters
  // follow the same pattern across every stage's workers.
  std::vector<std::vector<Tuple>> sink_outputs(
      static_cast<std::size_t>(topology_.stages[num_stages - 1].parallelism));
  std::size_t total_workers = 0;
  for (const StageSpec& s : topology_.stages) {
    total_workers += static_cast<std::size_t>(s.parallelism);
  }
  std::vector<std::vector<DeadLetter>> worker_dead_letters(total_workers);

  std::mutex error_mutex;
  Status first_error = Status::OK();
  std::vector<Status> suppressed_errors;
  std::atomic<bool> failed{false};

  // Keeps the *first* error deterministically; later distinct errors are
  // appended to the suppressed list (duplicates dropped) so multi-worker
  // failures stay debuggable instead of silently losing all but one.
  auto record_error = [&](const Status& status) {
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      bool expected = false;
      if (failed.compare_exchange_strong(expected, true)) {
        first_error = status;
      } else if (suppressed_errors.size() < max_dead_letters &&
                 !(status == first_error) &&
                 std::find(suppressed_errors.begin(), suppressed_errors.end(),
                           status) == suppressed_errors.end()) {
        suppressed_errors.push_back(status);
      }
    }
    // Unblock everyone: closing the queues makes pending Push/Pop return,
    // cancelling simulated storage latency makes workers unwinding through
    // a storage call stop busy-waiting, and the cancel hooks unstick
    // operators blocked outside the executor's control (stalled spouts).
    for (auto& stage_queues : queues) {
      for (auto& q : stage_queues) q->Close();
    }
    for (SecondaryStorage* s : topology_.storages) s->CancelSimulatedLatency();
    for (const auto& hook : topology_.cancel_hooks) hook();
  };

  auto queues_of_stage = [&](std::size_t i) {
    std::vector<ElementQueue*> out;
    for (auto& q : queues[i]) out.push_back(q.get());
    return out;
  };

  // --- Worker threads -----------------------------------------------------
  std::vector<std::thread> threads;
  threads.reserve(1 + total_workers);

  std::size_t worker_index = 0;
  for (std::size_t i = 0; i < num_stages; ++i) {
    const StageSpec& stage = topology_.stages[i];
    const Partitioner* next_partitioner =
        i + 1 < num_stages ? &topology_.stages[i + 1].input_partitioner
                           : nullptr;

    for (int task = 0; task < stage.parallelism; ++task) {
      WorkerMetrics* metrics = report.metrics.Register(stage.name, task);
      obs::MetricsShard* obs_shard =
          obs_registry != nullptr ? obs_registry->GetShard(stage.name, task)
                                  : nullptr;
      obs::WindowTracer* tracer = nullptr;
      if (obs_cfg.trace_enabled) {
        tracers.push_back(std::make_unique<obs::WindowTracer>(obs_cfg.trace));
        tracer = tracers.back().get();
      }
      ElementQueue* in_queue = queues[i][static_cast<std::size_t>(task)].get();
      std::vector<ElementQueue*> next_queues =
          i + 1 < num_stages ? queues_of_stage(i + 1)
                             : std::vector<ElementQueue*>{};
      std::vector<Tuple>* sink_output =
          i + 1 == num_stages ? &sink_outputs[static_cast<std::size_t>(task)]
                              : nullptr;
      std::vector<DeadLetter>* dead_letters =
          &worker_dead_letters[worker_index++];

      threads.emplace_back([&, i, task, metrics, in_queue, next_partitioner,
                            sink_output, dead_letters, obs_shard, tracer,
                            next_queues = std::move(next_queues)]() mutable {
        const StageSpec& my_stage = topology_.stages[i];
        // Resolve this worker's instruments once; updates are lock-free.
        obs::Counter* obs_backpressure = nullptr;
        obs::Counter* obs_tuples_in = nullptr;
        obs::Counter* obs_batches = nullptr;
        obs::Counter* obs_snapshots = nullptr;
        obs::Counter* obs_snapshot_bytes = nullptr;
        obs::Counter* obs_restores = nullptr;
        obs::Gauge* obs_queue_depth = nullptr;
        obs::Gauge* obs_shed_probability = nullptr;
        if (obs_shard != nullptr) {
          obs_backpressure = obs_shard->GetCounter("backpressure_wait_ns");
          obs_tuples_in = obs_shard->GetCounter("tuples_in");
          obs_batches = obs_shard->GetCounter("batches_popped");
          obs_snapshots = obs_shard->GetCounter("checkpoint_snapshots");
          obs_snapshot_bytes = obs_shard->GetCounter("checkpoint_bytes");
          obs_restores = obs_shard->GetCounter("checkpoint_restores");
          obs_queue_depth = obs_shard->GetGauge("queue_depth");
          obs_shard->GetGauge("queue_capacity")
              ->Set(static_cast<double>(in_queue->capacity()));
          if (detectors[i] != nullptr) {
            obs_shed_probability = obs_shard->GetGauge("shed_probability");
          }
        }
        StageEmitter emitter(task, next_partitioner, std::move(next_queues),
                             batch_max, metrics, sink_output,
                             obs_backpressure);

        std::unique_ptr<Bolt> bolt = my_stage.bolt_factory(task);
        if (bolt == nullptr) {
          record_error(Status::Internal("stage '" + my_stage.name +
                                        "' factory returned null bolt"));
          return;
        }
        OverloadDetector* const detector = detectors[i].get();
        BoltContext ctx;
        ctx.task_id = task;
        ctx.parallelism = my_stage.parallelism;
        ctx.metrics = metrics;
        ctx.overload = detector;
        ctx.obs = obs_shard;
        ctx.tracer = tracer;
        if (Status s = GuardedBoltCall(
                StatusCode::kInternal, "bolt prepare",
                [&] { return bolt->Prepare(ctx); });
            !s.ok()) {
          record_error(s);
          return;
        }

        // Deterministic per-worker jitter stream for retry backoff.
        const std::uint64_t retry_seed =
            (static_cast<std::uint64_t>(i) << 32) ^
            static_cast<std::uint64_t>(task) ^ 0x5EA45EA4ULL;

        // --- Checkpoint/recovery state (inert when checkpointing is off:
        // cp stays null, no logging, no snapshots, no dedup hashing) ----
        Checkpointable* cp = ckpt.enabled ? bolt->checkpointable() : nullptr;
        const bool log_replay = cp != nullptr;
        WindowDedupEmitter dedup(&emitter);
        Emitter* const bolt_out =
            log_replay ? static_cast<Emitter*>(&dedup) : &emitter;
        std::deque<Tuple> replay_log;
        std::uint64_t consumed_since_snapshot = 0;
        Timestamp last_snapshot_wm = kMinTimestamp;
        std::uint64_t snapshot_seq = 0;
        int restarts = 0;

        const int channels = i == 0 ? 1 : topology_.stages[i - 1].parallelism;
        std::vector<Timestamp> channel_wm(
            static_cast<std::size_t>(channels), kMinTimestamp);
        std::vector<bool> channel_flushed(
            static_cast<std::size_t>(channels), false);
        int flushed_count = 0;
        Timestamp local_wm = kMinTimestamp;
        bool anomaly_seen = false;

        // Tears a failed bolt down and rebuilds it in place: fresh
        // instance, state restored from the latest valid snapshot, replay
        // log re-fed, windows re-closed up to the worker's watermark with
        // duplicate results suppressed. Returns OK when the worker may
        // keep consuming; otherwise the error that cancels the run.
        auto attempt_recovery = [&](const Status& cause) -> Status {
          if (!ckpt.enabled || failed.load(std::memory_order_relaxed)) {
            return cause;
          }
          if (restarts >= ckpt.max_recoveries_per_worker) {
            return Status(cause.code(),
                          "worker recovery budget exhausted after " +
                              std::to_string(restarts) +
                              " restarts: " + cause.message());
          }
          ++restarts;
          metrics->AddWorkerRestarts(1);
          if (obs_restores != nullptr) obs_restores->Increment();
          bolt = my_stage.bolt_factory(task);
          if (bolt == nullptr) {
            return Status::Internal("stage '" + my_stage.name +
                                    "' factory returned null bolt during "
                                    "recovery");
          }
          if (Status s = GuardedBoltCall(
                  StatusCode::kInternal, "bolt prepare (recovery)",
                  [&] { return bolt->Prepare(ctx); });
              !s.ok()) {
            return s;
          }
          cp = bolt->checkpointable();
          if (cp == nullptr) return Status::OK();  // stateless: fresh bolt

          // kNotFound = crash before the first snapshot: start from fresh
          // state, the whole replay log re-feeds it.
          Result<CheckpointSnapshot> snap =
              ckpt_store->Latest(my_stage.name, task);
          if (snap.ok()) {
            if (Status s = cp->RestoreState(snap->payload); !s.ok()) {
              return s;
            }
          } else if (!snap.status().IsNotFound()) {
            return snap.status();
          }
          // Catch back up. The dedup emitter is armed so windows that
          // were already delivered before the crash are suppressed —
          // downstream sees every window result at most once.
          dedup.Arm();
          Status catch_up = Status::OK();
          for (const Tuple& logged : replay_log) {
            Status es = GuardedBoltCall(
                StatusCode::kInvalidArgument, "bolt execute (replay)",
                [&] { return bolt->Execute(logged, bolt_out); });
            if (!es.ok() && ClassifyFailure(es) == FailureClass::kFatal) {
              catch_up = es;
              break;
            }
            // Transient/data replay failures: the tuple was already
            // retried or quarantined on first delivery; skip it here.
          }
          if (catch_up.ok() && local_wm != kMinTimestamp) {
            catch_up = GuardedBoltCall(
                StatusCode::kInternal, "bolt watermark (recovery)",
                [&] { return bolt->OnWatermark(local_wm, bolt_out); });
            if (catch_up.ok() && emitter.HasDownstream()) {
              // Downstream alignment is max-based per channel, so
              // re-announcing the same watermark is idempotent.
              emitter.Broadcast(Element::MakeWatermark(local_wm, task));
            }
          }
          dedup.Disarm();
          // Tuples consumed since the snapshot that fell off the bounded
          // log are unrecoverable; fold them into the affected windows'
          // error estimates instead of silently ignoring them. This must
          // happen AFTER the catch-up: during replay the "next window
          // that opens" is an already-delivered one whose re-emission the
          // dedup suppresses, so loss noted before replay could vanish
          // from the output. Noted here, it lands on the windows still
          // active across the crash (or the next genuinely new window).
          if (catch_up.ok() && consumed_since_snapshot > replay_log.size()) {
            cp->NoteRecoveryLoss(consumed_since_snapshot -
                                 replay_log.size());
          }
          return catch_up;
        };

        std::vector<Element> batch;
        batch.reserve(batch_max);
        std::uint32_t obs_gauge_tick = 0;

        while (!failed.load(std::memory_order_relaxed)) {
          batch.clear();
          if (in_queue->TryPopAll(&batch, batch_max) == 0) {
            // About to sleep: hand any buffered output downstream first so
            // a starved consumer is never waiting on tuples we hold.
            emitter.FlushAll();
            if (in_queue->PopAll(&batch, batch_max) == 0) {
              break;  // closed (cancelled run)
            }
          }
          if (detector != nullptr) {
            // Occupancy at pop time (the popped batch counts): observed
            // before the batch is processed, so admission already sees the
            // ramped shed probability for these very tuples.
            detector->ObserveQueue(in_queue->size() + batch.size(),
                                   in_queue->capacity());
          }
          // Decimated 64x: a gauge is a point-in-time sample scraped at
          // ms-scale, while in_queue->size() takes the queue mutex — a
          // per-batch update would double lock traffic at batch size 1.
          if (obs_queue_depth != nullptr && (obs_gauge_tick++ & 63u) == 0) {
            obs_queue_depth->Set(
                static_cast<double>(in_queue->size() + batch.size()));
            if (obs_shed_probability != nullptr) {
              obs_shed_probability->Set(detector->shed_probability());
            }
          }

          // Drain the popped batch locally; metrics updates are batched —
          // one timer read pair and one AddTuplesIn/AddBusyNs per popped
          // batch instead of per tuple.
          std::uint64_t batch_tuples = 0;
          std::int64_t batch_busy = 0;
          Status status = Status::OK();
          bool finished = false;

          {
            ScopedTimerNs timer(&batch_busy);
            for (Element& element : batch) {
              switch (element.kind) {
                case Element::Kind::kTuple: {
                  ++batch_tuples;
                  // Crash site: consulted in every worker whenever an
                  // injector arms it, so a fired crash with checkpointing
                  // disabled fails the run — the recovery subsystem is
                  // load-bearing, not decorative.
                  if (topology_.fault_injector != nullptr &&
                      topology_.fault_injector->armed(
                          FaultSite::kWorkerCrash) &&
                      topology_.fault_injector->Tick(FaultSite::kWorkerCrash)
                          .fire) {
                    status = attempt_recovery(Status::Internal(
                        "injected fault: worker crash at stage '" +
                        my_stage.name + "' task " + std::to_string(task)));
                    if (!status.ok()) break;
                    // Recovered; the crash hit before this tuple was
                    // consumed, so it now processes normally.
                  }
                  if (log_replay) {
                    if (replay_log.size() >= ckpt.max_replay_tuples) {
                      replay_log.pop_front();  // oldest tuple becomes loss
                    }
                    replay_log.push_back(element.tuple);
                    ++consumed_since_snapshot;
                  }
                  // Supervised delivery: a thrown exception is a data
                  // error (confined to this tuple); transient failures
                  // are retried under the stage policy; what still fails
                  // non-transiently is quarantined, not fatal.
                  status = GuardedBoltCall(
                      StatusCode::kInvalidArgument, "bolt execute",
                      [&] { return bolt->Execute(element.tuple, bolt_out); });
                  int attempts = 1;
                  if (!status.ok() && my_stage.retry.enabled()) {
                    Backoff backoff(my_stage.retry, retry_seed);
                    std::int64_t delay_ns = 0;
                    while (!status.ok() &&
                           ClassifyFailure(status) ==
                               FailureClass::kTransient &&
                           !failed.load(std::memory_order_relaxed) &&
                           backoff.NextDelay(&delay_ns)) {
                      BackoffSleep(delay_ns, &failed);
                      metrics->AddRetries(1);
                      ++attempts;
                      status = GuardedBoltCall(
                          StatusCode::kInvalidArgument, "bolt execute",
                          [&] {
                            return bolt->Execute(element.tuple, bolt_out);
                          });
                      if (status.ok()) metrics->AddRecovered(1);
                    }
                  }
                  if (!status.ok() &&
                      ClassifyFailure(status) == FailureClass::kData) {
                    if (dead_letters_admitted.fetch_add(
                            1, std::memory_order_relaxed) <
                        max_dead_letters) {
                      dead_letters->push_back(
                          DeadLetter{my_stage.name, task, attempts, status,
                                     std::move(element.tuple)});
                    } else {
                      dropped_dead_letters.fetch_add(
                          1, std::memory_order_relaxed);
                    }
                    metrics->AddQuarantined(1);
                    status = Status::OK();  // the run goes on
                  }
                  if (!status.ok()) {
                    // Fatal or retry-exhausted: last resort is a restart
                    // from the checkpoint (the failing tuple is in the
                    // replay log; a deterministic failure exhausts the
                    // recovery budget and then cancels the run).
                    status = attempt_recovery(status);
                  }
                  break;
                }
                case Element::Kind::kWatermark: {
                  auto& ch = channel_wm[static_cast<std::size_t>(
                      element.from_channel)];
                  ch = std::max(ch, element.watermark);
                  const Timestamp aligned =
                      *std::min_element(channel_wm.begin(), channel_wm.end());
                  if (aligned > local_wm) {
                    local_wm = aligned;
                    if (detector != nullptr &&
                        local_wm != WatermarkGenerator::FinalWatermark()) {
                      // How far this stage's aligned watermark trails the
                      // source's: a healthy (zero-lag) observation decays
                      // the shed probability, a laggy one ratchets it.
                      const Timestamp src =
                          source_wm.load(std::memory_order_relaxed);
                      if (src != kMinTimestamp &&
                          src != WatermarkGenerator::FinalWatermark()) {
                        detector->ObserveWatermarkLag(
                            src > local_wm ? src - local_wm : 0);
                      }
                    }
                    // Watermark work is not idempotent (window state
                    // advances), so it is guarded but never retried; an
                    // escaped exception here is recovered from the
                    // checkpoint when enabled, fatal otherwise.
                    status = GuardedBoltCall(
                        StatusCode::kInternal, "bolt watermark", [&] {
                          return bolt->OnWatermark(local_wm, bolt_out);
                        });
                    if (status.ok()) {
                      if (emitter.HasDownstream()) {
                        emitter.Broadcast(
                            Element::MakeWatermark(local_wm, task));
                      }
                      if (log_replay && cp != nullptr &&
                          local_wm != WatermarkGenerator::FinalWatermark() &&
                          (last_snapshot_wm == kMinTimestamp ||
                           local_wm - last_snapshot_wm >=
                               static_cast<Timestamp>(ckpt.interval))) {
                        // Snapshot right after emission: just-closed
                        // windows are out of the state, so the payload is
                        // O(b) in the open windows' budgets.
                        Result<std::string> payload = cp->SnapshotState();
                        if (payload.ok()) {
                          CheckpointSnapshot snapshot;
                          snapshot.stage = my_stage.name;
                          snapshot.task = task;
                          snapshot.sequence = snapshot_seq++;
                          snapshot.watermark = local_wm;
                          snapshot.source_offset =
                              source_offset.load(std::memory_order_relaxed);
                          snapshot.payload = std::move(*payload);
                          if (ckpt_store->Put(snapshot).ok()) {
                            last_snapshot_wm = local_wm;
                            replay_log.clear();
                            consumed_since_snapshot = 0;
                            // Windows emitted up to here are in no
                            // restorable state anymore, so they can never
                            // re-emit: forget their keys.
                            dedup.ClearSeen();
                            metrics->AddSnapshots(1);
                            if (obs_snapshots != nullptr) {
                              obs_snapshots->Increment();
                              obs_snapshot_bytes->Add(
                                  snapshot.payload.size());
                            }
                          }
                          // A failed Put leaves the previous snapshot
                          // (and the longer replay log) in charge — the
                          // run itself is unaffected.
                        }
                      }
                    } else {
                      // Recovery re-runs the catch-up watermark and
                      // broadcasts it itself.
                      status = attempt_recovery(status);
                    }
                  }
                  break;
                }
                case Element::Kind::kAnomaly: {
                  // Deliver once per worker (each upstream task forwards
                  // its own copy), then propagate so every downstream
                  // stage learns the stream was cut short before its
                  // final watermark arrives.
                  if (!anomaly_seen) {
                    anomaly_seen = true;
                    status = GuardedBoltCall(
                        StatusCode::kInternal, "bolt delivery anomaly",
                        [&] { return bolt->OnDeliveryAnomaly(bolt_out); });
                    if (status.ok() && emitter.HasDownstream()) {
                      emitter.Broadcast(Element::MakeAnomaly(task));
                    }
                  }
                  break;
                }
                case Element::Kind::kFlush: {
                  auto flushed_flag = channel_flushed.begin() +
                                      element.from_channel;
                  if (!*flushed_flag) {
                    *flushed_flag = true;
                    ++flushed_count;
                  }
                  if (flushed_count == channels) {
                    status = GuardedBoltCall(
                        StatusCode::kInternal, "bolt finish",
                        [&] { return bolt->Finish(bolt_out); });
                    if (status.ok()) {
                      if (emitter.HasDownstream()) {
                        emitter.Broadcast(Element::MakeFlush(task));
                      }
                      finished = true;  // every upstream channel is done
                    }
                  }
                  break;
                }
              }
              if (!status.ok() || finished) break;
            }
          }

          metrics->AddTuplesIn(batch_tuples);
          metrics->AddBusyNs(batch_busy);
          if (obs_tuples_in != nullptr) {
            obs_tuples_in->Add(batch_tuples);
            obs_batches->Increment();
          }
          if (!status.ok()) {
            record_error(status);
            return;
          }
          if (finished) return;  // worker done
        }
      });
    }
  }

  // --- Source thread ------------------------------------------------------
  obs::MetricsShard* source_shard =
      obs_registry != nullptr ? obs_registry->GetShard("source", 0) : nullptr;
  threads.emplace_back([&, source_shard]() {
    obs::Counter* obs_emitted = nullptr;
    obs::Counter* obs_source_backpressure = nullptr;
    obs::Gauge* obs_watermark = nullptr;
    if (source_shard != nullptr) {
      obs_emitted = source_shard->GetCounter("tuples_emitted");
      obs_source_backpressure =
          source_shard->GetCounter("backpressure_wait_ns");
      obs_watermark = source_shard->GetGauge("watermark_ms");
    }
    StageEmitter emitter(0, &topology_.stages[0].input_partitioner,
                         queues_of_stage(0), batch_max, &source_metrics,
                         nullptr, obs_source_backpressure);
    ReplayableSpout* const replay_source =
        topology_.source.spout->replayable();
    // With interval <= 0 the generator is never consulted: only the final
    // end-of-stream watermark fires.
    WatermarkGenerator generator(
        std::max<DurationMs>(topology_.source.watermark_interval, 1),
        topology_.source.max_lateness);

    std::vector<Tuple> pulled;
    pulled.reserve(batch_max);
    bool more = true;
    while (more && !failed.load(std::memory_order_relaxed) &&
           !source_closed.load(std::memory_order_acquire)) {
      pulled.clear();
      more = topology_.source.spout->NextBatch(&pulled, batch_max);
      source_progress.fetch_add(1, std::memory_order_relaxed);
      if (replay_source != nullptr) {
        source_offset.store(replay_source->ReplayOffset(),
                            std::memory_order_relaxed);
      }
      std::uint64_t emitted_this_batch = 0;
      for (Tuple& tuple : pulled) {
        // Re-check per tuple: once the watchdog closed the stream, every
        // further emission would land behind its flush marker and be
        // ignored — stop feeding the queues instead. Bounds the racing
        // overshoot to the one batch already pulled.
        if (source_closed.load(std::memory_order_acquire)) break;
        const Timestamp t = tuple.event_time();
        emitter.Emit(std::move(tuple));
        ++emitted_this_batch;
        if (topology_.source.watermark_interval > 0 && generator.Observe(t)) {
          const Timestamp wm = generator.current();
          source_wm.store(wm, std::memory_order_relaxed);
          if (obs_watermark != nullptr) {
            obs_watermark->Set(static_cast<double>(wm));
          }
          emitter.Broadcast(Element::MakeWatermark(wm, 0));
        }
      }
      if (obs_emitted != nullptr) obs_emitted->Add(emitted_this_batch);
    }
    // Final watermark releases every buffered window, then flush — unless
    // the watchdog already closed the stream on this source's behalf.
    bool expected = false;
    if (!source_closed.compare_exchange_strong(expected, true)) return;
    source_wm.store(WatermarkGenerator::FinalWatermark(),
                    std::memory_order_relaxed);
    emitter.Broadcast(
        Element::MakeWatermark(WatermarkGenerator::FinalWatermark(), 0));
    emitter.Broadcast(Element::MakeFlush(0));
  });

  // --- Watermark watchdog -------------------------------------------------
  // A source that makes no progress for `watchdog_idle` while the stage-0
  // queues sit *empty* is stalled, not back-pressured (a blocked-on-full
  // source would leave its queues non-empty). The watchdog takes over the
  // stream close: cancel hooks unstick the spout, an anomaly element tells
  // the bolts the input was cut short (open windows emit degraded instead
  // of posing as accurate), and the final watermark + flush release them.
  // All of its pushes are control elements (reserved headroom), so the
  // watchdog itself can never block on a queue.
  std::thread watchdog_thread;
  if (topology_.overload.WatchdogEnabled()) {
    watchdog_thread = std::thread([&]() {
      const std::int64_t idle_ns =
          topology_.overload.watchdog_idle * 1'000'000;
      const DurationMs poll_ms =
          std::max<DurationMs>(topology_.overload.watchdog_idle / 4, 1);
      std::uint64_t last_progress =
          source_progress.load(std::memory_order_relaxed);
      std::int64_t last_change_ns = NowNs();
      while (!watchdog_stop.load(std::memory_order_acquire) &&
             !failed.load(std::memory_order_relaxed) &&
             !source_closed.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
        const std::uint64_t progress =
            source_progress.load(std::memory_order_relaxed);
        if (progress != last_progress) {
          last_progress = progress;
          last_change_ns = NowNs();
          continue;
        }
        bool starved = true;
        for (auto& q : queues[0]) {
          if (q->size() != 0) {
            starved = false;
            break;
          }
        }
        if (!starved) {
          // Idle source but data still in flight: back-pressure territory.
          last_change_ns = NowNs();
          continue;
        }
        if (NowNs() - last_change_ns < idle_ns) continue;
        bool expected = false;
        if (!source_closed.compare_exchange_strong(expected, true)) break;
        watchdog_advances.fetch_add(1, std::memory_order_relaxed);
        for (const auto& hook : topology_.cancel_hooks) hook();
        StageEmitter closer(0, &topology_.stages[0].input_partitioner,
                            queues_of_stage(0), batch_max, nullptr, nullptr);
        closer.Broadcast(Element::MakeAnomaly(0));
        closer.Broadcast(Element::MakeWatermark(
            WatermarkGenerator::FinalWatermark(), 0));
        closer.Broadcast(Element::MakeFlush(0));
        break;
      }
    });
  }

  sampler.Start();

  for (std::thread& t : threads) t.join();
  watchdog_stop.store(true, std::memory_order_release);
  if (watchdog_thread.joinable()) watchdog_thread.join();
  sampler.Stop();  // performs the final periodic scrape, if armed

  if (failed.load()) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (suppressed_errors.empty()) return first_error;
    // The report (and its suppressed list) is dropped on failure, so the
    // returned Status must carry the evidence itself.
    std::string message = first_error.message() + " [+" +
                          std::to_string(suppressed_errors.size()) +
                          " suppressed:";
    for (const Status& s : suppressed_errors) {
      message += " {" + s.ToString() + "}";
    }
    message += "]";
    return Status(first_error.code(), std::move(message));
  }

  // Merge the sink workers' private outputs in task order.
  std::size_t total = 0;
  for (const auto& part : sink_outputs) total += part.size();
  report.output.reserve(total);
  for (auto& part : sink_outputs) {
    std::move(part.begin(), part.end(), std::back_inserter(report.output));
  }
  // Merge the dead letters in (stage, task) order, and settle the fault
  // counters: worker metrics cover retries/recoveries/quarantines/
  // degradations, the injector knows what it fired.
  for (auto& part : worker_dead_letters) {
    std::move(part.begin(), part.end(),
              std::back_inserter(report.dead_letters));
  }
  report.faults = report.metrics.FaultTotals();
  if (topology_.fault_injector != nullptr) {
    report.faults.injected = topology_.fault_injector->total_fired();
  }
  report.recoveries = report.faults.worker_restarts;
  report.dead_letters_dropped =
      dropped_dead_letters.load(std::memory_order_relaxed);
  report.overload = report.metrics.OverloadTotals();
  report.overload.Accumulate(source_metrics.overload());
  report.overload.watchdog_advances +=
      watchdog_advances.load(std::memory_order_relaxed);
  // Final observability scrape into the report: every metric series and
  // every retained trace span, merged across worker shards.
  report.observability.metrics_enabled = obs_cfg.metrics_enabled;
  report.observability.trace_enabled = obs_cfg.trace_enabled;
  if (obs_registry != nullptr) {
    report.observability.metrics = obs_registry->Collect();
    report.observability.scrapes = sampler.scrapes();
  }
  for (const auto& tracer : tracers) {
    std::vector<obs::TraceSpan> spans = tracer->Snapshot();
    std::move(spans.begin(), spans.end(),
              std::back_inserter(report.observability.spans));
    report.observability.spans_sampled_out += tracer->sampled_out();
    report.observability.spans_dropped += tracer->dropped();
  }
  return report;
}

}  // namespace spear
