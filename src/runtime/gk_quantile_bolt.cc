#include "runtime/gk_quantile_bolt.h"

#include "common/time.h"

namespace spear {

GkQuantileBolt::GkQuantileBolt(WindowSpec window,
                               ValueExtractor value_extractor, double phi,
                               double epsilon)
    : window_(window),
      value_extractor_(std::move(value_extractor)),
      phi_(phi),
      epsilon_(epsilon),
      last_watermark_(kMinTimestamp) {
  SPEAR_CHECK(window_.IsValid());
  SPEAR_CHECK(phi_ >= 0.0 && phi_ <= 1.0);
  SPEAR_CHECK(epsilon_ > 0.0 && epsilon_ < 1.0);
}

Status GkQuantileBolt::Prepare(const BoltContext& ctx) {
  metrics_ = ctx.metrics;
  return Status::OK();
}

Status GkQuantileBolt::Execute(const Tuple& tuple, Emitter* out) {
  std::int64_t coord;
  if (window_.type == WindowType::kCountBased) {
    coord = sequence_++;
  } else {
    coord = tuple.event_time();
  }
  if (coord >= last_watermark_) {
    const double value = value_extractor_(tuple);
    for (const WindowBounds& w : AssignWindows(window_, coord)) {
      auto it = sketches_.find(w.start);
      if (it == sketches_.end()) {
        auto sketch = GkQuantileSketch::Make(epsilon_);
        if (!sketch.ok()) return sketch.status();
        it = sketches_.emplace(w.start, std::move(*sketch)).first;
      }
      it->second.Add(value);
    }
  }
  if (window_.type == WindowType::kCountBased) {
    return ProcessWatermark(sequence_, out);
  }
  return Status::OK();
}

Status GkQuantileBolt::OnWatermark(Timestamp watermark, Emitter* out) {
  if (window_.type == WindowType::kCountBased) return Status::OK();
  return ProcessWatermark(watermark, out);
}

Status GkQuantileBolt::ProcessWatermark(std::int64_t watermark,
                                        Emitter* out) {
  watermark = ClampWatermark(window_, watermark);
  if (watermark <= last_watermark_) return Status::OK();
  last_watermark_ = watermark;
  while (!sketches_.empty() &&
         sketches_.begin()->first + window_.range <= watermark) {
    auto it = sketches_.begin();
    std::int64_t query_ns = 0;
    WindowResult result;
    {
      ScopedTimerNs timer(&query_ns);
      result.bounds = WindowBounds{it->first, it->first + window_.range};
      result.window_size = it->second.count();
      result.tuples_processed = it->second.summary_size();
      result.approximate = true;
      result.estimated_error = epsilon_;
      SPEAR_ASSIGN_OR_RETURN(result.scalar, it->second.Quantile(phi_));
    }
    result.processing_ns = query_ns;
    if (metrics_ != nullptr) {
      metrics_->RecordWindowNs(query_ns);
      metrics_->RecordMemoryBytes(it->second.MemoryBytes());
    }
    for (Tuple& t : WindowResultToTuples(result)) out->Emit(std::move(t));
    sketches_.erase(it);
  }
  return Status::OK();
}

}  // namespace spear
