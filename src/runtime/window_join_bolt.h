#pragma once

#include <memory>

#include "runtime/operator.h"
#include "tuple/field_extractor.h"
#include "window/single_buffer_manager.h"

/// \file window_join_bolt.h
/// Windowed equi-join of two streams. Our runtime's stages are single
/// input, so the two sides travel one channel as a *tagged union*: every
/// tuple carries an int64 tag field (0 = left, 1 = right); MergeStreams
/// below builds such a stream from two inputs. Per complete window the
/// bolt hash-joins the sides and emits one output tuple per match:
///
///   [window_start, window_end, key, left fields..., right fields...]
///
/// (the tag fields are stripped). The paper supports joins through the
/// custom-operation API because no accepted accuracy metric exists for
/// approximate joins (Sec. 4); this operator is accordingly exact.

namespace spear {

/// \brief Configuration of a windowed tagged-union equi-join.
struct WindowJoinConfig {
  WindowSpec window;
  /// Index of the int64 tag field (0 = left, 1 = right).
  std::size_t tag_field = 0;
  /// Join keys, evaluated on the original tuples (tag field included).
  KeyExtractor left_key;
  KeyExtractor right_key;
};

/// \brief Exact windowed hash join over a tagged stream.
class WindowJoinBolt : public Bolt {
 public:
  explicit WindowJoinBolt(WindowJoinConfig config);

  Status Prepare(const BoltContext& ctx) override;
  Status Execute(const Tuple& tuple, Emitter* out) override;
  Status OnWatermark(Timestamp watermark, Emitter* out) override;

 private:
  Status ProcessWatermark(std::int64_t watermark, Emitter* out);

  const WindowJoinConfig config_;
  std::unique_ptr<SingleBufferWindowManager> manager_;
  WorkerMetrics* metrics_ = nullptr;
  std::int64_t sequence_ = 0;
};

/// \brief Interleaves two streams by event time into one tagged stream:
/// each output tuple is the original with the tag (0 or 1) *prepended* as
/// field 0. Use tag_field = 0 and shift your extractors by one.
std::vector<Tuple> MergeStreams(const std::vector<Tuple>& left,
                                const std::vector<Tuple>& right);

}  // namespace spear
