#pragma once

#include <map>
#include <memory>

#include "runtime/operator.h"
#include "sketch/space_saving.h"
#include "tuple/field_extractor.h"
#include "window/window_assigner.h"

/// \file topk_bolt.h
/// Windowed top-k frequent groups via SpaceSaving — the
/// frequency-counting workload the paper's Sec. 3 discusses when
/// contrasting sketches with SPEAr. One SpaceSaving instance per active
/// window (k counters each); at watermark arrival the k heaviest groups
/// are emitted as grouped result tuples:
///
///   [window_start, window_end, key, estimated_count, 1 (approx), error]

namespace spear {

/// \brief Windowed heavy-hitters stage.
class TopKBolt : public Bolt {
 public:
  /// \param k    counters per window (and maximum emitted items)
  /// \param key  group extractor
  TopKBolt(WindowSpec window, KeyExtractor key, std::size_t k);

  Status Prepare(const BoltContext& ctx) override;
  Status Execute(const Tuple& tuple, Emitter* out) override;
  Status OnWatermark(Timestamp watermark, Emitter* out) override;

 private:
  Status ProcessWatermark(std::int64_t watermark, Emitter* out);

  const WindowSpec window_;
  const KeyExtractor key_;
  const std::size_t k_;

  std::map<std::int64_t, SpaceSaving> trackers_;
  std::int64_t last_watermark_;
  WorkerMetrics* metrics_ = nullptr;
  std::int64_t sequence_ = 0;
};

}  // namespace spear
