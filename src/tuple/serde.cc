#include "tuple/serde.h"

#include <cstring>

namespace spear {

namespace {

template <typename T>
void AppendRaw(T value, std::string* out) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
Result<T> ReadRaw(const std::string& data, std::size_t* offset) {
  if (*offset + sizeof(T) > data.size()) {
    return Status::Invalid("truncated input");
  }
  T value;
  std::memcpy(&value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return value;
}

}  // namespace

void EncodeTuple(const Tuple& tuple, std::string* out) {
  AppendRaw<std::int64_t>(tuple.event_time(), out);
  AppendRaw<std::uint32_t>(static_cast<std::uint32_t>(tuple.num_fields()),
                           out);
  for (std::size_t i = 0; i < tuple.num_fields(); ++i) {
    const Value& v = tuple.field(i);
    AppendRaw<std::uint8_t>(static_cast<std::uint8_t>(v.type()), out);
    switch (v.type()) {
      case ValueType::kInt64:
        AppendRaw<std::int64_t>(v.AsInt64(), out);
        break;
      case ValueType::kDouble:
        AppendRaw<double>(v.AsDouble(), out);
        break;
      case ValueType::kString: {
        const std::string& s = v.AsString();
        AppendRaw<std::uint32_t>(static_cast<std::uint32_t>(s.size()), out);
        out->append(s);
        break;
      }
    }
  }
}

Result<Tuple> DecodeTuple(const std::string& data, std::size_t* offset) {
  SPEAR_ASSIGN_OR_RETURN(const std::int64_t event_time,
                         ReadRaw<std::int64_t>(data, offset));
  SPEAR_ASSIGN_OR_RETURN(const std::uint32_t field_count,
                         ReadRaw<std::uint32_t>(data, offset));
  std::vector<Value> fields;
  fields.reserve(field_count);
  for (std::uint32_t i = 0; i < field_count; ++i) {
    SPEAR_ASSIGN_OR_RETURN(const std::uint8_t type,
                           ReadRaw<std::uint8_t>(data, offset));
    switch (static_cast<ValueType>(type)) {
      case ValueType::kInt64: {
        SPEAR_ASSIGN_OR_RETURN(const std::int64_t v,
                               ReadRaw<std::int64_t>(data, offset));
        fields.emplace_back(v);
        break;
      }
      case ValueType::kDouble: {
        SPEAR_ASSIGN_OR_RETURN(const double v, ReadRaw<double>(data, offset));
        fields.emplace_back(v);
        break;
      }
      case ValueType::kString: {
        SPEAR_ASSIGN_OR_RETURN(const std::uint32_t len,
                               ReadRaw<std::uint32_t>(data, offset));
        if (*offset + len > data.size()) {
          return Status::Invalid("truncated string payload");
        }
        fields.emplace_back(std::string(data.data() + *offset, len));
        *offset += len;
        break;
      }
      default:
        return Status::Invalid("unknown value type tag " +
                               std::to_string(type));
    }
  }
  return Tuple(event_time, std::move(fields));
}

std::string EncodeBatch(const std::vector<Tuple>& tuples) {
  std::string out;
  AppendRaw<std::uint32_t>(static_cast<std::uint32_t>(tuples.size()), &out);
  for (const Tuple& t : tuples) EncodeTuple(t, &out);
  return out;
}

Result<std::vector<Tuple>> DecodeBatch(const std::string& data) {
  std::size_t offset = 0;
  SPEAR_ASSIGN_OR_RETURN(const std::uint32_t count,
                         ReadRaw<std::uint32_t>(data, &offset));
  std::vector<Tuple> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SPEAR_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(data, &offset));
    out.push_back(std::move(t));
  }
  if (offset != data.size()) {
    return Status::Invalid("trailing bytes after batch");
  }
  return out;
}

}  // namespace spear
