#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

/// \file schema.h
/// Field name → position mapping for a stream. Operators resolve names to
/// indices once at topology-build time and use indices at runtime.

namespace spear {

/// \brief Ordered list of named fields describing the tuples on a stream.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> field_names)
      : field_names_(std::move(field_names)) {}

  std::size_t num_fields() const { return field_names_.size(); }
  const std::string& field_name(std::size_t i) const { return field_names_[i]; }
  const std::vector<std::string>& field_names() const { return field_names_; }

  /// Resolves a field name to its position; NotFound when absent.
  Result<std::size_t> FieldIndex(const std::string& name) const {
    for (std::size_t i = 0; i < field_names_.size(); ++i) {
      if (field_names_[i] == name) return i;
    }
    return Status::NotFound("no field named '" + name + "'");
  }

  bool HasField(const std::string& name) const {
    return FieldIndex(name).ok();
  }

  bool operator==(const Schema& other) const {
    return field_names_ == other.field_names_;
  }

 private:
  std::vector<std::string> field_names_;
};

}  // namespace spear
