#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/logging.h"

/// \file value.h
/// Dynamically-typed field value carried by stream tuples. Kept small (one
/// variant over int64/double/string) because tuple construction sits on the
/// engine's per-tuple hot path.

namespace spear {

enum class ValueType : std::uint8_t { kInt64 = 0, kDouble = 1, kString = 2 };

/// \brief One field of a Tuple.
class Value {
 public:
  Value() : data_(std::int64_t{0}) {}
  Value(std::int64_t v) : data_(v) {}          // NOLINT(runtime/explicit)
  Value(std::int32_t v)                        // NOLINT(runtime/explicit)
      : data_(static_cast<std::int64_t>(v)) {}
  Value(double v) : data_(v) {}                // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  ValueType type() const { return static_cast<ValueType>(data_.index()); }

  bool is_int64() const { return type() == ValueType::kInt64; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }

  std::int64_t AsInt64() const {
    SPEAR_DCHECK(is_int64());
    return std::get<std::int64_t>(data_);
  }
  double AsDouble() const {
    SPEAR_DCHECK(is_double());
    return std::get<double>(data_);
  }
  const std::string& AsString() const {
    SPEAR_DCHECK(is_string());
    return std::get<std::string>(data_);
  }

  /// Numeric coercion: int64 and double both convert; strings are an error
  /// caught by SPEAR_CHECK.
  double AsNumeric() const {
    if (is_int64()) return static_cast<double>(AsInt64());
    SPEAR_CHECK(is_double());
    return AsDouble();
  }

  /// Approximate in-memory footprint, used for byte-denominated budgets.
  std::size_t ByteSize() const {
    if (is_string()) return sizeof(Value) + AsString().capacity();
    return sizeof(Value);
  }

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  std::variant<std::int64_t, double, std::string> data_;
};

}  // namespace spear
