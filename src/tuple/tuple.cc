#include "tuple/tuple.h"

namespace spear {

std::string Tuple::ToString() const {
  std::string out = "{t=" + std::to_string(event_time_);
  for (const auto& f : fields_) {
    out += ", ";
    out += f.ToString();
  }
  out += "}";
  return out;
}

}  // namespace spear
