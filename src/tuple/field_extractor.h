#pragma once

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"
#include "tuple/tuple.h"

/// \file field_extractor.h
/// Small callable adapters that pull a numeric aggregation value or a group
/// key out of a Tuple. The CQ API in the paper (Fig. 1/5) writes these as
/// lambdas (`x -> x.fare`); here they are index-bound extractors so the hot
/// path avoids name lookups.

namespace spear {

/// Extracts the numeric value an aggregate operates on.
using ValueExtractor = std::function<double(const Tuple&)>;

/// Extracts the group key for grouped (group-by) operations.
using KeyExtractor = std::function<std::string(const Tuple&)>;

/// Returns an extractor reading field `index` as a numeric.
inline ValueExtractor NumericField(std::size_t index) {
  return [index](const Tuple& t) { return t.field(index).AsNumeric(); };
}

/// Returns a key extractor reading field `index`, stringified.
inline KeyExtractor KeyField(std::size_t index) {
  return [index](const Tuple& t) {
    const Value& v = t.field(index);
    return v.is_string() ? v.AsString() : v.ToString();
  };
}

/// Integer group keys avoid string conversions on known-integer columns.
using IntKeyExtractor = std::function<std::int64_t(const Tuple&)>;

inline IntKeyExtractor IntKeyField(std::size_t index) {
  return [index](const Tuple& t) { return t.field(index).AsInt64(); };
}

/// Admission check run on each tuple *before* it is ingested into window
/// state. A non-OK Status (kInvalidArgument family) marks the tuple as
/// data-bad: the supervised executor quarantines it to the dead-letter
/// channel instead of letting an extractor trip a check-abort on it later.
using TupleValidator = std::function<Status(const Tuple&)>;

/// Returns a validator requiring every listed field to exist and be
/// numeric (int64 or double) — the preconditions of NumericField /
/// IntKeyField, reported as a Status instead of enforced by SPEAR_CHECK.
inline TupleValidator RequireNumericFields(
    std::initializer_list<std::size_t> indices) {
  return [fields = std::vector<std::size_t>(indices)](
             const Tuple& t) -> Status {
    for (const std::size_t i : fields) {
      if (i >= t.num_fields()) {
        return Status::Invalid("tuple has " + std::to_string(t.num_fields()) +
                               " fields, field " + std::to_string(i) +
                               " required");
      }
      const Value& v = t.field(i);
      if (!v.is_int64() && !v.is_double()) {
        return Status::Invalid("field " + std::to_string(i) +
                               " is not numeric: " + v.ToString());
      }
    }
    return Status::OK();
  };
}

}  // namespace spear
