#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "tuple/tuple.h"

/// \file field_extractor.h
/// Small callable adapters that pull a numeric aggregation value or a group
/// key out of a Tuple. The CQ API in the paper (Fig. 1/5) writes these as
/// lambdas (`x -> x.fare`); here they are index-bound extractors so the hot
/// path avoids name lookups.

namespace spear {

/// Extracts the numeric value an aggregate operates on.
using ValueExtractor = std::function<double(const Tuple&)>;

/// Extracts the group key for grouped (group-by) operations.
using KeyExtractor = std::function<std::string(const Tuple&)>;

/// Returns an extractor reading field `index` as a numeric.
inline ValueExtractor NumericField(std::size_t index) {
  return [index](const Tuple& t) { return t.field(index).AsNumeric(); };
}

/// Returns a key extractor reading field `index`, stringified.
inline KeyExtractor KeyField(std::size_t index) {
  return [index](const Tuple& t) {
    const Value& v = t.field(index);
    return v.is_string() ? v.AsString() : v.ToString();
  };
}

/// Integer group keys avoid string conversions on known-integer columns.
using IntKeyExtractor = std::function<std::int64_t(const Tuple&)>;

inline IntKeyExtractor IntKeyField(std::size_t index) {
  return [index](const Tuple& t) { return t.field(index).AsInt64(); };
}

}  // namespace spear
