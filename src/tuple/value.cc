#include "tuple/value.h"

#include <cstdio>

namespace spear {

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
  }
  return "?";
}

}  // namespace spear
