#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "tuple/tuple.h"

/// \file serde.h
/// Binary tuple (de)serialization used by the file-backed secondary
/// storage. Format (little-endian):
///
///   tuple  := event_time:i64 field_count:u32 field*
///   field  := type:u8 payload
///   payload(int64)  := i64
///   payload(double) := f64 bits
///   payload(string) := len:u32 bytes
///
/// A batch is a u32 count followed by that many tuples.

namespace spear {

/// \brief Appends the encoded tuple to `out`.
void EncodeTuple(const Tuple& tuple, std::string* out);

/// \brief Decodes one tuple from `data` starting at *offset; advances
/// *offset past it. Invalid on truncated or corrupt input.
Result<Tuple> DecodeTuple(const std::string& data, std::size_t* offset);

/// \brief Encodes a batch (count header + tuples).
std::string EncodeBatch(const std::vector<Tuple>& tuples);

/// \brief Decodes a whole batch; Invalid when bytes remain or run short.
Result<std::vector<Tuple>> DecodeBatch(const std::string& data);

}  // namespace spear
