#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/time.h"
#include "tuple/value.h"

/// \file tuple.h
/// The unit of data flowing through a topology: an event timestamp plus a
/// flat vector of field values. Field positions are resolved through the
/// stream's Schema (see schema.h); the Tuple itself stores no names.

namespace spear {

/// \brief One stream element.
class Tuple {
 public:
  Tuple() = default;

  Tuple(Timestamp event_time, std::vector<Value> fields)
      : event_time_(event_time), fields_(std::move(fields)) {}

  Tuple(Timestamp event_time, std::initializer_list<Value> fields)
      : event_time_(event_time), fields_(fields) {}

  Timestamp event_time() const { return event_time_; }
  void set_event_time(Timestamp t) { event_time_ = t; }

  std::size_t num_fields() const { return fields_.size(); }

  const Value& field(std::size_t i) const {
    SPEAR_DCHECK(i < fields_.size());
    return fields_[i];
  }
  Value& field(std::size_t i) {
    SPEAR_DCHECK(i < fields_.size());
    return fields_[i];
  }

  const std::vector<Value>& fields() const { return fields_; }

  /// Appends a field (used by the spill path to piggyback metadata).
  void AppendField(Value v) { fields_.push_back(std::move(v)); }

  /// Removes and returns the last field. Requires num_fields() > 0.
  Value PopField() {
    SPEAR_DCHECK(!fields_.empty());
    Value v = std::move(fields_.back());
    fields_.pop_back();
    return v;
  }

  /// Approximate in-memory footprint (drives byte-denominated budgets and
  /// the Fig. 7 memory accounting).
  std::size_t ByteSize() const {
    std::size_t total = sizeof(Tuple);
    for (const auto& f : fields_) total += f.ByteSize();
    return total;
  }

  bool operator==(const Tuple& other) const {
    return event_time_ == other.event_time_ && fields_ == other.fields_;
  }

  std::string ToString() const;

 private:
  Timestamp event_time_ = 0;
  std::vector<Value> fields_;
};

}  // namespace spear
