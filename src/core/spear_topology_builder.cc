#include "core/spear_topology_builder.h"

#include "runtime/common_bolts.h"
#include "runtime/fault_injection.h"
#include "runtime/gk_quantile_bolt.h"

namespace spear {

const char* ExecutionEngineName(ExecutionEngine engine) {
  switch (engine) {
    case ExecutionEngine::kSpear:
      return "SPEAr";
    case ExecutionEngine::kExact:
      return "Storm";
    case ExecutionEngine::kExactMulti:
      return "Storm-multibuf";
    case ExecutionEngine::kIncremental:
      return "Inc-Storm";
    case ExecutionEngine::kCountMin:
      return "CountMin";
    case ExecutionEngine::kGkQuantile:
      return "GK";
  }
  return "?";
}

SpearTopologyBuilder& SpearTopologyBuilder::Source(
    std::shared_ptr<Spout> spout, DurationMs watermark_interval,
    DurationMs max_lateness) {
  spout_ = std::move(spout);
  watermark_interval_ = watermark_interval;
  max_lateness_ = max_lateness;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Time(std::size_t time_field) {
  has_time_stage_ = true;
  time_field_ = time_field;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::SlidingWindowOf(DurationMs range,
                                                            DurationMs slide) {
  config_.window = WindowSpec::SlidingTime(range, slide);
  has_window_ = true;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::TumblingWindowOf(DurationMs range) {
  config_.window = WindowSpec::TumblingTime(range);
  has_window_ = true;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::SlidingCountWindowOf(
    std::int64_t range, std::int64_t slide) {
  config_.window = WindowSpec::SlidingCount(range, slide);
  has_window_ = true;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::TumblingCountWindowOf(
    std::int64_t range) {
  config_.window = WindowSpec::TumblingCount(range);
  has_window_ = true;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Count() {
  config_.aggregate = AggregateSpec::Count();
  value_extractor_ = [](const Tuple&) { return 1.0; };
  has_aggregate_ = true;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Sum(ValueExtractor value) {
  config_.aggregate = AggregateSpec::Sum();
  value_extractor_ = std::move(value);
  has_aggregate_ = true;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Mean(ValueExtractor value) {
  config_.aggregate = AggregateSpec::Mean();
  value_extractor_ = std::move(value);
  has_aggregate_ = true;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Variance(ValueExtractor value) {
  config_.aggregate = AggregateSpec::Variance();
  value_extractor_ = std::move(value);
  has_aggregate_ = true;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::StdDev(ValueExtractor value) {
  config_.aggregate = AggregateSpec::StdDev();
  value_extractor_ = std::move(value);
  has_aggregate_ = true;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Percentile(ValueExtractor value,
                                                       double phi) {
  config_.aggregate = AggregateSpec::Percentile(phi);
  value_extractor_ = std::move(value);
  has_aggregate_ = true;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Median(ValueExtractor value) {
  return Percentile(std::move(value), 0.5);
}

SpearTopologyBuilder& SpearTopologyBuilder::GroupBy(KeyExtractor key) {
  key_extractor_ = std::move(key);
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::SetBudget(Budget budget) {
  config_.budget = budget;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Error(double epsilon,
                                                  double confidence) {
  config_.accuracy.epsilon = epsilon;
  config_.accuracy.confidence = confidence;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::KnownGroups(
    std::size_t num_groups) {
  config_.known_num_groups = num_groups;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::DisableIncrementalOptimization() {
  config_.incremental_optimization = false;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::AdaptiveBudget(
    BudgetController::Options options) {
  config_.adaptive_budget = true;
  config_.adaptive_options = options;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::CustomEstimator(
    CustomScalarEstimator estimator) {
  config_.custom_estimator = std::move(estimator);
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::CollectDecisions(
    DecisionStatsCollector* sink) {
  decision_sink_ = sink;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::ValidateTuples(
    TupleValidator validator) {
  config_.validate = std::move(validator);
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::StorageRetry(RetryPolicy policy) {
  config_.storage_retry = policy;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::StageRetry(RetryPolicy policy) {
  stage_retry_ = policy;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::InjectFaults(
    FaultInjector* injector) {
  fault_injector_ = injector;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Checkpoint(
    CheckpointConfig config) {
  config.enabled = true;
  checkpoint_ = std::move(config);
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::DeadLetterCap(std::size_t cap) {
  max_dead_letters_ = cap;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::LatencySlo(DurationMs slo_ms) {
  overload_.latency_slo = slo_ms;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Shed(ShedPolicy policy) {
  overload_.shed = policy;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::ExactDeadline(
    DurationMs deadline_ms) {
  config_.exact_deadline_ms = deadline_ms;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::WatermarkWatchdog(
    DurationMs idle_ms) {
  overload_.watchdog_idle = idle_ms;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Metrics(
    obs::MetricsOptions options) {
  obs_.metrics_enabled = true;
  obs_.metrics = std::move(options);
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Trace(obs::TraceOptions options) {
  obs_.trace_enabled = true;
  obs_.trace = options;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Engine(ExecutionEngine engine) {
  engine_ = engine;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::Parallelism(int workers) {
  parallelism_ = workers;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::SpillOver(
    std::size_t memory_capacity, SecondaryStorage* storage) {
  config_.buffer_memory_capacity = memory_capacity;
  storage_ = storage;
  return *this;
}

SpearTopologyBuilder& SpearTopologyBuilder::QueueCapacity(
    std::size_t capacity) {
  queue_capacity_ = capacity;
  return *this;
}

Result<Topology> SpearTopologyBuilder::Build() const {
  if (!spout_) return Status::Invalid("CQ has no source");
  if (!has_window_) return Status::Invalid("CQ has no window definition");
  if (!has_aggregate_) return Status::Invalid("CQ has no stateful operation");
  SPEAR_RETURN_NOT_OK(config_.Validate());
  if (parallelism_ < 1) return Status::Invalid("parallelism must be >= 1");
  if (engine_ == ExecutionEngine::kIncremental &&
      !config_.aggregate.IsIncremental()) {
    return Status::Invalid(
        "incremental engine cannot run holistic aggregates");
  }
  if (engine_ == ExecutionEngine::kCountMin &&
      (!key_extractor_ || config_.aggregate.kind != AggregateKind::kMean)) {
    return Status::Invalid(
        "CountMin engine supports the grouped mean only");
  }
  if (engine_ == ExecutionEngine::kGkQuantile &&
      (key_extractor_ || !config_.aggregate.IsHolistic())) {
    return Status::Invalid(
        "GK engine supports scalar percentiles only");
  }
  if (checkpoint_.enabled &&
      config_.window.type == WindowType::kCountBased) {
    return Status::Invalid(
        "checkpointing requires a time-based window (count-based "
        "coordinates do not survive a worker restart)");
  }

  TopologyBuilder builder;
  // Chaos wiring: perturb the stream at the source when any spout site is
  // armed; the stateful bolts are wrapped below.
  std::shared_ptr<Spout> source = spout_;
  if (fault_injector_ != nullptr &&
      (fault_injector_->armed(FaultSite::kSpoutMalformed) ||
       fault_injector_->armed(FaultSite::kSpoutDuplicate) ||
       fault_injector_->armed(FaultSite::kSpoutLate) ||
       fault_injector_->armed(FaultSite::kSpoutStall))) {
    auto wrapper =
        std::make_shared<FaultInjectingSpout>(spout_, fault_injector_);
    if (fault_injector_->armed(FaultSite::kSpoutStall)) {
      // A stalled spout blocks the executor's source thread outside its
      // control; the cancel hook is how the watchdog (or a failing run)
      // unsticks it.
      builder.AddCancelHook([wrapper] { wrapper->CancelStall(); });
    }
    source = wrapper;
  }
  builder.Source(std::move(source), watermark_interval_, max_lateness_);
  builder.QueueCapacity(queue_capacity_);
  builder.InjectFaults(fault_injector_);
  builder.RegisterStorage(storage_);
  if (checkpoint_.enabled) builder.Checkpoint(checkpoint_);
  builder.DeadLetterCap(max_dead_letters_);
  if (overload_.ShedEnabled()) {
    builder.LatencySlo(overload_.latency_slo);
    builder.Shed(overload_.shed);
  }
  if (overload_.WatchdogEnabled()) {
    builder.WatermarkWatchdog(overload_.watchdog_idle);
  }
  if (obs_.metrics_enabled) builder.Metrics(obs_.metrics);
  if (obs_.trace_enabled) builder.Trace(obs_.trace);

  if (has_time_stage_) {
    const std::size_t field = time_field_;
    builder.Stage("time", 1, Partitioner::Shuffle(), [field](int) {
      return std::make_unique<TimeAssignBolt>(field);
    });
  }

  // Grouped operations need fields grouping so each distinct group lands
  // on exactly one worker; scalar operations shuffle.
  Partitioner input = key_extractor_
                          ? Partitioner::Fields(key_extractor_)
                          : Partitioner::Shuffle();

  // Copy the configuration into the factory (each worker gets its own
  // bolt instance, as in Storm).
  const SpearOperatorConfig config = config_;
  const ValueExtractor value = value_extractor_;
  const KeyExtractor key = key_extractor_;
  SecondaryStorage* storage = storage_;
  const ExecutionEngine engine = engine_;
  DecisionStatsCollector* decision_sink = decision_sink_;
  FaultInjector* injector = fault_injector_;

  builder.Stage(
      StatefulStageName(), parallelism_, std::move(input),
      [config, value, key, storage, engine, decision_sink,
       injector](int) -> std::unique_ptr<Bolt> {
        std::unique_ptr<Bolt> bolt;
        switch (engine) {
          case ExecutionEngine::kSpear:
            bolt = std::make_unique<SpearBolt>(config, value, key, storage,
                                               decision_sink);
            break;
          case ExecutionEngine::kExact:
          case ExecutionEngine::kExactMulti: {
            ExactWindowedBoltConfig exact;
            exact.window = config.window;
            exact.aggregate = config.aggregate;
            exact.value_extractor = value;
            exact.key_extractor = key;
            exact.use_multi_buffer = engine == ExecutionEngine::kExactMulti;
            exact.memory_capacity = config.buffer_memory_capacity;
            exact.storage = storage;
            bolt = std::make_unique<ExactWindowedBolt>(std::move(exact));
            break;
          }
          case ExecutionEngine::kIncremental:
            bolt = std::make_unique<IncrementalWindowedBolt>(
                config.window, config.aggregate, value, key);
            break;
          case ExecutionEngine::kCountMin:
            bolt = std::make_unique<CountMinWindowedBolt>(
                config.window, value, key, config.accuracy.epsilon,
                config.accuracy.confidence);
            break;
          case ExecutionEngine::kGkQuantile:
            bolt = std::make_unique<GkQuantileBolt>(
                config.window, value, config.aggregate.phi,
                config.accuracy.epsilon);
            break;
        }
        if (bolt != nullptr && injector != nullptr &&
            (injector->armed(FaultSite::kBoltProcess) ||
             injector->armed(FaultSite::kBoltWatermark))) {
          bolt = std::make_unique<FaultInjectingBolt>(std::move(bolt),
                                                      injector);
        }
        return bolt;
      });
  builder.StageRetry(stage_retry_);

  return builder.Build();
}

}  // namespace spear
