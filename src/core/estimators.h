#pragma once

#include <functional>
#include <vector>

#include "common/result.h"
#include "core/accuracy_spec.h"
#include "ops/aggregate.h"
#include "stats/congress.h"
#include "stats/error_metrics.h"
#include "stats/group_stats.h"
#include "stats/running_stats.h"
#include "stats/sample_size.h"

/// \file estimators.h
/// Accuracy estimation at watermark arrival (paper Sec. 4.2): given what
/// SPEAr accumulated inside the budget while the window was active, produce
/// an approximate result R̂_w and an error estimate ε̂_w, and decide whether
/// the window may be expedited (ε̂_w <= ε). All functions are pure — the
/// SpearWindowManager wires them into the execution workflow.

namespace spear {

/// Minimum sample size for the normal-approximation machinery to be
/// trusted (paper Sec. 4.2: "the confidence interval will be imprecise
/// with a very small sample on a skewed distribution"). Scalar estimates
/// from fewer elements are rejected outright unless the sample covers the
/// whole window.
inline constexpr std::uint64_t kMinSampleForNormalApprox = 30;

/// \brief Approximate scalar result + its error estimate.
struct ScalarEstimate {
  double estimate = 0.0;
  /// ε̂_w: relative error (mean-like) or rank error (quantile).
  double epsilon_hat = 0.0;
  /// ε̂_w <= ε: the window may be expedited.
  bool accepted = false;
};

/// \brief Estimates a mean-like scalar aggregate (count, sum, mean,
/// variance, stddev, min, max) from the budget's reservoir sample.
///
/// \param agg          the aggregate; must not be holistic (see
///                     EstimateScalarQuantile for percentiles)
/// \param sample       simple random sample of the window's values
/// \param window_stats full-window moments, tracked incrementally at tuple
///                     arrival (the "statistical estimates" the paper
///                     stores in b); supplies σ̂ and μ̂4 for the CI width
/// \param window_size  |S_w|
/// \param spec         the user's (ε, α)
///
/// min/max carry no CI theory under s.r.s.; they are estimated but never
/// accepted (ε̂ = +inf), so SPEAr falls back to exact processing — in
/// practice those run on the incremental path anyway.
Result<ScalarEstimate> EstimateScalar(const AggregateSpec& agg,
                                      const std::vector<double>& sample,
                                      const RunningStats& window_stats,
                                      std::uint64_t window_size,
                                      const AccuracySpec& spec);

/// \brief Estimates a phi-quantile from the reservoir sample, accepting
/// when the budget meets the required sample size (Manku et al. [48]
/// style bound, with finite-population correction). ε is interpreted as
/// *rank* error for quantiles, following the paper.
///
/// `sample` is taken by value: the estimator sorts it.
Result<ScalarEstimate> EstimateScalarQuantile(
    double phi, std::vector<double> sample, std::uint64_t window_size,
    const AccuracySpec& spec,
    QuantileBound bound = QuantileBound::kHoeffding);

/// \brief Achieved rank-error bound for a quantile estimated from n of N
/// elements at the given confidence (the inverse of the required-sample-
/// size formula). Exposed for tests and for the grouped estimator.
Result<double> AchievedQuantileError(std::uint64_t n, std::uint64_t window_size,
                                     double phi, double confidence,
                                     QuantileBound bound);

/// \brief Decision for a grouped window: aggregated error + the congress
/// sample allocation that the accept path materializes.
struct GroupedEstimate {
  /// Aggregated ε̂_w over all groups (L1 by default).
  double epsilon_hat = 0.0;
  bool accepted = false;
  /// Basic-congress allocation (one entry per group, sorted by key).
  std::vector<GroupAllocation> allocations;
  /// Per-group error estimates e_g, aligned with `allocations`.
  std::vector<double> group_errors;
};

/// \brief Estimates a grouped aggregate's accuracy from the per-group
/// frequencies and moments tracked in b (paper Sec. 4.1-4.2, Grouped).
///
/// Rejects outright (without allocating) when the tracker overflowed the
/// budget's group capacity. Otherwise allocates the stratified sample via
/// basic congress, computes each group's error e_g under that allocation,
/// and aggregates with `norm`.
Result<GroupedEstimate> EstimateGrouped(
    const AggregateSpec& agg, const GroupStatsTracker& tracker,
    std::size_t budget, const AccuracySpec& spec,
    GroupErrorNorm norm = GroupErrorNorm::kL1,
    QuantileBound bound = QuantileBound::kHoeffding);

/// \brief Same decision, but under a caller-provided sample allocation —
/// used when the group count is known at CQ submission and SPEAr already
/// holds per-group reservoirs of fixed capacity (paper Sec. 4.1: "when the
/// number of groups is defined by the user ... SPEAr is able to create a
/// stratified sample at tuple arrival").
Result<GroupedEstimate> EstimateGroupedWithAllocations(
    const AggregateSpec& agg, const GroupStatsTracker& tracker,
    std::vector<GroupAllocation> allocations, const AccuracySpec& spec,
    GroupErrorNorm norm = GroupErrorNorm::kL1,
    QuantileBound bound = QuantileBound::kHoeffding);

/// \brief User-defined accuracy estimation for custom approximate stateful
/// operations (paper Sec. 4: "SPEAr offers an API for defining custom
/// approximate stateful operations. A user has to define an
/// accuracy-estimation function...").
using CustomScalarEstimator = std::function<Result<ScalarEstimate>(
    const std::vector<double>& sample, const RunningStats& window_stats,
    std::uint64_t window_size, const AccuracySpec& spec)>;

}  // namespace spear
