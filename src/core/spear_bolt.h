#pragma once

#include <memory>

#include "checkpoint/checkpointable.h"
#include "common/rng.h"
#include "core/spear_config.h"
#include "core/spear_window_manager.h"
#include "runtime/operator.h"
#include "runtime/windowed_bolt.h"

/// \file spear_bolt.h
/// The runtime stage wrapping a SpearWindowManager — the paper's SpearBolt,
/// which "disassociates execution into production and delivery of a
/// result": production happens in the manager (approximate from the budget
/// or exact from the window), delivery encodes each WindowResult as output
/// tuples (same layout as the exact bolt, so sinks are interchangeable).

namespace spear {

/// \brief SPEAr's stateful windowed stage.
class SpearBolt : public Bolt, public Checkpointable {
 public:
  /// \param config          the operation's window/aggregate/accuracy/budget
  /// \param value_extractor aggregation value
  /// \param key_extractor   group key; null => scalar
  /// \param storage         spill target (required iff
  ///                        config.buffer_memory_capacity > 0)
  /// \param decision_sink optional collector receiving this worker's
  ///        DecisionStats when the stream finishes
  SpearBolt(SpearOperatorConfig config, ValueExtractor value_extractor,
            KeyExtractor key_extractor = nullptr,
            SecondaryStorage* storage = nullptr,
            DecisionStatsCollector* decision_sink = nullptr);

  Status Prepare(const BoltContext& ctx) override;
  Status Execute(const Tuple& tuple, Emitter* out) override;
  Status OnWatermark(Timestamp watermark, Emitter* out) override;
  Status Finish(Emitter* out) override;
  Status OnDeliveryAnomaly(Emitter* out) override;

  /// Expedite/fallback counters (valid after the run).
  const DecisionStats& decision_stats() const {
    return manager_->decision_stats();
  }

  /// The underlying manager (valid after Prepare). Chaos tests reach
  /// through it for hooks like CorruptBudgetForTesting.
  SpearWindowManager* manager() { return manager_.get(); }

  /// Checkpoint hooks forward to the window manager. The executor only
  /// snapshots/restores between Prepare and Finish, when manager_ is live.
  Checkpointable* checkpointable() override { return this; }
  Result<std::string> SnapshotState() override;
  Status RestoreState(const std::string& payload) override;
  void NoteRecoveryLoss(std::uint64_t lost_tuples) override;

 private:
  Status ProcessWatermark(std::int64_t watermark, Emitter* out);

  const SpearOperatorConfig config_;
  const ValueExtractor value_extractor_;
  const KeyExtractor key_extractor_;
  SecondaryStorage* storage_;
  DecisionStatsCollector* decision_sink_;
  std::unique_ptr<SpearWindowManager> manager_;
  WorkerMetrics* metrics_ = nullptr;
  OverloadDetector* overload_ = nullptr;
  Rng shed_rng_;
  std::int64_t sequence_ = 0;
};

}  // namespace spear
