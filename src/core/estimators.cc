#include "core/estimators.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/confidence.h"
#include "stats/quantile.h"

namespace spear {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double Fpc(std::uint64_t n, std::uint64_t population) {
  if (population == 0 || n >= population) return 0.0;
  return std::sqrt(1.0 -
                   static_cast<double>(n) / static_cast<double>(population));
}

/// Relative CI half-width of a mean estimated from n of N values whose
/// (full-window) stddev is sigma and whose estimate is `estimate`.
double RelativeMeanError(double estimate, double sigma, std::uint64_t n,
                         std::uint64_t population, double z) {
  const double half = z * sigma / std::sqrt(static_cast<double>(n)) *
                      Fpc(n, population);
  if (half == 0.0) return 0.0;
  if (estimate == 0.0) return kInf;
  return half / std::fabs(estimate);
}

/// Relative CI half-width of a variance estimate: Var(s^2) ~ (mu4 - s^4)/n.
double RelativeVarianceError(double variance, double mu4, std::uint64_t n,
                             std::uint64_t population, double z) {
  if (variance == 0.0) return 0.0;  // constant data: sample is exact
  const double var_of_var =
      std::max(mu4 - variance * variance, 0.0) / static_cast<double>(n);
  const double half = z * std::sqrt(var_of_var) * Fpc(n, population);
  return half / variance;
}

}  // namespace

Result<ScalarEstimate> EstimateScalar(const AggregateSpec& agg,
                                      const std::vector<double>& sample,
                                      const RunningStats& window_stats,
                                      std::uint64_t window_size,
                                      const AccuracySpec& spec) {
  if (agg.IsHolistic()) {
    return Status::FailedPrecondition(
        "use EstimateScalarQuantile for holistic aggregates");
  }
  SPEAR_RETURN_NOT_OK(spec.Validate());
  if (sample.empty()) return Status::Invalid("empty sample");
  if (window_size < sample.size()) {
    return Status::Invalid("window smaller than sample");
  }
  SPEAR_ASSIGN_OR_RETURN(const double z, NormalDeviate(spec.confidence));

  RunningStats sample_stats;
  for (double v : sample) sample_stats.Update(v);
  const auto n = static_cast<std::uint64_t>(sample.size());
  const double sigma = window_stats.PopulationStdDev();

  // CLT validity guard: a partial sample this small cannot support the
  // normal approximation (count stays exact — it never uses the CI).
  const bool clt_invalid = n < kMinSampleForNormalApprox && n < window_size &&
                           agg.kind != AggregateKind::kCount;

  ScalarEstimate out;
  switch (agg.kind) {
    case AggregateKind::kCount:
      // The window size is tracked exactly at tuple arrival.
      out.estimate = static_cast<double>(window_size);
      out.epsilon_hat = 0.0;
      break;
    case AggregateKind::kMean:
      out.estimate = sample_stats.mean();
      out.epsilon_hat =
          RelativeMeanError(out.estimate, sigma, n, window_size, z);
      break;
    case AggregateKind::kSum:
      // N * sample mean; relative error equals the mean's relative error.
      out.estimate =
          static_cast<double>(window_size) * sample_stats.mean();
      out.epsilon_hat =
          RelativeMeanError(sample_stats.mean(), sigma, n, window_size, z);
      break;
    case AggregateKind::kVariance:
      out.estimate = sample_stats.SampleVariance();
      out.epsilon_hat = RelativeVarianceError(
          window_stats.PopulationVariance(),
          window_stats.FourthCentralMoment(), n, window_size, z);
      break;
    case AggregateKind::kStdDev:
      out.estimate = sample_stats.SampleStdDev();
      // Delta method: rel. error of sqrt(x) is half the rel. error of x.
      out.epsilon_hat = RelativeVarianceError(
                            window_stats.PopulationVariance(),
                            window_stats.FourthCentralMoment(), n,
                            window_size, z) /
                        2.0;
      break;
    case AggregateKind::kMin:
      out.estimate = sample_stats.min();
      out.epsilon_hat = n == window_size ? 0.0 : kInf;
      break;
    case AggregateKind::kMax:
      out.estimate = sample_stats.max();
      out.epsilon_hat = n == window_size ? 0.0 : kInf;
      break;
    case AggregateKind::kPercentile:
      return Status::Internal("unreachable: holistic handled above");
  }
  if (clt_invalid) out.epsilon_hat = kInf;
  out.accepted = out.epsilon_hat <= spec.epsilon;
  return out;
}

Result<double> AchievedQuantileError(std::uint64_t n,
                                     std::uint64_t window_size, double phi,
                                     double confidence, QuantileBound bound) {
  if (n == 0) return Status::Invalid("empty sample");
  if (window_size < n) return Status::Invalid("window smaller than sample");
  const double fpc_sq =
      1.0 - static_cast<double>(n) / static_cast<double>(window_size);
  if (fpc_sq <= 0.0) return 0.0;  // whole window sampled: exact
  switch (bound) {
    case QuantileBound::kHoeffding: {
      const double delta = 1.0 - confidence;
      return std::sqrt(std::log(2.0 / delta) * fpc_sq /
                       (2.0 * static_cast<double>(n)));
    }
    case QuantileBound::kNormalRank: {
      SPEAR_ASSIGN_OR_RETURN(const double z, NormalDeviate(confidence));
      const double var = std::max(phi * (1.0 - phi), 1e-6);
      return z * std::sqrt(var * fpc_sq / static_cast<double>(n));
    }
  }
  return Status::Internal("unknown quantile bound");
}

Result<ScalarEstimate> EstimateScalarQuantile(double phi,
                                              std::vector<double> sample,
                                              std::uint64_t window_size,
                                              const AccuracySpec& spec,
                                              QuantileBound bound) {
  SPEAR_RETURN_NOT_OK(spec.Validate());
  if (sample.empty()) return Status::Invalid("empty sample");
  if (!(phi >= 0.0 && phi <= 1.0)) {
    return Status::Invalid("phi must be in [0, 1]");
  }
  const auto n = static_cast<std::uint64_t>(sample.size());
  SPEAR_ASSIGN_OR_RETURN(
      const double achieved,
      AchievedQuantileError(n, window_size, phi, spec.confidence, bound));

  ScalarEstimate out;
  std::sort(sample.begin(), sample.end());
  SPEAR_ASSIGN_OR_RETURN(out.estimate, SortedQuantile(sample, phi));
  out.epsilon_hat = achieved;
  out.accepted = achieved <= spec.epsilon;
  return out;
}

Result<GroupedEstimate> EstimateGrouped(const AggregateSpec& agg,
                                        const GroupStatsTracker& tracker,
                                        std::size_t budget,
                                        const AccuracySpec& spec,
                                        GroupErrorNorm norm,
                                        QuantileBound bound) {
  SPEAR_RETURN_NOT_OK(spec.Validate());
  if (budget == 0) return Status::Invalid("budget must be > 0");

  GroupedEstimate out;
  // R2 of the model requires every distinct group in the result; when the
  // budget could not even hold the groups' metadata, SPEAr must process
  // the window exactly (paper Sec. 4.1).
  if (tracker.overflowed() || tracker.num_groups() == 0 ||
      tracker.num_groups() > budget) {
    out.epsilon_hat = std::numeric_limits<double>::infinity();
    out.accepted = false;
    return out;
  }

  // Basic-congress allocation computed straight off the tracker (this is
  // the per-window hot path for grouped operations: avoid rebuilding
  // string-keyed maps; see CongressAllocate for the reference
  // implementation the tests pin down).
  std::uint64_t total = 0;
  for (const auto& [key, stats] : tracker.groups()) total += stats.count();
  const double g = static_cast<double>(tracker.num_groups());
  const double senate = 1.0 / g;
  double total_weight = 0.0;
  for (const auto& [key, stats] : tracker.groups()) {
    total_weight += std::max(
        static_cast<double>(stats.count()) / static_cast<double>(total),
        senate);
  }
  std::vector<GroupAllocation> allocations;
  allocations.reserve(tracker.num_groups());
  for (const auto& [key, stats] : tracker.groups()) {
    const double w = std::max(
        static_cast<double>(stats.count()) / static_cast<double>(total),
        senate);
    auto n = static_cast<std::uint64_t>(
        std::floor(w / total_weight * static_cast<double>(budget)));
    n = std::min<std::uint64_t>(std::max<std::uint64_t>(n, 1),
                                stats.count());
    allocations.push_back(GroupAllocation{key, stats.count(), n});
  }
  std::sort(allocations.begin(), allocations.end(),
            [](const GroupAllocation& a, const GroupAllocation& b) {
              return a.key < b.key;
            });
  return EstimateGroupedWithAllocations(agg, tracker, std::move(allocations),
                                        spec, norm, bound);
}

Result<GroupedEstimate> EstimateGroupedWithAllocations(
    const AggregateSpec& agg, const GroupStatsTracker& tracker,
    std::vector<GroupAllocation> allocations, const AccuracySpec& spec,
    GroupErrorNorm norm, QuantileBound bound) {
  SPEAR_RETURN_NOT_OK(spec.Validate());
  if (allocations.empty()) return Status::Invalid("no allocations");

  GroupedEstimate out;
  out.allocations = std::move(allocations);
  SPEAR_ASSIGN_OR_RETURN(const double z, NormalDeviate(spec.confidence));

  out.group_errors.reserve(out.allocations.size());
  for (const GroupAllocation& alloc : out.allocations) {
    const RunningStats& g = tracker.groups().at(alloc.key);
    double e = 0.0;
    switch (agg.kind) {
      case AggregateKind::kCount:
        e = 0.0;  // frequencies are tracked exactly
        break;
      case AggregateKind::kMean:
      case AggregateKind::kSum:
        e = RelativeMeanError(g.mean(), g.PopulationStdDev(),
                              alloc.sample_size, alloc.frequency, z);
        break;
      case AggregateKind::kVariance:
        e = RelativeVarianceError(g.PopulationVariance(),
                                  g.FourthCentralMoment(), alloc.sample_size,
                                  alloc.frequency, z);
        break;
      case AggregateKind::kStdDev:
        e = RelativeVarianceError(g.PopulationVariance(),
                                  g.FourthCentralMoment(), alloc.sample_size,
                                  alloc.frequency, z) /
            2.0;
        break;
      case AggregateKind::kMin:
      case AggregateKind::kMax:
        e = alloc.sample_size == alloc.frequency ? 0.0 : kInf;
        break;
      case AggregateKind::kPercentile: {
        SPEAR_ASSIGN_OR_RETURN(
            e, AchievedQuantileError(alloc.sample_size, alloc.frequency,
                                     agg.phi, spec.confidence, bound));
        break;
      }
    }
    out.group_errors.push_back(e);
  }

  SPEAR_ASSIGN_OR_RETURN(out.epsilon_hat,
                         AggregateGroupErrors(out.group_errors, norm));
  out.accepted = out.epsilon_hat <= spec.epsilon;
  return out;
}

}  // namespace spear
