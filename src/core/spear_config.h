#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/retry_policy.h"
#include "core/accuracy_spec.h"
#include "core/budget_controller.h"
#include "core/estimators.h"
#include "ops/aggregate.h"
#include "stats/error_metrics.h"
#include "stats/sample_size.h"
#include "tuple/field_extractor.h"
#include "window/window_spec.h"

/// \file spear_config.h
/// Everything a SPEAr stateful operation needs beyond the exact operator:
/// the accuracy spec, the budget, and the knobs the paper's experiments
/// toggle (incremental optimization on/off, known group count, error norm,
/// quantile bound).

namespace spear {

/// \brief Configuration of one SPEAr stateful windowed operation.
struct SpearOperatorConfig {
  AggregateSpec aggregate = AggregateSpec::Mean();
  WindowSpec window = WindowSpec::TumblingTime(Minutes(1));
  AccuracySpec accuracy;
  Budget budget = Budget::Tuples(1000);

  /// Number of distinct groups declared at CQ submission; 0 = unknown.
  /// When known, SPEAr builds the stratified sample at tuple arrival by
  /// splitting b equally among groups (GCM's configuration in the paper).
  std::size_t known_num_groups = 0;

  /// Norm aggregating per-group errors into epsilon_hat (paper: L1).
  GroupErrorNorm group_error_norm = GroupErrorNorm::kL1;

  /// Bound used by the quantile budget test. The normal rank bound is the
  /// default (it matches the paper's budgets, e.g. b=150 for the DEC
  /// median at eps=10%); kHoeffding is the distribution-free conservative
  /// alternative.
  QuantileBound quantile_bound = QuantileBound::kNormalRank;

  /// Non-holistic scalar fast path: update R_w at tuple arrival and emit
  /// it exactly at watermark (Sec. 4.1). The Fig. 11/12 experiments turn
  /// this off to exercise the generic sampling path.
  bool incremental_optimization = true;

  /// Optional user-supplied accuracy estimation for custom approximate
  /// operations; overrides the built-in scalar estimators when set.
  CustomScalarEstimator custom_estimator;

  /// Online budget adaptation (the paper's future-work extension): when
  /// true, each new window's sample budget comes from an AIMD
  /// BudgetController seeded with `budget` and bounded by
  /// `adaptive_options` — fallbacks grow it, comfortable accepts shrink
  /// it. When false (default, the paper's configuration), the budget is
  /// fixed.
  bool adaptive_budget = false;
  BudgetController::Options adaptive_options;

  /// Raw tuple buffer budget in tuples before spilling to S (0 =
  /// unlimited, no spill).
  std::size_t buffer_memory_capacity = 0;

  /// Deadline budget for one window's exact fallback (0 = unbounded).
  /// An exact path that exceeds it is aborted cooperatively — unspill and
  /// materialization check the clock — and the window is emitted from its
  /// budget state with `degraded=true`, so one pathological window cannot
  /// stall the DAG. Corrupted-budget windows are exempt: with no usable
  /// approximation, exact is the only correct answer.
  DurationMs exact_deadline_ms = 0;

  /// Seed for the reservoir samplers (deterministic experiments).
  std::uint64_t seed = 0x5EA4;

  /// Retry policy for transient secondary-storage failures (spill and
  /// unspill). Storage retries live inside the window manager, not the
  /// executor, because re-executing a whole tuple would double-ingest it.
  RetryPolicy storage_retry = RetryPolicy::Default();

  /// Optional admission check (see RequireNumericFields): a tuple it
  /// rejects is surfaced as a data error — quarantined by the supervised
  /// executor — before touching window state.
  TupleValidator validate;

  Status Validate() const {
    SPEAR_RETURN_NOT_OK(accuracy.Validate());
    SPEAR_RETURN_NOT_OK(budget.Validate());
    SPEAR_RETURN_NOT_OK(storage_retry.Validate());
    if (!window.IsValid()) return Status::Invalid("invalid window spec");
    if (aggregate.kind == AggregateKind::kPercentile &&
        !(aggregate.phi >= 0.0 && aggregate.phi <= 1.0)) {
      return Status::Invalid("percentile phi must be in [0, 1]");
    }
    if (exact_deadline_ms < 0) {
      return Status::Invalid("exact deadline must be >= 0 (0 = unbounded)");
    }
    return Status::OK();
  }
};

/// \brief Per-operator counters describing SPEAr's expedite/fallback
/// decisions — the observability used by Figs. 10-12.
struct DecisionStats {
  std::uint64_t windows_total = 0;
  std::uint64_t windows_expedited = 0;
  std::uint64_t windows_exact = 0;
  /// Windows whose exact fallback could not run (spilled state unavailable
  /// after retries) and that were emitted as degraded approximations.
  std::uint64_t windows_degraded = 0;
  /// Windows that lived through a worker crash/restore cycle (their
  /// result tuple carries the trailing `recovered` flag; ε̂_w includes
  /// any replay-gap loss inflation).
  std::uint64_t windows_recovered = 0;
  /// Tuples ingested at tuple arrival (across all windows).
  std::uint64_t tuples_seen = 0;
  /// Tuples aggregated at watermark arrival (sample sizes on the
  /// expedited path, full windows on the exact path).
  std::uint64_t tuples_processed = 0;
  std::uint64_t late_tuples = 0;
  /// Tuples dropped at admission by accuracy-aware load shedding (their
  /// loss is folded into the affected windows' ε̂_w).
  std::uint64_t tuples_shed = 0;
  /// Emitted windows whose ε̂_w includes shed-loss inflation.
  std::uint64_t windows_shed = 0;
  /// Exact fallbacks aborted at the deadline (emitted degraded instead).
  std::uint64_t deadline_aborts = 0;

  double ExpediteRate() const {
    return windows_total == 0
               ? 0.0
               : static_cast<double>(windows_expedited) /
                     static_cast<double>(windows_total);
  }

  /// Element-wise sum (for aggregating across workers).
  void Accumulate(const DecisionStats& other) {
    windows_total += other.windows_total;
    windows_expedited += other.windows_expedited;
    windows_exact += other.windows_exact;
    windows_degraded += other.windows_degraded;
    windows_recovered += other.windows_recovered;
    tuples_seen += other.tuples_seen;
    tuples_processed += other.tuples_processed;
    late_tuples += other.late_tuples;
    tuples_shed += other.tuples_shed;
    windows_shed += other.windows_shed;
    deadline_aborts += other.deadline_aborts;
  }
};

/// \brief Thread-safe sink collecting each worker's DecisionStats at the
/// end of a run (wired through SpearTopologyBuilder::CollectDecisions so
/// benches can report expedite rates, as in Figs. 10-12).
class DecisionStatsCollector {
 public:
  void Add(const DecisionStats& stats) {
    std::lock_guard<std::mutex> lock(mutex_);
    per_worker_.push_back(stats);
  }

  /// Sum across workers.
  DecisionStats Total() const {
    std::lock_guard<std::mutex> lock(mutex_);
    DecisionStats total;
    for (const DecisionStats& s : per_worker_) total.Accumulate(s);
    return total;
  }

  std::vector<DecisionStats> PerWorker() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return per_worker_;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    per_worker_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<DecisionStats> per_worker_;
};

}  // namespace spear
