#pragma once

#include <memory>
#include <string>

#include "core/spear_bolt.h"
#include "core/spear_config.h"
#include "runtime/countmin_bolt.h"
#include "runtime/topology.h"
#include "runtime/windowed_bolt.h"

/// \file spear_topology_builder.h
/// The user-facing CQ API of the paper's Fig. 5, in C++:
///
///   auto cq = SpearTopologyBuilder()
///                 .Source(rides)
///                 .Time(0)                                // x -> x.time
///                 .SlidingWindowOf(Minutes(15), Minutes(5))
///                 .Percentile(NumericField(2), 0.95)      // x -> x.fare
///                 .Budget(Budget::Bytes(1 * kMiB))
///                 .Error(0.10, 0.95)
///                 .Build();
///
/// The same CQ can be compiled to different engines (SPEAr, exact Storm
/// baseline, incremental, CountMin) via Engine(), which is how the
/// benchmark harness runs identical queries across systems.

namespace spear {

/// Which execution engine materializes the stateful operation.
enum class ExecutionEngine {
  kSpear,        ///< SPEAr (default): approximate with accuracy guarantees
  kExact,        ///< Storm baseline: exact, single-buffer design
  kExactMulti,   ///< exact with the multiple-buffers (Flink) design
  kIncremental,  ///< Inc-Storm: incremental accumulators (non-holistic)
  kCountMin,     ///< Storm + CountMin sketch (grouped mean only)
  kGkQuantile,   ///< Greenwald-Khanna summary (scalar percentile only)
};

const char* ExecutionEngineName(ExecutionEngine engine);

/// \brief Fluent CQ definition with SPEAr's budget/error extensions.
class SpearTopologyBuilder {
 public:
  /// Sets the input stream and its watermarking policy.
  SpearTopologyBuilder& Source(std::shared_ptr<Spout> spout,
                               DurationMs watermark_interval = 0,
                               DurationMs max_lateness = 0);

  /// Adds the `time(x -> x.field)` annotation stage.
  SpearTopologyBuilder& Time(std::size_t time_field);

  SpearTopologyBuilder& SlidingWindowOf(DurationMs range, DurationMs slide);
  SpearTopologyBuilder& TumblingWindowOf(DurationMs range);
  SpearTopologyBuilder& SlidingCountWindowOf(std::int64_t range,
                                             std::int64_t slide);
  SpearTopologyBuilder& TumblingCountWindowOf(std::int64_t range);

  // ---- stateful operation (exactly one) --------------------------------
  SpearTopologyBuilder& Count();
  SpearTopologyBuilder& Sum(ValueExtractor value);
  SpearTopologyBuilder& Mean(ValueExtractor value);
  SpearTopologyBuilder& Variance(ValueExtractor value);
  SpearTopologyBuilder& StdDev(ValueExtractor value);
  SpearTopologyBuilder& Percentile(ValueExtractor value, double phi);
  SpearTopologyBuilder& Median(ValueExtractor value);

  /// Turns the operation into a grouped one (a result per distinct group).
  SpearTopologyBuilder& GroupBy(KeyExtractor key);

  // ---- SPEAr extensions (Fig. 5) ----------------------------------------
  SpearTopologyBuilder& SetBudget(Budget budget);
  /// `.error(10%, 95%)`: relative error bound and confidence.
  SpearTopologyBuilder& Error(double epsilon, double confidence);

  /// Declares the number of distinct groups at submission time (enables
  /// tuple-arrival stratified sampling, the GCM configuration).
  SpearTopologyBuilder& KnownGroups(std::size_t num_groups);

  /// Disables the non-holistic incremental fast path (Figs. 11-12).
  SpearTopologyBuilder& DisableIncrementalOptimization();

  /// Enables online budget adaptation (the paper's future-work extension):
  /// the configured budget seeds an AIMD controller that grows on
  /// fallbacks and shrinks on comfortable accepts.
  SpearTopologyBuilder& AdaptiveBudget(
      BudgetController::Options options = BudgetController::Options{});

  /// Installs a user-defined accuracy estimator (custom approximate
  /// stateful operations).
  SpearTopologyBuilder& CustomEstimator(CustomScalarEstimator estimator);

  /// Collects each SPEAr worker's DecisionStats at end of stream (SPEAr
  /// engine only; the harness for Figs. 10-12 uses this).
  SpearTopologyBuilder& CollectDecisions(DecisionStatsCollector* sink);

  // ---- robustness ---------------------------------------------------------
  /// Admission check run before each tuple is ingested into window state;
  /// rejected tuples become quarantined dead letters (see
  /// RequireNumericFields).
  SpearTopologyBuilder& ValidateTuples(TupleValidator validator);

  /// Retry policy for transient secondary-storage failures inside the
  /// stateful operator (spill/unspill).
  SpearTopologyBuilder& StorageRetry(RetryPolicy policy);

  /// Retry policy for transient Execute failures at the stateful stage
  /// (executor-level supervision).
  SpearTopologyBuilder& StageRetry(RetryPolicy policy);

  /// Chaos testing: wires `injector` into the compiled plan — the spout
  /// and stateful bolts are wrapped with the fault-injecting decorators
  /// for whichever sites the plan arms, and the storage (when registered
  /// via SpillOver) should be given the same injector by the caller.
  SpearTopologyBuilder& InjectFaults(FaultInjector* injector);

  /// Enables checkpoint/restore and crash recovery (Topology::checkpoint):
  /// stateful workers snapshot their O(b) budget state every
  /// `config.interval` ms of watermark progress and are restarted from the
  /// latest snapshot on a crash, with replay-gap loss folded into ε̂_w.
  /// Requires a time-based window (count-based coordinates are assigned
  /// from a per-worker sequence that does not survive a restart) and a
  /// replayable source spout.
  SpearTopologyBuilder& Checkpoint(CheckpointConfig config);

  /// Caps retained dead-letter/suppressed-error entries (see
  /// Topology::max_dead_letters; default 1024).
  SpearTopologyBuilder& DeadLetterCap(std::size_t cap);

  // ---- overload control ---------------------------------------------------
  /// Arms accuracy-aware load shedding against a per-window latency SLO
  /// (ms): every stage gets an OverloadDetector and the SPEAr bolts shed
  /// admissions while tripped, folding the shed ratio into ε̂_w exactly
  /// like recovery loss (windows past ε emit degraded).
  SpearTopologyBuilder& LatencySlo(DurationMs slo_ms);

  /// Replaces the shed policy (only effective with LatencySlo).
  SpearTopologyBuilder& Shed(ShedPolicy policy);

  /// Deadline budget (ms) for one window's exact fallback: past it the
  /// fallback is aborted cooperatively and the window is emitted from its
  /// budget state with degraded=true (0 = unbounded, the default).
  SpearTopologyBuilder& ExactDeadline(DurationMs deadline_ms);

  /// Arms the watermark watchdog: a source idle for `idle_ms` with empty
  /// stage-0 queues is declared stalled and the stream is closed
  /// abnormally (open windows emit degraded instead of hanging the DAG).
  SpearTopologyBuilder& WatermarkWatchdog(DurationMs idle_ms);

  // ---- observability ------------------------------------------------------
  /// Enables exported metrics (per-worker obs::MetricsRegistry shards;
  /// final scrape in RunReport::observability; optional periodic sampler
  /// via `options`). Off by default.
  SpearTopologyBuilder& Metrics(obs::MetricsOptions options = {});

  /// Enables per-window TraceSpan recording of the full SPEAr decision
  /// lineage (arrivals, budget, ε̂_w terms, verdict; see obs/trace.h).
  /// Off by default; `options` controls sampling and the per-worker cap.
  SpearTopologyBuilder& Trace(obs::TraceOptions options = {});

  // ---- execution configuration ------------------------------------------
  SpearTopologyBuilder& Engine(ExecutionEngine engine);
  SpearTopologyBuilder& Parallelism(int workers);
  /// Worker raw-buffer capacity in tuples before spilling to `storage`.
  SpearTopologyBuilder& SpillOver(std::size_t memory_capacity,
                                  SecondaryStorage* storage);
  SpearTopologyBuilder& QueueCapacity(std::size_t capacity);

  /// Name of the stateful stage in metrics ("stateful").
  static const char* StatefulStageName() { return "stateful"; }

  /// Validates the CQ and compiles it to an executable topology.
  Result<Topology> Build() const;

 private:
  std::shared_ptr<Spout> spout_;
  DurationMs watermark_interval_ = 0;
  DurationMs max_lateness_ = 0;
  bool has_time_stage_ = false;
  std::size_t time_field_ = 0;

  bool has_window_ = false;
  bool has_aggregate_ = false;
  SpearOperatorConfig config_;
  ValueExtractor value_extractor_;
  KeyExtractor key_extractor_;

  ExecutionEngine engine_ = ExecutionEngine::kSpear;
  int parallelism_ = 1;
  SecondaryStorage* storage_ = nullptr;
  std::size_t queue_capacity_ = 1024;
  DecisionStatsCollector* decision_sink_ = nullptr;
  RetryPolicy stage_retry_ = RetryPolicy::None();
  FaultInjector* fault_injector_ = nullptr;
  CheckpointConfig checkpoint_;
  std::size_t max_dead_letters_ = 1024;
  OverloadConfig overload_;
  obs::ObsConfig obs_;
};

}  // namespace spear
