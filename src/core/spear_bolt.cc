#include "core/spear_bolt.h"

#include "runtime/overload.h"

namespace spear {

SpearBolt::SpearBolt(SpearOperatorConfig config,
                     ValueExtractor value_extractor,
                     KeyExtractor key_extractor, SecondaryStorage* storage,
                     DecisionStatsCollector* decision_sink)
    : config_(std::move(config)),
      value_extractor_(std::move(value_extractor)),
      key_extractor_(std::move(key_extractor)),
      storage_(storage),
      decision_sink_(decision_sink) {}

Result<std::string> SpearBolt::SnapshotState() {
  if (manager_ == nullptr) {
    return Status::FailedPrecondition("spear bolt: snapshot before Prepare");
  }
  return manager_->SnapshotState();
}

Status SpearBolt::RestoreState(const std::string& payload) {
  if (manager_ == nullptr) {
    return Status::FailedPrecondition("spear bolt: restore before Prepare");
  }
  return manager_->RestoreState(payload);
}

void SpearBolt::NoteRecoveryLoss(std::uint64_t lost_tuples) {
  if (manager_ != nullptr) manager_->NoteRecoveryLoss(lost_tuples);
}

Status SpearBolt::Finish(Emitter* out) {
  (void)out;
  if (decision_sink_ != nullptr && manager_ != nullptr) {
    decision_sink_->Add(manager_->decision_stats());
  }
  return Status::OK();
}

Status SpearBolt::Prepare(const BoltContext& ctx) {
  metrics_ = ctx.metrics;
  overload_ = ctx.overload;
  // Per-task shed stream, decorrelated from the reservoir samplers so the
  // drop decision never interacts with replacement choices.
  shed_rng_ = Rng(config_.seed ^
                  (0xC3A5C85C97CB3127ULL * static_cast<std::uint64_t>(
                                               ctx.task_id + 1)));
  manager_ = std::make_unique<SpearWindowManager>(
      config_, value_extractor_, key_extractor_, storage_,
      "spear-bolt-" + std::to_string(ctx.task_id));
  manager_->SetMetrics(ctx.metrics);
  manager_->SetObservability(
      ctx.obs, ctx.tracer,
      ctx.metrics != nullptr ? ctx.metrics->stage() : "stateful",
      ctx.task_id);
  return Status::OK();
}

Status SpearBolt::OnDeliveryAnomaly(Emitter* out) {
  (void)out;
  if (manager_ != nullptr) manager_->NoteStreamTruncation();
  return Status::OK();
}

Status SpearBolt::Execute(const Tuple& tuple, Emitter* out) {
  // Accuracy-aware load shedding happens before any other admission work:
  // a shed tuple is charged to its window's ε̂_w but costs neither
  // validation nor ingestion, which is what relieves an overloaded stage.
  if (overload_ != nullptr) {
    const double p = overload_->shed_probability();
    if (p > 0.0 && shed_rng_.NextDouble() < p) {
      const std::int64_t coord = config_.window.type == WindowType::kCountBased
                                     ? sequence_++
                                     : tuple.event_time();
      manager_->OnTupleShed(coord);
      if (metrics_ != nullptr) metrics_->AddTuplesShed(1);
      if (config_.window.type == WindowType::kCountBased) {
        Status emitted = ProcessWatermark(sequence_, out);
        if (!emitted.ok() && emitted.IsUnavailable()) {
          return Status::Internal("window emission failed after retries: " +
                                  emitted.message());
        }
        return emitted;
      }
      return Status::OK();
    }
  }
  // Admission check before any state mutation: a rejected tuple is a data
  // error the supervised executor quarantines; nothing was ingested, so
  // window state stays consistent.
  if (config_.validate) SPEAR_RETURN_NOT_OK(config_.validate(tuple));
  std::int64_t coord;
  if (config_.window.type == WindowType::kCountBased) {
    coord = sequence_++;
  } else {
    coord = tuple.event_time();
  }
  manager_->OnTuple(coord, tuple);
  if (config_.window.type == WindowType::kCountBased) {
    // The tuple is already ingested, so this Execute is no longer
    // idempotent: a transient emission failure must not look retryable to
    // the supervising executor (a retry would double-ingest the tuple).
    Status emitted = ProcessWatermark(sequence_, out);
    if (!emitted.ok() && emitted.IsUnavailable()) {
      return Status::Internal("window emission failed after retries: " +
                              emitted.message());
    }
    return emitted;
  }
  return Status::OK();
}

Status SpearBolt::OnWatermark(Timestamp watermark, Emitter* out) {
  if (config_.window.type == WindowType::kCountBased) return Status::OK();
  return ProcessWatermark(watermark, out);
}

Status SpearBolt::ProcessWatermark(std::int64_t watermark, Emitter* out) {
  Result<std::vector<WindowResult>> results =
      manager_->OnWatermark(watermark);
  if (!results.ok()) return results.status();

  for (WindowResult& result : *results) {
    if (overload_ != nullptr) {
      overload_->ObserveWindowLatency(result.processing_ns);
    }
    if (metrics_ != nullptr) {
      metrics_->RecordWindowNs(result.processing_ns);
      // Memory used for producing the result: the budget state when
      // expedited, the materialized window when exact (Fig. 7 semantics).
      if (result.approximate) {
        metrics_->RecordMemoryBytes(result.tuples_processed * sizeof(double) +
                                    sizeof(RunningStats));
      } else {
        metrics_->RecordMemoryBytes(result.window_size *
                                    (sizeof(Tuple) + 2 * sizeof(Value)));
      }
    }
    for (Tuple& t : WindowResultToTuples(result)) out->Emit(std::move(t));
  }
  return Status::OK();
}

}  // namespace spear
