#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/spear_config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ops/exact_operator.h"
#include "ops/window_result.h"
#include "runtime/metrics.h"
#include "stats/group_stats.h"
#include "stats/reservoir_sampler.h"
#include "storage/secondary_storage.h"
#include "tuple/field_extractor.h"

/// \file spear_window_manager.h
/// SPEAr's extension of the single-buffer window manager — the paper's
/// Algorithms 1 and 2 fused into Storm's tuple/watermark workflow
/// (Sec. 4.1-4.2).
///
/// Tuple arrival (Alg. 1): the raw tuple enters the arrival-ordered buffer
/// (spilling to S past the worker budget), and the *operation budget* b is
/// updated in O(1): per-window reservoir sample + running moments (scalar),
/// or per-group frequency/variance (grouped), or per-group reservoirs
/// (grouped with a known group count).
///
/// Watermark arrival (Alg. 2): for every complete window, an accuracy
/// estimate ε̂_w and approximate result R̂_w are produced from b alone. If
/// ε̂_w <= ε, R̂_w is emitted — O(b) work, no access to the raw window; the
/// single eviction scan the buffer design already pays doubles as the
/// stratified-sample construction scan for grouped operations. Otherwise
/// the whole window is materialized (possibly from S) and processed
/// exactly, matching a normal SPE's cost.

namespace spear {

/// \brief SPEAr execution modes, derived from the operator configuration.
enum class SpearMode {
  /// Non-holistic scalar with incremental optimization: exact R_w from a
  /// running accumulator; the budget sample is kept for anomaly recovery.
  kScalarIncremental,
  /// Scalar estimated from the reservoir sample (generic model path; also
  /// used when a custom estimator is installed).
  kScalarSampled,
  /// Holistic scalar (percentile): sample-size budget test.
  kScalarQuantile,
  /// Grouped, group count unknown: frequencies/variances tracked in b;
  /// stratified sample built during the eviction scan on accept.
  kGroupedUnknown,
  /// Grouped, group count declared at submission: per-group reservoirs
  /// maintained at tuple arrival; no scan needed on accept.
  kGroupedKnown,
};

const char* SpearModeName(SpearMode mode);

/// \brief One SPEAr worker's stateful-operation manager.
///
/// Single-threaded; each runtime worker owns one instance.
class SpearWindowManager {
 public:
  /// \param config         operation configuration (validated here)
  /// \param value_extractor pulls the aggregated value out of a tuple
  /// \param key_extractor  group key; null => scalar operation
  /// \param storage        spill target; required when
  ///                       config.buffer_memory_capacity > 0
  /// \param spill_key      S key prefix for this worker
  SpearWindowManager(SpearOperatorConfig config,
                     ValueExtractor value_extractor,
                     KeyExtractor key_extractor = nullptr,
                     SecondaryStorage* storage = nullptr,
                     std::string spill_key = "spear");

  /// Alg. 1. `coord` is the tuple's window coordinate (event time or
  /// sequence number).
  void OnTuple(std::int64_t coord, Tuple tuple);

  /// Accounts one tuple dropped at admission by load shedding before any
  /// ingest work (no buffer entry, no spill, no sampler offer). The shed
  /// count is exact per window: ε̂_w gains the shed ratio
  /// (lost+shed)/(count+lost+shed) — the same AF-Stream accounting as
  /// recovery loss — count/sum estimates are rescaled to the full
  /// population count+shed, and the exact fallback is off the table for
  /// the affected windows (their raw buffer is incomplete by design).
  void OnTupleShed(std::int64_t coord);

  /// Marks every active window truncated: the stream was closed abnormally
  /// (watermark watchdog gave up on a stalled source) and an unknown
  /// suffix of each window's input may be missing, so their results are
  /// emitted via the degraded path — the error bound is unverifiable.
  void NoteStreamTruncation();

  /// Alg. 2. Emits one WindowResult per complete non-empty window, in
  /// ascending window order.
  Result<std::vector<WindowResult>> OnWatermark(std::int64_t watermark);

  /// Reports an external delivery anomaly (e.g. an upstream failure or
  /// replay): every active window's incremental result is demoted to the
  /// sample-estimate path. Late tuples trigger this automatically for the
  /// active windows that should have contained them.
  void NotifyDeliveryAnomaly();

  /// Serializes the manager's O(b) state for checkpointing: budget state
  /// of every active window (running moments, reservoir contents, group
  /// trackers), watermark/window bookkeeping, the spill manifest, and the
  /// decision statistics. The raw in-memory tuple buffer is deliberately
  /// NOT serialized — that is the whole point of approximate fault
  /// tolerance (AF-Stream): the snapshot stays O(b), and what the buffer
  /// held is either replayed by the executor or accounted as loss.
  Result<std::string> SnapshotState() const;

  /// Replaces this manager's state with a snapshot produced by
  /// SnapshotState() on an identically configured manager. Every restored
  /// window is flagged `recovered`: its raw buffer is incomplete, so the
  /// exact fallback and the grouped stratified scan are off the table —
  /// those windows answer from the budget state (possibly degraded).
  /// Re-adopts the snapshot's spill manifest, truncating the storage run
  /// back to the manifest so post-restore replays cannot duplicate
  /// spilled tuples; an unavailable S drops the manifest instead (the
  /// recovered windows never materialize raw tuples anyway).
  Status RestoreState(const std::string& payload);

  /// Accounts `lost_tuples` consumed-but-unreplayable tuples (they fell
  /// off the executor's bounded replay log): every active window's ε̂_w
  /// gains the loss ratio lost/(count+lost) and the window is flagged
  /// anomalous + recovered. With no active window the loss is attached to
  /// the next window that opens.
  void NoteRecoveryLoss(std::uint64_t lost_tuples);

  SpearMode mode() const { return mode_; }
  const SpearOperatorConfig& config() const { return config_; }
  const DecisionStats& decision_stats() const { return decision_stats_; }

  /// Wires the owning worker's metrics (fault counters: storage retries,
  /// recoveries, degraded windows). Optional; null disables reporting.
  void SetMetrics(WorkerMetrics* metrics) { metrics_ = metrics; }

  /// Wires the observable layer: the worker's metrics shard (exported
  /// counters/histograms/gauges) and/or the per-window trace sink. Either
  /// may be null; `stage`/`task` label the emitted spans. Instruments are
  /// resolved here once, so the per-window updates stay lock-free.
  void SetObservability(obs::MetricsShard* shard, obs::WindowTracer* tracer,
                        std::string stage, int task);

  /// Test hook for the accuracy-audit guard: drops the loss accounting —
  /// shed/lost tuples stop inflating ε̂_w and stop rescaling count/sum
  /// estimates to the full population. Estimates then systematically
  /// overshoot their accuracy claim under shedding, which the statistical
  /// audit must detect (proving the audit would catch a real regression
  /// in the ε̂_w arithmetic).
  void IgnoreLossAccountingForTesting() { ignore_loss_accounting_ = true; }

  /// Spill attempts that stayed transiently failed after retries; the
  /// affected tuples were kept in memory past the budget instead.
  std::uint64_t spill_failures() const { return spill_failures_; }

  /// Test hook: wipes the budget state (samplers/trackers) of every
  /// active window, simulating corruption. Subsequent decisions detect it
  /// and fall back to exact processing.
  void CorruptBudgetForTesting();

  /// Tuples currently buffered (memory + spill).
  std::size_t BufferedTuples() const {
    return buffer_.size() + spilled_coords_.size();
  }

  /// Bytes of budget state (samples + statistics) across active windows —
  /// the "memory used for producing the result" of Fig. 7.
  std::size_t BudgetMemoryBytes() const;

  /// Bytes of raw buffered tuples resident in memory.
  std::size_t BufferMemoryBytes() const;

  /// The per-window sample capacity derived from the budget (the value
  /// new windows open with right now, when adaptive).
  std::size_t budget_elements() const;

  /// The adaptive controller, or null when the budget is fixed.
  const BudgetController* budget_controller() const {
    return budget_controller_ ? &*budget_controller_ : nullptr;
  }

 private:
  struct Entry {
    std::int64_t coord;
    Tuple tuple;
  };

  /// Budget state of one active window.
  struct WindowState {
    /// Sample budget this window was opened with (fixed-budget managers
    /// use the configured value; adaptive managers snapshot the
    /// controller at window creation).
    std::size_t budget = 0;
    std::uint64_t count = 0;               ///< |S_w| so far (exact)
    /// Delivery anomaly observed while this window was active (late or
    /// dropped tuples): incremental results can no longer be trusted as
    /// exact, so SPEAr falls back to the sample + accuracy estimate
    /// (paper Sec. 4.1: "SPEAr uses b's contents only when an anomaly is
    /// detected in tuple delivery").
    bool anomalous = false;
    /// The window lived through a crash/restore cycle: its raw buffer is
    /// incomplete, so exact fallback and buffer scans are unavailable.
    bool recovered = false;
    /// Consumed tuples lost from this window's budget state in recovery
    /// (beyond the replay log); inflates ε̂_w by lost/(count+lost).
    std::uint64_t lost = 0;
    /// Tuples shed at admission while this window was active (exact
    /// count, unlike `lost`); inflates ε̂_w together with `lost` and
    /// rescales count/sum estimates to the population count+shed.
    std::uint64_t shed = 0;
    /// The stream closed abnormally under this window (watchdog): an
    /// unknown suffix is missing, so the window must emit degraded.
    bool truncated = false;
    RunningStats stats;                    ///< full-window moments (scalar)
    std::unique_ptr<ReservoirSampler<double>> sample;  ///< scalar modes
    std::unique_ptr<GroupStatsTracker> groups;         ///< grouped modes
    /// Per-group reservoirs (kGroupedKnown only).
    std::unordered_map<std::string, ReservoirSampler<double>> group_samples;
  };

  static SpearMode DeriveMode(const SpearOperatorConfig& config,
                              bool is_grouped);

  WindowState& StateFor(std::int64_t window_start);
  void UpdateWindowState(WindowState* state, const Tuple& tuple);

  /// Decides + produces the result for one complete window. Sets
  /// `needs_tuples` when the exact fallback (or the grouped stratified
  /// scan) requires the raw window.
  Result<WindowResult> DecideWindow(const WindowBounds& bounds,
                                    WindowState* state, bool* needs_scan,
                                    bool* needs_exact);

  /// Scalar estimation dispatch (built-in or custom estimator).
  Result<ScalarEstimate> EstimateScalarForState(const WindowState& state);

  /// Builds the stratified sample for an accepted grouped-unknown window
  /// by scanning the buffer once, then evaluates every group.
  Status PopulateGroupedResultFromScan(
      const WindowBounds& bounds, const std::vector<GroupAllocation>& allocs,
      WindowResult* result);

  /// Evaluates groups from per-group reservoirs (kGroupedKnown accept).
  Status PopulateGroupedResultFromReservoirs(const WindowState& state,
                                             WindowResult* result);

  /// Materializes a window's tuples for exact processing. A non-zero
  /// `deadline_ns` (absolute, NowNs clock) makes the copy loop check the
  /// clock periodically and abort with Status::Cancelled once past it —
  /// the cooperative half of the deadline-bounded exact fallback.
  Result<CompleteWindow> MaterializeWindow(const WindowBounds& bounds,
                                           std::int64_t deadline_ns = 0);

  /// True when the window's budget state is internally inconsistent (null
  /// sampler/tracker, or a sample larger than the window): the estimate
  /// cannot be trusted, so the decision falls back to exact.
  bool BudgetStateCorrupted(const WindowState& state) const;

  /// Emits the window from the budget sample even though the decision
  /// demanded exact processing (spilled state unavailable after retries):
  /// the AF-Stream trade of accuracy for availability. Holistic grouped
  /// windows cannot degrade (their result needs the raw window) and
  /// propagate the storage error instead.
  Result<WindowResult> MakeDegradedResult(const WindowBounds& bounds,
                                          WindowState* state);

  /// storage_->Store under config_.storage_retry, reporting retry counts
  /// to the worker metrics.
  Status StoreWithRetry(const std::string& key, const Tuple& payload);

  Status UnspillAll();
  void EvictExpired();

  const SpearOperatorConfig config_;
  const SpearMode mode_;
  const ValueExtractor value_extractor_;
  const KeyExtractor key_extractor_;
  SecondaryStorage* storage_;
  const std::string spill_key_;

  const std::size_t budget_elements_;
  const std::size_t max_groups_;
  const ExactWindowOperator exact_operator_;
  std::optional<BudgetController> budget_controller_;

  std::deque<Entry> buffer_;
  std::vector<std::int64_t> spilled_coords_;
  std::uint64_t spill_seq_ = 0;

  std::map<std::int64_t, WindowState> window_states_;
  std::int64_t next_window_start_ = 0;
  bool saw_any_tuple_ = false;
  std::int64_t last_watermark_;
  std::uint64_t sampler_seq_ = 0;
  /// Recovery loss reported while no window was active; charged to the
  /// next window that opens (see NoteRecoveryLoss).
  std::uint64_t pending_lost_ = 0;

  WorkerMetrics* metrics_ = nullptr;
  std::uint64_t spill_failures_ = 0;
  bool ignore_loss_accounting_ = false;

  // Observability (all null when the topology runs unobserved).
  obs::WindowTracer* tracer_ = nullptr;
  std::string obs_stage_;
  int obs_task_ = 0;
  obs::Counter* obs_windows_expedited_ = nullptr;
  obs::Counter* obs_windows_exact_ = nullptr;
  obs::Counter* obs_windows_degraded_ = nullptr;
  obs::Counter* obs_windows_recovered_ = nullptr;
  obs::Counter* obs_windows_shed_loss_ = nullptr;
  obs::Counter* obs_deadline_aborts_ = nullptr;
  obs::Counter* obs_tuples_seen_ = nullptr;
  obs::Counter* obs_late_tuples_ = nullptr;
  obs::Counter* obs_spill_tuples_ = nullptr;
  obs::Counter* obs_spill_failures_ = nullptr;
  obs::Histogram* obs_window_ns_ = nullptr;
  obs::Gauge* obs_buffered_tuples_ = nullptr;
  obs::Gauge* obs_budget_bytes_ = nullptr;

  DecisionStats decision_stats_;
};

}  // namespace spear
