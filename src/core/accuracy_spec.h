#pragma once

#include <cstddef>
#include <string>

#include "common/status.h"

/// \file accuracy_spec.h
/// The user-facing (epsilon, alpha) accuracy specification and memory
/// budget b of a SPEAr stateful operation (the `.error(10%, 95%)` /
/// `.budget(1MB)` pair of the paper's Fig. 5).

namespace spear {

/// \brief Accuracy specification: a result may deviate at most `epsilon`
/// (relative error; *rank* error for quantiles) from the exact value, for
/// a `confidence` fraction of windows.
struct AccuracySpec {
  double epsilon = 0.10;
  double confidence = 0.95;

  Status Validate() const {
    if (!(epsilon > 0.0 && epsilon < 1.0)) {
      return Status::Invalid("error bound must be in (0, 1)");
    }
    if (!(confidence > 0.0 && confidence < 1.0)) {
      return Status::Invalid("confidence must be in (0, 1)");
    }
    return Status::OK();
  }

  std::string ToString() const {
    return "error<=" + std::to_string(epsilon) +
           " @ confidence=" + std::to_string(confidence);
  }
};

/// \brief Memory budget b of one SPEAr worker's stateful operation.
///
/// Users may state it in tuples (sample elements) or bytes; a
/// byte-denominated budget converts to elements given the per-element
/// footprint, minus the bookkeeping slots the paper reserves (window size
/// + variance accumulator: the "-2" in |10^6 f^-1 - 2|).
class Budget {
 public:
  static Budget Tuples(std::size_t n) { return Budget(n, 0); }
  static Budget Bytes(std::size_t bytes) { return Budget(0, bytes); }

  /// Sample capacity in elements for a given per-element byte footprint.
  std::size_t ElementsFor(std::size_t element_bytes) const {
    if (tuples_ > 0) return tuples_;
    if (element_bytes == 0) return 0;
    const std::size_t raw = bytes_ / element_bytes;
    return raw > kBookkeepingSlots ? raw - kBookkeepingSlots : 0;
  }

  bool IsByteDenominated() const { return tuples_ == 0; }
  std::size_t raw_tuples() const { return tuples_; }
  std::size_t raw_bytes() const { return bytes_; }

  Status Validate() const {
    if (tuples_ == 0 && bytes_ == 0) {
      return Status::Invalid("budget must be positive");
    }
    return Status::OK();
  }

 private:
  /// Slots reserved for the window-size counter and variance accumulator.
  static constexpr std::size_t kBookkeepingSlots = 2;

  Budget(std::size_t tuples, std::size_t bytes)
      : tuples_(tuples), bytes_(bytes) {}

  std::size_t tuples_;
  std::size_t bytes_;
};

}  // namespace spear
