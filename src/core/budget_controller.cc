#include "core/budget_controller.h"

#include <algorithm>
#include <cmath>

namespace spear {

Status BudgetController::Options::Validate() const {
  if (min_budget == 0) return Status::Invalid("min_budget must be > 0");
  if (max_budget < min_budget) {
    return Status::Invalid("max_budget must be >= min_budget");
  }
  if (initial_budget < min_budget || initial_budget > max_budget) {
    return Status::Invalid("initial_budget outside [min, max]");
  }
  if (!(grow_factor > 1.0)) return Status::Invalid("grow_factor must be > 1");
  if (!(shrink_headroom > 0.0 && shrink_headroom < 1.0)) {
    return Status::Invalid("shrink_headroom must be in (0, 1)");
  }
  return Status::OK();
}

Result<BudgetController> BudgetController::Make(const Options& options) {
  SPEAR_RETURN_NOT_OK(options.Validate());
  return BudgetController(options);
}

void BudgetController::OnWindowOutcome(bool expedited, double epsilon_hat,
                                       double epsilon) {
  if (!expedited) {
    // The sample could not certify the window: grow multiplicatively.
    const auto grown = static_cast<std::size_t>(
        std::ceil(static_cast<double>(budget_) * options_.grow_factor));
    const std::size_t next = std::min(grown, options_.max_budget);
    if (next != budget_) ++grows_;
    budget_ = next;
    return;
  }
  if (epsilon_hat < options_.shrink_headroom * epsilon) {
    // Comfortable accept: reclaim memory additively.
    const std::size_t next =
        budget_ > options_.min_budget + options_.shrink_step
            ? budget_ - options_.shrink_step
            : options_.min_budget;
    if (next != budget_) ++shrinks_;
    budget_ = next;
  }
}

}  // namespace spear
