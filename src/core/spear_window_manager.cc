#include "core/spear_window_manager.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "checkpoint/wire.h"
#include "common/time.h"
#include "stats/quantile.h"
#include "window/window_assigner.h"

namespace spear {

namespace {

/// Version byte of the manager's checkpoint payload.
/// v2: per-window shed/truncated flags, reservoir skipped counts, tracker
/// shed counts, shed/deadline decision counters (overload control).
constexpr std::uint8_t kManagerPayloadVersion = 2;

void AppendRunningStats(std::string* out, const RunningStats& stats) {
  const RunningStats::State s = stats.state();
  wire::AppendU64(out, s.count);
  wire::AppendF64(out, s.mean);
  wire::AppendF64(out, s.m2);
  wire::AppendF64(out, s.m3);
  wire::AppendF64(out, s.m4);
  wire::AppendF64(out, s.sum);
  wire::AppendF64(out, s.min);
  wire::AppendF64(out, s.max);
}

Result<RunningStats> ReadRunningStats(wire::Reader* reader) {
  RunningStats::State s;
  SPEAR_ASSIGN_OR_RETURN(s.count, reader->ReadU64());
  SPEAR_ASSIGN_OR_RETURN(s.mean, reader->ReadF64());
  SPEAR_ASSIGN_OR_RETURN(s.m2, reader->ReadF64());
  SPEAR_ASSIGN_OR_RETURN(s.m3, reader->ReadF64());
  SPEAR_ASSIGN_OR_RETURN(s.m4, reader->ReadF64());
  SPEAR_ASSIGN_OR_RETURN(s.sum, reader->ReadF64());
  SPEAR_ASSIGN_OR_RETURN(s.min, reader->ReadF64());
  SPEAR_ASSIGN_OR_RETURN(s.max, reader->ReadF64());
  return RunningStats::FromState(s);
}

void AppendReservoir(std::string* out,
                     const ReservoirSampler<double>& sampler) {
  wire::AppendU64(out, sampler.capacity());
  wire::AppendU64(out, sampler.seen());
  wire::AppendU64(out, sampler.skipped());
  wire::AppendU64(out, sampler.sample().size());
  for (const double v : sampler.sample()) wire::AppendF64(out, v);
}

/// The delivery-loss error inflation (AF-Stream-style bounded divergence):
/// `lost` of the window's `count + lost` tuples never reached the budget
/// state — replay-gap loss and admission shedding alike — so any estimate
/// can be off by at most that mass fraction (for the mean-like aggregates
/// SPEAr bounds in relative error).
double LossInflation(std::uint64_t count, std::uint64_t lost) {
  if (lost == 0) return 0.0;
  return static_cast<double>(lost) / static_cast<double>(count + lost);
}

}  // namespace

const char* SpearModeName(SpearMode mode) {
  switch (mode) {
    case SpearMode::kScalarIncremental:
      return "scalar-incremental";
    case SpearMode::kScalarSampled:
      return "scalar-sampled";
    case SpearMode::kScalarQuantile:
      return "scalar-quantile";
    case SpearMode::kGroupedUnknown:
      return "grouped-unknown";
    case SpearMode::kGroupedKnown:
      return "grouped-known";
  }
  return "?";
}

SpearMode SpearWindowManager::DeriveMode(const SpearOperatorConfig& config,
                                         bool is_grouped) {
  if (is_grouped) {
    return config.known_num_groups > 0 ? SpearMode::kGroupedKnown
                                       : SpearMode::kGroupedUnknown;
  }
  if (config.aggregate.IsHolistic()) return SpearMode::kScalarQuantile;
  if (config.custom_estimator) return SpearMode::kScalarSampled;
  return config.incremental_optimization ? SpearMode::kScalarIncremental
                                         : SpearMode::kScalarSampled;
}

SpearWindowManager::SpearWindowManager(SpearOperatorConfig config,
                                       ValueExtractor value_extractor,
                                       KeyExtractor key_extractor,
                                       SecondaryStorage* storage,
                                       std::string spill_key)
    : config_(std::move(config)),
      mode_(DeriveMode(config_, static_cast<bool>(key_extractor))),
      value_extractor_(std::move(value_extractor)),
      key_extractor_(std::move(key_extractor)),
      storage_(storage),
      spill_key_(std::move(spill_key)),
      budget_elements_(config_.budget.ElementsFor(sizeof(double))),
      // Per the paper, b holds floor(b / (r + 4 + f)) groups' metadata;
      // for tuple-denominated budgets the capacity is one group per slot.
      max_groups_(config_.budget.IsByteDenominated()
                      ? config_.budget.ElementsFor(8 + 4 + sizeof(double))
                      : budget_elements_),
      exact_operator_(config_.aggregate, value_extractor_, key_extractor_),
      last_watermark_(kMinTimestamp) {
  SPEAR_CHECK(config_.Validate().ok());
  SPEAR_CHECK(budget_elements_ > 0);
  SPEAR_CHECK(config_.buffer_memory_capacity == 0 || storage_ != nullptr);
  if (config_.adaptive_budget) {
    BudgetController::Options options = config_.adaptive_options;
    options.initial_budget = budget_elements_;
    options.min_budget = std::min(options.min_budget, budget_elements_);
    options.max_budget = std::max(options.max_budget, budget_elements_);
    auto controller = BudgetController::Make(options);
    SPEAR_CHECK(controller.ok());
    budget_controller_.emplace(std::move(*controller));
  }
}

std::size_t SpearWindowManager::budget_elements() const {
  return budget_controller_ ? budget_controller_->budget() : budget_elements_;
}

void SpearWindowManager::SetObservability(obs::MetricsShard* shard,
                                          obs::WindowTracer* tracer,
                                          std::string stage, int task) {
  tracer_ = tracer;
  obs_stage_ = std::move(stage);
  obs_task_ = task;
  if (shard == nullptr) return;
  obs_windows_expedited_ = shard->GetCounter("windows_expedited");
  obs_windows_exact_ = shard->GetCounter("windows_exact");
  obs_windows_degraded_ = shard->GetCounter("windows_degraded");
  obs_windows_recovered_ = shard->GetCounter("windows_recovered");
  obs_windows_shed_loss_ = shard->GetCounter("windows_shed_loss");
  obs_deadline_aborts_ = shard->GetCounter("deadline_aborts");
  obs_tuples_seen_ = shard->GetCounter("tuples_seen");
  obs_late_tuples_ = shard->GetCounter("late_tuples");
  obs_spill_tuples_ = shard->GetCounter("spill_tuples");
  obs_spill_failures_ = shard->GetCounter("spill_failures");
  obs_window_ns_ = shard->GetHistogram("window_processing_ns",
                                       obs::HistogramBuckets::LatencyNs());
  obs_buffered_tuples_ = shard->GetGauge("buffered_tuples");
  obs_budget_bytes_ = shard->GetGauge("budget_state_bytes");
}

SpearWindowManager::WindowState& SpearWindowManager::StateFor(
    std::int64_t window_start) {
  auto it = window_states_.find(window_start);
  if (it != window_states_.end()) return it->second;
  WindowState state;
  // Snapshot the budget the window opens with (fixed, or the adaptive
  // controller's current value).
  state.budget = budget_elements();
  switch (mode_) {
    case SpearMode::kScalarIncremental:
    case SpearMode::kScalarSampled:
    case SpearMode::kScalarQuantile:
      state.sample = std::make_unique<ReservoirSampler<double>>(
          state.budget, config_.seed + sampler_seq_++);
      break;
    case SpearMode::kGroupedUnknown:
    case SpearMode::kGroupedKnown:
      state.groups = std::make_unique<GroupStatsTracker>(
          config_.budget.IsByteDenominated() ? max_groups_ : state.budget);
      break;
  }
  if (pending_lost_ > 0) {
    // Recovery loss reported while no window was active: the lost tuples'
    // windows are unknown, so charge the first window that opens (an
    // upper bound — better flagged too pessimistically than not at all).
    state.lost = pending_lost_;
    state.anomalous = true;
    state.recovered = true;
    pending_lost_ = 0;
  }
  return window_states_.emplace(window_start, std::move(state)).first->second;
}

void SpearWindowManager::UpdateWindowState(WindowState* state,
                                           const Tuple& tuple) {
  ++state->count;
  const double value = value_extractor_(tuple);
  switch (mode_) {
    case SpearMode::kScalarIncremental:
    case SpearMode::kScalarSampled:
    case SpearMode::kScalarQuantile:
      state->stats.Update(value);
      // Null after budget-state corruption: the window is already doomed
      // to the exact fallback, so just stop feeding the estimate.
      if (state->sample) state->sample->Offer(value);
      break;
    case SpearMode::kGroupedUnknown:
      if (state->groups) state->groups->Update(key_extractor_(tuple), value);
      break;
    case SpearMode::kGroupedKnown: {
      if (state->groups == nullptr) break;  // corrupted: exact fallback
      const std::string key = key_extractor_(tuple);
      state->groups->Update(key, value);
      auto it = state->group_samples.find(key);
      if (it == state->group_samples.end()) {
        const std::size_t cap = std::max<std::size_t>(
            state->budget / config_.known_num_groups, 1);
        it = state->group_samples
                 .emplace(key, ReservoirSampler<double>(
                                   cap, config_.seed + sampler_seq_++))
                 .first;
      }
      it->second.Offer(value);
      break;
    }
  }
}

void SpearWindowManager::NotifyDeliveryAnomaly() {
  for (auto& [start, state] : window_states_) state.anomalous = true;
}

void SpearWindowManager::NoteRecoveryLoss(std::uint64_t lost_tuples) {
  if (lost_tuples == 0) return;
  if (window_states_.empty()) {
    pending_lost_ += lost_tuples;
    return;
  }
  // The lost tuples' window membership is unknown (they were never
  // replayed); charge every active window the full loss — each window's
  // ε̂_w inflation then upper-bounds the tuples it could have missed.
  for (auto& [start, state] : window_states_) {
    state.lost += lost_tuples;
    state.anomalous = true;
    state.recovered = true;
  }
}

void SpearWindowManager::OnTupleShed(std::int64_t coord) {
  if (coord < last_watermark_) {
    // A late tuple that was shed: same anomaly accounting as OnTuple's
    // late path — the tuple would not have joined any active window's
    // budget state anyway.
    ++decision_stats_.late_tuples;
    if (obs_late_tuples_ != nullptr) obs_late_tuples_->Increment();
    for (auto& [start, state] : window_states_) {
      if (coord >= start && coord < start + config_.window.range) {
        state.anomalous = true;
      }
    }
    return;
  }
  ++decision_stats_.tuples_shed;
  if (!saw_any_tuple_) {
    next_window_start_ = FirstWindowStartFor(config_.window, coord);
    saw_any_tuple_ = true;
  } else {
    next_window_start_ = std::min(
        next_window_start_, FirstWindowStartFor(config_.window, coord));
  }

  // Account the drop against every window the tuple would have joined.
  // The budget state stays a uniform sample of the *admitted* subset; the
  // samplers record the skipped mass so inclusion probabilities (and the
  // count/sum rescaling) stay honest, and `shed` feeds ε̂_w inflation.
  const auto charge = [&](WindowState* state) {
    ++state->shed;
    state->anomalous = true;  // incremental results can no longer be exact
    if (state->sample) state->sample->NoteSkipped(1);
    if (state->groups) state->groups->NoteShed(1);
  };
  if (config_.window.IsTumbling()) {
    charge(&StateFor(LastWindowStartFor(config_.window, coord)));
  } else {
    for (const WindowBounds& w : AssignWindows(config_.window, coord)) {
      charge(&StateFor(w.start));
    }
  }
}

void SpearWindowManager::NoteStreamTruncation() {
  for (auto& [start, state] : window_states_) {
    state.anomalous = true;
    state.truncated = true;
  }
}

void SpearWindowManager::OnTuple(std::int64_t coord, Tuple tuple) {
  if (coord < last_watermark_) {
    ++decision_stats_.late_tuples;
    if (obs_late_tuples_ != nullptr) obs_late_tuples_->Increment();
    // Still-active windows that should have contained this tuple now hold
    // incomplete state: flag the delivery anomaly (Sec. 4.1).
    for (auto& [start, state] : window_states_) {
      if (coord >= start && coord < start + config_.window.range) {
        state.anomalous = true;
      }
    }
    return;
  }
  ++decision_stats_.tuples_seen;
  if (obs_tuples_seen_ != nullptr) obs_tuples_seen_->Increment();
  if (!saw_any_tuple_) {
    next_window_start_ = FirstWindowStartFor(config_.window, coord);
    saw_any_tuple_ = true;
  } else {
    next_window_start_ =
        std::min(next_window_start_, FirstWindowStartFor(config_.window, coord));
  }

  // Alg. 1: update the budget state of every window the tuple joins
  // (tumbling fast path avoids the per-tuple window-list allocation).
  if (config_.window.IsTumbling()) {
    UpdateWindowState(&StateFor(LastWindowStartFor(config_.window, coord)),
                      tuple);
  } else {
    for (const WindowBounds& w : AssignWindows(config_.window, coord)) {
      UpdateWindowState(&StateFor(w.start), tuple);
    }
  }

  // Raw tuple custody: memory within the worker budget, S beyond it.
  if (config_.buffer_memory_capacity != 0 &&
      buffer_.size() >= config_.buffer_memory_capacity) {
    Tuple payload = std::move(tuple);
    payload.AppendField(Value(payload.event_time()));
    payload.set_event_time(coord);
    const Status stored = StoreWithRetry(
        spill_key_ + "/" + std::to_string(spill_seq_), payload);
    if (stored.ok()) {
      spilled_coords_.push_back(coord);
      if (obs_spill_tuples_ != nullptr) obs_spill_tuples_->Increment();
      return;
    }
    // S stayed unavailable after retries: keep the tuple in memory past
    // the budget rather than lose it — degraded custody, not data loss.
    ++spill_failures_;
    if (metrics_ != nullptr) metrics_->AddSpillFailures(1);
    if (obs_spill_failures_ != nullptr) obs_spill_failures_->Increment();
    payload.set_event_time(payload.PopField().AsInt64());
    buffer_.push_back(Entry{coord, std::move(payload)});
    return;
  }
  buffer_.push_back(Entry{coord, std::move(tuple)});
}

Status SpearWindowManager::StoreWithRetry(const std::string& key,
                                          const Tuple& payload) {
  std::uint64_t retries = 0;
  std::uint64_t recovered = 0;
  const Status stored = RetryTransient(
      config_.storage_retry, config_.seed ^ (spill_seq_ + 0x5702EULL),
      [&] { return storage_->Store(key, payload); }, &retries, &recovered);
  if (metrics_ != nullptr) {
    metrics_->AddRetries(retries);
    metrics_->AddRecovered(recovered);
  }
  return stored;
}

Status SpearWindowManager::UnspillAll() {
  if (spilled_coords_.empty()) return Status::OK();
  const std::string key = spill_key_ + "/" + std::to_string(spill_seq_);
  Result<std::vector<Tuple>> fetched = storage_->Get(key);
  {
    // Retry transient Get failures under the same policy as spills
    // (RetryTransient only fits Status-returning ops).
    Backoff backoff(config_.storage_retry,
                    config_.seed ^ (spill_seq_ + 0xD0D0ULL));
    std::int64_t delay_ns = 0;
    while (!fetched.ok() &&
           ClassifyFailure(fetched.status()) == FailureClass::kTransient &&
           backoff.NextDelay(&delay_ns)) {
      BackoffSleep(delay_ns);
      if (metrics_ != nullptr) metrics_->AddRetries(1);
      fetched = storage_->Get(key);
      if (fetched.ok() && metrics_ != nullptr) metrics_->AddRecovered(1);
    }
  }
  if (!fetched.ok()) return fetched.status();
  std::vector<Tuple> run = std::move(fetched).ValueOrDie();
  for (auto& t : run) {
    const std::int64_t coord = t.event_time();
    t.set_event_time(t.PopField().AsInt64());
    buffer_.push_back(Entry{coord, std::move(t)});
  }
  storage_->Erase(spill_key_ + "/" + std::to_string(spill_seq_));
  ++spill_seq_;
  spilled_coords_.clear();
  return Status::OK();
}

Result<ScalarEstimate> SpearWindowManager::EstimateScalarForState(
    const WindowState& state) {
  // Window size for estimation is the *population* the sample stands for:
  // admitted tuples plus tuples shed at admission. Count/sum estimates
  // then stay centered under uniform shedding (count+shed is exact; sum
  // scales the sample mean to the full population), and any non-uniform
  // shedding bias is covered by the ε̂_w shed inflation in DecideWindow.
  const std::uint64_t population = ignore_loss_accounting_
                                       ? state.count
                                       : state.count + state.shed;
  if (config_.custom_estimator) {
    return config_.custom_estimator(state.sample->sample(), state.stats,
                                    population, config_.accuracy);
  }
  if (mode_ == SpearMode::kScalarQuantile) {
    return EstimateScalarQuantile(config_.aggregate.phi,
                                  state.sample->sample(), population,
                                  config_.accuracy, config_.quantile_bound);
  }
  return EstimateScalar(config_.aggregate, state.sample->sample(),
                        state.stats, population, config_.accuracy);
}

Status SpearWindowManager::PopulateGroupedResultFromScan(
    const WindowBounds& bounds, const std::vector<GroupAllocation>& allocs,
    WindowResult* result) {
  // Build the stratified sample with one pass over the buffer — the scan
  // the single-buffer design already owes for eviction. One lookup per
  // tuple; samplers are created lazily with Algorithm R (no init draws —
  // congress allocations are tiny for sparse groups, so Algorithm L's
  // skip machinery would cost more than it saves).
  struct GroupSample {
    std::uint64_t want = 0;
    std::unique_ptr<ReservoirSampler<double>> sampler;
  };
  std::unordered_map<std::string, GroupSample> samples;
  samples.reserve(allocs.size() * 2);
  for (const GroupAllocation& a : allocs) {
    samples.emplace(a.key, GroupSample{a.sample_size, nullptr});
  }

  for (const Entry& e : buffer_) {
    if (!bounds.Contains(e.coord)) continue;
    const auto it = samples.find(key_extractor_(e.tuple));
    if (it == samples.end()) continue;  // cannot happen: tracker saw all
    if (it->second.sampler == nullptr) {
      it->second.sampler = std::make_unique<ReservoirSampler<double>>(
          it->second.want, config_.seed + sampler_seq_++,
          ReservoirAlgorithm::kAlgorithmR);
    }
    it->second.sampler->Offer(value_extractor_(e.tuple));
  }

  result->is_grouped = true;
  result->groups.reserve(allocs.size());
  std::uint64_t processed = 0;
  for (const GroupAllocation& a : allocs) {
    const auto it = samples.find(a.key);
    if (it == samples.end() || it->second.sampler == nullptr) {
      return Status::Internal("group '" + a.key +
                              "' tracked but absent from window scan");
    }
    const std::vector<double>& sample = it->second.sampler->sample();
    processed += sample.size();
    double v = 0.0;
    if (config_.aggregate.IsHolistic()) {
      SPEAR_ASSIGN_OR_RETURN(
          v, ExactQuantile(sample, config_.aggregate.phi));
    } else if (config_.aggregate.kind == AggregateKind::kCount) {
      v = static_cast<double>(a.frequency);  // exact from the tracker
    } else if (config_.aggregate.kind == AggregateKind::kSum) {
      RunningStats s;
      for (double x : sample) s.Update(x);
      v = s.mean() * static_cast<double>(a.frequency);
    } else {
      RunningStats s;
      for (double x : sample) s.Update(x);
      SPEAR_ASSIGN_OR_RETURN(v, EvaluateFromStats(config_.aggregate, s));
    }
    result->groups.emplace_back(a.key, v);
  }
  result->tuples_processed = processed;
  return Status::OK();
}

Status SpearWindowManager::PopulateGroupedResultFromReservoirs(
    const WindowState& state, WindowResult* result) {
  result->is_grouped = true;
  result->groups.reserve(state.group_samples.size());
  std::uint64_t processed = 0;
  for (const auto& [key, stats] : state.groups->groups()) {
    const auto it = state.group_samples.find(key);
    if (it == state.group_samples.end()) {
      return Status::Internal("group '" + key + "' has no reservoir");
    }
    const std::vector<double>& sample = it->second.sample();
    processed += sample.size();
    double v = 0.0;
    if (config_.aggregate.IsHolistic()) {
      SPEAR_ASSIGN_OR_RETURN(
          v, ExactQuantile(sample, config_.aggregate.phi));
    } else if (config_.aggregate.kind == AggregateKind::kCount) {
      v = static_cast<double>(stats.count());
    } else if (config_.aggregate.kind == AggregateKind::kSum) {
      RunningStats s;
      for (double x : sample) s.Update(x);
      v = s.mean() * static_cast<double>(stats.count());
    } else {
      RunningStats s;
      for (double x : sample) s.Update(x);
      SPEAR_ASSIGN_OR_RETURN(v, EvaluateFromStats(config_.aggregate, s));
    }
    result->groups.emplace_back(key, v);
  }
  std::sort(result->groups.begin(), result->groups.end());
  result->tuples_processed = processed;
  return Status::OK();
}

Result<CompleteWindow> SpearWindowManager::MaterializeWindow(
    const WindowBounds& bounds, std::int64_t deadline_ns) {
  CompleteWindow window;
  window.bounds = bounds;
  // Clock reads are amortized over batches of copies so the deadline
  // check stays off the per-tuple critical path.
  constexpr std::size_t kDeadlineCheckStride = 256;
  std::size_t since_check = 0;
  for (const Entry& e : buffer_) {
    if (!bounds.Contains(e.coord)) continue;
    if (deadline_ns != 0 && ++since_check == kDeadlineCheckStride) {
      since_check = 0;
      if (NowNs() > deadline_ns) {
        return Status::Cancelled("exact fallback exceeded its deadline");
      }
    }
    window.tuples.push_back(e.tuple);
  }
  return window;
}

bool SpearWindowManager::BudgetStateCorrupted(const WindowState& state) const {
  switch (mode_) {
    case SpearMode::kScalarIncremental:
    case SpearMode::kScalarSampled:
    case SpearMode::kScalarQuantile:
      return state.sample == nullptr ||
             state.sample->sample().size() > state.count;
    case SpearMode::kGroupedUnknown:
    case SpearMode::kGroupedKnown:
      return state.groups == nullptr;
  }
  return true;
}

void SpearWindowManager::CorruptBudgetForTesting() {
  for (auto& [start, state] : window_states_) {
    state.sample.reset();
    state.groups.reset();
    state.group_samples.clear();
  }
}

Result<WindowResult> SpearWindowManager::MakeDegradedResult(
    const WindowBounds& bounds, WindowState* state) {
  const double inflate =
      ignore_loss_accounting_
          ? 0.0
          : LossInflation(state->count, state->lost + state->shed);
  WindowResult result;
  result.bounds = bounds;
  result.window_size = state->count + state->lost + state->shed;
  result.approximate = true;
  result.degraded = true;
  result.recovered = state->recovered;

  switch (mode_) {
    case SpearMode::kScalarIncremental:
    case SpearMode::kScalarSampled:
    case SpearMode::kScalarQuantile: {
      // Emit the sample estimate even though it failed the budget test;
      // ε̂_w documents the (unmet) accuracy.
      SPEAR_ASSIGN_OR_RETURN(const ScalarEstimate est,
                             EstimateScalarForState(*state));
      result.scalar = est.estimate;
      result.estimated_error = est.epsilon_hat + inflate;
      result.tuples_processed = state->sample->sample().size();
      return result;
    }
    case SpearMode::kGroupedKnown: {
      SPEAR_ASSIGN_OR_RETURN(
          const GroupedEstimate est,
          EstimateGrouped(config_.aggregate, *state->groups, state->budget,
                          config_.accuracy, config_.group_error_norm,
                          config_.quantile_bound));
      result.estimated_error = est.epsilon_hat + inflate;
      SPEAR_RETURN_NOT_OK(PopulateGroupedResultFromReservoirs(*state, &result));
      return result;
    }
    case SpearMode::kGroupedUnknown: {
      // The stratified sample would need the raw window (partly in S).
      // Non-holistic aggregates can still be answered from the tracker's
      // per-group moments; holistic ones cannot degrade at all.
      if (config_.aggregate.IsHolistic()) {
        return Status::Unavailable(
            "cannot degrade holistic grouped window: spilled tuples "
            "unavailable");
      }
      SPEAR_ASSIGN_OR_RETURN(
          const GroupedEstimate est,
          EstimateGrouped(config_.aggregate, *state->groups, state->budget,
                          config_.accuracy, config_.group_error_norm,
                          config_.quantile_bound));
      result.estimated_error = est.epsilon_hat + inflate;
      result.is_grouped = true;
      result.groups.reserve(state->groups->num_groups());
      std::uint64_t processed = 0;
      for (const auto& [key, stats] : state->groups->groups()) {
        double v = 0.0;
        if (config_.aggregate.kind == AggregateKind::kCount) {
          v = static_cast<double>(stats.count());
        } else if (config_.aggregate.kind == AggregateKind::kSum) {
          v = stats.mean() * static_cast<double>(stats.count());
        } else {
          SPEAR_ASSIGN_OR_RETURN(v, EvaluateFromStats(config_.aggregate,
                                                      stats));
        }
        result.groups.emplace_back(key, v);
        processed += stats.count();
      }
      std::sort(result.groups.begin(), result.groups.end());
      result.tuples_processed = processed;
      return result;
    }
  }
  return Status::Internal("unknown mode");
}

Result<WindowResult> SpearWindowManager::DecideWindow(
    const WindowBounds& bounds, WindowState* state, bool* needs_scan,
    bool* needs_exact) {
  *needs_scan = false;
  *needs_exact = false;

  // Delivery-loss inflation: an estimate is only accepted when ε̂_w plus
  // the recovery-loss + shed ratio still meets the spec — the AF-Stream
  // contract folded into the paper's expedite test.
  const double inflate =
      ignore_loss_accounting_
          ? 0.0
          : LossInflation(state->count, state->lost + state->shed);
  const auto meets_spec = [&](double epsilon_hat) {
    return inflate == 0.0 ||
           epsilon_hat + inflate <= config_.accuracy.epsilon;
  };

  WindowResult result;
  result.bounds = bounds;
  result.window_size = state->count + state->lost + state->shed;
  result.recovered = state->recovered;

  // Corrupted budget state means no estimate can be trusted: fall back to
  // the exact path (the safe direction of the degradation trade).
  if (BudgetStateCorrupted(*state)) {
    *needs_exact = true;
    return result;
  }

  switch (mode_) {
    case SpearMode::kScalarIncremental: {
      if (!state->anomalous) {
        // Exact result from the running accumulator; no watermark-time
        // work.
        SPEAR_ASSIGN_OR_RETURN(result.scalar,
                               EvaluateFromStats(config_.aggregate,
                                                 state->stats));
        result.approximate = false;
        result.tuples_processed = 0;
        return result;
      }
      // Delivery anomaly: the accumulator may have missed tuples. Fall
      // back to the budget sample and its accuracy estimate; only rescan
      // the window when even that fails the spec (paper Sec. 4.1).
      SPEAR_ASSIGN_OR_RETURN(const ScalarEstimate est,
                             EstimateScalarForState(*state));
      if (est.accepted && meets_spec(est.epsilon_hat)) {
        result.scalar = est.estimate;
        result.approximate = true;
        result.estimated_error = est.epsilon_hat + inflate;
        result.tuples_processed = state->sample->sample().size();
        return result;
      }
      *needs_exact = true;
      return result;
    }
    case SpearMode::kScalarSampled:
    case SpearMode::kScalarQuantile: {
      SPEAR_ASSIGN_OR_RETURN(const ScalarEstimate est,
                             EstimateScalarForState(*state));
      if (est.accepted && meets_spec(est.epsilon_hat)) {
        result.scalar = est.estimate;
        result.approximate = true;
        result.estimated_error = est.epsilon_hat + inflate;
        result.tuples_processed = state->sample->sample().size();
        return result;
      }
      *needs_exact = true;
      return result;
    }
    case SpearMode::kGroupedUnknown: {
      SPEAR_ASSIGN_OR_RETURN(
          const GroupedEstimate est,
          EstimateGrouped(config_.aggregate, *state->groups, state->budget,
                          config_.accuracy, config_.group_error_norm,
                          config_.quantile_bound));
      if (est.accepted && meets_spec(est.epsilon_hat)) {
        result.approximate = true;
        result.estimated_error = est.epsilon_hat + inflate;
        SPEAR_RETURN_NOT_OK(
            PopulateGroupedResultFromScan(bounds, est.allocations, &result));
        *needs_scan = true;
        return result;
      }
      *needs_exact = true;
      return result;
    }
    case SpearMode::kGroupedKnown: {
      // The declared group count bounds the budget split; more groups than
      // declared means the reservoirs are undersized — fall back.
      if (state->groups->overflowed() ||
          state->groups->num_groups() > config_.known_num_groups) {
        *needs_exact = true;
        return result;
      }
      std::vector<GroupAllocation> allocations;
      allocations.reserve(state->groups->num_groups());
      for (const auto& [key, stats] : state->groups->groups()) {
        const auto it = state->group_samples.find(key);
        const std::uint64_t n =
            it == state->group_samples.end() ? 0 : it->second.sample().size();
        allocations.push_back(GroupAllocation{key, stats.count(), n});
      }
      std::sort(allocations.begin(), allocations.end(),
                [](const GroupAllocation& a, const GroupAllocation& b) {
                  return a.key < b.key;
                });
      SPEAR_ASSIGN_OR_RETURN(
          const GroupedEstimate est,
          EstimateGroupedWithAllocations(
              config_.aggregate, *state->groups, std::move(allocations),
              config_.accuracy, config_.group_error_norm,
              config_.quantile_bound));
      if (est.accepted && meets_spec(est.epsilon_hat)) {
        result.approximate = true;
        result.estimated_error = est.epsilon_hat + inflate;
        SPEAR_RETURN_NOT_OK(
            PopulateGroupedResultFromReservoirs(*state, &result));
        return result;
      }
      *needs_exact = true;
      return result;
    }
  }
  return Status::Internal("unknown mode");
}

Result<std::vector<WindowResult>> SpearWindowManager::OnWatermark(
    std::int64_t watermark) {
  std::vector<WindowResult> out;
  // Clamp (the end-of-stream watermark is kMaxTimestamp) so the window
  // arithmetic below cannot overflow.
  watermark = ClampWatermark(config_.window, watermark);
  if (watermark <= last_watermark_) return out;
  last_watermark_ = watermark;
  if (!saw_any_tuple_) return out;
  // Nothing can complete: O(1) exit. Every buffered non-late tuple keeps
  // a state for each of its windows, so no state completing also means no
  // tuple expires — eviction can wait.
  if (window_states_.empty() ||
      window_states_.begin()->first + config_.window.range > watermark) {
    return out;
  }

  // Only windows with budget state can produce results; complete windows
  // without state are empty and can never gain tuples, so iterating the
  // (ordered) state map visits exactly the windows to emit.
  while (!window_states_.empty() &&
         window_states_.begin()->first + config_.window.range <= watermark) {
    auto state_it = window_states_.begin();
    const WindowBounds bounds{state_it->first,
                              state_it->first + config_.window.range};
    if (state_it->second.count > 0) {
      ++decision_stats_.windows_total;
      bool needs_scan = false;
      bool needs_exact = false;
      bool degraded = false;
      bool deadline_aborted = false;

      std::int64_t window_ns = 0;
      WindowResult result;
      const bool recovered_window = state_it->second.recovered;
      // UnspillAll() clears spilled_coords_, so capture participation now.
      const bool had_spill = !spilled_coords_.empty();
      {
        ScopedTimerNs timer(&window_ns);
        // The grouped accept path scans the buffer; make sure spilled
        // tuples participate in the stratified sample. An unavailable S
        // here is survivable: the decision below falls back to the
        // tracker-only degraded path.
        bool unspill_failed = false;
        if (mode_ == SpearMode::kGroupedUnknown && !recovered_window &&
            !spilled_coords_.empty()) {
          const Status fetched = UnspillAll();
          if (!fetched.ok()) {
            if (!fetched.IsUnavailable()) return fetched;
            unspill_failed = true;
          }
        }
        // A window that can answer from its budget state even when the
        // decision demands exact. Holistic grouped-unknown windows cannot
        // (their degraded result needs the raw window).
        const bool can_degrade =
            !BudgetStateCorrupted(state_it->second) &&
            !(mode_ == SpearMode::kGroupedUnknown &&
              config_.aggregate.IsHolistic());
        if (state_it->second.truncated && can_degrade) {
          // The stream was closed abnormally under this window (watchdog):
          // an unknown suffix is missing, so no accuracy claim can be
          // verified — emit the budget estimate, flagged degraded.
          SPEAR_ASSIGN_OR_RETURN(
              result, MakeDegradedResult(bounds, &state_it->second));
          degraded = true;
        } else if (unspill_failed) {
          needs_exact = true;
        } else if (mode_ == SpearMode::kGroupedUnknown && recovered_window &&
                   !BudgetStateCorrupted(state_it->second)) {
          // A restored window's raw buffer is incomplete (snapshots are
          // O(b)), so the stratified-sample scan cannot run: answer from
          // the tracker alone, flagged.
          SPEAR_ASSIGN_OR_RETURN(
              result, MakeDegradedResult(bounds, &state_it->second));
          degraded = true;
        } else {
          SPEAR_ASSIGN_OR_RETURN(
              result, DecideWindow(bounds, &state_it->second, &needs_scan,
                                   &needs_exact));
        }
        if (needs_exact && !degraded) {
          if ((recovered_window || state_it->second.shed > 0) &&
              !BudgetStateCorrupted(state_it->second)) {
            // An "exact" result would be silently wrong: a recovered
            // window's post-restore buffer is partial, and a shed window's
            // buffer is missing every tuple dropped at admission. Degrade
            // to the budget estimate with the loss-inflated ε̂_w instead.
            SPEAR_ASSIGN_OR_RETURN(
                result, MakeDegradedResult(bounds, &state_it->second));
            degraded = true;
          } else {
            // Alg. 2 line 5: g(S.get(tau_w)) — the whole window, possibly
            // fetched back from S, processed exactly. With a deadline
            // configured (and a degradable window), the fetch and the
            // materialization scan check the clock cooperatively — the
            // same cancellation discipline the spill path's simulated
            // latency uses — and a blown deadline emits the approximate
            // result flagged degraded instead of stalling the DAG.
            const std::int64_t deadline_ns =
                config_.exact_deadline_ms > 0 && can_degrade
                    ? NowNs() + config_.exact_deadline_ms * 1'000'000
                    : 0;
            const Status fetched =
                unspill_failed ? Status::Unavailable("spill run unavailable")
                               : UnspillAll();
            if (fetched.ok()) {
              if (deadline_ns != 0 && NowNs() > deadline_ns) {
                // The unspill alone blew the budget.
                SPEAR_ASSIGN_OR_RETURN(
                    result, MakeDegradedResult(bounds, &state_it->second));
                degraded = true;
                deadline_aborted = true;
                ++decision_stats_.deadline_aborts;
                if (metrics_ != nullptr) metrics_->AddDeadlineAborts(1);
              } else {
                Result<CompleteWindow> window =
                    MaterializeWindow(bounds, deadline_ns);
                if (!window.ok() && window.status().IsCancelled()) {
                  SPEAR_ASSIGN_OR_RETURN(
                      result, MakeDegradedResult(bounds, &state_it->second));
                  degraded = true;
                  deadline_aborted = true;
                  ++decision_stats_.deadline_aborts;
                  if (metrics_ != nullptr) metrics_->AddDeadlineAborts(1);
                } else {
                  SPEAR_RETURN_NOT_OK(window.status());
                  SPEAR_ASSIGN_OR_RETURN(
                      result, exact_operator_.Process(*window));
                }
              }
            } else if (fetched.IsUnavailable() &&
                       !BudgetStateCorrupted(state_it->second)) {
              // The exact fallback cannot run (S stayed unavailable after
              // retries). Degrade: emit the budget estimate, flagged.
              SPEAR_ASSIGN_OR_RETURN(
                  result, MakeDegradedResult(bounds, &state_it->second));
              degraded = true;
            } else {
              return fetched;
            }
          }
        }
      }
      result.processing_ns = window_ns;
      if (recovered_window) {
        result.recovered = true;  // survives the exact-path overwrite
        ++decision_stats_.windows_recovered;
      }
      if (state_it->second.shed > 0) {
        ++decision_stats_.windows_shed;
        if (metrics_ != nullptr) metrics_->AddWindowsShedLoss(1);
      }
      if (degraded) {
        ++decision_stats_.windows_degraded;
        if (metrics_ != nullptr) metrics_->AddDegradedWindows(1);
      } else if (needs_exact) {
        ++decision_stats_.windows_exact;
      } else {
        ++decision_stats_.windows_expedited;
      }
      if (obs_windows_expedited_ != nullptr) {
        if (degraded) {
          obs_windows_degraded_->Increment();
        } else if (needs_exact) {
          obs_windows_exact_->Increment();
        } else {
          obs_windows_expedited_->Increment();
        }
        if (recovered_window) obs_windows_recovered_->Increment();
        if (state_it->second.shed > 0) obs_windows_shed_loss_->Increment();
        if (deadline_aborted) obs_deadline_aborts_->Increment();
        obs_window_ns_->Observe(window_ns);
      }
      if (tracer_ != nullptr) {
        const WindowState& ws = state_it->second;
        obs::TraceSpan span;
        span.stage = obs_stage_;
        span.task = obs_task_;
        span.window_start = bounds.start;
        span.window_end = bounds.end;
        using Verdict = obs::TraceSpan::Verdict;
        span.verdict = degraded      ? Verdict::kDegraded
                       : needs_exact ? Verdict::kExact
                                     : Verdict::kExpedited;
        span.approximate = result.approximate;
        span.arrivals = ws.count + ws.lost + ws.shed;
        span.processed = result.tuples_processed;
        span.shed = ws.shed;
        span.lost = ws.lost;
        span.budget = ws.budget;
        span.epsilon_spec = config_.accuracy.epsilon;
        span.alpha_spec = config_.accuracy.confidence;
        if (result.approximate) {
          span.epsilon_hat = result.estimated_error;
          span.loss_inflation =
              ignore_loss_accounting_
                  ? 0.0
                  : LossInflation(ws.count, ws.lost + ws.shed);
          span.epsilon_sampling =
              std::max(0.0, span.epsilon_hat - span.loss_inflation);
        }
        span.recovered = recovered_window;
        span.truncated = ws.truncated;
        span.spilled = had_spill;
        span.deadline_abort = deadline_aborted;
        span.processing_ns = window_ns;
        span.emitted_at_ns = NowNs();
        tracer_->Record(span);
      }
      if (budget_controller_) {
        // A degraded window counts as a fallback for budget adaptation: a
        // bigger sample makes the next degradation less inaccurate.
        budget_controller_->OnWindowOutcome(
            !needs_exact,
            result.approximate && !degraded
                ? result.estimated_error
                : std::numeric_limits<double>::infinity(),
            config_.accuracy.epsilon);
      }
      decision_stats_.tuples_processed += result.tuples_processed;
      out.push_back(std::move(result));
    }
    window_states_.erase(state_it);
  }

  // Everything below the first incomplete window can never be needed.
  next_window_start_ =
      std::max(next_window_start_,
               FirstIncompleteWindowStart(config_.window, watermark));

  // Eviction is the single-buffer design's bookkeeping, not part of
  // producing any window's result; it stays outside the per-window
  // processing time, matching the paper's Storm-metrics methodology.
  // (When a grouped window is expedited, the stratified-sample build that
  // the paper fuses with this scan IS charged to that window, inside
  // DecideWindow.)
  EvictExpired();
  if (obs_buffered_tuples_ != nullptr) {
    obs_buffered_tuples_->Set(static_cast<double>(BufferedTuples()));
    obs_budget_bytes_->Set(static_cast<double>(BudgetMemoryBytes()));
  }
  return out;
}

void SpearWindowManager::EvictExpired() {
  buffer_.erase(std::remove_if(buffer_.begin(), buffer_.end(),
                               [&](const Entry& e) {
                                 return e.coord < next_window_start_;
                               }),
                buffer_.end());
  // Drop window states that can no longer complete (safety: normally the
  // processing loop erased them).
  while (!window_states_.empty() &&
         window_states_.begin()->first < next_window_start_) {
    window_states_.erase(window_states_.begin());
  }
  // Spilled run: discard wholesale once every coordinate expired; SPEAr
  // never fetches data from S just to throw it away.
  if (!spilled_coords_.empty()) {
    const bool all_expired =
        std::all_of(spilled_coords_.begin(), spilled_coords_.end(),
                    [&](std::int64_t c) { return c < next_window_start_; });
    if (all_expired) {
      storage_->Erase(spill_key_ + "/" + std::to_string(spill_seq_));
      ++spill_seq_;
      spilled_coords_.clear();
    }
  }
}

Result<std::string> SpearWindowManager::SnapshotState() const {
  std::string out;
  wire::AppendU8(&out, kManagerPayloadVersion);
  wire::AppendU8(&out, static_cast<std::uint8_t>(mode_));
  wire::AppendI64(&out, last_watermark_);
  wire::AppendI64(&out, next_window_start_);
  wire::AppendU8(&out, saw_any_tuple_ ? 1 : 0);
  wire::AppendU64(&out, sampler_seq_);
  wire::AppendU64(&out, spill_seq_);
  wire::AppendU64(&out, spill_failures_);
  wire::AppendU64(&out, pending_lost_);

  // Spill manifest: which coordinates live in S under the current run key.
  // Serialized for accounting only — restore discards the adopted run and
  // lets replay rebuild a fresh one, keeping S duplicate-free.
  wire::AppendU64(&out, spilled_coords_.size());
  for (const std::int64_t c : spilled_coords_) wire::AppendI64(&out, c);

  wire::AppendU64(&out, decision_stats_.windows_total);
  wire::AppendU64(&out, decision_stats_.windows_expedited);
  wire::AppendU64(&out, decision_stats_.windows_exact);
  wire::AppendU64(&out, decision_stats_.windows_degraded);
  wire::AppendU64(&out, decision_stats_.windows_recovered);
  wire::AppendU64(&out, decision_stats_.tuples_seen);
  wire::AppendU64(&out, decision_stats_.tuples_processed);
  wire::AppendU64(&out, decision_stats_.late_tuples);
  wire::AppendU64(&out, decision_stats_.tuples_shed);
  wire::AppendU64(&out, decision_stats_.windows_shed);
  wire::AppendU64(&out, decision_stats_.deadline_aborts);

  wire::AppendU64(&out, window_states_.size());
  for (const auto& [start, state] : window_states_) {
    wire::AppendI64(&out, start);
    wire::AppendU64(&out, state.budget);
    wire::AppendU64(&out, state.count);
    wire::AppendU64(&out, state.lost);
    wire::AppendU64(&out, state.shed);
    wire::AppendU8(&out, state.anomalous ? 1 : 0);
    wire::AppendU8(&out, state.recovered ? 1 : 0);
    wire::AppendU8(&out, state.truncated ? 1 : 0);
    AppendRunningStats(&out, state.stats);
    wire::AppendU8(&out, state.sample ? 1 : 0);
    if (state.sample) AppendReservoir(&out, *state.sample);
    wire::AppendU8(&out, state.groups ? 1 : 0);
    if (state.groups) {
      wire::AppendU64(&out, state.groups->max_groups());
      wire::AppendU8(&out, state.groups->overflowed() ? 1 : 0);
      wire::AppendU64(&out, state.groups->shed());
      wire::AppendU64(&out, state.groups->num_groups());
      for (const auto& [key, stats] : state.groups->groups()) {
        wire::AppendString(&out, key);
        AppendRunningStats(&out, stats);
      }
    }
    wire::AppendU64(&out, state.group_samples.size());
    for (const auto& [key, sampler] : state.group_samples) {
      wire::AppendString(&out, key);
      AppendReservoir(&out, sampler);
    }
  }
  return out;
}

Status SpearWindowManager::RestoreState(const std::string& payload) {
  wire::Reader reader(payload);
  SPEAR_ASSIGN_OR_RETURN(const std::uint8_t version, reader.ReadU8());
  if (version != kManagerPayloadVersion) {
    return Status::Invalid("spear snapshot: unsupported payload version " +
                           std::to_string(version));
  }
  SPEAR_ASSIGN_OR_RETURN(const std::uint8_t mode, reader.ReadU8());
  if (mode != static_cast<std::uint8_t>(mode_)) {
    return Status::Invalid(
        "spear snapshot: mode mismatch (snapshot was taken by a "
        "differently configured operator)");
  }

  // From here on the manager is rebuilt wholesale; the raw buffer was not
  // serialized and starts empty (the executor replays what it logged).
  buffer_.clear();
  spilled_coords_.clear();
  window_states_.clear();

  SPEAR_ASSIGN_OR_RETURN(last_watermark_, reader.ReadI64());
  SPEAR_ASSIGN_OR_RETURN(next_window_start_, reader.ReadI64());
  SPEAR_ASSIGN_OR_RETURN(const std::uint8_t saw, reader.ReadU8());
  saw_any_tuple_ = saw != 0;
  SPEAR_ASSIGN_OR_RETURN(sampler_seq_, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(spill_seq_, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(spill_failures_, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(pending_lost_, reader.ReadU64());

  SPEAR_ASSIGN_OR_RETURN(const std::uint64_t manifest_size, reader.ReadU64());
  spilled_coords_.reserve(manifest_size);
  for (std::uint64_t k = 0; k < manifest_size; ++k) {
    SPEAR_ASSIGN_OR_RETURN(const std::int64_t c, reader.ReadI64());
    spilled_coords_.push_back(c);
  }
  // The replay that follows re-feeds the tuples that filled the adopted
  // run, and they will spill again. Appending them to the old run would
  // double every spilled tuple, so discard it and start a fresh run —
  // nothing is lost: every restored window is recovered, and recovered
  // windows answer from budget state, never from the raw spill run.
  if (storage_ != nullptr && !spilled_coords_.empty()) {
    storage_->Erase(spill_key_ + "/" + std::to_string(spill_seq_));
    ++spill_seq_;
    spilled_coords_.clear();
  }

  SPEAR_ASSIGN_OR_RETURN(decision_stats_.windows_total, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(decision_stats_.windows_expedited, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(decision_stats_.windows_exact, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(decision_stats_.windows_degraded, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(decision_stats_.windows_recovered, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(decision_stats_.tuples_seen, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(decision_stats_.tuples_processed, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(decision_stats_.late_tuples, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(decision_stats_.tuples_shed, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(decision_stats_.windows_shed, reader.ReadU64());
  SPEAR_ASSIGN_OR_RETURN(decision_stats_.deadline_aborts, reader.ReadU64());

  SPEAR_ASSIGN_OR_RETURN(const std::uint64_t num_windows, reader.ReadU64());
  for (std::uint64_t w = 0; w < num_windows; ++w) {
    SPEAR_ASSIGN_OR_RETURN(const std::int64_t start, reader.ReadI64());
    WindowState state;
    SPEAR_ASSIGN_OR_RETURN(state.budget, reader.ReadU64());
    SPEAR_ASSIGN_OR_RETURN(state.count, reader.ReadU64());
    SPEAR_ASSIGN_OR_RETURN(state.lost, reader.ReadU64());
    SPEAR_ASSIGN_OR_RETURN(state.shed, reader.ReadU64());
    SPEAR_ASSIGN_OR_RETURN(const std::uint8_t anomalous, reader.ReadU8());
    state.anomalous = anomalous != 0;
    SPEAR_ASSIGN_OR_RETURN(const std::uint8_t recovered, reader.ReadU8());
    (void)recovered;
    // Every restored window is a recovered window, whatever it was when
    // snapshotted: its raw buffer did not survive.
    state.recovered = true;
    SPEAR_ASSIGN_OR_RETURN(const std::uint8_t truncated, reader.ReadU8());
    state.truncated = truncated != 0;
    SPEAR_ASSIGN_OR_RETURN(state.stats, ReadRunningStats(&reader));

    SPEAR_ASSIGN_OR_RETURN(const std::uint8_t has_sample, reader.ReadU8());
    if (has_sample != 0) {
      SPEAR_ASSIGN_OR_RETURN(const std::uint64_t capacity, reader.ReadU64());
      SPEAR_ASSIGN_OR_RETURN(const std::uint64_t seen, reader.ReadU64());
      SPEAR_ASSIGN_OR_RETURN(const std::uint64_t skipped, reader.ReadU64());
      SPEAR_ASSIGN_OR_RETURN(const std::uint64_t n, reader.ReadU64());
      std::vector<double> values;
      values.reserve(n);
      for (std::uint64_t k = 0; k < n; ++k) {
        SPEAR_ASSIGN_OR_RETURN(const double v, reader.ReadF64());
        values.push_back(v);
      }
      if (capacity == 0) {
        return Status::Invalid("spear snapshot: reservoir capacity 0");
      }
      state.sample = std::make_unique<ReservoirSampler<double>>(
          capacity, config_.seed + sampler_seq_++);
      SPEAR_RETURN_NOT_OK(
          state.sample->Restore(std::move(values), seen, skipped));
    }

    SPEAR_ASSIGN_OR_RETURN(const std::uint8_t has_groups, reader.ReadU8());
    if (has_groups != 0) {
      SPEAR_ASSIGN_OR_RETURN(const std::uint64_t max_groups, reader.ReadU64());
      SPEAR_ASSIGN_OR_RETURN(const std::uint8_t overflowed, reader.ReadU8());
      SPEAR_ASSIGN_OR_RETURN(const std::uint64_t tracker_shed,
                             reader.ReadU64());
      SPEAR_ASSIGN_OR_RETURN(const std::uint64_t n, reader.ReadU64());
      state.groups = std::make_unique<GroupStatsTracker>(max_groups);
      for (std::uint64_t k = 0; k < n; ++k) {
        SPEAR_ASSIGN_OR_RETURN(const std::string key, reader.ReadString());
        SPEAR_ASSIGN_OR_RETURN(const RunningStats stats,
                               ReadRunningStats(&reader));
        state.groups->RestoreGroup(key, stats);
      }
      if (overflowed != 0) state.groups->MarkOverflowed();
      if (tracker_shed > 0) state.groups->NoteShed(tracker_shed);
    }

    SPEAR_ASSIGN_OR_RETURN(const std::uint64_t num_samplers, reader.ReadU64());
    for (std::uint64_t k = 0; k < num_samplers; ++k) {
      SPEAR_ASSIGN_OR_RETURN(const std::string key, reader.ReadString());
      SPEAR_ASSIGN_OR_RETURN(const std::uint64_t capacity, reader.ReadU64());
      SPEAR_ASSIGN_OR_RETURN(const std::uint64_t seen, reader.ReadU64());
      SPEAR_ASSIGN_OR_RETURN(const std::uint64_t skipped, reader.ReadU64());
      SPEAR_ASSIGN_OR_RETURN(const std::uint64_t n, reader.ReadU64());
      std::vector<double> values;
      values.reserve(n);
      for (std::uint64_t j = 0; j < n; ++j) {
        SPEAR_ASSIGN_OR_RETURN(const double v, reader.ReadF64());
        values.push_back(v);
      }
      if (capacity == 0) {
        return Status::Invalid("spear snapshot: reservoir capacity 0");
      }
      auto [it, inserted] = state.group_samples.emplace(
          key, ReservoirSampler<double>(capacity,
                                        config_.seed + sampler_seq_++));
      if (!inserted) {
        return Status::Invalid("spear snapshot: duplicate group sampler");
      }
      SPEAR_RETURN_NOT_OK(
          it->second.Restore(std::move(values), seen, skipped));
    }

    window_states_.emplace(start, std::move(state));
  }
  if (!reader.exhausted()) {
    return Status::Invalid("spear snapshot: trailing bytes");
  }

  // Re-adopt the spill manifest: the storage run may have grown past it
  // (spills between the snapshot and the crash), and post-restore replays
  // would re-spill those same tuples. Truncate the run back to the
  // manifest (S preserves insertion order) so replayed spills append to a
  // consistent prefix. If S is unavailable, drop the manifest instead —
  // recovered windows never materialize raw tuples, so this only costs
  // custody of already-lost data.
  if (!spilled_coords_.empty()) {
    bool adopted = false;
    if (storage_ != nullptr) {
      const std::string key = spill_key_ + "/" + std::to_string(spill_seq_);
      Result<std::vector<Tuple>> run = storage_->Get(key);
      if (run.ok() && run->size() >= spilled_coords_.size()) {
        run->resize(spilled_coords_.size());
        storage_->Erase(key);
        if (storage_->StoreBatch(key, std::move(*run)).ok()) adopted = true;
      }
    }
    if (!adopted) spilled_coords_.clear();
  }
  return Status::OK();
}

std::size_t SpearWindowManager::BudgetMemoryBytes() const {
  std::size_t total = 0;
  for (const auto& [start, state] : window_states_) {
    total += sizeof(WindowState);
    if (state.sample) total += state.sample->sample().size() * sizeof(double);
    if (state.groups) total += state.groups->EstimatedBytes();
    for (const auto& [key, sampler] : state.group_samples) {
      total += key.size() + sampler.sample().size() * sizeof(double);
    }
  }
  return total;
}

std::size_t SpearWindowManager::BufferMemoryBytes() const {
  std::size_t total = 0;
  for (const Entry& e : buffer_) total += e.tuple.ByteSize();
  return total;
}

}  // namespace spear
