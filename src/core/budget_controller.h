#pragma once

#include <cstdint>

#include "common/result.h"

/// \file budget_controller.h
/// Online budget adaptation — the feature the paper leaves as future work
/// ("Future versions of SPEAr will be able to accommodate dynamic methods
/// for online budget estimation", Sec. 4).
///
/// The controller treats the per-window outcome as feedback and adjusts
/// the next window's sample budget with an AIMD-style policy:
///  * a window that fell back to exact processing (estimate above the
///    spec) multiplicatively increases the budget — the sample was too
///    small to certify the result;
///  * a comfortably accepted window (estimated error below
///    `shrink_headroom * epsilon`) additively decreases the budget,
///    reclaiming memory;
///  * outcomes in between leave the budget unchanged.
/// The budget always stays inside [min_budget, max_budget].

namespace spear {

/// \brief AIMD policy for the per-window sample budget.
class BudgetController {
 public:
  struct Options {
    std::size_t initial_budget = 1000;
    std::size_t min_budget = 64;
    std::size_t max_budget = 1 << 20;
    /// Multiplier applied after a fallback (> 1).
    double grow_factor = 2.0;
    /// Elements removed after a comfortable accept.
    std::size_t shrink_step = 64;
    /// Accepts with estimated error below `shrink_headroom * epsilon`
    /// trigger shrinking (in (0, 1)).
    double shrink_headroom = 0.5;

    Status Validate() const;
  };

  static Result<BudgetController> Make(const Options& options);

  /// Budget for the next window.
  std::size_t budget() const { return budget_; }

  /// Feedback from a completed window.
  /// \param expedited   whether the window was expedited
  /// \param epsilon_hat the estimator's error for the window
  /// \param epsilon     the user's bound
  void OnWindowOutcome(bool expedited, double epsilon_hat, double epsilon);

  std::uint64_t grows() const { return grows_; }
  std::uint64_t shrinks() const { return shrinks_; }

 private:
  explicit BudgetController(const Options& options)
      : options_(options), budget_(options.initial_budget) {}

  Options options_;
  std::size_t budget_;
  std::uint64_t grows_ = 0;
  std::uint64_t shrinks_ = 0;
};

}  // namespace spear
