#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

/// \file fault.h
/// Seeded, deterministic fault injection for chaos-testing the runtime.
/// A FaultPlan names *sites* (storage calls, bolt callbacks, spout
/// emissions) and attaches a trigger to each: fire with probability p, or
/// on every Nth operation, optionally capped at a total fire count, and
/// optionally adding simulated extra latency. A FaultInjector evaluates
/// the plan; decisions for site X depend only on (seed, X, per-site
/// operation index), so the same plan against the same workload fires
/// identically regardless of thread interleaving elsewhere.
///
/// With no injector attached (the production configuration), every
/// injection point is one null-pointer check.

namespace spear {

/// \brief Where a fault can be injected.
enum class FaultSite : std::uint8_t {
  kStorageStore = 0,  ///< SecondaryStorage::Store / StoreBatch
  kStorageGet,        ///< SecondaryStorage::Get
  kBoltProcess,       ///< Bolt::Execute (via FaultInjectingBolt)
  kBoltWatermark,     ///< Bolt::OnWatermark (via FaultInjectingBolt)
  kSpoutMalformed,    ///< replace an emitted tuple with a malformed one
  kSpoutDuplicate,    ///< re-emit the tuple a second time
  kSpoutLate,         ///< re-emit the tuple with a past event time
  kWorkerCrash,       ///< kill a worker before it processes the tuple
                      ///< (recoverable only with checkpointing enabled)
  kSpoutStall,        ///< freeze the spout inside Next: watermarks stop
                      ///< advancing until the stall is cancelled (or its
                      ///< extra_latency_ns bound elapses)
};
inline constexpr std::size_t kNumFaultSites = 9;

const char* FaultSiteName(FaultSite site);

/// \brief One trigger: fires on matching operations of its site.
struct FaultRule {
  FaultSite site = FaultSite::kStorageStore;
  /// Fire with this probability per operation (seeded, deterministic).
  double probability = 0.0;
  /// Fire on every Nth operation of the site (1-based: the Nth, 2Nth, ...
  /// operations fire). 0 disables the modular trigger.
  std::uint64_t every_nth = 0;
  /// Cap on total fires of this rule (0 = unlimited).
  std::uint64_t max_fires = 0;
  /// Extra simulated latency added to the operation when the rule fires
  /// (storage sites only; busy-waited by the latency model).
  std::int64_t extra_latency_ns = 0;
  /// Bolt sites: throw std::runtime_error instead of returning a Status —
  /// exercises the executor's exception-to-Status supervision.
  bool throw_exception = false;
  /// Spout kSpoutLate: how far behind the current event time the injected
  /// late duplicate is stamped.
  std::int64_t lateness_ms = 1;
};

/// \brief A named set of rules. Disabled (default) means no injector is
/// built and injection points cost one null check.
struct FaultPlan {
  std::uint64_t seed = 0xFA17;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  FaultPlan& Add(FaultRule rule) {
    rules.push_back(rule);
    return *this;
  }

  Status Validate() const;
};

/// \brief Evaluates a FaultPlan. Thread-safe; per-site operation counters
/// are atomic so concurrent workers draw disjoint operation indices.
class FaultInjector {
 public:
  /// The plan must validate (SPEAR_CHECKed).
  explicit FaultInjector(FaultPlan plan);

  /// Outcome of one operation at one site.
  struct Decision {
    bool fire = false;
    std::int64_t extra_latency_ns = 0;
    bool throw_exception = false;
    std::int64_t lateness_ms = 0;
  };

  /// Draws the next operation index for `site` and evaluates its rules.
  Decision Tick(FaultSite site);

  /// True when any rule targets `site` — lets call sites skip Tick (and
  /// its atomic increment) entirely for unarmed sites.
  bool armed(FaultSite site) const {
    return !rules_[static_cast<std::size_t>(site)].empty();
  }

  std::uint64_t fired(FaultSite site) const {
    return fires_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t ticks(FaultSite site) const {
    return ops_[static_cast<std::size_t>(site)].load(
        std::memory_order_relaxed);
  }
  /// Total fires across every site.
  std::uint64_t total_fired() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  struct RuleState {
    FaultRule rule;
    std::atomic<std::uint64_t> fires{0};
  };

  const FaultPlan plan_;
  /// Rules grouped per site (indices into plan_.rules).
  std::array<std::vector<RuleState*>, kNumFaultSites> rules_;
  std::vector<std::unique_ptr<RuleState>> rule_states_;
  std::array<std::atomic<std::uint64_t>, kNumFaultSites> ops_;
  std::array<std::atomic<std::uint64_t>, kNumFaultSites> fires_;
};

}  // namespace spear
