#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

/// \file result.h
/// Result<T> carries either a value or a non-OK Status (Arrow's
/// arrow::Result). Use with SPEAR_ASSIGN_OR_RETURN to chain fallible calls.

namespace spear {

/// \brief Either a value of type T or an error Status.
///
/// A Result constructed from a value is OK; a Result constructed from a
/// Status must carry a non-OK status. Accessing the value of a non-OK
/// Result is undefined (asserts in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (OK result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the contained value. Requires ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value if OK, otherwise `fallback`.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace spear

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value to `lhs`. `lhs` may include a declaration.
#define SPEAR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define SPEAR_CONCAT_IMPL(a, b) a##b
#define SPEAR_CONCAT(a, b) SPEAR_CONCAT_IMPL(a, b)

#define SPEAR_ASSIGN_OR_RETURN(lhs, rexpr) \
  SPEAR_ASSIGN_OR_RETURN_IMPL(SPEAR_CONCAT(_spear_result_, __LINE__), lhs, rexpr)
