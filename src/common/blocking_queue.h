#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

/// \file blocking_queue.h
/// Bounded multi-producer multi-consumer queue used between runtime workers.
/// Bounding the queue is what gives the engine back-pressure: a fast
/// upstream stage blocks in Push() until the downstream drains.

namespace spear {

/// \brief Bounded MPMC blocking queue with close semantics.
///
/// After Close(), Push() returns false and Pop() drains remaining items
/// then returns std::nullopt.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks until space is available. Returns false iff the queue closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: producers fail fast, consumers drain then stop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace spear
