#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <iterator>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/time.h"

/// \file blocking_queue.h
/// Bounded multi-producer multi-consumer queue used between runtime workers.
/// Bounding the queue is what gives the engine back-pressure: a fast
/// upstream stage blocks in Push() until the downstream drains.
///
/// The batch API (PushAll/PopAll/TryPopAll) moves many items under a single
/// lock acquisition and notification, amortizing the per-element channel
/// cost that otherwise dominates light stages. Storage is a FIFO of batch
/// nodes (vectors), so the common case — a producer's whole batch handed to
/// a consumer asking for at least as much — transfers ownership of one
/// vector in O(1) with zero per-element moves. Batches count element-wise
/// against the capacity, so back-pressure is unchanged: a batch larger than
/// the remaining room is enqueued in chunks as the consumer drains (the one
/// path that does pay per-element moves). Single-element Push() appends to
/// an open tail node, matching the historical per-tuple cost profile.

namespace spear {

/// \brief Bounded MPMC blocking queue with close semantics.
///
/// After Close(), Push() returns false and Pop() drains remaining items
/// then returns std::nullopt.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks until space is available. Returns false iff the queue closed.
  /// When `blocked_ns` is non-null, time spent waiting for room (the
  /// back-pressure stall) is added to it; the unblocked fast path never
  /// reads the clock.
  bool Push(T item, std::int64_t* blocked_ns = nullptr) {
    std::unique_lock<std::mutex> lock(mutex_);
    WaitForRoomLocked(lock, blocked_ns);
    if (closed_) return false;
    AppendLocked(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Control push: enqueues without waiting for capacity. Control elements
  /// (watermarks, flush markers) are rare — bounded by the watermark
  /// cadence, not the data rate — and must not sit behind a saturated data
  /// queue, so they get reserved headroom: the queue may transiently exceed
  /// `capacity()` by the in-flight control elements, and data producers
  /// keep blocking until the overflow drains. Returns false iff closed.
  bool PushControl(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) return false;
    AppendLocked(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Moves every item of `items` into the queue under as few lock
  /// acquisitions as capacity allows. When the whole batch fits the
  /// remaining capacity, its vector is handed to the queue as one node —
  /// one lock acquisition, one notify, no per-element work. Blocks for
  /// room like Push; a batch larger than the remaining capacity is
  /// enqueued in FIFO chunks as the consumer drains. `items` is left
  /// empty afterwards (its storage may have been handed to the queue, so
  /// reserve again before reusing it as a buffer). Returns false iff the
  /// queue closed before the whole batch was enqueued (any un-enqueued
  /// remainder is dropped). `blocked_ns` accumulates back-pressure stall
  /// time as in Push().
  bool PushAll(std::vector<T>&& items, std::int64_t* blocked_ns = nullptr) {
    if (items.empty()) return true;
    std::size_t next = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      WaitForRoomLocked(lock, blocked_ns);
      if (closed_) {
        lock.unlock();
        items.clear();
        return false;
      }
      const std::size_t room = capacity_ - count_;
      const std::size_t remaining = items.size() - next;
      if (next == 0 && remaining <= room) {
        // Whole-batch handoff: the vector itself becomes a queue node.
        count_ += remaining;
        nodes_.push_back(std::move(items));
        back_open_ = false;
        lock.unlock();
        // One batch can satisfy several blocked consumers.
        not_empty_.notify_all();
        items.clear();
        return true;
      }
      // Back-pressure: peel off as many elements as fit and keep waiting.
      const std::size_t take = std::min(room, remaining);
      std::vector<T> chunk;
      chunk.reserve(take);
      chunk.insert(chunk.end(),
                   std::make_move_iterator(
                       items.begin() + static_cast<std::ptrdiff_t>(next)),
                   std::make_move_iterator(
                       items.begin() +
                       static_cast<std::ptrdiff_t>(next + take)));
      count_ += take;
      nodes_.push_back(std::move(chunk));
      back_open_ = false;
      next += take;
      lock.unlock();
      not_empty_.notify_all();
      if (next == items.size()) break;
      lock.lock();
    }
    items.clear();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_ || count_ >= capacity_) return false;
    AppendLocked(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || count_ > 0; });
    if (count_ == 0) return std::nullopt;
    T item = TakeOneLocked();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Blocks until at least one item is available (or the queue is closed
  /// and drained), then moves up to `max` items into `*out` under one lock
  /// acquisition — O(1) when `*out` is empty and the front node fits in
  /// `max` (the node's vector is handed over whole). Returns the number of
  /// items appended; 0 means closed and fully drained — the batch analogue
  /// of Pop() returning nullopt.
  std::size_t PopAll(std::vector<T>* out, std::size_t max) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || count_ > 0; });
    return DrainLocked(std::move(lock), out, max);
  }

  /// Non-blocking PopAll: moves up to `max` immediately-available items
  /// into `*out`; returns the number appended (0 when empty).
  std::size_t TryPopAll(std::vector<T>* out, std::size_t max) {
    std::unique_lock<std::mutex> lock(mutex_);
    return DrainLocked(std::move(lock), out, max);
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (count_ == 0) return std::nullopt;
    T item = TakeOneLocked();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: producers fail fast, consumers drain then stop.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  /// Unconsumed elements. Can transiently exceed capacity() by in-flight
  /// PushControl() elements.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  /// Bound on nodes grown element-wise by Push (keeps the drain latency of
  /// a singles-only producer similar to the historical deque).
  static constexpr std::size_t kAppendNodeCap = 64;

  /// Waits until the queue has room or is closed, timing the wait into
  /// `*blocked_ns` when requested. The predicate is checked before any
  /// clock read, so an unblocked push costs nothing extra.
  void WaitForRoomLocked(std::unique_lock<std::mutex>& lock,
                         std::int64_t* blocked_ns) {
    if (closed_ || count_ < capacity_) return;
    const std::int64_t start = blocked_ns != nullptr ? NowNs() : 0;
    not_full_.wait(lock, [&] { return closed_ || count_ < capacity_; });
    if (blocked_ns != nullptr) *blocked_ns += NowNs() - start;
  }

  void AppendLocked(T item) {
    if (nodes_.empty() || !back_open_ ||
        nodes_.back().size() >= kAppendNodeCap) {
      nodes_.emplace_back();
      nodes_.back().reserve(std::min(kAppendNodeCap, capacity_));
      back_open_ = true;
    }
    nodes_.back().push_back(std::move(item));
    ++count_;
  }

  T TakeOneLocked() {
    std::vector<T>& front = nodes_.front();
    T item = std::move(front[front_pos_]);
    ++front_pos_;
    --count_;
    if (front_pos_ == front.size()) {
      nodes_.pop_front();
      front_pos_ = 0;
    }
    return item;
  }

  /// Moves up to `max` items into `*out`, releasing `lock` before waking
  /// producers (a multi-slot drain can unblock several of them).
  std::size_t DrainLocked(std::unique_lock<std::mutex> lock,
                          std::vector<T>* out, std::size_t max) {
    std::size_t take = 0;
    if (out->empty() && front_pos_ == 0 && !nodes_.empty() &&
        nodes_.front().size() <= max) {
      // Whole-node handoff: no per-element moves.
      *out = std::move(nodes_.front());
      nodes_.pop_front();
      take = out->size();
      count_ -= take;
    } else {
      take = std::min(max, count_);
      for (std::size_t k = 0; k < take; ++k) {
        out->push_back(TakeOneLocked());
      }
    }
    lock.unlock();
    if (take > 0) not_full_.notify_all();
    return take;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  /// FIFO of batch nodes; elements [front_pos_, size) of the front node
  /// are the queue's head. count_ is the total unconsumed elements.
  std::deque<std::vector<T>> nodes_;
  std::size_t front_pos_ = 0;
  std::size_t count_ = 0;
  /// True while the back node may still be grown by Push().
  bool back_open_ = false;
  bool closed_ = false;
};

}  // namespace spear
