#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

/// \file rng.h
/// Deterministic, fast pseudo-random number generation. All stochastic
/// components (reservoir replacement, dataset generators) take an explicit
/// seed so that every experiment in the repo is reproducible bit-for-bit.

namespace spear {

/// \brief SplitMix64: tiny, statistically solid generator used both directly
/// and to seed Xoshiro256**.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// \brief Xoshiro256** — the repo's default RNG. Satisfies
/// UniformRandomBitGenerator so it can drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EA4u) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t NextBounded(std::uint64_t bound) {
    __uint128_t m = static_cast<__uint128_t>(Next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method.
  double NextGaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    has_spare_ = true;
    return u * mul;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace spear
