#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"

/// \file retry_policy.h
/// Bounded retry with exponential backoff and deterministic jitter, plus
/// the failure taxonomy the supervised runtime is built on:
///
///  * transient — a dependency hiccup (storage unavailable); retrying the
///    same operation may succeed, so supervised callers retry it under a
///    RetryPolicy before giving up.
///  * data — the input itself is bad (malformed/out-of-range tuple);
///    retrying cannot help, but the failure is confined to one tuple, so
///    the executor quarantines it to the dead-letter channel and the run
///    continues.
///  * fatal — a bug or broken invariant (internal errors, I/O corruption);
///    the run is cancelled, exactly as before supervision existed.

namespace spear {

/// \brief Coarse classification of a failure, driving supervision.
enum class FailureClass : std::uint8_t { kTransient, kData, kFatal };

inline FailureClass ClassifyFailure(const Status& status) {
  switch (status.code()) {
    case StatusCode::kUnavailable:
      return FailureClass::kTransient;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kAlreadyExists:
      return FailureClass::kData;
    default:
      return FailureClass::kFatal;
  }
}

/// \brief Bounded exponential backoff: attempt k (0-based) sleeps
/// `initial * multiplier^k`, capped at `max_backoff_ns`, with +/- `jitter`
/// fraction of deterministic (seeded) noise. The whole retry sequence is
/// budgeted both by attempts and by wall clock.
struct RetryPolicy {
  /// Total attempts, including the first one. 1 = never retry.
  int max_attempts = 1;
  std::int64_t initial_backoff_ns = 1'000'000;  // 1 ms
  double backoff_multiplier = 2.0;
  std::int64_t max_backoff_ns = 50'000'000;  // 50 ms
  /// Fraction of the delay randomized symmetrically around it, in [0, 1).
  double jitter = 0.2;
  /// Wall-clock budget across all attempts; <= 0 means unbudgeted.
  std::int64_t wall_clock_budget_ns = 2'000'000'000;  // 2 s

  /// No retries (the pre-supervision behaviour for transient errors).
  static RetryPolicy None() { return RetryPolicy{}; }

  /// A small default suitable for simulated-storage hiccups.
  static RetryPolicy Default() {
    RetryPolicy p;
    p.max_attempts = 4;
    p.initial_backoff_ns = 200'000;  // 0.2 ms
    return p;
  }

  bool enabled() const { return max_attempts > 1; }

  Status Validate() const {
    if (max_attempts < 1) {
      return Status::Invalid("retry max_attempts must be >= 1");
    }
    if (initial_backoff_ns < 0 || max_backoff_ns < 0) {
      return Status::Invalid("retry backoff must be >= 0");
    }
    if (backoff_multiplier < 1.0) {
      return Status::Invalid("retry backoff_multiplier must be >= 1");
    }
    if (jitter < 0.0 || jitter >= 1.0) {
      return Status::Invalid("retry jitter must be in [0, 1)");
    }
    return Status::OK();
  }
};

/// \brief One retry sequence's state: yields the next backoff delay until
/// the attempt or wall-clock budget runs out. Deterministic for a given
/// (policy, seed).
class Backoff {
 public:
  Backoff(const RetryPolicy& policy, std::uint64_t seed)
      : policy_(policy),
        rng_(seed),
        deadline_ns_(policy.wall_clock_budget_ns > 0
                         ? NowNs() + policy.wall_clock_budget_ns
                         : 0) {}

  /// True (with the delay to sleep) while another attempt is allowed;
  /// false once attempts or wall clock are exhausted.
  bool NextDelay(std::int64_t* delay_ns) {
    if (attempt_ + 1 >= policy_.max_attempts) return false;
    if (deadline_ns_ != 0 && NowNs() >= deadline_ns_) return false;
    double delay = static_cast<double>(policy_.initial_backoff_ns);
    for (int k = 0; k < attempt_; ++k) delay *= policy_.backoff_multiplier;
    delay = std::min(delay, static_cast<double>(policy_.max_backoff_ns));
    if (policy_.jitter > 0.0) {
      // Symmetric jitter in [-j, +j] around the nominal delay.
      const double u =
          static_cast<double>(rng_.Next() >> 11) * 0x1p-53;  // [0, 1)
      delay *= 1.0 + policy_.jitter * (2.0 * u - 1.0);
    }
    *delay_ns = std::max<std::int64_t>(static_cast<std::int64_t>(delay), 0);
    ++attempt_;
    return true;
  }

  /// Retries performed so far (0 before the first NextDelay).
  int retries() const { return attempt_; }

 private:
  const RetryPolicy policy_;
  SplitMix64 rng_;
  int attempt_ = 0;
  const std::int64_t deadline_ns_;
};

/// \brief Sleeps ~`delay_ns`, waking early if `*cancelled` flips — a
/// cancelled run must not serve out its backoff schedule first.
inline void BackoffSleep(std::int64_t delay_ns,
                         const std::atomic<bool>* cancelled = nullptr) {
  constexpr std::int64_t kChunkNs = 1'000'000;  // re-check cancel every 1 ms
  while (delay_ns > 0) {
    if (cancelled != nullptr && cancelled->load(std::memory_order_relaxed)) {
      return;
    }
    const std::int64_t chunk = std::min(delay_ns, kChunkNs);
    std::this_thread::sleep_for(std::chrono::nanoseconds(chunk));
    delay_ns -= chunk;
  }
}

/// \brief Runs `op` (a callable returning Status), retrying transient
/// failures under `policy`. Bumps `*retries` per retry and `*recovered`
/// once if a retry eventually succeeded.
template <typename Op>
Status RetryTransient(const RetryPolicy& policy, std::uint64_t seed, Op&& op,
                      std::uint64_t* retries = nullptr,
                      std::uint64_t* recovered = nullptr,
                      const std::atomic<bool>* cancelled = nullptr) {
  Backoff backoff(policy, seed);
  Status status = op();
  while (!status.ok() &&
         ClassifyFailure(status) == FailureClass::kTransient) {
    if (cancelled != nullptr && cancelled->load(std::memory_order_relaxed)) {
      break;
    }
    std::int64_t delay_ns = 0;
    if (!backoff.NextDelay(&delay_ns)) break;
    BackoffSleep(delay_ns, cancelled);
    if (retries != nullptr) ++*retries;
    status = op();
    if (status.ok() && recovered != nullptr) ++*recovered;
  }
  return status;
}

}  // namespace spear
