#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

/// \file byte_size.h
/// Byte-count helpers for memory budgets (the `b` in SPEAr CQs).

namespace spear {

inline constexpr std::size_t kKiB = 1024;
inline constexpr std::size_t kMiB = 1024 * kKiB;
inline constexpr std::size_t kGiB = 1024 * kMiB;

namespace literals {

constexpr std::size_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr std::size_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr std::size_t operator""_GiB(unsigned long long v) { return v * kGiB; }

}  // namespace literals

/// Renders a byte count as a short human-readable string ("1.5 MiB").
std::string FormatBytes(std::size_t bytes);

}  // namespace spear
