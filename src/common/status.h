#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>

/// \file status.h
/// Error handling for SPEAr, following the Arrow/RocksDB idiom: functions
/// that can fail return a Status (or a Result<T>, see result.h) rather than
/// throwing exceptions. Hot paths stay exception-free.

namespace spear {

/// Machine-readable classification of an error.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIOError,
  kCancelled,
  /// Transient failure of a remote dependency (e.g. secondary storage):
  /// the operation may succeed if retried.
  kUnavailable,
};

/// \brief Returns the canonical lowercase name of a status code
/// (e.g. "invalid-argument").
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: a code plus an optional human-readable
/// message. `Status::OK()` is cheap (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for the OK status.
  static Status OK() { return Status(); }

  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalid() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace spear

/// Propagates a non-OK Status to the caller (Arrow's ARROW_RETURN_NOT_OK).
#define SPEAR_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::spear::Status _spear_status = (expr);       \
    if (!_spear_status.ok()) return _spear_status; \
  } while (false)
