#pragma once

#include <cassert>
#include <sstream>
#include <string>

/// \file logging.h
/// Minimal leveled logger plus RocksDB/Arrow-style check macros. Logging is
/// used only off the hot path (startup, shutdown, fallback events).

namespace spear {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// \brief Sets the global minimum level actually emitted (default kWarn so
/// benchmarks stay quiet).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (thread-safely) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Emits the message then aborts. Used by SPEAR_CHECK failures.
[[noreturn]] void FatalMessage(const char* file, int line,
                               const std::string& message);

}  // namespace internal
}  // namespace spear

#define SPEAR_LOG(level)                                              \
  ::spear::internal::LogMessage(::spear::LogLevel::k##level, __FILE__, \
                                __LINE__)

/// Invariant check, active in all build types (cheap conditions only).
#define SPEAR_CHECK(condition)                                          \
  do {                                                                  \
    if (!(condition)) {                                                 \
      ::spear::internal::FatalMessage(__FILE__, __LINE__,               \
                                      "Check failed: " #condition);    \
    }                                                                   \
  } while (false)

#define SPEAR_DCHECK(condition) assert(condition)
