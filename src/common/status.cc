#include "common/status.h"

#include <ostream>

namespace spear {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kFailedPrecondition:
      return "failed-precondition";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIOError:
      return "io-error";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace spear
